// README audit: the figure-id table in README.md duplicates the
// registry for discoverability; this test pins it to the registry so
// a new figure PR cannot land without updating the README row (the
// generated docs/ inventory updates itself via the CI freshness job).
package zng_test

import (
	"os"
	"strings"
	"testing"

	"zng/internal/experiments"
)

func TestReadmeListsEveryFigure(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	s := string(readme)
	for _, id := range experiments.FigureIDs() {
		if !strings.Contains(s, "`"+id+"`") {
			t.Errorf("README.md figure table is missing `%s`; keep it in sync with experiments.Registry", id)
		}
	}
	for _, flagDoc := range []string{"-out DIR", "-format md|csv|json", "-fig docs"} {
		if !strings.Contains(s, flagDoc) {
			t.Errorf("README.md no longer documents %q", flagDoc)
		}
	}
	for _, example := range []string{"examples/quickstart", "examples/graphanalytics", "examples/designspace"} {
		if !strings.Contains(s, example) {
			t.Errorf("README.md no longer documents %s", example)
		}
	}
}
