package zng_test

import (
	"flag"
	"testing"
)

// TestBenchSmoke runs every benchmark of the harness exactly once
// (the -benchtime=1x contract, set programmatically) so that plain
// `go test ./...` exercises the bench code paths: a driver that starts
// failing or panicking breaks the test suite instead of rotting
// silently until someone next runs -bench.
func TestBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke skipped in -short mode")
	}
	bt := flag.Lookup("test.benchtime")
	if bt == nil {
		t.Fatal("test.benchtime flag not registered")
	}
	old := bt.Value.String()
	if err := flag.Set("test.benchtime", "1x"); err != nil {
		t.Fatal(err)
	}
	defer flag.Set("test.benchtime", old)

	for _, bm := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"TableII", BenchmarkTableII},
		{"Fig1b", BenchmarkFig1b},
		{"Fig3", BenchmarkFig3},
		{"Fig4c", BenchmarkFig4c},
		{"Fig4d", BenchmarkFig4d},
		{"Fig5a", BenchmarkFig5a},
		{"Fig5bcd", BenchmarkFig5bcd},
		{"Fig8b", BenchmarkFig8b},
		{"Fig10", BenchmarkFig10},
		{"Fig11", BenchmarkFig11},
		{"Fig12", BenchmarkFig12},
		{"Fig13Sweep", BenchmarkFig13Sweep},
		{"AblationWriteNet", BenchmarkAblationWriteNet},
		{"AblationConsolidation", BenchmarkAblationConsolidation},
		{"AblationGC", BenchmarkAblationGC},
		{"AblationL2", BenchmarkAblationL2},
		{"ScaleSweep", BenchmarkScaleSweep},
		{"Platforms", BenchmarkPlatforms},
	} {
		bm := bm
		t.Run(bm.name, func(t *testing.T) {
			r := testing.Benchmark(bm.fn)
			if r.N < 1 {
				t.Fatalf("benchmark %s did not complete an iteration (it failed)", bm.name)
			}
		})
	}
}
