// Godoc audit: every internal package must carry a package comment
// substantial enough to state what it models (the convention in this
// repo: each names the ZnG paper section or figure it reproduces).
// docs/DESIGN.md points readers at these comments, so their absence is
// a documentation regression, not a style nit.
package zng_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestInternalPackagesHaveGodoc(t *testing.T) {
	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join("internal", e.Name())
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		var doc string
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			for _, f := range pkg.Files {
				if f.Doc != nil && len(f.Doc.Text()) > len(doc) {
					doc = f.Doc.Text()
				}
			}
		}
		if doc == "" {
			t.Errorf("package %s has no godoc package comment", dir)
			continue
		}
		// One sentence of boilerplate is not an explanation of what
		// the package models.
		if len(doc) < 120 {
			t.Errorf("package %s godoc is a stub (%d chars): %q", dir, len(doc), doc)
		}
	}
}
