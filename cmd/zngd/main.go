// Command zngd serves simulations over HTTP: an always-on daemon in
// front of the coalescing job scheduler (internal/simsvc) and the
// persistent content-addressed result store (internal/store), so many
// clients can share one simulation engine — concurrent identical
// requests cost one simulation, and anything ever computed against
// the same cache directory is served from disk across restarts.
//
// Usage:
//
//	zngd -addr 127.0.0.1:8080 -cache ~/.zng-cache
//	zngd -addr 127.0.0.1:0 -addr-file /tmp/zngd.addr   # random port, scripted
//
// Endpoints (JSON):
//
//	POST /v1/run             {"platform":"ZnG","mix":"betw-back","scale":0.12}
//	GET  /v1/jobs            job list
//	GET  /v1/jobs/{id}       job status
//	POST /v1/campaigns       start a declarative sweep (internal/campaign Spec)
//	GET  /v1/campaigns       campaign list with live progress
//	GET  /v1/campaigns/{id}  campaign progress + result matrix once done
//	POST /v1/campaigns/{id}/resume  resume a store-checkpointed campaign
//	POST /v1/fleet/register  join a worker to this coordinator's fleet
//	POST /v1/fleet/heartbeat refresh a worker's liveness and load
//	GET  /v1/fleet           live peer roster + fleet gauges
//	GET  /v1/scenarios       workload scenario registry
//	GET  /v1/platforms       platform vocabulary
//	GET  /v1/trace           trace flight recorder (filter: endpoint, status, min_ms)
//	GET  /v1/trace/stats     per-stage latency breakdown
//	GET  /v1/trace/{id}      one trace's full span tree
//	GET  /healthz            liveness
//	GET  /metrics            counters (sims, memory/disk hits, coalesced, jobs, evictions, rejections, tier gauges, latency quantiles); ?format=prom for Prometheus text
//
// Observability: requests carrying an X-Zng-Trace header join the
// caller's distributed trace; direct runs are sampled 1-in
// -trace-sample. Completed spans land in a bounded in-memory flight
// recorder (-trace-buf) served by the /v1/trace endpoints. Logs are
// structured (log/slog); -log-level takes per-subsystem overrides
// ("warn,fleet=debug") and -log-json switches to JSON lines.
//
// Serving is tiered: -mem-cache sizes an in-memory LRU of decoded
// result documents fronting the store, so the hot working set skips
// the disk read+decode entirely (0 disables it). Admission is
// bounded: past -max-queue pending simulations, new work is refused
// with 429 Too Many Requests and a Retry-After estimate, so overload
// sheds instead of queueing without limit.
//
// Job history is bounded: past -max-jobs completed jobs, the oldest
// persisted (or failed) jobs are evicted from memory and their cells
// re-serve from the store (through the memory tier). On
// SIGINT/SIGTERM the daemon stops accepting connections, lets
// in-flight requests (and their simulations) drain, then closes the
// service.
//
// Fleet: every zngd is a coordinator — workers join it with POST
// /v1/fleet/register and heartbeats, campaigns POSTed to it fan out
// over the live membership (falling back to local execution), and
// with -cache they checkpoint per cell into the store so POST
// /v1/campaigns/{id}/resume picks a half-finished sweep back up after
// a restart with zero re-simulation of journaled cells. Started with
// -coordinator URL, the daemon is additionally a worker: it registers
// its own serving address (-advertise overrides what it announces)
// with that coordinator and heartbeats its queue depth until shutdown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zng/internal/config"
	"zng/internal/fleet"
	"zng/internal/obs"
	"zng/internal/simsvc"
	"zng/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a random free port)")
		cacheDir = flag.String("cache", "", "persistent result store directory (empty: memory-only)")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = NumCPU)")
		maxJobs  = flag.Int("max-jobs", 4096, "retained completed jobs before eviction (0 = unbounded)")
		memCache = flag.Int("mem-cache", 4096, "in-memory result-tier entries fronting the store (0 = no memory tier)")
		maxQueue = flag.Int("max-queue", 1024, "pending simulations before admission returns 429 (0 = unbounded)")
		addrFile = flag.String("addr-file", "", "write the actual listen address to this file once bound")
		drain    = flag.Duration("drain", 5*time.Minute, "graceful-shutdown drain budget for in-flight simulations")

		coordinator = flag.String("coordinator", "", "join this coordinator's fleet as a worker (host:port or URL)")
		advertise   = flag.String("advertise", "", "address to register with the coordinator (default: the bound listen address)")
		fleetTTL    = flag.Duration("fleet-ttl", fleet.DefaultTTL, "heartbeat expiry window for workers registered with this daemon")

		logLevel    = flag.String("log-level", "info", `log level, optionally per subsystem: "debug", "warn,fleet=debug"`)
		logJSON     = flag.Bool("log-json", false, "emit structured logs as JSON lines instead of text")
		traceBuf    = flag.Int("trace-buf", obs.DefaultCapacity, "completed spans retained in the trace flight recorder (0 disables tracing)")
		traceSample = flag.Int("trace-sample", 64, "trace 1 in N direct /v1/run requests (campaigns and propagated traces are always recorded)")
	)
	flag.Parse()

	levels, err := obs.ParseLevels(*logLevel)
	if err != nil {
		fatal(err)
	}
	log := obs.NewLogger(os.Stderr, levels, *logJSON)
	var tracer *obs.Tracer
	if *traceBuf > 0 {
		tracer = obs.New("zngd", *traceBuf, *traceSample)
	}

	var st *store.Store
	if *cacheDir != "" {
		var err error
		if st, err = store.Open(*cacheDir); err != nil {
			fatal(err)
		}
	}
	svc := simsvc.New(simsvc.Config{
		Store:        st,
		Workers:      *workers,
		MaxJobs:      *maxJobs,
		CacheEntries: *memCache,
		MaxQueue:     *maxQueue,
		Tracer:       tracer,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// The file appears atomically with the address in it, so a
		// script can poll for it and connect immediately.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fatal(err)
		}
	}
	// The bound address names this process in every span it records, so
	// a cross-process trace reads "which worker ran this cell" off the
	// span itself.
	tracer.SetProc("zngd@" + bound)
	cache := "memory-only"
	if st != nil {
		cache = st.Dir()
	} else if *maxJobs > 0 {
		// Without a store, completed results have nowhere to be
		// re-served from, so retention only ever evicts failed jobs.
		log.Warn("no -cache: -max-jobs bounds failed jobs only; completed results are retained for the process lifetime")
	}
	log.Info("listening", "addr", "http://"+bound, "cache", cache)

	// Every daemon coordinates: the fleet endpoints are always live,
	// and a campaign POSTed here fans out over whatever workers have
	// registered (none = plain local execution, the old behavior).
	// With a store, campaigns checkpoint under it and survive restarts.
	fc := fleet.New(fleet.Config{
		Local:   svc,
		Store:   st,
		TTL:     *fleetTTL,
		Workers: *workers,
		Base:    config.Default(),
		Tracer:  tracer,
		Log:     log,
	})
	srv := &http.Server{Handler: simsvc.NewHandler(svc, config.Default(), simsvc.WithFleet(fc))}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// Worker mode: keep this daemon registered with the coordinator,
	// heartbeating the live backlog, until shutdown. The agent
	// re-registers on its own after coordinator restarts or missed
	// heartbeats.
	if *coordinator != "" {
		workerAddr := bound
		if *advertise != "" {
			workerAddr = *advertise
		}
		agent := fleet.StartAgent(*coordinator, workerAddr, svc.Load)
		defer agent.Stop()
		obs.Sub(log, "fleet").Info("worker joined coordinator", "coordinator", *coordinator, "advertise", workerAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	log.Info("shutting down, draining in-flight simulations", "budget", drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Error("shutdown", "err", err)
	}
	// The drain budget bounds the whole shutdown, service included: a
	// multi-hour cell must not keep the process alive past -drain.
	closed := make(chan struct{})
	go func() {
		svc.Close()
		close(closed)
	}()
	select {
	case <-closed:
		log.Info("drained; exiting")
	case <-shutdownCtx.Done():
		log.Error("drain budget exhausted; exiting with simulations in flight (their cells are lost)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zngd:", err)
	os.Exit(1)
}
