package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestGracefulDrainUnderLoad is the shutdown satellite: a daemon
// carrying in-flight synchronous simulations that receives SIGTERM
// must answer every admitted request with 200 and exit cleanly
// within the -drain budget — no dropped work, no hung process.
func TestGracefulDrainUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real zngd process")
	}
	bin := filepath.Join(t.TempDir(), "zngd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building zngd: %v\n%s", err, out)
	}

	addrFile := filepath.Join(t.TempDir(), "zngd.addr")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-cache", t.TempDir(),
		"-workers", "2",
		"-drain", "30s",
	)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var addr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("daemon never published its address")
	}

	// Distinct cells, so every request simulates (no coalescing, no
	// store hit) and the drain has real in-flight work to wait out.
	const inflight = 3
	statuses := make(chan int, inflight)
	for i := 0; i < inflight; i++ {
		body := fmt.Sprintf(`{"platform":"GDDR5","mix":"solo-bfs1","scale":%g}`, 0.04+0.01*float64(i))
		go func() {
			resp, err := http.Post("http://"+addr+"/v1/run", "application/json", bytes.NewBufferString(body))
			if err != nil {
				statuses <- -1
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}

	// Signal only once every request is admitted (visible as a job), so
	// none race the listener closing.
	admitted := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		var m struct {
			JobsTotal int `json:"jobs_total"`
		}
		if resp, err := http.Get("http://" + addr + "/metrics"); err == nil {
			err = json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if err == nil && m.JobsTotal >= inflight {
				admitted = true
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !admitted {
		t.Fatal("requests never showed up as jobs")
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Every in-flight request completes despite the shutdown.
	for i := 0; i < inflight; i++ {
		select {
		case code := <-statuses:
			if code != http.StatusOK {
				t.Errorf("in-flight request answered %d during drain, want 200", code)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("in-flight request never answered during drain")
		}
	}

	// And the process exits cleanly within the drain budget.
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("zngd exited non-zero after drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("zngd did not exit within the drain budget")
	}
}
