// Command znglint runs the repository's invariant analyzers
// (internal/lint) over Go packages and fails on any finding — the
// multichecker CI's lint job drives.
//
//	znglint ./...                      # whole module (the CI gate)
//	znglint ./internal/simsvc          # one package
//	znglint -analyzers determinism,guardedby ./...
//	znglint -list                      # what each analyzer enforces
//
// Diagnostics print as file:line:col: message (analyzer), sorted by
// position, and the exit status is 1 when any were found — so the
// tool slots into CI next to gofmt and go vet.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zng/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated analyzer names to run (default all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: znglint [flags] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the repo-invariant analyzers over the packages (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := lint.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*lint.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			names := make([]string, 0, len(suite))
			for _, a := range suite {
				names = append(names, a.Name)
			}
			fmt.Fprintf(os.Stderr, "znglint: unknown analyzers %v (have: %s)\n",
				mapKeys(keep), strings.Join(names, ", "))
			os.Exit(2)
		}
		suite = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "znglint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "znglint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "znglint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "znglint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func mapKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
