// Command zngsim runs one platform on one workload scenario and prints
// the full measurement set — the low-level tool behind zngfig.
//
// Usage:
//
//	zngsim -platform ZnG -mix betw-back -scale 2.0
//	zngsim -platform ZnG -mix consol-4
//	zngsim -apps bfs1,gaus,pr -platform HybridGPU
//	zngsim -platform ZnG-base -mix betw-back -cpuprofile zng.prof
//	zngsim -mix betw-back -cache ~/.zng-cache
//	zngsim -list
//
// -mix names a registered scenario (workload.Scenarios: the twelve
// paper pairs, solo-<app> runs, consol-1..4 consolidation mixes,
// read/write stress mixes and the new-family co-runs); -apps composes
// an ad-hoc mix from a comma-separated application list instead, with
// optional per-app weights ("oltp*2,bfs1"). -list prints both
// vocabularies, derived from the same registries the flags resolve
// against, so the help text can never drift from the code.
//
// -cache routes the run through the persistent content-addressed
// result store shared with zngfig and the zngd daemon: a cell any of
// them already computed is served from disk, and a fresh simulation is
// written through for the next caller.
//
// -cpuprofile captures a pprof profile of the simulation itself; this
// is the loop used to find the simulator's hot paths (the rand-seeding
// and event-queue costs this codebase has since eliminated).
// -memprofile writes an allocation profile after the run — the loop
// used to find translation-state memory hogs (the map-backed FTL and
// TLB state this codebase has since replaced with dense tables).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"zng/internal/config"
	"zng/internal/experiments"
	"zng/internal/platform"
	"zng/internal/simsvc"
	"zng/internal/store"
	"zng/internal/workload"
)

func main() {
	var (
		plat     = flag.String("platform", "ZnG", "platform: "+strings.Join(platform.KindNames(), ", "))
		mixName  = flag.String("mix", "betw-back", "workload scenario name (see -list)")
		apps     = flag.String("apps", "", "ad-hoc mix: comma-separated applications, e.g. bfs1,gaus,pr (overrides -mix)")
		scale    = flag.Float64("scale", experiments.DefaultScale, "trace scale")
		cacheDir = flag.String("cache", "", "read-through/write-through persistent result store directory")
		list     = flag.Bool("list", false, "list platforms, applications and scenarios")
		profile  = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memprof  = flag.String("memprofile", "", "write an allocation profile taken after the simulation to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println("platforms:", strings.Join(platform.KindNames(), " "))
		fmt.Print("apps:     ")
		for _, s := range workload.AllSpecs() {
			fmt.Print(" ", s.Name)
		}
		fmt.Println()
		fmt.Println("scenarios:")
		for _, m := range workload.Scenarios() {
			fmt.Printf("  %-16s %s\n", m.Name, m.ID())
		}
		return
	}

	// Reject NaN and ±Inf along with non-positives: a non-finite scale
	// would otherwise reach the store's key hasher, which cannot encode
	// it.
	if !(*scale > 0) || math.IsInf(*scale, 0) {
		fatal(fmt.Errorf("scale must be positive and finite, got %v", *scale))
	}
	kind, err := platform.KindByName(*plat)
	if err != nil {
		fatal(err)
	}
	var mix workload.Mix
	if *apps != "" {
		mix, err = workload.ParseApps(*apps)
	} else {
		mix, err = workload.MixByName(*mixName)
	}
	if err != nil {
		fatal(err)
	}
	// run produces the single cell: directly, or — with -cache —
	// through the store-backed service (one worker; the service is
	// here for its read-through/write-through path, the same code path
	// zngfig and zngd run).
	run := func() (platform.Result, error) {
		return platform.RunMix(kind, mix, *scale, config.Default())
	}
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		run = func() (platform.Result, error) {
			svc := simsvc.New(simsvc.Config{Store: st, Workers: 1})
			defer svc.Close()
			r, err := svc.Run(kind, mix, *scale, config.Default())
			if err == nil {
				stats := svc.Stats()
				fmt.Printf("cache:      %s (sims %d, disk hits %d)\n", st.Dir(), stats.Sims, stats.DiskHits)
			}
			return r, err
		}
	}
	// The profile is stopped explicitly (not deferred): fatal exits via
	// os.Exit, and a failing run — a runaway simulation hitting the
	// event cap — is exactly the one worth profiling, so the file must
	// be flushed before the error path.
	stopProfile := func() {}
	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	start := time.Now()
	r, err := run()
	elapsed := time.Since(start)
	stopProfile()
	if err != nil {
		fatal(err)
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // settle live heap so the profile shows retained state
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	fmt.Printf("platform:   %s\n", r.Kind)
	fmt.Printf("workload:   %s = %s (scale %.2f)\n", r.Workload, mix.ID(), *scale)
	fmt.Printf("IPC:        %.4f\n", r.IPC)
	fmt.Printf("cycles:     %d (%.3f ms simulated)\n", r.Cycles, config.TicksToNs(r.Cycles)/1e6)
	fmt.Printf("insts:      %d\n", r.Insts)
	// Host-side diagnostics go to stderr: stdout is the deterministic
	// measurement set ("run twice and diff" must stay a valid oracle).
	if secs := elapsed.Seconds(); secs > 0 {
		fmt.Fprintf(os.Stderr, "host rate:  %.0f insts/sec (%.2fs wall)\n", float64(r.Insts)/secs, secs)
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	fmt.Fprintf(os.Stderr, "peak heap:  %.1f MiB\n", float64(m.HeapSys)/(1<<20))
	fmt.Printf("L2 hit:     %.3f\n", r.L2HitRate)
	fmt.Printf("TLB hit:    %.3f\n", r.TLBHitRate)
	if r.FlashArrayGBps() > 0 {
		fmt.Printf("flash BW:   %.2f GB/s read, %.2f GB/s write\n", r.FlashReadGBps, r.FlashWriteGBps)
	}
	keys := make([]string, 0, len(r.Extra))
	for k := range r.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-18s %.6g\n", k, r.Extra[k])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zngsim:", err)
	os.Exit(1)
}
