// Command zngsim runs one platform on one co-run workload and prints
// the full measurement set — the low-level tool behind zngfig.
//
// Usage:
//
//	zngsim -platform ZnG -pair betw-back -scale 2.0
//	zngsim -platform ZnG-base -pair betw-back -cpuprofile zng.prof
//	zngsim -list
//
// -cpuprofile captures a pprof profile of the simulation itself; this
// is the loop used to find the simulator's hot paths (the rand-seeding
// and event-queue costs this codebase has since eliminated).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"sort"

	"zng/internal/config"
	"zng/internal/experiments"
	"zng/internal/platform"
	"zng/internal/workload"
)

func main() {
	var (
		plat    = flag.String("platform", "ZnG", "platform: Hetero, HybridGPU, Optane, ZnG-base, ZnG-rdopt, ZnG-wropt, ZnG, GDDR5")
		pair    = flag.String("pair", "betw-back", "co-run workload pair")
		scale   = flag.Float64("scale", experiments.DefaultScale, "trace scale")
		list    = flag.Bool("list", false, "list platforms and pairs")
		profile = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println("platforms: GDDR5", joinKinds())
		fmt.Print("pairs:")
		for _, p := range workload.Pairs() {
			fmt.Print(" ", p.Name)
		}
		fmt.Println()
		return
	}

	if *scale <= 0 {
		fatal(fmt.Errorf("scale must be positive, got %v", *scale))
	}
	kind, err := parseKind(*plat)
	if err != nil {
		fatal(err)
	}
	p, err := workload.PairByName(*pair)
	if err != nil {
		fatal(err)
	}
	// The profile is stopped explicitly (not deferred): fatal exits via
	// os.Exit, and a failing run — a runaway simulation hitting the
	// event cap — is exactly the one worth profiling, so the file must
	// be flushed before the error path.
	stopProfile := func() {}
	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	r, err := platform.Run(kind, p, *scale, config.Default())
	stopProfile()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("platform:   %s\n", r.Kind)
	fmt.Printf("workload:   %s (scale %.2f)\n", r.Pair, *scale)
	fmt.Printf("IPC:        %.4f\n", r.IPC)
	fmt.Printf("cycles:     %d (%.3f ms simulated)\n", r.Cycles, config.TicksToNs(r.Cycles)/1e6)
	fmt.Printf("insts:      %d\n", r.Insts)
	fmt.Printf("L2 hit:     %.3f\n", r.L2HitRate)
	fmt.Printf("TLB hit:    %.3f\n", r.TLBHitRate)
	if r.FlashArrayGBps() > 0 {
		fmt.Printf("flash BW:   %.2f GB/s read, %.2f GB/s write\n", r.FlashReadGBps, r.FlashWriteGBps)
	}
	keys := make([]string, 0, len(r.Extra))
	for k := range r.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-18s %.6g\n", k, r.Extra[k])
	}
}

func joinKinds() string {
	s := ""
	for _, k := range platform.Kinds() {
		s += " " + k.String()
	}
	return s
}

func parseKind(s string) (platform.Kind, error) {
	if s == "GDDR5" {
		return platform.GDDR5, nil
	}
	for _, k := range platform.Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown platform %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zngsim:", err)
	os.Exit(1)
}
