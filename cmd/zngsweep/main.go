// Command zngsweep declares and executes simulation campaigns: whole
// evaluation matrices (platforms × scenarios × scales × config
// overrides) expanded from flags or a JSON spec file, executed
// locally or fanned out across a fleet of zngd peers.
//
// Usage:
//
//	zngsweep -platforms ZnG,HybridGPU -scenarios betw-back,pr-gaus -scales 0.12
//	zngsweep -platforms ZnG -scenarios bfs1+gaus*1.5,pr-gaus   # ad-hoc co-run + registered
//	zngsweep -spec sweep.json -format csv
//	zngsweep -platforms ZnG -scenarios solo-bfs1 -cache ~/.zng-cache
//	zngsweep -spec sweep.json -peers 10.0.0.1:8080,10.0.0.2:8080 -v
//
// A spec file is the JSON form of campaign.Spec:
//
//	{
//	  "name": "l2-sweep",
//	  "platforms": ["ZnG"],
//	  "scenarios": ["betw-back", "bfs1-gaus"],
//	  "scales": [0.12],
//	  "overrides": [{"name": "base"}, {"l2_mult": 8}, {"prefetch_off": true}]
//	}
//
// Execution backends, most local first: the default in-memory
// single-flight memo; with -cache DIR the store-backed simsvc
// scheduler (cells persist and dedupe across invocations and against
// zngd daemons sharing the directory); with -peers the
// internal/remote dispatcher, which shards cells across the named
// zngd workers with health-checking, least-loaded work stealing and
// retry-on-peer-failure — several daemons become one simulation
// fleet, and results are byte-identical to a local run.
//
// With -coordinator URL the campaign runs inside a zngd fleet
// coordinator instead of this process: the spec is POSTed to
// /v1/campaigns, progress polls until done, and the coordinator's
// folded matrix renders locally. Campaigns run that way are durable —
// the coordinator checkpoints each cell into its store — so
// `zngsweep -coordinator URL -resume ID` resumes a sweep the
// coordinator (or this command) died in the middle of, re-running
// only the cells the journal is missing.
//
// The result matrix renders as a text table by default, or through
// internal/report with -format md|csv|json. Cells that fail after
// -retries attempts render as ERROR and the exit status is non-zero;
// the rest of the matrix still prints. -v adds live progress, the
// runner's dedup counters, with -peers per-peer cell counts, and a
// per-stage latency breakdown (queue wait, tier lookups, simulation,
// store writes) folded from the campaign's trace — local runs record
// it in-process, -coordinator runs fetch the coordinator's span tree
// from GET /v1/trace/{id}.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"slices"
	"strconv"
	"strings"
	"time"

	"zng/internal/campaign"
	"zng/internal/config"
	"zng/internal/experiments"
	"zng/internal/obs"
	"zng/internal/remote"
	"zng/internal/report"
	"zng/internal/simsvc"
	"zng/internal/store"
)

func main() {
	var (
		specFile  = flag.String("spec", "", "campaign spec JSON file (overrides the axis flags)")
		name      = flag.String("name", "", "campaign name (table title)")
		platforms = flag.String("platforms", "", "comma-separated platform axis, e.g. ZnG,HybridGPU")
		scenarios = flag.String("scenarios", "", "comma-separated scenario axis: registered names or '+'-joined ad-hoc compositions like bfs1+gaus*1.5")
		scales    = flag.String("scales", "", "comma-separated scale axis (default 1.0, the Table II budgets)")
		peers     = flag.String("peers", "", "comma-separated zngd peers to fan out across (host:port,...)")
		coord     = flag.String("coordinator", "", "run the campaign inside this zngd fleet coordinator (host:port or URL)")
		resumeID  = flag.String("resume", "", "resume a checkpointed campaign by id on the coordinator (requires -coordinator)")
		cacheDir  = flag.String("cache", "", "persistent result store directory (local execution)")
		workers   = flag.Int("workers", 0, "concurrent in-flight cells (0 = NumCPU)")
		retries   = flag.Int("retries", 1, "extra attempts per failed cell")
		format    = flag.String("format", "", "rendering: md, csv or json (default: text table)")
		verbose   = flag.Bool("v", false, "live progress, runner stats and per-peer counters")
	)
	flag.Parse()

	if *format != "" && !slices.Contains(report.Formats(), *format) {
		fatal(fmt.Errorf("unknown format %q (valid: %s)", *format, strings.Join(report.Formats(), ", ")))
	}

	if *resumeID != "" && *coord == "" {
		fatal(fmt.Errorf("-resume needs -coordinator (the checkpoint lives in the coordinator's store)"))
	}
	if *coord != "" && (*peers != "" || *cacheDir != "") {
		fatal(fmt.Errorf("-coordinator is its own backend; it excludes -peers and -cache"))
	}

	spec, err := buildSpec(*specFile, *name, *platforms, *scenarios, *scales)
	if err != nil {
		fatal(err)
	}

	if *coord != "" {
		if err := runOnCoordinator(*coord, spec, *resumeID, *format, *verbose); err != nil {
			fatal(err)
		}
		return
	}

	// -v traces the campaign end to end (unsampled: the caller asked
	// for this sweep) so the per-stage breakdown prints afterwards.
	// Worker-side spans of a -peers run come back piggybacked on the
	// peers' replies and fold into the same recorder.
	var tracer *obs.Tracer
	if *verbose {
		tracer = obs.New("zngsweep", obs.DefaultCapacity, 1)
	}

	// Pick the execution backend: remote dispatcher > store-backed
	// service > in-memory memo. All three satisfy the same Runner
	// interface, which is the whole point.
	var runner campaign.Runner
	var dispatcher *remote.Dispatcher
	switch {
	case *peers != "" && *cacheDir != "":
		fatal(fmt.Errorf("-peers and -cache are mutually exclusive (the peers own their caches)"))
	case *peers != "":
		d, err := remote.NewDispatcher(splitCSV(*peers), 0)
		if err != nil {
			fatal(err)
		}
		if err := d.CheckHealth(); err != nil {
			fatal(fmt.Errorf("peer health check: %w", err))
		}
		d.SetTracer(tracer)
		dispatcher, runner = d, d
	case *cacheDir != "":
		st, err := store.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		svc := simsvc.New(simsvc.Config{Store: st, Workers: *workers, Tracer: tracer})
		defer svc.Close()
		runner = svc
	default:
		runner = experiments.NewMemo()
	}

	ex := campaign.Executor{Runner: runner, Workers: *workers, Retries: *retries, Tracer: tracer}
	run, err := ex.Start(spec, config.Default())
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "zngsweep: %d cells (%d unique) across %d platforms x %d scenarios\n",
			len(run.Cells()), campaign.UniqueCells(run.Cells()), len(spec.Platforms), len(spec.Scenarios))
		go func() {
			for !run.Done() {
				p := run.Progress()
				fmt.Fprintf(os.Stderr, "zngsweep: %d/%d done, %d failed, %d retried\n",
					p.Done, p.Total, p.Failed, p.Retried)
				time.Sleep(time.Second)
			}
		}()
	}
	start := time.Now()
	out := run.Wait()

	t := out.Table()
	if *format == "" {
		fmt.Println(t)
	} else {
		rendered, err := report.Render(t, *format)
		if err != nil {
			fatal(err)
		}
		if _, err := os.Stdout.Write(rendered); err != nil {
			fatal(err)
		}
	}

	if *verbose {
		fmt.Fprintf(os.Stderr, "zngsweep: campaign finished in %v\n", time.Since(start).Round(time.Millisecond))
		if sr, ok := runner.(experiments.StatsReporter); ok {
			st := sr.Stats()
			fmt.Fprintf(os.Stderr, "zngsweep: %d unique simulations, %d memory hits, %d disk hits, %d coalesced\n",
				st.Sims, st.MemoryHits, st.DiskHits, st.Coalesced)
		}
		printStages(tracer.Stages())
	}
	if dispatcher != nil && (*verbose || out.Failed() > 0) {
		for _, p := range dispatcher.PeerStats() {
			state := "up"
			if p.Down {
				state = "down"
			}
			fmt.Fprintf(os.Stderr, "zngsweep: peer %s: %d cells, %d failures (%s)\n",
				p.Addr, p.Cells, p.Failures, state)
		}
	}
	if err := out.Err(); err != nil {
		fatal(err)
	}
}

// coordCampaign mirrors the daemon's campaign status envelope (the
// campaignInfo/campaignDetail shapes simsvc serves).
type coordCampaign struct {
	ID       string            `json:"id"`
	Name     string            `json:"name"`
	State    string            `json:"state"`
	Trace    string            `json:"trace"`
	Progress campaign.Progress `json:"progress"`
	Errors   []struct {
		Platform string  `json:"platform"`
		Scenario string  `json:"scenario"`
		Scale    float64 `json:"scale"`
		Config   string  `json:"config"`
		Error    string  `json:"error"`
	} `json:"errors"`
	Table json.RawMessage `json:"table"`
}

// runOnCoordinator executes (or resumes) the campaign inside a zngd
// fleet coordinator: POST the spec (or the resume), poll to done,
// render the coordinator's folded matrix through the same emitters a
// local run uses.
func runOnCoordinator(base string, spec campaign.Spec, resumeID, format string, verbose bool) error {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	hc := &http.Client{Timeout: 30 * time.Second}

	var resp *http.Response
	var err error
	if resumeID != "" {
		resp, err = hc.Post(base+"/v1/campaigns/"+resumeID+"/resume", "application/json", strings.NewReader("{}"))
	} else {
		body, merr := json.Marshal(spec)
		if merr != nil {
			return merr
		}
		resp, err = hc.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	}
	if err != nil {
		return err
	}
	var started struct {
		Campaign coordCampaign `json:"campaign"`
		Error    string        `json:"error"`
	}
	if err := decodeReply(resp, &started); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("coordinator refused the campaign (status %d): %s", resp.StatusCode, started.Error)
	}
	id := started.Campaign.ID
	if verbose {
		fmt.Fprintf(os.Stderr, "zngsweep: campaign %s on %s\n", id, base)
	}

	// Poll to done, backing off toward one-second probes.
	delay := 50 * time.Millisecond
	var detail struct {
		coordCampaign
		Error string `json:"error"`
	}
	for {
		resp, err := hc.Get(base + "/v1/campaigns/" + id)
		if err != nil {
			return err
		}
		detail.Errors, detail.Table = nil, nil
		if err := decodeReply(resp, &detail); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("polling campaign %s (status %d): %s", id, resp.StatusCode, detail.Error)
		}
		if detail.State == "done" {
			break
		}
		if verbose {
			p := detail.Progress
			fmt.Fprintf(os.Stderr, "zngsweep: %d/%d done, %d failed, %d retried\n", p.Done, p.Total, p.Failed, p.Retried)
		}
		time.Sleep(delay)
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
	}

	t, err := report.DecodeTable(detail.Table)
	if err != nil {
		return err
	}
	if format == "" {
		fmt.Println(t)
	} else {
		rendered, err := report.Render(t, format)
		if err != nil {
			return err
		}
		if _, err := os.Stdout.Write(rendered); err != nil {
			return err
		}
	}
	for _, ce := range detail.Errors {
		fmt.Fprintf(os.Stderr, "zngsweep: cell %s/%s@%v [%s]: %s\n", ce.Platform, ce.Scenario, ce.Scale, ce.Config, ce.Error)
	}
	if verbose && detail.Trace != "" {
		// The coordinator traced the whole campaign (dispatch, peer
		// round trips, worker queue/tier/sim spans); fold its span tree
		// into the same per-stage view a local -v run prints.
		resp, err := hc.Get(base + "/v1/trace/" + detail.Trace)
		if err == nil {
			var tree struct {
				Spans []obs.Record `json:"spans"`
			}
			if err := decodeReply(resp, &tree); err == nil && resp.StatusCode == http.StatusOK {
				printStages(obs.Stages(tree.Spans))
			}
		}
	}
	if n := len(detail.Errors); n > 0 {
		return fmt.Errorf("%d cells failed on the coordinator", n)
	}
	return nil
}

// printStages renders the per-stage latency breakdown (-v): one row
// per span kind, p50/p95 over every recorded span of that kind.
func printStages(stages []obs.StageStat) {
	if len(stages) == 0 {
		return
	}
	fmt.Fprintln(os.Stderr, "zngsweep: per-stage latency:")
	fmt.Fprintf(os.Stderr, "zngsweep:   %-16s %8s %12s %12s\n", "stage", "count", "p50", "p95")
	for _, s := range stages {
		fmt.Fprintf(os.Stderr, "zngsweep:   %-16s %8d %10.3fms %10.3fms\n", s.Name, s.Count, s.P50MS, s.P95MS)
	}
}

func decodeReply(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("undecodable coordinator reply (status %d): %w", resp.StatusCode, err)
	}
	return nil
}

// buildSpec loads the spec file, or assembles a spec from the axis
// flags. Flags layered on top of a file override its axes, so a saved
// spec can be re-run at another scale without editing it.
func buildSpec(specFile, name, platforms, scenarios, scales string) (campaign.Spec, error) {
	var spec campaign.Spec
	if specFile != "" {
		b, err := os.ReadFile(specFile)
		if err != nil {
			return spec, err
		}
		dec := json.NewDecoder(bytes.NewReader(b))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return spec, fmt.Errorf("parsing %s: %w", specFile, err)
		}
	}
	if name != "" {
		spec.Name = name
	}
	if platforms != "" {
		spec.Platforms = splitCSV(platforms)
	}
	if scenarios != "" {
		// Entries are registered names or '+'-joined compositions
		// ("bfs1+gaus*1.5"), so ',' always separates scenarios — an
		// ad-hoc co-run can never be silently split into solo cells.
		spec.Scenarios = splitCSV(scenarios)
	}
	if scales != "" {
		spec.Scales = nil
		for _, s := range splitCSV(scales) {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return spec, fmt.Errorf("bad -scales entry %q: %w", s, err)
			}
			spec.Scales = append(spec.Scales, v)
		}
	}
	// No scale default here: Expand's own {1.0} applies, so the same
	// spec means the same cells whether it runs through zngsweep, the
	// library, or POST /v1/campaigns.
	return spec, nil
}

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zngsweep:", err)
	os.Exit(1)
}
