// Command zngload drives a running zngd daemon with a sustained
// synthetic request load and reports what the serving path delivered:
// throughput, client-observed latency quantiles, per-tier hit counts
// and admission rejections, as one JSON document on stdout.
//
// Usage:
//
//	zngload -addr 127.0.0.1:8080 -concurrency 16 -duration 10s
//	zngload -addr $ADDR -scenarios solo-bfs1,solo-gaus -scales 0.05,0.1 \
//	        -min-rps 50 -max-p99 2s        # CI gate: non-zero exit below floors
//
// The generator rotates -concurrency workers over the cell grid
// (scenarios × scales), so after the first pass every request is a
// hot-path hit — the memory tier (or the store) is what is being
// measured, exactly the regime an always-on daemon serves. A 429
// reply counts as rejected (never as an error) and the worker backs
// off briefly; any other non-200 counts as an error and fails the
// gate.
//
// With -min-rps or -max-p99 set, zngload exits non-zero when the run
// missed the floor — the CI regression gate for serving throughput
// and tail latency.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zng/internal/latency"
	"zng/internal/obs"
)

// loadConfig parameterizes one load run.
type loadConfig struct {
	Addr        string
	Concurrency int
	Duration    time.Duration
	Platform    string
	Scenarios   []string
	Scales      []float64
	Timeout     time.Duration
	MinRPS      float64
	MaxP99      time.Duration
}

// reportDoc is the stdout JSON document.
type reportDoc struct {
	DurationS     float64          `json:"duration_s"`
	Concurrency   int              `json:"concurrency"`
	Requests      uint64           `json:"requests"`
	OK            uint64           `json:"ok"`
	Rejected      uint64           `json:"rejected"` // 429s: shed load, not failures
	Errors        uint64           `json:"errors"`
	ThroughputRPS float64          `json:"throughput_rps"`
	Latency       latency.Snapshot `json:"latency"`
	// Tiers counts the source of the job satisfying each request
	// (memory/disk/sim). A request attaching to a retained completed
	// job inherits that job's original source, so against a daemon
	// whose -max-jobs bound never evicts, a hot cell keeps reporting
	// how it was first computed.
	Tiers map[string]uint64 `json:"tiers"`
	// Stages is the daemon's server-side per-stage latency breakdown
	// (GET /v1/trace/stats) over whatever spans its flight recorder
	// held after the run — empty when the daemon runs untraced.
	Stages   []obs.StageStat `json:"stages,omitempty"`
	MinRPS   float64         `json:"min_rps,omitempty"`
	MaxP99MS float64         `json:"max_p99_ms,omitempty"`
	Pass     bool            `json:"pass"`
}

func main() {
	var (
		addr        = flag.String("addr", "", "zngd address (host:port, required)")
		concurrency = flag.Int("concurrency", 8, "concurrent request workers")
		duration    = flag.Duration("duration", 10*time.Second, "how long to sustain the load")
		platformF   = flag.String("platform", "GDDR5", "platform for every request")
		scenarios   = flag.String("scenarios", "solo-bfs1,solo-gaus,solo-pr", "comma-separated scenario names to rotate over")
		scales      = flag.String("scales", "0.05", "comma-separated scale factors to rotate over")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		minRPS      = flag.Float64("min-rps", 0, "fail (exit 1) below this sustained throughput (0 = no floor)")
		maxP99      = flag.Duration("max-p99", 0, "fail (exit 1) above this client-observed p99 (0 = no ceiling)")
	)
	flag.Parse()
	if *addr == "" {
		fatal(fmt.Errorf("-addr is required"))
	}
	cfg := loadConfig{
		Addr:        *addr,
		Concurrency: *concurrency,
		Duration:    *duration,
		Platform:    *platformF,
		Scenarios:   strings.Split(*scenarios, ","),
		Timeout:     *timeout,
		MinRPS:      *minRPS,
		MaxP99:      *maxP99,
	}
	for _, s := range strings.Split(*scales, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatal(fmt.Errorf("parsing -scales: %w", err))
		}
		cfg.Scales = append(cfg.Scales, v)
	}

	doc, err := run(cfg)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
	if !doc.Pass {
		fmt.Fprintln(os.Stderr, "zngload: floors not met")
		os.Exit(1)
	}
}

// cell is one point of the request grid.
type cell struct {
	scenario string
	scale    float64
}

// run sustains the load and folds the outcome into the report.
func run(cfg loadConfig) (reportDoc, error) {
	if cfg.Concurrency <= 0 {
		return reportDoc{}, fmt.Errorf("concurrency must be positive, got %d", cfg.Concurrency)
	}
	var grid []cell
	for _, sc := range cfg.Scenarios {
		sc = strings.TrimSpace(sc)
		if sc == "" {
			continue
		}
		for _, s := range cfg.Scales {
			grid = append(grid, cell{scenario: sc, scale: s})
		}
	}
	if len(grid) == 0 {
		return reportDoc{}, fmt.Errorf("empty scenario grid")
	}

	var (
		requests, ok, rejected, errs atomic.Uint64
		memHits, diskHits, simHits   atomic.Uint64
		hist                         latency.Histogram
		wg                           sync.WaitGroup
	)
	client := &http.Client{Timeout: cfg.Timeout}
	url := "http://" + cfg.Addr + "/v1/run"
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	for g := 0; g < cfg.Concurrency; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Workers start at staggered grid offsets so the first pass
			// already spreads across cells instead of stampeding one.
			for i := g; time.Now().Before(deadline); i++ {
				c := grid[i%len(grid)]
				body, _ := json.Marshal(map[string]any{
					"platform": cfg.Platform, "mix": c.scenario, "scale": c.scale,
				})
				reqStart := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				requests.Add(1)
				if err != nil {
					errs.Add(1)
					continue
				}
				var reply struct {
					Job struct {
						Source string `json:"source"`
					} `json:"job"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&reply)
				resp.Body.Close()
				hist.Observe(time.Since(reqStart))
				switch {
				case resp.StatusCode == http.StatusOK && decErr == nil:
					ok.Add(1)
					switch reply.Job.Source {
					case "memory":
						memHits.Add(1)
					case "disk":
						diskHits.Add(1)
					case "sim":
						simHits.Add(1)
					}
				case resp.StatusCode == http.StatusTooManyRequests:
					// Shed load is the admission control working. Back off
					// briefly (not the full Retry-After — the point of the
					// harness is to keep pressure on) and keep driving.
					rejected.Add(1)
					time.Sleep(10 * time.Millisecond)
				default:
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	doc := reportDoc{
		DurationS:   elapsed.Seconds(),
		Concurrency: cfg.Concurrency,
		Requests:    requests.Load(),
		OK:          ok.Load(),
		Rejected:    rejected.Load(),
		Errors:      errs.Load(),
		Latency:     hist.Snapshot(),
		Tiers: map[string]uint64{
			"memory": memHits.Load(),
			"disk":   diskHits.Load(),
			"sim":    simHits.Load(),
		},
		MinRPS: cfg.MinRPS,
	}
	if elapsed > 0 {
		doc.ThroughputRPS = float64(doc.OK) / elapsed.Seconds()
	}
	if cfg.MaxP99 > 0 {
		doc.MaxP99MS = float64(cfg.MaxP99) / float64(time.Millisecond)
	}
	doc.Stages = fetchStages(client, cfg.Addr)
	doc.Pass = doc.Errors == 0 &&
		(cfg.MinRPS <= 0 || doc.ThroughputRPS >= cfg.MinRPS) &&
		(cfg.MaxP99 <= 0 || doc.Latency.P99MS <= doc.MaxP99MS)
	return doc, nil
}

// fetchStages pulls the daemon's server-side stage breakdown; any
// failure (old daemon, tracing disabled) just leaves the field empty —
// the load report never fails over observability.
func fetchStages(client *http.Client, addr string) []obs.StageStat {
	resp, err := client.Get("http://" + addr + "/v1/trace/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var reply struct {
		Stages []obs.StageStat `json:"stages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil
	}
	return reply.Stages
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zngload:", err)
	os.Exit(1)
}
