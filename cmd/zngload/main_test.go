package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zng/internal/config"
	"zng/internal/platform"
	"zng/internal/simsvc"
	"zng/internal/workload"
)

// fastSim is an instant stub so the harness tests measure the load
// loop, not the simulator.
func fastSim(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	return platform.Result{Kind: kind, Workload: mix.Name, IPC: 1.5}, nil
}

// testDaemon serves the real zngd HTTP API over a stubbed service.
func testDaemon(t *testing.T, svcCfg simsvc.Config) (addr string) {
	t.Helper()
	if svcCfg.Simulate == nil {
		svcCfg.Simulate = fastSim
	}
	if svcCfg.Workers == 0 {
		svcCfg.Workers = 2
	}
	svc := simsvc.New(svcCfg)
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(simsvc.NewHandler(svc, config.Default()))
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// TestRunDrivesDaemon: a short run against a live handler completes
// with zero errors, every success attributed to a tier, and a
// populated latency summary.
func TestRunDrivesDaemon(t *testing.T) {
	addr := testDaemon(t, simsvc.Config{CacheEntries: 64})
	doc, err := run(loadConfig{
		Addr:        addr,
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Platform:    "GDDR5",
		Scenarios:   []string{"solo-bfs1", "solo-gaus"},
		Scales:      []float64{0.05},
		Timeout:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Requests == 0 || doc.OK == 0 {
		t.Fatalf("no load driven: %+v", doc)
	}
	if doc.Errors != 0 {
		t.Fatalf("errors against a healthy daemon: %+v", doc)
	}
	if !doc.Pass {
		t.Errorf("no floors set but Pass = false: %+v", doc)
	}
	if got := doc.Tiers["memory"] + doc.Tiers["disk"] + doc.Tiers["sim"]; got != doc.OK {
		t.Errorf("tier counts sum to %d, want every OK (%d) attributed", got, doc.OK)
	}
	if doc.Latency.Count == 0 || doc.Latency.P99MS <= 0 {
		t.Errorf("latency summary empty: %+v", doc.Latency)
	}
	if doc.ThroughputRPS <= 0 {
		t.Errorf("throughput = %v", doc.ThroughputRPS)
	}
}

// TestRunFloors: an unreachable throughput floor fails the gate, and
// a generous one passes — the CI contract.
func TestRunFloors(t *testing.T) {
	addr := testDaemon(t, simsvc.Config{CacheEntries: 64})
	base := loadConfig{
		Addr:        addr,
		Concurrency: 2,
		Duration:    200 * time.Millisecond,
		Platform:    "GDDR5",
		Scenarios:   []string{"solo-bfs1"},
		Scales:      []float64{0.05},
		Timeout:     10 * time.Second,
	}

	impossible := base
	impossible.MinRPS = 1e12
	doc, err := run(impossible)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Pass {
		t.Errorf("Pass = true at min-rps 1e12 (rps %v)", doc.ThroughputRPS)
	}

	generous := base
	generous.MinRPS = 0.001
	generous.MaxP99 = time.Hour
	doc, err = run(generous)
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Pass {
		t.Errorf("Pass = false under trivial floors: %+v", doc)
	}
}

// TestRunRejectionsAreNotErrors: a daemon shedding load with 429s
// yields rejected > 0, errors == 0, and a passing gate — admission
// control working is not a harness failure.
func TestRunRejectionsAreNotErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()
	doc, err := run(loadConfig{
		Addr:        strings.TrimPrefix(ts.URL, "http://"),
		Concurrency: 2,
		Duration:    150 * time.Millisecond,
		Platform:    "GDDR5",
		Scenarios:   []string{"solo-bfs1"},
		Scales:      []float64{0.05},
		Timeout:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Rejected == 0 {
		t.Fatalf("no rejections recorded: %+v", doc)
	}
	if doc.Errors != 0 || !doc.Pass {
		t.Errorf("429s counted as errors: %+v", doc)
	}
}

// TestRunServerErrorsFailTheGate: a 500-ing daemon must fail even
// with no floors configured.
func TestRunServerErrorsFailTheGate(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()
	doc, err := run(loadConfig{
		Addr:        strings.TrimPrefix(ts.URL, "http://"),
		Concurrency: 1,
		Duration:    100 * time.Millisecond,
		Platform:    "GDDR5",
		Scenarios:   []string{"solo-bfs1"},
		Scales:      []float64{0.05},
		Timeout:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Errors == 0 || doc.Pass {
		t.Errorf("server errors did not fail the gate: %+v", doc)
	}
}

// TestRunRejectsDegenerateConfigs pins the argument validation.
func TestRunRejectsDegenerateConfigs(t *testing.T) {
	if _, err := run(loadConfig{Concurrency: 0, Scenarios: []string{"s"}, Scales: []float64{1}}); err == nil {
		t.Error("concurrency 0 accepted")
	}
	if _, err := run(loadConfig{Concurrency: 1}); err == nil {
		t.Error("empty grid accepted")
	}
}
