// Command zngfig regenerates the ZnG paper's tables and figures.
//
// Usage:
//
//	zngfig -fig fig10 [-scale 2.0] [-mixes betw-back,pr-gaus] [-workers 8]
//	zngfig -fig all -out out -format csv
//	zngfig -fig docs -out docs
//	zngfig -fig all [-v]
//
// Figure ids come from the experiments registry (experiments.Registry);
// run with an unknown id to get the current list. Two meta-targets
// exist: "all" regenerates every registered figure, and "docs"
// regenerates the repository's generated documents docs/EXPERIMENTS.md
// and docs/DESIGN.md at the canonical docs scale (CI diffs them, so
// their output is deterministic).
//
// -format selects md, csv or json rendering; -out writes one file per
// figure (<id>.<format>) into a directory instead of printing. Without
// either, figures print as plain text tables.
//
// The figure drivers share one simulation runner per invocation: any
// (kind, mix, scale, config) cell is simulated once no matter how
// many figures need it, which is what makes `-fig all` tractable at
// full scale. With -cache DIR the runner is the persistent
// content-addressed store shared with zngsim and the zngd daemon, so
// cells survive across invocations too. -v reports per-figure
// wall-clock and the dedup ratio (memory vs disk hits).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"time"

	"zng/internal/experiments"
	"zng/internal/report"
	"zng/internal/simsvc"
	"zng/internal/stats"
	"zng/internal/store"
	"zng/internal/workload"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure id to regenerate, or all, or docs")
		scale    = flag.Float64("scale", experiments.DefaultScale, "trace scale (1.0 = Table II budgets)")
		mixesCS  = flag.String("mixes", "", "comma-separated workload scenarios (default: the 12 paper pairs)")
		workers  = flag.Int("workers", 0, "parallel simulations (0 = NumCPU)")
		outDir   = flag.String("out", "", "write figures to this directory instead of stdout")
		format   = flag.String("format", "", "rendering: md, csv or json (default: text to stdout, md with -out)")
		cacheDir = flag.String("cache", "", "read-through/write-through persistent result store directory")
		verbose  = flag.Bool("v", false, "report per-figure wall-clock and simulation-runner stats")
	)
	flag.Parse()

	// With -cache the figure suite runs through the store-backed
	// service (the same code path zngsim and zngd use); without it,
	// DefaultOptions' in-memory memo already dedups within this run.
	var runner experiments.Runner
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		svc := simsvc.New(simsvc.Config{Store: st, Workers: *workers})
		defer svc.Close()
		runner = svc
	}

	// Reject NaN and ±Inf along with non-positives: a non-finite scale
	// would otherwise reach the store's key hasher, which cannot encode
	// it.
	if !(*scale > 0) || math.IsInf(*scale, 0) {
		fatal(fmt.Errorf("scale must be positive and finite, got %v", *scale))
	}
	// Reject a bad format before any simulation runs: at full scale a
	// figure costs minutes, and report.Render would only error after.
	if *format != "" && !slices.Contains(report.Formats(), *format) {
		fatal(fmt.Errorf("unknown format %q (valid: %s)", *format, strings.Join(report.Formats(), ", ")))
	}

	if *fig == "docs" {
		// The docs target always renders Markdown documents; reject a
		// contradictory -format instead of silently ignoring it.
		if *format != "" && *format != "md" {
			fatal(fmt.Errorf("-fig docs renders Markdown documents; -format %s is not supported", *format))
		}
		// Docs default to the canonical DocsOptions regime so
		// `zngfig -fig docs` always reproduces the committed files;
		// explicit flags still override for ad-hoc larger runs.
		o := experiments.DocsOptions()
		if runner != nil {
			o.Runner = runner
		}
		applyExplicitFlags(&o, *scale, *mixesCS, *workers)
		dir := *outDir
		if dir == "" {
			dir = "docs"
			// Warn when an override would clobber the canonical
			// committed docs with non-canonical content. The scenario
			// vocabulary is much larger than the canonical 12-pair set,
			// so compare the actual mix identities, not just the count.
			if canonical := experiments.DocsOptions(); o.Scale != canonical.Scale || !sameMixes(o.Mixes, canonical.Mixes) {
				fmt.Fprintln(os.Stderr, "zngfig: warning: non-canonical -scale/-mixes writing into docs/; the CI freshness job will flag the drift (use -out DIR for ad-hoc runs)")
			}
		}
		start := time.Now()
		ds, err := report.WriteDocs(dir, o)
		if err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "zngfig: docs -> %s in %v (%d/%d shape checks pass)\n",
				dir, time.Since(start).Round(time.Millisecond), ds.Passed, ds.Checked)
			reportRunner(o.Runner)
		}
		// The docs record FAIL verdicts honestly, but the run itself
		// must go red so a shape regression cannot land with green CI.
		if ds.Failed > 0 {
			fatal(fmt.Errorf("%d of %d shape checks FAILED — see %s/EXPERIMENTS.md", ds.Failed, ds.Checked, dir))
		}
		return
	}

	o := experiments.DefaultOptions()
	if runner != nil {
		o.Runner = runner
	}
	applyExplicitFlags(&o, *scale, *mixesCS, *workers)

	ids := []string{*fig}
	if *fig == "all" {
		ids = experiments.FigureIDs()
	}
	// Several JSON documents on one stdout would not parse; collect
	// the tables and emit a single array instead.
	collectJSON := *outDir == "" && *format == "json" && len(ids) > 1
	var collected []*stats.Table
	for _, id := range ids {
		f, err := experiments.FigureByID(id)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		if collectJSON {
			t, err := f.Run(o)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
			collected = append(collected, t)
		} else if err := emit(f, o, *outDir, *format); err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "zngfig: %s in %v\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if collectJSON {
		if _, err := os.Stdout.Write(report.JSONAll(collected)); err != nil {
			fatal(err)
		}
	}
	if *verbose {
		reportRunner(o.Runner)
	}
}

// applyExplicitFlags folds only the flags the user actually set into
// o, so meta-targets with their own defaults (docs) are not clobbered
// by flag package defaults.
func applyExplicitFlags(o *experiments.Options, scale float64, mixesCS string, workers int) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "scale":
			o.Scale = scale
		case "workers":
			o.Workers = workers
		case "mixes":
			if mixesCS == "" {
				return // explicit -mixes "" keeps the default set
			}
			o.Mixes = nil
			for _, name := range strings.Split(mixesCS, ",") {
				m, err := workload.MixByName(strings.TrimSpace(name))
				if err != nil {
					fatal(err)
				}
				o.Mixes = append(o.Mixes, m)
			}
		}
	})
}

// sameMixes reports whether two scenario lists are identical in order,
// names and composition.
func sameMixes(a, b []workload.Mix) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].ID() != b[i].ID() {
			return false
		}
	}
	return true
}

// emit runs one figure and delivers it: to stdout in text (default) or
// the requested format, or into outDir as <id>.<format>.
func emit(f experiments.Figure, o experiments.Options, outDir, format string) error {
	t, err := f.Run(o)
	if err != nil {
		return err
	}
	if outDir == "" {
		if format == "" {
			fmt.Println(t)
			return nil
		}
		out, err := report.Render(t, format)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(out)
		return err
	}
	if format == "" {
		format = "md"
	}
	out, err := report.Render(t, format)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(outDir, f.ID+"."+format), out, 0o644)
}

// reportRunner prints the dedup ratio of whatever runner the suite
// ran under: how many cells actually simulated, and how the rest were
// served (memory vs the persistent store vs coalesced onto a flight).
func reportRunner(r experiments.Runner) {
	sr, ok := r.(experiments.StatsReporter)
	if !ok {
		return
	}
	st := sr.Stats()
	fmt.Fprintf(os.Stderr, "zngfig: %d unique simulations, %d memory hits, %d disk hits, %d coalesced\n",
		st.Sims, st.MemoryHits, st.DiskHits, st.Coalesced)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zngfig:", err)
	os.Exit(1)
}
