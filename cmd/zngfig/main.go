// Command zngfig regenerates the ZnG paper's tables and figures.
//
// Usage:
//
//	zngfig -fig fig10 [-scale 2.0] [-pairs betw-back,pr-gaus] [-workers 8]
//	zngfig -fig all [-v]
//
// Figure ids: table1 table2 fig1b fig3 fig4c fig4d fig5a fig5bcd fig8b
// fig10 fig11 fig12 fig13 abl-writenet abl-gc abl-l2 all.
//
// The figure drivers share a process-wide simulation memo: any (kind,
// pair, scale, config) cell is simulated once per invocation no matter
// how many figures need it, which is what makes `-fig all` tractable
// at full scale. -v reports per-figure wall-clock and the dedup ratio.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"zng/internal/experiments"
	"zng/internal/stats"
	"zng/internal/workload"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure id to regenerate")
		scale   = flag.Float64("scale", experiments.DefaultScale, "trace scale (1.0 = Table II budgets)")
		pairsCS = flag.String("pairs", "", "comma-separated co-run pairs (default: all 12)")
		workers = flag.Int("workers", 0, "parallel simulations (0 = NumCPU)")
		verbose = flag.Bool("v", false, "report per-figure wall-clock and simulation-memo stats")
	)
	flag.Parse()

	if *scale <= 0 {
		fatal(fmt.Errorf("scale must be positive, got %v", *scale))
	}
	o := experiments.DefaultOptions()
	o.Scale = *scale
	o.Workers = *workers
	if *pairsCS != "" {
		o.Pairs = nil
		for _, name := range strings.Split(*pairsCS, ",") {
			p, err := workload.PairByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			o.Pairs = append(o.Pairs, p)
		}
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = []string{"table1", "table2", "fig1b", "fig3", "fig4c", "fig4d",
			"fig5a", "fig5bcd", "fig8b", "fig10", "fig11", "fig12", "fig13",
			"abl-writenet", "abl-gc", "abl-l2"}
	}
	for _, id := range ids {
		start := time.Now()
		if err := run(id, o); err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "zngfig: %s in %v\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if *verbose {
		sims, hits := experiments.CacheStats()
		fmt.Fprintf(os.Stderr, "zngfig: %d unique simulations, %d served from memo\n", sims, hits)
	}
}

func run(id string, o experiments.Options) error {
	var (
		t   *stats.Table
		err error
	)
	switch id {
	case "table1":
		t = experiments.TableI(o.Cfg)
	case "table2":
		t = experiments.TableII(min1(o.Scale))
	case "fig1b":
		t = experiments.Fig1b(o.Cfg)
	case "fig3":
		t = experiments.Fig3(o.Cfg)
	case "fig4c":
		t = experiments.Fig4c(o.Cfg)
	case "fig4d":
		t, _, _ = experiments.Fig4d(o.Cfg)
	case "fig5a":
		t, _, err = experiments.Fig5a(o)
	case "fig5bcd":
		t, err = experiments.Fig5bcd(o)
	case "fig8b":
		t, _, err = experiments.Fig8b(o)
	case "fig10":
		t, _, err = experiments.Fig10(o)
	case "fig11":
		t, _, err = experiments.Fig11(o)
	case "fig12":
		t, err = experiments.Fig12(o)
	case "fig13":
		t, _, err = experiments.Fig13Sweep(o)
	case "abl-writenet":
		t, _, err = experiments.AblationWriteNet(o)
	case "abl-gc":
		t, _ = experiments.AblationGC()
	case "abl-l2":
		t, _, err = experiments.AblationL2(o)
	default:
		return fmt.Errorf("unknown figure id %q", id)
	}
	if err != nil {
		return err
	}
	fmt.Println(t)
	return nil
}

func min1(s float64) float64 {
	if s > 1 {
		return 1
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zngfig:", err)
	os.Exit(1)
}
