// Graph analytics: run three graph-analysis co-run workloads across
// the memory architectures the paper compares (Hetero, HybridGPU,
// Optane, ZnG) and print the normalized-IPC table — a miniature
// Fig. 10.
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"
	"log"

	"zng/internal/config"
	"zng/internal/platform"
	"zng/internal/stats"
	"zng/internal/workload"
)

func main() {
	cfg := config.Default()
	kinds := []platform.Kind{platform.Hetero, platform.HybridGPU, platform.Optane, platform.ZnG}
	mixes := []string{"bfs1-gaus", "pr-gaus", "sssp3-gram"}
	const scale = 0.25

	t := stats.NewTable("Normalized IPC (ZnG = 1.0)",
		"workload", "Hetero", "HybridGPU", "Optane", "ZnG")
	for _, name := range mixes {
		mix, err := workload.MixByName(name)
		if err != nil {
			log.Fatal(err)
		}
		ipc := map[platform.Kind]float64{}
		for _, k := range kinds {
			r, err := platform.RunMix(k, mix, scale, cfg)
			if err != nil {
				log.Fatal(err)
			}
			ipc[k] = r.IPC
		}
		ref := ipc[platform.ZnG]
		t.AddRow(name, ipc[platform.Hetero]/ref, ipc[platform.HybridGPU]/ref,
			ipc[platform.Optane]/ref, 1.0)
	}
	fmt.Println(t)
	fmt.Println("Expected shape: ZnG > Optane > HybridGPU ~ Hetero (Fig. 10).")
}
