// Quickstart: simulate the full ZnG architecture on one co-run
// workload and compare it against HybridGPU — the paper's headline
// experiment in a dozen lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"zng/internal/config"
	"zng/internal/platform"
	"zng/internal/workload"
)

func main() {
	cfg := config.Default() // Table I system configuration
	mix, err := workload.MixByName("betw-back")
	if err != nil {
		log.Fatal(err)
	}

	// A modest trace scale keeps the example under a few seconds.
	const scale = 0.25

	zng, err := platform.RunMix(platform.ZnG, mix, scale, cfg)
	if err != nil {
		log.Fatal(err)
	}
	hybrid, err := platform.RunMix(platform.HybridGPU, mix, scale, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s at scale %.2f\n\n", mix.Name, scale)
	fmt.Printf("%-10s  %8s  %10s  %12s\n", "platform", "IPC", "L2 hit", "flash GB/s")
	for _, r := range []platform.Result{hybrid, zng} {
		fmt.Printf("%-10s  %8.4f  %10.3f  %12.2f\n",
			r.Kind, r.IPC, r.L2HitRate, r.FlashArrayGBps())
	}
	fmt.Printf("\nZnG speedup over HybridGPU: %.1fx (paper reports 7.5x on average)\n",
		zng.IPC/hybrid.IPC)
}
