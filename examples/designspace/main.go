// Design space: explore two of ZnG's design choices — the prefetch
// waste thresholds of Section V-D and the flash-register interconnect
// of Section IV-C (SWnet vs FCnet vs NiF).
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"zng/internal/experiments"
)

func main() {
	o := experiments.DefaultOptions()
	o.Scale = 0.25 // keep the example quick
	// Scale the L2s with the trace so the prefetch monitor actually
	// sees eviction pressure (full-scale runs use the Table I sizes).
	o.Cfg.L2SRAM.Sets /= 8
	o.Cfg.L2STT.Sets /= 8

	fmt.Println("Sweeping prefetch waste thresholds (Section V-D)...")
	sweep, grid, err := experiments.Fig13Sweep(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sweep)

	best := [2]float64{}
	bestIPC := 0.0
	for k, v := range grid {
		if v > bestIPC {
			bestIPC = v
			best = k
		}
	}
	fmt.Printf("best thresholds: high=%.2f low=%.2f (paper: 0.3 / 0.05)\n\n", best[0], best[1])

	fmt.Println("Comparing register interconnects (Section IV-C)...")
	nets, _, err := experiments.AblationWriteNet(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(nets)
	fmt.Println("NiF should match FCnet closely at a fraction of its wiring cost,")
	fmt.Println("while SWnet pays for routing migrations through the flash network.")
}
