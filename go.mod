module zng

go 1.24
