package sim

// Resource models a unit that serves one request at a time with a
// per-request service latency — an SSD-engine core, a DMA engine, a
// page-table-walker thread. Requests queue FIFO; Acquire returns the
// tick at which service completes.
type Resource struct {
	eng  *Engine
	free Tick

	served uint64
	busy   Tick
}

// NewResource returns an idle resource.
func NewResource(eng *Engine) *Resource { return &Resource{eng: eng} }

// Acquire occupies the resource for dur ticks starting at the later of
// now and its previous completion, then schedules fn. It returns the
// completion tick.
func (r *Resource) Acquire(dur Tick, fn func()) Tick {
	start := r.eng.Now()
	if r.free > start {
		start = r.free
	}
	if dur < 0 {
		dur = 0
	}
	r.free = start + dur
	r.served++
	r.busy += dur
	if fn != nil {
		r.eng.ScheduleAt(r.free, fn)
	}
	return r.free
}

// NextFree reports when the resource becomes idle.
func (r *Resource) NextFree() Tick { return r.free }

// Served reports the number of Acquire calls.
func (r *Resource) Served() uint64 { return r.served }

// BusyTicks reports cumulative occupancy.
func (r *Resource) BusyTicks() Tick { return r.busy }

// Pool models k identical parallel servers (e.g. the 2–5 embedded
// cores of an SSD controller, or the 32 threads of the page-table
// walker). Each request is dispatched to the earliest-free server.
type Pool struct {
	eng     *Engine
	servers []Tick

	served uint64
	busy   Tick
}

// NewPool creates a pool of k servers. k must be positive.
func NewPool(eng *Engine, k int) *Pool {
	if k <= 0 {
		panic("sim: pool size must be positive")
	}
	return &Pool{eng: eng, servers: make([]Tick, k)}
}

// Size reports the number of servers.
func (p *Pool) Size() int { return len(p.servers) }

// Acquire dispatches a request of duration dur to the earliest-free
// server, schedules fn at completion, and returns the completion tick.
func (p *Pool) Acquire(dur Tick, fn func()) Tick {
	best := 0
	for i, f := range p.servers {
		if f < p.servers[best] {
			best = i
		}
	}
	start := p.eng.Now()
	if p.servers[best] > start {
		start = p.servers[best]
	}
	if dur < 0 {
		dur = 0
	}
	p.servers[best] = start + dur
	p.served++
	p.busy += dur
	if fn != nil {
		p.eng.ScheduleAt(p.servers[best], fn)
	}
	return p.servers[best]
}

// Served reports the number of Acquire calls.
func (p *Pool) Served() uint64 { return p.served }

// BusyTicks reports cumulative occupancy summed over servers.
func (p *Pool) BusyTicks() Tick { return p.busy }
