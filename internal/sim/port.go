package sim

// Port models a bandwidth-limited, serialized link: a memory channel,
// an ONFI flash channel, a PCIe lane bundle, or one output of a mesh
// router. Transfers occupy the port back to back; a transfer of n
// bytes holds the port for ceil(n/width) ticks and is delivered
// latency ticks after its serialization completes.
//
// This "next free time" model yields the correct saturation bandwidth
// and first-order queueing delay without flit-level detail, which is
// the fidelity the paper's bandwidth figures require.
type Port struct {
	eng *Engine
	// Width is the number of bytes the port moves per tick.
	width float64
	// Latency is the propagation delay added after serialization.
	latency Tick
	// free is the first tick at which the port can accept a new transfer.
	free Tick

	// Accounting.
	bytes     uint64
	transfers uint64
	busy      Tick
}

// NewPort creates a port moving width bytes per tick with the given
// propagation latency. Width must be positive.
func NewPort(eng *Engine, width float64, latency Tick) *Port {
	if width <= 0 {
		panic("sim: port width must be positive")
	}
	return &Port{eng: eng, width: width, latency: latency}
}

// Width reports the port's bandwidth in bytes per tick.
func (p *Port) Width() float64 { return p.width }

// Send queues a transfer of n bytes and schedules fn at delivery time.
// It returns the delivery tick.
func (p *Port) Send(n int, fn func()) Tick {
	start := p.eng.Now()
	if p.free > start {
		start = p.free
	}
	dur := p.serialization(n)
	p.free = start + dur
	p.bytes += uint64(n)
	p.transfers++
	p.busy += dur
	deliver := p.free + p.latency
	if fn != nil {
		p.eng.ScheduleAt(deliver, fn)
	}
	return deliver
}

// NextFree reports the earliest tick a new transfer could begin.
func (p *Port) NextFree() Tick { return p.free }

// Bytes reports the total bytes transferred.
func (p *Port) Bytes() uint64 { return p.bytes }

// Transfers reports the number of Send calls.
func (p *Port) Transfers() uint64 { return p.transfers }

// BusyTicks reports the cumulative serialization occupancy.
func (p *Port) BusyTicks() Tick { return p.busy }

func (p *Port) serialization(n int) Tick {
	if n <= 0 {
		return 0
	}
	d := Tick(float64(n) / p.width)
	if float64(d)*p.width < float64(n) {
		d++
	}
	if d < 1 {
		d = 1
	}
	return d
}
