package sim

import (
	"testing"
	"testing/quick"

	"zng/internal/rng"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10, func() { got = append(got, 2) })
	e.Schedule(5, func() { got = append(got, 1) })
	e.Schedule(10, func() { got = append(got, 3) }) // same tick: FIFO
	e.Schedule(20, func() { got = append(got, 4) })
	e.Run()
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Errorf("Now() = %d, want 20", e.Now())
	}
	if e.Fired() != 4 {
		t.Errorf("Fired() = %d, want 4", e.Fired())
	}
}

func TestEngineScheduleDuringRun(t *testing.T) {
	e := NewEngine()
	var ticks []Tick
	e.Schedule(1, func() {
		ticks = append(ticks, e.Now())
		e.Schedule(9, func() { ticks = append(ticks, e.Now()) })
	})
	e.Run()
	if len(ticks) != 2 || ticks[0] != 1 || ticks[1] != 10 {
		t.Fatalf("ticks = %v, want [1 10]", ticks)
	}
}

func TestEngineZeroAndNegativeDelay(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {
		now := e.Now()
		e.Schedule(0, func() {
			if e.Now() != now {
				t.Errorf("zero-delay event fired at %d, want %d", e.Now(), now)
			}
		})
		e.Schedule(-3, func() {
			if e.Now() != now {
				t.Errorf("negative-delay event fired at %d, want %d", e.Now(), now)
			}
		})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for _, d := range []Tick{1, 5, 10, 15} {
		e.Schedule(d, func() { fired++ })
	}
	e.RunUntil(10)
	if fired != 3 {
		t.Errorf("fired = %d after RunUntil(10), want 3", fired)
	}
	if e.Now() != 10 {
		t.Errorf("Now() = %d, want 10", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
	e.RunFor(5)
	if fired != 4 {
		t.Errorf("fired = %d after RunFor(5), want 4", fired)
	}
}

func TestEngineScheduleAtPastClamps(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		e.ScheduleAt(3, func() {
			if e.Now() != 10 {
				t.Errorf("past event fired at %d, want clamp to 10", e.Now())
			}
		})
	})
	e.Run()
}

// Property: events always fire in nondecreasing time order, regardless
// of schedule order.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Tick(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(Tick(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: same-tick events fire FIFO even under random interleaving.
// This pins the ordering contract of the 4-ary heap: within one tick,
// events fire in exactly the order they were scheduled.
func TestEngineSameTickFIFO(t *testing.T) {
	r := rng.New(1)
	e := NewEngine()
	const n = 2000
	type fired struct {
		tick Tick
		idx  int
	}
	var got []fired
	for i := 0; i < n; i++ {
		i := i
		e.Schedule(Tick(r.Intn(5)), func() { got = append(got, fired{e.Now(), i}) })
	}
	e.Run()
	if len(got) != n {
		t.Fatalf("fired %d events, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i].tick < got[i-1].tick {
			t.Fatalf("time ran backwards: tick %d after %d", got[i].tick, got[i-1].tick)
		}
		if got[i].tick == got[i-1].tick && got[i].idx <= got[i-1].idx {
			t.Fatalf("same-tick FIFO violated at tick %d: index %d fired after %d",
				got[i].tick, got[i].idx, got[i-1].idx)
		}
	}
}

// The steady state — pushes into a slice that already has capacity,
// pops that shrink it back — must not allocate: event dispatch is the
// hottest loop in the whole simulator.
func TestEngineSteadyStateAllocFree(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	// Warm the heap's backing slice to its high-water mark.
	for i := 0; i < 64; i++ {
		e.Schedule(Tick(i%8), nop)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 64; i++ {
			e.Schedule(Tick(i%8), nop)
		}
		e.Run()
	})
	if allocs > 0 {
		t.Errorf("steady-state schedule+run allocated %.1f allocs/run, want 0", allocs)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	nop := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(Tick(i%64), nop)
		if i%64 == 63 {
			e.Run()
		}
	}
	e.Run()
}
