package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10, func() { got = append(got, 2) })
	e.Schedule(5, func() { got = append(got, 1) })
	e.Schedule(10, func() { got = append(got, 3) }) // same tick: FIFO
	e.Schedule(20, func() { got = append(got, 4) })
	e.Run()
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Errorf("Now() = %d, want 20", e.Now())
	}
	if e.Fired() != 4 {
		t.Errorf("Fired() = %d, want 4", e.Fired())
	}
}

func TestEngineScheduleDuringRun(t *testing.T) {
	e := NewEngine()
	var ticks []Tick
	e.Schedule(1, func() {
		ticks = append(ticks, e.Now())
		e.Schedule(9, func() { ticks = append(ticks, e.Now()) })
	})
	e.Run()
	if len(ticks) != 2 || ticks[0] != 1 || ticks[1] != 10 {
		t.Fatalf("ticks = %v, want [1 10]", ticks)
	}
}

func TestEngineZeroAndNegativeDelay(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {
		now := e.Now()
		e.Schedule(0, func() {
			if e.Now() != now {
				t.Errorf("zero-delay event fired at %d, want %d", e.Now(), now)
			}
		})
		e.Schedule(-3, func() {
			if e.Now() != now {
				t.Errorf("negative-delay event fired at %d, want %d", e.Now(), now)
			}
		})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for _, d := range []Tick{1, 5, 10, 15} {
		e.Schedule(d, func() { fired++ })
	}
	e.RunUntil(10)
	if fired != 3 {
		t.Errorf("fired = %d after RunUntil(10), want 3", fired)
	}
	if e.Now() != 10 {
		t.Errorf("Now() = %d, want 10", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
	e.RunFor(5)
	if fired != 4 {
		t.Errorf("fired = %d after RunFor(5), want 4", fired)
	}
}

func TestEngineScheduleAtPastClamps(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		e.ScheduleAt(3, func() {
			if e.Now() != 10 {
				t.Errorf("past event fired at %d, want clamp to 10", e.Now())
			}
		})
	})
	e.Run()
}

// Property: events always fire in nondecreasing time order, regardless
// of schedule order.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Tick(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(Tick(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: same-tick events fire FIFO even under random interleaving.
func TestEngineSameTickFIFO(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := NewEngine()
	const n = 500
	var got []int
	for i := 0; i < n; i++ {
		i := i
		e.Schedule(Tick(rng.Intn(3)), func() { got = append(got, i) })
	}
	e.Run()
	// Within each tick bucket, indexes must be increasing.
	seen := map[Tick][]int{}
	// Re-run to capture tick for each event deterministically: easier to
	// verify global order respects per-tick FIFO by checking that any
	// decrease in index implies a tick boundary. Since delays are 0..2 and
	// schedule order is index order, indexes within a tick are increasing.
	_ = seen
	dec := 0
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			dec++
		}
	}
	if dec > 2 { // at most one decrease per tick boundary (3 ticks)
		t.Errorf("found %d order inversions, want <= 2", dec)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	nop := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(Tick(i%64), nop)
		if i%64 == 63 {
			e.Run()
		}
	}
	e.Run()
}
