package sim

import (
	"testing"
	"testing/quick"
)

func TestPortSerialization(t *testing.T) {
	e := NewEngine()
	p := NewPort(e, 4, 10) // 4 B/tick, 10-tick latency
	var first, second Tick
	p.Send(16, func() { first = e.Now() })  // 4 ticks + 10
	p.Send(16, func() { second = e.Now() }) // queued behind: 8 ticks + 10
	e.Run()
	if first != 14 {
		t.Errorf("first delivery at %d, want 14", first)
	}
	if second != 18 {
		t.Errorf("second delivery at %d, want 18", second)
	}
	if p.Bytes() != 32 || p.Transfers() != 2 {
		t.Errorf("accounting: bytes=%d transfers=%d, want 32, 2", p.Bytes(), p.Transfers())
	}
}

func TestPortSaturationBandwidth(t *testing.T) {
	e := NewEngine()
	p := NewPort(e, 8, 5) // 8 B/tick
	const n, size = 1000, 128
	done := 0
	var last Tick
	for i := 0; i < n; i++ {
		p.Send(size, func() { done++; last = e.Now() })
	}
	e.Run()
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	// n transfers of 16 ticks each, plus 5 latency on the last.
	want := Tick(n*size/8 + 5)
	if last != want {
		t.Errorf("last delivery at %d, want %d", last, want)
	}
	// Achieved bandwidth within 1% of width.
	bw := float64(p.Bytes()) / float64(last-5)
	if bw < 7.9 || bw > 8.1 {
		t.Errorf("achieved bandwidth %.2f B/tick, want ~8", bw)
	}
}

func TestPortIdleGap(t *testing.T) {
	e := NewEngine()
	p := NewPort(e, 1, 0)
	var d1, d2 Tick
	p.Send(3, func() { d1 = e.Now() })
	e.Schedule(100, func() { p.Send(3, func() { d2 = e.Now() }) })
	e.Run()
	if d1 != 3 {
		t.Errorf("d1 = %d, want 3", d1)
	}
	if d2 != 103 {
		t.Errorf("d2 = %d, want 103 (no carry-over of idle time)", d2)
	}
}

func TestPortMinimumOneTick(t *testing.T) {
	e := NewEngine()
	p := NewPort(e, 1024, 0)
	var d Tick
	p.Send(1, func() { d = e.Now() })
	e.Run()
	if d != 1 {
		t.Errorf("tiny transfer delivered at %d, want 1 (min one tick)", d)
	}
	p2 := NewPort(e, 16, 7)
	var dz Tick
	p2.Send(0, func() { dz = e.Now() })
	e.Run()
	if dz != e.Now() && dz != 1+7 {
		// zero-byte send takes zero serialization + latency
		t.Logf("zero send delivered at %d", dz)
	}
}

// Property: total delivery time for k back-to-back sends of n bytes is
// exactly k*ceil(n/width) + latency.
func TestPortBackToBackProperty(t *testing.T) {
	f := func(k8 uint8, n16 uint16, w4 uint8) bool {
		k := int(k8%8) + 1
		n := int(n16%512) + 1
		w := float64(w4%16 + 1)
		e := NewEngine()
		p := NewPort(e, w, 3)
		var last Tick
		for i := 0; i < k; i++ {
			p.Send(n, func() { last = e.Now() })
		}
		e.Run()
		per := Tick(float64(n) / w)
		if float64(per)*w < float64(n) {
			per++
		}
		if per < 1 {
			per = 1
		}
		return last == Tick(k)*per+3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestResourceQueueing(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	var a, b Tick
	r.Acquire(10, func() { a = e.Now() })
	r.Acquire(10, func() { b = e.Now() })
	e.Run()
	if a != 10 || b != 20 {
		t.Errorf("completions at %d, %d; want 10, 20", a, b)
	}
	if r.Served() != 2 || r.BusyTicks() != 20 {
		t.Errorf("served=%d busy=%d, want 2, 20", r.Served(), r.BusyTicks())
	}
}

func TestPoolParallelism(t *testing.T) {
	e := NewEngine()
	p := NewPool(e, 4)
	var finish []Tick
	for i := 0; i < 8; i++ {
		p.Acquire(10, func() { finish = append(finish, e.Now()) })
	}
	e.Run()
	// 4 at t=10, 4 at t=20.
	at10, at20 := 0, 0
	for _, f := range finish {
		switch f {
		case 10:
			at10++
		case 20:
			at20++
		}
	}
	if at10 != 4 || at20 != 4 {
		t.Errorf("finishes = %v, want four at 10 and four at 20", finish)
	}
}

func TestPoolVsResourceThroughput(t *testing.T) {
	// A pool of k servers must finish k times faster than one resource.
	mk := func(k int) Tick {
		e := NewEngine()
		p := NewPool(e, k)
		var last Tick
		for i := 0; i < 64; i++ {
			p.Acquire(100, func() { last = e.Now() })
		}
		e.Run()
		return last
	}
	if t1, t4 := mk(1), mk(4); t1 != 4*t4 {
		t.Errorf("1-server=%d, 4-server=%d; want exact 4x speedup", t1, t4)
	}
}
