// Package sim provides the discrete-event simulation kernel used by
// every other component of the ZnG model: an event queue ordered by
// tick, bandwidth-limited ports, and occupancy-limited resources.
//
// One sim.Tick is one GPU core cycle (1.2 GHz in the paper's Table I
// configuration, i.e. 0.8333 ns); device latencies expressed in
// nanoseconds are converted to ticks by internal/config.
//
// The engine is deliberately single-threaded: a simulation is a
// deterministic function of its inputs. Events scheduled for the same
// tick fire in the order they were scheduled, so runs are exactly
// reproducible.
package sim

import "container/heap"

// Tick is simulated time measured in GPU core cycles.
type Tick int64

type event struct {
	when Tick
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now    Tick
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewEngine returns an empty engine at tick zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Tick { return e.now }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn delay ticks from now. A negative delay is treated
// as zero (fires later in the current tick, preserving order).
func (e *Engine) Schedule(delay Tick, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute tick t. A nil fn is ignored (callers
// chain optional completion callbacks). Scheduling in the past is an
// error in the caller; it is clamped to the current tick to keep the
// simulation monotonic.
func (e *Engine) ScheduleAt(t Tick, fn func()) {
	if fn == nil {
		return
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{when: t, seq: e.seq, fn: fn})
}

// Step fires the next event, advancing time to it. It reports whether
// an event was available.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.when
	e.fired++
	ev.fn()
	return true
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then sets the clock to t.
// Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Tick) {
	for len(e.events) > 0 && e.events[0].when <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the clock by d ticks (see RunUntil).
func (e *Engine) RunFor(d Tick) { e.RunUntil(e.now + d) }
