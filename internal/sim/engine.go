// Package sim provides the discrete-event simulation kernel used by
// every other component of the ZnG model: an event queue ordered by
// tick, bandwidth-limited ports, and occupancy-limited resources.
//
// One sim.Tick is one GPU core cycle (1.2 GHz in the paper's Table I
// configuration, i.e. 0.8333 ns); device latencies expressed in
// nanoseconds are converted to ticks by internal/config.
//
// The engine is deliberately single-threaded: a simulation is a
// deterministic function of its inputs. Events scheduled for the same
// tick fire in the order they were scheduled, so runs are exactly
// reproducible.
package sim

// Tick is simulated time measured in GPU core cycles.
type Tick int64

type event struct {
	when Tick
	seq  uint64
	fn   func()
}

// before orders events by (when, seq): time first, then schedule
// order, which is what makes same-tick events fire FIFO.
func (a event) before(b event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// Engine is a discrete-event simulator. The zero value is ready to use.
//
// The event queue is a hand-rolled 4-ary min-heap rather than
// container/heap: the interface-based heap boxes every pushed event
// into an `any` (one allocation per Schedule) and dispatches every
// comparison through an interface call. A simulation fires hundreds of
// millions of events, so the queue is the hottest structure in the
// whole model; the monomorphic heap pushes and pops with zero
// allocations on the steady state (the backing slice is retained
// across pushes) and a 4-ary layout halves tree depth, trading a few
// extra comparisons per level for far fewer cache-missing swaps.
type Engine struct {
	now    Tick
	seq    uint64
	events []event // 4-ary min-heap ordered by event.before
	fired  uint64
}

// NewEngine returns an empty engine at tick zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Tick { return e.now }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn delay ticks from now. A negative delay is treated
// as zero (fires later in the current tick, preserving order).
func (e *Engine) Schedule(delay Tick, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute tick t. A nil fn is ignored (callers
// chain optional completion callbacks). Scheduling in the past is an
// error in the caller; it is clamped to the current tick to keep the
// simulation monotonic.
func (e *Engine) ScheduleAt(t Tick, fn func()) {
	if fn == nil {
		return
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events = append(e.events, event{when: t, seq: e.seq, fn: fn})
	e.siftUp(len(e.events) - 1)
}

// siftUp restores the heap property after appending at index i.
func (e *Engine) siftUp(i int) {
	ev := e.events[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !ev.before(e.events[parent]) {
			break
		}
		e.events[i] = e.events[parent]
		i = parent
	}
	e.events[i] = ev
}

// pop removes and returns the minimum event. The backing slice keeps
// its capacity, and the vacated slot is cleared so the fired closure
// does not outlive its turn in the queue.
func (e *Engine) pop() event {
	root := e.events[0]
	n := len(e.events) - 1
	last := e.events[n]
	e.events[n] = event{} // release the closure for GC
	e.events = e.events[:n]
	if n > 0 {
		e.siftDown(last)
	}
	return root
}

// siftDown places ev (the displaced last element) starting from the
// root, walking toward the smaller of up to four children.
func (e *Engine) siftDown(ev event) {
	i, n := 0, len(e.events)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.events[c].before(e.events[min]) {
				min = c
			}
		}
		if !e.events[min].before(ev) {
			break
		}
		e.events[i] = e.events[min]
		i = min
	}
	e.events[i] = ev
}

// Step fires the next event, advancing time to it. It reports whether
// an event was available.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.when
	e.fired++
	ev.fn()
	return true
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then sets the clock to t.
// Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Tick) {
	for len(e.events) > 0 && e.events[0].when <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the clock by d ticks (see RunUntil).
func (e *Engine) RunFor(d Tick) { e.RunUntil(e.now + d) }
