package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// SubsystemKey is the attribute key that routes per-subsystem log
// levels: a logger derived with Sub(l, "fleet") carries sub=fleet on
// every record, and a level spec like "info,fleet=debug" lowers just
// that subsystem's threshold.
const SubsystemKey = "sub"

// Sub derives a subsystem-labeled logger whose minimum level follows
// the spec's per-subsystem override (Sub on a non-obs logger still
// labels records, it just has no level routing to trigger).
func Sub(l *slog.Logger, name string) *slog.Logger {
	return l.With(SubsystemKey, name)
}

// Levels is a parsed log-level spec: a default threshold plus
// per-subsystem overrides.
type Levels struct {
	def  slog.Level
	subs map[string]slog.Level
}

// ParseLevels parses a -log-level spec: a default level optionally
// followed by subsystem overrides, comma-separated —
//
//	"info"                 everything at info
//	"warn,fleet=debug"     warn by default, fleet at debug
//	"http=debug"           default info, http at debug
//
// Levels are debug, info, warn, error. An empty spec means "info".
func ParseLevels(spec string) (Levels, error) {
	lv := Levels{def: slog.LevelInfo, subs: map[string]slog.Level{}}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, isSub := strings.Cut(part, "=")
		if !isSub {
			l, err := parseLevel(name)
			if err != nil {
				return lv, err
			}
			lv.def = l
			continue
		}
		l, err := parseLevel(val)
		if err != nil {
			return lv, err
		}
		lv.subs[strings.TrimSpace(name)] = l
	}
	return lv, nil
}

func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds the daemon's structured logger over w: text or
// JSON lines, thresholded by the level spec with per-subsystem
// routing via Sub.
func NewLogger(w io.Writer, lv Levels, jsonFmt bool) *slog.Logger {
	// The inner handler is wide open; the routing wrapper enforces the
	// effective threshold per subsystem.
	opts := &slog.HandlerOptions{Level: slog.LevelDebug}
	var inner slog.Handler
	if jsonFmt {
		inner = slog.NewJSONHandler(w, opts)
	} else {
		inner = slog.NewTextHandler(w, opts)
	}
	return slog.New(&levelHandler{inner: inner, lv: lv, min: lv.def})
}

// NopLogger discards everything — the default for library layers
// whose caller did not wire a logger.
func NopLogger() *slog.Logger {
	return slog.New(nopHandler{})
}

// levelHandler routes per-subsystem minimum levels: WithAttrs watches
// for the SubsystemKey attribute and re-derives the effective
// threshold, so Enabled answers cheaply with no attribute search per
// record.
type levelHandler struct {
	inner slog.Handler
	lv    Levels
	min   slog.Level
}

func (h *levelHandler) Enabled(_ context.Context, l slog.Level) bool { return l >= h.min }

func (h *levelHandler) Handle(ctx context.Context, r slog.Record) error {
	return h.inner.Handle(ctx, r)
}

func (h *levelHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := &levelHandler{inner: h.inner.WithAttrs(attrs), lv: h.lv, min: h.min}
	for _, a := range attrs {
		if a.Key != SubsystemKey {
			continue
		}
		if l, ok := h.lv.subs[a.Value.String()]; ok {
			nh.min = l
		} else {
			nh.min = h.lv.def
		}
	}
	return nh
}

func (h *levelHandler) WithGroup(name string) slog.Handler {
	return &levelHandler{inner: h.inner.WithGroup(name), lv: h.lv, min: h.min}
}

// nopHandler drops every record.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
