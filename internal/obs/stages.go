package obs

import (
	"sort"
	"time"

	"zng/internal/latency"
)

// StageStat summarizes one span kind's latency across a set of
// records — the per-stage p50/p95 breakdown zngsweep -v and zngload
// print, and the GET /v1/trace/stats document.
type StageStat struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
}

// Stages folds records into per-name latency summaries, sorted by
// name. The quantiles come from internal/latency's fixed-bucket
// histogram, so they match what /metrics reports for the same data.
func Stages(recs []Record) []StageStat {
	hists := map[string]*latency.Histogram{}
	for _, r := range recs {
		h := hists[r.Name]
		if h == nil {
			h = &latency.Histogram{}
			hists[r.Name] = h
		}
		h.Observe(time.Duration(r.DurUS) * time.Microsecond)
	}
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]StageStat, len(names))
	for i, name := range names {
		h := hists[name]
		s := h.Snapshot()
		out[i] = StageStat{Name: name, Count: s.Count, P50MS: s.P50MS, P95MS: s.P95MS}
	}
	return out
}

// Stages summarizes the whole flight recorder per span kind.
func (t *Tracer) Stages() []StageStat {
	if t == nil {
		return nil
	}
	return Stages(t.Records())
}
