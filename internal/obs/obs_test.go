package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestIDCodec(t *testing.T) {
	id := ID(0xdeadbeef01020304)
	if got, want := id.String(), "deadbeef01020304"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	back, ok := ParseID(id.String())
	if !ok || back != id {
		t.Fatalf("ParseID round trip = %v/%v", back, ok)
	}
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"deadbeef01020304"` {
		t.Fatalf("MarshalJSON = %s", b)
	}
	var dec ID
	if err := json.Unmarshal(b, &dec); err != nil || dec != id {
		t.Fatalf("UnmarshalJSON = %v, %v", dec, err)
	}
	for _, bad := range []string{"", "short", "deadbeef0102030", "deadbeef010203045", "zzadbeef01020304"} {
		if _, ok := ParseID(bad); ok {
			t.Fatalf("ParseID(%q) accepted", bad)
		}
	}
}

func TestContextCodec(t *testing.T) {
	c := SpanContext{Trace: 0x0102030405060708, Span: 0x1112131415161718}
	enc := c.Encode()
	if len(enc) != 33 {
		t.Fatalf("Encode length = %d, want 33 (%q)", len(enc), enc)
	}
	back, ok := DecodeContext(enc)
	if !ok || back != c {
		t.Fatalf("DecodeContext(%q) = %+v/%v", enc, back, ok)
	}
	for _, bad := range []string{
		"",
		"0102030405060708",
		"0102030405060708_1112131415161718",
		"0102030405060708-111213141516171",
		"0000000000000000-1112131415161718", // zero trace id is invalid
	} {
		if _, ok := DecodeContext(bad); ok {
			t.Fatalf("DecodeContext(%q) accepted", bad)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if s := tr.StartRoot("x", ""); s != nil {
		t.Fatal("nil tracer minted a root span")
	}
	if s := tr.SampledRoot("x", ""); s != nil {
		t.Fatal("nil tracer minted a sampled root")
	}
	tr.Observe(SpanContext{Trace: 1, Span: 1}, "x", "", time.Now(), 0, nil)
	tr.Ingest([]Record{{Trace: 1, Span: 1}})
	if recs := tr.Records(); recs != nil {
		t.Fatal("nil tracer returned records")
	}
	tr.SetProc("p")
	if got := tr.Proc(); got != "" {
		t.Fatalf("nil tracer proc = %q", got)
	}
	var s *Span
	s.SetDetail("d")
	s.SetCode(200)
	s.End()
	s.EndErr(errors.New("x"))
	if c := s.Context(); c.Valid() {
		t.Fatal("nil span has a valid context")
	}
}

func TestSpanTreeAndTrace(t *testing.T) {
	tr := New("proc-a", 64, 1)
	root := tr.StartRoot("campaign", "test")
	rc := root.Context()
	if !rc.Valid() {
		t.Fatal("root context invalid")
	}
	child := tr.StartSpan(rc, "cell", "ZnG/x@1")
	grand := tr.StartSpan(child.Context(), "sim", "")
	grand.EndErr(errors.New("boom"))
	child.End()
	root.End()

	recs := tr.Trace(rc.Trace)
	if len(recs) != 3 {
		t.Fatalf("Trace returned %d spans, want 3", len(recs))
	}
	byName := map[string]Record{}
	for _, r := range recs {
		if r.Trace != rc.Trace {
			t.Fatalf("span %s carries trace %v, want %v", r.Name, r.Trace, rc.Trace)
		}
		if r.Proc != "proc-a" {
			t.Fatalf("span %s proc = %q", r.Name, r.Proc)
		}
		byName[r.Name] = r
	}
	if byName["campaign"].Parent != 0 {
		t.Fatal("root span has a parent")
	}
	if byName["cell"].Parent != byName["campaign"].Span {
		t.Fatal("cell does not parent under campaign")
	}
	if byName["sim"].Parent != byName["cell"].Span {
		t.Fatal("sim does not parent under cell")
	}
	if byName["sim"].Err != "boom" {
		t.Fatalf("sim err = %q", byName["sim"].Err)
	}
	if tr.Trace(0) != nil {
		t.Fatal("Trace(0) returned spans")
	}
}

func TestSampling(t *testing.T) {
	tr := New("p", 256, 4)
	var kept int
	for i := 0; i < 100; i++ {
		if s := tr.SampledRoot("http", "POST /v1/run"); s != nil {
			kept++
			s.End()
		}
	}
	if kept != 25 {
		t.Fatalf("1-in-4 sampling kept %d of 100", kept)
	}
	// StartRoot ignores sampling entirely.
	for i := 0; i < 10; i++ {
		if s := tr.StartRoot("campaign", ""); s == nil {
			t.Fatal("StartRoot returned nil on a live tracer")
		}
	}
	// Children of a sampled-out (invalid) context never record.
	if s := tr.StartSpan(SpanContext{}, "x", ""); s != nil {
		t.Fatal("StartSpan under an invalid parent minted a span")
	}
}

func TestSubtreeScopesToDescendants(t *testing.T) {
	tr := New("p", 64, 1)
	root := tr.StartRoot("campaign", "")
	cellA := tr.StartSpan(root.Context(), "cell", "a")
	cellB := tr.StartSpan(root.Context(), "cell", "b")
	simA := tr.StartSpan(cellA.Context(), "sim", "")
	simB := tr.StartSpan(cellB.Context(), "sim", "")
	simA.End()
	simB.End()
	aCtx, bCtx := cellA.Context(), cellB.Context()
	cellA.End()
	cellB.End()
	root.End()

	sub := tr.Subtree(aCtx)
	if len(sub) != 2 {
		t.Fatalf("Subtree(cellA) = %d spans, want cell+sim", len(sub))
	}
	for _, r := range sub {
		if r.Span == bCtx.Span || r.Parent == bCtx.Span {
			t.Fatal("cell B's chain leaked into cell A's subtree")
		}
		if r.Name == "campaign" {
			t.Fatal("root leaked into a cell subtree")
		}
	}
}

func TestIngestKeepsForeignProc(t *testing.T) {
	tr := New("coordinator", 64, 1)
	tr.Ingest([]Record{
		{Trace: 7, Span: 8, Name: "sim", Proc: "worker-1"},
		{Trace: 0, Span: 9, Name: "bad"}, // invalid ids dropped
		{Trace: 7, Span: 0, Name: "bad"},
	})
	recs := tr.Trace(7)
	if len(recs) != 1 {
		t.Fatalf("ingested %d spans, want 1", len(recs))
	}
	if recs[0].Proc != "worker-1" {
		t.Fatalf("ingested span proc = %q, want the foreign label", recs[0].Proc)
	}
}

func TestSummaries(t *testing.T) {
	tr := New("p", 64, 1)
	r1 := tr.StartRoot("campaign", "sweep-1")
	c1 := tr.StartSpan(r1.Context(), "cell", "")
	time.Sleep(2 * time.Millisecond)
	c1.End()
	r1.End()
	r2 := tr.StartRoot("http", "POST /v1/run")
	r2.SetCode(200)
	r2.End()

	sums := tr.Summaries()
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	// Newest first.
	if sums[0].Name != "http" || sums[0].Code != 200 {
		t.Fatalf("newest summary = %+v, want the http root", sums[0])
	}
	if sums[1].Name != "campaign" || sums[1].Detail != "sweep-1" {
		t.Fatalf("oldest summary = %+v, want the campaign root", sums[1])
	}
	if sums[1].Spans != 2 {
		t.Fatalf("campaign summary counts %d spans, want 2", sums[1].Spans)
	}
	if sums[1].DurUS <= 0 {
		t.Fatalf("campaign summary duration = %d, want > 0", sums[1].DurUS)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 10; i++ {
		r.Add(Record{Trace: ID(i), Span: ID(i)})
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot length = %d, want capacity 4", len(snap))
	}
	for i, want := range []ID{7, 8, 9, 10} {
		if snap[i].Trace != want {
			t.Fatalf("snapshot[%d].Trace = %v, want %v (oldest-first)", i, snap[i].Trace, want)
		}
	}
	total, dropped := r.Stats()
	if total != 10 || dropped != 6 {
		t.Fatalf("stats = %d total, %d dropped; want 10, 6", total, dropped)
	}
}

// TestRingChurnRace hammers one recorder from many goroutines (spans,
// snapshots, summaries) so -race can see any unguarded field; the
// assertions check the ring's bookkeeping stays coherent under
// concurrent eviction.
func TestRingChurnRace(t *testing.T) {
	tr := New("p", 32, 1)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				root := tr.StartRoot("campaign", fmt.Sprintf("w%d", w))
				child := tr.StartSpan(root.Context(), "cell", "")
				child.End()
				root.End()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tr.Records()
			tr.Summaries()
			tr.Stages()
		}
	}()
	wg.Wait()
	<-done
	if got := len(tr.Records()); got != 32 {
		t.Fatalf("recorder holds %d spans, want exactly its capacity", got)
	}
	total, dropped := tr.RingStats()
	if want := uint64(writers * perWriter * 2); total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
	if total-dropped != 32 {
		t.Fatalf("total-dropped = %d, want the live capacity", total-dropped)
	}
}

func TestStages(t *testing.T) {
	base := time.Now()
	recs := []Record{
		{Trace: 1, Span: 1, Name: "sim", StartUS: base.UnixMicro(), DurUS: 2000},
		{Trace: 1, Span: 2, Name: "sim", StartUS: base.UnixMicro(), DurUS: 4000},
		{Trace: 1, Span: 3, Name: "queue", StartUS: base.UnixMicro(), DurUS: 100},
	}
	stages := Stages(recs)
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(stages))
	}
	// Sorted by name.
	if stages[0].Name != "queue" || stages[1].Name != "sim" {
		t.Fatalf("stage order = %q, %q", stages[0].Name, stages[1].Name)
	}
	if stages[1].Count != 2 {
		t.Fatalf("sim count = %d, want 2", stages[1].Count)
	}
	if stages[1].P95MS < stages[1].P50MS {
		t.Fatalf("sim p95 %.3f < p50 %.3f", stages[1].P95MS, stages[1].P50MS)
	}
	if got := Stages(nil); len(got) != 0 {
		t.Fatal("Stages(nil) returned rows")
	}
}
