// Package obs is the serving stack's cross-process observability
// layer: trace/span identifiers minted at request ingress (the zngd
// HTTP handler, the zngsweep CLI, the campaign executor) and
// propagated over HTTP via the X-Zng-Trace header, a bounded
// flight-recorder ring buffer the completed spans land in (ring.go),
// per-stage latency summaries derived from it (stages.go), a
// Prometheus text-exposition builder for /metrics (prom.go) and the
// daemon's structured-logging setup (log.go).
//
// Everything here observes wall-clock time, which is exactly why the
// package sits outside the deterministic simulation core: znglint's
// determinism analyzer lists internal/obs as a sanctioned time sink
// that the core packages must not import. Spans wrap the service and
// transport layers only — simulation results never depend on them.
//
// Every Tracer and Span method is safe on a nil receiver and a nil
// *Span, so an untraced hot path pays only a pointer test: a request
// sampled out at ingress carries an invalid SpanContext, every
// derived span is nil, and no clock is read on its behalf.
package obs

import (
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
	"time"
)

// Header is the HTTP header that carries a span context between
// processes: "X-Zng-Trace: <trace>-<span>", both ids as 16 hex
// digits. The receiving daemon parents its spans under the carried
// span, so one campaign cell's lifecycle reads as a single tree even
// when the cell hops workers after a reassignment.
const Header = "X-Zng-Trace"

// ID is a 64-bit trace or span identifier, rendered as 16 hex digits
// in headers and JSON (a JSON number would lose precision past 2^53
// in JavaScript consumers).
type ID uint64

// String renders the id as 16 lowercase hex digits.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON renders the id as a quoted hex string.
func (id ID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// UnmarshalJSON accepts the quoted hex form.
func (id *ID) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return fmt.Errorf("obs: id %s: %w", b, err)
	}
	v, ok := ParseID(s)
	if !ok {
		return fmt.Errorf("obs: malformed id %q", s)
	}
	*id = v
	return nil
}

// ParseID parses the 16-hex-digit id form.
func ParseID(s string) (ID, bool) {
	if len(s) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, false
	}
	return ID(v), true
}

// SpanContext names a position in a trace: the trace id plus the
// current span id new child spans parent under. The zero value is
// invalid and means "not traced".
type SpanContext struct {
	Trace ID `json:"trace"`
	Span  ID `json:"span"`
}

// Valid reports whether the context names a real trace position.
func (c SpanContext) Valid() bool { return c.Trace != 0 && c.Span != 0 }

// Encode renders the header value form, "<trace>-<span>".
func (c SpanContext) Encode() string {
	return c.Trace.String() + "-" + c.Span.String()
}

// DecodeContext parses the header value form; malformed or absent
// values decode as invalid, never as an error — an untraced request
// is the normal case, not a fault.
func DecodeContext(s string) (SpanContext, bool) {
	if len(s) != 33 || s[16] != '-' {
		return SpanContext{}, false
	}
	tr, ok1 := ParseID(s[:16])
	sp, ok2 := ParseID(s[17:])
	if !ok1 || !ok2 {
		return SpanContext{}, false
	}
	c := SpanContext{Trace: tr, Span: sp}
	return c, c.Valid()
}

// Record is one completed span — the serializable form that lands in
// the flight recorder, travels piggybacked on worker replies, and
// renders under /v1/trace.
type Record struct {
	Trace  ID `json:"trace"`
	Span   ID `json:"span"`
	Parent ID `json:"parent,omitempty"`
	// Name is the span kind: "http", "campaign", "cell", "dispatch",
	// "peer", "queue", "coalesce", "tier.memory", "tier.disk",
	// "tier.negative", "sim", "store.put", "journal.write", ...
	Name string `json:"name"`
	// Detail refines the name: the HTTP pattern, the peer address,
	// the cell coordinates.
	Detail string `json:"detail,omitempty"`
	// Proc labels the process that recorded the span, so a
	// cross-process tree shows which side each span ran on.
	Proc string `json:"proc,omitempty"`
	// Code is the HTTP status for http spans (0 elsewhere).
	Code int    `json:"code,omitempty"`
	Err  string `json:"err,omitempty"`
	// StartUS is the span's start as microseconds since the Unix
	// epoch; DurUS its duration in microseconds.
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
}

// DefaultCapacity sizes the flight recorder when the caller passes 0.
const DefaultCapacity = 4096

// Tracer mints ids, applies ingress sampling, and owns the flight
// recorder. A nil Tracer is valid and records nothing. Safe for
// concurrent use.
type Tracer struct {
	ring   *Ring
	sample uint64
	// proc is the process label stamped on every locally recorded
	// span; SetProc replaces it (atomically — the daemon learns its
	// final listen address after construction).
	proc atomic.Pointer[string]
	// idstate is the splitmix64 generator state behind ID minting —
	// seeded from the clock and pid, never math/rand, so the
	// deterministic core's no-rand rule has nothing to object to.
	idstate atomic.Uint64
	// roots counts sampling decisions at SampledRoot.
	roots atomic.Uint64
}

// New builds a tracer: proc labels this process's spans, capacity
// bounds the flight recorder (0 = DefaultCapacity), and sample keeps
// 1-in-N sampled roots (<= 1 keeps all; StartRoot ignores sampling
// either way).
func New(proc string, capacity, sample int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if sample <= 0 {
		sample = 1
	}
	t := &Tracer{ring: NewRing(capacity), sample: uint64(sample)}
	t.proc.Store(&proc)
	t.idstate.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<47)
	return t
}

// SetProc replaces the process label (the daemon calls it once the
// listener reports the bound address).
func (t *Tracer) SetProc(proc string) {
	if t == nil {
		return
	}
	t.proc.Store(&proc)
}

// Proc reports the current process label ("" on a nil tracer).
func (t *Tracer) Proc() string {
	if t == nil {
		return ""
	}
	return *t.proc.Load()
}

// newID draws the next id from the splitmix64 stream. Never zero —
// zero means "no id" everywhere else.
func (t *Tracer) newID() ID {
	x := t.idstate.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return ID(x)
}

// Span is one in-flight span handle. All methods are nil-safe: the
// nil *Span an untraced path holds costs a single pointer test.
type Span struct {
	t      *Tracer
	ctx    SpanContext
	parent ID
	name   string
	detail string
	code   int
	start  time.Time
}

// StartRoot begins a new trace unconditionally — campaign roots and
// CLI ingress, where the caller explicitly asked for the trace.
func (t *Tracer) StartRoot(name, detail string) *Span {
	if t == nil {
		return nil
	}
	return t.begin(SpanContext{Trace: t.newID()}, name, detail)
}

// SampledRoot begins a new trace for 1 in every sample ingress
// requests (nil for the rest) — the per-request HTTP ingress path,
// where tracing everything under load would be all cost.
func (t *Tracer) SampledRoot(name, detail string) *Span {
	if t == nil {
		return nil
	}
	if n := t.roots.Add(1); (n-1)%t.sample != 0 {
		return nil
	}
	return t.StartRoot(name, detail)
}

// StartSpan begins a child span under parent; an invalid parent (the
// sampled-out case) yields nil without reading the clock.
func (t *Tracer) StartSpan(parent SpanContext, name, detail string) *Span {
	if t == nil || !parent.Valid() {
		return nil
	}
	return t.begin(parent, name, detail)
}

func (t *Tracer) begin(parent SpanContext, name, detail string) *Span {
	return &Span{
		t:      t,
		ctx:    SpanContext{Trace: parent.Trace, Span: t.newID()},
		parent: parent.Span,
		name:   name,
		detail: detail,
		start:  time.Now(),
	}
}

// Context names the span's position for propagation (zero on nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// SetDetail replaces the span's detail label.
func (s *Span) SetDetail(detail string) {
	if s != nil {
		s.detail = detail
	}
}

// SetCode records an HTTP status on the span.
func (s *Span) SetCode(code int) {
	if s != nil {
		s.code = code
	}
}

// End completes the span successfully and lands it in the recorder.
func (s *Span) End() { s.EndErr(nil) }

// EndErr completes the span, recording err's text when non-nil.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	rec := Record{
		Trace:   s.ctx.Trace,
		Span:    s.ctx.Span,
		Parent:  s.parent,
		Name:    s.name,
		Detail:  s.detail,
		Proc:    s.t.Proc(),
		Code:    s.code,
		StartUS: s.start.UnixMicro(),
		DurUS:   time.Since(s.start).Microseconds(),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	s.t.ring.Add(rec)
}

// Observe records a span whose bounds the caller measured itself —
// the queue-wait span, whose start is the enqueue instant — without
// ever holding a live handle. Invalid parents record nothing.
func (t *Tracer) Observe(parent SpanContext, name, detail string, start time.Time, d time.Duration, err error) {
	if t == nil || !parent.Valid() {
		return
	}
	rec := Record{
		Trace:   parent.Trace,
		Span:    t.newID(),
		Parent:  parent.Span,
		Name:    name,
		Detail:  detail,
		Proc:    t.Proc(),
		StartUS: start.UnixMicro(),
		DurUS:   d.Microseconds(),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	t.ring.Add(rec)
}

// Ingest lands records produced by another process — worker spans
// piggybacked on poll replies — in this recorder, keeping their Proc
// labels. Records without valid ids are dropped.
func (t *Tracer) Ingest(recs []Record) {
	if t == nil {
		return
	}
	for _, r := range recs {
		if r.Trace == 0 || r.Span == 0 {
			continue
		}
		t.ring.Add(r)
	}
}

// Records snapshots the flight recorder, oldest first.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	return t.ring.Snapshot()
}

// RingStats reports how many spans the recorder has accepted in total
// and how many the bound has overwritten.
func (t *Tracer) RingStats() (total, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	return t.ring.Stats()
}

// Trace returns every recorded span of one trace, parents-first
// within the limits of start ordering (StartUS, then span id, so the
// order is stable across processes).
func (t *Tracer) Trace(id ID) []Record {
	if t == nil || id == 0 {
		return nil
	}
	var out []Record
	for _, r := range t.ring.Snapshot() {
		if r.Trace == id {
			out = append(out, r)
		}
	}
	sortRecords(out)
	return out
}

// Subtree returns the spans of ctx's trace that are ctx.Span or its
// descendants — the slice of the tree one worker-side request chain
// produced, which is exactly what a poll reply piggybacks back to the
// coordinator (spans of the same trace's other cells stay home, so
// ingestion never duplicates them).
func (t *Tracer) Subtree(ctx SpanContext) []Record {
	if t == nil || !ctx.Valid() {
		return nil
	}
	all := t.Trace(ctx.Trace)
	in := map[ID]bool{ctx.Span: true}
	var out []Record
	// Records sort by start time, so a child follows its parent and
	// one forward pass closes the descendant set.
	for _, r := range all {
		if in[r.Span] || in[r.Parent] {
			in[r.Span] = true
			out = append(out, r)
		}
	}
	return out
}

// sortRecords orders spans by start, then span id — a stable, process
// -independent tree ordering.
func sortRecords(recs []Record) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && less(recs[j], recs[j-1]); j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

func less(a, b Record) bool {
	if a.StartUS != b.StartUS {
		return a.StartUS < b.StartUS
	}
	return a.Span < b.Span
}

// Summary is one trace's one-line digest — the GET /v1/trace row.
type Summary struct {
	Trace ID `json:"trace"`
	// Name/Detail/Proc/Code/Err come from the trace's root span (the
	// earliest recorded span when the root itself was evicted or lives
	// in another process's recorder).
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
	Proc    string `json:"proc,omitempty"`
	Code    int    `json:"code,omitempty"`
	Err     string `json:"err,omitempty"`
	StartUS int64  `json:"start_us"`
	// DurUS spans the earliest start to the latest end recorded.
	DurUS int64 `json:"dur_us"`
	Spans int   `json:"spans"`
}

// Summaries digests the recorder one row per trace, newest first.
func (t *Tracer) Summaries() []Summary {
	if t == nil {
		return nil
	}
	type agg struct {
		s      Summary
		rooted bool  // a Parent==0 span labeled the row
		end    int64 // latest observed span end (StartUS+DurUS)
	}
	byTrace := map[ID]*agg{}
	var order []ID
	for _, r := range t.ring.Snapshot() {
		a := byTrace[r.Trace]
		if a == nil {
			a = &agg{s: Summary{Trace: r.Trace, StartUS: r.StartUS}}
			byTrace[r.Trace] = a
			order = append(order, r.Trace)
		}
		a.s.Spans++
		if r.StartUS < a.s.StartUS {
			a.s.StartUS = r.StartUS
		}
		if end := r.StartUS + r.DurUS; end > a.end {
			a.end = end
		}
		// The root span labels the row; with no root recorded (it was
		// evicted, or lives in another process), the first span stands
		// in until one shows up.
		if r.Parent == 0 || !a.rooted && a.s.Name == "" {
			a.s.Name, a.s.Detail, a.s.Proc, a.s.Code, a.s.Err = r.Name, r.Detail, r.Proc, r.Code, r.Err
			a.rooted = a.rooted || r.Parent == 0
		}
	}
	out := make([]Summary, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		a := byTrace[order[i]]
		a.s.DurUS = a.end - a.s.StartUS
		out = append(out, a.s)
	}
	return out
}
