package obs

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"zng/internal/latency"
)

func TestPromCounterAndGauge(t *testing.T) {
	var p Prom
	p.Counter("zng_sims_total", "simulations run", 42)
	p.Gauge("zng_jobs", "jobs by state", 3, Label{Name: "state", Value: "queued"})
	p.Gauge("zng_jobs", "jobs by state", 1, Label{Name: "state", Value: "running"})
	out := string(p.Bytes())

	for _, want := range []string{
		"# HELP zng_sims_total simulations run\n",
		"# TYPE zng_sims_total counter\n",
		"zng_sims_total 42\n",
		"# TYPE zng_jobs gauge\n",
		`zng_jobs{state="queued"} 3` + "\n",
		`zng_jobs{state="running"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per name even across repeated label sets.
	if got := strings.Count(out, "# TYPE zng_jobs gauge"); got != 1 {
		t.Fatalf("zng_jobs TYPE header emitted %d times", got)
	}
}

func TestPromHistogram(t *testing.T) {
	var h latency.Histogram
	h.Observe(500 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	var p Prom
	p.Histogram("zng_sim_duration_seconds", "sim wall time", &h,
		Label{Name: "endpoint", Value: "/v1/run"})
	out := string(p.Bytes())

	for _, want := range []string{
		"# TYPE zng_sim_duration_seconds histogram\n",
		`zng_sim_duration_seconds_bucket{endpoint="/v1/run",le="`,
		`le="+Inf"} 2` + "\n",
		`zng_sim_duration_seconds_sum{endpoint="/v1/run"} `,
		`zng_sim_duration_seconds_count{endpoint="/v1/run"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: every count monotonically non-decreasing.
	prev := -1.0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "zng_sim_duration_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("parsing bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = v
	}
}

func TestPromLabelEscaping(t *testing.T) {
	var p Prom
	p.Counter("zng_test_total", "t", 1, Label{Name: "detail", Value: "a\"b\\c\nd"})
	out := string(p.Bytes())
	if !strings.Contains(out, `detail="a\"b\\c\nd"`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}
