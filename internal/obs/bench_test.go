package obs

import "testing"

// BenchmarkSampledOut measures the cost a request pays when sampling
// drops it — the overhead the warm submit path carries per request
// when tracing is configured but this request is not kept. This is
// the number the < 5% serving-regression budget rides on.
func BenchmarkSampledOut(b *testing.B) {
	tr := New("bench", 1024, 1<<30) // keeps only the very first request
	tr.SampledRoot("http", "warm")  // consume the kept slot
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.SampledRoot("http", "POST /v1/run")
		s.SetCode(200)
		s.End()
	}
}

// BenchmarkSpanRecord measures a full sampled-in span: mint, end,
// ring write.
func BenchmarkSpanRecord(b *testing.B) {
	tr := New("bench", 1024, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.StartRoot("http", "POST /v1/run")
		s.SetCode(200)
		s.End()
	}
}

// BenchmarkChildSpan measures the propagated-context path the worker
// loop takes per stage span.
func BenchmarkChildSpan(b *testing.B) {
	tr := New("bench", 1024, 1)
	root := tr.StartRoot("campaign", "")
	ctx := root.Context()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.StartSpan(ctx, "sim", "").End()
	}
}
