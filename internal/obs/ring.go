package obs

import "sync"

// Ring is the flight recorder: a bounded circular buffer of completed
// spans. Writes are O(1) — one short critical section, no allocation
// past the fixed backing array — and the bound means a misbehaving
// trace source can only ever evict history, never grow memory. Safe
// for concurrent use.
type Ring struct {
	mu sync.Mutex
	// buf is the circular backing array. guarded by mu.
	buf []Record
	// next is the index the next record lands in. guarded by mu.
	next int
	// wrapped reports that the buffer has filled at least once, so
	// every slot is live. guarded by mu.
	wrapped bool
	// total counts every record ever accepted. guarded by mu.
	total uint64
	// dropped counts records the bound overwrote. guarded by mu.
	dropped uint64
}

// NewRing builds a recorder holding at most capacity records
// (capacity <= 0 uses DefaultCapacity).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Ring{buf: make([]Record, capacity)}
}

// Add lands one record, overwriting the oldest once full.
func (r *Ring) Add(rec Record) {
	r.mu.Lock()
	if r.wrapped {
		r.dropped++
	}
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot copies the live records out, oldest first.
func (r *Ring) Snapshot() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return append([]Record(nil), r.buf[:r.next]...)
	}
	out := make([]Record, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Stats reports the cumulative accepted and overwritten counts.
func (r *Ring) Stats() (total, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total, r.dropped
}

// Len reports the current number of live records.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrapped {
		return len(r.buf)
	}
	return r.next
}
