package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevels(t *testing.T) {
	lv, err := ParseLevels("warn,fleet=debug, http=error")
	if err != nil {
		t.Fatal(err)
	}
	if lv.def != slog.LevelWarn {
		t.Fatalf("default level = %v, want warn", lv.def)
	}
	if lv.subs["fleet"] != slog.LevelDebug || lv.subs["http"] != slog.LevelError {
		t.Fatalf("subsystem overrides = %v", lv.subs)
	}
	if lv, err := ParseLevels(""); err != nil || lv.def != slog.LevelInfo {
		t.Fatalf("empty spec = %v, %v; want info default", lv.def, err)
	}
	if _, err := ParseLevels("loud"); err == nil {
		t.Fatal("unknown level accepted")
	}
	if _, err := ParseLevels("info,fleet=loud"); err == nil {
		t.Fatal("unknown subsystem level accepted")
	}
}

func TestSubsystemLevelRouting(t *testing.T) {
	lv, err := ParseLevels("warn,fleet=debug")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	log := NewLogger(&buf, lv, false)

	log.Info("root info dropped")
	log.Warn("root warn kept")
	Sub(log, "fleet").Debug("fleet debug kept")
	Sub(log, "tier").Info("tier info dropped")

	out := buf.String()
	if strings.Contains(out, "root info dropped") || strings.Contains(out, "tier info dropped") {
		t.Fatalf("sub-threshold records leaked:\n%s", out)
	}
	if !strings.Contains(out, "root warn kept") {
		t.Fatalf("default-level warn missing:\n%s", out)
	}
	if !strings.Contains(out, "fleet debug kept") || !strings.Contains(out, "sub=fleet") {
		t.Fatalf("fleet debug override not routed:\n%s", out)
	}
}

func TestJSONLogger(t *testing.T) {
	lv, _ := ParseLevels("info")
	var buf bytes.Buffer
	log := NewLogger(&buf, lv, true)
	Sub(log, "fleet").Info("worker joined", "peer", "w1")

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "worker joined" || rec[SubsystemKey] != "fleet" || rec["peer"] != "w1" {
		t.Fatalf("JSON record = %v", rec)
	}
}

func TestNopLogger(t *testing.T) {
	log := NopLogger()
	// Must be safe and silent at every level, including via Sub.
	log.Error("dropped")
	Sub(log, "fleet").Warn("dropped")
	if log.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("nop logger claims to be enabled")
	}
}
