package obs

import (
	"bytes"
	"strconv"
	"strings"

	"zng/internal/latency"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one Prometheus label pair. Callers pass labels in the
// order they should render; the builder never reorders them.
type Label struct {
	Name  string
	Value string
}

// Prom accumulates Prometheus text exposition (format version 0.0.4):
// the /metrics?format=prom rendering of the serving stack's counters,
// gauges and latency histograms. Not safe for concurrent use — build
// one per scrape.
type Prom struct {
	b bytes.Buffer
	// seen tracks which metric names already emitted their HELP/TYPE
	// header, so multiple label sets of one metric share a single
	// header (Prometheus requires all of a name's series grouped).
	seen map[string]bool
}

// Counter emits one counter sample (callers include the _total
// suffix in name, per convention).
func (p *Prom) Counter(name, help string, v float64, labels ...Label) {
	p.header(name, help, "counter")
	p.sample(name, "", labels, v)
}

// Gauge emits one gauge sample.
func (p *Prom) Gauge(name, help string, v float64, labels ...Label) {
	p.header(name, help, "gauge")
	p.sample(name, "", labels, v)
}

// Histogram emits one latency histogram as cumulative _bucket series
// (le in seconds), plus _sum and _count. Call it once per label set;
// the shared header is emitted once.
func (p *Prom) Histogram(name, help string, h *latency.Histogram, labels ...Label) {
	p.header(name, help, "histogram")
	for _, b := range h.Buckets() {
		le := "+Inf"
		if b.Upper != latency.InfUpper {
			le = formatFloat(b.Upper.Seconds())
		}
		p.sample(name+"_bucket", le, labels, float64(b.Count))
	}
	p.sample(name+"_sum", "", labels, h.Sum().Seconds())
	p.sample(name+"_count", "", labels, float64(h.Count()))
}

// Bytes renders the accumulated exposition.
func (p *Prom) Bytes() []byte { return p.b.Bytes() }

func (p *Prom) header(name, help, typ string) {
	if p.seen == nil {
		p.seen = map[string]bool{}
	}
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	p.b.WriteString("# HELP " + name + " " + help + "\n")
	p.b.WriteString("# TYPE " + name + " " + typ + "\n")
}

// sample writes one series line; le, when non-empty, is appended as
// the trailing le label (the histogram bucket form).
func (p *Prom) sample(name, le string, labels []Label, v float64) {
	p.b.WriteString(name)
	if len(labels) > 0 || le != "" {
		p.b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				p.b.WriteByte(',')
			}
			p.b.WriteString(l.Name + `="` + escapeLabel(l.Value) + `"`)
		}
		if le != "" {
			if len(labels) > 0 {
				p.b.WriteByte(',')
			}
			p.b.WriteString(`le="` + le + `"`)
		}
		p.b.WriteByte('}')
	}
	p.b.WriteByte(' ')
	p.b.WriteString(formatFloat(v))
	p.b.WriteByte('\n')
}

// escapeLabel applies the exposition format's label-value escapes.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// formatFloat renders a value the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
