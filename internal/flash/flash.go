// Package flash models the Z-NAND backbone of the ZnG paper: 16
// channels x 1 package x 8 dies x 8 planes of single-level-cell
// vertical NAND with 3 us reads, 100 us programs, 100k P/E endurance,
// page-granularity access, in-order programming within a block, and
// the erase-before-write rule (Section II-B).
//
// The package models geometry, per-plane timing and block state, and
// the programmable row decoder of Section IV-A — the content-
// addressable memory that remaps log-block pages without any SSD
// firmware involvement. Mapping policy (which block holds what) lives
// in internal/ftl; interconnect timing (channel bus or mesh) lives in
// internal/noc and is wired by the platform.
package flash

import (
	"errors"
	"fmt"
	"math/bits"

	"zng/internal/config"
	"zng/internal/sim"
	"zng/internal/stats"
)

// Errors returned by plane state transitions.
var (
	ErrOutOfOrder   = errors.New("flash: program violates in-order page rule")
	ErrNotErased    = errors.New("flash: program to a page that needs erase-before-write")
	ErrWornOut      = errors.New("flash: block exceeded its P/E cycle budget")
	ErrBadPage      = errors.New("flash: page index out of range")
	ErrInvalidBlock = errors.New("flash: block index out of range")
)

// Backbone is the full flash array.
type Backbone struct {
	eng    *sim.Engine
	Cfg    config.Flash
	planes []*Plane

	// Statistics for Figs. 1b, 8b and 11.
	ArrayReads    stats.Counter
	ArrayPrograms stats.Counter
	Erases        stats.Counter
}

// New builds the backbone described by cfg.
func New(eng *sim.Engine, cfg config.Flash) *Backbone {
	b := &Backbone{eng: eng, Cfg: cfg}
	n := cfg.Planes()
	for i := 0; i < n; i++ {
		b.planes = append(b.planes, &Plane{
			bb:     b,
			Index:  i,
			res:    sim.NewResource(eng),
			blocks: make([]*Block, cfg.BlocksPerPl),
		})
	}
	return b
}

// Planes reports the plane count.
func (b *Backbone) Planes() int { return len(b.planes) }

// Plane returns plane i.
func (b *Backbone) Plane(i int) *Plane { return b.planes[i] }

// Plane index layout is channel-major:
// plane = ((ch*pkgs + pkg)*dies + die)*planesPerDie + pl.

// ChannelOf reports the channel a plane belongs to.
func (b *Backbone) ChannelOf(plane int) int {
	per := b.Cfg.PackagesPerCh * b.Cfg.DiesPerPkg * b.Cfg.PlanesPerDie
	return plane / per
}

// PackageOf reports the global package index of a plane.
func (b *Backbone) PackageOf(plane int) int {
	per := b.Cfg.DiesPerPkg * b.Cfg.PlanesPerDie
	return plane / per
}

// PlaneInDie reports the within-die plane index.
func (b *Backbone) PlaneInDie(plane int) int { return plane % b.Cfg.PlanesPerDie }

// Packages reports the global package count.
func (b *Backbone) Packages() int { return b.Cfg.Channels * b.Cfg.PackagesPerCh }

// TotalBytesRead reports array-sensed traffic (page-granularity).
func (b *Backbone) TotalBytesRead() uint64 {
	return b.ArrayReads.Value() * uint64(b.Cfg.PageBytes)
}

// TotalBytesProgrammed reports array-programmed traffic.
func (b *Backbone) TotalBytesProgrammed() uint64 {
	return b.ArrayPrograms.Value() * uint64(b.Cfg.PageBytes)
}

// Block is the per-block state machine. Valid-page marks live in a
// bitset: at 384 pages per block that is 48 bytes instead of a 384-
// byte bool slice, and GC victim scoring (ValidCount) is six popcounts
// instead of a 384-element walk.
type Block struct {
	WritePtr   int // next in-order programmable page; PagesPerBlock = full
	EraseCount int
	pages      int
	valid      []uint64 // bitset, bit i = page i holds live data
}

func newBlock(pages int) *Block {
	return &Block{pages: pages, valid: make([]uint64, (pages+63)/64)}
}

// ValidCount reports programmed-and-valid pages (GC victim scoring).
func (bl *Block) ValidCount() int {
	n := 0
	for _, w := range bl.valid {
		n += bits.OnesCount64(w)
	}
	return n
}

// Valid reports whether a page holds live data.
func (bl *Block) Valid(page int) bool {
	return page >= 0 && page < bl.pages && bl.valid[page/64]&(1<<(page%64)) != 0
}

func (bl *Block) setValid(page int)   { bl.valid[page/64] |= 1 << (page % 64) }
func (bl *Block) clearValid(page int) { bl.valid[page/64] &^= 1 << (page % 64) }

func (bl *Block) clearAll() {
	for i := range bl.valid {
		bl.valid[i] = 0
	}
}

func (bl *Block) setAll() {
	for i := range bl.valid {
		bl.valid[i] = ^uint64(0)
	}
	if tail := bl.pages % 64; tail != 0 {
		bl.valid[len(bl.valid)-1] = 1<<tail - 1
	}
}

// Plane owns a set of blocks and a serialized array (one array
// operation at a time, tR/tPROG/tERASE occupancy).
type Plane struct {
	bb    *Backbone
	Index int
	res   *sim.Resource

	// blocks is dense (index = block id) and lazily filled: untouched
	// blocks hold no data and no wear, so they stay nil.
	blocks []*Block

	Reads    uint64 // per-plane counters for the Fig. 8b heatmap
	Programs uint64
}

// Block returns (lazily creating) block state.
func (p *Plane) Block(i int) *Block {
	if i < 0 || i >= len(p.blocks) {
		panic(fmt.Sprintf("flash: block %d out of range", i))
	}
	bl := p.blocks[i]
	if bl == nil {
		bl = newBlock(p.bb.Cfg.PagesPerBlock)
		p.blocks[i] = bl
	}
	return bl
}

// Preload marks a block fully programmed with valid data — the state
// of data blocks at simulation start ("data initially resides in the
// SSD").
func (p *Plane) Preload(block int) {
	bl := p.Block(block)
	bl.WritePtr = p.bb.Cfg.PagesPerBlock
	bl.setAll()
}

// Read senses one page from the array (tR) and then calls fn. Reading
// never fails: preloaded and programmed pages both sense; the
// simulator does not model data contents.
func (p *Plane) Read(block, page int, fn func()) {
	if page < 0 || page >= p.bb.Cfg.PagesPerBlock {
		panic(ErrBadPage)
	}
	p.Reads++
	p.bb.ArrayReads.Inc()
	p.res.Acquire(p.bb.Cfg.ReadLat, fn)
}

// Program writes one page. It enforces Z-NAND's in-order programming:
// page must equal the block's write pointer, and the block must not be
// full (erase-before-write).
func (p *Plane) Program(block, page int, fn func()) error {
	if page < 0 || page >= p.bb.Cfg.PagesPerBlock {
		return ErrBadPage
	}
	bl := p.Block(block)
	if bl.WritePtr >= p.bb.Cfg.PagesPerBlock {
		return ErrNotErased
	}
	if page != bl.WritePtr {
		return ErrOutOfOrder
	}
	bl.WritePtr++
	bl.setValid(page)
	p.Programs++
	p.bb.ArrayPrograms.Inc()
	p.res.Acquire(p.bb.Cfg.ProgramLat, fn)
	return nil
}

// MarkInvalid drops a page's live-data mark (a newer version exists in
// a log block or was merged elsewhere).
func (p *Plane) MarkInvalid(block, page int) {
	bl := p.Block(block)
	if page >= 0 && page < bl.pages {
		bl.clearValid(page)
	}
}

// Erase wipes a block (tERASE) and counts a P/E cycle. It fails once
// the endurance budget is exhausted.
func (p *Plane) Erase(block int, fn func()) error {
	bl := p.Block(block)
	if bl.EraseCount >= p.bb.Cfg.PECycles {
		return ErrWornOut
	}
	bl.EraseCount++
	bl.WritePtr = 0
	bl.clearAll()
	p.bb.Erases.Inc()
	p.res.Acquire(p.bb.Cfg.EraseLat, fn)
	return nil
}

// ReadMany senses n pages of a block back to back (the sequential
// read burst of a GC merge) as one array occupancy of n*tR.
func (p *Plane) ReadMany(n int, fn func()) {
	if n <= 0 {
		p.res.Acquire(0, fn)
		return
	}
	p.Reads += uint64(n)
	p.bb.ArrayReads.Add(uint64(n))
	p.res.Acquire(sim.Tick(n)*p.bb.Cfg.ReadLat, fn)
}

// ProgramRange programs n in-order pages starting at the block's write
// pointer as one array occupancy of n*tPROG (the program burst of a GC
// merge).
func (p *Plane) ProgramRange(block, n int, fn func()) error {
	if n <= 0 {
		p.res.Acquire(0, fn)
		return nil
	}
	bl := p.Block(block)
	if bl.WritePtr+n > p.bb.Cfg.PagesPerBlock {
		return ErrNotErased
	}
	for i := 0; i < n; i++ {
		bl.setValid(bl.WritePtr + i)
	}
	bl.WritePtr += n
	p.Programs += uint64(n)
	p.bb.ArrayPrograms.Add(uint64(n))
	p.res.Acquire(sim.Tick(n)*p.bb.Cfg.ProgramLat, fn)
	return nil
}

// PreloadPage marks a single page as holding valid pre-existing data,
// advancing the write pointer past it (used by the page-mapped FTL,
// which hands out preloaded pages one at a time).
func (p *Plane) PreloadPage(block, page int) {
	bl := p.Block(block)
	if page < 0 || page >= p.bb.Cfg.PagesPerBlock {
		panic(ErrBadPage)
	}
	bl.setValid(page)
	if bl.WritePtr <= page {
		bl.WritePtr = page + 1
	}
}

// BusyTicks reports the cumulative array occupancy of the plane.
func (p *Plane) BusyTicks() sim.Tick { return p.res.BusyTicks() }

// NextFree reports when the plane's array is next idle.
func (p *Plane) NextFree() sim.Tick { return p.res.NextFree() }

// EachBlock visits every block that has materialized state in block-id
// order (blocks never touched are skipped; they hold no data and no
// wear). The ascending order makes callers that break ties by visit
// order — GC victim selection — deterministic.
func (p *Plane) EachBlock(f func(id int, bl *Block)) {
	for id, bl := range p.blocks {
		if bl != nil {
			f(id, bl)
		}
	}
}
