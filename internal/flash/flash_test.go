package flash

import (
	"testing"
	"testing/quick"

	"zng/internal/config"
	"zng/internal/sim"
)

func smallFlash() config.Flash {
	cfg := config.Default().Flash
	cfg.Channels = 2
	cfg.DiesPerPkg = 2
	cfg.PlanesPerDie = 2
	cfg.BlocksPerPl = 8
	cfg.PagesPerBlock = 4
	return cfg
}

func TestGeometry(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, smallFlash())
	if b.Planes() != 8 {
		t.Fatalf("planes = %d, want 8", b.Planes())
	}
	if b.Packages() != 2 {
		t.Fatalf("packages = %d", b.Packages())
	}
	if b.ChannelOf(0) != 0 || b.ChannelOf(7) != 1 {
		t.Errorf("channel mapping: %d %d", b.ChannelOf(0), b.ChannelOf(7))
	}
	if b.PackageOf(3) != 0 || b.PackageOf(4) != 1 {
		t.Errorf("package mapping: %d %d", b.PackageOf(3), b.PackageOf(4))
	}
	if b.PlaneInDie(3) != 1 {
		t.Errorf("plane-in-die: %d", b.PlaneInDie(3))
	}
}

func TestReadTiming(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallFlash()
	b := New(eng, cfg)
	p := b.Plane(0)
	p.Preload(0)
	var at sim.Tick
	p.Read(0, 2, func() { at = eng.Now() })
	eng.Run()
	if at != cfg.ReadLat {
		t.Errorf("read completed at %d, want tR=%d", at, cfg.ReadLat)
	}
	if b.ArrayReads.Value() != 1 || p.Reads != 1 {
		t.Errorf("read counters: %d/%d", b.ArrayReads.Value(), p.Reads)
	}
}

func TestPlaneSerializesArrayOps(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallFlash()
	b := New(eng, cfg)
	p := b.Plane(0)
	var t1, t2 sim.Tick
	p.Read(0, 0, func() { t1 = eng.Now() })
	p.Read(0, 1, func() { t2 = eng.Now() })
	eng.Run()
	if t2-t1 != cfg.ReadLat {
		t.Errorf("second read must wait for the array: t1=%d t2=%d", t1, t2)
	}
}

func TestPlanesOperateInParallel(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallFlash()
	b := New(eng, cfg)
	var t1, t2 sim.Tick
	b.Plane(0).Read(0, 0, func() { t1 = eng.Now() })
	b.Plane(1).Read(0, 0, func() { t2 = eng.Now() })
	eng.Run()
	if t1 != t2 {
		t.Errorf("independent planes must not serialize: %d vs %d", t1, t2)
	}
}

func TestInOrderProgramming(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, smallFlash())
	p := b.Plane(0)
	if err := p.Program(0, 1, nil); err != ErrOutOfOrder {
		t.Errorf("out-of-order program: err = %v, want ErrOutOfOrder", err)
	}
	if err := p.Program(0, 0, nil); err != nil {
		t.Errorf("in-order program failed: %v", err)
	}
	if err := p.Program(0, 1, nil); err != nil {
		t.Errorf("next in-order program failed: %v", err)
	}
	eng.Run()
	if got := p.Block(0).WritePtr; got != 2 {
		t.Errorf("write pointer = %d, want 2", got)
	}
}

func TestEraseBeforeWrite(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallFlash()
	b := New(eng, cfg)
	p := b.Plane(0)
	for i := 0; i < cfg.PagesPerBlock; i++ {
		if err := p.Program(0, i, nil); err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
	}
	if err := p.Program(0, 0, nil); err != ErrNotErased {
		t.Errorf("program to full block: err = %v, want ErrNotErased", err)
	}
	if err := p.Erase(0, nil); err != nil {
		t.Fatalf("erase: %v", err)
	}
	if err := p.Program(0, 0, nil); err != nil {
		t.Errorf("program after erase: %v", err)
	}
	eng.Run()
	if p.Block(0).EraseCount != 1 {
		t.Errorf("erase count = %d", p.Block(0).EraseCount)
	}
}

func TestPECyclesEnforced(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallFlash()
	cfg.PECycles = 2
	b := New(eng, cfg)
	p := b.Plane(0)
	for i := 0; i < 2; i++ {
		if err := p.Erase(0, nil); err != nil {
			t.Fatalf("erase %d: %v", i, err)
		}
	}
	if err := p.Erase(0, nil); err != ErrWornOut {
		t.Errorf("worn block erase: err = %v, want ErrWornOut", err)
	}
	eng.Run()
}

func TestProgramSlowerThanRead(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallFlash()
	b := New(eng, cfg)
	p := b.Plane(0)
	var readAt, progAt sim.Tick
	p.Read(1, 0, func() { readAt = eng.Now() })
	eng.Run()
	e2 := sim.NewEngine()
	b2 := New(e2, cfg)
	p2 := b2.Plane(0)
	if err := p2.Program(1, 0, func() { progAt = e2.Now() }); err != nil {
		t.Fatal(err)
	}
	e2.Run()
	if progAt <= readAt {
		t.Errorf("tPROG (%d) must exceed tR (%d)", progAt, readAt)
	}
	_ = p
}

func TestValidityTracking(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, smallFlash())
	p := b.Plane(0)
	p.Preload(3)
	bl := p.Block(3)
	if got := bl.ValidCount(); got != 4 {
		t.Fatalf("preloaded valid = %d, want 4", got)
	}
	p.MarkInvalid(3, 1)
	p.MarkInvalid(3, 2)
	if got := bl.ValidCount(); got != 2 {
		t.Errorf("valid after invalidations = %d, want 2", got)
	}
	if bl.Valid(1) || !bl.Valid(0) {
		t.Error("per-page validity wrong")
	}
	eng.Run()
}

func TestBadIndexesPanicOrError(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, smallFlash())
	p := b.Plane(0)
	if err := p.Program(0, 99, nil); err != ErrBadPage {
		t.Errorf("bad page program err = %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("want panic for out-of-range block")
			}
		}()
		p.Block(99)
	}()
	_ = eng
}

func TestBackboneTrafficAccounting(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallFlash()
	b := New(eng, cfg)
	b.Plane(0).Read(0, 0, nil)
	b.Plane(1).Read(0, 0, nil)
	if err := b.Plane(2).Program(0, 0, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if b.TotalBytesRead() != uint64(2*cfg.PageBytes) {
		t.Errorf("bytes read = %d", b.TotalBytesRead())
	}
	if b.TotalBytesProgrammed() != uint64(cfg.PageBytes) {
		t.Errorf("bytes programmed = %d", b.TotalBytesProgrammed())
	}
}

func TestRowDecoderCAM(t *testing.T) {
	d := NewRowDecoder(4)
	if _, ok := d.Lookup(42); ok {
		t.Error("empty CAM lookup must miss")
	}
	s0, ok := d.Insert(42)
	if !ok || s0 != 0 {
		t.Fatalf("first insert: slot=%d ok=%v", s0, ok)
	}
	s1, _ := d.Insert(43)
	if s1 != 1 {
		t.Errorf("in-order slot allocation: got %d", s1)
	}
	// Re-insert supersedes: new slot, old becomes stale.
	s2, _ := d.Insert(42)
	if s2 != 2 {
		t.Errorf("reinsert slot = %d, want 2", s2)
	}
	if got, _ := d.Lookup(42); got != 2 {
		t.Errorf("lookup after reinsert = %d, want 2", got)
	}
	if d.Live() != 2 || d.Used() != 3 {
		t.Errorf("live/used = %d/%d, want 2/3", d.Live(), d.Used())
	}
	if d.Full() {
		t.Error("not full yet")
	}
	d.Insert(44)
	if !d.Full() {
		t.Error("should be full at capacity 4")
	}
	if _, ok := d.Insert(45); ok {
		t.Error("insert into full decoder must fail")
	}
	keys := d.Keys()
	if len(keys) != 3 {
		t.Errorf("keys = %v", keys)
	}
	d.Reset()
	if d.Used() != 0 || d.Live() != 0 || d.Full() {
		t.Error("reset did not clear decoder")
	}
}

// Property: for any insert sequence, slots are strictly increasing and
// never exceed capacity; lookup always returns the latest slot.
func TestRowDecoderProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		d := NewRowDecoder(16)
		last := make(map[uint64]int)
		prev := -1
		for _, k := range keys {
			slot, ok := d.Insert(uint64(k))
			if !ok {
				break
			}
			if slot <= prev {
				return false
			}
			prev = slot
			last[uint64(k)] = slot
		}
		for k, want := range last {
			if got, ok := d.Lookup(k); !ok || got != want {
				return false
			}
		}
		return d.Used() <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
