package flash

import "slices"

// RowDecoder is the programmable row decoder of Section IV-A: a
// content-addressable memory attached to one physical log block that
// maps (data block, page index) keys to log-page slots entirely in
// hardware. A register tracks the next in-order free page, so write
// remapping needs no firmware at all.
//
// Lookup models the two-phase CAM search (precharge wordlines, then
// drive the key onto the A/A' bitlines and discharge the matching
// row); Insert models programming the key's bits through the B/B'
// bitlines while the data page programs in the array.
//
// The state mirrors the hardware it models: slot-indexed key and
// live-bit arrays sized by the decoder's capacity, plus a small
// open-addressed index (linear probing, <=50% load) giving O(1)
// Lookup without map overhead. Keys are only ever superseded in
// place or bulk-erased by Reset, so the index needs no deletion.
type RowDecoder struct {
	slotKey  []uint64 // key programmed into each consumed slot
	live     []bool   // slot holds its key's newest version
	idx      []int32  // open-addressed key index: slot+1, 0 = empty
	idxMask  uint64
	liveCnt  int
	nextFree int
	capacity int
}

// NewRowDecoder creates a decoder for a log block of the given page
// count.
func NewRowDecoder(pagesPerBlock int) *RowDecoder {
	idxSize := 1
	for idxSize < 2*pagesPerBlock {
		idxSize <<= 1
	}
	return &RowDecoder{
		slotKey:  make([]uint64, pagesPerBlock),
		live:     make([]bool, pagesPerBlock),
		idx:      make([]int32, idxSize),
		idxMask:  uint64(idxSize - 1),
		capacity: pagesPerBlock,
	}
}

// probe returns the index position holding key, or the first empty
// position along key's probe sequence.
func (d *RowDecoder) probe(key uint64) uint64 {
	i := (key * 0x9E3779B97F4A7C15) >> 32 & d.idxMask
	for d.idx[i] != 0 && d.slotKey[d.idx[i]-1] != key {
		i = (i + 1) & d.idxMask
	}
	return i
}

// Lookup returns the slot holding key's newest version.
func (d *RowDecoder) Lookup(key uint64) (slot int, ok bool) {
	i := d.probe(key)
	if d.idx[i] == 0 {
		return 0, false
	}
	return int(d.idx[i] - 1), true
}

// Insert allocates the next in-order slot for key. Re-inserting a key
// supersedes its previous slot (which becomes stale). ok is false when
// the log block is full and must be garbage-collected.
func (d *RowDecoder) Insert(key uint64) (slot int, ok bool) {
	if d.nextFree >= d.capacity {
		return 0, false
	}
	i := d.probe(key)
	if d.idx[i] != 0 {
		d.live[d.idx[i]-1] = false // supersede the old slot in place
	} else {
		d.liveCnt++
	}
	slot = d.nextFree
	d.nextFree++
	d.slotKey[slot] = key
	d.live[slot] = true
	d.idx[i] = int32(slot + 1)
	return slot, true
}

// Full reports whether every slot is consumed.
func (d *RowDecoder) Full() bool { return d.nextFree >= d.capacity }

// Used reports consumed slots (including stale ones).
func (d *RowDecoder) Used() int { return d.nextFree }

// Live reports the number of current (non-superseded) mappings.
func (d *RowDecoder) Live() int { return d.liveCnt }

// Keys returns the live keys (for the GC merge step) in ascending
// order, so every consumer walks the merge set deterministically —
// no incidental structure order must ever leak into the simulation.
func (d *RowDecoder) Keys() []uint64 {
	out := make([]uint64, 0, d.liveCnt)
	for s := 0; s < d.nextFree; s++ {
		if d.live[s] {
			out = append(out, d.slotKey[s])
		}
	}
	slices.Sort(out)
	return out
}

// Reset clears the decoder after its log block is erased, keeping its
// arrays allocated for the block's next life.
func (d *RowDecoder) Reset() {
	clear(d.slotKey)
	clear(d.live)
	clear(d.idx)
	d.liveCnt = 0
	d.nextFree = 0
}

// StateBytes reports the decoder's allocated footprint.
func (d *RowDecoder) StateBytes() uint64 {
	return uint64(len(d.slotKey))*8 + uint64(len(d.live)) + uint64(len(d.idx))*4
}
