package flash

import "slices"

// RowDecoder is the programmable row decoder of Section IV-A: a
// content-addressable memory attached to one physical log block that
// maps (data block, page index) keys to log-page slots entirely in
// hardware. A register tracks the next in-order free page, so write
// remapping needs no firmware at all.
//
// Lookup models the two-phase CAM search (precharge wordlines, then
// drive the key onto the A/A' bitlines and discharge the matching
// row); Insert models programming the key's bits through the B/B'
// bitlines while the data page programs in the array.
type RowDecoder struct {
	cam      map[uint64]int
	stale    map[int]bool // slots superseded by re-insertion
	nextFree int
	capacity int
}

// NewRowDecoder creates a decoder for a log block of the given page
// count.
func NewRowDecoder(pagesPerBlock int) *RowDecoder {
	return &RowDecoder{
		cam:      make(map[uint64]int),
		stale:    make(map[int]bool),
		capacity: pagesPerBlock,
	}
}

// Lookup returns the slot holding key's newest version.
func (d *RowDecoder) Lookup(key uint64) (slot int, ok bool) {
	slot, ok = d.cam[key]
	return slot, ok
}

// Insert allocates the next in-order slot for key. Re-inserting a key
// supersedes its previous slot (which becomes stale). ok is false when
// the log block is full and must be garbage-collected.
func (d *RowDecoder) Insert(key uint64) (slot int, ok bool) {
	if d.nextFree >= d.capacity {
		return 0, false
	}
	if old, exists := d.cam[key]; exists {
		d.stale[old] = true
	}
	slot = d.nextFree
	d.nextFree++
	d.cam[key] = slot
	return slot, true
}

// Full reports whether every slot is consumed.
func (d *RowDecoder) Full() bool { return d.nextFree >= d.capacity }

// Used reports consumed slots (including stale ones).
func (d *RowDecoder) Used() int { return d.nextFree }

// Live reports the number of current (non-superseded) mappings.
func (d *RowDecoder) Live() int { return len(d.cam) }

// Keys returns the live keys (for the GC merge step) in ascending
// order, so every consumer walks the merge set deterministically —
// map iteration order must never leak into the simulation.
func (d *RowDecoder) Keys() []uint64 {
	out := make([]uint64, 0, len(d.cam))
	for k := range d.cam {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// Reset clears the decoder after its log block is erased.
func (d *RowDecoder) Reset() {
	d.cam = make(map[uint64]int)
	d.stale = make(map[int]bool)
	d.nextFree = 0
}
