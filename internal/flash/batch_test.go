package flash

import (
	"testing"

	"zng/internal/sim"
)

func TestReadManyTiming(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallFlash()
	b := New(eng, cfg)
	p := b.Plane(0)
	var at sim.Tick
	p.ReadMany(5, func() { at = eng.Now() })
	eng.Run()
	if want := 5 * cfg.ReadLat; at != want {
		t.Errorf("ReadMany(5) completed at %d, want %d", at, want)
	}
	if b.ArrayReads.Value() != 5 {
		t.Errorf("array reads = %d", b.ArrayReads.Value())
	}
}

func TestReadManyZero(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, smallFlash())
	done := false
	b.Plane(0).ReadMany(0, func() { done = true })
	eng.Run()
	if !done {
		t.Error("zero-page burst must still complete")
	}
	if b.ArrayReads.Value() != 0 {
		t.Error("zero-page burst counted reads")
	}
}

func TestProgramRange(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallFlash()
	b := New(eng, cfg)
	p := b.Plane(0)
	var at sim.Tick
	if err := p.ProgramRange(2, 3, func() { at = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if want := 3 * cfg.ProgramLat; at != want {
		t.Errorf("ProgramRange(3) completed at %d, want %d", at, want)
	}
	bl := p.Block(2)
	if bl.WritePtr != 3 || bl.ValidCount() != 3 {
		t.Errorf("block state: ptr=%d valid=%d", bl.WritePtr, bl.ValidCount())
	}
	// A second range continues in order.
	if err := p.ProgramRange(2, 1, nil); err != nil {
		t.Fatal(err)
	}
	if p.Block(2).WritePtr != 4 {
		t.Errorf("ptr = %d", p.Block(2).WritePtr)
	}
}

func TestProgramRangeOverflow(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallFlash() // 4 pages per block
	b := New(eng, cfg)
	p := b.Plane(0)
	if err := p.ProgramRange(0, cfg.PagesPerBlock+1, nil); err != ErrNotErased {
		t.Errorf("overflow range: err = %v, want ErrNotErased", err)
	}
	_ = eng
}

func TestPreloadPage(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, smallFlash())
	p := b.Plane(0)
	p.PreloadPage(1, 2)
	bl := p.Block(1)
	if !bl.Valid(2) || bl.Valid(0) {
		t.Error("PreloadPage validity wrong")
	}
	if bl.WritePtr != 3 {
		t.Errorf("write pointer = %d, want advanced past the page", bl.WritePtr)
	}
	// Preloading an earlier page must not retreat the pointer.
	p.PreloadPage(1, 0)
	if bl.WritePtr != 3 {
		t.Errorf("write pointer retreated to %d", bl.WritePtr)
	}
	_ = eng
}

func TestEachBlockVisitsOnlyMaterialized(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, smallFlash())
	p := b.Plane(0)
	p.Block(3)
	p.Block(5)
	seen := map[int]bool{}
	p.EachBlock(func(id int, _ *Block) { seen[id] = true })
	if len(seen) != 2 || !seen[3] || !seen[5] {
		t.Errorf("EachBlock visited %v", seen)
	}
	_ = eng
}
