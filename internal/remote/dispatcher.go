package remote

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"zng/internal/config"
	"zng/internal/obs"
	"zng/internal/platform"
	"zng/internal/workload"
)

// ErrNoPeers is returned by Run when the dispatcher has no peers at
// all — the empty-fleet state a dynamic dispatcher (NewDynamic) may
// pass through while workers register and expire. Callers with a
// local execution path (the fleet coordinator) treat it as "run the
// cell yourself".
var ErrNoPeers = errors.New("remote: dispatcher has no peers")

// Dispatcher shards simulation cells across a fleet of zngd peers.
// It implements the same Runner interface as a single Client, so a
// campaign Executor (or any figure driver) fans out over the fleet
// without knowing it: each Run picks the healthy peer with the
// fewest cells in flight — locality-free work stealing, since cells
// are content-addressed and any peer can serve any cell — and a
// peer-level failure (connection refused, draining, garbage reply)
// re-routes the cell to another peer while the faulty one sits out a
// cooldown. Deterministic simulation errors reported by a peer are
// returned as-is: every worker would compute the same failure.
//
// Membership is dynamic: AddPeer and RemovePeer grow and shrink the
// fleet under running campaigns (the fleet coordinator wires them to
// worker registration and heartbeat expiry), and cells in flight on
// a removed peer fault on their next round trip and re-route to a
// surviving one — counted by Reassigned.
type Dispatcher struct {
	cooldown time.Duration
	timeout  time.Duration // applied to peers added later, too
	// tr records a peer span per dispatch attempt and ingests the
	// worker-side spans piggybacked on replies. Set once via SetTracer
	// before the dispatcher serves traffic; nil dispatches untraced.
	tr *obs.Tracer

	mu sync.Mutex
	// peers is the current membership, in registration order.
	// guarded by mu.
	peers []*peer
	// rr rotates the scan origin so equal-inflight ties round-robin
	// across the fleet instead of always landing on the first peer —
	// without it, fully serialized execution (every cell finishing
	// before the next dispatch) would starve every peer but peers[0].
	// guarded by mu.
	rr int
	// reassigned counts peer-level faults whose cell went back to the
	// scheduling loop for another peer — the fleet's "cells
	// reassigned" gauge. guarded by mu.
	reassigned uint64
}

// peer is one worker plus its scheduling state. The scheduling
// fields belong to the dispatcher's lock domain, not the peer's own.
type peer struct {
	client   *Client
	inflight int       // guarded by Dispatcher.mu
	cells    uint64    // guarded by Dispatcher.mu
	failures uint64    // guarded by Dispatcher.mu
	downTil  time.Time // guarded by Dispatcher.mu
}

// PeerStats is one peer's scheduling counters — the per-worker view
// zngsweep -v prints and the distributed tests assert on.
type PeerStats struct {
	Addr string
	// Cells counts the cells this peer answered successfully.
	Cells uint64
	// Failures counts peer-level faults observed on this peer.
	Failures uint64
	// InFlight is the current outstanding request count.
	InFlight int
	// Down reports whether the peer is sitting out a failure cooldown.
	Down bool
}

// DefaultCooldown is how long a failed peer sits out before the
// dispatcher offers it work again.
const DefaultCooldown = 5 * time.Second

// NewDispatcher builds a dispatcher over peer addresses ("host:port"
// or http:// URLs). cooldown <= 0 uses DefaultCooldown.
func NewDispatcher(addrs []string, cooldown time.Duration) (*Dispatcher, error) {
	if len(addrs) == 0 {
		return nil, errors.New("remote: dispatcher needs at least one peer")
	}
	d := NewDynamic(cooldown)
	for _, a := range addrs {
		d.AddPeer(a)
	}
	return d, nil
}

// NewDynamic builds an empty dispatcher whose membership grows and
// shrinks at runtime (AddPeer/RemovePeer). With no peers, Run fails
// fast with ErrNoPeers. cooldown <= 0 uses DefaultCooldown.
func NewDynamic(cooldown time.Duration) *Dispatcher {
	if cooldown <= 0 {
		cooldown = DefaultCooldown
	}
	return &Dispatcher{cooldown: cooldown}
}

// AddPeer joins a peer to the fleet (idempotent: re-adding an address
// already present only clears its failure cooldown, so a re-registered
// worker is offered work immediately). Cells of campaigns already
// running dispatch to it on their next pick.
func (d *Dispatcher) AddPeer(addr string) {
	c := NewClient(addr)
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range d.peers {
		if p.client.Addr() == c.Addr() {
			p.downTil = time.Time{}
			return
		}
	}
	if d.timeout > 0 {
		c.SetTimeout(d.timeout)
	}
	d.peers = append(d.peers, &peer{client: c})
}

// RemovePeer drops a peer from the fleet (by the same address form
// AddPeer accepted). Cells already in flight on it are not aborted:
// they fault on their own next round trip and the scheduling loop
// reassigns them to surviving peers.
func (d *Dispatcher) RemovePeer(addr string) {
	want := NewClient(addr).Addr()
	d.mu.Lock()
	defer d.mu.Unlock()
	keep := d.peers[:0]
	for _, p := range d.peers {
		if p.client.Addr() == want {
			continue
		}
		keep = append(keep, p)
	}
	for i := len(keep); i < len(d.peers); i++ {
		d.peers[i] = nil
	}
	d.peers = keep
}

// NumPeers reports the current fleet size.
func (d *Dispatcher) NumPeers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.peers)
}

// Reassigned reports how many peer-level faults sent a cell back for
// another peer — the fleet's rebalancing gauge.
func (d *Dispatcher) Reassigned() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reassigned
}

// SetTracer wires a tracer into the dispatcher: traced runs
// (RunTraced) record one "peer" span per attempt and ingest the
// worker-side spans each peer piggybacks on its replies. Call before
// the dispatcher serves traffic.
func (d *Dispatcher) SetTracer(t *obs.Tracer) { d.tr = t }

// SetTimeout overrides every peer client's per-request timeout,
// including peers added later.
func (d *Dispatcher) SetTimeout(t time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.timeout = t
	for _, p := range d.peers {
		p.client.SetTimeout(t)
	}
}

// CheckHealth probes every peer's /healthz concurrently and returns
// an error naming the unreachable ones (nil when all answer). It does
// not mark peers down — the scheduling loop's own observations do
// that — it exists so a CLI can fail fast on a typo'd -peers list.
func (d *Dispatcher) CheckHealth() error {
	d.mu.Lock()
	peers := append([]*peer(nil), d.peers...)
	d.mu.Unlock()
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = p.client.Healthy()
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// pick selects the untried peer with the fewest cells in flight,
// preferring peers not in cooldown; when only cooled-down peers
// remain untried it offers them anyway (they may have recovered, and
// refusing would strand the cell). Equal-inflight ties round-robin
// via the rotating scan origin. It returns nil once every peer has
// been tried for this cell.
func (d *Dispatcher) pick(tried map[*peer]bool) *peer {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	n := len(d.peers)
	if n == 0 {
		return nil
	}
	start := d.rr % n
	d.rr++
	var best *peer
	bestDown := false
	for i := 0; i < n; i++ {
		p := d.peers[(start+i)%n]
		if tried[p] {
			continue
		}
		down := now.Before(p.downTil)
		switch {
		case best == nil,
			bestDown && !down,
			bestDown == down && p.inflight < best.inflight:
			best, bestDown = p, down
		}
	}
	if best != nil {
		best.inflight++
	}
	return best
}

// Run implements the Runner interface over the fleet: try peers in
// least-loaded order until one answers, marking each peer-level
// failure down for the cooldown. The cell fails only when every peer
// has faulted on it (the joined error names them all) or a peer
// reports a deterministic simulation error. An empty fleet fails
// fast with ErrNoPeers.
func (d *Dispatcher) Run(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	return d.run(obs.SpanContext{}, kind, mix, scale, cfg)
}

// RunTraced is Run under the caller's span context: each dispatch
// attempt records a "peer" span (detail: the peer's address) and the
// worker's own spans come back piggybacked and land in this
// dispatcher's tracer, so a cell that hopped workers after a fault
// still reads as one tree. It implements campaign.TracedRunner.
func (d *Dispatcher) RunTraced(sc obs.SpanContext, kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	return d.run(sc, kind, mix, scale, cfg)
}

func (d *Dispatcher) run(sc obs.SpanContext, kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	traced := d.tr != nil && sc.Valid()
	tried := map[*peer]bool{}
	var faults []error
	for {
		p := d.pick(tried)
		if p == nil {
			if len(faults) == 0 {
				return platform.Result{}, ErrNoPeers
			}
			return platform.Result{}, fmt.Errorf("remote: all %d peers failed: %w", len(faults), errors.Join(faults...))
		}
		tried[p] = true
		var res platform.Result
		var err error
		if traced {
			span := d.tr.StartSpan(sc, "peer", p.client.Addr())
			var spans []obs.Record
			res, spans, err = p.client.RunTraced(span.Context(), kind, mix, scale, cfg)
			d.tr.Ingest(spans)
			span.EndErr(err)
		} else {
			res, err = p.client.Run(kind, mix, scale, cfg)
		}
		d.mu.Lock()
		p.inflight--
		var pe *PeerError
		switch {
		case err == nil:
			p.cells++
			d.mu.Unlock()
			return res, nil
		case errors.As(err, &pe):
			p.failures++
			p.downTil = time.Now().Add(d.cooldown)
			// The cell goes back to the scheduling loop for another
			// peer — the fleet-level rebalancing event.
			d.reassigned++
			d.mu.Unlock()
			faults = append(faults, err)
		default:
			// A simulation error: deterministic, not the peer's fault.
			d.mu.Unlock()
			return platform.Result{}, err
		}
	}
}

// PeerStats snapshots every peer's counters in construction order.
func (d *Dispatcher) PeerStats() []PeerStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	out := make([]PeerStats, len(d.peers))
	for i, p := range d.peers {
		out[i] = PeerStats{
			Addr:     p.client.Addr(),
			Cells:    p.cells,
			Failures: p.failures,
			InFlight: p.inflight,
			Down:     now.Before(p.downTil),
		}
	}
	return out
}
