package remote

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"zng/internal/config"
	"zng/internal/platform"
	"zng/internal/workload"
)

// Dispatcher shards simulation cells across a fleet of zngd peers.
// It implements the same Runner interface as a single Client, so a
// campaign Executor (or any figure driver) fans out over the fleet
// without knowing it: each Run picks the healthy peer with the
// fewest cells in flight — locality-free work stealing, since cells
// are content-addressed and any peer can serve any cell — and a
// peer-level failure (connection refused, draining, garbage reply)
// re-routes the cell to another peer while the faulty one sits out a
// cooldown. Deterministic simulation errors reported by a peer are
// returned as-is: every worker would compute the same failure.
type Dispatcher struct {
	cooldown time.Duration

	mu sync.Mutex
	// peers is fixed at construction (the slice itself is never
	// resized or reassigned); the mutable scheduling state lives in
	// the peer structs, whose fields mu protects.
	peers []*peer
	// rr rotates the scan origin so equal-inflight ties round-robin
	// across the fleet instead of always landing on the first peer —
	// without it, fully serialized execution (every cell finishing
	// before the next dispatch) would starve every peer but peers[0].
	// guarded by mu.
	rr int
}

// peer is one worker plus its scheduling state. The scheduling
// fields belong to the dispatcher's lock domain, not the peer's own.
type peer struct {
	client   *Client
	inflight int       // guarded by Dispatcher.mu
	cells    uint64    // guarded by Dispatcher.mu
	failures uint64    // guarded by Dispatcher.mu
	downTil  time.Time // guarded by Dispatcher.mu
}

// PeerStats is one peer's scheduling counters — the per-worker view
// zngsweep -v prints and the distributed tests assert on.
type PeerStats struct {
	Addr string
	// Cells counts the cells this peer answered successfully.
	Cells uint64
	// Failures counts peer-level faults observed on this peer.
	Failures uint64
	// InFlight is the current outstanding request count.
	InFlight int
	// Down reports whether the peer is sitting out a failure cooldown.
	Down bool
}

// DefaultCooldown is how long a failed peer sits out before the
// dispatcher offers it work again.
const DefaultCooldown = 5 * time.Second

// NewDispatcher builds a dispatcher over peer addresses ("host:port"
// or http:// URLs). cooldown <= 0 uses DefaultCooldown.
func NewDispatcher(addrs []string, cooldown time.Duration) (*Dispatcher, error) {
	if len(addrs) == 0 {
		return nil, errors.New("remote: dispatcher needs at least one peer")
	}
	if cooldown <= 0 {
		cooldown = DefaultCooldown
	}
	d := &Dispatcher{cooldown: cooldown}
	for _, a := range addrs {
		d.peers = append(d.peers, &peer{client: NewClient(a)})
	}
	return d, nil
}

// SetTimeout overrides every peer client's per-request timeout.
func (d *Dispatcher) SetTimeout(t time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range d.peers {
		p.client.SetTimeout(t)
	}
}

// CheckHealth probes every peer's /healthz concurrently and returns
// an error naming the unreachable ones (nil when all answer). It does
// not mark peers down — the scheduling loop's own observations do
// that — it exists so a CLI can fail fast on a typo'd -peers list.
func (d *Dispatcher) CheckHealth() error {
	d.mu.Lock()
	peers := append([]*peer(nil), d.peers...)
	d.mu.Unlock()
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = p.client.Healthy()
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// pick selects the untried peer with the fewest cells in flight,
// preferring peers not in cooldown; when only cooled-down peers
// remain untried it offers them anyway (they may have recovered, and
// refusing would strand the cell). Equal-inflight ties round-robin
// via the rotating scan origin. It returns nil once every peer has
// been tried for this cell.
func (d *Dispatcher) pick(tried map[*peer]bool) *peer {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	n := len(d.peers)
	start := d.rr % n
	d.rr++
	var best *peer
	bestDown := false
	for i := 0; i < n; i++ {
		p := d.peers[(start+i)%n]
		if tried[p] {
			continue
		}
		down := now.Before(p.downTil)
		switch {
		case best == nil,
			bestDown && !down,
			bestDown == down && p.inflight < best.inflight:
			best, bestDown = p, down
		}
	}
	if best != nil {
		best.inflight++
	}
	return best
}

// Run implements the Runner interface over the fleet: try peers in
// least-loaded order until one answers, marking each peer-level
// failure down for the cooldown. The cell fails only when every peer
// has faulted on it (the joined error names them all) or a peer
// reports a deterministic simulation error.
func (d *Dispatcher) Run(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	tried := map[*peer]bool{}
	var faults []error
	for {
		p := d.pick(tried)
		if p == nil {
			return platform.Result{}, fmt.Errorf("remote: all %d peers failed: %w", len(d.peers), errors.Join(faults...))
		}
		tried[p] = true
		res, err := p.client.Run(kind, mix, scale, cfg)
		d.mu.Lock()
		p.inflight--
		var pe *PeerError
		switch {
		case err == nil:
			p.cells++
			d.mu.Unlock()
			return res, nil
		case errors.As(err, &pe):
			p.failures++
			p.downTil = time.Now().Add(d.cooldown)
			d.mu.Unlock()
			faults = append(faults, err)
		default:
			// A simulation error: deterministic, not the peer's fault.
			d.mu.Unlock()
			return platform.Result{}, err
		}
	}
}

// PeerStats snapshots every peer's counters in construction order.
func (d *Dispatcher) PeerStats() []PeerStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	out := make([]PeerStats, len(d.peers))
	for i, p := range d.peers {
		out[i] = PeerStats{
			Addr:     p.client.Addr(),
			Cells:    p.cells,
			Failures: p.failures,
			InFlight: p.inflight,
			Down:     now.Before(p.downTil),
		}
	}
	return out
}
