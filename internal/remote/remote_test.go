package remote_test

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"zng/internal/campaign"
	"zng/internal/config"
	"zng/internal/experiments"
	"zng/internal/platform"
	"zng/internal/remote"
	"zng/internal/report"
	"zng/internal/simsvc"
	"zng/internal/workload"
)

// newPeer boots a real zngd handler (the same simsvc.NewHandler the
// daemon serves) over a stub or real simulator.
func newPeer(t testing.TB, sim simsvc.SimFunc, workers int) (*httptest.Server, *simsvc.Service) {
	t.Helper()
	svc := simsvc.New(simsvc.Config{Workers: workers, Simulate: sim})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(simsvc.NewHandler(svc, config.Default()))
	t.Cleanup(srv.Close)
	return srv, svc
}

func testMix(t testing.TB, name string) workload.Mix {
	t.Helper()
	m, err := workload.MixByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestClientRunRoundTrip: the client is a Runner against a live zngd
// handler — the cell's full configuration travels with the request
// and the result comes back relabeled for the caller's mix.
func TestClientRunRoundTrip(t *testing.T) {
	var (
		mu      sync.Mutex
		gotCfg  config.Config
		gotMix  string
		gotKind platform.Kind
	)
	srv, _ := newPeer(t, func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		mu.Lock()
		gotCfg, gotMix, gotKind = cfg, mix.ID(), kind
		mu.Unlock()
		return platform.Result{Kind: kind, Workload: mix.Name, IPC: 3.5, Cycles: 100, Insts: 350}, nil
	}, 1)

	c := remote.NewClient(srv.URL)
	// A perturbed config must reach the peer's simulator exactly.
	cfg := config.Default()
	cfg.Flash.Channels = 8
	cfg.Prefetch.HighWaste = 0.5
	mix := testMix(t, "consol-2") // aliases bfs1-gaus: label must survive
	res, err := c.Run(platform.ZnG, mix, 0.25, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotKind != platform.ZnG || gotMix != "bfs1+gaus" {
		t.Errorf("peer simulated (%v, %q)", gotKind, gotMix)
	}
	if gotCfg != cfg {
		t.Errorf("peer config diverged from the caller's:\n%+v\n%+v", gotCfg, cfg)
	}
	if res.IPC != 3.5 || res.Workload != "consol-2" || res.Kind != platform.ZnG {
		t.Errorf("result = %+v, want IPC 3.5 relabeled consol-2", res)
	}
}

// TestClientErrors: a simulation failure reported by the peer is a
// plain error; a dead peer is a PeerError the dispatcher can route
// around.
func TestClientErrors(t *testing.T) {
	srv, _ := newPeer(t, func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		return platform.Result{}, errors.New("simulation deadlocked at tick 42")
	}, 1)
	c := remote.NewClient(srv.URL)
	_, err := c.Run(platform.ZnG, testMix(t, "solo-bfs1"), 0.25, config.Default())
	var pe *remote.PeerError
	if err == nil || errors.As(err, &pe) {
		t.Errorf("simulation failure = %v, want a non-peer error", err)
	}
	if !strings.Contains(err.Error(), "deadlocked") {
		t.Errorf("error lost the peer's message: %v", err)
	}

	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	_, err = remote.NewClient(deadURL).Run(platform.ZnG, testMix(t, "solo-bfs1"), 0.25, config.Default())
	if !errors.As(err, &pe) {
		t.Errorf("dead peer error = %v, want PeerError", err)
	}
	if err := remote.NewClient(deadURL).Healthy(); !errors.As(err, &pe) {
		t.Errorf("dead peer health = %v, want PeerError", err)
	}
	if err := remote.NewClient(srv.URL).Healthy(); err != nil {
		t.Errorf("live peer health = %v", err)
	}
}

// TestDispatcherFailover: with one live and one dead peer, every cell
// still lands exactly once — on the live peer — and the dead peer is
// marked down with its failures counted.
func TestDispatcherFailover(t *testing.T) {
	live, svc := newPeer(t, func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		return platform.Result{Kind: kind, Workload: mix.Name, IPC: 1.5}, nil
	}, 2)
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()

	d, err := remote.NewDispatcher([]string{deadURL, live.URL}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CheckHealth(); err == nil {
		t.Error("CheckHealth missed the dead peer")
	}

	spec := campaign.Spec{Platforms: []string{"ZnG", "HybridGPU"}, Scenarios: []string{"solo-bfs1", "solo-gaus"}, Scales: []float64{0.5}}
	out, err := campaign.Executor{Runner: d, Workers: 2}.Execute(spec, config.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Err(); err != nil {
		t.Fatalf("campaign failed despite a live peer: %v", err)
	}
	stats := d.PeerStats()
	if stats[0].Addr != deadURL || stats[0].Cells != 0 || stats[0].Failures == 0 || !stats[0].Down {
		t.Errorf("dead peer stats = %+v, want failures and down", stats[0])
	}
	if stats[1].Cells != 4 || stats[1].Failures != 0 {
		t.Errorf("live peer stats = %+v, want all 4 cells", stats[1])
	}
	if svc.Stats().Sims != 4 {
		t.Errorf("live peer simulated %d cells, want 4", svc.Stats().Sims)
	}
}

// TestDispatcherAllPeersDown: when every peer faults the cell fails
// with the joined peer errors rather than hanging.
func TestDispatcherAllPeersDown(t *testing.T) {
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	d, err := remote.NewDispatcher([]string{deadURL}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Run(platform.ZnG, testMix(t, "solo-bfs1"), 0.5, config.Default())
	if err == nil || !strings.Contains(err.Error(), "all 1 peers failed") {
		t.Errorf("error = %v, want all-peers failure", err)
	}
}

// TestDistributedCampaignEqualsLocal is the acceptance criterion: a
// campaign fanned out across two real zngd peers (each running the
// real simulator) produces a result matrix byte-identical to the same
// campaign executed locally through experiments.NewMemo(), and the
// dispatcher's per-peer counters show both peers simulated at least
// one cell.
func TestDistributedCampaignEqualsLocal(t *testing.T) {
	peerA, svcA := newPeer(t, nil, 1)
	peerB, svcB := newPeer(t, nil, 1)

	d, err := remote.NewDispatcher([]string{peerA.URL, peerB.URL}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	spec := campaign.Spec{
		Name:      "dist",
		Platforms: []string{"GDDR5", "Optane"},
		Scenarios: []string{"solo-bfs1", "solo-gaus"},
		Scales:    []float64{0.05},
	}
	distributed, err := campaign.Executor{Runner: d, Workers: 2}.Execute(spec, config.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := distributed.Err(); err != nil {
		t.Fatal(err)
	}

	local, err := campaign.Executor{Runner: experiments.NewMemo(), Workers: 2}.Execute(spec, config.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := local.Err(); err != nil {
		t.Fatal(err)
	}

	// Byte-for-byte under the canonical result encoding, cell by cell.
	for i := range local.Cells {
		a := report.EncodeResult(local.Cells[i].Result)
		b := report.EncodeResult(distributed.Cells[i].Result)
		if !bytes.Equal(a, b) {
			t.Errorf("cell %d (%s on %s) differs:\nlocal:  %s\nremote: %s",
				i, local.Cells[i].Cell.Kind, local.Cells[i].Cell.Mix.Name, a, b)
		}
	}
	// The folded matrices agree too.
	if a, b := report.JSON(local.Table()), report.JSON(distributed.Table()); !bytes.Equal(a, b) {
		t.Errorf("matrix differs:\nlocal:\n%s\nremote:\n%s", a, b)
	}

	// Every cell landed exactly once, spread across both peers.
	stats := d.PeerStats()
	var total uint64
	for _, p := range stats {
		total += p.Cells
		if p.Failures != 0 {
			t.Errorf("peer %s recorded %d failures", p.Addr, p.Failures)
		}
	}
	if total != uint64(len(spec.Platforms)*len(spec.Scenarios)) {
		t.Errorf("peers served %d cells, want %d exactly once each", total, len(spec.Platforms)*len(spec.Scenarios))
	}
	if stats[0].Cells == 0 || stats[1].Cells == 0 {
		t.Errorf("work stealing left a peer idle: %+v", stats)
	}
	if svcA.Stats().Sims == 0 || svcB.Stats().Sims == 0 {
		t.Errorf("peer services simulated %d/%d cells, want both > 0", svcA.Stats().Sims, svcB.Stats().Sims)
	}
}

// TestDispatcherRoundRobinsSerializedCells: with fully serialized
// execution (one cell in flight at a time) equal-inflight ties must
// rotate across the fleet rather than starving every peer but the
// first.
func TestDispatcherRoundRobinsSerializedCells(t *testing.T) {
	peerA, _ := newPeer(t, func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		return platform.Result{Kind: kind, Workload: mix.Name, IPC: 1}, nil
	}, 1)
	peerB, _ := newPeer(t, func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		return platform.Result{Kind: kind, Workload: mix.Name, IPC: 1}, nil
	}, 1)
	d, err := remote.NewDispatcher([]string{peerA.URL, peerB.URL}, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := campaign.Spec{Platforms: []string{"ZnG", "HybridGPU"}, Scenarios: []string{"solo-bfs1", "solo-gaus"}, Scales: []float64{0.5}}
	out, err := campaign.Executor{Runner: d, Workers: 1}.Execute(spec, config.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Err(); err != nil {
		t.Fatal(err)
	}
	stats := d.PeerStats()
	if stats[0].Cells != 2 || stats[1].Cells != 2 {
		t.Errorf("serialized cells split %d/%d across peers, want 2/2 round-robin", stats[0].Cells, stats[1].Cells)
	}
}

// TestDispatcherRoutesAroundHungPeer: a peer that accepts connections
// but never answers (wedged, not refused) must surface as a PeerError
// within one client timeout — and the dispatcher then lands the cell
// on a live peer instead of hanging the campaign forever.
func TestDispatcherRoutesAroundHungPeer(t *testing.T) {
	release := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hold every request open until the test ends
	}))
	defer hang.Close()
	defer close(release) // LIFO: unwedge the handlers, then Close can drain
	live, svc := newPeer(t, func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		return platform.Result{Kind: kind, Workload: mix.Name, IPC: 2}, nil
	}, 1)

	hungClient := remote.NewClient(hang.URL)
	hungClient.SetTimeout(100 * time.Millisecond)
	start := time.Now()
	_, err := hungClient.Run(platform.ZnG, testMix(t, "solo-bfs1"), 0.5, config.Default())
	var pe *remote.PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("hung peer error = %v, want PeerError", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hung peer took %v to fault, want about one client timeout", elapsed)
	}

	d, err := remote.NewDispatcher([]string{hang.URL, live.URL}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	d.SetTimeout(100 * time.Millisecond)
	res, err := d.Run(platform.ZnG, testMix(t, "solo-bfs1"), 0.5, config.Default())
	if err != nil || res.IPC != 2 {
		t.Fatalf("dispatcher did not route around the hung peer: %v, %+v", err, res)
	}
	if svc.Stats().Sims != 1 {
		t.Errorf("live peer simulated %d cells, want 1", svc.Stats().Sims)
	}
}
