// Package remote turns zngd daemons into simulation backends: a
// Client implements the experiments/campaign Runner interface against
// one peer's HTTP JSON API, and a Dispatcher (dispatcher.go) shards
// cells across N peers — health-checked, retried on peer failure,
// balanced by least-in-flight work stealing — so several zngd
// processes compose into one horizontally-scaled simulation fleet.
// This is the FlashGraph/Gunrock split applied to the simulator
// itself: the semantic layer (campaign specs, figure drivers) stays
// single-image while execution fans out over commodity workers.
//
// A request carries the cell's full configuration, not just the
// platform/mix/scale triple, so the peer computes exactly the cell
// the caller addressed — the content key (store.CellKey) hashes the
// same bytes on both sides, and a distributed campaign's results are
// byte-identical to a local run under the canonical result encoding.
package remote

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"zng/internal/config"
	"zng/internal/obs"
	"zng/internal/platform"
	"zng/internal/report"
	"zng/internal/workload"
)

// PeerError marks a failure of the peer itself — unreachable,
// draining (503), or replying garbage — as opposed to a deterministic
// simulation error the peer reported. The dispatcher retries peer
// errors on another worker; simulation errors it returns as-is, since
// every peer would compute the same failure.
type PeerError struct {
	Peer string
	Err  error
}

func (e *PeerError) Error() string { return fmt.Sprintf("remote: peer %s: %v", e.Peer, e.Err) }
func (e *PeerError) Unwrap() error { return e.Err }

// runRequest mirrors the zngd POST /v1/run body (simsvc/api.go). The
// cell's workload travels in the ad-hoc apps syntax derived from the
// mix's content identity, so unregistered compositions work and a
// registered scenario resolves to the same cell key on the peer; the
// caller relabels the returned result with its own display name.
type runRequest struct {
	Platform string         `json:"platform"`
	Apps     string         `json:"apps"`
	Scale    float64        `json:"scale"`
	Async    bool           `json:"async"`
	Config   *config.Config `json:"config,omitempty"`
}

// DefaultTimeout bounds every individual HTTP round trip the client
// makes. A simulation cell may take arbitrarily long, but no single
// request does — Run submits asynchronously and polls, so a peer
// that wedges mid-cell (as opposed to refusing connections) still
// surfaces as a PeerError within one timeout instead of hanging the
// caller forever.
const DefaultTimeout = 30 * time.Second

// Client is one zngd peer speaking the /v1 JSON API. It implements
// the experiments/campaign Runner interface; every Run is one async
// POST /v1/run carrying the full cell, followed by bounded status
// polls to completion.
type Client struct {
	base string
	hc   *http.Client
	poll time.Duration
}

// NewClient returns a client for a peer address ("host:port" or a
// full http:// URL).
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		base: strings.TrimRight(addr, "/"),
		hc:   &http.Client{Timeout: DefaultTimeout},
		poll: 50 * time.Millisecond,
	}
}

// SetTimeout overrides the per-request timeout (tests use a short
// one to exercise hung-peer detection quickly).
func (c *Client) SetTimeout(d time.Duration) { c.hc.Timeout = d }

// Addr reports the peer's base URL.
func (c *Client) Addr() string { return c.base }

// appsArg renders a mix as zngsim/zngd ad-hoc apps syntax: the
// content ID with component separators swapped ("bfs1+gaus*1.5" ->
// "bfs1,gaus*1.5").
func appsArg(mix workload.Mix) string {
	return strings.ReplaceAll(mix.ID(), "+", ",")
}

// envelope is the common reply shape of POST /v1/run and
// GET /v1/jobs/{id}.
type envelope struct {
	Error string `json:"error"`
	Job   struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	} `json:"job"`
	Result json.RawMessage `json:"result"`
	// Spans is the worker-side span subtree of a traced request,
	// piggybacked on the poll reply that observed the job complete so
	// the caller's flight recorder holds the whole cross-process tree.
	Spans []obs.Record `json:"spans"`
}

// Run implements the Runner interface against the peer: submit the
// cell asynchronously, poll its job to completion (every round trip
// bounded by the client timeout, so a wedged peer faults instead of
// hanging), decode the canonical result document, and relabel it
// with the caller's mix name (aliasing scenarios share the remote
// cell but keep their own labels, matching the local runners'
// contract).
func (c *Client) Run(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	r, _, err := c.run(obs.SpanContext{}, kind, mix, scale, cfg)
	return r, err
}

// RunTraced is Run carrying the caller's span context in the
// X-Zng-Trace header on the submit and every poll, so the peer
// parents its own spans (queue wait, tier lookups, simulation) under
// sc. The returned records are the peer-side span subtree piggybacked
// on the final poll reply — the caller ingests them into its own
// flight recorder to complete the cross-process tree. Spans may be
// non-empty even when err is a deterministic simulation error (the
// failing sim span is part of the story); they are empty on
// peer-level faults.
func (c *Client) RunTraced(sc obs.SpanContext, kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, []obs.Record, error) {
	return c.run(sc, kind, mix, scale, cfg)
}

func (c *Client) run(sc obs.SpanContext, kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, []obs.Record, error) {
	body, err := json.Marshal(runRequest{
		Platform: kind.String(),
		Apps:     appsArg(mix),
		Scale:    scale,
		Async:    true,
		Config:   &cfg,
	})
	if err != nil {
		return platform.Result{}, nil, fmt.Errorf("remote: encoding request: %w", err)
	}
	resp, err := c.post(sc, "/v1/run", body)
	if err != nil {
		return platform.Result{}, nil, &PeerError{Peer: c.base, Err: err}
	}
	env, err := decodeEnvelope(resp)
	if err != nil {
		return platform.Result{}, nil, &PeerError{Peer: c.base, Err: err}
	}
	if resp.StatusCode != http.StatusAccepted || env.Job.ID == "" {
		// 503 (draining), 4xx against this client's own request shape,
		// or anything else unexpected: a peer-level fault the
		// dispatcher can route around.
		return platform.Result{}, nil, &PeerError{Peer: c.base, Err: fmt.Errorf("submit status %d: %s", resp.StatusCode, errText(env))}
	}

	delay := c.poll
	for {
		resp, err := c.get(sc, "/v1/jobs/"+env.Job.ID)
		if err != nil {
			return platform.Result{}, nil, &PeerError{Peer: c.base, Err: err}
		}
		env, err := decodeEnvelope(resp)
		if err != nil {
			return platform.Result{}, nil, &PeerError{Peer: c.base, Err: err}
		}
		switch {
		case resp.StatusCode != http.StatusOK:
			// Includes an evicted job id (404): the cell's outcome is
			// no longer observable here, so let the dispatcher re-route.
			return platform.Result{}, nil, &PeerError{Peer: c.base, Err: fmt.Errorf("poll status %d: %s", resp.StatusCode, errText(env))}
		case env.Job.State == "error":
			// The peer ran the cell and the simulation itself failed —
			// deterministic, so another peer would only repeat it.
			return platform.Result{}, env.Spans, fmt.Errorf("remote: simulation failed on %s: %s", c.base, env.Job.Error)
		case env.Job.State == "done":
			r, err := report.DecodeResult(env.Result)
			if err != nil {
				return platform.Result{}, nil, &PeerError{Peer: c.base, Err: err}
			}
			if mix.Name != "" {
				r.Workload = mix.Name
			}
			return r, env.Spans, nil
		}
		time.Sleep(delay)
		// Back off toward one-second polls so long cells cost the peer
		// little while tiny cells still round-trip fast.
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
	}
}

// post issues one POST with the trace header attached when sc is
// valid.
func (c *Client) post(sc obs.SpanContext, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if sc.Valid() {
		req.Header.Set(obs.Header, sc.Encode())
	}
	return c.hc.Do(req)
}

// get issues one GET with the trace header attached when sc is valid.
func (c *Client) get(sc obs.SpanContext, path string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	if sc.Valid() {
		req.Header.Set(obs.Header, sc.Encode())
	}
	return c.hc.Do(req)
}

// decodeEnvelope reads one reply; an undecodable body (proxy page,
// truncated reply) is an error whatever the status code said.
func decodeEnvelope(resp *http.Response) (envelope, error) {
	defer resp.Body.Close()
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return env, fmt.Errorf("undecodable reply (status %d): %w", resp.StatusCode, err)
	}
	return env, nil
}

func errText(env envelope) string {
	if env.Error != "" {
		return env.Error
	}
	return "no error body"
}

// Healthy probes the peer's /healthz endpoint with a short timeout.
func (c *Client) Healthy() error {
	hc := &http.Client{Timeout: 5 * time.Second}
	resp, err := hc.Get(c.base + "/healthz")
	if err != nil {
		return &PeerError{Peer: c.base, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &PeerError{Peer: c.base, Err: fmt.Errorf("healthz status %d", resp.StatusCode)}
	}
	return nil
}
