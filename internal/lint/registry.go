package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// RegistryConfig scopes the registry-completeness analyzer to the two
// registries this repository keeps: the figure registry in
// internal/experiments and the scenario registry in internal/workload.
type RegistryConfig struct {
	// ExperimentsPkg is the import-path suffix of the figure-driver
	// package.
	ExperimentsPkg string
	// TablePkg/TableType name the result type that marks a function
	// as a figure driver (first result *stats.Table).
	TablePkg  string
	TableType string
	// RegistryFunc is the function whose body declares the registry
	// entries; EntryType is their struct type, DriverField/IDField the
	// string fields to cross-check.
	RegistryFunc string
	EntryType    string
	DriverField  string
	IDField      string

	// ScenariosPkg is the import-path suffix of the scenario package;
	// ScenariosFunc the registry root; MixType the scenario value
	// type. Every exported function returning MixType must be in the
	// static call graph rooted at ScenariosFunc, unless listed in
	// ScenarioExempt (lookups and ad-hoc parsers, which intentionally
	// live outside the registry).
	ScenariosPkg   string
	ScenariosFunc  string
	MixType        string
	ScenarioExempt []string
}

// DefaultRegistry returns the registry analyzer bound to this
// repository's two registries.
func DefaultRegistry() *Analyzer {
	return NewRegistry(RegistryConfig{
		ExperimentsPkg: "internal/experiments",
		TablePkg:       "internal/stats",
		TableType:      "Table",
		RegistryFunc:   "Registry",
		EntryType:      "Figure",
		DriverField:    "Driver",
		IDField:        "ID",

		ScenariosPkg:   "internal/workload",
		ScenariosFunc:  "Scenarios",
		MixType:        "Mix",
		ScenarioExempt: []string{"MixByName", "ParseApps"},
	})
}

// NewRegistry builds the registry-completeness analyzer: in the
// experiments package it asserts a bijection between figure drivers
// (exported functions whose first result is *stats.Table) and the
// Driver fields of the entries Registry() declares — every driver
// registered exactly once, every registered name backed by a real
// driver, every ID unique. In the workload package it asserts that
// every exported Mix-returning constructor is reachable from
// Scenarios() in the static call graph, so a new scenario family
// cannot be added without entering the registry vocabulary. This is
// the compile-time successor of the go/parser test that previously
// lived in internal/experiments.
func NewRegistry(cfg RegistryConfig) *Analyzer {
	a := &Analyzer{
		Name: "registry",
		Doc: "cross-check figure drivers against Registry() entries and scenario " +
			"constructors against Scenarios() reachability",
	}
	a.Run = func(pass *Pass) error {
		if pathMatches(pass.Pkg.Path(), []string{cfg.ExperimentsPkg}) {
			checkFigureRegistry(pass, cfg)
		}
		if pathMatches(pass.Pkg.Path(), []string{cfg.ScenariosPkg}) {
			checkScenarioReachability(pass, cfg)
		}
		return nil
	}
	return a
}

// checkFigureRegistry enforces the driver <-> registry bijection.
func checkFigureRegistry(pass *Pass, cfg RegistryConfig) {
	drivers := map[string]*ast.FuncDecl{}
	var registryFn *ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			if fd.Name.Name == cfg.RegistryFunc {
				registryFn = fd
			}
			if fd.Name.IsExported() && firstResultIsTablePtr(pass, fd, cfg) {
				drivers[fd.Name.Name] = fd
			}
		}
	}
	if registryFn == nil {
		pass.Reportf(pass.Files[0].Pos(), "registry function %s not found in %s",
			cfg.RegistryFunc, pass.Pkg.Path())
		return
	}
	if len(drivers) == 0 {
		pass.Reportf(registryFn.Pos(),
			"no exported *%s.%s drivers found in %s: driver detection is broken",
			cfg.TablePkg, cfg.TableType, pass.Pkg.Path())
		return
	}

	registered := map[string][]ast.Expr{}
	ids := map[string][]ast.Expr{}
	ast.Inspect(registryFn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		named := baseNamed(pass.TypesInfo.TypeOf(lit))
		if named == nil || named.Obj().Name() != cfg.EntryType || named.Obj().Pkg() != pass.Pkg {
			return true
		}
		var driver, id ast.Expr
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case cfg.DriverField:
				driver = kv.Value
			case cfg.IDField:
				id = kv.Value
			}
		}
		if driver != nil {
			if name, ok := stringConst(pass, driver); ok {
				registered[name] = append(registered[name], driver)
			} else {
				pass.Reportf(driver.Pos(),
					"registry entry's %s field is not a constant string: the driver bijection cannot be checked statically",
					cfg.DriverField)
			}
		}
		if id != nil {
			if name, ok := stringConst(pass, id); ok {
				ids[name] = append(ids[name], id)
			}
		}
		return false
	})

	for name, fd := range drivers {
		switch n := len(registered[name]); {
		case n == 0:
			pass.Reportf(fd.Name.Pos(),
				"driver %s returns *%s.%s but has no %s() entry: register it or unexport it",
				name, "stats", cfg.TableType, cfg.RegistryFunc)
		case n > 1:
			pass.Reportf(registered[name][1].Pos(),
				"driver %s is registered %d times", name, n)
		}
	}
	for name, exprs := range registered {
		if drivers[name] == nil {
			pass.Reportf(exprs[0].Pos(),
				"%s() names driver %s, which no exported *%s.%s function defines",
				cfg.RegistryFunc, name, "stats", cfg.TableType)
		}
	}
	for id, exprs := range ids {
		if len(exprs) > 1 {
			pass.Reportf(exprs[1].Pos(), "figure id %q registered %d times", id, len(exprs))
		}
	}
}

// firstResultIsTablePtr reports whether fd's first result is a
// pointer to the configured table type.
func firstResultIsTablePtr(pass *Pass, fd *ast.FuncDecl, cfg RegistryConfig) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fd.Type.Results.List[0].Type)
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != cfg.TableType || named.Obj().Pkg() == nil {
		return false
	}
	return pathMatches(named.Obj().Pkg().Path(), []string{cfg.TablePkg})
}

// stringConst resolves e to a constant string value.
func stringConst(pass *Pass, e ast.Expr) (string, bool) {
	if lit, ok := ast.Unparen(e).(*ast.BasicLit); ok {
		s, err := strconv.Unquote(lit.Value)
		return s, err == nil
	}
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return constStringValue(tv)
	}
	return "", false
}

func constStringValue(tv types.TypeAndValue) (string, bool) {
	if tv.Value == nil {
		return "", false
	}
	s := tv.Value.ExactString()
	if len(s) >= 2 && s[0] == '"' {
		if u, err := strconv.Unquote(s); err == nil {
			return u, true
		}
	}
	return "", false
}

// checkScenarioReachability flags exported Mix-returning constructors
// the registry root cannot reach.
func checkScenarioReachability(pass *Pass, cfg RegistryConfig) {
	// calls maps each package-level function to the package-level
	// functions its body (including nested literals) calls.
	calls := map[string][]string{}
	constructors := map[string]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok && fn.Pkg() == pass.Pkg {
						calls[name] = append(calls[name], fn.Name())
					}
				}
				return true
			})
			if fd.Name.IsExported() && returnsMix(pass, fd, cfg) {
				constructors[name] = fd
			}
		}
	}

	reachable := map[string]bool{}
	var walk func(string)
	walk = func(name string) {
		if reachable[name] {
			return
		}
		reachable[name] = true
		for _, callee := range calls[name] {
			walk(callee)
		}
	}
	walk(cfg.ScenariosFunc)

	exempt := map[string]bool{}
	for _, e := range cfg.ScenarioExempt {
		exempt[e] = true
	}
	for name, fd := range constructors {
		if !reachable[name] && !exempt[name] {
			pass.Reportf(fd.Name.Pos(),
				"scenario constructor %s is not reachable from %s(): its mixes are invisible to the registry (zngsim -list, campaign specs)",
				name, cfg.ScenariosFunc)
		}
	}
}

// returnsMix reports whether any of fd's results is the configured
// Mix type (Mix, []Mix, or alongside an error).
func returnsMix(pass *Pass, fd *ast.FuncDecl, cfg RegistryConfig) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, res := range fd.Type.Results.List {
		t := pass.TypesInfo.TypeOf(res.Type)
		if sl, ok := t.(*types.Slice); ok {
			t = sl.Elem()
		}
		named, ok := t.(*types.Named)
		if ok && named.Obj().Name() == cfg.MixType && named.Obj().Pkg() == pass.Pkg {
			return true
		}
	}
	return false
}
