package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Sink names one function whose arguments become content-addressed
// bytes.
type Sink struct {
	// PkgSuffix matches the defining package's import path.
	PkgSuffix string
	// Func is the function name.
	Func string
}

// CanonicalKeyConfig lists the content-address sinks to check.
type CanonicalKeyConfig struct {
	Sinks []Sink
}

// DefaultCanonicalKey returns the canonical-key analyzer bound to the
// byte-canonical encoders of this repository: the cell-key hasher
// every store entry, coalescing decision and campaign dedupe rides
// on, the result codec whose bytes the store persists, and the fleet
// checkpoint encoders — the campaign-id hasher (a resumed campaign
// must derive the same id from the same spec on every machine) and
// the journal-entry codec the checkpoint files persist.
func DefaultCanonicalKey() *Analyzer {
	return NewCanonicalKey(CanonicalKeyConfig{
		Sinks: []Sink{
			{PkgSuffix: "internal/cellkey", Func: "Key"},
			{PkgSuffix: "internal/report", Func: "EncodeResult"},
			{PkgSuffix: "internal/fleet", Func: "CampaignID"},
			{PkgSuffix: "internal/fleet", Func: "encodeJournalEntry"},
		},
	})
}

// NewCanonicalKey builds the canonical-key analyzer: every value
// passed (transitively, through exported fields) to a configured sink
// must encode to the same bytes on every run and every machine, or
// the content address it feeds stops naming its content. Flagged
// field shapes: interfaces (the dynamic type is not pinned by the
// schema), funcs and channels (not encodable at all), and maps whose
// keys encoding/json cannot sort deterministically (only string and
// integer keys marshal in sorted order; any other key type is
// iteration-ordered or unencodable). String- or integer-keyed maps
// with canonical value types pass: encoding/json sorts those keys, so
// Result.Extra-style maps stay byte-stable.
func NewCanonicalKey(cfg CanonicalKeyConfig) *Analyzer {
	a := &Analyzer{
		Name: "canonicalkey",
		Doc: "forbid interface/func/chan fields and unsortable maps in types " +
			"passed to content-address sinks (cellkey.Key, report.EncodeResult)",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sink := sinkCalled(pass, call, cfg.Sinks)
				if sink == nil {
					return true
				}
				for i, arg := range call.Args {
					t := pass.TypesInfo.TypeOf(arg)
					if t == nil {
						continue
					}
					if path, why := findNonCanonical(t, nil, map[types.Type]bool{}); why != "" {
						pass.Reportf(arg.Pos(),
							"argument %d of %s.%s has type %s, which is not byte-canonical: %s%s",
							i+1, sink.PkgSuffix, sink.Func, types.TypeString(t, types.RelativeTo(pass.Pkg)),
							pathString(path), why)
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// sinkCalled resolves a call to one of the configured sinks.
func sinkCalled(pass *Pass, call *ast.CallExpr, sinks []Sink) *Sink {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	for i := range sinks {
		if fn.Name() == sinks[i].Func && pathMatches(fn.Pkg().Path(), []string{sinks[i].PkgSuffix}) {
			return &sinks[i]
		}
	}
	return nil
}

// findNonCanonical walks a type through exported struct fields,
// slices, arrays and pointers, returning the field path and reason of
// the first non-canonical shape. Unexported fields are skipped: the
// canonical encodings are JSON, which never marshals them.
func findNonCanonical(t types.Type, path []string, seen map[types.Type]bool) ([]string, string) {
	if seen[t] {
		return nil, ""
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return path, "unsafe.Pointer cannot be encoded"
		}
		return nil, ""
	case *types.Pointer:
		return findNonCanonical(u.Elem(), path, seen)
	case *types.Slice:
		return findNonCanonical(u.Elem(), path, seen)
	case *types.Array:
		return findNonCanonical(u.Elem(), path, seen)
	case *types.Interface:
		return path, "an interface's dynamic type is not pinned by the schema"
	case *types.Signature:
		return path, "a func cannot be encoded"
	case *types.Chan:
		return path, "a channel cannot be encoded"
	case *types.Map:
		if !sortableKey(u.Key()) {
			return path, fmt.Sprintf("map key type %s does not marshal in sorted order (only string and integer keys do)", u.Key())
		}
		return findNonCanonical(u.Elem(), path, seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			if p, why := findNonCanonical(f.Type(), append(path, f.Name()), seen); why != "" {
				return p, why
			}
		}
		return nil, ""
	}
	return nil, ""
}

// sortableKey reports whether encoding/json marshals a map with this
// key type in deterministic sorted order: string or integer kinds.
func sortableKey(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsString|types.IsInteger) != 0
}

// pathString renders the offending field path for a diagnostic.
func pathString(path []string) string {
	if len(path) == 0 {
		return ""
	}
	out := "field "
	for i, p := range path {
		if i > 0 {
			out += "."
		}
		out += p
	}
	return out + ": "
}
