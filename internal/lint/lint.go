// Package lint machine-enforces the invariants the rest of this
// repository only states in prose: byte-identical simulation output
// (determinism), mutex discipline on the concurrent serving layers
// (guardedby), the driver/registry bijections behind zngfig and the
// scenario vocabulary (registry), and map/interface-free types behind
// every content address (canonicalkey). The analyzers are surfaced by
// cmd/znglint and run in CI, so a regression in any of these
// properties fails the build instead of surfacing as a byte-diff in
// docs or a corrupted store key months later.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis —
// an Analyzer with a Run func over a Pass carrying the type-checked
// package — but is self-contained on the standard library
// (go/ast, go/types, go/importer): the build environment has no
// network access to fetch x/tools, and the four analyzers need none
// of its extras. Packages are loaded by load.go through
// `go list -export`, so analysis sees exactly what the compiler
// builds.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. Run inspects a single type-checked
// package and reports findings through the Pass; it returns an error
// only for analyzer malfunction (a finding is a Diagnostic, not an
// error).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string
	// Doc is the one-paragraph description `znglint -help` prints.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned in the source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Run applies every analyzer to every package and returns the
// combined findings sorted by file position then analyzer name, so
// output is deterministic regardless of package or analyzer order.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// Suite returns the four repo-invariant analyzers at their default
// (this-repository) configuration — what cmd/znglint and CI run.
func Suite() []*Analyzer {
	return []*Analyzer{
		DefaultDeterminism(),
		DefaultGuardedBy(),
		DefaultRegistry(),
		DefaultCanonicalKey(),
	}
}
