// Package linttest runs one lint.Analyzer over packages under
// internal/lint/testdata/src and matches its diagnostics against
// `// want "regexp"` comments in the testdata source — the same
// contract as golang.org/x/tools' analysistest, rebuilt on the
// stdlib-only framework because the build environment cannot fetch
// x/tools. A test fails on any diagnostic no want comment on its line
// explains, and on any want comment no diagnostic fulfills, so the
// testdata pins both the flagged and the clean cases.
package linttest

import (
	"regexp"
	"sort"
	"strconv"
	"testing"

	"zng/internal/lint"
)

// prefix locates the testdata packages as an import path: `go list`
// resolves it from any working directory inside the module, so tests
// need not find the module root. The go tool never matches testdata
// directories with ./... wildcards, which is exactly why the fixture
// packages — full of intentional violations — live there: the real
// suite run over the module cannot see them.
const prefix = "zng/internal/lint/testdata/src/"

// wantPattern finds a want comment's quoted regexp list.
var wantPattern = regexp.MustCompile(`want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)

// quoted splits the list into individual Go-quoted strings.
var quoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one want regexp awaiting a diagnostic on its line.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the named testdata packages (directory names under
// internal/lint/testdata/src), applies the analyzer, and checks the
// diagnostics against the want comments.
func Run(t *testing.T, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	patterns := make([]string, len(pkgs))
	for i, p := range pkgs {
		patterns[i] = prefix + p
	}
	loaded, err := lint.Load(".", patterns...)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(loaded, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, loaded)
	for _, d := range diags {
		key := d.Pos.Filename + ":" + strconv.Itoa(d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	var keys []string
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, w.raw)
			}
		}
	}
}

// collectWants parses every want comment in the loaded packages,
// keyed by "file:line".
func collectWants(t *testing.T, pkgs []*lint.Package) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantPattern.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := pos.Filename + ":" + strconv.Itoa(pos.Line)
					for _, q := range quoted.FindAllString(m[1], -1) {
						raw, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", key, q, err)
						}
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, raw, err)
						}
						wants[key] = append(wants[key], &expectation{re: re, raw: raw})
					}
				}
			}
		}
	}
	return wants
}
