package lint_test

import (
	"testing"

	"zng/internal/lint"
	"zng/internal/lint/linttest"
)

// TestDeterminism pins the determinism analyzer against flagged and
// clean fixtures, with detrand playing internal/rng's blessed role.
func TestDeterminism(t *testing.T) {
	a := lint.NewDeterminism(lint.DeterminismConfig{
		Packages:    []string{"detdata", "detrand"},
		RandAllowed: []string{"detrand"},
	})
	linttest.Run(t, a, "detdata", "detrand")
}

// TestGuardedBy pins the lock tracker: straight-line locking,
// deferred unlocks, goroutine escapes, RLock writes, the Locked and
// caller-holds conventions, constructor freshness, cross-type guards
// and malformed annotations.
func TestGuardedBy(t *testing.T) {
	linttest.Run(t, lint.DefaultGuardedBy(), "gbdata")
}

// TestRegistry pins both registry halves against stand-in packages
// shaped like internal/experiments and internal/workload.
func TestRegistry(t *testing.T) {
	a := lint.NewRegistry(lint.RegistryConfig{
		ExperimentsPkg: "regfigs",
		TablePkg:       "regstats",
		TableType:      "Table",
		RegistryFunc:   "Registry",
		EntryType:      "Figure",
		DriverField:    "Driver",
		IDField:        "ID",

		ScenariosPkg:   "regmix",
		ScenariosFunc:  "Scenarios",
		MixType:        "Mix",
		ScenarioExempt: []string{"MixByName"},
	})
	linttest.Run(t, a, "regfigs", "regmix")
}

// TestCanonicalKey pins the canonical-shape walk at a stand-in sink.
func TestCanonicalKey(t *testing.T) {
	a := lint.NewCanonicalKey(lint.CanonicalKeyConfig{
		Sinks: []lint.Sink{{PkgSuffix: "cksink", Func: "Key"}},
	})
	linttest.Run(t, a, "ckdata")
}

// TestTreeClean runs the real suite over the real module: the
// repository must satisfy its own invariants. This is the test-time
// twin of the znglint CI gate, so a violation fails `go test ./...`
// even where CI is not running.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := lint.Load(".", "zng/...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(pkgs, lint.Suite())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
