package lint_test

import (
	"testing"

	"zng/internal/lint"
)

// BenchmarkZnglint measures one full suite pass over the loaded
// module — the analysis cost alone, with the go list/parse/type-check
// front end hoisted out of the timed region, since that is the part
// znglint's own code controls.
func BenchmarkZnglint(b *testing.B) {
	pkgs, err := lint.Load(".", "zng/...")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, err := lint.Run(pkgs, lint.Suite())
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("suite found %d diagnostics in a clean tree", len(diags))
		}
	}
}
