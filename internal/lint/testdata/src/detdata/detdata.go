// Package detdata exercises the determinism analyzer: the flagged
// cases (wall clock, math/rand, order-sensitive map iteration) and
// the clean idioms that must stay silent (collect-then-sort, integer
// accumulation, min/max scans, map inversion).
package detdata

import (
	"fmt"
	"io"
	"math/rand" // want "import of math/rand in deterministic package"
	"sort"
	"time"
)

// Clock reads the wall clock inside the deterministic core.
func Clock() int64 {
	return time.Now().UnixNano() // want "time.Now in deterministic package"
}

// Draw uses the forbidden import so it compiles; only the import line
// is flagged.
func Draw() int { return rand.Int() }

// BadKeys leaks map iteration order into the returned slice.
func BadKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want "never sorted afterwards"
		out = append(out, k)
	}
	return out
}

// GoodKeys is the blessed collect-then-sort idiom.
func GoodKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// BadSum accumulates floats in map order: float addition does not
// associate, so the sum's bits depend on iteration order.
func BadSum(m map[string]float64) float64 {
	var t float64
	for _, v := range m {
		t += v // want "order-sensitive operation inside range over map"
	}
	return t
}

// GoodCount accumulates integers, which is order-independent.
func GoodCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// GoodMax is an order-independent scan.
func GoodMax(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// BadEmit writes rows in map iteration order.
func BadEmit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "order-sensitive operation inside range over map"
	}
}

// GoodInvert builds another map; insertion order is invisible.
func GoodInvert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
