// Package regmix exercises the scenario half of the registry
// analyzer: every exported Mix-returning constructor must be in the
// static call graph rooted at Scenarios, unless exempted.
package regmix

// Mix is one scenario value.
type Mix struct {
	Name string
}

// Scenarios is the registry root.
func Scenarios() []Mix {
	out := []Mix{PairMix()}
	out = append(out, tripleMixes()...)
	return out
}

// PairMix is reachable directly from the root.
func PairMix() Mix { return Mix{Name: "pair"} }

// tripleMixes is the unexported hop to TripleMix.
func tripleMixes() []Mix { return []Mix{TripleMix()} }

// TripleMix is reachable through the helper.
func TripleMix() Mix { return Mix{Name: "triple"} }

// StrayMix is never wired into Scenarios.
func StrayMix() Mix { return Mix{Name: "stray"} } // want "not reachable from Scenarios"

// MixByName is a lookup, exempted in the test configuration.
func MixByName(n string) Mix { return Mix{Name: n} }
