// Package gbdata exercises the guardedby analyzer: annotated fields
// touched with and without their mutex, deferred unlocks, goroutine
// bodies, read locks, the Locked-suffix and caller-holds conventions,
// the constructor-freshness exemption, cross-type guards, and
// malformed annotations.
package gbdata

import "sync"

// Counter is the basic sibling-guard case.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Good locks around the access.
func (c *Counter) Good() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// GoodDefer holds the lock through the deferred unlock.
func (c *Counter) GoodDefer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Bad touches the field with no lock at all.
func (c *Counter) Bad() {
	c.n++ // want "guarded by mu, which is not held here"
}

// BadGo acquires the lock but mutates from a new goroutine, which
// starts with nothing held.
func (c *Counter) BadGo() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "guarded by mu, which is not held here"
	}()
}

// BadAfterUnlock releases before the access.
func (c *Counter) BadAfterUnlock() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want "guarded by mu, which is not held here"
}

// bumpLocked runs under the caller's lock by naming convention.
func (c *Counter) bumpLocked() { c.n++ }

// reset zeroes the counter; caller holds mu.
func (c *Counter) reset() { c.n = 0 }

// NewCounter builds a value no other goroutine can see yet: the
// constructor-freshness exemption keeps it clean.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 1
	return c
}

// Gauge exercises the read/write distinction of an RWMutex guard.
type Gauge struct {
	mu sync.RWMutex
	v  float64 // guarded by mu
}

// ReadOK reads under the read lock.
func (g *Gauge) ReadOK() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// WriteOK writes under the write lock.
func (g *Gauge) WriteOK(x float64) {
	g.mu.Lock()
	g.v = x
	g.mu.Unlock()
}

// BadWrite mutates under a read lock, which licenses concurrent
// readers.
func (g *Gauge) BadWrite(x float64) {
	g.mu.RLock()
	g.v = x // want "written holding only the read lock"
	g.mu.RUnlock()
}

// pool and item exercise the cross-type guard: item's scheduling
// state belongs to pool's lock domain.
type pool struct {
	mu    sync.Mutex
	items []*item
}

type item struct {
	hits int // guarded by pool.mu
}

// TouchOK holds the pool lock around the item access.
func (p *pool) TouchOK(it *item) {
	p.mu.Lock()
	it.hits++
	p.mu.Unlock()
}

// TouchBad touches the item with no pool lock.
func (p *pool) TouchBad(it *item) {
	it.hits++ // want "guarded by mu, which is not held here"
}

// badAnnot's annotations are malformed and must be reported where
// they are written.
type badAnnot struct {
	g int
	x int // guarded by missing — want "not a field of badAnnot"
	y int // guarded by g — want "not a sync.Mutex or sync.RWMutex"
	z int // guarded by Nowhere.mu — want "unknown type"
}

// use keeps the unexported types and fields referenced.
func use(p *pool, b *badAnnot) int {
	c := NewCounter()
	c.bumpLocked()
	c.reset()
	_ = p.items
	return b.g + len(p.items)
}

var _ = use
