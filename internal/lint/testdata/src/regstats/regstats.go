// Package regstats is the testdata stand-in for internal/stats: a
// Table type whose pointer return marks a function as a figure
// driver.
package regstats

// Table is one rendered result table.
type Table struct {
	Rows int
}
