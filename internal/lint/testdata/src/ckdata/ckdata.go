// Package ckdata exercises the canonicalkey analyzer: types passed
// to the sink with canonical shapes stay silent, while interface,
// func, chan and unsortable-map fields are flagged at the call site.
package ckdata

import "zng/internal/lint/testdata/src/cksink"

// Good is fully canonical: scalars, slices, and a string-keyed map,
// which encoding/json marshals in sorted key order. The unexported
// channel is invisible to JSON and must not be flagged.
type Good struct {
	Name  string
	Score float64
	Tags  []string
	Extra map[string]float64
	inner chan int
}

// BadIface carries a field whose dynamic type the schema cannot pin.
type BadIface struct {
	Payload any
}

// BadMap's key type does not marshal in sorted order.
type BadMap struct {
	Weights map[float64]string
}

// BadChan is not encodable at all.
type BadChan struct {
	C chan int
}

// BadFunc is not encodable at all.
type BadFunc struct {
	F func() int
}

// Nested hides the offending field one level down.
type Nested struct {
	G Good
	B BadIface
}

// Keys drives every case through the sink.
func Keys() []string {
	return []string{
		cksink.Key(Good{}),
		cksink.Key(BadIface{}), // want "field Payload: an interface"
		cksink.Key(BadMap{}),   // want "does not marshal in sorted order"
		cksink.Key(BadChan{}),  // want "a channel cannot be encoded"
		cksink.Key(BadFunc{}),  // want "a func cannot be encoded"
		cksink.Key(Nested{}),   // want "field B.Payload"
	}
}

// use keeps the unexported field referenced.
func use(g Good) chan int { return g.inner }

var _ = use
