// Package detrand stands in for internal/rng: the test configuration
// lists it in RandAllowed, so its math/rand import must stay silent.
package detrand

import "math/rand"

// Draw wraps the generator — the one job this package is allowed to
// have.
func Draw() int { return rand.Int() }
