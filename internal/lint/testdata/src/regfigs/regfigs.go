// Package regfigs exercises the figure half of the registry
// analyzer: the driver/registry bijection, duplicate ids, and
// non-constant Driver fields.
package regfigs

import "zng/internal/lint/testdata/src/regstats"

// Figure is one registry entry.
type Figure struct {
	ID     string
	Driver string
}

// dynDriver makes one entry's Driver field non-constant.
var dynDriver = "Fig12"

// Fig10 is registered exactly once — the clean case.
func Fig10() *regstats.Table { return &regstats.Table{} }

// Fig11 is registered twice.
func Fig11() *regstats.Table { return &regstats.Table{} }

// Orphan never enters the registry.
func Orphan() *regstats.Table { return &regstats.Table{} } // want "has no Registry"

// helperTable is unexported, so it is not a driver.
func helperTable() *regstats.Table { return &regstats.Table{} }

// Registry declares the entries the analyzer cross-checks.
func Registry() []Figure {
	_ = helperTable()
	return []Figure{
		{ID: "fig10", Driver: "Fig10"},
		{ID: "fig11", Driver: "Fig11"},
		{ID: "fig10", Driver: "Ghost"},   // want "names driver Ghost" "registered 2 times"
		{ID: "fig11b", Driver: "Fig11"},  // want "registered 2 times"
		{ID: "fig12", Driver: dynDriver}, // want "not a constant string"
	}
}
