// Package cksink is the testdata stand-in for a content-address
// sink like internal/cellkey.Key: whatever reaches Key becomes
// canonical bytes.
package cksink

import (
	"encoding/json"
	"fmt"
)

// Key hashes v's canonical JSON encoding.
func Key(v any) string {
	b, _ := json.Marshal(v)
	return fmt.Sprintf("%x", b)
}
