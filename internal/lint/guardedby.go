package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GuardedByConfig scopes the guardedby analyzer.
type GuardedByConfig struct {
	// Packages lists import-path suffixes to check; empty checks
	// every package (annotations are opt-in per field, so breadth is
	// cheap).
	Packages []string
}

// DefaultGuardedBy returns the guardedby analyzer over the whole
// module: any struct field whose doc comment declares `guarded by mu`
// is checked everywhere the annotation's package compiles.
func DefaultGuardedBy() *Analyzer {
	return NewGuardedBy(GuardedByConfig{})
}

// guardPattern extracts the guard name from a field comment:
// `guarded by mu` names a sibling mutex field, `guarded by
// Dispatcher.mu` names a mutex field of another struct type in the
// same package (for satellite structs whose state a parent's lock
// protects).
var guardPattern = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)`)

// callerHoldsPattern marks a function as running with the lock
// already held, for the cross-function convention the `...Locked`
// name suffix also expresses.
var callerHoldsPattern = regexp.MustCompile(`caller (?:must )?holds? ([A-Za-z_][A-Za-z0-9_]*)`)

// guardSpec is one annotated field: accesses to (owner, field) require
// (guardOwner, guardField) to be locked.
type guardSpec struct {
	owner      *types.Named // struct declaring the annotated field
	fieldName  string
	guardOwner *types.Named // struct declaring the mutex (== owner for sibling guards)
	guardField string
	rw         bool // guard is a sync.RWMutex
}

// NewGuardedBy builds the guardedby analyzer. Struct fields whose doc
// or line comment says `guarded by <mutex>` are checked against an
// intraprocedural lock tracker: within every function of the package,
// the analyzer follows Lock/Unlock/RLock/RUnlock calls (including
// deferred unlocks) on sync.Mutex/sync.RWMutex values statement by
// statement, and reports any read or write of an annotated field at a
// point where its mutex is not held. Methods named `...Locked`, and
// functions whose doc comment says `caller holds <mutex>`, are
// assumed to run with that mutex held. Writes under an RLock alone
// are reported: a read lock licenses concurrent readers, not a
// mutation under them.
func NewGuardedBy(cfg GuardedByConfig) *Analyzer {
	a := &Analyzer{
		Name: "guardedby",
		Doc: "check that struct fields annotated `guarded by mu` are only " +
			"touched while that mutex is held",
	}
	a.Run = func(pass *Pass) error {
		if len(cfg.Packages) > 0 && !pathMatches(pass.Pkg.Path(), cfg.Packages) {
			return nil
		}
		specs := collectGuardSpecs(pass)
		if len(specs) == 0 {
			return nil
		}
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w := &lockWalker{pass: pass, specs: specs, fresh: map[types.Object]bool{}}
				held := map[lockID]lockState{}
				w.assumeCallerHeld(fd, held)
				w.stmts(fd.Body.List, held)
			}
		}
		return nil
	}
	return a
}

// collectGuardSpecs parses every struct type declaration for
// `guarded by` field annotations, resolving cross-type guards like
// `Dispatcher.mu` within the package.
func collectGuardSpecs(pass *Pass) []guardSpec {
	var specs []guardSpec
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Defs[ts.Name]
			if !ok {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := fieldGuardName(field)
				if guard == "" {
					continue
				}
				spec := guardSpec{owner: named, guardOwner: named, guardField: guard}
				if dot := strings.IndexByte(guard, '.'); dot >= 0 {
					ownerObj := pass.Pkg.Scope().Lookup(guard[:dot])
					ownerNamed, ok := ownerObj.(*types.TypeName)
					if !ok {
						pass.Reportf(field.Pos(),
							"guarded-by annotation names unknown type %q", guard[:dot])
						continue
					}
					gn, ok := ownerNamed.Type().(*types.Named)
					if !ok {
						continue
					}
					spec.guardOwner = gn
					spec.guardField = guard[dot+1:]
				}
				mutexField := structField(spec.guardOwner, spec.guardField)
				if mutexField == nil {
					pass.Reportf(field.Pos(),
						"guarded-by annotation names %q, which is not a field of %s",
						spec.guardField, spec.guardOwner.Obj().Name())
					continue
				}
				rw, ok := mutexKind(mutexField.Type())
				if !ok {
					pass.Reportf(field.Pos(),
						"guarded-by annotation names %q, which is not a sync.Mutex or sync.RWMutex",
						spec.guardField)
					continue
				}
				spec.rw = rw
				for _, name := range field.Names {
					s := spec
					s.fieldName = name.Name
					specs = append(specs, s)
				}
			}
			return true
		})
	}
	return specs
}

// fieldGuardName extracts the guard name from a struct field's doc or
// trailing line comment.
func fieldGuardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardPattern.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// structField resolves a field by name on a named struct type.
func structField(named *types.Named, name string) *types.Var {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i)
		}
	}
	return nil
}

// mutexKind reports whether t is sync.Mutex (rw=false) or
// sync.RWMutex (rw=true).
func mutexKind(t types.Type) (rw, ok bool) {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// lockID names one specific mutex value: the guard-owning type plus
// the source form of the base expression it was locked through, so
// `s.mu` and `other.mu` are distinct locks of the same type.
type lockID struct {
	owner *types.Named
	field string
	base  string
}

// lockState distinguishes a write lock from a read lock.
type lockState int

const (
	lockNone lockState = iota
	lockRead
	lockWrite
)

// lockWalker tracks held mutexes through one function body,
// statement by statement.
type lockWalker struct {
	pass  *Pass
	specs []guardSpec
	// fresh holds local variables initialized from a composite
	// literal in this same function — a value under construction that
	// no other goroutine can see yet, so its fields need no lock (the
	// constructor exemption).
	fresh map[types.Object]bool
}

// assumeCallerHeld seeds the held set for functions the package's
// conventions declare as running under the lock: methods named
// `...Locked`, and functions whose doc comment says `caller holds
// <mutex>`. The receiver's (or the doc-named) mutex is assumed
// write-held on every base expression of the matching type.
func (w *lockWalker) assumeCallerHeld(fd *ast.FuncDecl, held map[lockID]lockState) {
	var guards []string
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		guards = append(guards, "")
	}
	if fd.Doc != nil {
		if m := callerHoldsPattern.FindStringSubmatch(fd.Doc.Text()); m != nil {
			guards = append(guards, m[1])
		}
	}
	if len(guards) == 0 {
		return
	}
	for _, spec := range w.specs {
		for _, g := range guards {
			if g == "" || g == spec.guardField {
				// The wildcard base "*" satisfies any base expression of
				// the guard-owning type.
				held[lockID{owner: spec.guardOwner, field: spec.guardField, base: "*"}] = lockWrite
			}
		}
	}
}

// stmts walks a statement list in order, threading lock-state
// mutations (a Lock call affects everything after it in the list).
func (w *lockWalker) stmts(list []ast.Stmt, held map[lockID]lockState) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

// stmt updates held for one statement and checks the guarded accesses
// inside it. Branch bodies are analyzed with a copy of the current
// state; the state after a branching statement is the state before it
// (a lock acquired inside only one branch is not assumed afterwards,
// and a branch that unlocks then returns does not poison the fall
// -through path).
func (w *lockWalker) stmt(s ast.Stmt, held map[lockID]lockState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if w.lockCall(s.X, held, false) {
			return
		}
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock releases at return, not here: the lock
		// stays held for the remainder of the walk. A deferred
		// function literal runs after return with no lock assumption.
		if isLockMethod(w.pass, s.Call) != "" {
			return
		}
		w.checkExpr(s.Call, held)
	case *ast.GoStmt:
		// The goroutine starts with no locks held.
		w.checkExpr(s.Call, held)
	case *ast.AssignStmt:
		w.markFresh(s)
		for _, e := range s.Rhs {
			w.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.checkWrite(e, held)
		}
	case *ast.IncDecStmt:
		w.checkWrite(s.X, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, held)
		}
	case *ast.SendStmt:
		w.checkExpr(s.Chan, held)
		w.checkExpr(s.Value, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, held)
		}
		inner := copyHeld(held)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
		w.stmts(s.Body.List, inner)
	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.checkExpr(e, held)
				}
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := copyHeld(held)
				if cc.Comm != nil {
					w.stmt(cc.Comm, inner)
				}
				w.stmts(cc.Body, inner)
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, copyHeld(held))
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		w.checkExpr(nil, held) // no-op; declarations carry values below
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, held)
					}
				}
			}
		}
	}
}

// lockCall recognizes mu.Lock()/Unlock()/RLock()/RUnlock() on a
// tracked mutex and updates held. deferred unlocks are handled by the
// caller (state unchanged).
func (w *lockWalker) lockCall(e ast.Expr, held map[lockID]lockState, deferred bool) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	method := isLockMethod(w.pass, call)
	if method == "" {
		return false
	}
	sel := call.Fun.(*ast.SelectorExpr)
	mutex, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	var id lockID
	if ok {
		// x.mu.Lock(): resolve the owning struct type of x.
		ownerType := baseNamed(w.pass.TypesInfo.TypeOf(mutex.X))
		if ownerType == nil {
			return true
		}
		id = lockID{owner: ownerType, field: mutex.Sel.Name, base: exprString(mutex.X)}
	} else if ident, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent {
		// A bare local/global mutex: track by name with no owner.
		id = lockID{field: ident.Name, base: ident.Name}
	} else {
		return true
	}
	switch method {
	case "Lock":
		held[id] = lockWrite
	case "RLock":
		if held[id] < lockRead {
			held[id] = lockRead
		}
	case "Unlock", "RUnlock":
		delete(held, id)
	}
	return true
}

// isLockMethod reports which mutex method (Lock, Unlock, RLock,
// RUnlock) a call invokes on a sync.Mutex/RWMutex value, or "".
func isLockMethod(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return ""
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := mutexKind(t); !ok {
		return ""
	}
	return sel.Sel.Name
}

// checkExpr reports guarded-field reads inside e that lack their
// mutex, and descends into function literals with an empty held set
// (they may run on another goroutine).
func (w *lockWalker) checkExpr(e ast.Expr, held map[lockID]lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			fresh := map[lockID]lockState{}
			w.stmts(n.Body.List, fresh)
			return false
		case *ast.CallExpr:
			// A nested lock call inside an expression (rare) still
			// counts.
			if w.lockCall(n, held, false) {
				return false
			}
		case *ast.SelectorExpr:
			w.checkAccess(n, held, false)
		}
		return true
	})
}

// checkWrite checks one assignment destination, requiring a write
// lock, then checks its subexpressions as reads.
func (w *lockWalker) checkWrite(e ast.Expr, held map[lockID]lockState) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		w.checkAccess(e, held, true)
		w.checkExpr(e.X, held)
	case *ast.IndexExpr:
		w.checkWrite(e.X, held)
		w.checkExpr(e.Index, held)
	case *ast.StarExpr:
		w.checkExpr(e.X, held)
	default:
		w.checkExpr(e, held)
	}
}

// markFresh records variables bound to a brand-new composite literal
// (`s := &Service{...}`), which are exempt from guard checking until
// the function ends — they have not escaped to another goroutine.
func (w *lockWalker) markFresh(assign *ast.AssignStmt) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, rhs := range assign.Rhs {
		e := ast.Unparen(rhs)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
			e = ast.Unparen(u.X)
		}
		if _, ok := e.(*ast.CompositeLit); !ok {
			continue
		}
		if id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
				w.fresh[obj] = true
			}
		}
	}
}

// checkAccess reports sel if it reads/writes an annotated field
// without the required lock state.
func (w *lockWalker) checkAccess(sel *ast.SelectorExpr, held map[lockID]lockState, write bool) {
	owner := baseNamed(w.pass.TypesInfo.TypeOf(sel.X))
	if owner == nil {
		return
	}
	if base := exprObject(w.pass, sel.X); base != nil && w.fresh[base] {
		return
	}
	for _, spec := range w.specs {
		if spec.owner.Obj() != owner.Obj() || spec.fieldName != sel.Sel.Name {
			continue
		}
		state := w.heldState(spec, sel, held)
		switch {
		case state == lockNone:
			w.pass.Reportf(sel.Pos(),
				"%s.%s is guarded by %s, which is not held here",
				owner.Obj().Name(), sel.Sel.Name, spec.guardField)
		case write && state == lockRead:
			w.pass.Reportf(sel.Pos(),
				"%s.%s is written holding only the read lock of %s",
				owner.Obj().Name(), sel.Sel.Name, spec.guardField)
		}
		return
	}
}

// heldState resolves the lock state protecting one access. Sibling
// guards require the lock on the same base expression (`s.mu` for
// `s.queue`); cross-type guards accept the lock through any base of
// the guard-owning type; the wildcard base covers `...Locked`
// functions.
func (w *lockWalker) heldState(spec guardSpec, sel *ast.SelectorExpr, held map[lockID]lockState) lockState {
	sameOwner := spec.guardOwner.Obj() == spec.owner.Obj()
	base := exprString(sel.X)
	best := lockNone
	for id, state := range held {
		if id.owner == nil || id.owner.Obj() != spec.guardOwner.Obj() {
			continue
		}
		if id.field != spec.guardField {
			continue
		}
		if sameOwner && id.base != base && id.base != "*" {
			continue
		}
		if state > best {
			best = state
		}
	}
	return best
}

// baseNamed strips pointers and returns the named struct type of t.
func baseNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// copyHeld clones the lock-state map for a branch body.
func copyHeld(held map[lockID]lockState) map[lockID]lockState {
	out := make(map[lockID]lockState, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
