package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked package — the unit
// an Analyzer runs over.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the patterns (e.g. "./...") in dir with
// `go list -export -deps`, then parses and type-checks every matched
// non-dependency package from source, resolving imports through the
// compiler's export data so the loader needs no network and sees the
// exact dependency graph the build uses. Test files are not loaded —
// the invariants the analyzers enforce are properties of shipped
// code, mirroring what `go vet` checks by default.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("lint: no export data for %q", path)
			}
			return os.Open(f)
		}),
	}
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		info := newTypesInfo()
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   t.ImportPath,
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// newTypesInfo allocates the full set of type-checker result maps the
// analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
