package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// DeterminismConfig scopes the determinism analyzer.
type DeterminismConfig struct {
	// Packages lists the import-path suffixes the analyzer applies to
	// — the deterministic core whose outputs must be byte-identical
	// across runs and machines. Packages outside the list (CLIs, the
	// serving layer, the remote dispatcher) may use wall clocks
	// freely.
	Packages []string
	// RandAllowed lists import-path suffixes that may import
	// math/rand anyway — the one package whose whole job is wrapping
	// a generator.
	RandAllowed []string
	// TimeSinks lists import-path suffixes of sanctioned
	// observability packages (tracing, latency histograms) that read
	// the wall clock by design. A deterministic-core package importing
	// one is flagged: measurement belongs in the serving layer around
	// the core, never inside it.
	TimeSinks []string
}

// DefaultDeterminism returns the determinism analyzer scoped to this
// repository's deterministic core: every package on the path from a
// workload trace to a rendered table or a content address. A cell's
// result — and therefore its store key, its coalescing identity and
// the bytes in docs/EXPERIMENTS.md — must be a pure function of the
// cell's inputs.
func DefaultDeterminism() *Analyzer {
	return NewDeterminism(DeterminismConfig{
		Packages: []string{
			"internal/sim", "internal/workload", "internal/rng",
			"internal/flash", "internal/ftl", "internal/ssd",
			"internal/dram", "internal/gpu", "internal/mem",
			"internal/mmu", "internal/cache", "internal/prefetch",
			"internal/regcache", "internal/noc", "internal/config",
			"internal/platform", "internal/stats", "internal/report",
			"internal/cellkey", "internal/store", "internal/experiments",
		},
		RandAllowed: []string{"internal/rng"},
		TimeSinks:   []string{"internal/obs", "internal/latency"},
	})
}

// NewDeterminism builds the determinism analyzer: inside the
// configured packages it flags wall-clock reads (time.Now), math/rand
// imports (any seeding or draw outside the repo's deterministic rng
// wrapper, including the argless global rand.* helpers), imports of
// the configured observability time sinks (internal/obs,
// internal/latency — sanctioned wall-clock users that must stay
// outside the core), and
// map-iteration whose body produces order-sensitive output — appends
// that are never sorted afterwards, float accumulation (float
// addition does not associate, so sum order changes result bits), or
// writes to an encoder/writer/table. The one blessed map-range idiom
// stays clean: collecting keys into a slice that a later statement of
// the same block sorts.
func NewDeterminism(cfg DeterminismConfig) *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc: "flag wall-clock reads, math/rand and order-sensitive map iteration " +
			"in the deterministic simulation/reporting core",
	}
	a.Run = func(pass *Pass) error {
		if !pathMatches(pass.Pkg.Path(), cfg.Packages) {
			return nil
		}
		randOK := pathMatches(pass.Pkg.Path(), cfg.RandAllowed)
		for _, file := range pass.Files {
			for _, imp := range file.Imports {
				path, _ := strconv.Unquote(imp.Path.Value)
				if (path == "math/rand" || path == "math/rand/v2") && !randOK {
					pass.Reportf(imp.Pos(),
						"import of %s in deterministic package %s: draw randomness from internal/rng so traces stay seed-deterministic",
						path, pass.Pkg.Path())
				}
				if pathMatches(path, cfg.TimeSinks) {
					pass.Reportf(imp.Pos(),
						"import of time sink %s in deterministic package %s: tracing and latency measurement wrap the core from the serving layer, they do not live inside it",
						path, pass.Pkg.Path())
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if calleeIs(pass, n, "time", "Now") {
						pass.Reportf(n.Pos(),
							"time.Now in deterministic package %s: simulation output must not depend on the wall clock",
							pass.Pkg.Path())
					}
				case *ast.BlockStmt:
					checkMapRanges(pass, n.List)
				case *ast.CommClause:
					checkMapRanges(pass, n.Body)
				case *ast.CaseClause:
					checkMapRanges(pass, n.Body)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// checkMapRanges scans one statement list for range-over-map loops
// with order-sensitive bodies. It sees the loop's trailing context,
// so the collect-then-sort idiom can be recognized as clean.
func checkMapRanges(pass *Pass, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok || !isMapType(pass.TypesInfo.TypeOf(rng.X)) {
			continue
		}
		sens := findOrderSensitive(pass, rng)
		if len(sens.other) > 0 {
			pass.Reportf(sens.other[0].Pos(),
				"order-sensitive operation inside range over map %s: map iteration order is random, so output built here is non-deterministic (sort the keys first)",
				exprString(rng.X))
			continue
		}
		for obj := range sens.appends {
			if !sortedLater(pass, stmts[i+1:], obj) {
				pass.Reportf(rng.Pos(),
					"range over map %s appends to %s, which is never sorted afterwards: map iteration order is random, so the slice's element order is non-deterministic",
					exprString(rng.X), obj.Name())
			}
		}
	}
}

// sensitiveOps classifies the order-sensitive operations of one map
// range body: appends to outer slices (forgivable if sorted later)
// and everything else (float accumulation, writer/encoder calls).
type sensitiveOps struct {
	appends map[types.Object]bool
	other   []ast.Node
}

// emissionPrefixes are callee-name prefixes that commit bytes or rows
// in call order: stream writers, printers, encoders and the table
// type's row appender.
var emissionPrefixes = []string{"Write", "Print", "Fprint", "Encode", "AddRow"}

// findOrderSensitive walks one range body collecting operations whose
// effect depends on iteration order. Order-insensitive bodies —
// counting, integer accumulation, min/max scans, building another map
// — produce nothing.
func findOrderSensitive(pass *Pass, rng *ast.RangeStmt) sensitiveOps {
	sens := sensitiveOps{appends: map[types.Object]bool{}}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// v = append(v, ...) to a slice declared outside the loop.
			if call, ok := appendCall(pass, n); ok {
				if obj := declaredOutside(pass, call, rng); obj != nil {
					sens.appends[obj] = true
				} else {
					// Appending to something we cannot resolve to an
					// outer variable (a map element, a field): treat as
					// unforgivable rather than silently passing it.
					if target := appendTargetOutside(pass, n, rng); target != nil {
						sens.other = append(sens.other, n)
					}
				}
				return true
			}
			// Float accumulation: x op= v where x lives outside the
			// loop and has floating type. Integer/bool accumulation is
			// order-independent and stays clean.
			if n.Tok.IsOperator() && n.Tok.String() != "=" && n.Tok.String() != ":=" {
				for _, lhs := range n.Lhs {
					if obj := exprObject(pass, lhs); obj != nil && definedOutside(obj, rng) && isFloat(pass.TypesInfo.TypeOf(lhs)) {
						sens.other = append(sens.other, n)
					}
				}
			}
		case *ast.CallExpr:
			if name := calleeName(n); name != "" {
				for _, p := range emissionPrefixes {
					if strings.HasPrefix(name, p) {
						sens.other = append(sens.other, n)
						return true
					}
				}
			}
		}
		return true
	})
	return sens
}

// appendCall reports whether assign is `x = append(x, ...)` (or :=)
// and returns the call.
func appendCall(pass *Pass, assign *ast.AssignStmt) (*ast.CallExpr, bool) {
	if len(assign.Rhs) != 1 {
		return nil, false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil, false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	return call, true
}

// declaredOutside resolves the append's destination to a variable
// declared outside the range statement, or nil.
func declaredOutside(pass *Pass, call *ast.CallExpr, rng *ast.RangeStmt) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	obj := exprObject(pass, call.Args[0])
	if obj == nil || !definedOutside(obj, rng) {
		return nil
	}
	return obj
}

// appendTargetOutside reports a non-identifier append destination
// (field, element) whose base is outside the loop.
func appendTargetOutside(pass *Pass, assign *ast.AssignStmt, rng *ast.RangeStmt) ast.Expr {
	for _, lhs := range assign.Lhs {
		switch lhs.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
			return lhs
		}
	}
	return nil
}

// sortedLater reports whether any statement after the loop passes obj
// to a sort function (sort.Strings, sort.Slice, slices.Sort, ...).
func sortedLater(pass *Pass, rest []ast.Stmt, obj types.Object) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pkgName, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName); !ok ||
				(pkgName.Imported().Path() != "sort" && pkgName.Imported().Path() != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if exprObject(pass, arg) == obj {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// --- small shared helpers ---

// pathMatches reports whether pkgPath equals or ends with any of the
// configured suffixes.
func pathMatches(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// calleeIs reports whether call is pkg.Fn for the package with the
// given import path (matched on the path's last element, resolved
// through the type checker so local renames still match).
func calleeIs(pass *Pass, call *ast.CallExpr, pkgPath, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == pkgPath
}

// calleeName extracts the called function or method name, if any.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// exprObject resolves an identifier expression to its object.
func exprObject(pass *Pass, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[id]
	}
	return nil
}

// definedOutside reports whether obj's declaration precedes the range
// statement (i.e. the variable outlives one iteration).
func definedOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exprString renders a short source form of e for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	}
	return "expression"
}
