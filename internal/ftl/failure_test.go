package ftl

import (
	"testing"

	"zng/internal/config"
	"zng/internal/flash"
	"zng/internal/sim"
)

// TestSplitSurvivesWornLogBlock drives a log group until its block
// exhausts its P/E budget mid-merge; the FTL must retire it, allocate
// a replacement, and keep accepting writes.
func TestSplitSurvivesWornLogBlock(t *testing.T) {
	eng := sim.NewEngine()
	fc := config.Default().Flash
	fc.Channels = 1
	fc.DiesPerPkg = 1
	fc.PlanesPerDie = 1
	fc.BlocksPerPl = 64
	fc.PagesPerBlock = 4
	fc.PECycles = 3 // wear out quickly
	fc.ReadLat, fc.ProgramLat, fc.EraseLat = 10, 50, 100
	cfg := config.Default().FTL
	bb := flash.New(eng, fc)
	s := NewSplit(eng, bb, cfg)

	done := 0
	const writes = 60 // ~15 merges against a 3-erase budget
	for i := 0; i < writes; i++ {
		s.WritePage(0x1000, func() { done++ })
		eng.Run()
	}
	if done != writes {
		t.Fatalf("done = %d, want %d: worn log block wedged the FTL", done, writes)
	}
	if s.Merges.Value() < 10 {
		t.Errorf("merges = %d, want many", s.Merges.Value())
	}
	// The newest version must still resolve.
	loc := s.ReadLoc(0x1000)
	if loc.Plane != 0 {
		t.Errorf("bad plane %d", loc.Plane)
	}
}

// TestSplitManyGroupsConcurrentMerges exercises merges on several
// groups at once (the helper thread serializes initiation, not the
// flash work).
func TestSplitManyGroupsConcurrentMerges(t *testing.T) {
	eng := sim.NewEngine()
	fc := config.Default().Flash
	fc.Channels = 2
	fc.DiesPerPkg = 1
	fc.PlanesPerDie = 2
	fc.BlocksPerPl = 32
	fc.PagesPerBlock = 4
	fc.ReadLat, fc.ProgramLat, fc.EraseLat = 10, 50, 100
	bb := flash.New(eng, fc)
	s := NewSplit(eng, bb, config.Default().FTL)

	done := 0
	const perPlane = 20
	for i := 0; i < perPlane; i++ {
		for plane := 0; plane < 4; plane++ {
			s.WritePage(uint64(plane)*4096, func() { done++ })
		}
	}
	eng.Run()
	if done != perPlane*4 {
		t.Fatalf("done = %d, want %d", done, perPlane*4)
	}
	if s.Merges.Value() < 4 {
		t.Errorf("merges = %d, want at least one per plane group", s.Merges.Value())
	}
}
