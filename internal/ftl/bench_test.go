package ftl

import (
	"testing"

	"zng/internal/config"
	"zng/internal/flash"
	"zng/internal/sim"
)

// benchPages is the translated working set: big enough that the
// mapping state dwarfs any cache, small enough that neither FTL
// triggers GC during the warm-up writes.
const benchPages = 1 << 16

// benchAddrs lays the working set out the way workload apps do: two
// address spaces, each with a sequential region and a strided region,
// so the page-table population has the same top-level clustering the
// simulator produces.
func benchAddrs(cfg config.Flash) []uint64 {
	addrs := make([]uint64, 0, benchPages)
	pb := uint64(cfg.PageBytes)
	for app := uint64(0); app < 2; app++ {
		base := (app + 1) << 40
		for i := uint64(0); i < benchPages/4; i++ {
			addrs = append(addrs, base|i*pb)         // sequential region
			addrs = append(addrs, base|1<<36|i*3*pb) // strided "hot" region
		}
	}
	return addrs
}

// BenchmarkFTLTranslate measures the per-access translation cost of
// both FTLs on a pre-touched working set — the hot path every
// simulated sector access walks.
func BenchmarkFTLTranslate(b *testing.B) {
	fcfg := config.Default().Flash
	addrs := benchAddrs(fcfg)

	b.Run("pagemapped", func(b *testing.B) {
		eng := sim.NewEngine()
		p := NewPageMapped(eng, flash.New(eng, fcfg), config.Default().FTL)
		for _, va := range addrs {
			p.Lookup(va)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var sink Loc
		for i := 0; i < b.N; i++ {
			sink = p.Lookup(addrs[i%len(addrs)])
		}
		_ = sink
	})

	b.Run("split", func(b *testing.B) {
		eng := sim.NewEngine()
		s := NewSplit(eng, flash.New(eng, fcfg), config.Default().FTL)
		for _, va := range addrs {
			s.ReadLoc(va)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var sink Loc
		for i := 0; i < b.N; i++ {
			sink = s.ReadLoc(addrs[i%len(addrs)])
		}
		_ = sink
	})

	// The write path exercises the owner/reverse mapping and the log
	// decoders, not just the forward table.
	b.Run("split-write", func(b *testing.B) {
		eng := sim.NewEngine()
		s := NewSplit(eng, flash.New(eng, fcfg), config.Default().FTL)
		for _, va := range addrs {
			s.ReadLoc(va)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.WritePage(addrs[i%len(addrs)], nil)
			eng.Run()
		}
	})
}
