package ftl

import (
	"testing"
	"testing/quick"

	"zng/internal/config"
	"zng/internal/flash"
	"zng/internal/sim"
)

func smallBB(eng *sim.Engine) (*flash.Backbone, config.FTL) {
	fc := config.Default().Flash
	fc.Channels = 2
	fc.DiesPerPkg = 2
	fc.PlanesPerDie = 2
	fc.BlocksPerPl = 32
	fc.PagesPerBlock = 8
	// Shrink latencies so tests run fast while keeping ratios.
	fc.ReadLat = 30
	fc.ProgramLat = 1000
	fc.EraseLat = 3000
	cfg := config.Default().FTL
	cfg.DataBlocksPerLog = 2
	return flash.New(eng, fc), cfg
}

func TestSplitReadLocStableAndPreloaded(t *testing.T) {
	eng := sim.NewEngine()
	bb, cfg := smallBB(eng)
	s := NewSplit(eng, bb, cfg)
	l1 := s.ReadLoc(0x1000)
	l2 := s.ReadLoc(0x1000)
	if l1 != l2 {
		t.Fatalf("ReadLoc not stable: %+v vs %+v", l1, l2)
	}
	if l1.FromLog {
		t.Error("never-written page must come from the data block")
	}
	// The data block must be preloaded (fully valid).
	if got := bb.Plane(l1.Plane).Block(l1.Block).ValidCount(); got != bb.Cfg.PagesPerBlock {
		t.Errorf("preloaded valid count = %d", got)
	}
}

func TestSplitVBlockStriping(t *testing.T) {
	eng := sim.NewEngine()
	bb, cfg := smallBB(eng)
	s := NewSplit(eng, bb, cfg)
	// Superpage layout: consecutive logical pages stripe across planes.
	p0 := s.ReadLoc(0).Plane
	p1 := s.ReadLoc(uint64(bb.Cfg.PageBytes)).Plane
	if p0 == p1 {
		t.Error("consecutive pages must stripe across planes")
	}
	// Pages planes-apart share a plane and (within a block span) a block.
	l0 := s.ReadLoc(0)
	l8 := s.ReadLoc(uint64(bb.Planes()) * uint64(bb.Cfg.PageBytes))
	if l0.Plane != l8.Plane {
		t.Error("stride-by-planes pages must share a plane")
	}
	if l0.Block != l8.Block || l8.Page != l0.Page+1 {
		t.Errorf("in-plane pages should pack a block: %+v then %+v", l0, l8)
	}
}

func TestSplitWriteRedirectsToLog(t *testing.T) {
	eng := sim.NewEngine()
	bb, cfg := smallBB(eng)
	s := NewSplit(eng, bb, cfg)
	va := uint64(0x3000)
	before := s.ReadLoc(va)
	done := false
	s.WritePage(va, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("write did not complete")
	}
	after := s.ReadLoc(va)
	if !after.FromLog {
		t.Fatalf("read after write must hit the log: %+v", after)
	}
	if after.Plane != before.Plane {
		t.Errorf("log block must live in the vblock's home plane: %d vs %d", after.Plane, before.Plane)
	}
	// Old data page is now invalid.
	if bb.Plane(before.Plane).Block(before.Block).Valid(before.Page) {
		t.Error("superseded data page still marked valid")
	}
	if s.LogPrograms.Value() != 1 {
		t.Errorf("log programs = %d", s.LogPrograms.Value())
	}
}

func TestSplitRewriteSupersedesLogSlot(t *testing.T) {
	eng := sim.NewEngine()
	bb, cfg := smallBB(eng)
	s := NewSplit(eng, bb, cfg)
	va := uint64(0x5000)
	s.WritePage(va, nil)
	eng.Run()
	first := s.ReadLoc(va)
	s.WritePage(va, nil)
	eng.Run()
	second := s.ReadLoc(va)
	if first == second {
		t.Error("rewrite must move to a new log slot")
	}
	if !second.FromLog || second.Page <= first.Page {
		t.Errorf("in-order log slots: first %d then %d", first.Page, second.Page)
	}
	if bb.Plane(first.Plane).Block(first.Block).Valid(first.Page) {
		t.Error("old log slot should be invalid")
	}
}

func TestSplitMergeOnFullLog(t *testing.T) {
	eng := sim.NewEngine()
	bb, cfg := smallBB(eng)
	s := NewSplit(eng, bb, cfg)
	va := uint64(0x7000)
	// PagesPerBlock = 8: nine writes force a merge.
	done := 0
	for i := 0; i < 9; i++ {
		s.WritePage(va, func() { done++ })
		eng.Run()
	}
	if done != 9 {
		t.Fatalf("done = %d, want 9 (stalled write must eventually finish)", done)
	}
	if s.Merges.Value() != 1 {
		t.Errorf("merges = %d, want 1", s.Merges.Value())
	}
	if s.StalledWrites.Value() == 0 {
		t.Error("the merge-triggering write should count as stalled")
	}
	// After the merge the newest version is still reachable.
	loc := s.ReadLoc(va)
	if !loc.FromLog {
		t.Errorf("post-merge write should sit in the fresh log: %+v", loc)
	}
	if s.MergePrograms.Value() == 0 || s.MergeReads.Value() == 0 {
		t.Error("merge must read and program pages")
	}
}

func TestSplitMergeUpdatesDBMT(t *testing.T) {
	eng := sim.NewEngine()
	bb, cfg := smallBB(eng)
	s := NewSplit(eng, bb, cfg)
	va := uint64(0x9000)
	// An untouched page of the same vblock sits planes*pageBytes away.
	sibling := va + uint64(bb.Planes())*uint64(bb.Cfg.PageBytes)
	oldData := s.ReadLoc(sibling)
	for i := 0; i <= bb.Cfg.PagesPerBlock; i++ {
		s.WritePage(va, nil)
		eng.Run()
	}
	newData := s.ReadLoc(sibling)
	if newData.Block == oldData.Block {
		t.Error("merge must move the data block to a fresh wear-levelled block")
	}
	if newData.FromLog {
		t.Error("untouched page must read from the merged data block")
	}
}

// Property: after an arbitrary write sequence, every page reads from
// either its data block or the log, and the newest write wins (the
// location changes monotonically in log-slot order).
func TestSplitMappingIntegrityProperty(t *testing.T) {
	f := func(writes []uint8) bool {
		eng := sim.NewEngine()
		bb, cfg := smallBB(eng)
		s := NewSplit(eng, bb, cfg)
		last := map[uint64]int{} // va -> write sequence
		for i, w := range writes {
			va := uint64(w%16) * 0x1000
			s.WritePage(va, nil)
			eng.Run()
			last[va] = i
		}
		// Every written va resolves; unwritten vas resolve to data blocks.
		for va := uint64(0); va < 16*0x1000; va += 0x1000 {
			loc := s.ReadLoc(va)
			if _, written := last[va]; !written && loc.FromLog {
				return false
			}
			if loc.Plane < 0 || loc.Plane >= bb.Planes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSplitWearLeveling(t *testing.T) {
	eng := sim.NewEngine()
	bb, cfg := smallBB(eng)
	s := NewSplit(eng, bb, cfg)
	// Hammer one page with enough writes for many merges.
	for i := 0; i < 100; i++ {
		s.WritePage(0x100, nil)
		eng.Run()
	}
	if s.Merges.Value() < 5 {
		t.Fatalf("merges = %d, want several", s.Merges.Value())
	}
	// Wear-levelled allocation keeps the max erase count near the
	// number of merges divided by available blocks, far below the
	// total erase count.
	if mx := s.MaxEraseCount(); mx > int(s.Merges.Value()) {
		t.Errorf("max erase count %d exceeds merge count %d: wear leveling broken", mx, s.Merges.Value())
	}
}

func TestPageMappedLookupStableStriped(t *testing.T) {
	eng := sim.NewEngine()
	bb, cfg := smallBB(eng)
	p := NewPageMapped(eng, bb, cfg)
	l1 := p.Lookup(0x1000)
	l2 := p.Lookup(0x1000)
	if l1 != l2 {
		t.Fatal("Lookup not stable")
	}
	if p.Lookup(0x2000).Plane == l1.Plane {
		t.Error("consecutive pages must stripe across planes")
	}
}

func TestPageMappedWriteInvalidatesOld(t *testing.T) {
	eng := sim.NewEngine()
	bb, cfg := smallBB(eng)
	p := NewPageMapped(eng, bb, cfg)
	old := p.Lookup(0x4000)
	done := false
	p.WritePage(0x4000, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("write incomplete")
	}
	now := p.Lookup(0x4000)
	if now == old {
		t.Fatal("write must relocate the page")
	}
	if bb.Plane(old.Plane).Block(old.Block).Valid(old.Page) {
		t.Error("old copy still valid")
	}
}

func TestPageMappedGCReclaims(t *testing.T) {
	eng := sim.NewEngine()
	fc := config.Default().Flash
	fc.Channels = 1
	fc.DiesPerPkg = 1
	fc.PlanesPerDie = 1
	fc.BlocksPerPl = 8
	fc.PagesPerBlock = 4
	fc.ReadLat, fc.ProgramLat, fc.EraseLat = 30, 1000, 3000
	cfg := config.Default().FTL
	cfg.GCThreshold = 0.4 // GC below 3 free blocks
	bb := flash.New(eng, fc)
	p := NewPageMapped(eng, bb, cfg)
	// Rewrite a tiny working set far beyond capacity: GC must keep up.
	for i := 0; i < 100; i++ {
		p.WritePage(uint64(i%3)*0x1000, nil)
		eng.Run()
	}
	if p.GCRuns.Value() == 0 {
		t.Fatal("GC never ran")
	}
	if p.FreeBlocks() == 0 {
		t.Error("GC failed to reclaim blocks")
	}
	// Mapping integrity: all three pages still resolve to valid pages.
	for i := 0; i < 3; i++ {
		l := p.Lookup(uint64(i) * 0x1000)
		if !bb.Plane(l.Plane).Block(l.Block).Valid(l.Page) {
			t.Errorf("page %d maps to invalid copy %+v", i, l)
		}
	}
}

// Property: page-mapped FTL never maps two virtual pages to the same
// physical slot.
func TestPageMappedNoAliasingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		eng := sim.NewEngine()
		bb, cfg := smallBB(eng)
		p := NewPageMapped(eng, bb, cfg)
		for _, op := range ops {
			va := uint64(op%32) * 0x1000
			if op%3 == 0 {
				p.WritePage(va, nil)
			} else {
				p.Lookup(va)
			}
			eng.Run()
		}
		seen := map[uint64]uint64{}
		ok := true
		p.EachMapping(func(vp uint64, l Loc) {
			key := packLoc(l)
			if other, dup := seen[key]; dup && other != vp {
				ok = false
			}
			seen[key] = vp
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPlaneAllocWearOrder(t *testing.T) {
	eng := sim.NewEngine()
	bb, _ := smallBB(eng)
	p := bb.Plane(0)
	a := newPlaneAlloc(p, 0, 4)
	// Wear block 2 once.
	if err := p.Erase(2, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	got := map[int]bool{}
	for i := 0; i < 3; i++ {
		b, ok := a.pop()
		if !ok {
			t.Fatal("pop failed")
		}
		got[b] = true
		if b == 2 {
			t.Errorf("worn block 2 popped before fresh blocks")
		}
	}
	if b, _ := a.pop(); b != 2 {
		t.Errorf("last pop = %d, want the worn block 2", b)
	}
	_ = got
}
