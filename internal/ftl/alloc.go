// Package ftl implements the two flash translation layers the ZnG
// evaluation compares:
//
//   - Split: the paper's zero-overhead FTL (Section III-B/IV-A). A
//     read-only data-block mapping table (DBMT) lives in the GPU MMU;
//     writes are remapped by the programmable row decoders of per-
//     group log blocks (LPMT); the log-block mapping table (LBMT)
//     groups several data blocks per log block; and a GPU helper
//     thread performs garbage collection and wear-levelled block
//     allocation.
//
//   - PageMapped: the monolithic page-mapped FTL that the HybridGPU
//     SSD engine executes in firmware.
//
// Both keep real per-block state in internal/flash, so erase-before-
// write, in-order programming and P/E endurance are enforced by the
// substrate, not assumed.
package ftl

import (
	"zng/internal/flash"
)

// planeAlloc hands out free blocks of one plane, lowest-erase-count
// first (the wear-levelling policy of Section IV-A).
type planeAlloc struct {
	plane *flash.Plane
	free  []int
}

func newPlaneAlloc(p *flash.Plane, firstFree, blocks int) *planeAlloc {
	a := &planeAlloc{plane: p}
	for b := firstFree; b < blocks; b++ {
		a.free = append(a.free, b)
	}
	return a
}

// pop removes and returns the free block with the lowest erase count.
func (a *planeAlloc) pop() (int, bool) {
	if len(a.free) == 0 {
		return 0, false
	}
	best := 0
	for i, b := range a.free {
		if a.plane.Block(b).EraseCount < a.plane.Block(a.free[best]).EraseCount {
			best = i
		}
	}
	b := a.free[best]
	a.free = append(a.free[:best], a.free[best+1:]...)
	return b, true
}

// push returns a block to the free list.
func (a *planeAlloc) push(b int) { a.free = append(a.free, b) }

// freeCount reports available blocks.
func (a *planeAlloc) freeCount() int { return len(a.free) }
