// Package ftl implements the two flash translation layers the ZnG
// evaluation compares:
//
//   - Split: the paper's zero-overhead FTL (Section III-B/IV-A). A
//     read-only data-block mapping table (DBMT) lives in the GPU MMU;
//     writes are remapped by the programmable row decoders of per-
//     group log blocks (LPMT); the log-block mapping table (LBMT)
//     groups several data blocks per log block; and a GPU helper
//     thread performs garbage collection and wear-levelled block
//     allocation.
//
//   - PageMapped: the monolithic page-mapped FTL that the HybridGPU
//     SSD engine executes in firmware.
//
// Both keep real per-block state in internal/flash, so erase-before-
// write, in-order programming and P/E endurance are enforced by the
// substrate, not assumed.
package ftl

import (
	"zng/internal/flash"
)

// planeAlloc hands out free blocks of one plane, lowest-erase-count
// first (the wear-levelling policy of Section IV-A).
//
// Free blocks are bucketed by erase count, each bucket a FIFO in push
// order. A block's erase count never changes while it sits in the free
// list (erases happen just before push), so pop — drain the lowest
// non-empty bucket front to back — returns exactly what the previous
// O(n) free-list scan did: the earliest-freed block among those with
// the least wear. Block allocation sits on the read path's first-touch
// (Split.dataBlock) and was the hottest function in whole-platform
// profiles; bucketing makes pop O(1).
type planeAlloc struct {
	plane   *flash.Plane
	buckets map[int]*allocBucket
	minEC   int // lowest erase count that may have a non-empty bucket
	count   int
}

// allocBucket is a FIFO of block ids sharing one erase count. head
// indexes the next block to hand out; storage is reclaimed when the
// bucket drains.
type allocBucket struct {
	blocks []int
	head   int
}

func (b *allocBucket) empty() bool { return b == nil || b.head == len(b.blocks) }

func newPlaneAlloc(p *flash.Plane, firstFree, blocks int) *planeAlloc {
	// All blocks start at erase count zero; fill bucket 0 directly so
	// construction does not materialize per-block state.
	b := &allocBucket{blocks: make([]int, 0, blocks-firstFree)}
	for i := firstFree; i < blocks; i++ {
		b.blocks = append(b.blocks, i)
	}
	return &planeAlloc{
		plane:   p,
		buckets: map[int]*allocBucket{0: b},
		count:   len(b.blocks),
	}
}

// pop removes and returns the free block with the lowest erase count
// (FIFO among equals). Bucket keys are fixed at push time, so pop
// re-validates: a block worn out-of-band while it sat free (erase
// counts only ever grow) is refiled under its current count instead of
// being handed out ahead of fresher blocks. Refiling is rare and each
// refile strictly raises the block's bucket, so pop stays O(1)
// amortized.
func (a *planeAlloc) pop() (int, bool) {
	for a.count > 0 {
		b := a.buckets[a.minEC]
		for b.empty() {
			a.minEC++
			b = a.buckets[a.minEC]
		}
		blk := b.blocks[b.head]
		b.head++
		if b.head == len(b.blocks) {
			b.blocks, b.head = b.blocks[:0], 0
		}
		a.count--
		if a.plane.Block(blk).EraseCount != a.minEC {
			a.push(blk)
			continue
		}
		return blk, true
	}
	return 0, false
}

// push returns a block to the free list under its current erase count.
func (a *planeAlloc) push(blk int) {
	ec := a.plane.Block(blk).EraseCount
	b := a.buckets[ec]
	if b == nil {
		b = &allocBucket{}
		a.buckets[ec] = b
	}
	b.blocks = append(b.blocks, blk)
	if ec < a.minEC {
		a.minEC = ec
	}
	a.count++
}

// freeCount reports available blocks.
func (a *planeAlloc) freeCount() int { return a.count }
