package ftl

import (
	"zng/internal/config"
	"zng/internal/flash"
	"zng/internal/sim"
	"zng/internal/stats"
)

// PageMapped is the monolithic page-mapped FTL that the HybridGPU SSD
// engine executes in firmware (Section II-B): full page-granularity
// mapping in controller DRAM, round-robin write striping across
// planes, greedy-victim garbage collection.
//
// Timing note: this type performs the flash-side work; the per-request
// firmware processing cost (address translation on the embedded
// cores — 67% of HybridGPU's latency per Fig. 4d) is charged by
// internal/ssd before requests reach here.
type PageMapped struct {
	eng *sim.Engine
	bb  *flash.Backbone
	cfg config.FTL

	planes int
	table  denseTable // vpage -> packed physical location
	owner  denseTable // dense physical page index -> vpage

	alloc   []*planeAlloc
	open    []int // per-plane open write block (-1 = none)
	preload []preloadState
	rr      int
	inGC    []bool

	// Statistics.
	HostWrites stats.Counter
	GCRuns     stats.Counter
	GCMoves    stats.Counter
}

type preloadState struct {
	block int
	next  int
}

// NewPageMapped builds the FTL over a backbone.
func NewPageMapped(eng *sim.Engine, bb *flash.Backbone, cfg config.FTL) *PageMapped {
	p := &PageMapped{
		eng:    eng,
		bb:     bb,
		cfg:    cfg,
		planes: bb.Planes(),
	}
	for i := 0; i < p.planes; i++ {
		p.alloc = append(p.alloc, newPlaneAlloc(bb.Plane(i), 0, bb.Cfg.BlocksPerPl))
		p.open = append(p.open, -1)
		p.preload = append(p.preload, preloadState{block: -1})
		p.inGC = append(p.inGC, false)
	}
	return p
}

func (p *PageMapped) vpage(va uint64) uint64 { return va / uint64(p.bb.Cfg.PageBytes) }

func packLoc(l Loc) uint64 {
	return uint64(l.Plane)<<40 | uint64(l.Block)<<16 | uint64(l.Page)
}

func unpackLoc(v uint64) Loc {
	return Loc{Plane: int(v >> 40), Block: int(v >> 16 & 0xFFFFFF), Page: int(v & 0xFFFF)}
}

// physIdx flattens a location into the dense physical page index the
// owner table is keyed by — physical space is fully dense, so the
// reverse mapping needs no sharding headroom beyond the geometry.
func (p *PageMapped) physIdx(l Loc) uint64 {
	return (uint64(l.Plane)*uint64(p.bb.Cfg.BlocksPerPl)+uint64(l.Block))*uint64(p.bb.Cfg.PagesPerBlock) + uint64(l.Page)
}

// Lookup resolves va, lazily placing never-written pages in preloaded
// blocks striped across planes (the state of a freshly imaged drive).
func (p *PageMapped) Lookup(va uint64) Loc {
	vp := p.vpage(va)
	if v, ok := p.table.get(vp); ok {
		return unpackLoc(v)
	}
	plane := int(vp % uint64(p.planes))
	ps := &p.preload[plane]
	if ps.block < 0 || ps.next >= p.bb.Cfg.PagesPerBlock {
		b, ok := p.alloc[plane].pop()
		if !ok {
			panic("ftl: plane out of preload blocks")
		}
		ps.block, ps.next = b, 0
	}
	l := Loc{Plane: plane, Block: ps.block, Page: ps.next}
	ps.next++
	p.bb.Plane(plane).PreloadPage(l.Block, l.Page)
	p.table.put(vp, packLoc(l))
	p.owner.put(p.physIdx(l), vp)
	return l
}

// WritePage appends the newest version of va's page to an open block
// (round-robin across planes), invalidates the old copy, and calls fn
// when the program completes.
func (p *PageMapped) WritePage(va uint64, fn func()) {
	plane := p.rr % p.planes
	p.rr++
	p.HostWrites.Inc()
	p.writeTo(plane, p.vpage(va), fn)
}

func (p *PageMapped) writeTo(plane int, vp uint64, fn func()) {
	blk, page := p.nextSlot(plane)
	// Invalidate the previous version.
	if v, ok := p.table.get(vp); ok {
		old := unpackLoc(v)
		p.bb.Plane(old.Plane).MarkInvalid(old.Block, old.Page)
		p.owner.del(p.physIdx(old))
	}
	l := Loc{Plane: plane, Block: blk, Page: page}
	p.table.put(vp, packLoc(l))
	p.owner.put(p.physIdx(l), vp)
	if err := p.bb.Plane(plane).Program(blk, page, fn); err != nil {
		panic("ftl: page-mapped program failed: " + err.Error())
	}
	p.maybeGC(plane)
}

// nextSlot returns the next in-order slot of the plane's open block,
// opening a fresh one as needed.
func (p *PageMapped) nextSlot(plane int) (block, page int) {
	b := p.open[plane]
	if b < 0 || p.bb.Plane(plane).Block(b).WritePtr >= p.bb.Cfg.PagesPerBlock {
		nb, ok := p.alloc[plane].pop()
		if !ok {
			panic("ftl: plane out of write blocks (GC fell behind)")
		}
		p.open[plane] = nb
		b = nb
	}
	return b, p.bb.Plane(plane).Block(b).WritePtr
}

// maybeGC runs greedy garbage collection when the plane's free pool
// drops below the configured threshold.
func (p *PageMapped) maybeGC(plane int) {
	if p.inGC[plane] {
		return
	}
	thresh := int(float64(p.bb.Cfg.BlocksPerPl) * p.cfg.GCThreshold)
	if p.alloc[plane].freeCount() >= thresh {
		return
	}
	victim, moves := p.pickVictim(plane)
	if victim < 0 {
		return
	}
	p.inGC[plane] = true
	p.GCRuns.Inc()
	pl := p.bb.Plane(plane)
	pl.ReadMany(len(moves), func() {
		for _, m := range moves {
			// The foreground may have rewritten the page while the GC
			// read burst was in flight; only move still-current copies,
			// or the stale move would clobber the newer mapping.
			if cur, ok := p.table.get(m.vp); !ok || unpackLoc(cur) != m.loc {
				continue
			}
			p.GCMoves.Inc()
			p.writeTo(plane, m.vp, nil)
		}
		if err := pl.Erase(victim, nil); err == nil {
			p.alloc[plane].push(victim)
		}
		p.inGC[plane] = false
	})
}

type gcMove struct {
	vp  uint64
	loc Loc
}

// pickVictim selects the materialized block with the fewest valid
// pages (greedy), skipping the open and preload blocks. It returns the
// virtual pages that must move.
func (p *PageMapped) pickVictim(plane int) (victim int, moves []gcMove) {
	victim = -1
	best := p.bb.Cfg.PagesPerBlock + 1
	pl := p.bb.Plane(plane)
	pl.EachBlock(func(id int, bl *flash.Block) {
		if id == p.open[plane] || id == p.preload[plane].block {
			return
		}
		if bl.WritePtr < p.bb.Cfg.PagesPerBlock {
			return // not yet full; erasing it would waste free pages
		}
		if v := bl.ValidCount(); v < best {
			best = v
			victim = id
		}
	})
	if victim < 0 {
		return -1, nil
	}
	for page := 0; page < p.bb.Cfg.PagesPerBlock; page++ {
		if pl.Block(victim).Valid(page) {
			l := Loc{Plane: plane, Block: victim, Page: page}
			if vp, ok := p.owner.get(p.physIdx(l)); ok {
				moves = append(moves, gcMove{vp: vp, loc: l})
			}
		}
	}
	return victim, moves
}

// FreeBlocks reports total free blocks (tests).
func (p *PageMapped) FreeBlocks() int {
	n := 0
	for _, a := range p.alloc {
		n += a.freeCount()
	}
	return n
}

// EachMapping visits every live vpage -> location mapping in
// ascending vpage order (tests and audits).
func (p *PageMapped) EachMapping(fn func(vp uint64, l Loc)) {
	p.table.each(func(vp, v uint64) { fn(vp, unpackLoc(v)) })
}

// MappedPages reports the number of mapped virtual pages.
func (p *PageMapped) MappedPages() int { return p.table.len() }

// StateBytes reports the allocated footprint of the translation
// state — the forward page table plus the reverse owner mapping —
// the in-firmware-DRAM metadata the paper's Section II-B costs out.
func (p *PageMapped) StateBytes() uint64 {
	return p.table.stateBytes() + p.owner.stateBytes()
}
