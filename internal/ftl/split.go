package ftl

import (
	"zng/internal/config"
	"zng/internal/flash"
	"zng/internal/sim"
	"zng/internal/stats"
)

// Loc is a physical flash location.
type Loc struct {
	Plane int
	Block int
	Page  int
	// FromLog reports whether the location was remapped by a log
	// block's row decoder.
	FromLog bool
}

// Split is the ZnG zero-overhead FTL.
type Split struct {
	eng    *sim.Engine
	bb     *flash.Backbone
	cfg    config.FTL
	helper *sim.Resource // GPU helper thread serializes GC work

	pagesPerBlock int
	planes        int

	// DBMT: virtual block -> physical data block (within the block's
	// home plane). Read-only from the request path's perspective; only
	// the helper thread rewrites it during GC. Virtual block numbers
	// are dense (they grow with the footprint), so the sharded table
	// packs them at ~8 B/entry.
	dbmt denseTable

	// LBMT: (plane, group) -> log block + its row-decoder LPMT. The
	// groups live in an append-only arena; gidx maps the dense group
	// key to arena index, so the hot write path does one radix lookup
	// and one slice index instead of a map probe.
	groups []*logGroup
	gidx   denseTable

	alloc []*planeAlloc

	// Statistics.
	Merges        stats.Counter
	MergeReads    stats.Counter
	MergePrograms stats.Counter
	LogPrograms   stats.Counter
	LogHits       stats.Counter
	StalledWrites stats.Counter
}

type logGroup struct {
	plane   int
	block   int
	dec     *flash.RowDecoder
	merging bool
	pending []pendingWrite
}

type pendingWrite struct {
	va uint64
	fn func()
}

// NewSplit builds the split FTL over a backbone. A fraction of each
// plane's blocks (cfg.OPFraction) is reserved as over-provisioned log
// space, mirroring the paper's use of OP blocks for logs.
func NewSplit(eng *sim.Engine, bb *flash.Backbone, cfg config.FTL) *Split {
	s := &Split{
		eng:           eng,
		bb:            bb,
		cfg:           cfg,
		helper:        sim.NewResource(eng),
		pagesPerBlock: bb.Cfg.PagesPerBlock,
		planes:        bb.Planes(),
	}
	for i := 0; i < s.planes; i++ {
		s.alloc = append(s.alloc, newPlaneAlloc(bb.Plane(i), 0, bb.Cfg.BlocksPerPl))
	}
	return s
}

// VBlock returns the virtual block and in-block page index of va.
//
// Pages stripe across planes at page granularity (superpage layout):
// consecutive logical pages land on consecutive planes, and a virtual
// block is the set of pages of one plane whose in-plane indexes share
// a block. This is the layout that lets the accumulated bandwidth of
// all 1,024 planes serve a working set of modest size — the property
// ZnG's whole design depends on.
func (s *Split) VBlock(va uint64) (vb uint64, pageIdx int) {
	vpage := va / uint64(s.bb.Cfg.PageBytes)
	plane := vpage % uint64(s.planes)
	idx := vpage / uint64(s.planes)
	vb = (idx/uint64(s.pagesPerBlock))*uint64(s.planes) + plane
	return vb, int(idx % uint64(s.pagesPerBlock))
}

// PlaneOf reports the home plane of a virtual block.
func (s *Split) PlaneOf(vb uint64) int { return int(vb % uint64(s.planes)) }

// dataBlock returns (allocating and preloading on first touch) the
// physical data block of vb.
func (s *Split) dataBlock(vb uint64) int {
	if b, ok := s.dbmt.get(vb); ok {
		return int(b)
	}
	plane := s.PlaneOf(vb)
	b, ok := s.alloc[plane].pop()
	if !ok {
		panic("ftl: plane out of data blocks (working set exceeds capacity)")
	}
	s.bb.Plane(plane).Preload(b)
	s.dbmt.put(vb, uint64(b))
	return b
}

// groupKey numbers log groups densely — group stripe index major,
// home plane minor — so the group index table's shard directory stays
// as compact as the footprint itself.
func (s *Split) groupKey(vb uint64) uint64 {
	plane := uint64(s.PlaneOf(vb))
	idx := (vb / uint64(s.planes)) / uint64(s.cfg.DataBlocksPerLog)
	return idx*uint64(s.planes) + plane
}

// group returns (allocating on first write) the log group of vb.
func (s *Split) group(vb uint64) *logGroup {
	key := s.groupKey(vb)
	if gi, ok := s.gidx.get(key); ok {
		return s.groups[gi]
	}
	plane := s.PlaneOf(vb)
	b, ok := s.alloc[plane].pop()
	if !ok {
		panic("ftl: plane out of log blocks")
	}
	g := &logGroup{plane: plane, block: b, dec: flash.NewRowDecoder(s.pagesPerBlock)}
	s.gidx.put(key, uint64(len(s.groups)))
	s.groups = append(s.groups, g)
	return g
}

// lpmtKey is the CAM key of Section IV-A: data block number plus page
// index.
func (s *Split) lpmtKey(vb uint64, pageIdx int) uint64 {
	return vb*uint64(s.pagesPerBlock) + uint64(pageIdx)
}

// ReadLoc resolves va for a read: DBMT first (done by the MMU), then
// the log group's row decoder (done in the flash package). The caller
// charges CAM latency.
func (s *Split) ReadLoc(va uint64) Loc {
	vb, pageIdx := s.VBlock(va)
	plane := s.PlaneOf(vb)
	if gi, ok := s.gidx.get(s.groupKey(vb)); ok {
		g := s.groups[gi]
		if slot, hit := g.dec.Lookup(s.lpmtKey(vb, pageIdx)); hit {
			s.LogHits.Inc()
			return Loc{Plane: plane, Block: g.block, Page: slot, FromLog: true}
		}
	}
	return Loc{Plane: plane, Block: s.dataBlock(vb), Page: pageIdx}
}

// WritePage programs the newest version of va's page into the log
// block, remapped by the row decoder. fn fires when the program
// completes. A full log block triggers a helper-thread merge first;
// the write stalls behind it (counted in StalledWrites).
func (s *Split) WritePage(va uint64, fn func()) {
	vb, pageIdx := s.VBlock(va)
	s.dataBlock(vb) // ensure DBMT entry exists
	g := s.group(vb)
	if g.merging {
		s.StalledWrites.Inc()
		g.pending = append(g.pending, pendingWrite{va, fn})
		return
	}
	if g.dec.Full() {
		s.StalledWrites.Inc()
		g.pending = append(g.pending, pendingWrite{va, fn})
		s.merge(g)
		return
	}
	s.program(g, vb, pageIdx, fn)
}

func (s *Split) program(g *logGroup, vb uint64, pageIdx int, fn func()) {
	key := s.lpmtKey(vb, pageIdx)
	if old, ok := g.dec.Lookup(key); ok {
		s.bb.Plane(g.plane).MarkInvalid(g.block, old)
	} else {
		// First redirection of this page: the data-block copy is stale.
		db, _ := s.dbmt.get(vb)
		s.bb.Plane(g.plane).MarkInvalid(int(db), pageIdx)
	}
	slot, ok := g.dec.Insert(key)
	if !ok {
		panic("ftl: program into full log block")
	}
	s.LogPrograms.Inc()
	if err := s.bb.Plane(g.plane).Program(g.block, slot, fn); err != nil {
		panic("ftl: log program rejected: " + err.Error())
	}
}

// merge is the helper-thread GC of Section IV-A: fold the log block's
// live pages back into fresh data blocks, erase the old blocks, update
// the DBMT and LBMT, and hand the group a fresh log block.
func (s *Split) merge(g *logGroup) {
	g.merging = true
	s.Merges.Inc()

	// Affected virtual blocks: those with live log entries. Keys()
	// is sorted, so dividing by the page count yields the affected
	// blocks already deduplicated in ascending order — the merge walk
	// below is structurally deterministic.
	var affected []uint64
	keys := g.dec.Keys()
	for _, key := range keys {
		vb := key / uint64(s.pagesPerBlock)
		if n := len(affected); n == 0 || affected[n-1] != vb {
			affected = append(affected, vb)
		}
	}
	liveLog := len(keys)

	plane := s.bb.Plane(g.plane)
	s.helper.Acquire(s.cfg.HelperThreadLat, func() {
		// Read phase: live log pages plus the still-valid pages of each
		// affected data block.
		reads := liveLog
		for _, vb := range affected {
			db, _ := s.dbmt.get(vb)
			reads += plane.Block(int(db)).ValidCount()
		}
		s.MergeReads.Add(uint64(reads))
		plane.ReadMany(reads, func() {
			// Program phase: each affected vblock gets a fresh, wear-
			// levelled block holding all of its pages.
			programs := 0
			for _, vb := range affected {
				oldDB, _ := s.dbmt.get(vb)
				old := int(oldDB)
				fresh, ok := s.alloc[g.plane].pop()
				if !ok {
					panic("ftl: no free block for merge")
				}
				if err := plane.ProgramRange(fresh, s.pagesPerBlock, nil); err != nil {
					panic("ftl: merge program failed: " + err.Error())
				}
				programs += s.pagesPerBlock
				if err := plane.Erase(old, nil); err == nil {
					s.alloc[g.plane].push(old)
				}
				s.dbmt.put(vb, uint64(fresh))
			}
			s.MergePrograms.Add(uint64(programs))

			// Recycle the log block.
			if err := plane.Erase(g.block, func() { s.mergeDone(g) }); err != nil {
				// Worn out: retire it and allocate a different log block.
				b, ok := s.alloc[g.plane].pop()
				if !ok {
					panic("ftl: no replacement log block")
				}
				g.block = b
				s.eng.Schedule(0, func() { s.mergeDone(g) })
				return
			}
		})
	})
}

func (s *Split) mergeDone(g *logGroup) {
	g.dec.Reset()
	g.merging = false
	pend := g.pending
	g.pending = nil
	for _, w := range pend {
		vb, pageIdx := s.VBlock(w.va)
		if g.dec.Full() {
			// Extremely write-heavy bursts can refill instantly.
			g.pending = append(g.pending, w)
			if !g.merging {
				s.merge(g)
			}
			continue
		}
		s.program(g, vb, pageIdx, w.fn)
	}
}

// FreeBlocks reports the total free blocks across planes (tests and
// the GC ablation use it).
func (s *Split) FreeBlocks() int {
	n := 0
	for _, a := range s.alloc {
		n += a.freeCount()
	}
	return n
}

// MappedPages reports the virtual pages covered by DBMT entries —
// every page of a mapped virtual block resolves without firmware.
func (s *Split) MappedPages() int { return s.dbmt.len() * s.pagesPerBlock }

// StateBytes reports the allocated footprint of the split FTL's
// translation state: the DBMT (the part ZnG holds in MMU SRAM), the
// log-group directory, and every log block's row-decoder CAM.
func (s *Split) StateBytes() uint64 {
	const groupStruct = 64 // logGroup header, pointer-aligned
	b := s.dbmt.stateBytes() + s.gidx.stateBytes()
	b += uint64(cap(s.groups)) * 8
	for _, g := range s.groups {
		b += groupStruct + g.dec.StateBytes()
	}
	return b
}

// MaxEraseCount reports the largest per-block erase count observed —
// the wear-levelling metric of the lifetime ablation.
func (s *Split) MaxEraseCount() int {
	max := 0
	for i := 0; i < s.planes; i++ {
		s.bb.Plane(i).EachBlock(func(_ int, bl *flash.Block) {
			if bl.EraseCount > max {
				max = bl.EraseCount
			}
		})
	}
	return max
}
