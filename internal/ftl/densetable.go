package ftl

// denseTable is a sharded two-level radix table for uint64 keys: a
// growable shard directory (key bits 24+) over fixed 4096-entry mid
// and leaf arrays allocated on first touch. Translation keys here are
// sparse globally but dense within a cluster — virtual pages cluster
// per (app, region), physical pages per block — so leaves pack to
// ~8 B/entry once warm, versus ~50 B/entry of map bucket overhead,
// and lookups are three array indexes with no hashing.
//
// Values are stored biased by +1 so a zeroed slot means "absent";
// callers may store any value below ^uint64(0).
const (
	leafBits = 12
	leafSize = 1 << leafBits
	leafMask = leafSize - 1
	midBits  = 12
	midSize  = 1 << midBits
	midMask  = midSize - 1
)

type denseLeaf [leafSize]uint64

type denseMid [midSize]*denseLeaf

type denseTable struct {
	top    []*denseMid
	count  int // live entries
	mids   int // allocated mid nodes
	leaves int // allocated leaf nodes
}

// get returns the value stored for key.
func (t *denseTable) get(key uint64) (uint64, bool) {
	ti := key >> (leafBits + midBits)
	if ti >= uint64(len(t.top)) {
		return 0, false
	}
	mid := t.top[ti]
	if mid == nil {
		return 0, false
	}
	leaf := mid[(key>>leafBits)&midMask]
	if leaf == nil {
		return 0, false
	}
	v := leaf[key&leafMask]
	if v == 0 {
		return 0, false
	}
	return v - 1, true
}

// put stores val for key, allocating the key's shard path on first
// touch.
func (t *denseTable) put(key, val uint64) {
	ti := key >> (leafBits + midBits)
	for ti >= uint64(len(t.top)) {
		t.top = append(t.top, nil)
	}
	mid := t.top[ti]
	if mid == nil {
		mid = new(denseMid)
		t.top[ti] = mid
		t.mids++
	}
	li := (key >> leafBits) & midMask
	leaf := mid[li]
	if leaf == nil {
		leaf = new(denseLeaf)
		mid[li] = leaf
		t.leaves++
	}
	slot := &leaf[key&leafMask]
	if *slot == 0 {
		t.count++
	}
	*slot = val + 1
}

// del removes key if present.
func (t *denseTable) del(key uint64) {
	ti := key >> (leafBits + midBits)
	if ti >= uint64(len(t.top)) || t.top[ti] == nil {
		return
	}
	leaf := t.top[ti][(key>>leafBits)&midMask]
	if leaf == nil {
		return
	}
	slot := &leaf[key&leafMask]
	if *slot != 0 {
		t.count--
		*slot = 0
	}
}

// len reports the number of live entries.
func (t *denseTable) len() int { return t.count }

// each visits every live entry in ascending key order — structural
// iteration order, so no map-range nondeterminism can leak out.
func (t *denseTable) each(fn func(key, val uint64)) {
	for ti, mid := range t.top {
		if mid == nil {
			continue
		}
		for li, leaf := range mid {
			if leaf == nil {
				continue
			}
			base := uint64(ti)<<(leafBits+midBits) | uint64(li)<<leafBits
			for i, v := range leaf {
				if v != 0 {
					fn(base|uint64(i), v-1)
				}
			}
		}
	}
}

// stateBytes reports the table's allocated footprint: the shard
// directory plus every materialized mid and leaf array.
func (t *denseTable) stateBytes() uint64 {
	const ptrBytes = 8
	return uint64(cap(t.top))*ptrBytes +
		uint64(t.mids)*midSize*ptrBytes +
		uint64(t.leaves)*leafSize*8
}
