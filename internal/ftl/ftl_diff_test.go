package ftl

// Differential tests: the map-backed FTLs this package shipped before
// the dense-table rework, kept verbatim as test-only references (maps
// for the page table, owner and DBMT state, and a map-backed row
// decoder). The dense implementations must agree location-for-
// location, counter-for-counter and erase-for-erase on randomized
// workloads — the contract that made the rework a pure optimization.

import (
	"testing"

	"zng/internal/config"
	"zng/internal/flash"
	"zng/internal/rng"
	"zng/internal/sim"
	"zng/internal/stats"
)

// diffCfg is the deliberately tiny geometry (mirroring the GC
// ablation's) that makes garbage collection and log merges cheap to
// provoke.
func diffCfg() config.Flash {
	fcfg := config.Default().Flash
	fcfg.Channels = 4
	fcfg.DiesPerPkg = 2
	fcfg.PlanesPerDie = 2
	fcfg.BlocksPerPl = 64
	fcfg.PagesPerBlock = 16
	fcfg.ReadLat, fcfg.ProgramLat, fcfg.EraseLat = 30, 1000, 3000
	return fcfg
}

// --- map-backed row decoder (pre-rework flash.RowDecoder) -----------

type refRowDecoder struct {
	cam      map[uint64]int
	stale    map[int]bool
	nextFree int
	capacity int
}

func newRefRowDecoder(pagesPerBlock int) *refRowDecoder {
	return &refRowDecoder{cam: make(map[uint64]int), stale: make(map[int]bool), capacity: pagesPerBlock}
}

func (d *refRowDecoder) Lookup(key uint64) (int, bool) { s, ok := d.cam[key]; return s, ok }

func (d *refRowDecoder) Insert(key uint64) (int, bool) {
	if d.nextFree >= d.capacity {
		return 0, false
	}
	if old, exists := d.cam[key]; exists {
		d.stale[old] = true
	}
	slot := d.nextFree
	d.nextFree++
	d.cam[key] = slot
	return slot, true
}

func (d *refRowDecoder) Full() bool { return d.nextFree >= d.capacity }

func (d *refRowDecoder) Keys() []uint64 {
	out := make([]uint64, 0, len(d.cam))
	for k := range d.cam {
		out = append(out, k)
	}
	sortU64(out)
	return out
}

func (d *refRowDecoder) Reset() {
	d.cam = make(map[uint64]int)
	d.stale = make(map[int]bool)
	d.nextFree = 0
}

func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// --- map-backed page-mapped FTL (pre-rework PageMapped) -------------

type refPageMapped struct {
	eng *sim.Engine
	bb  *flash.Backbone
	cfg config.FTL

	planes int
	table  map[uint64]Loc
	owner  map[uint64]uint64

	alloc   []*planeAlloc
	open    []int
	preload []preloadState
	rr      int
	inGC    []bool

	HostWrites stats.Counter
	GCRuns     stats.Counter
	GCMoves    stats.Counter
}

func newRefPageMapped(eng *sim.Engine, bb *flash.Backbone, cfg config.FTL) *refPageMapped {
	p := &refPageMapped{
		eng:    eng,
		bb:     bb,
		cfg:    cfg,
		planes: bb.Planes(),
		table:  make(map[uint64]Loc),
		owner:  make(map[uint64]uint64),
	}
	for i := 0; i < p.planes; i++ {
		p.alloc = append(p.alloc, newPlaneAlloc(bb.Plane(i), 0, bb.Cfg.BlocksPerPl))
		p.open = append(p.open, -1)
		p.preload = append(p.preload, preloadState{block: -1})
		p.inGC = append(p.inGC, false)
	}
	return p
}

func (p *refPageMapped) vpage(va uint64) uint64 { return va / uint64(p.bb.Cfg.PageBytes) }

func (p *refPageMapped) Lookup(va uint64) Loc {
	vp := p.vpage(va)
	if l, ok := p.table[vp]; ok {
		return l
	}
	plane := int(vp % uint64(p.planes))
	ps := &p.preload[plane]
	if ps.block < 0 || ps.next >= p.bb.Cfg.PagesPerBlock {
		b, ok := p.alloc[plane].pop()
		if !ok {
			panic("ref ftl: plane out of preload blocks")
		}
		ps.block, ps.next = b, 0
	}
	l := Loc{Plane: plane, Block: ps.block, Page: ps.next}
	ps.next++
	p.bb.Plane(plane).PreloadPage(l.Block, l.Page)
	p.table[vp] = l
	p.owner[packLoc(l)] = vp
	return l
}

func (p *refPageMapped) WritePage(va uint64, fn func()) {
	plane := p.rr % p.planes
	p.rr++
	p.HostWrites.Inc()
	p.writeTo(plane, p.vpage(va), fn)
}

func (p *refPageMapped) writeTo(plane int, vp uint64, fn func()) {
	blk, page := p.nextSlot(plane)
	if old, ok := p.table[vp]; ok {
		p.bb.Plane(old.Plane).MarkInvalid(old.Block, old.Page)
		delete(p.owner, packLoc(old))
	}
	l := Loc{Plane: plane, Block: blk, Page: page}
	p.table[vp] = l
	p.owner[packLoc(l)] = vp
	if err := p.bb.Plane(plane).Program(blk, page, fn); err != nil {
		panic("ref ftl: program failed: " + err.Error())
	}
	p.maybeGC(plane)
}

func (p *refPageMapped) nextSlot(plane int) (block, page int) {
	b := p.open[plane]
	if b < 0 || p.bb.Plane(plane).Block(b).WritePtr >= p.bb.Cfg.PagesPerBlock {
		nb, ok := p.alloc[plane].pop()
		if !ok {
			panic("ref ftl: plane out of write blocks")
		}
		p.open[plane] = nb
		b = nb
	}
	return b, p.bb.Plane(plane).Block(b).WritePtr
}

func (p *refPageMapped) maybeGC(plane int) {
	if p.inGC[plane] {
		return
	}
	thresh := int(float64(p.bb.Cfg.BlocksPerPl) * p.cfg.GCThreshold)
	if p.alloc[plane].freeCount() >= thresh {
		return
	}
	victim, moves := p.pickVictim(plane)
	if victim < 0 {
		return
	}
	p.inGC[plane] = true
	p.GCRuns.Inc()
	pl := p.bb.Plane(plane)
	pl.ReadMany(len(moves), func() {
		for _, m := range moves {
			if cur, ok := p.table[m.vp]; !ok || cur != m.loc {
				continue
			}
			p.GCMoves.Inc()
			p.writeTo(plane, m.vp, nil)
		}
		if err := pl.Erase(victim, nil); err == nil {
			p.alloc[plane].push(victim)
		}
		p.inGC[plane] = false
	})
}

func (p *refPageMapped) pickVictim(plane int) (victim int, moves []gcMove) {
	victim = -1
	best := p.bb.Cfg.PagesPerBlock + 1
	pl := p.bb.Plane(plane)
	pl.EachBlock(func(id int, bl *flash.Block) {
		if id == p.open[plane] || id == p.preload[plane].block {
			return
		}
		if bl.WritePtr < p.bb.Cfg.PagesPerBlock {
			return
		}
		if v := bl.ValidCount(); v < best {
			best = v
			victim = id
		}
	})
	if victim < 0 {
		return -1, nil
	}
	for page := 0; page < p.bb.Cfg.PagesPerBlock; page++ {
		if pl.Block(victim).Valid(page) {
			l := Loc{Plane: plane, Block: victim, Page: page}
			if vp, ok := p.owner[packLoc(l)]; ok {
				moves = append(moves, gcMove{vp: vp, loc: l})
			}
		}
	}
	return victim, moves
}

func (p *refPageMapped) FreeBlocks() int {
	n := 0
	for _, a := range p.alloc {
		n += a.freeCount()
	}
	return n
}

// --- map-backed split FTL (pre-rework Split) ------------------------

type refSplit struct {
	eng    *sim.Engine
	bb     *flash.Backbone
	cfg    config.FTL
	helper *sim.Resource

	pagesPerBlock int
	planes        int
	dbmt          map[uint64]int
	groups        map[uint64]*refLogGroup
	alloc         []*planeAlloc

	Merges        stats.Counter
	MergeReads    stats.Counter
	MergePrograms stats.Counter
	LogPrograms   stats.Counter
	LogHits       stats.Counter
	StalledWrites stats.Counter
}

type refLogGroup struct {
	plane   int
	block   int
	dec     *refRowDecoder
	merging bool
	pending []pendingWrite
}

func newRefSplit(eng *sim.Engine, bb *flash.Backbone, cfg config.FTL) *refSplit {
	s := &refSplit{
		eng:           eng,
		bb:            bb,
		cfg:           cfg,
		helper:        sim.NewResource(eng),
		pagesPerBlock: bb.Cfg.PagesPerBlock,
		planes:        bb.Planes(),
		dbmt:          make(map[uint64]int),
		groups:        make(map[uint64]*refLogGroup),
	}
	for i := 0; i < s.planes; i++ {
		s.alloc = append(s.alloc, newPlaneAlloc(bb.Plane(i), 0, bb.Cfg.BlocksPerPl))
	}
	return s
}

func (s *refSplit) VBlock(va uint64) (uint64, int) {
	vpage := va / uint64(s.bb.Cfg.PageBytes)
	plane := vpage % uint64(s.planes)
	idx := vpage / uint64(s.planes)
	vb := (idx/uint64(s.pagesPerBlock))*uint64(s.planes) + plane
	return vb, int(idx % uint64(s.pagesPerBlock))
}

func (s *refSplit) PlaneOf(vb uint64) int { return int(vb % uint64(s.planes)) }

func (s *refSplit) dataBlock(vb uint64) int {
	if b, ok := s.dbmt[vb]; ok {
		return b
	}
	plane := s.PlaneOf(vb)
	b, ok := s.alloc[plane].pop()
	if !ok {
		panic("ref ftl: plane out of data blocks")
	}
	s.bb.Plane(plane).Preload(b)
	s.dbmt[vb] = b
	return b
}

func (s *refSplit) groupKey(vb uint64) uint64 {
	plane := uint64(s.PlaneOf(vb))
	idx := (vb / uint64(s.planes)) / uint64(s.cfg.DataBlocksPerLog)
	return plane<<32 | idx
}

func (s *refSplit) group(vb uint64) *refLogGroup {
	key := s.groupKey(vb)
	if g, ok := s.groups[key]; ok {
		return g
	}
	plane := s.PlaneOf(vb)
	b, ok := s.alloc[plane].pop()
	if !ok {
		panic("ref ftl: plane out of log blocks")
	}
	g := &refLogGroup{plane: plane, block: b, dec: newRefRowDecoder(s.pagesPerBlock)}
	s.groups[key] = g
	return g
}

func (s *refSplit) lpmtKey(vb uint64, pageIdx int) uint64 {
	return vb*uint64(s.pagesPerBlock) + uint64(pageIdx)
}

func (s *refSplit) ReadLoc(va uint64) Loc {
	vb, pageIdx := s.VBlock(va)
	plane := s.PlaneOf(vb)
	if g, ok := s.groups[s.groupKey(vb)]; ok {
		if slot, hit := g.dec.Lookup(s.lpmtKey(vb, pageIdx)); hit {
			s.LogHits.Inc()
			return Loc{Plane: plane, Block: g.block, Page: slot, FromLog: true}
		}
	}
	return Loc{Plane: plane, Block: s.dataBlock(vb), Page: pageIdx}
}

func (s *refSplit) WritePage(va uint64, fn func()) {
	vb, pageIdx := s.VBlock(va)
	s.dataBlock(vb)
	g := s.group(vb)
	if g.merging {
		s.StalledWrites.Inc()
		g.pending = append(g.pending, pendingWrite{va, fn})
		return
	}
	if g.dec.Full() {
		s.StalledWrites.Inc()
		g.pending = append(g.pending, pendingWrite{va, fn})
		s.merge(g)
		return
	}
	s.program(g, vb, pageIdx, fn)
}

func (s *refSplit) program(g *refLogGroup, vb uint64, pageIdx int, fn func()) {
	key := s.lpmtKey(vb, pageIdx)
	if old, ok := g.dec.Lookup(key); ok {
		s.bb.Plane(g.plane).MarkInvalid(g.block, old)
	} else {
		s.bb.Plane(g.plane).MarkInvalid(s.dbmt[vb], pageIdx)
	}
	slot, ok := g.dec.Insert(key)
	if !ok {
		panic("ref ftl: program into full log block")
	}
	s.LogPrograms.Inc()
	if err := s.bb.Plane(g.plane).Program(g.block, slot, fn); err != nil {
		panic("ref ftl: log program rejected: " + err.Error())
	}
}

// merge mirrors the pre-rework helper-thread GC. The shipped code
// walked the affected set in map order, which the simulation's
// outputs are invariant to; the reference walks it in sorted order so
// block assignments are reproducible and comparable block-for-block.
func (s *refSplit) merge(g *refLogGroup) {
	g.merging = true
	s.Merges.Inc()

	affectedSet := map[uint64]bool{}
	liveLog := 0
	for _, key := range g.dec.Keys() {
		affectedSet[key/uint64(s.pagesPerBlock)] = true
		liveLog++
	}
	affected := make([]uint64, 0, len(affectedSet))
	for vb := range affectedSet {
		affected = append(affected, vb)
	}
	sortU64(affected)

	plane := s.bb.Plane(g.plane)
	s.helper.Acquire(s.cfg.HelperThreadLat, func() {
		reads := liveLog
		for _, vb := range affected {
			reads += plane.Block(s.dbmt[vb]).ValidCount()
		}
		s.MergeReads.Add(uint64(reads))
		plane.ReadMany(reads, func() {
			programs := 0
			for _, vb := range affected {
				old := s.dbmt[vb]
				fresh, ok := s.alloc[g.plane].pop()
				if !ok {
					panic("ref ftl: no free block for merge")
				}
				if err := plane.ProgramRange(fresh, s.pagesPerBlock, nil); err != nil {
					panic("ref ftl: merge program failed: " + err.Error())
				}
				programs += s.pagesPerBlock
				if err := plane.Erase(old, nil); err == nil {
					s.alloc[g.plane].push(old)
				}
				s.dbmt[vb] = fresh
			}
			s.MergePrograms.Add(uint64(programs))

			if err := plane.Erase(g.block, func() { s.mergeDone(g) }); err != nil {
				b, ok := s.alloc[g.plane].pop()
				if !ok {
					panic("ref ftl: no replacement log block")
				}
				g.block = b
				s.eng.Schedule(0, func() { s.mergeDone(g) })
				return
			}
		})
	})
}

func (s *refSplit) mergeDone(g *refLogGroup) {
	g.dec.Reset()
	g.merging = false
	pend := g.pending
	g.pending = nil
	for _, w := range pend {
		vb, pageIdx := s.VBlock(w.va)
		if g.dec.Full() {
			g.pending = append(g.pending, w)
			if !g.merging {
				s.merge(g)
			}
			continue
		}
		s.program(g, vb, pageIdx, w.fn)
	}
}

func (s *refSplit) FreeBlocks() int {
	n := 0
	for _, a := range s.alloc {
		n += a.freeCount()
	}
	return n
}

func (s *refSplit) MaxEraseCount() int {
	max := 0
	for i := 0; i < s.planes; i++ {
		s.bb.Plane(i).EachBlock(func(_ int, bl *flash.Block) {
			if bl.EraseCount > max {
				max = bl.EraseCount
			}
		})
	}
	return max
}

// --- the differential drivers ---------------------------------------

// compareBackbones asserts the two flash arrays are in identical
// physical states: write pointers, valid counts and erase counts on
// every materialized block — the erase-count half is the
// wear-levelling invariant.
func compareBackbones(t *testing.T, tag string, a, b *flash.Backbone) {
	t.Helper()
	for pl := 0; pl < a.Planes(); pl++ {
		type blockState struct{ wp, valid, erases int }
		stateA := map[int]blockState{}
		a.Plane(pl).EachBlock(func(id int, bl *flash.Block) {
			stateA[id] = blockState{bl.WritePtr, bl.ValidCount(), bl.EraseCount}
		})
		b.Plane(pl).EachBlock(func(id int, bl *flash.Block) {
			if got := (blockState{bl.WritePtr, bl.ValidCount(), bl.EraseCount}); got != stateA[id] {
				t.Fatalf("%s: plane %d block %d diverged: dense %+v, reference %+v",
					tag, pl, id, got, stateA[id])
			}
			delete(stateA, id)
		})
		if len(stateA) != 0 {
			t.Fatalf("%s: plane %d: reference materialized %d blocks the dense side did not",
				tag, pl, len(stateA))
		}
	}
}

// TestPageMappedDifferential drives the dense PageMapped and the map
// reference through an identical randomized write/read stream (heavy
// enough to trigger garbage collection) on separate engines, and
// asserts locations, GC counters and per-block erase counts agree.
func TestPageMappedDifferential(t *testing.T) {
	fcfg := diffCfg()
	engA, engB := sim.NewEngine(), sim.NewEngine()
	bbA, bbB := flash.New(engA, fcfg), flash.New(engB, fcfg)
	dense := NewPageMapped(engA, bbA, config.Default().FTL)
	ref := newRefPageMapped(engB, bbB, config.Default().FTL)

	const pages = 64
	r := rng.New(0xF71)
	for op := 0; op < 24000; op++ {
		va := r.Uint64n(pages) * 4096
		if r.Uint64n(3) == 0 {
			if got, want := dense.Lookup(va), ref.Lookup(va); got != want {
				t.Fatalf("op %d: Lookup(%#x) = %+v, reference says %+v", op, va, got, want)
			}
		} else {
			dense.WritePage(va, nil)
			ref.WritePage(va, nil)
		}
		engA.Run()
		engB.Run()
	}

	for vp := uint64(0); vp < pages; vp++ {
		if got, want := dense.Lookup(vp*4096), ref.Lookup(vp*4096); got != want {
			t.Fatalf("final: Lookup(page %d) = %+v, reference says %+v", vp, got, want)
		}
	}
	if dense.HostWrites.Value() != ref.HostWrites.Value() ||
		dense.GCRuns.Value() != ref.GCRuns.Value() ||
		dense.GCMoves.Value() != ref.GCMoves.Value() {
		t.Fatalf("counters diverged: dense (w=%d gc=%d mv=%d), reference (w=%d gc=%d mv=%d)",
			dense.HostWrites.Value(), dense.GCRuns.Value(), dense.GCMoves.Value(),
			ref.HostWrites.Value(), ref.GCRuns.Value(), ref.GCMoves.Value())
	}
	if ref.GCRuns.Value() == 0 {
		t.Fatal("stream never triggered GC; the differential proves too little")
	}
	if dense.FreeBlocks() != ref.FreeBlocks() {
		t.Fatalf("free blocks: dense %d, reference %d", dense.FreeBlocks(), ref.FreeBlocks())
	}
	if dense.MappedPages() != len(ref.table) {
		t.Fatalf("mapped pages: dense %d, reference %d", dense.MappedPages(), len(ref.table))
	}
	compareBackbones(t, "pagemapped", bbA, bbB)
}

// TestSplitDifferential does the same for the split FTL: randomized
// rewrite pressure forcing log merges, then location, counter, log-
// group and wear (erase-count) equivalence.
func TestSplitDifferential(t *testing.T) {
	fcfg := diffCfg()
	engA, engB := sim.NewEngine(), sim.NewEngine()
	bbA, bbB := flash.New(engA, fcfg), flash.New(engB, fcfg)
	dense := NewSplit(engA, bbA, config.Default().FTL)
	ref := newRefSplit(engB, bbB, config.Default().FTL)

	const pages = 64
	r := rng.New(0x5B17)
	for op := 0; op < 6000; op++ {
		va := r.Uint64n(pages) * 4096
		if r.Uint64n(4) == 0 {
			if got, want := dense.ReadLoc(va), ref.ReadLoc(va); got != want {
				t.Fatalf("op %d: ReadLoc(%#x) = %+v, reference says %+v", op, va, got, want)
			}
		} else {
			dense.WritePage(va, nil)
			ref.WritePage(va, nil)
		}
		engA.Run()
		engB.Run()
	}

	for vp := uint64(0); vp < pages; vp++ {
		if got, want := dense.ReadLoc(vp*4096), ref.ReadLoc(vp*4096); got != want {
			t.Fatalf("final: ReadLoc(page %d) = %+v, reference says %+v", vp, got, want)
		}
	}
	if dense.Merges.Value() != ref.Merges.Value() ||
		dense.MergeReads.Value() != ref.MergeReads.Value() ||
		dense.MergePrograms.Value() != ref.MergePrograms.Value() ||
		dense.LogPrograms.Value() != ref.LogPrograms.Value() ||
		dense.LogHits.Value() != ref.LogHits.Value() ||
		dense.StalledWrites.Value() != ref.StalledWrites.Value() {
		t.Fatalf("counters diverged: dense (m=%d mr=%d mp=%d lp=%d lh=%d sw=%d), reference (m=%d mr=%d mp=%d lp=%d lh=%d sw=%d)",
			dense.Merges.Value(), dense.MergeReads.Value(), dense.MergePrograms.Value(),
			dense.LogPrograms.Value(), dense.LogHits.Value(), dense.StalledWrites.Value(),
			ref.Merges.Value(), ref.MergeReads.Value(), ref.MergePrograms.Value(),
			ref.LogPrograms.Value(), ref.LogHits.Value(), ref.StalledWrites.Value())
	}
	if ref.Merges.Value() == 0 {
		t.Fatal("stream never triggered a merge; the differential proves too little")
	}
	if dense.FreeBlocks() != ref.FreeBlocks() {
		t.Fatalf("free blocks: dense %d, reference %d", dense.FreeBlocks(), ref.FreeBlocks())
	}
	if dense.MaxEraseCount() != ref.MaxEraseCount() {
		t.Fatalf("max erase: dense %d, reference %d", dense.MaxEraseCount(), ref.MaxEraseCount())
	}
	if dense.dbmt.len() != len(ref.dbmt) {
		t.Fatalf("DBMT entries: dense %d, reference %d", dense.dbmt.len(), len(ref.dbmt))
	}
	compareBackbones(t, "split", bbA, bbB)
}
