// Package mmu models GPU address translation as described in Section
// II-A of the ZnG paper: per-SM L1 TLBs backed by a shared MMU with a
// highly-threaded page-table walker (32 threads), a page-walk cache,
// and a page-fault handler hook.
//
// Two translation regimes matter to the evaluation:
//
//   - Baseline platforms walk an in-memory page table on TLB misses
//     (hundreds of cycles per walk, limited walker concurrency).
//   - ZnG stores the read-only data-block mapping table (DBMT) of its
//     split FTL inside the MMU's SRAM (~80 KB, Section III-B), so a
//     TLB miss costs only the DBMT lookup — the "zero-overhead FTL".
//
// The actual virtual-to-physical mapping function is injected by the
// platform (identity for DRAM platforms, DBMT for ZnG); this package
// charges the time.
package mmu

import (
	"zng/internal/config"
	"zng/internal/sim"
	"zng/internal/stats"
)

// PageBytes is the translation granularity.
const PageBytes = 4096

// tlb is a fully-associative LRU translation buffer.
type tlb struct {
	cap     int
	clock   uint64
	entries map[uint64]uint64 // page -> LRU stamp
}

func newTLB(capacity int) *tlb {
	return &tlb{cap: capacity, entries: make(map[uint64]uint64, capacity)}
}

func (t *tlb) lookup(page uint64) bool {
	if _, ok := t.entries[page]; !ok {
		return false
	}
	t.clock++
	t.entries[page] = t.clock
	return true
}

func (t *tlb) insert(page uint64) {
	t.clock++
	if len(t.entries) >= t.cap {
		var victim uint64
		oldest := ^uint64(0)
		for p, s := range t.entries {
			if s < oldest {
				oldest = s
				victim = p
			}
		}
		delete(t.entries, victim)
	}
	t.entries[page] = t.clock
}

// Unit is the shared MMU plus the per-SM L1 TLBs.
type Unit struct {
	eng *sim.Engine
	cfg config.MMU

	l1        []*tlb
	walkCache *tlb
	walkers   *sim.Pool

	// WalkLat is the full page-table walk latency charged on a
	// walk-cache miss. For ZnG platforms it is cfg.DBMTLatency (the
	// in-MMU block-mapping lookup); for baselines it is
	// WalkLevels*WalkMemLatency.
	WalkLat sim.Tick
	// WalkCacheLat is charged when the walk hits the page-walk cache.
	WalkCacheLat sim.Tick

	// Translate maps a virtual address to the platform's physical
	// address space. It must be set before use.
	Translate func(va uint64) uint64

	// Fault, if non-nil, is consulted on every translation; returning
	// true means the page is non-resident and resume will be invoked
	// by the platform when the fault is serviced (Hetero's host path).
	Fault func(va uint64, resume func()) bool

	// Statistics.
	L1Hits, L1Misses   stats.Counter
	WalkCacheHits      stats.Counter
	Walks              stats.Counter
	Faults             stats.Counter
	TranslationLatency stats.Histogram
}

// New creates an MMU for sms streaming multiprocessors. walkLat is the
// charge for a full walk (see Unit.WalkLat).
func New(eng *sim.Engine, cfg config.MMU, sms int, walkLat sim.Tick) *Unit {
	u := &Unit{
		eng:          eng,
		cfg:          cfg,
		walkCache:    newTLB(cfg.WalkCacheEnt),
		walkers:      sim.NewPool(eng, cfg.WalkerThreads),
		WalkLat:      walkLat,
		WalkCacheLat: 8,
	}
	for i := 0; i < sms; i++ {
		u.l1 = append(u.l1, newTLB(cfg.L1TLBEntries))
	}
	return u
}

// BaselineWalkLat returns the full-walk latency for page-table-in-
// memory platforms.
func BaselineWalkLat(cfg config.MMU) sim.Tick {
	return sim.Tick(cfg.WalkLevels) * cfg.WalkMemLatency
}

// Request translates va for the given SM and calls done with the
// physical address. Latency is charged per the TLB/walk/fault path.
func (u *Unit) Request(sm int, va uint64, done func(pa uint64)) {
	if u.Translate == nil {
		panic("mmu: Translate not configured")
	}
	page := va / PageBytes

	finish := func() {
		pa := u.Translate(va)
		done(pa)
	}

	withFault := func(after func()) {
		if u.Fault == nil {
			after()
			return
		}
		if u.Fault(va, after) {
			u.Faults.Inc()
			return // platform resumes us
		}
		after()
	}

	if u.l1[sm].lookup(page) {
		u.L1Hits.Inc()
		// A TLB hit still requires residency (Hetero can evict pages).
		withFault(func() { u.eng.Schedule(1, finish) })
		return
	}
	u.L1Misses.Inc()

	if u.walkCache.lookup(page) {
		u.WalkCacheHits.Inc()
		u.l1[sm].insert(page)
		withFault(func() { u.eng.Schedule(u.WalkCacheLat, finish) })
		return
	}

	// Full walk on one of the walker threads.
	u.Walks.Inc()
	u.walkers.Acquire(u.WalkLat, func() {
		u.walkCache.insert(page)
		u.l1[sm].insert(page)
		withFault(finish)
	})
}

// InvalidatePage drops a page from every TLB level (used when the
// Hetero platform evicts a resident page, and by the ZnG helper thread
// after garbage collection remaps blocks).
func (u *Unit) InvalidatePage(page uint64) {
	for _, t := range u.l1 {
		delete(t.entries, page)
	}
	delete(u.walkCache.entries, page)
}

// L1HitRate reports the aggregate L1 TLB hit rate.
func (u *Unit) L1HitRate() float64 {
	t := u.L1Hits.Value() + u.L1Misses.Value()
	if t == 0 {
		return 0
	}
	return float64(u.L1Hits.Value()) / float64(t)
}
