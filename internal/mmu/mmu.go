// Package mmu models GPU address translation as described in Section
// II-A of the ZnG paper: per-SM L1 TLBs backed by a shared MMU with a
// highly-threaded page-table walker (32 threads), a page-walk cache,
// and a page-fault handler hook.
//
// Two translation regimes matter to the evaluation:
//
//   - Baseline platforms walk an in-memory page table on TLB misses
//     (hundreds of cycles per walk, limited walker concurrency).
//   - ZnG stores the read-only data-block mapping table (DBMT) of its
//     split FTL inside the MMU's SRAM (~80 KB, Section III-B), so a
//     TLB miss costs only the DBMT lookup — the "zero-overhead FTL".
//
// The actual virtual-to-physical mapping function is injected by the
// platform (identity for DRAM platforms, DBMT for ZnG); this package
// charges the time.
package mmu

import (
	"zng/internal/config"
	"zng/internal/sim"
	"zng/internal/stats"
)

// PageBytes is the translation granularity.
const PageBytes = 4096

// tlb is a set-associative translation buffer with exact per-set LRU
// replacement, laid out as dense slot arrays: per-set intrusive LRU
// lists give O(1) hit promotion and eviction, and a small
// open-addressed index (linear probing with backward-shift deletion,
// <=50% load) gives O(1) slot resolution without map overhead or the
// O(capacity) victim scan the map-backed buffer paid on every
// eviction. A single set with as many ways as entries — the
// simulator's default geometry — is exactly the fully-associative
// LRU buffer of Sections II-A/III-B.
type tlb struct {
	sets, ways int

	// Slot state, len sets*ways; set s owns slots [s*ways, s*ways+ways).
	keys       []uint64
	prev, next []int32 // intrusive LRU list; next also links free slots

	// Per-set list state: MRU head, LRU tail, free-slot stack, live
	// count. -1 marks an empty list.
	head, tail, free, size []int32

	// Open-addressed page -> slot+1 index (0 = empty).
	idxKey  []uint64
	idxSlot []int32
	idxMask uint64
}

// newTLB builds the default fully-associative geometry.
func newTLB(capacity int) *tlb { return newSetAssocTLB(1, capacity) }

// newSetAssocTLB builds a sets x ways buffer; pages map to sets by
// page number modulo sets.
func newSetAssocTLB(sets, ways int) *tlb {
	n := sets * ways
	idxSize := 1
	for idxSize < 2*n {
		idxSize <<= 1
	}
	t := &tlb{
		sets: sets, ways: ways,
		keys: make([]uint64, n),
		prev: make([]int32, n),
		next: make([]int32, n),
		head: make([]int32, sets),
		tail: make([]int32, sets),
		free: make([]int32, sets),
		size: make([]int32, sets),

		idxKey:  make([]uint64, idxSize),
		idxSlot: make([]int32, idxSize),
		idxMask: uint64(idxSize - 1),
	}
	for s := 0; s < sets; s++ {
		t.head[s], t.tail[s] = -1, -1
		t.free[s] = int32(s * ways)
		for w := 0; w < ways; w++ {
			slot := s*ways + w
			t.next[slot] = int32(slot + 1)
			if w == ways-1 {
				t.next[slot] = -1
			}
		}
	}
	return t
}

func (t *tlb) hash(page uint64) uint64 {
	return (page * 0x9E3779B97F4A7C15) >> 32 & t.idxMask
}

// find resolves page to its slot through the index.
func (t *tlb) find(page uint64) (int32, bool) {
	for i := t.hash(page); t.idxSlot[i] != 0; i = (i + 1) & t.idxMask {
		if t.idxKey[i] == page {
			return t.idxSlot[i] - 1, true
		}
	}
	return 0, false
}

func (t *tlb) idxInsert(page uint64, slot int32) {
	i := t.hash(page)
	for t.idxSlot[i] != 0 {
		i = (i + 1) & t.idxMask
	}
	t.idxKey[i] = page
	t.idxSlot[i] = slot + 1
}

// idxDelete removes page's index entry, backward-shifting the probe
// run so linear probing never needs tombstones.
func (t *tlb) idxDelete(page uint64) {
	i := t.hash(page)
	for t.idxKey[i] != page || t.idxSlot[i] == 0 {
		i = (i + 1) & t.idxMask
	}
	for {
		t.idxSlot[i] = 0
		j := i
		for {
			j = (j + 1) & t.idxMask
			if t.idxSlot[j] == 0 {
				return
			}
			h := t.hash(t.idxKey[j])
			// Move j's entry into the hole at i only if its home
			// position lies cyclically outside (i, j] — otherwise the
			// entry is still reachable from its home and must stay.
			if i <= j && h <= i || h > j && (i <= j || h <= i) {
				t.idxKey[i], t.idxSlot[i] = t.idxKey[j], t.idxSlot[j]
				i = j
				break
			}
		}
	}
}

// listUnlink removes slot from set s's LRU list.
func (t *tlb) listUnlink(s int, slot int32) {
	if t.prev[slot] >= 0 {
		t.next[t.prev[slot]] = t.next[slot]
	} else {
		t.head[s] = t.next[slot]
	}
	if t.next[slot] >= 0 {
		t.prev[t.next[slot]] = t.prev[slot]
	} else {
		t.tail[s] = t.prev[slot]
	}
}

// listPushFront makes slot set s's MRU.
func (t *tlb) listPushFront(s int, slot int32) {
	t.prev[slot] = -1
	t.next[slot] = t.head[s]
	if t.head[s] >= 0 {
		t.prev[t.head[s]] = slot
	} else {
		t.tail[s] = slot
	}
	t.head[s] = slot
}

func (t *tlb) set(page uint64) int { return int(page % uint64(t.sets)) }

// evict drops set s's LRU entry, freeing its slot.
func (t *tlb) evict(s int) {
	victim := t.tail[s]
	t.idxDelete(t.keys[victim])
	t.listUnlink(s, victim)
	t.next[victim] = t.free[s]
	t.free[s] = victim
	t.size[s]--
}

func (t *tlb) lookup(page uint64) bool {
	slot, ok := t.find(page)
	if !ok {
		return false
	}
	s := int(slot) / t.ways
	if t.head[s] != slot {
		t.listUnlink(s, slot)
		t.listPushFront(s, slot)
	}
	return true
}

// insert fills page's set, evicting that set's LRU entry first when
// the set is full — including the degenerate re-insert-at-capacity
// case, where page itself is the LRU victim and cycles through a
// fresh slot, exactly as the stamp-based buffer behaved.
func (t *tlb) insert(page uint64) {
	s := t.set(page)
	if int(t.size[s]) >= t.ways {
		t.evict(s)
	}
	if slot, ok := t.find(page); ok {
		if t.head[s] != slot {
			t.listUnlink(s, slot)
			t.listPushFront(s, slot)
		}
		return
	}
	slot := t.free[s]
	t.free[s] = t.next[slot]
	t.keys[slot] = page
	t.idxInsert(page, slot)
	t.listPushFront(s, slot)
	t.size[s]++
}

// invalidate drops page if present.
func (t *tlb) invalidate(page uint64) {
	slot, ok := t.find(page)
	if !ok {
		return
	}
	s := int(slot) / t.ways
	t.idxDelete(page)
	t.listUnlink(s, slot)
	t.next[slot] = t.free[s]
	t.free[s] = slot
	t.size[s]--
}

// stateBytes reports the buffer's allocated footprint.
func (t *tlb) stateBytes() uint64 {
	n := uint64(len(t.keys))
	return n*8 + n*4*2 + uint64(len(t.head))*4*4 + uint64(len(t.idxKey))*12
}

// Unit is the shared MMU plus the per-SM L1 TLBs.
type Unit struct {
	eng *sim.Engine
	cfg config.MMU

	l1        []*tlb
	walkCache *tlb
	walkers   *sim.Pool

	// WalkLat is the full page-table walk latency charged on a
	// walk-cache miss. For ZnG platforms it is cfg.DBMTLatency (the
	// in-MMU block-mapping lookup); for baselines it is
	// WalkLevels*WalkMemLatency.
	WalkLat sim.Tick
	// WalkCacheLat is charged when the walk hits the page-walk cache.
	WalkCacheLat sim.Tick

	// Translate maps a virtual address to the platform's physical
	// address space. It must be set before use.
	Translate func(va uint64) uint64

	// Fault, if non-nil, is consulted on every translation; returning
	// true means the page is non-resident and resume will be invoked
	// by the platform when the fault is serviced (Hetero's host path).
	Fault func(va uint64, resume func()) bool

	// Statistics.
	L1Hits, L1Misses   stats.Counter
	WalkCacheHits      stats.Counter
	Walks              stats.Counter
	Faults             stats.Counter
	TranslationLatency stats.Histogram
}

// New creates an MMU for sms streaming multiprocessors. walkLat is the
// charge for a full walk (see Unit.WalkLat).
func New(eng *sim.Engine, cfg config.MMU, sms int, walkLat sim.Tick) *Unit {
	u := &Unit{
		eng:          eng,
		cfg:          cfg,
		walkCache:    newTLB(cfg.WalkCacheEnt),
		walkers:      sim.NewPool(eng, cfg.WalkerThreads),
		WalkLat:      walkLat,
		WalkCacheLat: 8,
	}
	for i := 0; i < sms; i++ {
		u.l1 = append(u.l1, newTLB(cfg.L1TLBEntries))
	}
	return u
}

// BaselineWalkLat returns the full-walk latency for page-table-in-
// memory platforms.
func BaselineWalkLat(cfg config.MMU) sim.Tick {
	return sim.Tick(cfg.WalkLevels) * cfg.WalkMemLatency
}

// Request translates va for the given SM and calls done with the
// physical address. Latency is charged per the TLB/walk/fault path.
func (u *Unit) Request(sm int, va uint64, done func(pa uint64)) {
	if u.Translate == nil {
		panic("mmu: Translate not configured")
	}
	page := va / PageBytes

	finish := func() {
		pa := u.Translate(va)
		done(pa)
	}

	withFault := func(after func()) {
		if u.Fault == nil {
			after()
			return
		}
		if u.Fault(va, after) {
			u.Faults.Inc()
			return // platform resumes us
		}
		after()
	}

	if u.l1[sm].lookup(page) {
		u.L1Hits.Inc()
		// A TLB hit still requires residency (Hetero can evict pages).
		withFault(func() { u.eng.Schedule(1, finish) })
		return
	}
	u.L1Misses.Inc()

	if u.walkCache.lookup(page) {
		u.WalkCacheHits.Inc()
		u.l1[sm].insert(page)
		withFault(func() { u.eng.Schedule(u.WalkCacheLat, finish) })
		return
	}

	// Full walk on one of the walker threads.
	u.Walks.Inc()
	u.walkers.Acquire(u.WalkLat, func() {
		u.walkCache.insert(page)
		u.l1[sm].insert(page)
		withFault(finish)
	})
}

// InvalidatePage drops a page from every TLB level (used when the
// Hetero platform evicts a resident page, and by the ZnG helper thread
// after garbage collection remaps blocks).
func (u *Unit) InvalidatePage(page uint64) {
	for _, t := range u.l1 {
		t.invalidate(page)
	}
	u.walkCache.invalidate(page)
}

// StateBytes reports the allocated footprint of every TLB level —
// the MMU's share of the translation state the scale sweep tracks.
func (u *Unit) StateBytes() uint64 {
	b := u.walkCache.stateBytes()
	for _, t := range u.l1 {
		b += t.stateBytes()
	}
	return b
}

// L1HitRate reports the aggregate L1 TLB hit rate.
func (u *Unit) L1HitRate() float64 {
	t := u.L1Hits.Value() + u.L1Misses.Value()
	if t == 0 {
		return 0
	}
	return float64(u.L1Hits.Value()) / float64(t)
}
