package mmu

import "testing"

// BenchmarkTLBLookup measures the L1-TLB hot path: a lookup stream
// over a working set 4x the TLB's capacity, inserting on every miss —
// the steady-state mix every simulated memory instruction pays.
func BenchmarkTLBLookup(b *testing.B) {
	for _, capacity := range []int{64, 1024} {
		b.Run(map[int]string{64: "l1-64", 1024: "walkcache-1024"}[capacity], func(b *testing.B) {
			t := newTLB(capacity)
			pages := make([]uint64, capacity*4)
			// Deterministic xorshift page stream (no math/rand, mirroring
			// the repo-wide determinism discipline even in benches).
			x := uint64(0x9E3779B97F4A7C15)
			for i := range pages {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				pages[i] = x % uint64(capacity*4)
			}
			for _, p := range pages {
				t.insert(p)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pages[i%len(pages)]
				if !t.lookup(p) {
					t.insert(p)
				}
			}
		})
	}
}
