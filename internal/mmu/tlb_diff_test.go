package mmu

import (
	"testing"

	"zng/internal/config"
	"zng/internal/rng"
	"zng/internal/sim"
)

// refTLB is the map-backed fully-associative LRU buffer the dense
// set-associative tlb replaced — kept as the differential-test
// reference. Unique monotonic stamps make its argmin victim exact
// LRU, so its observable behavior is deterministic despite the map.
type refTLB struct {
	cap     int
	clock   uint64
	entries map[uint64]uint64
}

func newRefTLB(capacity int) *refTLB {
	return &refTLB{cap: capacity, entries: make(map[uint64]uint64, capacity)}
}

func (t *refTLB) lookup(page uint64) bool {
	if _, ok := t.entries[page]; !ok {
		return false
	}
	t.clock++
	t.entries[page] = t.clock
	return true
}

func (t *refTLB) insert(page uint64) {
	t.clock++
	if len(t.entries) >= t.cap {
		var victim uint64
		oldest := ^uint64(0)
		for p, s := range t.entries {
			if s < oldest {
				oldest = s
				victim = p
			}
		}
		delete(t.entries, victim)
	}
	t.entries[page] = t.clock
}

func (t *refTLB) invalidate(page uint64) { delete(t.entries, page) }

// TestTLBDifferential drives the dense tlb and the map reference in
// lockstep through randomized lookup/insert/invalidate streams at
// several capacities, asserting every lookup agrees — including the
// capacity-1 and re-insert-at-capacity corner cases the replacement
// policy encodes.
func TestTLBDifferential(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 64, 257} {
		r := rng.New(uint64(0xD1F + capacity))
		dense := newTLB(capacity)
		ref := newRefTLB(capacity)
		pages := uint64(capacity)*3 + 1
		for op := 0; op < 20000; op++ {
			page := r.Uint64n(pages)
			switch r.Uint64n(10) {
			case 0:
				dense.invalidate(page)
				ref.invalidate(page)
			case 1, 2:
				dense.insert(page)
				ref.insert(page)
			default:
				got, want := dense.lookup(page), ref.lookup(page)
				if got != want {
					t.Fatalf("cap %d op %d: lookup(%d) = %v, reference says %v",
						capacity, op, page, got, want)
				}
				if !got {
					dense.insert(page)
					ref.insert(page)
				}
			}
		}
		// Final-state equivalence: exactly the same resident set.
		for p := uint64(0); p < pages; p++ {
			_, inRef := ref.entries[p]
			if _, inDense := dense.find(p); inDense != inRef {
				t.Fatalf("cap %d: page %d residency diverged (dense %v, ref %v)",
					capacity, p, inDense, inRef)
			}
		}
	}
}

// TestSetAssocTLBDifferential checks the genuinely set-associative
// geometries against a per-set reference model: each set must behave
// as an independent fully-associative LRU buffer over the pages that
// map to it.
func TestSetAssocTLBDifferential(t *testing.T) {
	for _, geom := range []struct{ sets, ways int }{{2, 1}, {2, 8}, {4, 16}, {8, 3}} {
		r := rng.New(uint64(geom.sets*100 + geom.ways))
		dense := newSetAssocTLB(geom.sets, geom.ways)
		refs := make([]*refTLB, geom.sets)
		for s := range refs {
			refs[s] = newRefTLB(geom.ways)
		}
		pages := uint64(geom.sets*geom.ways) * 3
		for op := 0; op < 20000; op++ {
			page := r.Uint64n(pages)
			ref := refs[page%uint64(geom.sets)]
			switch r.Uint64n(10) {
			case 0:
				dense.invalidate(page)
				ref.invalidate(page)
			default:
				got, want := dense.lookup(page), ref.lookup(page)
				if got != want {
					t.Fatalf("%dx%d op %d: lookup(%d) = %v, reference says %v",
						geom.sets, geom.ways, op, page, got, want)
				}
				if !got {
					dense.insert(page)
					ref.insert(page)
				}
			}
		}
	}
}

// TestUnitCountersDifferential replays a randomized translation
// stream through a real Unit (requests serialized so in-flight walks
// cannot reorder inserts) and mirrors the decision tree over
// reference TLBs, asserting the hit/miss/walk counters agree — the
// counters every figure's TLBHitRate column is built from.
func TestUnitCountersDifferential(t *testing.T) {
	eng := sim.NewEngine()
	cfg := config.Default().MMU
	cfg.L1TLBEntries = 4
	cfg.WalkCacheEnt = 8
	u := New(eng, cfg, 2, 100)
	u.Translate = func(va uint64) uint64 { return va }

	l1 := []*refTLB{newRefTLB(4), newRefTLB(4)}
	walk := newRefTLB(8)
	var wantL1Hits, wantL1Misses, wantWalkHits, wantWalks uint64

	r := rng.New(42)
	for op := 0; op < 5000; op++ {
		sm := int(r.Uint64n(2))
		va := r.Uint64n(64) * PageBytes
		page := va / PageBytes
		done := false
		u.Request(sm, va, func(uint64) { done = true })
		eng.Run()
		if !done {
			t.Fatalf("op %d: translation never completed", op)
		}
		switch {
		case l1[sm].lookup(page):
			wantL1Hits++
		case func() bool { wantL1Misses++; return walk.lookup(page) }():
			wantWalkHits++
			l1[sm].insert(page)
		default:
			wantWalks++
			walk.insert(page)
			l1[sm].insert(page)
		}
	}
	if u.L1Hits.Value() != wantL1Hits || u.L1Misses.Value() != wantL1Misses ||
		u.WalkCacheHits.Value() != wantWalkHits || u.Walks.Value() != wantWalks {
		t.Fatalf("counters diverged: unit (h=%d m=%d wc=%d w=%d), reference (h=%d m=%d wc=%d w=%d)",
			u.L1Hits.Value(), u.L1Misses.Value(), u.WalkCacheHits.Value(), u.Walks.Value(),
			wantL1Hits, wantL1Misses, wantWalkHits, wantWalks)
	}
}
