package mmu

import (
	"testing"

	"zng/internal/config"
	"zng/internal/sim"
)

func newUnit(eng *sim.Engine, walkLat sim.Tick) *Unit {
	cfg := config.Default().MMU
	u := New(eng, cfg, 2, walkLat)
	u.Translate = func(va uint64) uint64 { return va + 0x1000_0000 }
	return u
}

func TestTranslationMissThenHit(t *testing.T) {
	eng := sim.NewEngine()
	u := newUnit(eng, 400)
	var pa uint64
	u.Request(0, 0x4000, func(p uint64) { pa = p })
	eng.Run()
	missTime := eng.Now()
	if pa != 0x4000+0x1000_0000 {
		t.Fatalf("pa = %x", pa)
	}
	if missTime < 400 {
		t.Errorf("walk completed at %d, want >= 400", missTime)
	}
	if u.Walks.Value() != 1 {
		t.Errorf("walks = %d", u.Walks.Value())
	}

	start := eng.Now()
	u.Request(0, 0x4008, func(p uint64) { pa = p }) // same page: L1 TLB hit
	eng.Run()
	if eng.Now()-start > 5 {
		t.Errorf("TLB hit took %d ticks", eng.Now()-start)
	}
	if u.L1Hits.Value() != 1 {
		t.Errorf("l1 hits = %d", u.L1Hits.Value())
	}
}

func TestWalkCacheSharedAcrossSMs(t *testing.T) {
	eng := sim.NewEngine()
	u := newUnit(eng, 400)
	u.Request(0, 0x8000, func(uint64) {})
	eng.Run()
	start := eng.Now()
	// SM 1 misses its own L1 TLB but hits the shared walk cache.
	u.Request(1, 0x8000, func(uint64) {})
	eng.Run()
	if u.WalkCacheHits.Value() != 1 {
		t.Errorf("walk cache hits = %d, want 1", u.WalkCacheHits.Value())
	}
	if d := eng.Now() - start; d < 5 || d >= 400 {
		t.Errorf("walk-cache path took %d, want between L1 hit and full walk", d)
	}
}

func TestWalkerConcurrencyLimit(t *testing.T) {
	eng := sim.NewEngine()
	cfg := config.Default().MMU
	cfg.WalkerThreads = 2
	u := New(eng, cfg, 1, 100)
	u.Translate = func(va uint64) uint64 { return va }
	done := 0
	for i := 0; i < 4; i++ {
		u.Request(0, uint64(i)<<12<<8, func(uint64) { done++ }) // distinct pages
	}
	eng.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	// 4 walks on 2 threads of 100 ticks: finish at 200, not 100.
	if eng.Now() < 200 {
		t.Errorf("4 walks finished at %d; concurrency limit not enforced", eng.Now())
	}
}

func TestDBMTFastWalk(t *testing.T) {
	// ZnG mode: walk latency is the 4-cycle DBMT lookup.
	eng := sim.NewEngine()
	u := newUnit(eng, config.Default().MMU.DBMTLatency)
	u.Request(0, 0xA000, func(uint64) {})
	eng.Run()
	if eng.Now() > 20 {
		t.Errorf("DBMT walk took %d ticks, want a handful", eng.Now())
	}
}

func TestL1TLBEviction(t *testing.T) {
	eng := sim.NewEngine()
	cfg := config.Default().MMU
	cfg.L1TLBEntries = 2
	cfg.WalkCacheEnt = 2
	u := New(eng, cfg, 1, 50)
	u.Translate = func(va uint64) uint64 { return va }
	for i := 0; i < 3; i++ { // 3 pages through a 2-entry TLB
		u.Request(0, uint64(i)*PageBytes, func(uint64) {})
		eng.Run()
	}
	u.Request(0, 0, func(uint64) {}) // page 0 evicted from both TLB and walk cache
	eng.Run()
	if u.Walks.Value() != 4 {
		t.Errorf("walks = %d, want 4 (page 0 re-walked)", u.Walks.Value())
	}
}

func TestFaultPath(t *testing.T) {
	eng := sim.NewEngine()
	u := newUnit(eng, 10)
	resident := map[uint64]bool{}
	var pending []func()
	u.Fault = func(va uint64, resume func()) bool {
		if resident[va/PageBytes] {
			return false
		}
		pending = append(pending, func() {
			resident[va/PageBytes] = true
			resume()
		})
		return true
	}
	done := false
	u.Request(0, 0xC000, func(uint64) { done = true })
	eng.Run()
	if done {
		t.Fatal("request completed without fault service")
	}
	if u.Faults.Value() != 1 {
		t.Fatalf("faults = %d", u.Faults.Value())
	}
	// Service the fault.
	for _, f := range pending {
		f()
	}
	eng.Run()
	if !done {
		t.Fatal("request did not resume after fault service")
	}
}

func TestInvalidatePage(t *testing.T) {
	eng := sim.NewEngine()
	u := newUnit(eng, 100)
	u.Request(0, 0xE000, func(uint64) {})
	eng.Run()
	u.InvalidatePage(0xE000 / PageBytes)
	u.Request(0, 0xE000, func(uint64) {})
	eng.Run()
	if u.Walks.Value() != 2 {
		t.Errorf("walks = %d, want 2 after invalidate", u.Walks.Value())
	}
}

func TestL1HitRate(t *testing.T) {
	eng := sim.NewEngine()
	u := newUnit(eng, 10)
	u.Request(0, 0, func(uint64) {})
	eng.Run()
	for i := 0; i < 3; i++ {
		u.Request(0, uint64(i*8), func(uint64) {})
		eng.Run()
	}
	if hr := u.L1HitRate(); hr != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", hr)
	}
}
