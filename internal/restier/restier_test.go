package restier

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"zng/internal/platform"
	"zng/internal/store"
)

func res(ipc float64) platform.Result {
	return platform.Result{Kind: platform.ZnG, Workload: "test", IPC: ipc}
}

// TestLRUTable drives the cache through scripted op sequences and
// checks the survivors, the eviction order and the counters — the
// core LRU contract in one table.
func TestLRUTable(t *testing.T) {
	type op struct {
		verb string // "put" or "get"
		key  string
		hit  bool // for get: expected outcome
	}
	for name, tc := range map[string]struct {
		cap      int
		ops      []op
		wantLRU  []string // resident keys, least-recent first
		wantHits uint64
		wantMiss uint64
		wantEvic uint64
	}{
		"fills to capacity": {
			cap:     3,
			ops:     []op{{verb: "put", key: "a"}, {verb: "put", key: "b"}, {verb: "put", key: "c"}},
			wantLRU: []string{"a", "b", "c"},
		},
		"capacity enforced oldest-first": {
			cap: 2,
			ops: []op{
				{verb: "put", key: "a"}, {verb: "put", key: "b"}, {verb: "put", key: "c"},
			},
			wantLRU:  []string{"b", "c"},
			wantEvic: 1,
		},
		"get promotes against eviction": {
			cap: 2,
			ops: []op{
				{verb: "put", key: "a"}, {verb: "put", key: "b"},
				{verb: "get", key: "a", hit: true}, // a is now most recent
				{verb: "put", key: "c"},            // evicts b, not a
			},
			wantLRU:  []string{"a", "c"},
			wantHits: 1,
			wantEvic: 1,
		},
		"re-put refreshes recency without eviction": {
			cap: 2,
			ops: []op{
				{verb: "put", key: "a"}, {verb: "put", key: "b"},
				{verb: "put", key: "a"}, // refresh, no new entry
				{verb: "put", key: "c"}, // evicts b
			},
			wantLRU:  []string{"a", "c"},
			wantEvic: 1,
		},
		"misses counted, nothing resident lost": {
			cap: 2,
			ops: []op{
				{verb: "get", key: "a", hit: false},
				{verb: "put", key: "a"},
				{verb: "get", key: "a", hit: true},
				{verb: "get", key: "zzz", hit: false},
			},
			wantLRU:  []string{"a"},
			wantHits: 1,
			wantMiss: 2,
		},
		"eviction order follows access order": {
			cap: 3,
			ops: []op{
				{verb: "put", key: "a"}, {verb: "put", key: "b"}, {verb: "put", key: "c"},
				{verb: "get", key: "b", hit: true},
				{verb: "get", key: "a", hit: true},
				// recency now c < b < a; two inserts evict c then b.
				{verb: "put", key: "d"}, {verb: "put", key: "e"},
			},
			wantLRU:  []string{"a", "d", "e"},
			wantHits: 2,
			wantEvic: 2,
		},
	} {
		t.Run(name, func(t *testing.T) {
			c := NewCache(tc.cap)
			for i, o := range tc.ops {
				switch o.verb {
				case "put":
					c.Put(o.key, res(float64(i+1)))
				case "get":
					if _, _, ok := c.Get(o.key); ok != o.hit {
						t.Fatalf("op %d: Get(%q) hit = %v, want %v", i, o.key, ok, o.hit)
					}
				}
			}
			if got := fmt.Sprint(c.keysLRU()); got != fmt.Sprint(tc.wantLRU) {
				t.Errorf("resident (LRU first) = %v, want %v", c.keysLRU(), tc.wantLRU)
			}
			st := c.Stats()
			if st.Hits != tc.wantHits || st.Misses != tc.wantMiss || st.Evictions != tc.wantEvic {
				t.Errorf("stats = %+v, want hits %d, misses %d, evictions %d",
					st, tc.wantHits, tc.wantMiss, tc.wantEvic)
			}
			if st.Entries != len(tc.wantLRU) || c.Len() != len(tc.wantLRU) {
				t.Errorf("entries = %d (Len %d), want %d", st.Entries, c.Len(), len(tc.wantLRU))
			}
			if st.Entries > st.Capacity {
				t.Errorf("entries %d exceed capacity %d", st.Entries, st.Capacity)
			}
		})
	}
}

// TestLRUValuesSurviveIntact: the cache returns the exact Result that
// was put under the key, even after promotions and unrelated
// evictions.
func TestLRUValuesSurviveIntact(t *testing.T) {
	c := NewCache(2)
	a := platform.Result{Kind: platform.ZnG, Workload: "w-a", IPC: 1.25, Insts: 77}
	c.Put("a", a)
	c.Put("b", res(2))
	c.Put("c", res(3)) // nothing forces a's value to change
	c.Put("a", a)      // may re-insert after eviction; value must match
	got, _, ok := c.Get("a")
	if !ok {
		t.Fatal("a not resident")
	}
	if got.IPC != a.IPC || got.Insts != a.Insts || got.Workload != a.Workload {
		t.Errorf("cached value mutated: %+v != %+v", got, a)
	}
}

// TestNewCacheRejectsNonPositiveCapacity pins the constructor
// contract (the serving layer gates capacity 0 to "no tier" itself).
func TestNewCacheRejectsNonPositiveCapacity(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%d) did not panic", n)
				}
			}()
			NewCache(n)
		}()
	}
}

// TestCacheChurnRace hammers Get/Put/Stats over a capacity far
// smaller than the key space from many goroutines — modeled on
// simsvc's TestDoSurvivesEvictionChurn — so -race sees every
// interleaving of promotion and eviction, and the invariants
// (bounded residency, hits+misses == gets, values intact) hold after
// the dust settles.
func TestCacheChurnRace(t *testing.T) {
	const (
		capacity   = 8
		keySpace   = 64
		goroutines = 8
		iters      = 2000
	)
	c := NewCache(capacity)
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			gets := uint64(0)
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("cell-%d", (g*7+i)%keySpace)
				want := float64((g*7+i)%keySpace + 1)
				if i%3 == 0 {
					c.Put(key, res(want))
					continue
				}
				gets++
				if r, _, ok := c.Get(key); ok && r.IPC != want {
					errs <- fmt.Sprintf("Get(%q) = IPC %v, want %v (value crossed keys)", key, r.IPC, want)
					return
				}
				if i%100 == 0 {
					if st := c.Stats(); st.Entries > capacity {
						errs <- fmt.Sprintf("entries %d exceed capacity %d mid-churn", st.Entries, capacity)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	st := c.Stats()
	if st.Entries > capacity || c.Len() > capacity {
		t.Errorf("final entries = %d, want ≤ %d", st.Entries, capacity)
	}
	if st.Evictions == 0 {
		t.Error("churn produced no evictions; the test exercised nothing")
	}
	if st.Hits+st.Misses == 0 {
		t.Error("churn recorded no lookups")
	}
	// The recency list and the map agree about residency.
	if got := len(c.keysLRU()); got != st.Entries {
		t.Errorf("recency list has %d entries, map has %d", got, st.Entries)
	}
}

// TestTieredResolution walks the memory → disk → miss ladder: a cold
// key misses both tiers, a stored key is a disk hit that promotes
// into memory, and the promoted key is a memory hit thereafter.
func TestTieredResolution(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(4, st)

	if _, _, tier := tiered.Get("cold"); tier != TierNone {
		t.Fatalf("cold key resolved from %v", tier)
	}
	if err := st.Put("warm", res(3)); err != nil {
		t.Fatal(err)
	}
	r, _, tier := tiered.Get("warm")
	if tier != TierDisk || r.IPC != 3 {
		t.Fatalf("stored key = %v from %v, want IPC 3 from disk", r.IPC, tier)
	}
	r, _, tier = tiered.Get("warm")
	if tier != TierMemory || r.IPC != 3 {
		t.Fatalf("second lookup = %v from %v, want IPC 3 from memory (read-through promotion)", r.IPC, tier)
	}
	cs := tiered.CacheStats()
	if cs.Hits != 1 || cs.Entries != 1 {
		t.Errorf("cache stats = %+v, want 1 hit, 1 entry", cs)
	}

	// Put writes through both tiers: resident in memory and on disk.
	if !tiered.Put("fresh", res(9)) {
		t.Fatal("Put with a store reported not persisted")
	}
	if _, ok := st.Get("fresh"); !ok {
		t.Error("Put did not reach the disk tier")
	}
	if r, _, tier := tiered.Get("fresh"); tier != TierMemory || r.IPC != 9 {
		t.Errorf("fresh = %v from %v, want memory", r.IPC, tier)
	}
}

// TestTieredDegradedLayers: a memory-only tier never touches disk and
// never reports persisted; a disk-only tier (capacity 0) serves every
// hit from the store.
func TestTieredDegradedLayers(t *testing.T) {
	memOnly := NewTiered(2, nil)
	if memOnly.Put("k", res(1)) {
		t.Error("store-less Put reported persisted")
	}
	if r, _, tier := memOnly.Get("k"); tier != TierMemory || r.IPC != 1 {
		t.Errorf("memory-only Get = %v from %v", r.IPC, tier)
	}
	if _, _, tier := memOnly.Get("absent"); tier != TierNone {
		t.Error("memory-only miss did not report TierNone")
	}
	if memOnly.Store() != nil {
		t.Error("memory-only tier claims a store")
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	diskOnly := NewTiered(0, st)
	if !diskOnly.Put("k", res(2)) {
		t.Fatal("disk-only Put did not persist")
	}
	for i := 0; i < 2; i++ {
		if r, _, tier := diskOnly.Get("k"); tier != TierDisk || r.IPC != 2 {
			t.Fatalf("disk-only lookup %d = %v from %v, want disk every time", i, r.IPC, tier)
		}
	}
	if _, _, ok := diskOnly.GetMem("k"); ok {
		t.Error("disk-only tier answered from a memory tier it does not have")
	}
	if cs := diskOnly.CacheStats(); cs != (CacheStats{}) {
		t.Errorf("disk-only cache stats = %+v, want zeroes", cs)
	}
}

// TestTieredPersistFailure: when the disk write fails, Put reports
// unpersisted but the memory tier still serves the value — degraded
// durability, intact serving.
func TestTieredPersistFailure(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(2, st)
	// Make the directory unwritable so the store's temp-file create
	// fails.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions do not bind")
	}
	if tiered.Put("k", res(4)) {
		t.Fatal("Put into an unwritable store reported persisted")
	}
	if r, _, tier := tiered.Get("k"); tier != TierMemory || r.IPC != 4 {
		t.Errorf("after failed persist: %v from %v, want memory serve", r.IPC, tier)
	}
}

// TestNegativeCaching: a cached deterministic failure is a first-class
// LRU entry — replayed verbatim as a typed *Negative on later Gets,
// counted by the Negatives gauge, convertible back to a result entry
// by a plain Put, and subject to the same eviction as everything else.
func TestNegativeCaching(t *testing.T) {
	c := NewCache(2)
	c.PutNegative("bad", "zng: 99 apps exceed 64 SMs")

	r, err, ok := c.Get("bad")
	if !ok {
		t.Fatal("negative entry not resident")
	}
	var neg *Negative
	if !errors.As(err, &neg) || neg.Msg != "zng: 99 apps exceed 64 SMs" {
		t.Fatalf("Get(bad) err = %v, want *Negative with original text", err)
	}
	if r.IPC != 0 || r.Workload != "" {
		t.Errorf("negative entry carries a non-zero result: %+v", r)
	}
	if st := c.Stats(); st.Negatives != 1 || st.Entries != 1 || st.Hits != 1 {
		t.Errorf("stats after negative hit = %+v, want 1 negative, 1 entry, 1 hit", st)
	}

	// A Put over the negative converts it; the gauge drops.
	c.Put("bad", res(7))
	if r, err, ok := c.Get("bad"); !ok || err != nil || r.IPC != 7 {
		t.Fatalf("after convert: res %v err %v ok %v, want IPC 7, nil, true", r.IPC, err, ok)
	}
	if st := c.Stats(); st.Negatives != 0 {
		t.Errorf("negatives gauge = %d after convert, want 0", st.Negatives)
	}

	// And back: PutNegative over a result entry raises it again.
	c.PutNegative("bad", "still bad")
	if st := c.Stats(); st.Negatives != 1 {
		t.Errorf("negatives gauge = %d after re-negation, want 1", st.Negatives)
	}

	// Eviction of a negative entry decrements the gauge.
	c.Put("x", res(1))
	c.Put("y", res(2)) // capacity 2: evicts the LRU ("bad")
	if _, _, ok := c.Get("bad"); ok {
		t.Fatal("negative entry survived eviction pressure")
	}
	if st := c.Stats(); st.Negatives != 0 {
		t.Errorf("negatives gauge = %d after eviction, want 0", st.Negatives)
	}
}

// TestTieredNegatives: negatives live only in the memory tier — a
// Tiered.PutNegative never reaches the disk store, a memory hit
// carries the error, and a tier without a memory layer drops the
// negative silently (the caller just re-simulates).
func TestTieredNegatives(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(4, st)
	tiered.PutNegative("bad", "boom")

	r, gerr, tier := tiered.Get("bad")
	var neg *Negative
	if tier != TierMemory || !errors.As(gerr, &neg) || neg.Msg != "boom" {
		t.Fatalf("Get(bad) = (%v, %v, %v), want negative from memory", r, gerr, tier)
	}
	if _, ok := st.Get("bad"); ok {
		t.Error("negative entry leaked into the disk store")
	}
	if cs := tiered.CacheStats(); cs.Negatives != 1 {
		t.Errorf("tier negatives gauge = %d, want 1", cs.Negatives)
	}

	diskOnly := NewTiered(0, st)
	diskOnly.PutNegative("bad", "boom") // no memory tier: dropped
	if _, gerr, tier := diskOnly.Get("bad"); tier != TierNone || gerr != nil {
		t.Errorf("disk-only tier served a negative it cannot hold: %v from %v", gerr, tier)
	}
}

// TestTierString pins the metric/source spellings.
func TestTierString(t *testing.T) {
	for tier, want := range map[Tier]string{TierNone: "none", TierMemory: "memory", TierDisk: "disk"} {
		if got := tier.String(); got != want {
			t.Errorf("Tier(%d).String() = %q, want %q", tier, got, want)
		}
	}
}
