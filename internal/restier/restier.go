// Package restier is the serving hot path's result tier: an
// in-memory, capacity-bounded LRU of decoded result documents keyed
// by the content address of their simulation cell (internal/cellkey),
// fronting the persistent disk store (internal/store) the way the
// FlashX/SAFS page cache fronts SSD-resident graph data — a light
// memory tier over slow stable storage that magnifies serving
// throughput for the hot working set.
//
// The tier never changes what is served, only where from: every entry
// is the exact platform.Result the store (or a fresh simulation)
// produced, so a cell answered from memory, from disk, or by
// simulating encodes byte-identically (report.EncodeResult) at every
// tier — the determinism contract the whole store design leans on.
// Lookups resolve memory first, then disk (a disk hit is promoted
// into the memory tier read-through), and report which tier answered
// so the serving layer can account mem_hits/disk_hits/evictions.
package restier

import (
	"sync"

	"zng/internal/platform"
	"zng/internal/store"
)

// CacheStats counts how the memory tier behaved. Counters only grow;
// Entries/Capacity/Negatives are gauges.
type CacheStats struct {
	// Hits counts Gets answered from memory (positive or negative).
	Hits uint64
	// Misses counts Gets the memory tier could not answer.
	Misses uint64
	// Evictions counts entries dropped to make room at capacity.
	Evictions uint64
	// Entries is the current resident entry count (≤ Capacity),
	// negative entries included.
	Entries int
	// Negatives is the resident negative-entry count (≤ Entries).
	Negatives int
	// Capacity is the configured bound.
	Capacity int
}

// Negative is a cached deterministic simulation failure. A simulation
// is a pure function of its cell, so a cell that failed once fails
// identically forever (apps exceeding SMs, a degenerate
// configuration): re-simulating it on every request only burns a
// worker. The tier caches the failure as a typed entry whose message
// is exactly the original error text, so repeat requests are served
// from memory and callers can still tell a cached failure from a
// fresh one with errors.As.
type Negative struct {
	// Msg is the original error's text, replayed verbatim.
	Msg string
}

func (e *Negative) Error() string { return e.Msg }

// entry is one resident cell, a node of the intrusive LRU list. err
// is nil for result entries and a *Negative for cached failures
// (whose res is the zero Result).
type entry struct {
	key        string
	res        platform.Result
	err        error
	prev, next *entry
}

// Cache is a concurrency-safe LRU of decoded result documents keyed
// by cell content address. A Get promotes its entry to
// most-recently-used; a Put past capacity evicts the least-recently
// used entry. All methods are O(1).
type Cache struct {
	mu    sync.Mutex
	cap   int
	items map[string]*entry // guarded by mu
	// head/tail delimit the recency list: head is most recent, tail
	// least. Both are nil when empty. guarded by mu.
	head, tail *entry
	hits       uint64 // guarded by mu
	misses     uint64 // guarded by mu
	evictions  uint64 // guarded by mu
	negatives  int    // guarded by mu
}

// NewCache returns an LRU bounded to capacity entries. Capacity must
// be positive; sizing is in entries, not bytes, because result
// documents are small and near-uniform (a flat struct plus a bounded
// extras map).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		panic("restier: cache capacity must be positive")
	}
	return &Cache{cap: capacity, items: make(map[string]*entry, capacity)}
}

// Get returns the entry for key and promotes it to most-recently-used.
// A cached failure comes back as a non-nil *Negative error with ok
// true; the zero Result with ok false is a miss.
func (c *Cache) Get(key string) (platform.Result, error, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses++
		return platform.Result{}, nil, false
	}
	c.hits++
	c.moveToFrontLocked(e)
	return e.res, e.err, true
}

// Put inserts (or refreshes) the entry for key as most-recently-used,
// evicting the least-recently-used entry if the cache is full. A Put
// over a negative entry converts it to a result entry.
func (c *Cache) Put(key string, res platform.Result) {
	c.put(key, res, nil)
}

// PutNegative caches a deterministic failure for key: later Gets for
// the same cell replay the error without simulating. Negative entries
// live only in the memory tier — they obey the same LRU bound and
// eviction as result entries, and never reach the disk store.
func (c *Cache) PutNegative(key, msg string) {
	c.put(key, platform.Result{}, &Negative{Msg: msg})
}

// put is the shared insert path behind Put and PutNegative.
func (c *Cache) put(key string, res platform.Result, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		if (e.err != nil) != (err != nil) {
			if err != nil {
				c.negatives++
			} else {
				c.negatives--
			}
		}
		e.res, e.err = res, err
		c.moveToFrontLocked(e)
		return
	}
	if len(c.items) >= c.cap {
		lru := c.tail
		c.unlinkLocked(lru)
		delete(c.items, lru.key)
		if lru.err != nil {
			c.negatives--
		}
		c.evictions++
	}
	e := &entry{key: key, res: res, err: err}
	c.items[key] = e
	c.pushFrontLocked(e)
	if err != nil {
		c.negatives++
	}
}

// Len reports the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats snapshots the counters and gauges.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.items),
		Negatives: c.negatives,
		Capacity:  c.cap,
	}
}

// keysLRU returns the resident keys least-recent first — test and
// diagnostics helper, O(n).
func (c *Cache) keysLRU() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.items))
	for e := c.tail; e != nil; e = e.prev {
		keys = append(keys, e.key)
	}
	return keys
}

// moveToFrontLocked promotes e to most-recently-used. Caller holds mu.
func (c *Cache) moveToFrontLocked(e *entry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

// unlinkLocked removes e from the recency list. Caller holds mu.
func (c *Cache) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFrontLocked inserts e at the most-recent end. Caller holds mu.
func (c *Cache) pushFrontLocked(e *entry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Tier names which layer answered a lookup.
type Tier int

const (
	// TierNone: no tier holds the cell; the caller must simulate.
	TierNone Tier = iota
	// TierMemory: answered by the in-memory LRU.
	TierMemory
	// TierDisk: answered by the persistent store (and promoted into
	// memory).
	TierDisk
)

// String names the tier the way job sources and metrics spell it.
func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	}
	return "none"
}

// Tiered composes the memory tier over the persistent store. Either
// layer may be absent (a nil-cache Tiered is disk-only; a nil-store
// Tiered is memory-only), so the serving layer configures tiers
// without branching at every lookup.
type Tiered struct {
	cache *Cache       // nil: no memory tier
	st    *store.Store // nil: no disk tier
}

// NewTiered builds the tier stack: a memory LRU of capacity entries
// (0 disables the memory tier) over st (nil disables the disk tier).
func NewTiered(capacity int, st *store.Store) *Tiered {
	t := &Tiered{st: st}
	if capacity > 0 {
		t.cache = NewCache(capacity)
	}
	return t
}

// Get resolves key memory-first, then disk. A disk hit is promoted
// into the memory tier so the next lookup stays off the disk. The
// returned Tier says which layer answered (TierNone on a full miss);
// a memory hit may carry a cached failure as a non-nil *Negative
// error (only the memory tier holds negatives — the disk store keeps
// results exclusively).
func (t *Tiered) Get(key string) (platform.Result, error, Tier) {
	if r, err, ok := t.GetMem(key); ok {
		return r, err, TierMemory
	}
	if t.st != nil {
		if r, ok := t.st.Get(key); ok {
			if t.cache != nil {
				t.cache.Put(key, r)
			}
			return r, nil, TierDisk
		}
	}
	return platform.Result{}, nil, TierNone
}

// GetMem consults only the memory tier — the non-blocking lookup the
// admission path uses (a disk read must never run under the service
// lock).
func (t *Tiered) GetMem(key string) (platform.Result, error, bool) {
	if t.cache == nil {
		return platform.Result{}, nil, false
	}
	return t.cache.Get(key)
}

// Put writes key through every present tier and reports whether the
// disk tier has it (false with no store, or when the store write
// failed — the memory tier still serves the entry either way, it just
// cannot outlive the process).
func (t *Tiered) Put(key string, res platform.Result) bool {
	persisted := false
	if t.st != nil {
		persisted = t.st.Put(key, res) == nil
	}
	if t.cache != nil {
		t.cache.Put(key, res)
	}
	return persisted
}

// PutNegative caches a deterministic failure in the memory tier (a
// no-op without one). Negatives never reach the disk store: an error
// string is cheap to recompute relative to a simulation and must not
// pollute the content-addressed result layout, so a restart simply
// rediscovers the failure once.
func (t *Tiered) PutNegative(key, msg string) {
	if t.cache != nil {
		t.cache.PutNegative(key, msg)
	}
}

// Store exposes the disk tier (nil when memory-only).
func (t *Tiered) Store() *store.Store { return t.st }

// CacheStats snapshots the memory tier's counters (zero-valued with
// no memory tier, so /metrics can always publish the gauges).
func (t *Tiered) CacheStats() CacheStats {
	if t.cache == nil {
		return CacheStats{}
	}
	return t.cache.Stats()
}
