package restier

import (
	"fmt"
	"testing"

	"zng/internal/platform"
	"zng/internal/store"
)

// benchResult is a representative result document: the flat scalar
// fields plus the slice/map extras a real platform run carries, so
// the disk tier pays a realistic decode.
func benchResult() platform.Result {
	r := platform.Result{
		Kind: platform.ZnG, Workload: "betw-back", IPC: 1.8342, Cycles: 1 << 22,
		Insts: 9_500_000, FlashReadGBps: 61.2, FlashWriteGBps: 7.9,
		L2HitRate: 0.82, TLBHitRate: 0.97,
		PlaneWrites: make([]uint64, 128),
		Extra:       map[string]float64{"prefetch_issued": 1821, "prefetch_wasted": 204},
	}
	for i := range r.PlaneWrites {
		r.PlaneWrites[i] = uint64(i * 37)
	}
	return r
}

// BenchmarkTieredLookup compares the serving cost of a hit at each
// tier: the memory LRU versus the persistent store (file read + JSON
// decode per hit). The gap is the reason the tier exists — the memory
// path must be well over 5x cheaper than the disk path it shields.
func BenchmarkTieredLookup(b *testing.B) {
	const cells = 64
	r := benchResult()

	b.Run("memory", func(b *testing.B) {
		tiered := NewTiered(cells, nil)
		for i := 0; i < cells; i++ {
			tiered.Put(fmt.Sprintf("cell-%d", i), r)
		}
		keys := make([]string, cells)
		for i := range keys {
			keys[i] = fmt.Sprintf("cell-%d", i)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, _, tier := tiered.Get(keys[i%cells])
			if tier != TierMemory || res.IPC != r.IPC {
				b.Fatal("memory tier missed")
			}
		}
	})

	b.Run("disk", func(b *testing.B) {
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		// Capacity 0: no memory tier, every hit pays the store read —
		// the pre-tier serving path.
		tiered := NewTiered(0, st)
		keys := make([]string, cells)
		for i := range keys {
			keys[i] = fmt.Sprintf("cell-%d", i)
			tiered.Put(keys[i], r)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, _, tier := tiered.Get(keys[i%cells])
			if tier != TierDisk || res.IPC != r.IPC {
				b.Fatal("disk tier missed")
			}
		}
	})
}

// BenchmarkCacheChurn measures Put+Get over a key space larger than
// capacity — the steady-state cost of the LRU under eviction
// pressure.
func BenchmarkCacheChurn(b *testing.B) {
	const capacity, keySpace = 256, 1024
	c := NewCache(capacity)
	r := benchResult()
	keys := make([]string, keySpace)
	for i := range keys {
		keys[i] = fmt.Sprintf("cell-%d", i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := keys[i%keySpace]
		if _, _, ok := c.Get(k); !ok {
			c.Put(k, r)
		}
	}
}
