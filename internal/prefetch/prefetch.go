// Package prefetch implements ZnG's dynamic read-prefetch module
// (Section IV-B, Fig. 8a): a PC-indexed predictor table that detects
// warps streaming through flash pages, a cutoff test deciding when an
// L2 miss should pull more of the already-sensed flash page into the
// STT-MRAM L2, and an access monitor that watches prefetch waste
// through the L2 tag-array extension bits and adjusts the prefetch
// granularity (halve above the high waste threshold, grow by 1 KB
// below the low one; the paper's sweep lands on 0.3 / 0.05).
//
// The unit is pure decision logic: the platform wires it to the L2's
// OnDemandMiss and OnEvict hooks and performs the actual flash
// fetches, so the same unit drives any backend.
package prefetch

import (
	"zng/internal/cache"
	"zng/internal/config"
	"zng/internal/mem"
	"zng/internal/stats"
)

// PageBytes is the flash page size whose spatial locality the
// predictor tracks.
const PageBytes = 4096

type warpSlot struct {
	warp int
	page uint64
	used bool
}

type entry struct {
	pc      uint64
	valid   bool
	counter int
	slots   []warpSlot
}

// Unit is the dynamic read-prefetch module.
type Unit struct {
	cfg   config.Prefetch
	table []entry
	gran  int
	cmax  int

	// Access-monitor window state.
	evicted int
	unused  int

	// Statistics.
	Issued      stats.Counter // prefetch decisions taken
	Decisions   stats.Counter // cutoff tests performed
	Grows       stats.Counter
	Shrinks     stats.Counter
	WasteRatios stats.Histogram
}

// New builds a unit with the Table/Section IV-B configuration.
func New(cfg config.Prefetch) *Unit {
	u := &Unit{
		cfg:   cfg,
		table: make([]entry, cfg.TableEntries),
		gran:  cfg.InitialBytes,
		cmax:  1<<cfg.CounterBits - 1,
	}
	u.WasteRatios = *stats.NewHistogram(0.05, 0.1, 0.2, 0.3, 0.5, 0.8)
	return u
}

// Granularity reports the current prefetch extent in bytes.
func (u *Unit) Granularity() int { return u.gran }

func (u *Unit) entryFor(pc uint64) *entry {
	idx := (pc ^ pc>>9 ^ pc>>18) % uint64(len(u.table))
	return &u.table[idx]
}

// OnMiss observes an L2 demand read miss, updates the predictor, and
// runs the cutoff test. It returns the byte extent the caller should
// prefetch (0 = no prefetch). The extent never crosses the flash page
// holding the miss: the page is sensed as a unit anyway, so prefetch
// only widens the register-to-L2 transfer.
func (u *Unit) OnMiss(r *mem.Request) int {
	u.Decisions.Inc()
	e := u.entryFor(r.PC)
	page := r.Addr / PageBytes

	if !e.valid || e.pc != r.PC {
		*e = entry{pc: r.PC, valid: true, slots: make([]warpSlot, u.cfg.WarpSlots)}
	}

	// Track the five *representative* warps (Section IV-B): the first
	// warps to touch the entry claim its slots and keep them. Other
	// warps share the counter's prefetch decision but do not perturb
	// it — otherwise 96 warps churning 5 slots would erase every
	// same-page observation before it repeats.
	slot := -1
	for i := range e.slots {
		if e.slots[i].used && e.slots[i].warp == r.Warp {
			slot = i
			break
		}
	}
	if slot < 0 {
		for i := range e.slots {
			if !e.slots[i].used {
				slot = i
				break
			}
		}
	}
	if slot >= 0 {
		s := &e.slots[slot]
		if s.used && s.page == page {
			if e.counter < u.cmax {
				e.counter++
			}
		} else if s.used {
			if e.counter > 0 {
				e.counter--
			}
		}
		s.used, s.warp, s.page = true, r.Warp, page
	}

	if e.counter <= u.cfg.CutoffThresh {
		return 0
	}
	// Prefetch the next gran bytes of this flash page, starting past
	// the missing line.
	pageEnd := (page + 1) * PageBytes
	start := r.Addr + 128
	if start >= pageEnd {
		return 0
	}
	ext := uint64(u.gran)
	if start+ext > pageEnd {
		ext = pageEnd - start
	}
	if ext == 0 {
		return 0
	}
	u.Issued.Inc()
	return int(ext)
}

// OnEvict observes an L2 eviction through the tag-extension bits and
// runs the access monitor: every MonitorWindow evicted prefetch lines,
// the waste ratio (unused/evicted) moves the granularity.
func (u *Unit) OnEvict(info cache.EvictInfo) {
	if !info.Prefetch {
		return
	}
	u.evicted++
	if !info.Accessed {
		u.unused++
	}
	if u.evicted < u.cfg.MonitorWindow {
		return
	}
	waste := float64(u.unused) / float64(u.evicted)
	u.WasteRatios.Observe(waste)
	switch {
	case waste > u.cfg.HighWaste:
		if g := u.gran / 2; g >= u.cfg.MinBytes {
			u.gran = g
			u.Shrinks.Inc()
		}
	case waste < u.cfg.LowWaste:
		if g := u.gran + u.cfg.GrowBytes; g <= u.cfg.MaxBytes {
			u.gran = g
			u.Grows.Inc()
		}
	}
	u.evicted, u.unused = 0, 0
}
