package prefetch

import (
	"testing"

	"zng/internal/cache"
	"zng/internal/config"
	"zng/internal/mem"
)

func unit() *Unit { return New(config.Default().Prefetch) }

func miss(u *Unit, pc, addr uint64, warp int) int {
	return u.OnMiss(&mem.Request{PC: pc, Addr: addr, Warp: warp, Size: 128})
}

func TestPredictorWarmsUpOnStreaming(t *testing.T) {
	u := unit()
	// One warp streaming sequential 128 B sectors within a page: the
	// counter must pass the cutoff (12) and trigger a prefetch.
	var ext int
	for i := 0; i < 20; i++ {
		ext = miss(u, 0x42, uint64(i)*128, 7)
	}
	if ext == 0 {
		t.Fatal("streaming pattern never triggered a prefetch")
	}
	if u.Issued.Value() == 0 {
		t.Error("issued counter not incremented")
	}
}

func TestRandomPatternSuppressed(t *testing.T) {
	u := unit()
	// Random pages: counter decrements or stays low; no prefetch.
	addrs := []uint64{0, 5 * PageBytes, 2 * PageBytes, 9 * PageBytes, PageBytes, 7 * PageBytes}
	total := 0
	for rep := 0; rep < 10; rep++ {
		for _, a := range addrs {
			total += miss(u, 0x99, a, 3)
		}
	}
	if total != 0 {
		t.Errorf("random pattern prefetched %d bytes, want 0", total)
	}
}

func TestPrefetchStopsAtPageBoundary(t *testing.T) {
	u := unit()
	// Warm up at the end of a page.
	base := uint64(10 * PageBytes)
	for i := 0; i < 16; i++ {
		miss(u, 0x7, base+uint64(i%4)*128, 1)
	}
	// Miss at the last sector of the page: nothing left to prefetch.
	ext := miss(u, 0x7, base+PageBytes-128, 1)
	if ext != 0 {
		t.Errorf("prefetch beyond page boundary: %d bytes", ext)
	}
	// Miss mid-page: extent must stay inside the page.
	ext = miss(u, 0x7, base+PageBytes-512, 1)
	if ext > 384 {
		t.Errorf("extent %d crosses the page boundary", ext)
	}
}

func TestDistinctPCsTrackedSeparately(t *testing.T) {
	u := unit()
	for i := 0; i < 20; i++ {
		miss(u, 0x10, uint64(i)*128, 0) // streaming PC
	}
	if got := miss(u, 0x10, 20*128, 0); got == 0 {
		t.Fatal("streaming PC should prefetch")
	}
	// A different PC with random behaviour must not inherit the counter.
	if got := miss(u, 0x11, 50*PageBytes, 0); got != 0 {
		t.Error("fresh PC prefetched immediately")
	}
}

func TestMultipleWarpSlots(t *testing.T) {
	u := unit()
	// Five warps interleaved, all streaming their own pages: each has a
	// slot, so same-page detection still works and warms the counter.
	for i := 0; i < 30; i++ {
		for w := 0; w < 5; w++ {
			miss(u, 0x20, uint64(w)*16*PageBytes+uint64(i%8)*128, w)
		}
	}
	if got := miss(u, 0x20, 0*16*PageBytes+8*128, 0); got == 0 {
		t.Error("interleaved warps defeated the per-warp slots")
	}
}

func TestAccessMonitorShrinksOnWaste(t *testing.T) {
	cfg := config.Default().Prefetch
	cfg.MonitorWindow = 8
	u := New(cfg)
	g0 := u.Granularity()
	// All prefetched lines evicted unused: waste 1.0 > 0.3 -> halve.
	for i := 0; i < 8; i++ {
		u.OnEvict(cache.EvictInfo{Prefetch: true, Accessed: false})
	}
	if u.Granularity() != g0/2 {
		t.Errorf("granularity = %d, want halved %d", u.Granularity(), g0/2)
	}
	if u.Shrinks.Value() != 1 {
		t.Errorf("shrinks = %d", u.Shrinks.Value())
	}
}

func TestAccessMonitorGrowsOnUsefulPrefetch(t *testing.T) {
	cfg := config.Default().Prefetch
	cfg.MonitorWindow = 8
	u := New(cfg)
	g0 := u.Granularity()
	for i := 0; i < 8; i++ {
		u.OnEvict(cache.EvictInfo{Prefetch: true, Accessed: true})
	}
	if u.Granularity() != g0+cfg.GrowBytes {
		t.Errorf("granularity = %d, want %d", u.Granularity(), g0+cfg.GrowBytes)
	}
	if u.Grows.Value() != 1 {
		t.Errorf("grows = %d", u.Grows.Value())
	}
}

func TestGranularityBounds(t *testing.T) {
	cfg := config.Default().Prefetch
	cfg.MonitorWindow = 4
	u := New(cfg)
	// Shrink far beyond the floor.
	for w := 0; w < 20; w++ {
		for i := 0; i < 4; i++ {
			u.OnEvict(cache.EvictInfo{Prefetch: true, Accessed: false})
		}
	}
	if u.Granularity() < cfg.MinBytes {
		t.Errorf("granularity %d below floor %d", u.Granularity(), cfg.MinBytes)
	}
	// Grow far beyond the ceiling.
	for w := 0; w < 20; w++ {
		for i := 0; i < 4; i++ {
			u.OnEvict(cache.EvictInfo{Prefetch: true, Accessed: true})
		}
	}
	if u.Granularity() > cfg.MaxBytes {
		t.Errorf("granularity %d above ceiling %d", u.Granularity(), cfg.MaxBytes)
	}
}

func TestNonPrefetchEvictionsIgnored(t *testing.T) {
	cfg := config.Default().Prefetch
	cfg.MonitorWindow = 2
	u := New(cfg)
	g0 := u.Granularity()
	for i := 0; i < 50; i++ {
		u.OnEvict(cache.EvictInfo{Prefetch: false, Accessed: false})
	}
	if u.Granularity() != g0 {
		t.Error("demand evictions must not move the granularity")
	}
}

func TestMixedWasteMidBandHolds(t *testing.T) {
	cfg := config.Default().Prefetch
	cfg.MonitorWindow = 10
	u := New(cfg)
	g0 := u.Granularity()
	// 20% waste: between 0.05 and 0.3 -> hold.
	for i := 0; i < 10; i++ {
		u.OnEvict(cache.EvictInfo{Prefetch: true, Accessed: i >= 2})
	}
	if u.Granularity() != g0 {
		t.Errorf("mid-band waste moved granularity to %d", u.Granularity())
	}
}
