// Package regcache implements ZnG's write optimization (Sections
// III-C and IV-C): the cache registers of every plane in a Z-NAND
// package are grouped into one fully-associative write cache, so the
// 128 B store traffic of the GPU — which rewrites the same flash pages
// ~65x (Fig. 5c) — is absorbed in registers and folded into far fewer
// page programs.
//
// Three register interconnects are modeled for the ablation of
// Fig. 8c/9:
//
//   - SWnet: a register reaches a remote plane by bouncing through the
//     flash-network router (two transfers that consume flash-network
//     bandwidth, contending with demand reads).
//   - FCnet: a fully-connected point-to-point web — no contention, but
//     (in hardware) enormous wiring cost.
//   - NiF (Network-in-Flash, the paper's design): shared I/O-path and
//     data-path buses per plane group plus a local network between
//     data registers, so migrations stay inside the package and off
//     the flash network.
//
// A thrashing checker watches the register miss rate; when registers
// thrash, evicted dirty pages are pinned into spare L2 ways instead of
// programming flash (Section III-C).
package regcache

import (
	"zng/internal/config"
	"zng/internal/flash"
	"zng/internal/ftl"
	"zng/internal/noc"
	"zng/internal/sim"
	"zng/internal/stats"
)

// SectorBytes is the GPU store granularity.
const SectorBytes = 128

// PinSink pins dirty lines into a cache (implemented by *cache.Cache).
type PinSink interface {
	PinDirty(addr uint64) bool
}

type regEntry struct {
	stamp    uint64
	sectors  uint64 // coverage bitmap
	regPlane int    // plane whose physical register holds the data
}

type pkg struct {
	id      int
	cap     int
	clock   uint64
	entries map[uint64]*regEntry // vpage -> entry
	owner   map[int][]uint64     // per-plane mode: plane -> resident vpages
	local   *sim.Port            // NiF local network
	rr      int

	window, misses int
	thrashing      bool
}

// Cache is the backbone-wide register write cache.
type Cache struct {
	eng   *sim.Engine
	cfg   config.RegCache
	bb    *flash.Backbone
	split *ftl.Split
	mesh  *noc.Mesh // SWnet migrations; nil otherwise
	l2    PinSink   // thrash spill target; nil disables the checker

	pkgs        []*pkg
	unbuffered  bool // ZnG-base: no write caching at all
	perPlaneDir bool // one open register per plane, no grouping
	pinnedLines int

	// Statistics.
	Hits        stats.Counter
	Allocs      stats.Counter
	Evictions   stats.Counter
	Programs    stats.Counter
	RMWReads    stats.Counter
	Migrations  stats.Counter
	PinnedPages stats.Counter
	ReadHits    stats.Counter
}

// Options configure New.
type Options struct {
	// Unbuffered selects the ZnG-base behaviour: registers are plain
	// staging buffers with no caching policy, so every sector store
	// costs a read-modify-write of its page plus a log program
	// (Section V-A: ZnG-base has neither read nor write optimization).
	Unbuffered bool
	// PerPlaneDirect keeps the grouping off but gives each plane one
	// open register that absorbs consecutive stores to the same page —
	// the intermediate design point of the write ablation.
	PerPlaneDirect bool
	// Mesh is required for the SWnet interconnect.
	Mesh *noc.Mesh
	// L2 enables the thrashing checker's pin-to-L2 spill.
	L2 PinSink
}

// New builds the register cache over a backbone and its split FTL.
func New(eng *sim.Engine, cfg config.RegCache, bb *flash.Backbone, split *ftl.Split, opt Options) *Cache {
	c := &Cache{
		eng: eng, cfg: cfg, bb: bb, split: split,
		mesh: opt.Mesh, l2: opt.L2,
		unbuffered: opt.Unbuffered, perPlaneDir: opt.PerPlaneDirect,
	}
	planesPerPkg := bb.Cfg.DiesPerPkg * bb.Cfg.PlanesPerDie
	for i := 0; i < bb.Packages(); i++ {
		capacity := planesPerPkg * bb.Cfg.RegsPerPlane
		if opt.PerPlaneDirect {
			capacity = planesPerPkg
		}
		c.pkgs = append(c.pkgs, &pkg{
			id:      i,
			cap:     capacity,
			entries: make(map[uint64]*regEntry),
			owner:   make(map[int][]uint64),
			local:   sim.NewPort(eng, config.GBpsToBytesPerTick(cfg.LocalNetGBps), cfg.BusLat),
		})
	}
	return c
}

func (c *Cache) vpage(va uint64) uint64 { return va / uint64(c.bb.Cfg.PageBytes) }

// fullMask covers every sector of one flash page.
func (c *Cache) fullMask() uint64 {
	return uint64(1)<<(c.bb.Cfg.PageBytes/SectorBytes) - 1
}

func (c *Cache) sectorBit(va uint64) uint64 {
	return 1 << ((va / SectorBytes) % (uint64(c.bb.Cfg.PageBytes) / SectorBytes))
}

// pkgOf returns the package whose registers absorb va's writes: the
// one containing the target page's home plane.
func (c *Cache) pkgOf(va uint64) (*pkg, int) {
	vb, _ := c.split.VBlock(va)
	plane := c.split.PlaneOf(vb)
	return c.pkgs[c.bb.PackageOf(plane)], plane
}

// ReadCheck reports whether the newest version of va's sector sits in
// a register (the read path must check before going to the array).
func (c *Cache) ReadCheck(va uint64) bool {
	p, _ := c.pkgOf(va)
	e, ok := p.entries[c.vpage(va)]
	hit := ok && e.sectors&c.sectorBit(va) != 0
	if hit {
		c.ReadHits.Inc()
	}
	return hit
}

// Write absorbs one sector store. fn fires when the store is durable
// in a register — immediately on a hit or clean allocation, or after
// the eviction it forced has drained to flash (the backpressure of a
// thrashing register file).
func (c *Cache) Write(va uint64, fn func()) {
	p, target := c.pkgOf(va)
	vp := c.vpage(va)
	p.clock++
	p.window++

	if c.unbuffered {
		// ZnG-base: read-modify-write the page through a staging
		// register and program it to the log immediately.
		c.Allocs.Inc()
		c.Evictions.Inc()
		e := &regEntry{sectors: c.sectorBit(va), regPlane: target}
		c.evict(p, vp, e, func() { c.eng.Schedule(c.cfg.BusLat, fn) })
		return
	}

	if e, ok := p.entries[vp]; ok {
		e.sectors |= c.sectorBit(va)
		e.stamp = p.clock
		c.Hits.Inc()
		c.endWindow(p)
		c.eng.Schedule(c.cfg.BusLat, fn)
		return
	}

	c.Allocs.Inc()
	p.misses++
	c.endWindow(p)

	drained := func() { c.eng.Schedule(c.cfg.BusLat, fn) }

	if c.perPlaneDir {
		// Per-plane mode: each plane's RegsPerPlane registers hold open
		// write pages privately — no grouping across planes.
		list := p.owner[target]
		if len(list) >= c.bb.Cfg.RegsPerPlane {
			// Evict the plane's LRU page.
			lru := 0
			for i, cand := range list {
				if p.entries[cand].stamp < p.entries[list[lru]].stamp {
					lru = i
				}
			}
			victimVP := list[lru]
			prev := p.entries[victimVP]
			delete(p.entries, victimVP)
			list = append(list[:lru], list[lru+1:]...)
			c.evict(p, victimVP, prev, drained)
		} else {
			drained = nil
			c.eng.Schedule(c.cfg.BusLat, fn)
		}
		p.entries[vp] = &regEntry{stamp: p.clock, sectors: c.sectorBit(va), regPlane: target}
		p.owner[target] = append(list, vp)
		return
	}

	// Grouped mode: fully-associative across the package's registers.
	if len(p.entries) >= p.cap {
		victimVP, victim := lruVictim(p)
		delete(p.entries, victimVP)
		c.evict(p, victimVP, victim, drained)
	} else {
		drained = nil
		c.eng.Schedule(c.cfg.BusLat, fn)
	}
	planesPerPkg := c.bb.Cfg.DiesPerPkg * c.bb.Cfg.PlanesPerDie
	regPlane := p.id*planesPerPkg + p.rr%planesPerPkg
	p.rr++
	p.entries[vp] = &regEntry{stamp: p.clock, sectors: c.sectorBit(va), regPlane: regPlane}
}

func lruVictim(p *pkg) (uint64, *regEntry) {
	var vp uint64
	var e *regEntry
	oldest := ^uint64(0)
	for k, v := range p.entries {
		if v.stamp < oldest {
			oldest = v.stamp
			vp, e = k, v
		}
	}
	return vp, e
}

// evict drains one register entry: pin to L2 under thrashing, or
// read-modify-write + migrate + program.
func (c *Cache) evict(p *pkg, vp uint64, e *regEntry, done func()) {
	c.Evictions.Inc()
	va := vp * uint64(c.bb.Cfg.PageBytes)

	if p.thrashing && c.l2 != nil && c.pinnedLines+32 <= c.cfg.PinLines {
		// Spill the dirty page into pinned L2 lines.
		lines := c.bb.Cfg.PageBytes / 128
		for i := 0; i < lines; i++ {
			if c.l2.PinDirty(va + uint64(i)*128) {
				c.pinnedLines++
			}
		}
		c.PinnedPages.Inc()
		if done != nil {
			c.eng.Schedule(c.cfg.BusLat, done)
		}
		return
	}

	vb, _ := c.split.VBlock(va)
	target := c.split.PlaneOf(vb)

	program := func() {
		c.Programs.Inc()
		c.split.WritePage(va, done)
	}
	migrate := func() {
		if e.regPlane == target {
			program()
			return
		}
		c.Migrations.Inc()
		c.migrate(p, program)
	}
	if e.sectors != c.fullMask() {
		// Partial page: read the current version to merge (RMW).
		c.RMWReads.Inc()
		loc := c.split.ReadLoc(va)
		c.bb.Plane(loc.Plane).Read(loc.Block, loc.Page, migrate)
		return
	}
	migrate()
}

// migrate moves a page between registers of the same package over the
// configured interconnect.
func (c *Cache) migrate(p *pkg, fn func()) {
	page := c.bb.Cfg.PageBytes
	switch c.cfg.Net {
	case config.SWnet:
		// Register -> controller buffer -> remote register: two flash-
		// network transfers through the package's router.
		c.mesh.Send(p.id, p.id, page, func() {
			c.mesh.Send(p.id, p.id, page, fn)
		})
	case config.FCnet:
		// Dedicated point-to-point wire: latency only.
		c.eng.Schedule(c.cfg.BusLat, fn)
	default: // NiF
		p.local.Send(page, fn)
	}
}

// endWindow runs the thrashing checker at window boundaries.
func (c *Cache) endWindow(p *pkg) {
	if p.window < c.cfg.ThrashWindow {
		return
	}
	p.thrashing = float64(p.misses)/float64(p.window) > c.cfg.ThrashRatio
	p.window, p.misses = 0, 0
}

// DirtyPages reports pages currently held in registers.
func (c *Cache) DirtyPages() int {
	n := 0
	for _, p := range c.pkgs {
		n += len(p.entries)
	}
	return n
}

// Thrashing reports whether any package is currently in thrash mode.
func (c *Cache) Thrashing() bool {
	for _, p := range c.pkgs {
		if p.thrashing {
			return true
		}
	}
	return false
}
