package regcache

import (
	"testing"

	"zng/internal/config"
	"zng/internal/flash"
	"zng/internal/ftl"
	"zng/internal/noc"
	"zng/internal/sim"
)

func testRig(opt Options, regsPerPlane int) (*sim.Engine, *Cache, *flash.Backbone, *ftl.Split) {
	eng := sim.NewEngine()
	fc := config.Default().Flash
	fc.Channels = 2
	fc.DiesPerPkg = 1
	fc.PlanesPerDie = 2
	fc.BlocksPerPl = 64
	fc.PagesPerBlock = 8
	fc.RegsPerPlane = regsPerPlane
	fc.ReadLat, fc.ProgramLat, fc.EraseLat = 30, 1000, 3000
	bb := flash.New(eng, fc)
	split := ftl.NewSplit(eng, bb, config.Default().FTL)
	rc := config.Default().RegCache
	rc.ThrashWindow = 16
	if opt.Mesh == nil && rc.Net == config.SWnet {
		opt.Mesh = noc.NewMesh(eng, 2, 8, 1)
	}
	return eng, New(eng, rc, bb, split, opt), bb, split
}

func TestWriteRedundancyAbsorbed(t *testing.T) {
	eng, c, bb, _ := testRig(Options{}, 8)
	done := 0
	// 65 stores to the same page (Fig. 5c redundancy): one allocation,
	// zero programs while resident.
	for i := 0; i < 65; i++ {
		c.Write(uint64(i%4)*SectorBytes, func() { done++ })
		eng.Run()
	}
	if done != 65 {
		t.Fatalf("done = %d", done)
	}
	if c.Hits.Value() != 64 || c.Allocs.Value() != 1 {
		t.Errorf("hits/allocs = %d/%d, want 64/1", c.Hits.Value(), c.Allocs.Value())
	}
	if bb.ArrayPrograms.Value() != 0 {
		t.Errorf("programs = %d, want 0 (absorbed)", bb.ArrayPrograms.Value())
	}
	if c.DirtyPages() != 1 {
		t.Errorf("dirty pages = %d", c.DirtyPages())
	}
}

func TestEvictionProgramsFlash(t *testing.T) {
	eng, c, bb, _ := testRig(Options{}, 1)
	// Package 0 capacity = planes(2) * regs(1) = 2 entries. Pages in
	// the same plane: stride by planes*blockBytes.
	stride := uint64(bb.Planes()) * uint64(bb.Cfg.PageBytes)
	done := 0
	for i := 0; i < 3; i++ {
		c.Write(uint64(i)*stride, func() { done++ })
		eng.Run()
	}
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
	if c.Evictions.Value() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions.Value())
	}
	if bb.ArrayPrograms.Value() == 0 {
		t.Error("eviction must program the array")
	}
	// Partial page coverage forces a read-modify-write.
	if c.RMWReads.Value() != 1 {
		t.Errorf("RMW reads = %d, want 1", c.RMWReads.Value())
	}
}

func TestFullCoverageSkipsRMW(t *testing.T) {
	eng, c, bb, _ := testRig(Options{}, 1)
	sectors := bb.Cfg.PageBytes / SectorBytes
	// Cover every sector of page 0.
	for s := 0; s < sectors; s++ {
		c.Write(uint64(s)*SectorBytes, nil)
		eng.Run()
	}
	// Force eviction with same-plane pages.
	stride := uint64(bb.Planes()) * uint64(bb.Cfg.PageBytes)
	c.Write(stride, nil)
	c.Write(2*stride, nil)
	eng.Run()
	if c.Evictions.Value() == 0 {
		t.Fatal("no eviction")
	}
	if c.RMWReads.Value() != 0 {
		t.Errorf("fully covered page still RMW-read %d times", c.RMWReads.Value())
	}
}

func TestReadCheckSeesNewestSectors(t *testing.T) {
	eng, c, _, _ := testRig(Options{}, 8)
	c.Write(0, nil)
	eng.Run()
	if !c.ReadCheck(0) {
		t.Error("written sector must hit the register")
	}
	if c.ReadCheck(SectorBytes) {
		t.Error("unwritten sector of the same page must miss")
	}
	if c.ReadCheck(1 << 30) {
		t.Error("unrelated page must miss")
	}
	if c.ReadHits.Value() != 1 {
		t.Errorf("read hits = %d", c.ReadHits.Value())
	}
}

func TestBaseModePerPlaneConflict(t *testing.T) {
	eng, c, bb, _ := testRig(Options{PerPlaneDirect: true}, 1)
	// Two different pages homed on the same plane: the second
	// allocation evicts the first even though the package has other
	// free registers (no cross-plane grouping).
	stride := uint64(bb.Planes()) * uint64(bb.Cfg.PageBytes)
	done := 0
	c.Write(0, func() { done++ })
	eng.Run()
	c.Write(stride, func() { done++ })
	eng.Run()
	if c.Evictions.Value() != 1 {
		t.Errorf("base-mode conflict evictions = %d, want 1", c.Evictions.Value())
	}
	if done != 2 {
		t.Errorf("done = %d", done)
	}
	// Grouped mode with the same traffic does not evict.
	eng2, c2, bb2, _ := testRig(Options{}, 2)
	stride2 := uint64(bb2.Planes()) * uint64(bb2.Cfg.PageBytes)
	c2.Write(0, nil)
	eng2.Run()
	c2.Write(stride2, nil)
	eng2.Run()
	if c2.Evictions.Value() != 0 {
		t.Errorf("grouped mode evicted %d, want 0", c2.Evictions.Value())
	}
}

func TestMigrationCounting(t *testing.T) {
	// Grouped mode allocates registers round-robin; evictions whose
	// register plane differs from the target plane must migrate.
	eng, c, bb, _ := testRig(Options{}, 1)
	stride := uint64(bb.Planes()) * uint64(bb.Cfg.PageBytes)
	// Fill capacity (2) then force evictions; all pages target plane 0.
	for i := 0; i < 6; i++ {
		c.Write(uint64(i)*stride, nil)
		eng.Run()
	}
	if c.Evictions.Value() < 3 {
		t.Fatalf("evictions = %d", c.Evictions.Value())
	}
	if c.Migrations.Value() == 0 {
		t.Error("round-robin register allocation must produce migrations")
	}
}

func TestSWnetConsumesMeshBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	fc := config.Default().Flash
	fc.Channels = 2
	fc.DiesPerPkg = 1
	fc.PlanesPerDie = 2
	fc.BlocksPerPl = 64
	fc.PagesPerBlock = 8
	fc.RegsPerPlane = 1
	fc.ReadLat, fc.ProgramLat, fc.EraseLat = 30, 1000, 3000
	bb := flash.New(eng, fc)
	split := ftl.NewSplit(eng, bb, config.Default().FTL)
	mesh := noc.NewMesh(eng, 2, 8, 1)
	rc := config.Default().RegCache
	rc.Net = config.SWnet
	c := New(eng, rc, bb, split, Options{Mesh: mesh})

	stride := uint64(bb.Planes()) * uint64(bb.Cfg.PageBytes)
	before := mesh.Bytes.Value()
	for i := 0; i < 6; i++ {
		c.Write(uint64(i)*stride, nil)
		eng.Run()
	}
	if c.Migrations.Value() == 0 {
		t.Fatal("no migrations")
	}
	if mesh.Bytes.Value() == before {
		t.Error("SWnet migrations must move bytes over the flash network")
	}
}

func TestNiFKeepsMeshClean(t *testing.T) {
	eng := sim.NewEngine()
	fc := config.Default().Flash
	fc.Channels = 2
	fc.DiesPerPkg = 1
	fc.PlanesPerDie = 2
	fc.BlocksPerPl = 64
	fc.PagesPerBlock = 8
	fc.RegsPerPlane = 1
	fc.ReadLat, fc.ProgramLat, fc.EraseLat = 30, 1000, 3000
	bb := flash.New(eng, fc)
	split := ftl.NewSplit(eng, bb, config.Default().FTL)
	mesh := noc.NewMesh(eng, 2, 8, 1)
	rc := config.Default().RegCache
	rc.Net = config.NiF
	c := New(eng, rc, bb, split, Options{Mesh: mesh})

	stride := uint64(bb.Planes()) * uint64(bb.Cfg.PageBytes)
	for i := 0; i < 6; i++ {
		c.Write(uint64(i)*stride, nil)
		eng.Run()
	}
	if c.Migrations.Value() == 0 {
		t.Fatal("no migrations")
	}
	if mesh.Bytes.Value() != 0 {
		t.Error("NiF migrations must stay off the flash network")
	}
}

type pinRecorder struct{ lines []uint64 }

func (p *pinRecorder) PinDirty(addr uint64) bool { p.lines = append(p.lines, addr); return true }

func TestThrashingPinsToL2(t *testing.T) {
	sink := &pinRecorder{}
	eng, c, bb, _ := testRig(Options{L2: sink}, 1)
	// Stream allocations (every write a miss) to trip the thrash
	// checker, then keep going: evictions should divert to L2.
	stride := uint64(bb.Planes()) * uint64(bb.Cfg.PageBytes)
	for i := 0; i < 64; i++ {
		c.Write(uint64(i)*stride, nil)
		eng.Run()
	}
	if !c.Thrashing() {
		t.Fatal("thrash checker never tripped on a 100% miss stream")
	}
	if c.PinnedPages.Value() == 0 {
		t.Error("no pages pinned to L2 under thrashing")
	}
	if len(sink.lines) == 0 {
		t.Error("pin sink never called")
	}
}

func TestNoThrashingOnHitStream(t *testing.T) {
	sink := &pinRecorder{}
	eng, c, _, _ := testRig(Options{L2: sink}, 8)
	for i := 0; i < 64; i++ {
		c.Write(uint64(i%4)*SectorBytes, nil) // one hot page
		eng.Run()
	}
	if c.Thrashing() {
		t.Error("hit-dominated stream must not trip the thrash checker")
	}
	if c.PinnedPages.Value() != 0 {
		t.Errorf("pinned %d pages without thrashing", c.PinnedPages.Value())
	}
}

func TestProgramsReducedVsWrites(t *testing.T) {
	// End-to-end sanity for the write optimization: with redundancy R,
	// programs << writes.
	eng, c, bb, _ := testRig(Options{}, 8)
	writes := 0
	for rep := 0; rep < 50; rep++ {
		for p := 0; p < 4; p++ {
			c.Write(uint64(p)*4096+uint64(rep%32)*SectorBytes, nil)
			writes++
		}
	}
	eng.Run()
	if progs := bb.ArrayPrograms.Value(); progs*10 > uint64(writes) {
		t.Errorf("programs = %d for %d writes; register cache not absorbing", progs, writes)
	}
}
