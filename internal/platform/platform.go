// Package platform assembles the seven GPU-SSD systems the ZnG paper
// evaluates (Section V-A), plus the pure-GDDR5 reference used by
// Figures 4 and 5a:
//
//	GDDR5     – GPU with conventional GDDR5 memory, data resident.
//	Hetero    – discrete GPU + NVMe SSD behind the host (page faults
//	            cross PCIe with redundant host copies, Section II-C).
//	HybridGPU – SSD module embedded behind the GPU L2 [11].
//	Optane    – GPU DRAM replaced by six Optane DC PMM channels.
//	ZnG-base  – Section III-B architecture, no read/write optimization.
//	ZnG-rdopt – + STT-MRAM 24 MB read-only L2 with dynamic prefetch.
//	ZnG-wropt – + grouped flash-register write cache over NiF.
//	ZnG       – both optimizations (the full proposal).
//
// Every platform shares the same GPU core model, workload traces, MMU
// and L1; they differ only in translation regime, L2 configuration and
// the memory backend — exactly the axes the paper varies.
package platform

import (
	"fmt"
	"strings"

	"zng/internal/cache"
	"zng/internal/config"
	"zng/internal/gpu"
	"zng/internal/mmu"
	"zng/internal/sim"
	"zng/internal/workload"
)

// Kind identifies a platform.
type Kind int

const (
	GDDR5 Kind = iota
	Hetero
	HybridGPU
	Optane
	ZnGBase
	ZnGRdopt
	ZnGWropt
	ZnG
)

// Kinds lists the seven platforms of Fig. 10 in the paper's legend
// order.
func Kinds() []Kind {
	return []Kind{Hetero, HybridGPU, Optane, ZnGBase, ZnGRdopt, ZnGWropt, ZnG}
}

// AllKinds lists every buildable platform: the GDDR5 reference first,
// then the seven evaluated platforms in legend order. The CLIs and
// the zngd API derive their -platform vocabularies from this, so a
// new platform shows up everywhere without touching those layers.
func AllKinds() []Kind {
	return append([]Kind{GDDR5}, Kinds()...)
}

// KindNames lists the AllKinds vocabulary as strings.
func KindNames() []string {
	kinds := AllKinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	return names
}

// KindByName resolves a platform by its String form, failing fast
// with the full vocabulary on an unknown name.
func KindByName(name string) (Kind, error) {
	for _, k := range AllKinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("platform: unknown platform %q (valid: %s)", name, strings.Join(KindNames(), ", "))
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case GDDR5:
		return "GDDR5"
	case Hetero:
		return "Hetero"
	case HybridGPU:
		return "HybridGPU"
	case Optane:
		return "Optane"
	case ZnGBase:
		return "ZnG-base"
	case ZnGRdopt:
		return "ZnG-rdopt"
	case ZnGWropt:
		return "ZnG-wropt"
	case ZnG:
		return "ZnG"
	}
	return "unknown"
}

// Result summarizes one simulation.
type Result struct {
	Kind     Kind
	Workload string // mix name (or ad-hoc label) the platform ran
	IPC      float64
	Cycles   sim.Tick
	Insts    uint64

	// Flash-array traffic (Fig. 11); zero for DRAM platforms.
	FlashReadGBps  float64
	FlashWriteGBps float64
	// Per-plane program counts (Fig. 8b heatmap); nil for DRAM
	// platforms.
	PlaneWrites []uint64

	L2HitRate  float64
	TLBHitRate float64
	Extra      map[string]float64
}

// FlashArrayGBps reports combined array bandwidth.
func (r Result) FlashArrayGBps() float64 { return r.FlashReadGBps + r.FlashWriteGBps }

// SimInstsPerSec reports simulated instruction throughput: retired
// instructions over simulated (not host) time. Unlike wall-clock
// rates it is deterministic, so figures may render it.
func (r Result) SimInstsPerSec() float64 {
	ns := config.TicksToNs(r.Cycles)
	if ns <= 0 {
		return 0
	}
	return float64(r.Insts) / (ns * 1e-9)
}

// maxEvents caps a single simulation; hitting it means a deadlock or
// runaway configuration, which is a bug worth failing loudly on.
const maxEvents = 600_000_000

// RunMix simulates one platform on one workload mix at the given trace
// scale and returns its measurements. Any registered scenario or
// ad-hoc composition runs through here; co-resident apps split the SMs
// evenly, each in its own address space.
func RunMix(kind Kind, mix workload.Mix, scale float64, cfg config.Config) (Result, error) {
	apps, err := mix.Apps(scale)
	if err != nil {
		return Result{}, err
	}
	return RunApps(kind, mix.Name, apps, cfg)
}

// RunApps simulates one platform running the given already-built apps.
func RunApps(kind Kind, label string, apps []*workload.App, cfg config.Config) (Result, error) {
	if len(apps) > cfg.GPU.SMs {
		return Result{}, fmt.Errorf("platform: %d co-resident apps exceed the %d SMs (each app needs at least one SM partition)",
			len(apps), cfg.GPU.SMs)
	}
	eng := sim.NewEngine()
	sys, err := build(eng, kind, cfg)
	if err != nil {
		return Result{}, err
	}
	sys.gpu.Launch(apps...)
	for !sys.gpu.Done() {
		if !eng.Step() {
			return Result{}, fmt.Errorf("platform %v: simulation deadlocked at tick %d", kind, eng.Now())
		}
		if eng.Fired() > maxEvents {
			return Result{}, fmt.Errorf("platform %v: exceeded %d events", kind, maxEvents)
		}
	}
	eng.Run() // drain stragglers (writebacks, background GC)
	return sys.collect(kind, label), nil
}

// system is one assembled platform.
type system struct {
	eng *sim.Engine
	cfg config.Config
	mmu *mmu.Unit
	l2  *cache.Cache
	gpu *gpu.GPU

	// collectExtra lets each backend contribute its measurements.
	collectExtra func(r *Result)
}

func build(eng *sim.Engine, kind Kind, cfg config.Config) (*system, error) {
	switch kind {
	case GDDR5:
		return buildDRAM(eng, cfg, cfg.GDDR5), nil
	case Optane:
		return buildDRAM(eng, cfg, cfg.Optane), nil
	case Hetero:
		return buildHetero(eng, cfg), nil
	case HybridGPU:
		return buildHybrid(eng, cfg), nil
	case ZnGBase, ZnGRdopt, ZnGWropt, ZnG:
		return buildZnG(eng, kind, cfg), nil
	}
	return nil, fmt.Errorf("platform: unknown kind %d", kind)
}

func (s *system) collect(kind Kind, label string) Result {
	r := Result{
		Kind:       kind,
		Workload:   label,
		IPC:        s.gpu.IPC(),
		Cycles:     s.gpu.Cycles(),
		Insts:      s.gpu.Insts.Value(),
		L2HitRate:  s.l2.HitRate(),
		TLBHitRate: s.mmu.L1HitRate(),
		Extra:      map[string]float64{},
	}
	if s.collectExtra != nil {
		s.collectExtra(&r)
	}
	return r
}

// gbps converts bytes over cycles to GB/s.
func gbps(bytes uint64, cycles sim.Tick) float64 {
	if cycles <= 0 {
		return 0
	}
	return config.BytesPerTickToGBps(float64(bytes) / float64(cycles))
}
