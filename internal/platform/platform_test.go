package platform

import (
	"testing"

	"zng/internal/config"
	"zng/internal/workload"
)

// testCfg scales the caches down 8x (keeping the 4x STT-vs-SRAM ratio
// of Table I) so the scaled-down traces exert realistic cache
// pressure; full-scale experiment runs use the unmodified Table I
// configuration.
func testCfg() config.Config {
	c := config.Default()
	c.GPU.SMs = 8
	c.L2SRAM.Sets /= 8 // 0.75 MB
	c.L2STT.Sets /= 8  // 3 MB
	return c
}

func testMix(t *testing.T) workload.Mix {
	t.Helper()
	m, err := workload.MixByName("betw-back")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// testScale must be large enough that per-warp streams exercise the
// predictor (a dozen-plus memory instructions per warp) and the write
// pools span many planes.
const testScale = 0.25

func runOne(t *testing.T, k Kind) Result {
	t.Helper()
	r, err := RunMix(k, testMix(t), testScale, testCfg())
	if err != nil {
		t.Fatalf("%v: %v", k, err)
	}
	return r
}

func TestAllPlatformsComplete(t *testing.T) {
	for _, k := range append(Kinds(), GDDR5) {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			r := runOne(t, k)
			if r.IPC <= 0 {
				t.Errorf("%v: IPC = %v", k, r.IPC)
			}
			if r.Cycles <= 0 || r.Insts == 0 {
				t.Errorf("%v: cycles=%d insts=%d", k, r.Cycles, r.Insts)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	r1 := runOne(t, ZnG)
	r2 := runOne(t, ZnG)
	if r1.IPC != r2.IPC || r1.Cycles != r2.Cycles || r1.Insts != r2.Insts {
		t.Errorf("nondeterministic: %+v vs %+v", r1, r2)
	}
}

func TestGDDR5IsFastest(t *testing.T) {
	ref := runOne(t, GDDR5)
	for _, k := range []Kind{Hetero, HybridGPU, ZnGBase} {
		r := runOne(t, k)
		if r.IPC >= ref.IPC {
			t.Errorf("%v IPC %.4f >= GDDR5 %.4f", k, r.IPC, ref.IPC)
		}
	}
}

func TestFig10Ordering(t *testing.T) {
	// The load-bearing shape of Fig. 10 on a read-heavy pair:
	// ZnG > Optane > HybridGPU > ZnG-base, and ZnG > ZnG-rdopt.
	res := map[Kind]Result{}
	for _, k := range Kinds() {
		res[k] = runOne(t, k)
	}
	// At this shrunk test scale ZnG and Optane run near parity; the
	// full-scale figure runs (docs/EXPERIMENTS.md) show ZnG ahead. Guard
	// against regression below parity band.
	if !(res[ZnG].IPC > 0.9*res[Optane].IPC) {
		t.Errorf("ZnG (%.4f) fell far below Optane (%.4f)", res[ZnG].IPC, res[Optane].IPC)
	}
	if !(res[Optane].IPC > res[HybridGPU].IPC) {
		t.Errorf("Optane (%.4f) must beat HybridGPU (%.4f)", res[Optane].IPC, res[HybridGPU].IPC)
	}
	if !(res[HybridGPU].IPC > res[ZnGBase].IPC) {
		t.Errorf("HybridGPU (%.4f) must beat ZnG-base (%.4f)", res[HybridGPU].IPC, res[ZnGBase].IPC)
	}
	if !(res[ZnG].IPC > res[ZnGRdopt].IPC) {
		t.Errorf("ZnG (%.4f) must beat rdopt alone (%.4f)", res[ZnG].IPC, res[ZnGRdopt].IPC)
	}
	if !(res[ZnG].IPC > res[HybridGPU].IPC*2) {
		t.Errorf("ZnG (%.4f) should exceed HybridGPU (%.4f) by a large factor",
			res[ZnG].IPC, res[HybridGPU].IPC)
	}
}

func TestZnGFlashBandwidthExceedsHybrid(t *testing.T) {
	// Fig. 11: ZnG's flash-array bandwidth far exceeds HybridGPU's
	// (whose channels and engine throttle the arrays).
	h := runOne(t, HybridGPU)
	z := runOne(t, ZnG)
	if z.FlashArrayGBps() <= h.FlashArrayGBps() {
		t.Errorf("flash BW: ZnG %.2f <= HybridGPU %.2f GB/s",
			z.FlashArrayGBps(), h.FlashArrayGBps())
	}
}

func TestZnGWriteOptReducesPrograms(t *testing.T) {
	base := runOne(t, ZnGBase)
	wr := runOne(t, ZnGWropt)
	if wr.Extra["log_programs"] >= base.Extra["log_programs"] {
		t.Errorf("wropt programs (%v) should be below base (%v)",
			wr.Extra["log_programs"], base.Extra["log_programs"])
	}
}

func TestZnGPrefetchActive(t *testing.T) {
	r := runOne(t, ZnG)
	if r.Extra["prefetch_issued"] == 0 {
		t.Error("prefetcher never fired on scan-heavy workload")
	}
	if r.Extra["prefetch_bytes"] == 0 {
		t.Error("no prefetched bytes installed")
	}
}

func TestHeteroFaultsOccur(t *testing.T) {
	r := runOne(t, Hetero)
	if r.Extra["faults"] == 0 {
		t.Error("Hetero must page-fault on first touch")
	}
	if r.Extra["pcie_bytes"] == 0 {
		t.Error("faults must move data over PCIe")
	}
}

func TestPlaneWritesRecorded(t *testing.T) {
	// ZnG-base programs per write, so its heatmap (Fig. 8b) is dense.
	r := runOne(t, ZnGBase)
	if len(r.PlaneWrites) == 0 {
		t.Fatal("no plane write heatmap")
	}
	var total uint64
	for _, w := range r.PlaneWrites {
		total += w
	}
	if total == 0 {
		t.Error("no plane ever programmed despite write traffic")
	}
	// Asymmetry (Fig. 8b): max plane should clearly exceed the mean.
	max := uint64(0)
	for _, w := range r.PlaneWrites {
		if w > max {
			max = w
		}
	}
	mean := float64(total) / float64(len(r.PlaneWrites))
	if float64(max) < 1.5*mean {
		t.Logf("write asymmetry mild: max %d vs mean %.1f", max, mean)
	}
}

func TestRunMixHigherDegrees(t *testing.T) {
	// The scenario subsystem's contract: solo and degree-4 mixes run on
	// the same entry point as the paper pairs.
	for _, name := range []string{"solo-bfs1", "consol-4", "oltp-bfs1"} {
		m, err := workload.MixByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunMix(ZnG, m, 0.1, testCfg())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.IPC <= 0 || r.Workload != name {
			t.Errorf("%s: IPC=%v workload=%q", name, r.IPC, r.Workload)
		}
	}
}

func TestRunMixTooManyApps(t *testing.T) {
	cfg := testCfg()
	cfg.GPU.SMs = 2
	m := workload.NewMix("over", "bfs1", "gaus", "pr")
	if _, err := RunMix(ZnG, m, 0.05, cfg); err == nil {
		t.Error("want error when apps exceed SMs")
	}
}

func TestKindStrings(t *testing.T) {
	if len(Kinds()) != 7 {
		t.Fatalf("Kinds() = %d entries, want 7", len(Kinds()))
	}
	if ZnG.String() != "ZnG" || ZnGRdopt.String() != "ZnG-rdopt" || Kind(99).String() != "unknown" {
		t.Error("Kind.String mismatch")
	}
}
