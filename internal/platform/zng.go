package platform

import (
	"zng/internal/cache"
	"zng/internal/config"
	"zng/internal/flash"
	"zng/internal/ftl"
	"zng/internal/gpu"
	"zng/internal/mem"
	"zng/internal/mmu"
	"zng/internal/noc"
	"zng/internal/prefetch"
	"zng/internal/regcache"
	"zng/internal/sim"
	"zng/internal/stats"
)

// rowDecoderLat is the two-phase CAM search of the programmable row
// decoder (Section IV-A), charged on every flash-side read resolution.
const rowDecoderLat sim.Tick = 8

// buildZnG assembles the four ZnG variants of Section V-A. The shared
// skeleton (Fig. 6a): flash controllers attach directly to the GPU
// interconnect; the MMU performs DBMT translation (zero-overhead FTL);
// an 8 B-link mesh replaces the legacy flash channels; log-block row
// decoders remap writes.
//
//	ZnG-base : 6 MB SRAM write-back L2, per-plane direct registers.
//	ZnG-rdopt: 24 MB STT-MRAM read-only L2 + dynamic prefetch.
//	ZnG-wropt: grouped register write cache over NiF + thrash checker.
//	ZnG      : rdopt + wropt.
func buildZnG(eng *sim.Engine, kind Kind, cfg config.Config) *system {
	rdopt := kind == ZnGRdopt || kind == ZnG
	wropt := kind == ZnGWropt || kind == ZnG

	// ZnG variants run with the full 8-register planes; base keeps the
	// stock two (Table I).
	fcfg := cfg.Flash
	if wropt {
		fcfg.RegsPerPlane = 8
	}

	bb := flash.New(eng, fcfg)
	split := ftl.NewSplit(eng, bb, cfg.FTL)
	mesh := noc.NewMesh(eng, fcfg.MeshDim, config.GBpsToBytesPerTick(fcfg.MeshLinkGBps), fcfg.MeshHopLat)
	xbar := noc.NewXbar(eng, bb.Packages(), 32, 8)

	// Zero-overhead FTL: the DBMT lives in the MMU, so a TLB miss costs
	// only the in-SRAM block-map lookup.
	u := mmu.New(eng, cfg.MMU, cfg.GPU.SMs, cfg.MMU.DBMTLatency)
	u.Translate = func(va uint64) uint64 { return va }

	ctl := &zngController{
		eng: eng, bb: bb, split: split, mesh: mesh, xbar: xbar,
		camLat:       rowDecoderLat,
		sensePending: make(map[uint64][]*mem.Request),
		readRegs:     make([]pageRing, bb.Planes()),
	}
	// At most two registers double-buffer reads; the rest (if any)
	// belong to the write cache.
	readRing := fcfg.RegsPerPlane
	if readRing > 2 {
		readRing = 2
	}
	for i := range ctl.readRegs {
		ctl.readRegs[i] = newPageRing(readRing)
	}

	l2cfg := cfg.L2SRAM
	if rdopt {
		l2cfg = cfg.L2STT
	}
	l2 := cache.New(eng, l2cfg, ctl, "L2")

	if rdopt {
		pf := prefetch.New(cfg.Prefetch)
		ctl.pf = pf
		ctl.l2 = l2
		l2.OnEvict = pf.OnEvict
	}

	// Without the write optimization, each plane's registers act as
	// plain per-plane staging buffers (Section III-C: the limited
	// per-plane registers "may not be sufficient... based on workload
	// execution behaviors" — grouping them is wropt's contribution).
	opts := regcache.Options{PerPlaneDirect: !wropt, Mesh: mesh}
	rcfg := cfg.RegCache
	if wropt {
		opts.L2 = l2
	}
	ctl.regs = regcache.New(eng, rcfg, bb, split, opts)

	g := gpu.New(eng, cfg.GPU, cfg.L1, u, l2)
	return &system{
		eng: eng, cfg: cfg, mmu: u, l2: l2, gpu: g,
		collectExtra: func(r *Result) {
			cyc := g.Cycles()
			r.FlashReadGBps = gbps(bb.TotalBytesRead(), cyc)
			r.FlashWriteGBps = gbps(bb.TotalBytesProgrammed(), cyc)
			r.PlaneWrites = planeWrites(bb)
			r.Extra["reg_hits"] = float64(ctl.regs.Hits.Value())
			r.Extra["reg_evictions"] = float64(ctl.regs.Evictions.Value())
			r.Extra["reg_read_hits"] = float64(ctl.regs.ReadHits.Value())
			r.Extra["reg_migrations"] = float64(ctl.regs.Migrations.Value())
			r.Extra["pinned_pages"] = float64(ctl.regs.PinnedPages.Value())
			r.Extra["log_programs"] = float64(split.LogPrograms.Value())
			r.Extra["gc_merges"] = float64(split.Merges.Value())
			r.Extra["stalled_writes"] = float64(split.StalledWrites.Value())
			r.Extra["mesh_bytes"] = float64(mesh.Bytes.Value())
			r.Extra["demand_fills"] = float64(ctl.DemandFills.Value())
			r.Extra["prefetch_bytes"] = float64(ctl.PrefetchBytes.Value())
			r.Extra["reg_page_hits"] = float64(ctl.RegReadHits.Value())
			r.Extra["sense_merges"] = float64(ctl.SenseMerges.Value())
			r.Extra["translation_state_bytes"] = float64(split.StateBytes() + u.StateBytes())
			r.Extra["mapped_pages"] = float64(split.MappedPages())
			if ctl.pf != nil {
				r.Extra["prefetch_issued"] = float64(ctl.pf.Issued.Value())
				r.Extra["prefetch_gran"] = float64(ctl.pf.Granularity())
			}
		},
	}
}

// zngController is the per-channel flash controller array of Fig. 6a:
// it accepts L2 fill and write-back requests from the GPU crossbar,
// resolves them through the split FTL and register cache, and moves
// data over the flash mesh.
type zngController struct {
	eng    *sim.Engine
	bb     *flash.Backbone
	split  *ftl.Split
	regs   *regcache.Cache
	mesh   *noc.Mesh
	xbar   *noc.Xbar
	camLat sim.Tick

	// Read optimization (nil when rdopt is off).
	pf *prefetch.Unit
	l2 *cache.Cache

	// sensePending merges concurrent fills of one flash page into a
	// single array sense; readRegs model the plane cache registers
	// holding recently sensed pages (Section II-B), which serve
	// repeated reads without touching the array again.
	sensePending map[uint64][]*mem.Request
	readRegs     []pageRing

	DemandFills   stats.Counter
	PrefetchBytes stats.Counter
	RegReadHits   stats.Counter
	SenseMerges   stats.Counter
}

// pageRing is a tiny LRU of sensed pages (one per plane register).
type pageRing struct {
	pages []uint64
}

func newPageRing(n int) pageRing {
	if n < 1 {
		n = 1
	}
	return pageRing{pages: make([]uint64, 0, n)}
}

func (r *pageRing) contains(page uint64) bool {
	for _, p := range r.pages {
		if p == page {
			return true
		}
	}
	return false
}

func (r *pageRing) push(page uint64) {
	if r.contains(page) {
		return
	}
	if len(r.pages) == cap(r.pages) {
		copy(r.pages, r.pages[1:])
		r.pages = r.pages[:len(r.pages)-1]
	}
	r.pages = append(r.pages, page)
}

// node returns the mesh/crossbar endpoint owning va's home plane.
func (z *zngController) node(va uint64) int {
	vb, _ := z.split.VBlock(va)
	return z.bb.PackageOf(z.split.PlaneOf(vb))
}

// Access implements mem.Memory for L2 fills (reads) and write-backs /
// write-throughs (stores).
func (z *zngController) Access(r *mem.Request) {
	n := z.node(r.Addr)
	if r.Write {
		// Stores ride the crossbar to the controller, then enter the
		// register cache.
		z.xbar.Send(n, r.Size, func() {
			z.regs.Write(r.Addr, r.Complete)
		})
		return
	}
	// Reads: command packet to the controller first.
	z.xbar.Send(n, 16, func() { z.read(r, n) })
}

func (z *zngController) read(r *mem.Request, n int) {
	// Newest data may still sit in a flash write register.
	if z.regs.ReadCheck(r.Addr) {
		z.mesh.Send(n, n, r.Size, r.Complete)
		return
	}

	// Predictor update and cutoff test happen at miss time (Fig. 8a).
	if z.pf != nil && !r.Prefetch {
		if ext := z.pf.OnMiss(r); ext > 0 {
			r.Prefetch = false // demand request with a widened transfer
			r.Size += z.planPrefetch(r, ext)
		}
	}

	page := mem.PageAddr(r.Addr, z.bb.Cfg.PageBytes)

	// A sense for this page already in flight: piggyback on it.
	if waiters, ok := z.sensePending[page]; ok {
		z.SenseMerges.Inc()
		z.sensePending[page] = append(waiters, r)
		return
	}

	// The page may still sit in one of the plane's cache registers.
	z.eng.Schedule(z.camLat, func() {
		loc := z.split.ReadLoc(r.Addr)
		if z.readRegs[loc.Plane].contains(page) {
			z.RegReadHits.Inc()
			z.deliver(r, n)
			return
		}
		if waiters, ok := z.sensePending[page]; ok {
			z.SenseMerges.Inc()
			z.sensePending[page] = append(waiters, r)
			return
		}
		z.sensePending[page] = []*mem.Request{r}
		z.DemandFills.Inc()
		z.bb.Plane(loc.Plane).Read(loc.Block, loc.Page, func() {
			z.readRegs[loc.Plane].push(page)
			waiters := z.sensePending[page]
			delete(z.sensePending, page)
			for _, w := range waiters {
				z.deliver(w, n)
			}
		})
	})
}

// deliver moves a (possibly prefetch-widened) fill over the mesh and
// installs any extra lines into L2.
func (z *zngController) deliver(r *mem.Request, n int) {
	z.mesh.Send(n, n, r.Size, func() {
		if r.Size > 128 && z.l2 != nil {
			ext := r.Size - 128
			z.PrefetchBytes.Add(uint64(ext))
			for off := 128; off < r.Size; off += 128 {
				z.l2.InstallPrefetch(r.Addr + uint64(off))
			}
		}
		r.Complete()
	})
}

// planPrefetch clamps a prefetch extent to the flash page end.
func (z *zngController) planPrefetch(r *mem.Request, ext int) int {
	pageEnd := mem.PageAddr(r.Addr, z.bb.Cfg.PageBytes) + uint64(z.bb.Cfg.PageBytes)
	if r.Addr+uint64(128+ext) > pageEnd {
		ext = int(pageEnd - r.Addr - 128)
	}
	if ext < 0 {
		ext = 0
	}
	return ext
}

// planeWrites flattens per-plane program counts for the Fig. 8b
// heatmap.
func planeWrites(bb *flash.Backbone) []uint64 {
	out := make([]uint64, bb.Planes())
	for i := range out {
		out[i] = bb.Plane(i).Programs
	}
	return out
}
