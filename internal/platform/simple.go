package platform

import (
	"zng/internal/cache"
	"zng/internal/config"
	"zng/internal/dram"
	"zng/internal/gpu"
	"zng/internal/mmu"
	"zng/internal/sim"
)

// buildDRAM assembles a conventional GPU: SMs -> MMU -> L1 -> shared
// SRAM L2 -> multi-controller DRAM (GDDR5 reference or Optane DC PMM).
// Data is resident from the start; translation walks an in-memory page
// table.
func buildDRAM(eng *sim.Engine, cfg config.Config, dcfg config.DRAM) *system {
	u := mmu.New(eng, cfg.MMU, cfg.GPU.SMs, mmu.BaselineWalkLat(cfg.MMU))
	u.Translate = func(va uint64) uint64 { return va }
	dev := dram.New(eng, dcfg)
	l2 := cache.New(eng, cfg.L2SRAM, dev, "L2")
	g := gpu.New(eng, cfg.GPU, cfg.L1, u, l2)
	return &system{
		eng: eng, cfg: cfg, mmu: u, l2: l2, gpu: g,
		collectExtra: func(r *Result) {
			r.Extra["dram_gbps"] = dev.DeliveredGBps(g.Cycles())
			r.Extra["dram_reads"] = float64(dev.Reads.Value())
			r.Extra["dram_writes"] = float64(dev.Writes.Value())
		},
	}
}
