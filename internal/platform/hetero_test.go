package platform

import (
	"testing"

	"zng/internal/workload"
)

// TestHeteroEvictionUnderMemoryPressure shrinks the resident GPU
// memory below the working set: pages must be evicted, TLB entries
// invalidated, and re-faulted on the next touch.
func TestHeteroEvictionUnderMemoryPressure(t *testing.T) {
	cfg := testCfg()
	cfg.Host.GPUMemPages = 64 // far below any working set
	pair, err := workload.MixByName("betw-back")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunMix(Hetero, pair, 0.05, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Extra["fault_evictions"] == 0 {
		t.Error("no evictions despite tiny GPU memory")
	}
	// Thrashing: faults must exceed the distinct-page count (re-faults).
	if r.Extra["faults"] <= r.Extra["fault_evictions"] {
		t.Errorf("faults (%v) should exceed evictions (%v)",
			r.Extra["faults"], r.Extra["fault_evictions"])
	}
	if r.IPC <= 0 {
		t.Error("thrashing run must still complete")
	}
}

// TestHeteroThrashingIsSlower confirms memory pressure costs
// performance (the capacity cliff the paper's Hetero platform lives
// on).
func TestHeteroThrashingIsSlower(t *testing.T) {
	pair, err := workload.MixByName("betw-back")
	if err != nil {
		t.Fatal(err)
	}
	big := testCfg()
	small := testCfg()
	small.Host.GPUMemPages = 64
	rBig, err := RunMix(Hetero, pair, 0.05, big)
	if err != nil {
		t.Fatal(err)
	}
	rSmall, err := RunMix(Hetero, pair, 0.05, small)
	if err != nil {
		t.Fatal(err)
	}
	if rSmall.IPC >= rBig.IPC {
		t.Errorf("thrashing IPC %.4f >= ample-memory IPC %.4f", rSmall.IPC, rBig.IPC)
	}
}
