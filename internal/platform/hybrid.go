package platform

import (
	"zng/internal/cache"
	"zng/internal/config"
	"zng/internal/gpu"
	"zng/internal/mmu"
	"zng/internal/sim"
	"zng/internal/ssd"
)

// buildHybrid assembles HybridGPU [11] (Fig. 1a): the GPU's on-board
// DRAM is replaced by an embedded SSD module — request dispatcher, SSD
// engine running the page-mapped FTL firmware, a single-package DRAM
// read/write buffer, and legacy shared-bus flash channels to the
// Z-NAND backbone.
func buildHybrid(eng *sim.Engine, cfg config.Config) *system {
	u := mmu.New(eng, cfg.MMU, cfg.GPU.SMs, mmu.BaselineWalkLat(cfg.MMU))
	u.Translate = func(va uint64) uint64 { return va }
	mod := ssd.New(eng, cfg.Engine, cfg.Flash, cfg.FTL)
	l2 := cache.New(eng, cfg.L2SRAM, mod, "L2")
	g := gpu.New(eng, cfg.GPU, cfg.L1, u, l2)
	return &system{
		eng: eng, cfg: cfg, mmu: u, l2: l2, gpu: g,
		collectExtra: func(r *Result) {
			cyc := g.Cycles()
			r.FlashReadGBps = gbps(mod.BB.TotalBytesRead(), cyc)
			r.FlashWriteGBps = gbps(mod.BB.TotalBytesProgrammed(), cyc)
			r.PlaneWrites = planeWrites(mod.BB)
			r.Extra["buf_hits"] = float64(mod.BufHits.Value())
			r.Extra["buf_misses"] = float64(mod.BufMisses.Value())
			r.Extra["engine_busy"] = float64(mod.EngineBusyTicks())
			r.Extra["channel_bytes"] = float64(mod.ChannelBytes())
			r.Extra["gc_runs"] = float64(mod.FTL.GCRuns.Value())
			r.Extra["translation_state_bytes"] = float64(mod.FTL.StateBytes() + u.StateBytes())
			r.Extra["mapped_pages"] = float64(mod.FTL.MappedPages())
		},
	}
}
