package platform

import (
	"zng/internal/cache"
	"zng/internal/config"
	"zng/internal/dram"
	"zng/internal/gpu"
	"zng/internal/mem"
	"zng/internal/mmu"
	"zng/internal/sim"
	"zng/internal/stats"
)

// buildHetero assembles the discrete GPU-SSD system of Section II-C:
// GPU with GDDR5, data initially on an external NVMe SSD. A non-
// resident page triggers a fault: interrupt to the CPU, SSD read,
// redundant staging copy in host DRAM (the user/privilege-mode switch
// cost), then a PCIe DMA into GPU memory.
func buildHetero(eng *sim.Engine, cfg config.Config) *system {
	u := mmu.New(eng, cfg.MMU, cfg.GPU.SMs, mmu.BaselineWalkLat(cfg.MMU))
	u.Translate = func(va uint64) uint64 { return va }
	dev := dram.New(eng, cfg.GDDR5)
	l2 := cache.New(eng, cfg.L2SRAM, dev, "L2")
	g := gpu.New(eng, cfg.GPU, cfg.L1, u, l2)

	h := &hostPath{
		eng:      eng,
		cfg:      cfg.Host,
		mmu:      u,
		handlers: sim.NewPool(eng, 8),
		ssd:      sim.NewPort(eng, config.GBpsToBytesPerTick(cfg.Host.SSDGBps), 0),
		staging:  sim.NewPort(eng, config.GBpsToBytesPerTick(cfg.Host.StagingCopyBW), 0),
		pcie:     sim.NewPort(eng, config.GBpsToBytesPerTick(cfg.Host.PCIeGBps), 0),
		resident: make(map[uint64]uint64),
		pending:  make(map[uint64][]func()),
	}
	u.Fault = h.fault

	return &system{
		eng: eng, cfg: cfg, mmu: u, l2: l2, gpu: g,
		collectExtra: func(r *Result) {
			r.Extra["faults"] = float64(h.Faults.Value())
			r.Extra["fault_evictions"] = float64(h.Evictions.Value())
			r.Extra["dram_gbps"] = dev.DeliveredGBps(g.Cycles())
			r.Extra["pcie_bytes"] = float64(h.pcie.Bytes())
		},
	}
}

// hostPath services GPU page faults through the host.
type hostPath struct {
	eng *sim.Engine
	cfg config.Host
	mmu *mmu.Unit

	handlers *sim.Pool
	ssd      *sim.Port
	staging  *sim.Port
	pcie     *sim.Port

	clock    uint64
	resident map[uint64]uint64 // page -> LRU stamp
	pending  map[uint64][]func()

	Faults    stats.Counter
	Evictions stats.Counter
}

// fault implements the mmu.Unit fault hook.
func (h *hostPath) fault(va uint64, resume func()) bool {
	page := va / mem.PageBytes4K
	if _, ok := h.resident[page]; ok {
		h.clock++
		h.resident[page] = h.clock
		return false
	}
	h.Faults.Inc()
	if waiters, inFlight := h.pending[page]; inFlight {
		h.pending[page] = append(waiters, resume)
		return true
	}
	h.pending[page] = []func(){resume}

	// Interrupt + driver + user/kernel switches on a host handler, then
	// three data movements: SSD -> host DRAM, the redundant staging
	// copy, and PCIe DMA to the GPU (Section II-C).
	h.handlers.Acquire(h.cfg.FaultFixedLat, func() {
		h.ssd.Send(mem.PageBytes4K, func() {
			h.staging.Send(mem.PageBytes4K, func() {
				h.pcie.Send(mem.PageBytes4K, func() { h.arrive(page) })
			})
		})
	})
	return true
}

func (h *hostPath) arrive(page uint64) {
	h.clock++
	h.resident[page] = h.clock
	if len(h.resident) > h.cfg.GPUMemPages {
		h.evictLRU()
	}
	waiters := h.pending[page]
	delete(h.pending, page)
	for _, w := range waiters {
		w()
	}
}

func (h *hostPath) evictLRU() {
	var victim uint64
	oldest := ^uint64(0)
	for p, s := range h.resident {
		if s < oldest {
			oldest = s
			victim = p
		}
	}
	delete(h.resident, victim)
	h.mmu.InvalidatePage(victim)
	h.Evictions.Inc()
}
