// Package cellkey derives the content address of one simulation
// cell: the hex SHA-256 of a canonical JSON encoding of (schema
// version, platform kind, workload mix ID, trace scale, full
// configuration). A simulation is a pure function of exactly those
// inputs, so the key names its result wherever it lives — the
// persistent store files entries under it, the simsvc scheduler
// coalesces concurrent requests on it, and the campaign subsystem
// uses it to dedupe grid cells across whole campaigns. The derivation
// lives in this leaf package (rather than internal/store, which
// re-exports it) so the declarative layers can address cells without
// dragging in the store's result-codec dependencies.
package cellkey

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"zng/internal/config"
	"zng/internal/platform"
)

// SchemaVersion stamps the key derivation. It participates in every
// cell key, so bumping it — whenever the result encoding or the
// meaning of any keyed input changes — invalidates all existing
// store entries at once instead of letting stale bytes decode into
// wrong results.
const SchemaVersion = 1

// keyDoc is the canonically-encoded cell identity that gets hashed.
// Struct fields marshal in declaration order and config.Config is a
// flat value type (no maps, no pointers), so the encoding — and
// therefore the key — is deterministic across processes.
type keyDoc struct {
	Schema int           `json:"schema"`
	Kind   string        `json:"kind"`
	Mix    string        `json:"mix"` // workload.Mix.ID(), the content identity
	Scale  float64       `json:"scale"`
	Cfg    config.Config `json:"cfg"`
}

// Key returns the content address of one simulation cell. Mixes
// participate through their ID rather than their display name, so
// aliasing scenarios (consol-2 and bfs1-gaus, say) share one entry.
func Key(kind platform.Kind, mixID string, scale float64, cfg config.Config) string {
	h := sha256.New()
	if err := json.NewEncoder(h).Encode(keyDoc{
		Schema: SchemaVersion,
		Kind:   kind.String(),
		Mix:    mixID,
		Scale:  scale,
		Cfg:    cfg,
	}); err != nil {
		// The only encodable failure here is a non-finite scale (JSON
		// has no NaN/Inf); every entry point validates scale first, so
		// reaching this is a caller bug worth failing loudly on.
		panic(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}
