package gpu

import (
	"testing"

	"zng/internal/config"
	"zng/internal/mem"
	"zng/internal/mmu"
	"zng/internal/sim"
	"zng/internal/workload"
)

// fixedMem is a backend with constant latency.
type fixedMem struct {
	eng  *sim.Engine
	lat  sim.Tick
	seen int
}

func (f *fixedMem) Access(r *mem.Request) {
	f.seen++
	f.eng.Schedule(f.lat, r.Complete)
}

func rig(lat sim.Tick) (*sim.Engine, *GPU, *fixedMem) {
	eng := sim.NewEngine()
	c := config.Default()
	c.GPU.SMs = 4
	be := &fixedMem{eng: eng, lat: lat}
	u := mmu.New(eng, c.MMU, c.GPU.SMs, mmu.BaselineWalkLat(c.MMU))
	u.Translate = func(va uint64) uint64 { return va }
	g := New(eng, c.GPU, c.L1, u, be)
	return eng, g, be
}

func apps(scale float64) (*workload.App, *workload.App) {
	sa, _ := workload.SpecByName("deg")
	sb, _ := workload.SpecByName("back")
	return workload.NewApp(sa, scale, 0), workload.NewApp(sb, scale, 1)
}

func TestSingleAppRunsToCompletion(t *testing.T) {
	eng, g, _ := rig(50)
	a, _ := apps(0.02)
	g.Launch(a)
	eng.Run()
	if !g.Done() {
		t.Fatal("app did not finish")
	}
	if g.Insts.Value() == 0 {
		t.Fatal("no instructions retired")
	}
	if g.IPC() <= 0 {
		t.Errorf("IPC = %v", g.IPC())
	}
}

func TestCoRunFinishesBothApps(t *testing.T) {
	eng, g, be := rig(50)
	a, b := apps(0.02)
	finished := false
	g.OnFinish = func() { finished = true }
	g.Launch(a, b)
	eng.Run()
	if !finished || !g.Done() {
		t.Fatal("co-run did not finish")
	}
	if be.seen == 0 {
		t.Error("no memory traffic reached the backend")
	}
}

func TestSlowerMemoryLowersIPC(t *testing.T) {
	run := func(lat sim.Tick) float64 {
		eng, g, _ := rig(lat)
		a, b := apps(0.02)
		g.Launch(a, b)
		eng.Run()
		return g.IPC()
	}
	fast, slow := run(20), run(5000)
	if slow >= fast {
		t.Errorf("IPC with slow memory (%v) should be below fast memory (%v)", slow, fast)
	}
	if fast/slow < 1.5 {
		t.Errorf("latency sensitivity too weak: %.3f vs %.3f", fast, slow)
	}
}

func TestTLPHidesLatencyPartially(t *testing.T) {
	// With many warps, doubling memory latency must NOT double runtime
	// (latency hiding). Compare against the no-overlap bound.
	cyc := func(lat sim.Tick) sim.Tick {
		eng, g, _ := rig(lat)
		a, b := apps(0.02)
		g.Launch(a, b)
		eng.Run()
		return g.Cycles()
	}
	c1, c2 := cyc(100), cyc(200)
	if float64(c2) > float64(c1)*1.9 {
		t.Errorf("no latency hiding: %d -> %d cycles", c1, c2)
	}
}

func TestL1FiltersBackendTraffic(t *testing.T) {
	eng, g, be := rig(50)
	a, _ := apps(0.05)
	g.Launch(a)
	eng.Run()
	// Total sector accesses far exceed what reaches the backend thanks
	// to L1 hits and MSHR merging.
	var totalAcc int
	st := workload.Characterize(a)
	totalAcc = st.ReadSectors + st.WriteSectors
	if be.seen >= totalAcc {
		t.Errorf("backend saw %d of %d accesses: L1 filtered nothing", be.seen, totalAcc)
	}
}

func TestIPCBoundedByIssueWidth(t *testing.T) {
	eng, g, _ := rig(1)
	a, b := apps(0.05)
	g.Launch(a, b)
	eng.Run()
	// 4 SMs x 1 issue/cycle.
	if ipc := g.IPC(); ipc > 4.0 {
		t.Errorf("IPC %v exceeds issue bandwidth", ipc)
	}
}

func TestKernelBarrier(t *testing.T) {
	// pr has 53 kernels; ensure the kernel counter advances and all
	// kernels execute (instruction total matches the trace).
	eng := sim.NewEngine()
	c := config.Default()
	c.GPU.SMs = 4
	be := &fixedMem{eng: eng, lat: 10}
	u := mmu.New(eng, c.MMU, c.GPU.SMs, 10)
	u.Translate = func(va uint64) uint64 { return va }
	g := New(eng, c.GPU, c.L1, u, be)
	spec, _ := workload.SpecByName("pr")
	a := workload.NewApp(spec, 0.02, 0)
	g.Launch(a)
	eng.Run()
	if !g.Done() {
		t.Fatal("did not finish")
	}
	// Each memory instruction retires 1 + its ALU run; just validate
	// total memory instructions align with the trace definition.
	want := a.TotalMemInsts()
	if want == 0 || g.Insts.Value() < uint64(want) {
		t.Errorf("retired %d insts, trace holds %d memory insts", g.Insts.Value(), want)
	}
}

func TestLaunchValidation(t *testing.T) {
	_, g, _ := rig(10)
	defer func() {
		if recover() == nil {
			t.Error("want panic on zero apps")
		}
	}()
	g.Launch()
}
