// Package gpu models the streaming multiprocessors of the simulated
// GTX580-class GPU (Table I): 16 SMs at 1.2 GHz, up to 80 resident
// warps each, one instruction issued per SM per cycle, a private L1D
// per SM, and address translation through the shared MMU before the
// caches (Section II-A).
//
// The model is warp-level and event-driven: arithmetic runs occupy the
// SM issue pipeline for their run length (other warps fill the gaps,
// which is how thread-level parallelism hides memory latency), and a
// warp blocks until its memory instruction's coalesced sectors all
// complete. IPC is instructions retired over elapsed cycles — the
// metric Fig. 10 normalizes.
package gpu

import (
	"zng/internal/cache"
	"zng/internal/config"
	"zng/internal/mem"
	"zng/internal/mmu"
	"zng/internal/sim"
	"zng/internal/stats"
	"zng/internal/workload"
)

// GPU is the multiprocessor array plus per-SM L1 caches.
type GPU struct {
	eng *sim.Engine
	cfg config.GPU
	mmu *mmu.Unit
	l1s []*cache.Cache

	sms  []*sm
	apps []*appRun

	Insts   stats.Counter
	start   sim.Tick
	end     sim.Tick
	running int

	// OnFinish, if set, fires when every launched app completes.
	OnFinish func()
}

type sm struct {
	id    int
	issue *sim.Resource
}

type appRun struct {
	g      *GPU
	app    *workload.App
	smIDs  []int
	kernel int
	live   int // running warps in the current kernel
}

// New builds a GPU whose SMs translate through mmuU and access l1cfg
// caches backed by l2.
func New(eng *sim.Engine, cfg config.GPU, l1cfg config.Cache, mmuU *mmu.Unit, l2 mem.Memory) *GPU {
	g := &GPU{eng: eng, cfg: cfg, mmu: mmuU}
	for i := 0; i < cfg.SMs; i++ {
		g.sms = append(g.sms, &sm{id: i, issue: sim.NewResource(eng)})
		g.l1s = append(g.l1s, cache.New(eng, l1cfg, l2, "L1D"))
	}
	return g
}

// L1 returns SM i's private L1D (tests, statistics).
func (g *GPU) L1(i int) *cache.Cache { return g.l1s[i] }

// Launch starts the given applications concurrently, partitioning the
// SMs evenly among them (the multi-app co-run of Section V-A). It must
// be called once, before the engine runs.
func (g *GPU) Launch(apps ...*workload.App) {
	if len(apps) == 0 || len(apps) > len(g.sms) {
		panic("gpu: need between 1 and SMs applications")
	}
	g.start = g.eng.Now()
	per := len(g.sms) / len(apps)
	for i, a := range apps {
		run := &appRun{g: g, app: a}
		lo := i * per
		hi := lo + per
		if i == len(apps)-1 {
			hi = len(g.sms)
		}
		for s := lo; s < hi; s++ {
			run.smIDs = append(run.smIDs, s)
		}
		g.apps = append(g.apps, run)
		g.running++
	}
	for _, run := range g.apps {
		run.startKernel()
	}
}

// Cycles reports elapsed cycles from launch to the last app's finish
// (or now, while running).
func (g *GPU) Cycles() sim.Tick {
	if g.running == 0 && g.end > g.start {
		return g.end - g.start
	}
	return g.eng.Now() - g.start
}

// IPC reports retired instructions per cycle across all SMs.
func (g *GPU) IPC() float64 {
	c := g.Cycles()
	if c == 0 {
		return 0
	}
	return float64(g.Insts.Value()) / float64(c)
}

// Done reports whether every launched app has finished.
func (g *GPU) Done() bool { return g.running == 0 && len(g.apps) > 0 }

func (r *appRun) startKernel() {
	warps := r.app.Warps()
	r.live = warps
	for w := 0; w < warps; w++ {
		smID := r.smIDs[w%len(r.smIDs)]
		wc := &warpCtx{
			run:    r,
			sm:     r.g.sms[smID],
			stream: r.app.Stream(r.kernel, w),
			id:     r.app.Index<<20 | r.kernel<<10 | w,
		}
		// Stagger warp starts by a cycle to avoid a synchronized stampede.
		r.g.eng.Schedule(sim.Tick(w%workload.SectorBytes), wc.step)
	}
}

func (r *appRun) warpDone() {
	r.live--
	if r.live > 0 {
		return
	}
	r.kernel++
	if r.kernel < r.app.Kernels() {
		// Kernel barrier: the next launch begins once all warps retire.
		r.g.eng.Schedule(1, r.startKernel)
		return
	}
	r.g.running--
	if r.g.running == 0 {
		r.g.end = r.g.eng.Now()
		if r.g.OnFinish != nil {
			r.g.OnFinish()
		}
	}
}

type warpCtx struct {
	run    *appRun
	sm     *sm
	stream *workload.Stream
	id     int

	// pendingMem counts memory instructions in flight; a warp stalls
	// only once it reaches cfg.MaxPerWarpMem outstanding (real SMs
	// let a warp run ahead until a use-dependency).
	pendingMem int
	blocked    bool
	draining   bool
}

// step fetches and executes the warp's next instruction.
func (w *warpCtx) step() {
	g := w.run.g
	inst, ok := w.stream.Next()
	if !ok {
		if w.pendingMem > 0 {
			w.draining = true
			return
		}
		w.run.warpDone()
		return
	}
	// The arithmetic run plus the memory instruction occupy the issue
	// pipeline; each slot is one retired instruction.
	cost := sim.Tick(inst.ALU)
	insts := inst.ALU
	if len(inst.Acc) > 0 {
		cost++
		insts++
	}
	if cost < 1 {
		cost, insts = 1, 1
	}
	g.Insts.Add(uint64(insts))
	acc := inst.Acc
	pc := inst.PC
	w.sm.issue.Acquire(cost, func() {
		if len(acc) == 0 {
			g.eng.Schedule(0, w.step)
			return
		}
		w.pendingMem++
		outstanding := len(acc)
		for _, a := range acc {
			a := a
			g.mmu.Request(w.sm.id, a.Addr, func(pa uint64) {
				r := &mem.Request{
					Addr: pa, Size: workload.SectorBytes, Write: a.Write,
					PC: pc, Warp: w.id, SM: w.sm.id,
					Done: func() {
						outstanding--
						if outstanding == 0 {
							w.memDone()
						}
					},
				}
				g.l1s[w.sm.id].Access(r)
			})
		}
		max := g.cfg.MaxPerWarpMem
		if max < 1 {
			max = 1
		}
		if w.pendingMem < max {
			// Run ahead to the next instruction.
			g.eng.Schedule(1, w.step)
		} else {
			w.blocked = true
		}
	})
}

// memDone retires one memory instruction and resumes the warp if it
// was stalled on the outstanding limit (or finishes it when draining).
func (w *warpCtx) memDone() {
	g := w.run.g
	w.pendingMem--
	if w.draining {
		if w.pendingMem == 0 {
			w.run.warpDone()
		}
		return
	}
	if w.blocked {
		w.blocked = false
		g.eng.Schedule(1, w.step)
	}
}
