package stats

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table used by the experiment
// drivers to print figure series in the same layout the paper reports.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; cells are formatted with %v, floats with %.3g
// unless already strings.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		case float32:
			row[i] = FormatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cols reports the number of columns (the header width).
func (t *Table) Cols() int { return len(t.header) }

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// Header returns a copy of the column headers.
func (t *Table) Header() []string {
	out := make([]string, len(t.header))
	copy(out, t.header)
	return out
}

// Cell returns the formatted cell at row r, column c.
func (t *Table) Cell(r, c int) string { return t.rows[r][c] }

// Row returns a copy of data row r. Rows may be shorter than the
// header when trailing cells were omitted.
func (t *Table) Row(r int) []string {
	out := make([]string, len(t.rows[r]))
	copy(out, t.rows[r])
	return out
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// FormatFloat renders a float the way table cells do: three decimals
// with trailing zeros (and a bare sign) trimmed. It is the
// deterministic formatting every emitter shares.
func FormatFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}
