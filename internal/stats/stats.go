// Package stats collects the measurements the ZnG evaluation reports:
// counters, latency breakdowns per hardware component, bandwidth
// meters, and histograms, plus plain-text table rendering used by the
// experiment drivers to print the same rows and series the paper's
// figures show.
package stats

import "sort"

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.n }

// Ratio returns c/other, or 0 if other is zero.
func (c *Counter) Ratio(other *Counter) float64 {
	if other.n == 0 {
		return 0
	}
	return float64(c.n) / float64(other.n)
}

// Breakdown accumulates time (or any additive quantity) attributed to
// named components — the structure behind the paper's Fig. 4d latency
// breakdown.
type Breakdown struct {
	order []string
	vals  map[string]float64
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{vals: make(map[string]float64)}
}

// Add attributes v to component name, creating it on first use.
func (b *Breakdown) Add(name string, v float64) {
	if _, ok := b.vals[name]; !ok {
		b.order = append(b.order, name)
	}
	b.vals[name] += v
}

// Get reports the accumulated value for name.
func (b *Breakdown) Get(name string) float64 { return b.vals[name] }

// Total reports the sum over all components, accumulated in first-use
// order: float addition does not associate, so summing in map
// iteration order would let the random order perturb the result's low
// bits from run to run.
func (b *Breakdown) Total() float64 {
	t := 0.0
	for _, n := range b.order {
		t += b.vals[n]
	}
	return t
}

// Components returns component names in first-use order.
func (b *Breakdown) Components() []string {
	out := make([]string, len(b.order))
	copy(out, b.order)
	return out
}

// Fractions returns each component's share of the total, in
// first-use order. An empty breakdown yields nil.
func (b *Breakdown) Fractions() []float64 {
	t := b.Total()
	if t == 0 {
		return nil
	}
	out := make([]float64, len(b.order))
	for i, n := range b.order {
		out[i] = b.vals[n] / t
	}
	return out
}

// Histogram is a fixed-bucket histogram over non-negative values.
type Histogram struct {
	bounds []float64 // bucket i holds values < bounds[i]; last bucket overflow
	counts []uint64
	n      uint64
	sum    float64
	max    float64
}

// NewHistogram creates a histogram with the given ascending upper
// bounds; values beyond the last bound land in an overflow bucket.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records value v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) && v == h.bounds[i] {
		i++ // bucket upper bounds are exclusive
	}
	h.counts[i]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Mean reports the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max reports the largest observation.
func (h *Histogram) Max() float64 { return h.max }

// Bucket reports the count in bucket i (len(bounds)+1 buckets).
func (h *Histogram) Bucket(i int) uint64 { return h.counts[i] }

// Quantile returns an upper bound on the q-quantile (0<=q<=1) using
// bucket boundaries; exact for values that align with boundaries.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(q * float64(h.n))
	if target >= h.n {
		target = h.n - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}
