package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c, d Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Errorf("Value = %d, want 10", c.Value())
	}
	d.Add(5)
	if r := c.Ratio(&d); r != 2 {
		t.Errorf("Ratio = %v, want 2", r)
	}
	var zero Counter
	if r := c.Ratio(&zero); r != 0 {
		t.Errorf("Ratio by zero = %v, want 0", r)
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	b.Add("l1", 10)
	b.Add("l2", 20)
	b.Add("flash", 70)
	b.Add("l1", 0) // no-op add keeps order
	if got := b.Total(); got != 100 {
		t.Errorf("Total = %v, want 100", got)
	}
	comps := b.Components()
	if len(comps) != 3 || comps[0] != "l1" || comps[2] != "flash" {
		t.Errorf("Components = %v", comps)
	}
	fr := b.Fractions()
	if math.Abs(fr[2]-0.7) > 1e-12 {
		t.Errorf("flash fraction = %v, want 0.7", fr[2])
	}
	if b.Get("l2") != 20 {
		t.Errorf("Get(l2) = %v", b.Get("l2"))
	}
	if NewBreakdown().Fractions() != nil {
		t.Error("empty breakdown should yield nil fractions")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []float64{1, 5, 10, 50, 99, 100, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d", h.Count())
	}
	// buckets: <10: {1,5}=2; <100: {10,50,99}=3; <1000: {100,500}=2; ovf: {5000}=1
	want := []uint64{2, 3, 2, 1}
	for i, w := range want {
		if h.Bucket(i) != w {
			t.Errorf("Bucket(%d) = %d, want %d", i, h.Bucket(i), w)
		}
	}
	if h.Max() != 5000 {
		t.Errorf("Max = %v", h.Max())
	}
	if m := h.Mean(); math.Abs(m-720.625) > 1e-9 {
		t.Errorf("Mean = %v, want 720.625", m)
	}
	if q := h.Quantile(0.5); q != 100 {
		t.Errorf("Quantile(0.5) = %v, want 100", q)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on non-ascending bounds")
		}
	}()
	NewHistogram(10, 10)
}

// Property: histogram count equals observations; mean within [0, max].
func TestHistogramProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram(16, 256, 4096)
		for _, v := range vals {
			h.Observe(float64(v))
		}
		if h.Count() != uint64(len(vals)) {
			return false
		}
		if len(vals) > 0 && (h.Mean() < 0 || h.Mean() > h.Max()) {
			return false
		}
		var total uint64
		for i := 0; i < 4; i++ {
			total += h.Bucket(i)
		}
		return total == uint64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "workload", "ipc", "speedup")
	tb.AddRow("betw-back", 0.125, 7.5)
	tb.AddRow("bfs1-gaus", 1, "n/a")
	s := tb.String()
	if !strings.Contains(s, "== Fig X ==") {
		t.Errorf("missing title:\n%s", s)
	}
	if !strings.Contains(s, "betw-back") || !strings.Contains(s, "0.125") {
		t.Errorf("missing cells:\n%s", s)
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	if tb.Cell(1, 1) != "1" {
		t.Errorf("Cell(1,1) = %q, want trimmed %q", tb.Cell(1, 1), "1")
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("line count = %d, want 5:\n%s", len(lines), s)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:   "1.5",
		2:     "2",
		0.125: "0.125",
		0:     "0",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
