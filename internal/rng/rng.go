// Package rng provides the simulator's pseudo-random number
// generator: a xoshiro256** core seeded through a splitmix64
// expansion.
//
// The legacy math/rand Source the workload generators originally used
// pays a ~20k-operation lagged-Fibonacci warm-up on every
// rand.NewSource call; profiling the trace generators showed ~89% of
// CPU inside that seeding loop, because a fresh generator is built per
// (kernel, warp) stream. Seeding here is O(1) — four splitmix64 steps
// — so constructing a generator per stream is effectively free, and
// the stream remains a pure function of its 64-bit seed.
//
// The generator is deliberately minimal: exactly the draws the
// workload package needs (Uint64, Intn, Float64), all deterministic
// across platforms and Go releases. It is not safe for concurrent use
// and is not cryptographically secure.
package rng

import "math/bits"

// RNG is a xoshiro256** generator. The zero value is NOT usable: the
// all-zero state is xoshiro's one absorbing state and emits zero
// forever. Always construct through New, which cannot produce it.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator seeded from the given 64-bit seed. Seeding
// is O(1): the four state words are consecutive splitmix64 outputs,
// which both scrambles adjacent seeds apart and guarantees a non-zero
// state (splitmix64's output function is a bijection, so four
// consecutive outputs cannot all be zero).
func New(seed uint64) RNG {
	var r RNG
	r.s0 = splitmix64(&seed)
	r.s1 = splitmix64(&seed)
	r.s2 = splitmix64(&seed)
	r.s3 = splitmix64(&seed)
	return r
}

// splitmix64 advances the counter and returns the next output of
// Steele et al.'s SplitMix64 sequence.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniform bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Uint64n returns a uniform draw in [0, n) using Lemire's
// nearly-divisionless bounded method. n must be non-zero.
func (r *RNG) Uint64n(n uint64) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0,
// matching math/rand.Intn.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform draw in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 { return float64(r.Uint64()>>11) * (1.0 / (1 << 53)) }
