package rng

import (
	"math"
	"testing"
)

func TestDeterministic(t *testing.T) {
	r1, r2 := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	// Adjacent seeds (the workload mixes kernel/warp indexes into low
	// bits) must produce unrelated first draws.
	seen := map[uint64]uint64{}
	for seed := uint64(0); seed < 1000; seed++ {
		r := New(seed)
		v := r.Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("seeds %d and %d share first draw %x", prev, seed, v)
		}
		seen[v] = seed
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	r := New(0)
	var orAll uint64
	for i := 0; i < 64; i++ {
		orAll |= r.Uint64()
	}
	if orAll != ^uint64(0) {
		t.Errorf("seed-0 outputs never set some bits: %x", orAll)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 31, 32, 1000} {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r := New(1)
	r.Intn(0)
}

func TestIntnUniformish(t *testing.T) {
	r := New(99)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: %d draws, want ~%.0f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; mean < 0.49 || mean > 0.51 {
		t.Errorf("mean = %.4f, want ~0.5", mean)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

// BenchmarkNew pins the point of the package: O(1) seeding. The legacy
// rand.NewSource this replaces costs ~20k operations per seed.
func BenchmarkNew(b *testing.B) {
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		r := New(uint64(i))
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
