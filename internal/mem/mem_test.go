package mem

import (
	"testing"
	"testing/quick"
)

func TestLineAddr(t *testing.T) {
	cases := []struct {
		addr uint64
		line int
		want uint64
	}{
		{0, 128, 0},
		{127, 128, 0},
		{128, 128, 128},
		{0x1234, 128, 0x1200 | 0x00},
		{4095, 4096, 0},
		{4096, 4096, 4096},
	}
	for _, c := range cases {
		if got := LineAddr(c.addr, c.line); got != c.want {
			t.Errorf("LineAddr(%#x, %d) = %#x, want %#x", c.addr, c.line, got, c.want)
		}
	}
}

func TestPageAddr(t *testing.T) {
	if got := PageAddr(0x12345, PageBytes4K); got != 0x12000 {
		t.Errorf("PageAddr = %#x", got)
	}
}

// Property: LineAddr is idempotent and never exceeds the input.
func TestLineAddrProperty(t *testing.T) {
	f := func(addr uint64) bool {
		la := LineAddr(addr, 128)
		return la <= addr && LineAddr(la, 128) == la && addr-la < 128
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompleteNilSafe(t *testing.T) {
	r := &Request{}
	r.Complete() // must not panic with nil Done
	called := 0
	r.Done = func() { called++ }
	r.Complete()
	if called != 1 {
		t.Errorf("called = %d", called)
	}
}

func TestFuncAdapter(t *testing.T) {
	hit := false
	var m Memory = Func(func(r *Request) { hit = true; r.Complete() })
	done := false
	m.Access(&Request{Done: func() { done = true }})
	if !hit || !done {
		t.Error("Func adapter failed")
	}
}
