// Package mem defines the memory request type that flows through the
// simulated hierarchy (SM coalescer -> TLB/MMU -> L1 -> L2 -> platform
// backend) and the interface every level implements.
package mem

// Request is one coalesced memory access. GPU requests are 128 B
// sectors (Section III-A); prefetches and page-fault fills may be
// larger.
type Request struct {
	// Addr is the request address. Before translation it is a virtual
	// address; platforms that translate in the MMU rewrite it to a
	// device-physical address before the caches see it.
	Addr uint64
	// Size in bytes.
	Size int
	// Write distinguishes stores from loads.
	Write bool
	// PC is the program counter of the generating LD/ST instruction;
	// the ZnG prefetch predictor is indexed by it.
	PC uint64
	// Warp and SM identify the issuing context.
	Warp int
	SM   int
	// Prefetch marks requests injected by the read-prefetch unit.
	Prefetch bool
	// Done is invoked exactly once when the request is complete.
	Done func()
}

// Complete invokes Done if set. Levels must call it exactly once per
// request they own.
func (r *Request) Complete() {
	if r.Done != nil {
		r.Done()
	}
}

// Memory is anything that can service requests: a cache level, an
// interconnect adapter, a DRAM controller, the flash backbone.
type Memory interface {
	// Access starts servicing r. Completion is signalled via r.Done,
	// possibly synchronously for zero-latency hits.
	Access(r *Request)
}

// Func adapts a function to the Memory interface.
type Func func(r *Request)

// Access implements Memory.
func (f Func) Access(r *Request) { f(r) }

// PageBytes4K is the 4 KB page size shared by the MMU and Z-NAND.
const PageBytes4K = 4096

// LineAddr returns the address of the line of size lineBytes
// containing addr. lineBytes must be a power of two.
func LineAddr(addr uint64, lineBytes int) uint64 {
	return addr &^ (uint64(lineBytes) - 1)
}

// PageAddr returns the 4 KB-aligned page address containing addr.
func PageAddr(addr uint64, pageBytes int) uint64 {
	return addr &^ (uint64(pageBytes) - 1)
}
