package ssd

import (
	"testing"

	"zng/internal/config"
	"zng/internal/mem"
	"zng/internal/sim"
)

func testModule(bufPages int) (*sim.Engine, *Module) {
	eng := sim.NewEngine()
	c := config.Default()
	fc := c.Flash
	fc.Channels = 4
	fc.DiesPerPkg = 2
	fc.PlanesPerDie = 2
	fc.BlocksPerPl = 64
	fc.PagesPerBlock = 16
	ec := c.Engine
	ec.DRAMBufBytes = int64(bufPages) * int64(fc.PageBytes)
	return eng, New(eng, ec, fc, c.FTL)
}

func TestReadMissFillsBufferThenHits(t *testing.T) {
	eng, m := testModule(64)
	done := 0
	m.Access(&mem.Request{Addr: 0x1000, Size: 128, Done: func() { done++ }})
	eng.Run()
	if done != 1 {
		t.Fatal("read did not complete")
	}
	missTime := eng.Now()
	if missTime < m.BB.Cfg.ReadLat {
		t.Errorf("miss completed at %d, must include tR=%d", missTime, m.BB.Cfg.ReadLat)
	}
	if m.BufMisses.Value() != 1 || m.ReadFills.Value() != 1 {
		t.Errorf("miss accounting: %d/%d", m.BufMisses.Value(), m.ReadFills.Value())
	}

	start := eng.Now()
	m.Access(&mem.Request{Addr: 0x1040, Size: 128, Done: func() { done++ }})
	eng.Run()
	if done != 2 {
		t.Fatal("hit did not complete")
	}
	if hitTime := eng.Now() - start; hitTime >= missTime {
		t.Errorf("buffer hit (%d) must be much faster than the fill (%d)", hitTime, missTime)
	}
	if m.BufHits.Value() != 1 {
		t.Errorf("buffer hits = %d", m.BufHits.Value())
	}
}

func TestEngineSerializesRequests(t *testing.T) {
	eng, m := testModule(1024)
	// Warm two pages so everything hits the buffer; completion is then
	// engine-throughput-bound.
	done := 0
	m.Access(&mem.Request{Addr: 0, Size: 128, Done: func() { done++ }})
	m.Access(&mem.Request{Addr: 0x1000, Size: 128, Done: func() { done++ }})
	eng.Run()
	const n = 256
	start := eng.Now()
	for i := 0; i < n; i++ {
		m.Access(&mem.Request{Addr: uint64(i%2) * 0x1000, Size: 128, Done: func() { done++ }})
	}
	eng.Run()
	elapsed := eng.Now() - start
	// n requests over `cores` cores at FTLLatPerReq each.
	min := sim.Tick(n) * m.cfg.FTLLatPerReq / sim.Tick(m.cfg.Cores)
	if elapsed < min {
		t.Errorf("elapsed %d < engine-bound minimum %d: firmware cost not charged", elapsed, min)
	}
	if done != n+2 {
		t.Errorf("done = %d", done)
	}
}

func TestWriteAllocatesWithoutFlashRead(t *testing.T) {
	eng, m := testModule(64)
	done := 0
	m.Access(&mem.Request{Addr: 0x9000, Size: 128, Write: true, Done: func() { done++ }})
	eng.Run()
	if done != 1 {
		t.Fatal("write did not complete")
	}
	if m.BB.ArrayReads.Value() != 0 {
		t.Error("buffered write must not touch the flash array")
	}
	if m.BB.ArrayPrograms.Value() != 0 {
		t.Error("write must be absorbed by the buffer, not programmed")
	}
}

func TestDirtyEvictionFlushesToFlash(t *testing.T) {
	eng, m := testModule(2) // tiny buffer
	done := 0
	m.Access(&mem.Request{Addr: 0, Size: 128, Write: true, Done: func() { done++ }})
	eng.Run()
	// Two more pages force the dirty page out.
	m.Access(&mem.Request{Addr: 0x1000, Size: 128, Done: func() { done++ }})
	eng.Run()
	m.Access(&mem.Request{Addr: 0x2000, Size: 128, Done: func() { done++ }})
	eng.Run()
	if m.Flushes.Value() == 0 {
		t.Error("dirty eviction must flush")
	}
	if m.BB.ArrayPrograms.Value() == 0 {
		t.Error("flush must program the flash array")
	}
	if done != 3 {
		t.Errorf("done = %d", done)
	}
}

func TestCleanEvictionDoesNotFlush(t *testing.T) {
	eng, m := testModule(2)
	done := 0
	for i := 0; i < 4; i++ {
		m.Access(&mem.Request{Addr: uint64(i) * 0x1000, Size: 128, Done: func() { done++ }})
		eng.Run()
	}
	if m.Flushes.Value() != 0 {
		t.Errorf("clean evictions flushed %d times", m.Flushes.Value())
	}
	if done != 4 {
		t.Errorf("done = %d", done)
	}
}

func TestPageBufferLRU(t *testing.T) {
	b := newPageBuffer(2)
	b.insert(1, false)
	b.insert(2, false)
	b.touch(1, false) // 2 becomes LRU
	victim, dirty, evicted := b.insert(3, false)
	if !evicted || victim != 2 || dirty {
		t.Errorf("evicted %v victim %d dirty %v, want 2 clean", evicted, victim, dirty)
	}
	if b.Len() != 2 {
		t.Errorf("len = %d", b.Len())
	}
	// Reinserting a resident page must not evict.
	if _, _, ev := b.insert(3, true); ev {
		t.Error("reinsert evicted")
	}
	if !b.touch(3, false) {
		t.Error("page 3 missing")
	}
}

func TestBufferHitRateUnderReuse(t *testing.T) {
	eng, m := testModule(256)
	done := 0
	// 8 pages, each accessed 16 times.
	for rep := 0; rep < 16; rep++ {
		for p := 0; p < 8; p++ {
			m.Access(&mem.Request{Addr: uint64(p) * 0x1000, Size: 128, Done: func() { done++ }})
		}
		eng.Run()
	}
	if done != 128 {
		t.Fatalf("done = %d", done)
	}
	if m.ReadFills.Value() != 8 {
		t.Errorf("fills = %d, want 8 (one per page)", m.ReadFills.Value())
	}
}
