// Package ssd models the SSD module that HybridGPU embeds behind the
// GPU L2 cache (Fig. 1a): a request dispatcher, the SSD engine (a few
// low-power embedded cores executing the page-mapped FTL firmware — the
// component Fig. 4d blames for 67% of HybridGPU's memory latency), a
// single-package DRAM read/write buffer on a 32-bit bus, and legacy
// shared-bus flash channels to the Z-NAND backbone.
package ssd

import (
	"zng/internal/config"
	"zng/internal/flash"
	"zng/internal/ftl"
	"zng/internal/mem"
	"zng/internal/noc"
	"zng/internal/sim"
	"zng/internal/stats"
)

// Module is the embedded SSD. It implements mem.Memory for 128 B GPU
// sector requests.
type Module struct {
	eng *sim.Engine
	cfg config.SSDEngine

	dispatch *sim.Resource
	engine   *sim.Pool
	bufPort  *sim.Port
	channels []*noc.Bus

	BB  *flash.Backbone
	FTL *ftl.PageMapped

	buf *pageBuffer

	// Statistics.
	BufHits, BufMisses stats.Counter
	Flushes            stats.Counter
	ReadFills          stats.Counter
}

// New assembles the module over its own Z-NAND backbone.
func New(eng *sim.Engine, ecfg config.SSDEngine, fcfg config.Flash, tcfg config.FTL) *Module {
	bb := flash.New(eng, fcfg)
	m := &Module{
		eng:      eng,
		cfg:      ecfg,
		dispatch: sim.NewResource(eng),
		engine:   sim.NewPool(eng, ecfg.Cores),
		bufPort:  sim.NewPort(eng, config.GBpsToBytesPerTick(ecfg.DRAMBufGBps), ecfg.DRAMBufLat),
		BB:       bb,
		FTL:      ftl.NewPageMapped(eng, bb, tcfg),
		buf:      newPageBuffer(int(ecfg.DRAMBufBytes / int64(fcfg.PageBytes))),
	}
	for i := 0; i < fcfg.Channels; i++ {
		m.channels = append(m.channels, noc.NewBus(eng, config.GBpsToBytesPerTick(fcfg.ChannelGBps), 2))
	}
	return m
}

// Access services one GPU sector request: dispatcher queueing, engine
// firmware time, then buffer hit or flash fill.
func (m *Module) Access(r *mem.Request) {
	m.dispatch.Acquire(m.cfg.DispatchLat, func() {
		m.engine.Acquire(m.cfg.FTLLatPerReq, func() { m.afterEngine(r) })
	})
}

func (m *Module) afterEngine(r *mem.Request) {
	page := mem.PageAddr(r.Addr, m.BB.Cfg.PageBytes)
	if m.buf.touch(page, r.Write) {
		m.BufHits.Inc()
		m.bufPort.Send(r.Size, r.Complete)
		return
	}
	m.BufMisses.Inc()

	if r.Write {
		// Write-allocate without fetch: the buffer page will be flushed
		// whole. (Flash pages are written as units; sub-page residue is
		// folded into the flush.)
		m.insert(page, true)
		m.bufPort.Send(r.Size, r.Complete)
		return
	}

	// Read fill: sense the page from its plane, move it over the legacy
	// channel bus, install, then serve the sector from the buffer.
	m.ReadFills.Inc()
	loc := m.FTL.Lookup(page)
	plane := m.BB.Plane(loc.Plane)
	ch := m.channels[m.BB.ChannelOf(loc.Plane)]
	plane.Read(loc.Block, loc.Page, func() {
		ch.Send(m.BB.Cfg.PageBytes, func() {
			m.insert(page, false)
			m.bufPort.Send(r.Size, r.Complete)
		})
	})
}

// insert adds a page to the buffer, flushing a dirty victim to flash.
func (m *Module) insert(page uint64, dirty bool) {
	victim, vdirty, evicted := m.buf.insert(page, dirty)
	if !evicted || !vdirty {
		return
	}
	m.Flushes.Inc()
	// Flush: engine prepares the program, channel moves the page, plane
	// programs it.
	m.engine.Acquire(m.cfg.FTLLatPerReq, func() {
		m.FTL.WritePage(victim, nil)
		// The channel transfer overlaps the program; charge its occupancy.
		cur := m.FTL.Lookup(victim)
		m.channels[m.BB.ChannelOf(cur.Plane)].Send(m.BB.Cfg.PageBytes, nil)
	})
}

// EngineBusyTicks reports cumulative firmware occupancy (Fig. 4d).
func (m *Module) EngineBusyTicks() sim.Tick { return m.engine.BusyTicks() }

// BufferBusyTicks reports DRAM-buffer bus occupancy.
func (m *Module) BufferBusyTicks() sim.Tick { return m.bufPort.BusyTicks() }

// ChannelBytes reports total bytes moved over the legacy channels.
func (m *Module) ChannelBytes() uint64 {
	var n uint64
	for _, c := range m.channels {
		n += c.Bytes.Value()
	}
	return n
}

// pageBuffer is the page-granularity LRU read/write buffer held in the
// module's internal DRAM.
type pageBuffer struct {
	cap     int
	clock   uint64
	entries map[uint64]*bufEntry
}

type bufEntry struct {
	stamp uint64
	dirty bool
}

func newPageBuffer(capacity int) *pageBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &pageBuffer{cap: capacity, entries: make(map[uint64]*bufEntry)}
}

// touch reports a hit, refreshing LRU state and dirtying on writes.
func (b *pageBuffer) touch(page uint64, write bool) bool {
	e, ok := b.entries[page]
	if !ok {
		return false
	}
	b.clock++
	e.stamp = b.clock
	if write {
		e.dirty = true
	}
	return true
}

// insert adds a page, evicting the LRU entry if full. It returns the
// victim and its dirtiness.
func (b *pageBuffer) insert(page uint64, dirty bool) (victim uint64, victimDirty, evicted bool) {
	b.clock++
	if e, ok := b.entries[page]; ok {
		e.stamp = b.clock
		e.dirty = e.dirty || dirty
		return 0, false, false
	}
	if len(b.entries) >= b.cap {
		oldest := ^uint64(0)
		for p, e := range b.entries {
			if e.stamp < oldest {
				oldest = e.stamp
				victim = p
			}
		}
		victimDirty = b.entries[victim].dirty
		delete(b.entries, victim)
		evicted = true
	}
	b.entries[page] = &bufEntry{stamp: b.clock, dirty: dirty}
	return victim, victimDirty, evicted
}

// Len reports resident pages (tests).
func (b *pageBuffer) Len() int { return len(b.entries) }
