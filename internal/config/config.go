// Package config transcribes Table I of the ZnG paper (system
// configuration of the simulated GTX580-class GPU with a GV100-class
// L2, the 800 GB-class Z-NAND SSD, Optane DC PMM timing, and the
// flash-network parameters) and derives the tick-domain constants the
// simulator uses.
//
// One simulator tick is one GPU core cycle at 1.2 GHz. All
// nanosecond-scale device parameters are converted with NsToTicks.
package config

import "zng/internal/sim"

// GPUClockGHz is the SM core clock from Table I.
const GPUClockGHz = 1.2

// NsToTicks converts a duration in nanoseconds to core cycles,
// rounding up so no latency ever becomes free.
func NsToTicks(ns float64) sim.Tick {
	t := sim.Tick(ns * GPUClockGHz)
	if float64(t) < ns*GPUClockGHz {
		t++
	}
	if t < 1 && ns > 0 {
		t = 1
	}
	return t
}

// UsToTicks converts microseconds to core cycles.
func UsToTicks(us float64) sim.Tick { return NsToTicks(us * 1000) }

// GBpsToBytesPerTick converts a bandwidth in GB/s to bytes per core
// cycle for sim.Port widths.
func GBpsToBytesPerTick(gbps float64) float64 { return gbps / GPUClockGHz }

// TicksToNs converts core cycles back to nanoseconds (for reporting).
func TicksToNs(t sim.Tick) float64 { return float64(t) / GPUClockGHz }

// BytesPerTickToGBps converts a port width back to GB/s.
func BytesPerTickToGBps(w float64) float64 { return w * GPUClockGHz }

// GPU core and cache hierarchy (Table I, left column).
type GPU struct {
	SMs           int // streaming multiprocessors
	MaxWarps      int // resident warps per SM
	WarpSize      int // threads per warp
	IssuePerCyc   int // instructions issued per SM per cycle
	MaxPerWarpMem int // outstanding memory instructions per warp
}

// Cache describes one cache level.
type Cache struct {
	Sets      int
	Ways      int
	LineBytes int
	Banks     int
	ReadLat   sim.Tick // per-access hit latency
	WriteLat  sim.Tick // write hit latency (STT-MRAM write is slower)
	MSHRs     int      // outstanding distinct-line misses
	WriteBack bool
	ReadOnly  bool // ZnG configures the STT-MRAM L2 as a read-only cache
}

// SizeBytes reports total capacity.
func (c Cache) SizeBytes() int { return c.Sets * c.Ways * c.LineBytes * max(1, c.Banks) }

// TLB and MMU (Section II-A academic design [18]).
type MMU struct {
	L1TLBEntries   int // per-SM
	WalkerThreads  int // highly-threaded page table walker
	WalkBufEntries int
	WalkCacheEnt   int
	WalkMemLatency sim.Tick // memory access cost per walk step
	WalkLevels     int
	DBMTLatency    sim.Tick // block-mapping-table lookup inside the MMU (ZnG)
}

// Flash describes the Z-NAND backbone (Table I, middle column).
type Flash struct {
	Channels      int
	PackagesPerCh int
	DiesPerPkg    int
	PlanesPerDie  int
	BlocksPerPl   int
	PagesPerBlock int
	PageBytes     int
	RegsPerPlane  int // cache registers; 2 baseline, 8 in ZnG
	IOPortsPerPkg int

	ReadLat    sim.Tick // tR: array sensing (3 us)
	ProgramLat sim.Tick // tPROG (100 us)
	EraseLat   sim.Tick // tERASE
	PECycles   int      // endurance per block (100k for SLC Z-NAND)

	// Legacy bus channel (HybridGPU): ONFI 800 MT/s.
	ChannelGBps float64
	// ZnG mesh network: 8 B links (8x the legacy channel width).
	MeshLinkGBps float64
	MeshHopLat   sim.Tick
	MeshDim      int // MeshDim x MeshDim router grid for 16 controllers
}

// Planes reports the total number of planes in the backbone.
func (f Flash) Planes() int {
	return f.Channels * f.PackagesPerCh * f.DiesPerPkg * f.PlanesPerDie
}

// BlockBytes reports the size of one flash block.
func (f Flash) BlockBytes() int { return f.PagesPerBlock * f.PageBytes }

// CapacityBytes reports the raw capacity of the backbone.
func (f Flash) CapacityBytes() int64 {
	return int64(f.Planes()) * int64(f.BlocksPerPl) * int64(f.BlockBytes())
}

// SSDEngine describes the embedded controller of the HybridGPU SSD
// module (Section III-A: 2–5 low-power cores; FTL processing is the
// dominant latency component at 67%).
type SSDEngine struct {
	Cores        int
	FTLLatPerReq sim.Tick // per-request firmware processing time
	DRAMBufGBps  float64  // single package, 32-bit bus
	DRAMBufLat   sim.Tick
	DRAMBufBytes int64 // data buffer capacity
	DispatchLat  sim.Tick
}

// DRAMKind selects a conventional memory backend.
type DRAMKind int

const (
	GDDR5 DRAMKind = iota
	DDR4
	LPDDR4
	OptanePMM
)

// String implements fmt.Stringer.
func (k DRAMKind) String() string {
	switch k {
	case GDDR5:
		return "GDDR5"
	case DDR4:
		return "DDR4"
	case LPDDR4:
		return "LPDDR4"
	case OptanePMM:
		return "Optane"
	}
	return "unknown"
}

// DRAM describes a conventional memory backend.
type DRAM struct {
	Kind        DRAMKind
	Controllers int
	TotalGBps   float64  // aggregate across controllers
	ReadLat     sim.Tick // device read latency
	WriteLat    sim.Tick
	AccessGran  int // bytes per device access (Optane: 256 B)

	// Static properties used by Fig. 3.
	PkgCapacityGB float64
	PowerWPerGB   float64
}

// PCIe and host path (Hetero platform, Section II-C).
type Host struct {
	PCIeGBps      float64  // effective GPU<->host bandwidth
	SSDGBps       float64  // external NVMe SSD streaming bandwidth
	FaultFixedLat sim.Tick // interrupt + user/kernel switches + driver
	StagingCopyBW float64  // host DRAM redundant-copy bandwidth (GB/s)
	GPUMemPages   int      // resident GPU-memory pages before eviction
}

// Prefetch describes the ZnG dynamic read-prefetch module (Fig. 8a).
type Prefetch struct {
	TableEntries  int
	WarpSlots     int
	CounterBits   int
	CutoffThresh  int
	HighWaste     float64 // halve granularity above this waste ratio
	LowWaste      float64 // grow granularity below this
	GrowBytes     int     // +1 KB
	MinBytes      int
	MaxBytes      int
	InitialBytes  int
	MonitorWindow int // evictions per monitor decision
}

// RegCacheNet selects the flash-register interconnect (Section IV-C).
type RegCacheNet int

const (
	// SWnet migrates register data through the flash network routers.
	SWnet RegCacheNet = iota
	// FCnet is a fully-connected point-to-point register network.
	FCnet
	// NiF is the proposed Network-in-Flash: shared I/O path and data
	// path buses per plane group plus a local data-register network.
	NiF
)

// String implements fmt.Stringer.
func (n RegCacheNet) String() string {
	switch n {
	case SWnet:
		return "SWnet"
	case FCnet:
		return "FCnet"
	case NiF:
		return "NiF"
	}
	return "unknown"
}

// RegCache describes the fully-associative flash-register write cache.
type RegCache struct {
	Net          RegCacheNet
	LocalNetGBps float64 // NiF local network between data registers
	BusLat       sim.Tick
	ThrashWindow int     // writes per thrashing-checker decision
	ThrashRatio  float64 // miss ratio above which L2 pinning engages
	PinLines     int     // L2 lines pinned for excess dirty data
}

// FTL describes the ZnG split FTL and the HybridGPU monolithic FTL.
type FTL struct {
	DataBlocksPerLog int     // physical data blocks sharing one log block
	OPFraction       float64 // over-provisioned space
	GCThreshold      float64 // free-block fraction triggering GC
	HelperThreadLat  sim.Tick
}

// Config aggregates the whole Table I system description.
type Config struct {
	GPU      GPU
	L1       Cache
	L2SRAM   Cache // 6 MB shared SRAM L2 (baselines)
	L2STT    Cache // 24 MB shared STT-MRAM L2 (ZnG)
	MMU      MMU
	Flash    Flash
	Engine   SSDEngine
	GDDR5    DRAM
	DDR4     DRAM
	LPDDR4   DRAM
	Optane   DRAM
	Host     Host
	Prefetch Prefetch
	RegCache RegCache
	FTL      FTL
}

// Default returns the Table I configuration.
func Default() Config {
	return Config{
		GPU: GPU{
			SMs:           16,
			MaxWarps:      80,
			WarpSize:      32,
			IssuePerCyc:   1,
			MaxPerWarpMem: 2,
		},
		L1: Cache{
			Sets: 64, Ways: 6, LineBytes: 128, Banks: 1,
			ReadLat: 1, WriteLat: 1, MSHRs: 32, WriteBack: false,
		},
		// 6 banks x 1024 sets x 8 ways x 128 B = 6 MB.
		L2SRAM: Cache{
			Sets: 1024, Ways: 8, LineBytes: 128, Banks: 6,
			ReadLat: 1, WriteLat: 1, MSHRs: 64, WriteBack: true,
		},
		// STT-MRAM quadruples capacity: 24 MB, write 5x read latency,
		// configured read-only in ZnG (writes bypass to flash registers).
		L2STT: Cache{
			Sets: 4096, Ways: 8, LineBytes: 128, Banks: 6,
			ReadLat: 1, WriteLat: 5, MSHRs: 128, WriteBack: false, ReadOnly: true,
		},
		MMU: MMU{
			L1TLBEntries:   64,
			WalkerThreads:  32,
			WalkBufEntries: 64,
			WalkCacheEnt:   1024,
			WalkMemLatency: 200,
			WalkLevels:     2,
			DBMTLatency:    4,
		},
		Flash: Flash{
			Channels: 16, PackagesPerCh: 1, DiesPerPkg: 8, PlanesPerDie: 8,
			BlocksPerPl: 1024, PagesPerBlock: 384, PageBytes: 4096,
			RegsPerPlane: 2, IOPortsPerPkg: 2,
			ReadLat:    UsToTicks(3),
			ProgramLat: UsToTicks(100),
			EraseLat:   UsToTicks(1000),
			PECycles:   100_000,
			// 16 channels x 1.6 GB/s (ONFI 800 MT/s DDR) = 25.6 GB/s,
			// matching the accumulated flash-channel bandwidth of Fig. 1b.
			ChannelGBps: 1.6,
			// ZnG mesh: 8 B links at the same transfer rate: 6.4 GB/s/link.
			MeshLinkGBps: 6.4,
			MeshHopLat:   4,
			MeshDim:      4,
		},
		Engine: SSDEngine{
			// 4.8 GB/s engine throughput at 128 B requests (Fig. 1b):
			// 4 cores x one request per 106.7 ns.
			Cores:        4,
			FTLLatPerReq: NsToTicks(106.7),
			DRAMBufGBps:  11.2, // single package, 32-bit bus (Fig. 1b)
			DRAMBufLat:   NsToTicks(160),
			DRAMBufBytes: 2 << 30,
			DispatchLat:  NsToTicks(30),
		},
		GDDR5: DRAM{
			Kind: GDDR5, Controllers: 6, TotalGBps: 484,
			ReadLat: NsToTicks(200), WriteLat: NsToTicks(200), AccessGran: 128,
			PkgCapacityGB: 1, PowerWPerGB: 1.88,
		},
		DDR4: DRAM{
			Kind: DDR4, Controllers: 6, TotalGBps: 256,
			ReadLat: NsToTicks(170), WriteLat: NsToTicks(170), AccessGran: 128,
			PkgCapacityGB: 2, PowerWPerGB: 0.38,
		},
		LPDDR4: DRAM{
			Kind: LPDDR4, Controllers: 4, TotalGBps: 44.8,
			ReadLat: NsToTicks(220), WriteLat: NsToTicks(220), AccessGran: 128,
			PkgCapacityGB: 4, PowerWPerGB: 0.20,
		},
		// Optane DC PMM: Table I timing (tRCD 190 ns / tCL 8.9 ns /
		// tRP 763 ns), 256 B internal access granularity, six memory
		// controllers giving the ~39 GB/s accumulated bandwidth quoted
		// in Section V-B.
		Optane: DRAM{
			Kind: OptanePMM, Controllers: 6, TotalGBps: 39,
			ReadLat:       NsToTicks(190 + 8.9),
			WriteLat:      NsToTicks(763),
			AccessGran:    256,
			PkgCapacityGB: 128, PowerWPerGB: 0.05,
		},
		Host: Host{
			PCIeGBps: 3.2,
			SSDGBps:  25.6,
			// Interrupt delivery, user/privilege-mode switches and driver
			// work per fault (Section II-C blames exactly these for the
			// GPU-SSD system's poor bandwidth).
			FaultFixedLat: UsToTicks(25),
			StagingCopyBW: 10,
			GPUMemPages:   1 << 18, // 1 GB of resident 4 KB pages
		},
		Prefetch: Prefetch{
			TableEntries:  512,
			WarpSlots:     5,
			CounterBits:   4,
			CutoffThresh:  12,
			HighWaste:     0.3,
			LowWaste:      0.05,
			GrowBytes:     1024,
			MinBytes:      128,
			MaxBytes:      4096,
			InitialBytes:  1024,
			MonitorWindow: 64,
		},
		RegCache: RegCache{
			Net:          NiF,
			LocalNetGBps: 6.4,
			BusLat:       8,
			ThrashWindow: 256,
			ThrashRatio:  0.5,
			PinLines:     4096,
		},
		FTL: FTL{
			DataBlocksPerLog: 8,
			OPFraction:       0.07,
			GCThreshold:      0.05,
			HelperThreadLat:  NsToTicks(500),
		},
	}
}

// ZNANDPackageDensityGB is the per-package density used by Fig. 3a:
// Z-NAND offers 64x the density of a GDDR5 package.
const ZNANDPackageDensityGB = 64

// ZNANDPowerWPerGB is the Z-NAND power efficiency shown in Fig. 3b.
const ZNANDPowerWPerGB = 0.02

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
