package config

import (
	"testing"

	"zng/internal/sim"
)

func TestNsToTicks(t *testing.T) {
	cases := []struct {
		ns   float64
		want sim.Tick
	}{
		{0, 0},
		{1, 2},       // 1.2 ticks rounds up
		{10, 12},     // exact
		{3000, 3600}, // tR = 3 us
		{100000, 120000},
	}
	for _, c := range cases {
		if got := NsToTicks(c.ns); got != c.want {
			t.Errorf("NsToTicks(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestBandwidthConversionRoundTrip(t *testing.T) {
	for _, gbps := range []float64{1.6, 6.4, 11.2, 39, 484} {
		w := GBpsToBytesPerTick(gbps)
		if back := BytesPerTickToGBps(w); back < gbps*0.999 || back > gbps*1.001 {
			t.Errorf("round trip %v -> %v", gbps, back)
		}
	}
}

func TestTableIConfiguration(t *testing.T) {
	c := Default()

	if c.GPU.SMs != 16 || c.GPU.MaxWarps != 80 || c.GPU.WarpSize != 32 {
		t.Errorf("GPU config mismatch: %+v", c.GPU)
	}
	if got := c.L1.SizeBytes(); got != 48<<10 {
		t.Errorf("L1 size = %d, want 48 KB", got)
	}
	if got := c.L2SRAM.SizeBytes(); got != 6<<20 {
		t.Errorf("L2 SRAM size = %d, want 6 MB", got)
	}
	if got := c.L2STT.SizeBytes(); got != 24<<20 {
		t.Errorf("L2 STT size = %d, want 24 MB", got)
	}
	if c.L2STT.WriteLat != 5*c.L2STT.ReadLat {
		t.Errorf("STT-MRAM write latency should be 5x read: %d vs %d", c.L2STT.WriteLat, c.L2STT.ReadLat)
	}
	if !c.L2STT.ReadOnly {
		t.Error("ZnG L2 must be read-only")
	}

	if got := c.Flash.Planes(); got != 1024 {
		t.Errorf("planes = %d, want 16*1*8*8 = 1024", got)
	}
	if c.Flash.ReadLat != UsToTicks(3) || c.Flash.ProgramLat != UsToTicks(100) {
		t.Errorf("Z-NAND latencies: read %d, program %d", c.Flash.ReadLat, c.Flash.ProgramLat)
	}
	if c.Flash.ProgramLat <= c.Flash.ReadLat {
		t.Error("program must be slower than read")
	}
	if c.Flash.PECycles != 100_000 {
		t.Errorf("P/E cycles = %d", c.Flash.PECycles)
	}
	// 800 GB-class drive: Table I parameters give 1.5 TB raw; ensure at
	// least the nominal 800 GB is present.
	if got := c.Flash.CapacityBytes(); got < 800<<30 {
		t.Errorf("capacity = %d, want >= 800 GB", got)
	}
	if c.Flash.MeshLinkGBps != 4*c.Flash.ChannelGBps {
		t.Errorf("mesh link (8 B) should be wider than legacy channel: %v vs %v",
			c.Flash.MeshLinkGBps, c.Flash.ChannelGBps)
	}

	// Fig. 1b calibration: accumulated channel bandwidth 25.6 GB/s.
	if acc := float64(c.Flash.Channels) * c.Flash.ChannelGBps; acc != 25.6 {
		t.Errorf("accumulated channel bandwidth = %v, want 25.6", acc)
	}

	// Fig. 4c ordering: GDDR5 > DDR4 > LPDDR4 > Optane.
	if !(c.GDDR5.TotalGBps > c.DDR4.TotalGBps &&
		c.DDR4.TotalGBps > c.LPDDR4.TotalGBps &&
		c.LPDDR4.TotalGBps > c.Optane.TotalGBps) {
		t.Error("DRAM bandwidth ordering violated")
	}

	// Optane write (tRP-bound) must exceed read (tRCD+tCL).
	if c.Optane.WriteLat <= c.Optane.ReadLat {
		t.Error("Optane write latency must exceed read latency")
	}

	// Prefetch defaults from Section IV-B / V-D.
	if c.Prefetch.TableEntries != 512 || c.Prefetch.CutoffThresh != 12 {
		t.Errorf("prefetch table: %+v", c.Prefetch)
	}
	if c.Prefetch.HighWaste != 0.3 || c.Prefetch.LowWaste != 0.05 {
		t.Errorf("waste thresholds: %+v", c.Prefetch)
	}
}

func TestDRAMKindString(t *testing.T) {
	if GDDR5.String() != "GDDR5" || OptanePMM.String() != "Optane" {
		t.Error("DRAMKind.String mismatch")
	}
	if NiF.String() != "NiF" || SWnet.String() != "SWnet" || FCnet.String() != "FCnet" {
		t.Error("RegCacheNet.String mismatch")
	}
	if DRAMKind(99).String() != "unknown" || RegCacheNet(99).String() != "unknown" {
		t.Error("unknown kinds must stringify")
	}
}

func TestEngineThroughputCalibration(t *testing.T) {
	// The SSD engine must process 128 B requests at ~4.8 GB/s (Fig. 1b):
	// cores / latency * 128 B.
	c := Default()
	perSec := float64(c.Engine.Cores) / (TicksToNs(c.Engine.FTLLatPerReq) * 1e-9)
	gbps := perSec * 128 / 1e9
	if gbps < 4.2 || gbps > 5.4 {
		t.Errorf("engine throughput = %.2f GB/s, want ~4.8", gbps)
	}
}

func TestZNANDDensityConstants(t *testing.T) {
	c := Default()
	if ZNANDPackageDensityGB != 64*c.GDDR5.PkgCapacityGB {
		t.Error("Z-NAND density must be 64x GDDR5 (Fig. 3a)")
	}
	if ZNANDPowerWPerGB >= c.LPDDR4.PowerWPerGB {
		t.Error("Z-NAND must be the most power-efficient medium (Fig. 3b)")
	}
}
