// Package latency provides the fixed-bucket duration histogram
// behind the serving tier's observability: zngd's per-endpoint
// p50/p95/p99 gauges in /metrics, the service's per-simulation
// latency estimate feeding Retry-After on 429s, and zngload's
// client-side quantile report.
//
// The histogram is deliberately not part of the deterministic
// simulation core (internal/stats has its own histogram for simulated
// quantities): it measures wall-clock serving latency, which only the
// serving layer may observe — znglint's determinism analyzer keeps
// time.Now out of the simulation packages, and this package never
// reads the clock itself (callers observe durations they measured).
//
// Buckets are fixed powers of two from 1 µs up, so recording is one
// atomic increment with no allocation, histograms from different
// sources merge bucket-by-bucket, and quantile estimates are exact to
// bucket resolution (a linear interpolation within the bucket bounds
// the error to the bucket's width).
package latency

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers 1 µs .. ~134 s in doubling steps; the last bucket
// is open-ended, so slower observations saturate rather than vanish.
const numBuckets = 28

// bucketFloor is the lower bound of bucket 0.
const bucketFloor = time.Microsecond

// Histogram counts duration observations in fixed exponential
// buckets. The zero value is ready to use. All methods are safe for
// concurrent use; recording is a single atomic add.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	// sum accumulates total observed nanoseconds, for Mean.
	sum atomic.Uint64
}

// bucketIndex maps a duration to its bucket: bucket i holds
// observations in [1µs·2^i, 1µs·2^(i+1)), bucket 0 additionally
// catches everything faster, the last bucket everything slower.
func bucketIndex(d time.Duration) int {
	if d < bucketFloor {
		return 0
	}
	i := bits.Len64(uint64(d/bucketFloor)) - 1
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// bucketLow returns bucket i's inclusive lower bound.
func bucketLow(i int) time.Duration {
	if i == 0 {
		return 0
	}
	return bucketFloor << uint(i)
}

// bucketHigh returns bucket i's exclusive upper bound.
func bucketHigh(i int) time.Duration {
	return bucketFloor << uint(i+1)
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.sum.Add(uint64(d))
}

// Count reports the number of observations recorded.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum reports the total of every observed duration — with Count and
// Buckets, the exported surface the Prometheus emitter renders
// (_sum/_count/_bucket) without reaching into histogram internals.
func (h *Histogram) Sum() time.Duration {
	return time.Duration(h.sum.Load())
}

// InfUpper is the Upper sentinel of the final cumulative bucket — the
// histogram's open-ended "+Inf" bound.
const InfUpper = time.Duration(math.MaxInt64)

// Bucket is one cumulative bucket: Count observations were <= Upper.
// The last bucket's Upper is InfUpper and its Count equals Count().
type Bucket struct {
	Upper time.Duration
	Count uint64
}

// Buckets snapshots the histogram as cumulative upper-bound buckets,
// Prometheus-style. Counts are read once per bucket, so a snapshot
// under concurrent recording is approximate to in-flight traffic but
// never decreasing across buckets.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, numBuckets)
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = Bucket{Upper: bucketHigh(i), Count: cum}
	}
	// The final bucket is open-ended: everything slower than the
	// second-to-last bound saturated into it.
	out[numBuckets-1].Upper = InfUpper
	return out
}

// Mean reports the average observed duration (0 with no
// observations).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile estimates the q-th quantile (0 < q <= 1) by walking the
// cumulative bucket counts and interpolating linearly inside the
// bucket the quantile lands in, so the estimate is within one bucket
// width of the true value. It returns 0 when the histogram is empty
// or q is out of range.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q <= 0 || q > 1 {
		return 0
	}
	// Snapshot the counts once so a concurrent Observe cannot make the
	// cumulative walk disagree with the total.
	var counts [numBuckets]uint64
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	// rank is the 1-based index of the observation the quantile names.
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range counts {
		if seen+c < rank {
			seen += c
			continue
		}
		lo, hi := bucketLow(i), bucketHigh(i)
		// Interpolate by the rank's position within this bucket.
		frac := float64(rank-seen) / float64(c)
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return bucketHigh(numBuckets - 1) // unreachable: total covers all buckets
}

// Merge adds every observation of o into h (o is read atomically,
// bucket by bucket; h keeps receiving concurrent observations).
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.sum.Add(o.sum.Load())
}

// Reset zeroes the histogram. Concurrent observations interleaved
// with the reset land wholly before or wholly after it per bucket;
// the histogram never goes negative.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
}

// Snapshot is a self-contained JSON-ready summary of one histogram.
type Snapshot struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Snapshot summarizes the histogram's current state. The three
// quantiles and the count come from one pass each, so a snapshot
// taken under concurrent recording is approximate to the traffic in
// flight, never torn per bucket.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count:  h.Count(),
		MeanMS: roundMS(h.Mean()),
		P50MS:  roundMS(h.Quantile(0.50)),
		P95MS:  roundMS(h.Quantile(0.95)),
		P99MS:  roundMS(h.Quantile(0.99)),
	}
}

// roundMS renders a duration as milliseconds with microsecond
// precision, the resolution /metrics publishes.
func roundMS(d time.Duration) float64 {
	return float64(d.Round(time.Microsecond)) / float64(time.Millisecond)
}

// String renders the summary for logs and error messages.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms",
		s.Count, s.MeanMS, s.P50MS, s.P95MS, s.P99MS)
}
