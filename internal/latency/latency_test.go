package latency

import (
	"sync"
	"testing"
	"time"
)

// TestQuantileKnownDistributions pins the estimator against
// distributions whose quantiles are known, within the histogram's
// bucket resolution (one power-of-two bucket).
func TestQuantileKnownDistributions(t *testing.T) {
	for name, tc := range map[string]struct {
		observe func(h *Histogram)
		q       float64
		want    time.Duration
		exact   bool // interpolation reproduces the value exactly
	}{
		"single value repeated": {
			// 1000 observations of 3µs fill bucket [2µs,4µs); the
			// median interpolates to exactly its midpoint.
			observe: func(h *Histogram) {
				for i := 0; i < 1000; i++ {
					h.Observe(3 * time.Microsecond)
				}
			},
			q: 0.50, want: 3 * time.Microsecond, exact: true,
		},
		"uniform ladder p50": {
			// 1..1000 ms uniformly: true median 500 ms.
			observe: func(h *Histogram) {
				for i := 1; i <= 1000; i++ {
					h.Observe(time.Duration(i) * time.Millisecond)
				}
			},
			q: 0.50, want: 500 * time.Millisecond,
		},
		"uniform ladder p99": {
			observe: func(h *Histogram) {
				for i := 1; i <= 1000; i++ {
					h.Observe(time.Duration(i) * time.Millisecond)
				}
			},
			q: 0.99, want: 990 * time.Millisecond,
		},
		"bimodal p95": {
			// 90% fast (~100µs), 10% slow (~50ms): p95 lands in the
			// slow mode.
			observe: func(h *Histogram) {
				for i := 0; i < 900; i++ {
					h.Observe(100 * time.Microsecond)
				}
				for i := 0; i < 100; i++ {
					h.Observe(50 * time.Millisecond)
				}
			},
			q: 0.95, want: 50 * time.Millisecond,
		},
	} {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			tc.observe(&h)
			got := h.Quantile(tc.q)
			if tc.exact {
				if got != tc.want {
					t.Fatalf("Quantile(%v) = %v, want exactly %v", tc.q, got, tc.want)
				}
				return
			}
			// Power-of-two buckets bound the estimate to within one
			// bucket of the truth: [want/2, 2*want].
			if got < tc.want/2 || got > 2*tc.want {
				t.Fatalf("Quantile(%v) = %v, want within a bucket of %v", tc.q, got, tc.want)
			}
		})
	}
}

// TestBucketBoundaries walks the bucket edges: exact powers of two
// land in the bucket they open, and the extremes clamp instead of
// panicking or vanishing.
func TestBucketBoundaries(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0}, // negative counts as zero
		{0, 0},
		{time.Nanosecond, 0},
		{bucketFloor - 1, 0},
		{bucketFloor, 0}, // [1µs,2µs)
		{2*bucketFloor - 1, 0},
		{2 * bucketFloor, 1}, // boundary opens the next bucket
		{4 * bucketFloor, 2},
		{time.Second, 19},                // 2^19µs ≈ 0.52s ≤ 1s < 2^20µs ≈ 1.05s
		{24 * time.Hour, numBuckets - 1}, // saturates the open-ended top bucket
	} {
		var h Histogram
		h.Observe(tc.d)
		got := -1
		for i := range h.counts {
			if h.counts[i].Load() == 1 {
				got = i
			}
		}
		if got != tc.want {
			t.Errorf("Observe(%v) landed in bucket %d, want %d", tc.d, got, tc.want)
		}
		if tc.d >= 0 {
			d := tc.d
			if lo := bucketLow(got); d >= bucketFloor && d < lo {
				t.Errorf("Observe(%v): bucket %d lower bound %v exceeds the observation", tc.d, got, lo)
			}
			if hi := bucketHigh(got); got < numBuckets-1 && d >= hi {
				t.Errorf("Observe(%v): bucket %d upper bound %v at or below the observation", tc.d, got, hi)
			}
		}
	}

	// A saturated observation still quantiles to a finite duration.
	var h Histogram
	h.Observe(24 * time.Hour)
	if q := h.Quantile(1); q <= 0 || q > bucketHigh(numBuckets-1) {
		t.Errorf("saturated Quantile(1) = %v", q)
	}
}

// TestQuantileEdges covers the degenerate inputs: empty histogram,
// out-of-range q, q=1, single observation.
func TestQuantileEdges(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty Quantile = %v, want 0", q)
	}
	h.Observe(5 * time.Millisecond)
	for _, q := range []float64{-1, 0, 1.01} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) = %v, want 0 for out-of-range q", q, got)
		}
	}
	// With one observation every valid quantile names it.
	lo, hi := bucketLow(bucketIndex(5*time.Millisecond)), bucketHigh(bucketIndex(5*time.Millisecond))
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got < lo || got > hi {
			t.Errorf("Quantile(%v) = %v, want within the single observation's bucket [%v,%v]", q, got, lo, hi)
		}
	}
}

// TestMergeAndReset: merge adds bucket-wise, reset zeroes, and the
// merged totals are conserved.
func TestMergeAndReset(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	a.Merge(&b)
	if n := a.Count(); n != 200 {
		t.Fatalf("merged count = %d, want 200", n)
	}
	if p99 := a.Quantile(0.99); p99 < 500*time.Millisecond {
		t.Errorf("merged p99 = %v, want the slow source to dominate", p99)
	}
	if n := b.Count(); n != 100 {
		t.Errorf("merge mutated its source: count = %d", n)
	}
	a.Reset()
	if n, m := a.Count(), a.Mean(); n != 0 || m != 0 {
		t.Errorf("after reset count=%d mean=%v, want zeroes", n, m)
	}
	if q := a.Quantile(0.5); q != 0 {
		t.Errorf("after reset Quantile = %v, want 0", q)
	}
}

// TestConcurrentRecording churns Observe, Quantile, Merge and Reset
// together; under -race this pins the atomics discipline, and the
// final drained state must be consistent (no lost or negative
// buckets).
func TestConcurrentRecording(t *testing.T) {
	var h, side Histogram
	var wg sync.WaitGroup
	const goroutines, each = 8, 2000
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(1+(g*each+i)%5000) * time.Microsecond)
				if i%100 == 0 {
					_ = h.Quantile(0.95)
					_ = h.Snapshot()
				}
				if i%500 == 0 {
					side.Merge(&h)
				}
			}
		}()
	}
	wg.Wait()
	if n := h.Count(); n != goroutines*each {
		t.Fatalf("count = %d, want %d (observations lost)", n, goroutines*each)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 8*time.Millisecond {
		t.Errorf("p50 = %v, want within the observed 1µs..5ms range (one bucket slack)", q)
	}
	h.Reset()
	if n := h.Count(); n != 0 {
		t.Fatalf("post-reset count = %d", n)
	}
	// Reset under fire: recorders and resetters interleave freely; the
	// histogram must end empty after a final reset with no recorders.
	var wg2 sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg2.Add(2)
		go func() {
			defer wg2.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Millisecond)
			}
		}()
		go func() {
			defer wg2.Done()
			for i := 0; i < 100; i++ {
				h.Reset()
			}
		}()
	}
	wg2.Wait()
	h.Reset()
	if n := h.Count(); n != 0 {
		t.Fatalf("final reset left count = %d", n)
	}
}

// TestSnapshot pins the JSON-facing summary fields.
func TestSnapshot(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Errorf("snapshot count = %d", s.Count)
	}
	if s.P50MS < 5 || s.P50MS > 20 {
		t.Errorf("snapshot p50 = %vms, want ~10ms within a bucket", s.P50MS)
	}
	if s.MeanMS < 9.9 || s.MeanMS > 10.1 {
		t.Errorf("snapshot mean = %vms, want 10ms", s.MeanMS)
	}
	if s.String() == "" {
		t.Error("empty snapshot string")
	}
}
