// Package noc models the two interconnects of the ZnG architecture
// (Fig. 6a): the GPU-internal network connecting SMs, L2 banks, the
// MMU and the flash controllers; and the flash network connecting
// flash controllers to Z-NAND packages.
//
// HybridGPU attaches its flash packages over legacy shared-bus
// channels; ZnG replaces them with a mesh whose links are 8 B wide —
// 8x the legacy channel width — precisely because the bus "constrains
// itself from scaling up with a higher frequency" (Section I).
//
// The mesh uses dimension-order (XY) routing with store-and-forward
// links; each directional link is a bandwidth-limited sim.Port, so
// contention and saturation emerge naturally.
package noc

import (
	"fmt"

	"zng/internal/sim"
	"zng/internal/stats"
)

// Xbar is the GPU-internal crossbar: contention is modeled at each
// destination's output port, which is how a high-radix switch behaves
// once the fabric itself is overprovisioned.
type Xbar struct {
	eng  *sim.Engine
	outs []*sim.Port

	Bytes stats.Counter
}

// NewXbar creates a crossbar with n endpoints, each output moving
// width bytes/tick with the given latency.
func NewXbar(eng *sim.Engine, n int, width float64, latency sim.Tick) *Xbar {
	x := &Xbar{eng: eng}
	for i := 0; i < n; i++ {
		x.outs = append(x.outs, sim.NewPort(eng, width, latency))
	}
	return x
}

// Ports reports the endpoint count.
func (x *Xbar) Ports() int { return len(x.outs) }

// Send moves n bytes to endpoint dst and schedules fn at delivery.
func (x *Xbar) Send(dst, n int, fn func()) {
	x.Bytes.Add(uint64(n))
	x.outs[dst].Send(n, fn)
}

// OutBusy reports the cumulative busy time of endpoint dst's port.
func (x *Xbar) OutBusy(dst int) sim.Tick { return x.outs[dst].BusyTicks() }

// Mesh is a dim x dim store-and-forward mesh. Node i sits at
// (i%dim, i/dim). Each directional link is a separate port.
type Mesh struct {
	eng *sim.Engine
	dim int
	// east[y][x]: link from (x,y) to (x+1,y); west, north, south similar.
	east, west   [][]*sim.Port
	north, south [][]*sim.Port // north: toward y-1, south: toward y+1
	local        []*sim.Port   // ejection into the node

	Bytes    stats.Counter
	Messages stats.Counter
}

// NewMesh builds a dim x dim mesh with per-link width (bytes/tick) and
// per-hop latency.
func NewMesh(eng *sim.Engine, dim int, width float64, hopLat sim.Tick) *Mesh {
	if dim < 1 {
		panic("noc: mesh dimension must be >= 1")
	}
	m := &Mesh{eng: eng, dim: dim}
	mk := func() *sim.Port { return sim.NewPort(eng, width, hopLat) }
	for y := 0; y < dim; y++ {
		var e, w, n, s []*sim.Port
		for x := 0; x < dim; x++ {
			e, w, n, s = append(e, mk()), append(w, mk()), append(n, mk()), append(s, mk())
		}
		m.east = append(m.east, e)
		m.west = append(m.west, w)
		m.north = append(m.north, n)
		m.south = append(m.south, s)
	}
	for i := 0; i < dim*dim; i++ {
		m.local = append(m.local, mk())
	}
	return m
}

// Nodes reports the node count (dim*dim).
func (m *Mesh) Nodes() int { return m.dim * m.dim }

// Hops reports the XY route length between two nodes.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := src%m.dim, src/m.dim
	dx, dy := dst%m.dim, dst/m.dim
	return abs(sx-dx) + abs(sy-dy)
}

// Send routes n bytes from src to dst (XY order) and schedules fn on
// delivery. src == dst still pays the local ejection port.
func (m *Mesh) Send(src, dst, n int, fn func()) {
	if src < 0 || src >= m.Nodes() || dst < 0 || dst >= m.Nodes() {
		panic(fmt.Sprintf("noc: bad mesh endpoints %d -> %d", src, dst))
	}
	m.Bytes.Add(uint64(n))
	m.Messages.Inc()
	m.step(src%m.dim, src/m.dim, dst%m.dim, dst/m.dim, n, fn)
}

// step forwards the message one hop at a time: X first, then Y, then
// the local ejection port.
func (m *Mesh) step(x, y, dx, dy, n int, fn func()) {
	switch {
	case x < dx:
		m.east[y][x].Send(n, func() { m.step(x+1, y, dx, dy, n, fn) })
	case x > dx:
		m.west[y][x].Send(n, func() { m.step(x-1, y, dx, dy, n, fn) })
	case y < dy:
		m.south[y][x].Send(n, func() { m.step(x, y+1, dx, dy, n, fn) })
	case y > dy:
		m.north[y][x].Send(n, func() { m.step(x, y-1, dx, dy, n, fn) })
	default:
		m.local[y*m.dim+x].Send(n, fn)
	}
}

// Bus models the legacy shared flash channel of HybridGPU: every
// package on the channel contends for one serialized medium.
type Bus struct {
	port  *sim.Port
	Bytes stats.Counter
}

// NewBus creates a shared bus of the given width and latency.
func NewBus(eng *sim.Engine, width float64, latency sim.Tick) *Bus {
	return &Bus{port: sim.NewPort(eng, width, latency)}
}

// Send transfers n bytes over the shared medium.
func (b *Bus) Send(n int, fn func()) {
	b.Bytes.Add(uint64(n))
	b.port.Send(n, fn)
}

// BusyTicks reports cumulative bus occupancy.
func (b *Bus) BusyTicks() sim.Tick { return b.port.BusyTicks() }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
