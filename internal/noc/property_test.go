package noc

import (
	"testing"
	"testing/quick"

	"zng/internal/sim"
)

// Property: every message injected into the mesh is delivered exactly
// once, regardless of endpoints and sizes.
func TestMeshDeliversAllProperty(t *testing.T) {
	f := func(msgs []uint16) bool {
		eng := sim.NewEngine()
		m := NewMesh(eng, 4, 4, 1)
		want := len(msgs)
		got := 0
		for _, raw := range msgs {
			src := int(raw) % 16
			dst := int(raw>>4) % 16
			size := int(raw%512) + 1
			m.Send(src, dst, size, func() { got++ })
		}
		eng.Run()
		return got == want && m.Messages.Value() == uint64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: delivery time is monotone in hop distance for equal-size
// unloaded transfers.
func TestMeshLatencyMonotoneProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		srcA, dstA := int(a)%16, int(a>>4)%16
		srcB, dstB := int(b)%16, int(b>>4)%16
		t1 := soloDelivery(srcA, dstA)
		t2 := soloDelivery(srcB, dstB)
		e1 := NewMesh(sim.NewEngine(), 4, 4, 1)
		if e1.Hops(srcA, dstA) < e1.Hops(srcB, dstB) {
			return t1 < t2
		}
		if e1.Hops(srcA, dstA) > e1.Hops(srcB, dstB) {
			return t1 > t2
		}
		return t1 == t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func soloDelivery(src, dst int) sim.Tick {
	eng := sim.NewEngine()
	m := NewMesh(eng, 4, 4, 1)
	var at sim.Tick
	m.Send(src, dst, 64, func() { at = eng.Now() })
	eng.Run()
	return at
}
