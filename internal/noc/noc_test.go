package noc

import (
	"testing"

	"zng/internal/sim"
)

func TestXbarDelivery(t *testing.T) {
	eng := sim.NewEngine()
	x := NewXbar(eng, 4, 8, 5)
	var at sim.Tick
	x.Send(2, 64, func() { at = eng.Now() })
	eng.Run()
	if at != 64/8+5 {
		t.Errorf("delivery at %d, want 13", at)
	}
	if x.Bytes.Value() != 64 {
		t.Errorf("bytes = %d", x.Bytes.Value())
	}
}

func TestXbarIndependentOutputs(t *testing.T) {
	eng := sim.NewEngine()
	x := NewXbar(eng, 2, 1, 0)
	var a, b sim.Tick
	x.Send(0, 100, func() { a = eng.Now() })
	x.Send(1, 100, func() { b = eng.Now() })
	eng.Run()
	if a != 100 || b != 100 {
		t.Errorf("a=%d b=%d, want both 100 (no cross-port contention)", a, b)
	}
}

func TestXbarOutputContention(t *testing.T) {
	eng := sim.NewEngine()
	x := NewXbar(eng, 2, 1, 0)
	var a, b sim.Tick
	x.Send(0, 100, func() { a = eng.Now() })
	x.Send(0, 100, func() { b = eng.Now() })
	eng.Run()
	if a != 100 || b != 200 {
		t.Errorf("a=%d b=%d, want 100 and 200 (serialized)", a, b)
	}
}

func TestMeshHops(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 4, 8, 1)
	if m.Nodes() != 16 {
		t.Fatalf("nodes = %d", m.Nodes())
	}
	cases := []struct{ src, dst, hops int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {0, 15, 6}, {5, 6, 1}, {12, 3, 6},
	}
	for _, c := range cases {
		if got := m.Hops(c.src, c.dst); got != c.hops {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.hops)
		}
	}
}

func TestMeshLatencyScalesWithDistance(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 4, 8, 2)
	var near, far sim.Tick
	m.Send(0, 1, 64, func() { near = eng.Now() })
	eng.Run()
	e2 := sim.NewEngine()
	m2 := NewMesh(e2, 4, 8, 2)
	m2.Send(0, 15, 64, func() { far = e2.Now() })
	e2.Run()
	if far <= near {
		t.Errorf("far (%d) should exceed near (%d)", far, near)
	}
	// 1 hop + ejection vs 6 hops + ejection; each hop = 8 ser + 2 lat.
	if near != 2*(64/8+2) || far != 7*(64/8+2) {
		t.Errorf("near=%d far=%d, want 20 and 70", near, far)
	}
}

func TestMeshLinkContention(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 2, 1, 0)
	// Two messages share the east link (0,0)->(1,0).
	var a, b sim.Tick
	m.Send(0, 1, 50, func() { a = eng.Now() })
	m.Send(0, 1, 50, func() { b = eng.Now() })
	eng.Run()
	if b-a != 50 {
		t.Errorf("second message should trail by one serialization: a=%d b=%d", a, b)
	}
}

func TestMeshDisjointPathsParallel(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 2, 1, 0)
	var a, b sim.Tick
	m.Send(0, 1, 50, func() { a = eng.Now() }) // east on row 0
	m.Send(2, 3, 50, func() { b = eng.Now() }) // east on row 1
	eng.Run()
	if a != b {
		t.Errorf("disjoint paths should not contend: a=%d b=%d", a, b)
	}
}

func TestMeshSelfSend(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 4, 8, 3)
	var at sim.Tick
	m.Send(5, 5, 8, func() { at = eng.Now() })
	eng.Run()
	if at != 1+3 {
		t.Errorf("self send at %d, want ejection only (4)", at)
	}
	if m.Messages.Value() != 1 {
		t.Errorf("messages = %d", m.Messages.Value())
	}
}

func TestMeshBadEndpointsPanic(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 2, 1, 0)
	defer func() {
		if recover() == nil {
			t.Error("want panic for out-of-range node")
		}
	}()
	m.Send(0, 99, 8, nil)
}

func TestBusSerializesEverything(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBus(eng, 2, 1)
	var t1, t2 sim.Tick
	b.Send(100, func() { t1 = eng.Now() })
	b.Send(100, func() { t2 = eng.Now() })
	eng.Run()
	if t1 != 51 || t2 != 101 {
		t.Errorf("t1=%d t2=%d, want 51 and 101", t1, t2)
	}
	if b.BusyTicks() != 100 {
		t.Errorf("busy = %d", b.BusyTicks())
	}
}

func TestMeshAggregateExceedsBus(t *testing.T) {
	// The architectural claim: a mesh's aggregate bandwidth beats one
	// shared bus of the same link width. Drive 4 disjoint row transfers
	// vs 4 bus transfers.
	engM := sim.NewEngine()
	m := NewMesh(engM, 2, 1, 0)
	doneM := 0
	for _, sd := range [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 2}} {
		m.Send(sd[0], sd[1], 100, func() { doneM++ })
	}
	engM.Run()
	meshTime := engM.Now()

	engB := sim.NewEngine()
	b := NewBus(engB, 1, 0)
	doneB := 0
	for i := 0; i < 4; i++ {
		b.Send(100, func() { doneB++ })
	}
	engB.Run()
	busTime := engB.Now()

	if doneM != 4 || doneB != 4 {
		t.Fatal("transfers incomplete")
	}
	if meshTime >= busTime {
		t.Errorf("mesh (%d) should beat shared bus (%d)", meshTime, busTime)
	}
}
