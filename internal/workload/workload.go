// Package workload generates the GPU memory traces the ZnG evaluation
// runs, organized as a scenario subsystem: the sixteen applications of
// Table II (graph analysis from GraphBIG-style suites plus scientific
// kernels), two additional generator families (a frontier-phase
// FlashGraph-style traversal and an OLTP transaction stream), and a
// registry of named Mix scenarios — the twelve read-intensive +
// write-intensive co-run pairs of Figures 5, 10 and 11, per-app solo
// runs, 3- and 4-app consolidation mixes and read/write stress mixes.
//
// The paper drives MacSim with real program traces; those are not
// available, so this package substitutes deterministic synthetic
// generators calibrated to the statistics the paper reports and that
// the architecture actually responds to:
//
//   - read ratio per application (Table II),
//   - kernel count per application (Table II),
//   - read re-accesses per flash page, averaging ~42 (Fig. 5b),
//   - write redundancy per flash page, averaging ~65 (Fig. 5c),
//   - PC-stable sequential scans (what the prefetch predictor keys on)
//     mixed with power-law random gathers (what defeats it),
//   - warp-affine write working sets (the source of the asymmetric
//     per-plane write traffic of Fig. 8b).
//
// Streams are pure functions of (app, kernel, warp, step): re-running
// any simulation reproduces the identical trace.
package workload

import (
	"fmt"

	"zng/internal/rng"
)

// SectorBytes is the coalesced GPU memory access size (Section III-A:
// "the memory access size in GPU is 128B").
const SectorBytes = 128

// PageBytes is the flash page size accesses are grouped by for the
// reuse statistics of Fig. 5.
const PageBytes = 4096

// Access is one coalesced sector access emitted by a memory
// instruction.
type Access struct {
	Addr  uint64
	Write bool
}

// Inst is one warp instruction: an arithmetic run-length followed by
// an optional memory operation (the coalescer's output sectors).
//
// Acc aliases a per-stream scratch buffer: it is valid until the next
// Next call on the stream that produced it. Trace consumers issue an
// instruction's accesses before fetching the next instruction, and the
// aliasing removes one slice allocation per memory instruction —
// per-instruction garbage the trace generators cannot afford at the
// billions-of-events scale the simulator runs at.
type Inst struct {
	PC  uint64
	ALU int // arithmetic instructions preceding the memory op
	Acc []Access
}

// maxAccPerInst sizes the in-stream access buffer; gathers with more
// sectors than this (no Table II spec comes close) fall back to a
// heap-allocated slice.
const maxAccPerInst = 8

// Family selects a trace-generator behavior. The zero value is the
// Table II generic family; the other two are the scenario-subsystem
// additions calibrated against related work rather than Table II.
type Family int

const (
	// FamilyGeneric is the Table II behavior: PC-stable sequential
	// scans, power-law random gathers, warp-affine bursty writes.
	FamilyGeneric Family = iota
	// FamilyFrontier is a frontier-phase graph traversal
	// (FlashGraph-style): each kernel is one BFS level whose random
	// reads land in a per-kernel frontier window of the hot pool that
	// expands toward the middle levels and contracts again, while edge
	// lists are still scanned sequentially.
	FamilyFrontier
	// FamilyOLTP is a transaction stream (high-throughput GPU OLTP
	// style): fixed-shape read-modify-write transactions of small
	// single-sector random row reads followed by one scattered row
	// update, with no scans and no write bursts — the access pattern
	// that thrashes page-granularity buffering and per-plane staging
	// registers alike.
	FamilyOLTP
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case FamilyGeneric:
		return "generic"
	case FamilyFrontier:
		return "frontier"
	case FamilyOLTP:
		return "oltp"
	}
	return "unknown"
}

// Spec statically describes one application of Table II plus the
// locality calibration targets.
type Spec struct {
	Name      string
	Suite     string  // "graph", "sci", "tx" or "stress"
	Family    Family  // trace-generator family (zero value: Table II generic)
	ReadRatio float64 // fraction of accesses that are reads (Table II)
	Kernels   int     // kernel launches (Table II)

	WarpsPerKernel int
	MemInstBudget  int // memory instructions across the whole app at scale 1

	ReadReuse   float64 // target reads per distinct read page (Fig. 5b)
	WriteRedund float64 // target writes per distinct written page (Fig. 5c)
	SeqFrac     float64 // fraction of read instructions that are scans
	RandSectors int     // sectors per random gather instruction
	ALUMean     int     // mean arithmetic run between memory ops
	Seed        int64
}

// App is an instantiated application: a Spec scaled to a concrete
// instruction budget with derived working-set pools.
type App struct {
	Spec Spec

	// Index gives the application a distinct virtual address space.
	Index int

	instPerWK int // memory instructions per (kernel, warp)
	hotPages  int // random-read pool size (pages)
	writePool int // write working-set size (pages)
	vaBase    uint64
}

// NewApp instantiates spec with the given trace scale (1.0 = full
// budget; tests use small fractions) and address-space index.
func NewApp(spec Spec, scale float64, index int) *App {
	if scale <= 0 {
		panic("workload: scale must be positive")
	}
	a := &App{Spec: spec, Index: index, vaBase: uint64(index+1) << 40}

	total := float64(spec.MemInstBudget) * scale
	perWK := int(total / float64(spec.Kernels*spec.WarpsPerKernel))
	if perWK < 4 {
		perWK = 4
	}
	a.instPerWK = perWK

	// Expected sector counts, used to size the reuse pools so the trace
	// lands on the Fig. 5 calibration targets.
	memInsts := float64(perWK * spec.Kernels * spec.WarpsPerKernel)
	readInsts := memInsts * a.readInstFrac()
	writeInsts := memInsts - readInsts
	seqInsts := readInsts * spec.SeqFrac
	gatherSectors := (readInsts - seqInsts) * float64(spec.RandSectors)
	readSectors := seqInsts + gatherSectors
	writeSectors := writeInsts

	seqPages := seqInsts * SectorBytes / PageBytes
	hot := readSectors/maxf(spec.ReadReuse, 1) - seqPages
	a.hotPages = int(maxf(hot, 1))
	a.writePool = int(maxf(writeSectors/maxf(spec.WriteRedund, 1), 1))
	return a
}

// readInstFrac converts the Table II *access* read ratio into the
// instruction-level read fraction, accounting for gathers emitting
// RandSectors sectors while writes emit one.
func (a *App) readInstFrac() float64 {
	s := a.Spec
	if s.ReadRatio >= 1 {
		return 1
	}
	// Average sectors per read instruction.
	rs := s.SeqFrac + (1-s.SeqFrac)*float64(s.RandSectors)
	// Solve p*rs / (p*rs + (1-p)) = ReadRatio for instruction fraction p.
	r := s.ReadRatio
	return r / (r + rs*(1-r))
}

// Kernels reports the number of kernel launches.
func (a *App) Kernels() int { return a.Spec.Kernels }

// Warps reports warps per kernel.
func (a *App) Warps() int { return a.Spec.WarpsPerKernel }

// MemInstsPerWarp reports memory instructions per (kernel, warp).
func (a *App) MemInstsPerWarp() int { return a.instPerWK }

// TotalMemInsts reports the total memory instructions in the trace.
func (a *App) TotalMemInsts() int {
	return a.instPerWK * a.Spec.Kernels * a.Spec.WarpsPerKernel
}

// HotPages reports the derived random-read pool size.
func (a *App) HotPages() int { return a.hotPages }

// WritePool reports the derived write working-set size.
func (a *App) WritePool() int { return a.writePool }

// VABase reports the base of the app's virtual address space.
func (a *App) VABase() uint64 { return a.vaBase }

// FootprintPages estimates the distinct pages the app touches: scan
// strips + hot pool + write pool.
func (a *App) FootprintPages() int {
	seqInsts := float64(a.TotalMemInsts()) * a.readInstFrac() * a.Spec.SeqFrac
	return int(seqInsts*SectorBytes/PageBytes) + a.hotPages + a.writePool + 2
}

// Address-space regions within an app.
const (
	regSeq   = 0 << 36
	regHot   = 1 << 36
	regWrite = 2 << 36
)

// Stream generates the instruction sequence of one warp in one kernel.
type Stream struct {
	app    *App
	kernel int
	warp   int
	rng    rng.RNG
	step   int

	seqCursor uint64
	readFrac  float64 // instruction-level read probability

	// Frontier-family state: the hot-pool window [frontLo,
	// frontLo+frontN) this kernel's random reads land in.
	frontLo, frontN int

	// OLTP-family state: reads remaining before the transaction's
	// read-modify-write store (txnReads per transaction).
	txnReads, txnPos int

	// accBuf backs Inst.Acc between Next calls (see Inst).
	accBuf [maxAccPerInst]Access

	// Write burst state: a warp keeps storing into one page for a few
	// consecutive writes (real stores exhibit temporal locality within
	// a page; without it, per-plane staging registers would thrash on
	// literally every store).
	writeVP   uint64
	writeLeft int
}

// writeBurst is the number of consecutive stores a warp issues to one
// page before redrawing: most of a page's ~65x write redundancy
// (Fig. 5c) arrives in temporal bursts, which is what lets even a
// single per-plane staging register absorb a good fraction of it.
const writeBurst = 32

// Stream returns the deterministic instruction stream for (kernel,
// warp). kernel and warp must be in range.
func (a *App) Stream(kernel, warp int) *Stream {
	if kernel < 0 || kernel >= a.Spec.Kernels {
		panic(fmt.Sprintf("workload: kernel %d out of range", kernel))
	}
	if warp < 0 || warp >= a.Spec.WarpsPerKernel {
		panic(fmt.Sprintf("workload: warp %d out of range", warp))
	}
	seed := uint64(a.Spec.Seed) ^ uint64(a.Index)<<48 ^ uint64(kernel)<<24 ^ uint64(warp)
	strip := uint64(kernel*a.Spec.WarpsPerKernel+warp) * uint64(a.instPerWK) * SectorBytes
	s := &Stream{
		app:       a,
		kernel:    kernel,
		warp:      warp,
		rng:       rng.New(seed),
		seqCursor: a.vaBase + regSeq + strip,
		readFrac:  a.readInstFrac(),
	}
	switch a.Spec.Family {
	case FamilyFrontier:
		s.frontLo, s.frontN = a.FrontierWindow(kernel)
	case FamilyOLTP:
		s.txnReads = oltpTxnReads(a.Spec.ReadRatio)
	}
	return s
}

// FrontierWindow reports the hot-pool window [lo, lo+n) that kernel
// k's random reads draw from in the frontier family: window sizes
// follow a triangular expand/contract profile across kernels (a BFS
// frontier growing to its peak level and draining again) and tile the
// hot pool exactly, so the family's distinct-page count — and with it
// the ReadReuse calibration — matches the generic sizing math.
func (a *App) FrontierWindow(k int) (lo, n int) {
	K := a.Spec.Kernels
	if k < 0 || k >= K {
		panic(fmt.Sprintf("workload: frontier kernel %d out of range", k))
	}
	weight := func(i int) int {
		if up, down := i+1, K-i; up < down {
			return up
		} else {
			return down
		}
	}
	total := 0
	for i := 0; i < K; i++ {
		total += weight(i)
	}
	for i := 0; i < k; i++ {
		lo += a.hotPages * weight(i) / total
	}
	n = a.hotPages * weight(k) / total
	if k == K-1 {
		n = a.hotPages - lo // remainder: the tiling must be exact
	}
	if n < 1 {
		n = 1
	}
	if lo+n > a.hotPages {
		lo = a.hotPages - n
		if lo < 0 {
			lo = 0
		}
	}
	return lo, n
}

// oltpTxnReads converts an OLTP access-level read ratio r into the
// reads-per-transaction count k of the fixed k-reads-then-one-write
// transaction shape (r = k/(k+1), every access one sector).
func oltpTxnReads(ratio float64) int {
	if ratio >= 1 {
		panic("workload: OLTP specs need writes (ReadRatio < 1)")
	}
	k := int(ratio/(1-ratio) + 0.5)
	if k < 1 {
		k = 1
	}
	return k
}

// Remaining reports how many memory instructions the stream still has.
func (s *Stream) Remaining() int { return s.app.instPerWK - s.step }

// Next returns the next instruction, or ok=false at stream end.
func (s *Stream) Next() (inst Inst, ok bool) {
	if s.step >= s.app.instPerWK {
		return Inst{}, false
	}
	spec := s.app.Spec
	s.step++

	alu := 1
	if spec.ALUMean > 1 {
		alu = 1 + s.rng.Intn(2*spec.ALUMean-1) // mean ~= ALUMean
	}

	// OLTP transactions have a fixed shape (k reads, then the store),
	// not a probabilistic mix — the access-level read ratio is exact.
	if spec.Family == FamilyOLTP {
		return s.nextOLTP(alu), true
	}

	// Choose read vs write with the instruction-level probability that
	// yields the Table II access-level read ratio. The draw comes from
	// the per-warp seeded generator, so traces remain deterministic;
	// per-warp streams are too short for error diffusion at ratios
	// like 0.99 (one write per ~300 sectors).
	doRead := spec.ReadRatio >= 1 || s.rng.Float64() < s.readFrac

	// PCs are stable across kernels: graph kernels re-execute the same
	// LD/ST instructions, which is what lets the PC-indexed predictor
	// accumulate history over the whole run.
	pcBase := uint64(s.app.Index+1) << 20
	switch {
	case doRead && s.rng.Float64() < spec.SeqFrac:
		// Sequential scan: PC-stable, advances one sector per visit.
		// This is the pattern the ZnG predictor detects (Section IV-B).
		addr := s.seqCursor
		s.seqCursor += SectorBytes

		inst = Inst{PC: pcBase | 0x10, ALU: alu, Acc: append(s.accBuf[:0], Access{Addr: addr})}
	case doRead:
		// Random gather over the hot pool with quadratic skew: a graph
		// neighbour list is a short contiguous run inside one random
		// page. This is the structure behind Fig. 5b's page-level read
		// re-use — the same pages keep being re-read from different
		// offsets — and it is what a page-granularity buffer (ZnG's L2
		// prefetch) can exploit while a sector-granularity memory
		// cannot.
		n := spec.RandSectors
		if n < 1 {
			n = 1
		}
		var page uint64
		if spec.Family == FamilyFrontier {
			// Frontier family: the gather lands in this kernel's
			// frontier window instead of the whole hot pool.
			page = uint64(s.frontLo) + s.zipfPage(s.frontN)
		} else {
			page = s.zipfPage(s.app.hotPages)
		}
		sectors := uint64(PageBytes / SectorBytes)
		start := uint64(s.rng.Intn(int(sectors)))
		acc := s.accBuf[:0]
		for i := 0; i < n; i++ {
			sector := (start + uint64(i)) % sectors
			acc = append(acc, Access{Addr: s.app.vaBase + regHot + page*PageBytes + sector*SectorBytes})
		}
		inst = Inst{PC: pcBase | 0x20, ALU: alu, Acc: acc}
	default:
		// Write: warp-affine selection over clustered chunks of the
		// write pool. Chunk clustering places WriteClusterPages distinct
		// hot pages on the same flash plane (stride-1024 pages share a
		// plane under page striping for every power-of-two plane count),
		// reproducing the asymmetric per-plane write pressure of
		// Fig. 8b — the pressure that thrashes per-plane registers and
		// motivates grouping them (Section IV-C).
		if s.writeLeft > 0 {
			s.writeLeft--
		} else {
			pool := s.app.writePool
			chunks := (pool + WriteClusterPages - 1) / WriteClusterPages
			window := 8
			if window > chunks {
				window = chunks
			}
			base := s.warp * 3 % chunks
			chunk := (base + s.rng.Intn(window)) % chunks
			within := s.rng.Intn(WriteClusterPages)
			// chunk*37 spreads chunks across the whole backbone (37 is
			// coprime with every power-of-two plane count, so the map
			// stays injective and hot chunks land on scattered planes,
			// not the first few channels).
			s.writeVP = uint64(chunk)*37 + planeStridePages*uint64(within)
			if chunks >= planeStridePages {
				// Pool too large for collision-free clustering: fall back
				// to the plain linear layout.
				s.writeVP = uint64(chunk*WriteClusterPages + within)
			}
			s.writeLeft = writeBurst - 1
		}
		sector := uint64(s.rng.Intn(PageBytes / SectorBytes))
		inst = Inst{PC: pcBase | 0x30, ALU: alu,
			Acc: append(s.accBuf[:0], Access{Addr: s.app.vaBase + regWrite + s.writeVP*PageBytes + sector*SectorBytes, Write: true})}
	}
	return inst, true
}

// nextOLTP emits the next instruction of the fixed read-modify-write
// transaction shape: txnReads single-sector row reads skewed over the
// hot pool, then one store skewed over the row-update pool. Stores are
// never bursty — each one redraws its page — which is exactly the
// scattered small-write pressure that defeats per-plane staging
// registers and page-granularity write buffering.
func (s *Stream) nextOLTP(alu int) Inst {
	pcBase := uint64(s.app.Index+1) << 20
	sector := uint64(s.rng.Intn(PageBytes / SectorBytes))
	if s.txnPos < s.txnReads {
		s.txnPos++
		page := s.zipfPage(s.app.hotPages)
		return Inst{PC: pcBase | 0x40, ALU: alu,
			Acc: append(s.accBuf[:0], Access{Addr: s.app.vaBase + regHot + page*PageBytes + sector*SectorBytes})}
	}
	s.txnPos = 0
	page := s.zipfPage(s.app.writePool)
	return Inst{PC: pcBase | 0x50, ALU: alu,
		Acc: append(s.accBuf[:0], Access{Addr: s.app.vaBase + regWrite + page*PageBytes + sector*SectorBytes, Write: true})}
}

// WriteClusterPages is the number of distinct hot write pages that
// share one flash plane (see the write branch of Stream.Next).
const WriteClusterPages = 8

// planeStridePages is the page stride that maps back to the same
// plane: the full backbone has 1,024 planes, and every smaller test
// geometry uses a power-of-two divisor of it.
const planeStridePages = 1024

// zipfPage draws a page index in [0, n) skewed toward low indexes.
func (s *Stream) zipfPage(n int) uint64 {
	return uint64(s.zipfInt(n))
}

func (s *Stream) zipfInt(n int) int {
	if n <= 1 {
		return 0
	}
	u := s.rng.Float64()
	return int(float64(n) * u * u)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
