package workload

// Stats summarizes a trace the way Fig. 5 reports workloads: access
// mix, page-level read re-use, and page-level write redundancy.
type Stats struct {
	MemInsts     int
	ReadSectors  int
	WriteSectors int
	// Distinct 4 KB pages read/written.
	ReadPages  int
	WritePages int
}

// ReadRatio reports the fraction of sector accesses that are reads
// (Fig. 5d / Table II).
func (s Stats) ReadRatio() float64 {
	t := s.ReadSectors + s.WriteSectors
	if t == 0 {
		return 0
	}
	return float64(s.ReadSectors) / float64(t)
}

// ReadReuse reports average reads per distinct read page (Fig. 5b).
func (s Stats) ReadReuse() float64 {
	if s.ReadPages == 0 {
		return 0
	}
	return float64(s.ReadSectors) / float64(s.ReadPages)
}

// WriteRedundancy reports average writes per distinct written page
// (Fig. 5c).
func (s Stats) WriteRedundancy() float64 {
	if s.WritePages == 0 {
		return 0
	}
	return float64(s.WriteSectors) / float64(s.WritePages)
}

// Characterize streams the entire trace of every given application
// and accumulates the merged statistics — for one app it is the
// calibration measurement, for a whole mix it is the unit Fig. 5a-c
// plots. Apps occupy disjoint address spaces, so the page sets never
// collide across components. It is used by the Fig. 5 experiment
// driver and the calibration tests.
func Characterize(apps ...*App) Stats {
	var st Stats
	readPages := make(map[uint64]struct{})
	writePages := make(map[uint64]struct{})
	for _, a := range apps {
		for k := 0; k < a.Kernels(); k++ {
			for w := 0; w < a.Warps(); w++ {
				s := a.Stream(k, w)
				for {
					inst, ok := s.Next()
					if !ok {
						break
					}
					st.MemInsts++
					for _, acc := range inst.Acc {
						page := acc.Addr / PageBytes
						if acc.Write {
							st.WriteSectors++
							writePages[page] = struct{}{}
						} else {
							st.ReadSectors++
							readPages[page] = struct{}{}
						}
					}
				}
			}
		}
	}
	st.ReadPages = len(readPages)
	st.WritePages = len(writePages)
	return st
}
