package workload

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

func TestTableIITranscription(t *testing.T) {
	specs := Specs()
	if len(specs) != 16 {
		t.Fatalf("len(Specs) = %d, want 16", len(specs))
	}
	want := map[string]struct {
		ratio   float64
		kernels int
	}{
		"betw": {0.98, 11}, "bfs1": {0.95, 7}, "bfs2": {0.99, 9},
		"bfs3": {0.88, 10}, "bfs4": {0.97, 12}, "bfs5": {0.99, 6},
		"bfs6": {0.97, 7}, "gc1": {0.98, 8}, "gc2": {0.99, 10},
		"sssp3": {0.98, 8}, "deg": {1.00, 1}, "pr": {0.99, 53},
		"back": {0.57, 1}, "gaus": {0.66, 3}, "FDT": {0.73, 1},
		"gram": {0.75, 3},
	}
	seen := map[string]bool{}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected app %q", s.Name)
			continue
		}
		if s.ReadRatio != w.ratio || s.Kernels != w.kernels {
			t.Errorf("%s: ratio/kernels = %v/%d, want %v/%d", s.Name, s.ReadRatio, s.Kernels, w.ratio, w.kernels)
		}
		seen[s.Name] = true
	}
	if len(seen) != 16 {
		t.Errorf("missing apps: saw %d", len(seen))
	}
}

func TestPaperPairsMatchPaper(t *testing.T) {
	pairs := PaperPairs()
	if len(pairs) != 12 {
		t.Fatalf("len(PaperPairs) = %d, want 12", len(pairs))
	}
	if pairs[0].Name != "betw-back" || pairs[11].Name != "pr-gaus" {
		t.Errorf("pair order: first %q last %q", pairs[0].Name, pairs[11].Name)
	}
	for _, p := range pairs {
		if p.Degree() != 2 {
			t.Fatalf("%s: degree %d, want 2", p.Name, p.Degree())
		}
		a, err := SpecByName(p.Components[0].App)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		b, err := SpecByName(p.Components[1].App)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if a.Suite != "graph" || b.Suite != "sci" {
			t.Errorf("%s: want graph+sci co-run, got %s+%s", p.Name, a.Suite, b.Suite)
		}
		for _, c := range p.Components {
			if c.Weight != 1 {
				t.Errorf("%s: paper pairs run at weight 1, got %v", p.Name, c.Weight)
			}
		}
	}
}

func TestSpecByNameUnknown(t *testing.T) {
	if _, err := SpecByName("nope"); err == nil {
		t.Error("want error for unknown app")
	}
	if _, err := MixByName("nope"); err == nil {
		t.Error("want error for unknown scenario")
	}
}

func TestScenarioRegistry(t *testing.T) {
	scen := Scenarios()
	names := map[string]bool{}
	for _, m := range scen {
		if names[m.Name] {
			t.Errorf("duplicate scenario name %q", m.Name)
		}
		names[m.Name] = true
		if _, err := m.Apps(0.01); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		got, err := MixByName(m.Name)
		if err != nil {
			t.Errorf("MixByName(%q): %v", m.Name, err)
		} else if got.ID() != m.ID() {
			t.Errorf("MixByName(%q) resolved to %q", m.Name, got.ID())
		}
	}
	// Every application has a solo scenario.
	for _, s := range AllSpecs() {
		if !names["solo-"+s.Name] {
			t.Errorf("missing solo scenario for %s", s.Name)
		}
	}
	// The consolidation sweep covers degrees 1..4 with ascending degree.
	for d := 1; d <= ConsolidationDegrees; d++ {
		m, err := ConsolidationMix(d)
		if err != nil {
			t.Fatal(err)
		}
		if !names[m.Name] {
			t.Errorf("registry missing %s", m.Name)
		}
		if m.Degree() != d {
			t.Errorf("%s: degree %d, want %d", m.Name, m.Degree(), d)
		}
	}
	if _, err := ConsolidationMix(0); err == nil {
		t.Error("want error for consolidation degree 0")
	}
	// Stress mixes are single-sided.
	for name, wantWrites := range map[string]bool{"read-stress": false, "write-stress": true} {
		m, err := MixByName(name)
		if err != nil {
			t.Fatal(err)
		}
		apps, err := m.Apps(0.05)
		if err != nil {
			t.Fatal(err)
		}
		st := Characterize(apps...)
		if wantWrites && (st.ReadSectors != 0 || st.WriteSectors == 0) {
			t.Errorf("%s: reads=%d writes=%d, want write-only", name, st.ReadSectors, st.WriteSectors)
		}
		if !wantWrites && (st.WriteSectors != 0 || st.ReadSectors == 0) {
			t.Errorf("%s: reads=%d writes=%d, want read-only", name, st.ReadSectors, st.WriteSectors)
		}
	}
}

func TestMixIDCanonical(t *testing.T) {
	m := NewMix("anything", "bfs1", "gaus")
	if got := m.ID(); got != "bfs1+gaus" {
		t.Errorf("ID = %q, want bfs1+gaus (weight-1 components elide the weight)", got)
	}
	w := Mix{Name: "w", Components: []Component{{App: "bfs1", Weight: 0.5}, {App: "gaus", Weight: 1}}}
	if got := w.ID(); got != "bfs1*0.5+gaus" {
		t.Errorf("ID = %q, want bfs1*0.5+gaus", got)
	}
	// Order is part of the identity: address-space indexes differ.
	if NewMix("x", "gaus", "bfs1").ID() == m.ID() {
		t.Error("component order must change the ID")
	}
}

func TestParseApps(t *testing.T) {
	m, err := ParseApps("bfs1, gaus ,pr")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "bfs1+gaus+pr" || m.Degree() != 3 {
		t.Errorf("parsed %q degree %d", m.Name, m.Degree())
	}
	m, err = ParseApps("oltp*2,fbfs")
	if err != nil {
		t.Fatal(err)
	}
	if m.Components[0].Weight != 2 || m.Name != "oltp*2+fbfs" {
		t.Errorf("weighted parse: %+v", m)
	}
	// Whitespace around the weight separator is tolerated like the
	// whitespace around commas.
	m, err = ParseApps("bfs1, oltp * 2")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "bfs1+oltp*2" || m.Components[1].App != "oltp" {
		t.Errorf("spaced weighted parse: %+v", m)
	}
	for _, bad := range []string{"", "nope", "bfs1*0", "bfs1*x"} {
		if _, err := ParseApps(bad); err == nil {
			t.Errorf("ParseApps(%q): want error", bad)
		}
	}
}

func TestMixAppsIndexesAndScale(t *testing.T) {
	m := Mix{Name: "w", Components: []Component{{App: "bfs1", Weight: 1}, {App: "gaus", Weight: 0.5}}}
	apps, err := m.Apps(0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range apps {
		if a.Index != i {
			t.Errorf("component %d got index %d", i, a.Index)
		}
	}
	full := NewApp(mustSpec(t, "gaus"), 0.2, 1)
	if apps[1].TotalMemInsts() >= full.TotalMemInsts() {
		t.Errorf("weight 0.5 must shrink the trace: %d vs %d",
			apps[1].TotalMemInsts(), full.TotalMemInsts())
	}
}

func mustSpec(t *testing.T, name string) Spec {
	t.Helper()
	s, err := SpecByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFrontierWindowsTileAndPulse(t *testing.T) {
	a := NewApp(mustSpec(t, "fbfs"), 0.25, 0)
	next := 0
	var sizes []int
	for k := 0; k < a.Kernels(); k++ {
		lo, n := a.FrontierWindow(k)
		if lo != next {
			t.Fatalf("kernel %d window starts at %d, want %d (tiling gap/overlap)", k, lo, next)
		}
		if n < 1 {
			t.Fatalf("kernel %d window empty", k)
		}
		next = lo + n
		sizes = append(sizes, n)
	}
	if next != a.HotPages() {
		t.Fatalf("windows cover %d of %d hot pages", next, a.HotPages())
	}
	// Expand then contract: the peak sits strictly inside the run.
	peak := 0
	for k, n := range sizes {
		if n > sizes[peak] {
			peak = k
		}
	}
	if peak == 0 || peak == len(sizes)-1 {
		t.Errorf("frontier peak at kernel %d of %d, want interior expand/contract", peak, len(sizes))
	}
	if sizes[0] >= sizes[peak] || sizes[len(sizes)-1] >= sizes[peak] {
		t.Errorf("frontier does not pulse: sizes %v", sizes)
	}
}

func TestOLTPTransactionShape(t *testing.T) {
	a := NewApp(mustSpec(t, "oltp"), 0.1, 0)
	s := a.Stream(0, 0)
	reads := 0
	for {
		inst, ok := s.Next()
		if !ok {
			break
		}
		if len(inst.Acc) != 1 {
			t.Fatalf("OLTP instruction emitted %d sectors, want 1", len(inst.Acc))
		}
		if inst.Acc[0].Write {
			if reads != 3 {
				// The stream may end mid-transaction, but a store must
				// always follow exactly three reads.
				t.Fatalf("store after %d reads, want 3", reads)
			}
			reads = 0
		} else {
			reads++
			if reads > 3 {
				t.Fatal("more than 3 reads without a store")
			}
		}
	}
}

// TestFamilyCalibration is the tolerance gate for every scenario
// family: each application — Table II generics, the frontier and OLTP
// families, and the stress generators — must land on its ReadRatio
// spec and within band of its ReadReuse/WriteRedund locality targets
// under the generalized Characterize.
func TestFamilyCalibration(t *testing.T) {
	for _, spec := range AllSpecs() {
		st := Characterize(NewApp(spec, 0.25, 0))
		if got := st.ReadRatio(); math.Abs(got-spec.ReadRatio) > 0.03 {
			t.Errorf("%s: read ratio = %.3f, want %.2f +/- 0.03", spec.Name, got, spec.ReadRatio)
		}
		if spec.ReadRatio > 0 {
			if reuse := st.ReadReuse(); reuse < 0.5*spec.ReadReuse || reuse > 2*spec.ReadReuse {
				t.Errorf("%s: read reuse = %.1f, want within 2x of target %.0f", spec.Name, reuse, spec.ReadReuse)
			}
		}
		// The redundancy target is meaningful only once the write pool
		// spans at least one plane cluster; below that the clustering
		// granularity floors the distinct-page count (pr at small
		// scales, for example).
		if spec.ReadRatio < 1 && spec.WriteRedund > 1 && NewApp(spec, 0.25, 0).WritePool() >= WriteClusterPages {
			if red := st.WriteRedundancy(); red < 0.5*spec.WriteRedund || red > 2*spec.WriteRedund {
				t.Errorf("%s: write redundancy = %.1f, want within 2x of target %.0f", spec.Name, red, spec.WriteRedund)
			}
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	spec, _ := SpecByName("betw")
	a := NewApp(spec, 0.05, 0)
	s1, s2 := a.Stream(0, 3), a.Stream(0, 3)
	for {
		i1, ok1 := s1.Next()
		i2, ok2 := s2.Next()
		if ok1 != ok2 {
			t.Fatal("streams diverge in length")
		}
		if !ok1 {
			break
		}
		if i1.PC != i2.PC || i1.ALU != i2.ALU || len(i1.Acc) != len(i2.Acc) {
			t.Fatal("streams diverge in content")
		}
		for k := range i1.Acc {
			if i1.Acc[k] != i2.Acc[k] {
				t.Fatal("streams diverge in addresses")
			}
		}
	}
}

// marshalStream serializes a whole instruction stream to bytes: the
// strongest determinism check is byte equality of the full encoding.
func marshalStream(s *Stream) []byte {
	var b bytes.Buffer
	for {
		inst, ok := s.Next()
		if !ok {
			return b.Bytes()
		}
		binary.Write(&b, binary.LittleEndian, inst.PC)
		binary.Write(&b, binary.LittleEndian, int64(inst.ALU))
		binary.Write(&b, binary.LittleEndian, int64(len(inst.Acc)))
		for _, a := range inst.Acc {
			binary.Write(&b, binary.LittleEndian, a.Addr)
			w := uint8(0)
			if a.Write {
				w = 1
			}
			binary.Write(&b, binary.LittleEndian, w)
		}
	}
}

// TestStreamByteIdentical pins trace determinism under the O(1)-seeded
// RNG: identically-seeded streams — including streams of separately
// constructed App instances, across every generator family — emit
// byte-identical instruction sequences.
func TestStreamByteIdentical(t *testing.T) {
	for _, name := range []string{"betw", "back", "pr", "deg", "fbfs", "oltp", "rdstress", "wrstress"} {
		spec, err := SpecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a1 := NewApp(spec, 0.1, 0)
		a2 := NewApp(spec, 0.1, 0)
		for _, kw := range [][2]int{{0, 0}, {0, 1}} {
			b1 := marshalStream(a1.Stream(kw[0], kw[1]))
			b2 := marshalStream(a2.Stream(kw[0], kw[1]))
			if len(b1) == 0 {
				t.Fatalf("%s: empty stream encoding", name)
			}
			if !bytes.Equal(b1, b2) {
				t.Errorf("%s kernel %d warp %d: same-seed streams not byte-identical",
					name, kw[0], kw[1])
			}
		}
	}
}

func TestStreamsDifferAcrossWarps(t *testing.T) {
	spec, _ := SpecByName("bfs1")
	a := NewApp(spec, 0.05, 0)
	i1, _ := a.Stream(0, 0).Next()
	i2, _ := a.Stream(0, 1).Next()
	// Different warps must not generate byte-identical first accesses
	// (their scan strips are disjoint).
	if len(i1.Acc) > 0 && len(i2.Acc) > 0 && i1.Acc[0].Addr == i2.Acc[0].Addr {
		t.Error("warp 0 and warp 1 start at the same address")
	}
}

func TestReuseCalibrationAverages(t *testing.T) {
	// Fig. 5b: read re-access averages ~42 across the co-run pairs.
	// Fig. 5c: write redundancy averages ~65.
	var reuseSum, redundSum float64
	n := 0
	for _, p := range PaperPairs() {
		apps, err := p.Apps(0.25)
		if err != nil {
			t.Fatal(err)
		}
		st := Characterize(apps...)
		reuse, redund := st.ReadReuse(), st.WriteRedundancy()
		if reuse < 5 || reuse > 120 {
			t.Errorf("%s: read reuse = %.1f, out of plausible Fig. 5b band", p.Name, reuse)
		}
		if redund < 10 || redund > 220 {
			t.Errorf("%s: write redundancy = %.1f, out of plausible Fig. 5c band", p.Name, redund)
		}
		reuseSum += reuse
		redundSum += redund
		n++
	}
	avgReuse, avgRedund := reuseSum/float64(n), redundSum/float64(n)
	if avgReuse < 25 || avgReuse > 60 {
		t.Errorf("average read reuse = %.1f, want ~42 (Fig. 5b)", avgReuse)
	}
	if avgRedund < 40 || avgRedund > 95 {
		t.Errorf("average write redundancy = %.1f, want ~65 (Fig. 5c)", avgRedund)
	}
}

func TestScaleChangesBudget(t *testing.T) {
	spec, _ := SpecByName("pr")
	small := NewApp(spec, 0.05, 0)
	big := NewApp(spec, 1.0, 0)
	if small.TotalMemInsts() >= big.TotalMemInsts() {
		t.Errorf("scale must shrink trace: %d vs %d", small.TotalMemInsts(), big.TotalMemInsts())
	}
	if small.MemInstsPerWarp() < 4 {
		t.Error("per-warp floor violated")
	}
}

func TestAddressSpacesDisjoint(t *testing.T) {
	sa, _ := SpecByName("betw")
	sb, _ := SpecByName("back")
	a, b := NewApp(sa, 0.05, 0), NewApp(sb, 0.05, 1)
	if a.VABase() == b.VABase() {
		t.Fatal("apps share address space")
	}
	sA := a.Stream(0, 0)
	for {
		inst, ok := sA.Next()
		if !ok {
			break
		}
		for _, acc := range inst.Acc {
			if acc.Addr>>40 != a.VABase()>>40 {
				t.Fatalf("app A emitted address %x outside its space", acc.Addr)
			}
		}
	}
}

func TestPCStability(t *testing.T) {
	// The predictor requires the scan PC to repeat: all scan accesses in
	// one kernel share one PC, distinct from gather and write PCs.
	spec, _ := SpecByName("pr")
	a := NewApp(spec, 0.1, 0)
	pcs := map[uint64]int{}
	s := a.Stream(0, 0)
	for {
		inst, ok := s.Next()
		if !ok {
			break
		}
		pcs[inst.PC]++
	}
	if len(pcs) > 3 {
		t.Errorf("warp stream used %d distinct PCs, want <= 3 (scan/gather/write)", len(pcs))
	}
}

func TestSequentialScanAdvances(t *testing.T) {
	spec, _ := SpecByName("deg") // highest SeqFrac
	a := NewApp(spec, 0.1, 0)
	s := a.Stream(0, 0)
	var scans []uint64
	for {
		inst, ok := s.Next()
		if !ok {
			break
		}
		if inst.PC&0xff == 0x10 {
			scans = append(scans, inst.Acc[0].Addr)
		}
	}
	if len(scans) < 2 {
		t.Skip("too few scans at this scale")
	}
	for i := 1; i < len(scans); i++ {
		if scans[i] != scans[i-1]+SectorBytes {
			t.Fatalf("scan %d: addr %x, want %x (sequential)", i, scans[i], scans[i-1]+SectorBytes)
		}
	}
}

func TestDegIsReadOnly(t *testing.T) {
	spec, _ := SpecByName("deg")
	st := Characterize(NewApp(spec, 0.2, 0))
	if st.WriteSectors != 0 {
		t.Errorf("deg emitted %d writes, want 0 (read ratio 1.00)", st.WriteSectors)
	}
}

func TestFootprintPagesPositive(t *testing.T) {
	for _, spec := range Specs() {
		a := NewApp(spec, 0.1, 0)
		if a.FootprintPages() <= 0 {
			t.Errorf("%s: footprint %d", spec.Name, a.FootprintPages())
		}
	}
}

func TestStreamPanicsOutOfRange(t *testing.T) {
	spec, _ := SpecByName("betw")
	a := NewApp(spec, 0.05, 0)
	for _, f := range []func(){
		func() { a.Stream(-1, 0) },
		func() { a.Stream(0, 10_000) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic for out-of-range stream")
				}
			}()
			f()
		}()
	}
}
