package workload

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Component is one application instance inside a Mix: a spec name plus
// a weight multiplying the mix-level trace scale for that instance
// (weight 1 = the spec's nominal budget).
type Component struct {
	App    string
	Weight float64
}

// Mix is one multi-application workload scenario: a named list of
// co-resident applications, each running in its own virtual address
// space on its own SM partition. The twelve 2-app co-run pairs of the
// paper's Section V-A are mixes of degree 2; the scenario registry
// (Scenarios) adds solo runs, higher-degree consolidation mixes,
// stress mixes and the new generator families on top.
type Mix struct {
	Name       string
	Components []Component
}

// NewMix builds a mix of the named applications, each at weight 1.
func NewMix(name string, apps ...string) Mix {
	c := make([]Component, len(apps))
	for i, a := range apps {
		c[i] = Component{App: a, Weight: 1}
	}
	return Mix{Name: name, Components: c}
}

// ID returns the canonical content identity of the mix: the ordered
// component list, independent of the display name. Two scenarios with
// the same components and weights simulate identically, and the
// experiments memo keys on exactly this string — unlike the Mix struct
// itself, it is comparable no matter how many components a mix has.
func (m Mix) ID() string {
	var b strings.Builder
	for i, c := range m.Components {
		if i > 0 {
			b.WriteByte('+')
		}
		b.WriteString(c.App)
		if c.Weight != 1 {
			b.WriteByte('*')
			b.WriteString(strconv.FormatFloat(c.Weight, 'g', -1, 64))
		}
	}
	return b.String()
}

// Degree reports the number of co-resident applications.
func (m Mix) Degree() int { return len(m.Components) }

// Apps instantiates every component at the given trace scale.
// Component i receives address-space index i, so the instantiation is
// order-sensitive exactly like ID.
func (m Mix) Apps(scale float64) ([]*App, error) {
	if len(m.Components) == 0 {
		return nil, fmt.Errorf("workload: mix %q has no components", m.Name)
	}
	apps := make([]*App, len(m.Components))
	for i, c := range m.Components {
		spec, err := SpecByName(c.App)
		if err != nil {
			return nil, fmt.Errorf("mix %q: %w", m.Name, err)
		}
		if !(c.Weight > 0) {
			return nil, fmt.Errorf("workload: mix %q: component %s weight %v must be positive", m.Name, c.App, c.Weight)
		}
		apps[i] = NewApp(spec, scale*c.Weight, i)
	}
	return apps, nil
}

// PaperPairs returns the twelve co-run workloads of Figures 5, 10 and
// 11 as degree-2 mixes, in the paper's x-axis order: a read-intensive
// graph application co-run with a write-intensive scientific kernel
// (Section V-A).
func PaperPairs() []Mix {
	return []Mix{
		NewMix("betw-back", "betw", "back"),
		NewMix("bfs1-gaus", "bfs1", "gaus"),
		NewMix("gc1-FDT", "gc1", "FDT"),
		NewMix("gc2-FDT", "gc2", "FDT"),
		NewMix("sssp3-gram", "sssp3", "gram"),
		NewMix("bfs2-gaus", "bfs2", "gaus"),
		NewMix("bfs3-FDT", "bfs3", "FDT"),
		NewMix("bfs4-back", "bfs4", "back"),
		NewMix("bfs5-back", "bfs5", "back"),
		NewMix("bfs6-gaus", "bfs6", "gaus"),
		NewMix("deg-gram", "deg", "gram"),
		NewMix("pr-gaus", "pr", "gaus"),
	}
}

// ConsolidationDegrees is the co-run-degree range the consolidation
// scenarios (and the abl-consolidation figure) sweep.
const ConsolidationDegrees = 4

// consolApps are the applications the consolidation sweep stacks, one
// more per degree: a read-heavy graph app first, then alternating
// write- and read-intensive additions, so each added tenant changes
// the pressure mix rather than just duplicating it.
var consolApps = []string{"bfs1", "gaus", "pr", "back"}

// ConsolidationMix returns the consolidation scenario of the given
// co-run degree (1 to ConsolidationDegrees).
func ConsolidationMix(degree int) (Mix, error) {
	if degree < 1 || degree > ConsolidationDegrees {
		return Mix{}, fmt.Errorf("workload: consolidation degree %d out of range [1, %d]", degree, ConsolidationDegrees)
	}
	return NewMix(fmt.Sprintf("consol-%d", degree), consolApps[:degree]...), nil
}

// Scenarios returns the full scenario registry, the vocabulary behind
// zngsim -mix and zngfig -mixes: the twelve paper pairs, a solo run
// per application, the consolidation sweep, read-only/write-only
// stress mixes and the new-family co-runs. Names are unique; content
// may coalesce (e.g. consol-2 simulates identically to bfs1-gaus, and
// the memo's ID keying exploits that).
func Scenarios() []Mix {
	out := PaperPairs()
	for _, s := range AllSpecs() {
		out = append(out, NewMix("solo-"+s.Name, s.Name))
	}
	for d := 1; d <= ConsolidationDegrees; d++ {
		m, err := ConsolidationMix(d)
		if err != nil {
			panic(err) // unreachable: d is in range by construction
		}
		out = append(out, m)
	}
	out = append(out,
		NewMix("read-stress", "rdstress", "rdstress"),
		NewMix("write-stress", "wrstress", "wrstress"),
		NewMix("fbfs-gaus", "fbfs", "gaus"),
		NewMix("oltp-bfs1", "oltp", "bfs1"),
		NewMix("frontier-oltp", "fbfs", "oltp"),
	)
	return out
}

// mixIndex builds the scenario-name lookup exactly once, panicking on
// a duplicate name so a registry collision cannot shadow a scenario.
var mixIndex = sync.OnceValue(func() map[string]Mix {
	m := make(map[string]Mix)
	for _, s := range Scenarios() {
		if _, dup := m[s.Name]; dup {
			panic(fmt.Sprintf("workload: duplicate scenario name %q", s.Name))
		}
		m[s.Name] = s
	}
	return m
})

// MixByName returns the registered scenario with the given name.
func MixByName(name string) (Mix, error) {
	m, ok := mixIndex()[name]
	if !ok {
		return Mix{}, fmt.Errorf("workload: unknown scenario %q (the registry is workload.Scenarios; zngsim -list prints it)", name)
	}
	return m, nil
}

// ParseApps builds an ad-hoc mix from a comma-separated application
// list, e.g. "bfs1,gaus,pr". A component may carry an explicit weight
// as "app*1.5". The mix's name is its canonical ID.
func ParseApps(list string) (Mix, error) {
	var comps []Component
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c := Component{App: part, Weight: 1}
		if i := strings.IndexByte(part, '*'); i >= 0 {
			w, err := strconv.ParseFloat(strings.TrimSpace(part[i+1:]), 64)
			if err != nil {
				return Mix{}, fmt.Errorf("workload: bad component weight %q: %w", part, err)
			}
			c.App, c.Weight = strings.TrimSpace(part[:i]), w
		}
		if _, err := SpecByName(c.App); err != nil {
			return Mix{}, err
		}
		if !(c.Weight > 0) {
			return Mix{}, fmt.Errorf("workload: component %s weight %v must be positive", c.App, c.Weight)
		}
		comps = append(comps, c)
	}
	if len(comps) == 0 {
		return Mix{}, fmt.Errorf("workload: empty application list %q", list)
	}
	m := Mix{Components: comps}
	m.Name = m.ID()
	return m, nil
}
