package workload

import (
	"fmt"
	"sync"
)

// Specs transcribes Table II (read ratio, kernel count) and attaches
// the locality calibration derived from Fig. 5: per-application read
// re-use targets spreading around the reported ~42 average and write
// redundancy targets spreading around the reported ~65 average.
//
// Graph-analysis applications [23] are read-intensive; the scientific
// kernels back/gaus [24] and FDT/gram [25] carry the write traffic of
// the co-run pairs.
func Specs() []Spec {
	return []Spec{
		{Name: "betw", Suite: "graph", ReadRatio: 0.98, Kernels: 11, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 55, WriteRedund: 110, SeqFrac: 0.25, RandSectors: 4, ALUMean: 8, Seed: 101},
		{Name: "bfs1", Suite: "graph", ReadRatio: 0.95, Kernels: 7, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 35, WriteRedund: 80, SeqFrac: 0.30, RandSectors: 4, ALUMean: 6, Seed: 102},
		{Name: "bfs2", Suite: "graph", ReadRatio: 0.99, Kernels: 9, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 60, WriteRedund: 100, SeqFrac: 0.28, RandSectors: 4, ALUMean: 6, Seed: 103},
		{Name: "bfs3", Suite: "graph", ReadRatio: 0.88, Kernels: 10, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 25, WriteRedund: 70, SeqFrac: 0.30, RandSectors: 4, ALUMean: 6, Seed: 104},
		{Name: "bfs4", Suite: "graph", ReadRatio: 0.97, Kernels: 12, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 40, WriteRedund: 90, SeqFrac: 0.30, RandSectors: 4, ALUMean: 6, Seed: 105},
		{Name: "bfs5", Suite: "graph", ReadRatio: 0.99, Kernels: 6, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 70, WriteRedund: 120, SeqFrac: 0.28, RandSectors: 4, ALUMean: 6, Seed: 106},
		{Name: "bfs6", Suite: "graph", ReadRatio: 0.97, Kernels: 7, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 45, WriteRedund: 95, SeqFrac: 0.30, RandSectors: 4, ALUMean: 6, Seed: 107},
		{Name: "gc1", Suite: "graph", ReadRatio: 0.98, Kernels: 8, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 30, WriteRedund: 85, SeqFrac: 0.22, RandSectors: 4, ALUMean: 8, Seed: 108},
		{Name: "gc2", Suite: "graph", ReadRatio: 0.99, Kernels: 10, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 50, WriteRedund: 105, SeqFrac: 0.22, RandSectors: 4, ALUMean: 8, Seed: 109},
		{Name: "sssp3", Suite: "graph", ReadRatio: 0.98, Kernels: 8, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 38, WriteRedund: 88, SeqFrac: 0.25, RandSectors: 4, ALUMean: 7, Seed: 110},
		{Name: "deg", Suite: "graph", ReadRatio: 1.00, Kernels: 1, WarpsPerKernel: 128, MemInstBudget: 50000, ReadReuse: 15, WriteRedund: 1, SeqFrac: 0.55, RandSectors: 3, ALUMean: 5, Seed: 111},
		{Name: "pr", Suite: "graph", ReadRatio: 0.99, Kernels: 53, WarpsPerKernel: 64, MemInstBudget: 70000, ReadReuse: 75, WriteRedund: 130, SeqFrac: 0.35, RandSectors: 4, ALUMean: 7, Seed: 112},
		{Name: "back", Suite: "sci", ReadRatio: 0.57, Kernels: 1, WarpsPerKernel: 128, MemInstBudget: 40000, ReadReuse: 30, WriteRedund: 55, SeqFrac: 0.60, RandSectors: 2, ALUMean: 12, Seed: 113},
		{Name: "gaus", Suite: "sci", ReadRatio: 0.66, Kernels: 3, WarpsPerKernel: 128, MemInstBudget: 40000, ReadReuse: 35, WriteRedund: 45, SeqFrac: 0.65, RandSectors: 2, ALUMean: 14, Seed: 114},
		{Name: "FDT", Suite: "sci", ReadRatio: 0.73, Kernels: 1, WarpsPerKernel: 128, MemInstBudget: 40000, ReadReuse: 28, WriteRedund: 40, SeqFrac: 0.60, RandSectors: 2, ALUMean: 12, Seed: 115},
		{Name: "gram", Suite: "sci", ReadRatio: 0.75, Kernels: 3, WarpsPerKernel: 128, MemInstBudget: 40000, ReadReuse: 32, WriteRedund: 35, SeqFrac: 0.60, RandSectors: 2, ALUMean: 12, Seed: 116},
	}
}

// FamilySpecs lists the applications beyond Table II that the scenario
// subsystem adds: the two new generator families (frontier traversal
// and OLTP transaction stream, calibrated against the FlashGraph and
// GPU-OLTP related work rather than Table II) and the pure read/write
// stress generators behind the stress mixes.
func FamilySpecs() []Spec {
	return []Spec{
		// fbfs: frontier-phase BFS traversal. Read ratio and locality
		// sit in the band of the Table II BFS family; what changes is
		// the shape — random reads sweep an expanding/contracting
		// frontier window per kernel instead of one stationary pool.
		{Name: "fbfs", Suite: "graph", Family: FamilyFrontier, ReadRatio: 0.94, Kernels: 12, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 30, WriteRedund: 75, SeqFrac: 0.30, RandSectors: 4, ALUMean: 6, Seed: 201},
		// oltp: small read-modify-write transactions — three
		// single-sector row reads then one scattered row update
		// (ReadRatio 0.75 = 3/(3+1) exactly, by construction). Low
		// re-use and low redundancy relative to the graph suite: the
		// working set is hot rows, not whole revisited pages.
		{Name: "oltp", Suite: "tx", Family: FamilyOLTP, ReadRatio: 0.75, Kernels: 4, WarpsPerKernel: 96, MemInstBudget: 50000, ReadReuse: 12, WriteRedund: 8, SeqFrac: 0, RandSectors: 1, ALUMean: 10, Seed: 202},
		// rdstress / wrstress: single-sided generators for the
		// read-only and write-only stress mixes.
		{Name: "rdstress", Suite: "stress", ReadRatio: 1.00, Kernels: 2, WarpsPerKernel: 128, MemInstBudget: 50000, ReadReuse: 20, WriteRedund: 1, SeqFrac: 0.50, RandSectors: 4, ALUMean: 4, Seed: 203},
		{Name: "wrstress", Suite: "stress", ReadRatio: 0.00, Kernels: 2, WarpsPerKernel: 128, MemInstBudget: 40000, ReadReuse: 1, WriteRedund: 40, SeqFrac: 0, RandSectors: 1, ALUMean: 4, Seed: 204},
	}
}

// AllSpecs returns every runnable application: the sixteen Table II
// apps followed by the scenario-subsystem families.
func AllSpecs() []Spec {
	return append(Specs(), FamilySpecs()...)
}

// specIndex builds the name lookup exactly once; both spec slices are
// static, so the map never invalidates.
var specIndex = sync.OnceValue(func() map[string]Spec {
	m := make(map[string]Spec)
	for _, s := range AllSpecs() {
		if _, dup := m[s.Name]; dup {
			panic(fmt.Sprintf("workload: duplicate spec name %q", s.Name))
		}
		m[s.Name] = s
	}
	return m
})

// SpecByName returns the application spec with the given name, looking
// across Table II and the scenario families.
func SpecByName(name string) (Spec, error) {
	s, ok := specIndex()[name]
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown application %q", name)
	}
	return s, nil
}
