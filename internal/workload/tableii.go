package workload

import "fmt"

// Specs transcribes Table II (read ratio, kernel count) and attaches
// the locality calibration derived from Fig. 5: per-application read
// re-use targets spreading around the reported ~42 average and write
// redundancy targets spreading around the reported ~65 average.
//
// Graph-analysis applications [23] are read-intensive; the scientific
// kernels back/gaus [24] and FDT/gram [25] carry the write traffic of
// the co-run pairs.
func Specs() []Spec {
	return []Spec{
		{Name: "betw", Suite: "graph", ReadRatio: 0.98, Kernels: 11, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 55, WriteRedund: 110, SeqFrac: 0.25, RandSectors: 4, ALUMean: 8, Seed: 101},
		{Name: "bfs1", Suite: "graph", ReadRatio: 0.95, Kernels: 7, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 35, WriteRedund: 80, SeqFrac: 0.30, RandSectors: 4, ALUMean: 6, Seed: 102},
		{Name: "bfs2", Suite: "graph", ReadRatio: 0.99, Kernels: 9, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 60, WriteRedund: 100, SeqFrac: 0.28, RandSectors: 4, ALUMean: 6, Seed: 103},
		{Name: "bfs3", Suite: "graph", ReadRatio: 0.88, Kernels: 10, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 25, WriteRedund: 70, SeqFrac: 0.30, RandSectors: 4, ALUMean: 6, Seed: 104},
		{Name: "bfs4", Suite: "graph", ReadRatio: 0.97, Kernels: 12, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 40, WriteRedund: 90, SeqFrac: 0.30, RandSectors: 4, ALUMean: 6, Seed: 105},
		{Name: "bfs5", Suite: "graph", ReadRatio: 0.99, Kernels: 6, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 70, WriteRedund: 120, SeqFrac: 0.28, RandSectors: 4, ALUMean: 6, Seed: 106},
		{Name: "bfs6", Suite: "graph", ReadRatio: 0.97, Kernels: 7, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 45, WriteRedund: 95, SeqFrac: 0.30, RandSectors: 4, ALUMean: 6, Seed: 107},
		{Name: "gc1", Suite: "graph", ReadRatio: 0.98, Kernels: 8, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 30, WriteRedund: 85, SeqFrac: 0.22, RandSectors: 4, ALUMean: 8, Seed: 108},
		{Name: "gc2", Suite: "graph", ReadRatio: 0.99, Kernels: 10, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 50, WriteRedund: 105, SeqFrac: 0.22, RandSectors: 4, ALUMean: 8, Seed: 109},
		{Name: "sssp3", Suite: "graph", ReadRatio: 0.98, Kernels: 8, WarpsPerKernel: 96, MemInstBudget: 60000, ReadReuse: 38, WriteRedund: 88, SeqFrac: 0.25, RandSectors: 4, ALUMean: 7, Seed: 110},
		{Name: "deg", Suite: "graph", ReadRatio: 1.00, Kernels: 1, WarpsPerKernel: 128, MemInstBudget: 50000, ReadReuse: 15, WriteRedund: 1, SeqFrac: 0.55, RandSectors: 3, ALUMean: 5, Seed: 111},
		{Name: "pr", Suite: "graph", ReadRatio: 0.99, Kernels: 53, WarpsPerKernel: 64, MemInstBudget: 70000, ReadReuse: 75, WriteRedund: 130, SeqFrac: 0.35, RandSectors: 4, ALUMean: 7, Seed: 112},
		{Name: "back", Suite: "sci", ReadRatio: 0.57, Kernels: 1, WarpsPerKernel: 128, MemInstBudget: 40000, ReadReuse: 30, WriteRedund: 55, SeqFrac: 0.60, RandSectors: 2, ALUMean: 12, Seed: 113},
		{Name: "gaus", Suite: "sci", ReadRatio: 0.66, Kernels: 3, WarpsPerKernel: 128, MemInstBudget: 40000, ReadReuse: 35, WriteRedund: 45, SeqFrac: 0.65, RandSectors: 2, ALUMean: 14, Seed: 114},
		{Name: "FDT", Suite: "sci", ReadRatio: 0.73, Kernels: 1, WarpsPerKernel: 128, MemInstBudget: 40000, ReadReuse: 28, WriteRedund: 40, SeqFrac: 0.60, RandSectors: 2, ALUMean: 12, Seed: 115},
		{Name: "gram", Suite: "sci", ReadRatio: 0.75, Kernels: 3, WarpsPerKernel: 128, MemInstBudget: 40000, ReadReuse: 32, WriteRedund: 35, SeqFrac: 0.60, RandSectors: 2, ALUMean: 12, Seed: 116},
	}
}

// SpecByName returns the Table II spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown application %q", name)
}

// Pair is one multi-application workload: a read-intensive graph
// application co-run with a write-intensive scientific kernel
// (Section V-A).
type Pair struct {
	Name string
	A, B string // Table II application names
}

// Pairs returns the twelve co-run workloads of Figures 5, 10 and 11,
// in the paper's x-axis order.
func Pairs() []Pair {
	return []Pair{
		{"betw-back", "betw", "back"},
		{"bfs1-gaus", "bfs1", "gaus"},
		{"gc1-FDT", "gc1", "FDT"},
		{"gc2-FDT", "gc2", "FDT"},
		{"sssp3-gram", "sssp3", "gram"},
		{"bfs2-gaus", "bfs2", "gaus"},
		{"bfs3-FDT", "bfs3", "FDT"},
		{"bfs4-back", "bfs4", "back"},
		{"bfs5-back", "bfs5", "back"},
		{"bfs6-gaus", "bfs6", "gaus"},
		{"deg-gram", "deg", "gram"},
		{"pr-gaus", "pr", "gaus"},
	}
}

// PairByName returns the co-run pair with the given name.
func PairByName(name string) (Pair, error) {
	for _, p := range Pairs() {
		if p.Name == name {
			return p, nil
		}
	}
	return Pair{}, fmt.Errorf("workload: unknown pair %q", name)
}

// Apps instantiates both applications of a pair at the given scale.
// The first app gets address-space index 0, the second index 1.
func (p Pair) Apps(scale float64) (*App, *App, error) {
	sa, err := SpecByName(p.A)
	if err != nil {
		return nil, nil, err
	}
	sb, err := SpecByName(p.B)
	if err != nil {
		return nil, nil, err
	}
	return NewApp(sa, scale, 0), NewApp(sb, scale, 1), nil
}
