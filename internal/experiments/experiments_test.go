package experiments

import (
	"strconv"
	"strings"
	"testing"

	"zng/internal/config"
	"zng/internal/platform"
)

func TestTableI(t *testing.T) {
	tab := TableI(config.Default())
	s := tab.String()
	for _, want := range []string{"Z-NAND", "tR (us)", "P/E cycles", "mesh", "Optane"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q:\n%s", want, s)
		}
	}
}

func TestTableII(t *testing.T) {
	tab := TableII(0.2)
	if tab.Rows() != 16 {
		t.Fatalf("Table II rows = %d, want 16", tab.Rows())
	}
	if !strings.Contains(tab.String(), "betw") {
		t.Error("missing betw row")
	}
}

func TestFig3StaticShape(t *testing.T) {
	tab := Fig3(config.Default())
	if tab.Rows() != 4 {
		t.Fatalf("rows = %d", tab.Rows())
	}
	// Z-NAND row: highest density, lowest power.
	if tab.Cell(3, 1) != "64" {
		t.Errorf("Z-NAND density cell = %q, want 64", tab.Cell(3, 1))
	}
}

func TestFig1bShape(t *testing.T) {
	tab := Fig1b(config.Default())
	get := func(row int) string { return tab.Cell(row, 1) }
	// Ordering claims of Fig. 1b: flash read >> flash channel >
	// DRAM buffer > SSD engine; GDDR5 gap line above everything but
	// the raw array read.
	vals := map[string]float64{}
	for i := 0; i < tab.Rows(); i++ {
		var f float64
		if _, err := sscan(tab.Cell(i, 1), &f); err != nil {
			t.Fatalf("bad cell %q", get(i))
		}
		vals[tab.Cell(i, 0)] = f
	}
	if !(vals["flash read"] > vals["flash channel"]) {
		t.Errorf("flash read (%v) must exceed channel (%v)", vals["flash read"], vals["flash channel"])
	}
	if !(vals["flash channel"] > vals["DRAM buffer"]) {
		t.Errorf("channel (%v) must exceed DRAM buffer (%v)", vals["flash channel"], vals["DRAM buffer"])
	}
	if !(vals["DRAM buffer"] > vals["SSD engine"]) {
		t.Errorf("DRAM buffer (%v) must exceed SSD engine (%v)", vals["DRAM buffer"], vals["SSD engine"])
	}
	if !(vals["flash read"] > vals["flash write"]) {
		t.Error("array reads must out-pace programs")
	}
	if !(vals["GDDR5 (gap line)"] > vals["DRAM buffer"]*10) {
		t.Error("the performance gap must be an order of magnitude")
	}
}

func TestFig4cShape(t *testing.T) {
	tab := Fig4c(config.Default())
	vals := map[string]float64{}
	for i := 0; i < tab.Rows(); i++ {
		var f float64
		if _, err := sscan(tab.Cell(i, 1), &f); err != nil {
			t.Fatalf("bad cell")
		}
		vals[tab.Cell(i, 0)] = f
	}
	// GDDR5 > DDR4 > LPDDR4 > ZSSD > HybridGPU > GPU-SSD.
	order := []string{"GDDR5", "DDR4", "LPDDR4", "ZSSD"}
	for i := 1; i < len(order); i++ {
		if vals[order[i-1]] <= vals[order[i]] {
			t.Errorf("%s (%v) must exceed %s (%v)", order[i-1], vals[order[i-1]], order[i], vals[order[i]])
		}
	}
	if vals["GPU-SSD"] >= vals["HybridGPU"] {
		t.Errorf("HybridGPU (%v) must beat the host-mediated GPU-SSD (%v)", vals["HybridGPU"], vals["GPU-SSD"])
	}
	// Paper: GPU DRAM outperforms GPU-SSD by ~80x and HybridGPU by ~40x.
	if r := vals["GDDR5"] / vals["GPU-SSD"]; r < 30 {
		t.Errorf("GDDR5/GPU-SSD ratio = %.0f, want large (paper ~80-150x)", r)
	}
}

func TestFig4dEngineDominates(t *testing.T) {
	_, gpu, hyb := Fig4d(config.Default())
	if hyb.Total() <= gpu.Total() {
		t.Fatalf("HybridGPU total latency (%v) must exceed GPU (%v)", hyb.Total(), gpu.Total())
	}
	// Paper: the SSD engine accounts for ~67% of HybridGPU's latency.
	frac := hyb.Get("SSD engine") / hyb.Total()
	if frac < 0.3 {
		t.Errorf("SSD engine fraction = %.2f, want the dominant component (paper 0.67)", frac)
	}
	for _, c := range hyb.Components() {
		if hyb.Get(c) < 0 {
			t.Errorf("negative latency for %s", c)
		}
	}
}

func TestFig5bcdAverages(t *testing.T) {
	o := TestOptions()
	o.Mixes = o.Mixes[:2]
	tab, err := Fig5bcd(o)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 3 { // 2 pairs + average
		t.Fatalf("rows = %d", tab.Rows())
	}
}

func TestFig5aDegradationLarge(t *testing.T) {
	o := TestOptions()
	o.Mixes = o.Mixes[:1]
	_, deg, err := Fig5a(o)
	if err != nil {
		t.Fatal(err)
	}
	for pair, d := range deg {
		if d < 5 {
			t.Errorf("%s: degradation %.1fx, want large (paper up to 28x+)", pair, d)
		}
	}
}

func TestFig8bHeatmapAsymmetry(t *testing.T) {
	o := TestOptions()
	_, heat, err := Fig8b(o)
	if err != nil {
		t.Fatal(err)
	}
	var min, max uint64
	min = ^uint64(0)
	for _, row := range heat {
		for _, v := range row {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	if max == 0 {
		t.Fatal("no writes recorded")
	}
	if min == max {
		t.Error("write distribution perfectly uniform; Fig. 8b asymmetry absent")
	}
}

func TestFig10SmallMatrix(t *testing.T) {
	o := TestOptions()
	o.Mixes = o.Mixes[:1]
	tab, res, err := Fig10(o)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 2 { // 1 pair + average
		t.Fatalf("rows = %d", tab.Rows())
	}
	pair := o.Mixes[0].Name
	zng := res[platform.ZnG][pair].IPC
	if res[platform.HybridGPU][pair].IPC >= zng {
		t.Error("ZnG must beat HybridGPU")
	}
	if res[platform.ZnGBase][pair].IPC >= res[platform.HybridGPU][pair].IPC {
		t.Error("ZnG-base must trail HybridGPU")
	}
}

func TestFig11ZnGWins(t *testing.T) {
	o := TestOptions()
	o.Mixes = o.Mixes[:1]
	_, res, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	pair := o.Mixes[0].Name
	if res[platform.ZnG][pair].FlashArrayGBps() <= res[platform.HybridGPU][pair].FlashArrayGBps() {
		t.Error("ZnG flash bandwidth must exceed HybridGPU's")
	}
}

func TestAblationConsolidation(t *testing.T) {
	o := TestOptions()
	tab, ipc, err := AblationConsolidation(o)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 4 {
		t.Fatalf("rows = %d, want degrees 1-4", tab.Rows())
	}
	for _, k := range []platform.Kind{platform.HybridGPU, platform.ZnG} {
		if len(ipc[k]) != 4 {
			t.Fatalf("%v: %d degrees measured", k, len(ipc[k]))
		}
		for d, v := range ipc[k] {
			if v <= 0 {
				t.Errorf("%v degree %d: IPC %v", k, d+1, v)
			}
		}
	}
	// The ablation's claim: ZnG retains at least as much of its solo
	// IPC under 4-way consolidation as HybridGPU does.
	zng := ipc[platform.ZnG][3] / ipc[platform.ZnG][0]
	hyb := ipc[platform.HybridGPU][3] / ipc[platform.HybridGPU][0]
	if zng < hyb {
		t.Errorf("ZnG retained %.3f of solo IPC vs HybridGPU %.3f; want ZnG to degrade at least as gracefully", zng, hyb)
	}
	if err := checkAblConsolidation(tab); err != nil {
		t.Errorf("shape check: %v", err)
	}
}

// TestMixAliasesShareSimulations pins the memo's content keying:
// consol-2 and the paper pair bfs1-gaus have different names but the
// same canonical ID, so the second request must be a pure cache hit —
// and still come back labeled with the name it was asked under.
func TestMixAliasesShareSimulations(t *testing.T) {
	o := TestOptions()
	o.Scale = 0.023
	r1, err := runOne(o, platform.ZnG, "bfs1-gaus")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runOne(o, platform.ZnG, "consol-2")
	if err != nil {
		t.Fatal(err)
	}
	if st := o.Runner.(*Memo).Stats(); st.Sims != 1 {
		t.Errorf("aliasing scenarios performed %d simulations, want 1", st.Sims)
	}
	if r1.IPC != r2.IPC || r1.Cycles != r2.Cycles {
		t.Errorf("aliased results differ: %+v vs %+v", r1, r2)
	}
	if r1.Workload != "bfs1-gaus" || r2.Workload != "consol-2" {
		t.Errorf("labels not preserved: %q / %q", r1.Workload, r2.Workload)
	}
}

func TestAblationGC(t *testing.T) {
	tab, st := AblationGC()
	if st.Merges == 0 {
		t.Fatal("GC ablation produced no merges")
	}
	if st.MaxErase > int(st.Merges) {
		t.Errorf("max erase %d exceeds merges %d: wear leveling broken", st.MaxErase, st.Merges)
	}
	if !strings.Contains(tab.String(), "write amplification") {
		t.Error("missing WA row")
	}
}

// sscan is a tiny strconv wrapper tolerant of the table's trimmed
// float formatting.
func sscan(s string, f *float64) (int, error) {
	return fmtSscan(s, f)
}

func fmtSscan(s string, f *float64) (int, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	*f = v
	return 1, nil
}
