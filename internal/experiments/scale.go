package experiments

import (
	"fmt"

	"zng/internal/platform"
	"zng/internal/stats"
)

// ScaleSweepBase is the 1x trace scale of the scale-sweep ladder; the
// root BenchmarkScaleSweep times its top rung, so the figure and the
// benchmark describe the same simulations.
const ScaleSweepBase = 0.02

// ScaleSweepFactors are the ladder's multipliers over ScaleSweepBase.
var ScaleSweepFactors = []int{1, 4, 16, 64}

// ScaleSweep measures how simulation throughput and device-state
// memory grow with trace scale for a ZnG/HybridGPU pair. It reports
// only deterministic quantities — simulated instruction throughput
// and exact translation-state byte accounting — so the figure can
// render into docs; host wall-clock throughput and peak heap live in
// the root BenchmarkScaleSweep, which times the same top rung.
//
// The sweep runs an absolute scale ladder (it ignores Options.Scale):
// relative rungs under the docs regime's default scale would collapse
// the ladder into a few hundred pages and show nothing about growth.
func ScaleSweep(o Options) (*stats.Table, error) {
	t := stats.NewTable("Scale sweep: throughput and translation state vs trace scale (bfs1-gaus)",
		"scale", "insts (M)", "ZnG Minst/s (sim)", "HybridGPU Minst/s (sim)",
		"ZnG state (KiB)", "HybridGPU state (KiB)", "ZnG state (B/page)")
	for _, f := range ScaleSweepFactors {
		oo := o
		oo.Scale = ScaleSweepBase * float64(f)
		zng, err := runOne(oo, platform.ZnG, "bfs1-gaus")
		if err != nil {
			return nil, err
		}
		hyb, err := runOne(oo, platform.HybridGPU, "bfs1-gaus")
		if err != nil {
			return nil, err
		}
		zngState := zng.Extra["translation_state_bytes"]
		t.AddRow(fmt.Sprintf("%dx", f),
			float64(zng.Insts)/1e6,
			zng.SimInstsPerSec()/1e6,
			hyb.SimInstsPerSec()/1e6,
			zngState/1024,
			hyb.Extra["translation_state_bytes"]/1024,
			zngState/zng.Extra["mapped_pages"])
	}
	return t, nil
}

// checkScaleSweep asserts the ladder's qualitative shape: work grows
// with scale while translation state grows sublinearly — the dense
// tables amortize, so bytes per mapped page fall as traces grow.
func checkScaleSweep(t *stats.Table) error {
	if t.Rows() != len(ScaleSweepFactors) {
		return fmt.Errorf("rows = %d, want the %d-rung scale ladder", t.Rows(), len(ScaleSweepFactors))
	}
	col := func(name string) ([]float64, error) {
		c, err := colByName(t, name)
		if err != nil {
			return nil, err
		}
		out := make([]float64, t.Rows())
		for r := range out {
			if out[r], err = cellFloat(t, r, c); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	insts, err := col("insts (M)")
	if err != nil {
		return err
	}
	for r := 1; r < len(insts); r++ {
		if insts[r] <= insts[r-1] {
			return fmt.Errorf("insts not increasing with scale: row %d has %v after %v",
				r, insts[r], insts[r-1])
		}
	}
	for _, name := range []string{"ZnG state (KiB)", "HybridGPU state (KiB)"} {
		state, err := col(name)
		if err != nil {
			return err
		}
		for r := 1; r < len(state); r++ {
			if state[r] < state[r-1] {
				return fmt.Errorf("%s shrank between rungs %d and %d (%v -> %v)",
					name, r-1, r, state[r-1], state[r])
			}
		}
		last := len(state) - 1
		if state[0] <= 0 || state[last]/state[0] >= insts[last]/insts[0] {
			return fmt.Errorf("%s grew %vx over a %vx work increase: translation state must grow sublinearly",
				name, state[last]/state[0], insts[last]/insts[0])
		}
	}
	perPage, err := col("ZnG state (B/page)")
	if err != nil {
		return err
	}
	if last := len(perPage) - 1; perPage[last] >= perPage[0] {
		return fmt.Errorf("state bytes per mapped page did not fall (1x %v, top rung %v): dense tables are not amortizing",
			perPage[0], perPage[last])
	}
	return nil
}
