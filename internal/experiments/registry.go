package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"zng/internal/stats"
	"zng/internal/workload"
)

// Figure is one registered table, figure or ablation of the
// reproduction: the driver that regenerates it, where it sits in the
// ZnG paper, the paper's claim in one sentence, and the qualitative
// shape this codebase asserts about its own measurement. The registry
// is the single source of truth for zngfig's figure ids and for the
// generated docs/EXPERIMENTS.md and docs/DESIGN.md.
type Figure struct {
	// ID is the zngfig figure id, e.g. "fig10" or "abl-gc".
	ID string
	// Ref locates the figure in the paper, e.g. "Sec. V-B, Fig. 10".
	// Ablations beyond the paper's evaluation say so explicitly.
	Ref string
	// Title is a short human-readable name.
	Title string
	// Driver is the experiments-package function that produces the
	// table; the registry-completeness test keeps this in sync with
	// the actual exported drivers.
	Driver string
	// Claim states the paper's finding in one sentence.
	Claim string
	// Shape states the qualitative property Check (and the package's
	// tests) assert about the measured table.
	Shape string
	// ScaleFree marks figures derived from the Table I configuration
	// alone: they ignore Options.Scale and Options.Pairs entirely.
	ScaleFree bool
	// Run regenerates the figure's table under the given options.
	Run func(Options) (*stats.Table, error)
	// Check validates Shape against the measured table; nil error
	// means the paper's qualitative shape holds in this reproduction.
	Check func(*stats.Table) error
}

// DocsOptions returns the canonical options for generated-docs runs
// (docs/EXPERIMENTS.md): the TestOptions regime — shrunken traces with
// the L2s scaled down alongside them so cache pressure stays realistic
// — but across all twelve co-run pairs, so the documented tables cover
// the full Fig. 10 matrix while staying cheap enough for CI's
// docs-freshness job.
func DocsOptions() Options {
	o := TestOptions()
	o.Mixes = workload.PaperPairs()
	return o
}

// Registry lists every figure in the order the paper presents them,
// ablations last. zngfig's id list, the generated docs and the
// registry-completeness test all derive from this slice.
func Registry() []Figure {
	return []Figure{
		{
			ID: "table1", Ref: "Sec. V-A, Table I", Title: "System configuration",
			Driver: "TableI", ScaleFree: true,
			Claim: "The evaluated GTX580-class GPU pairs 16 SMs with a 24 MB STT-MRAM L2 and an 800 GB-class Z-NAND backbone (3 us reads, 100 us programs, 100k P/E).",
			Shape: "The transcription carries the Z-NAND geometry/timing, the mesh flash network and the Optane DC PMM timing of Table I.",
			Run:   func(o Options) (*stats.Table, error) { return TableI(o.Cfg), nil },
			Check: checkTableI,
		},
		{
			ID: "table2", Ref: "Sec. V-A, Table II", Title: "GPU benchmarks",
			Driver: "TableII",
			Claim:  "The sixteen benchmarks span graph analytics and scientific kernels whose read ratios range from write-heavy (~46%) to almost pure-read (~99%).",
			Shape:  "All sixteen apps generate traces and the measured read ratio of every trace tracks the paper's per-app column within 0.15.",
			Run:    func(o Options) (*stats.Table, error) { return TableII(capScale(o.Scale)), nil },
			Check:  checkTableII,
		},
		{
			ID: "fig1b", Ref: "Sec. I, Fig. 1b", Title: "HybridGPU component bandwidths",
			Driver: "Fig1b", ScaleFree: true,
			Claim: "Z-NAND arrays can stream far more bandwidth than the DRAM buffer, legacy channels or SSD engine that HybridGPU puts in front of them, leaving an order-of-magnitude gap to GDDR5.",
			Shape: "flash read > flash channel > DRAM buffer > SSD engine, reads out-pace programs, and the GDDR5 gap line exceeds 10x the DRAM buffer.",
			Run:   func(o Options) (*stats.Table, error) { return Fig1b(o.Cfg), nil },
			Check: checkFig1b,
		},
		{
			ID: "fig3", Ref: "Sec. II-B, Fig. 3", Title: "Density and power per package",
			Driver: "Fig3", ScaleFree: true,
			Claim: "Z-NAND offers the highest per-package density at the lowest power per GB among GDDR5, DDR4 and LPDDR4.",
			Shape: "The Z-NAND row has the maximum density and the minimum W/GB of the four media.",
			Run:   func(o Options) (*stats.Table, error) { return Fig3(o.Cfg), nil },
			Check: checkFig3,
		},
		{
			ID: "fig4c", Ref: "Sec. II-C, Fig. 4c", Title: "Max data access throughput",
			Driver: "Fig4c", ScaleFree: true,
			Claim: "On 128 B accesses GPU DRAM outperforms the host-mediated GPU-SSD path by ~80x and HybridGPU by ~40x.",
			Shape: "GDDR5 > DDR4 > LPDDR4 > ZSSD, HybridGPU beats GPU-SSD, and the GDDR5/GPU-SSD ratio is at least 30x.",
			Run:   func(o Options) (*stats.Table, error) { return Fig4c(o.Cfg), nil },
			Check: checkFig4c,
		},
		{
			ID: "fig4d", Ref: "Sec. II-C, Fig. 4d", Title: "Memory-access latency breakdown",
			Driver: "Fig4d", ScaleFree: true,
			Claim: "The SSD engine's firmware alone accounts for about two thirds of HybridGPU's loaded memory latency.",
			Shape: "HybridGPU's total exceeds the conventional GPU's, with the SSD engine the dominant component (>30% of the total).",
			Run: func(o Options) (*stats.Table, error) {
				t, _, _ := Fig4d(o.Cfg)
				return t, nil
			},
			Check: checkFig4d,
		},
		{
			ID: "fig5a", Ref: "Sec. III-A, Fig. 5a", Title: "Direct Z-NAND degradation",
			Driver: "Fig5a",
			Claim:  "Serving GPU memory requests directly from Z-NAND (no buffering) degrades performance by up to ~28x versus GDDR5.",
			Shape:  "Degradation is at least 5x on every co-run pair.",
			Run: func(o Options) (*stats.Table, error) {
				t, _, err := Fig5a(o)
				return t, err
			},
			Check: checkFig5a,
		},
		{
			ID: "fig5bcd", Ref: "Sec. III-A, Fig. 5b-d", Title: "Workload locality characterization",
			Driver: "Fig5bcd",
			Claim:  "GPU co-run workloads re-read flash pages ~42x and rewrite them ~65x on average, and reads dominate the access mix.",
			Shape:  "Average read re-access and write redundancy both exceed 1, so register caching and prefetching have locality to harvest.",
			Run:    Fig5bcd,
			Check:  checkFig5bcd,
		},
		{
			ID: "fig8b", Ref: "Sec. IV-C, Fig. 8b", Title: "Asymmetric Z-NAND writes",
			Driver: "Fig8b",
			Claim:  "Writes concentrate on a small subset of planes, leaving most per-plane register caches idle — the motivation for grouping them.",
			Shape:  "Per-plane program counts are visibly non-uniform (some plane group differs from its channel's peak).",
			Run: func(o Options) (*stats.Table, error) {
				t, _, err := Fig8b(o)
				return t, err
			},
			Check: checkFig8b,
		},
		{
			ID: "fig10", Ref: "Sec. V-B, Fig. 10", Title: "Normalized IPC, all platforms",
			Driver: "Fig10",
			Claim:  "ZnG outperforms HybridGPU by 1.9x on average (up to 12.6x) and its read and write optimizations are both needed to get there.",
			Shape:  "On the workload average ZnG > HybridGPU > ZnG-base, with every platform normalized to ZnG = 1.",
			Run: func(o Options) (*stats.Table, error) {
				t, _, err := Fig10(o)
				return t, err
			},
			Check: checkFig10,
		},
		{
			ID: "fig11", Ref: "Sec. V-B, Fig. 11", Title: "Flash array bandwidth",
			Driver: "Fig11",
			Claim:  "ZnG's optimizations raise delivered flash-array bandwidth well above HybridGPU's channel- and engine-throttled path.",
			Shape:  "Average ZnG array bandwidth exceeds average HybridGPU array bandwidth.",
			Run: func(o Options) (*stats.Table, error) {
				t, _, err := Fig11(o)
				return t, err
			},
			Check: checkFig11,
		},
		{
			ID: "fig12", Ref: "Sec. V-C, Fig. 12", Title: "Read-path effectiveness",
			Driver: "Fig12",
			Claim:  "The dynamic prefetcher fills the STT-MRAM L2 from already-sensed flash pages, raising L2 hits and cutting demand fills.",
			Shape:  "ZnG-rdopt prefetches a non-zero volume and its mean L2 hit rate is at least ZnG-base's.",
			Run:    Fig12,
			Check:  checkFig12,
		},
		{
			ID: "fig13", Ref: "Sec. V-D, Fig. 13", Title: "Prefetch threshold sensitivity",
			Driver: "Fig13Sweep",
			Claim:  "Performance is stable across a wide waste-threshold region; the paper lands on high=0.3, low=0.05.",
			Shape:  "Every (high, low) cell simulates to a positive IPC — no threshold choice collapses the read path.",
			Run: func(o Options) (*stats.Table, error) {
				t, _, err := Fig13Sweep(o)
				return t, err
			},
			Check: checkFig13,
		},
		{
			ID: "abl-writenet", Ref: "ablation (Sec. IV-C)", Title: "Register interconnect ablation",
			Driver: "AblationWriteNet",
			Claim:  "The network-in-flash (NiF) approaches fully-connected (FCnet) write absorption at mesh cost, where a plain switched bus (SWnet) serializes.",
			Shape:  "All three interconnects sustain positive IPC on the write-heavy pairs and NiF's register migrations are counted.",
			Run: func(o Options) (*stats.Table, error) {
				t, _, err := AblationWriteNet(o)
				return t, err
			},
			Check: checkAblWriteNet,
		},
		{
			ID: "abl-consolidation", Ref: "ablation (beyond Sec. V-A's 2-app co-runs)", Title: "Consolidation sweep",
			Driver: "AblationConsolidation",
			Claim:  "The paper evaluates 2-app co-runs only; stacking more tenants should favor ZnG, whose flash arrays serve requests directly, over HybridGPU, whose SSD engine serializes every miss.",
			Shape:  "Both platforms sustain positive IPC at every co-run degree 1-4, and ZnG retains at least as much of its solo IPC as HybridGPU does at the highest degree.",
			Run: func(o Options) (*stats.Table, error) {
				t, _, err := AblationConsolidation(o)
				return t, err
			},
			Check: checkAblConsolidation,
		},
		{
			ID: "abl-gc", Ref: "ablation (Sec. III-B/IV-A)", Title: "Split-FTL garbage collection",
			Driver: "AblationGC", ScaleFree: true,
			Claim: "The split FTL's helper-thread merges reclaim log blocks without stalling the write path, and wear levelling bounds per-block erase counts.",
			Shape: "Merges occur under rewrite pressure, max erase count stays within the merge count, and write amplification is at least 1.",
			Run: func(o Options) (*stats.Table, error) {
				t, _ := AblationGC()
				return t, nil
			},
			Check: checkAblGC,
		},
		{
			ID: "abl-l2", Ref: "ablation (Sec. IV-B)", Title: "L2 capacity sweep",
			Driver: "AblationL2",
			Claim:  "Replacing the 6 MB SRAM L2 with the 24 MB STT-MRAM array is what gives the prefetcher room to work; capacity beyond that shows diminishing returns.",
			Shape:  "Swept capacities ascend and every configuration sustains a positive IPC and L2 hit rate.",
			Run: func(o Options) (*stats.Table, error) {
				t, _, err := AblationL2(o)
				return t, err
			},
			Check: checkAblL2,
		},
		{
			ID: "scale-sweep", Ref: "perf (dense translation state)", Title: "Trace-scale sweep",
			Driver: "ScaleSweep", ScaleFree: true,
			Claim: "Simulator translation state (dense page tables, set-associative TLBs, dense row decoders) grows sublinearly with trace scale from 1x to 64x, so billion-edge traces are bounded by trace size, not device state.",
			Shape: "Simulated instructions rise monotonically up the ladder while both platforms' translation-state bytes grow sublinearly versus work, and ZnG's bytes per mapped page fall.",
			Run:   ScaleSweep,
			Check: checkScaleSweep,
		},
	}
}

// FigureIDs lists the registered ids in registry order.
func FigureIDs() []string {
	reg := Registry()
	out := make([]string, len(reg))
	for i, f := range reg {
		out[i] = f.ID
	}
	return out
}

// FigureByID resolves a zngfig figure id. Unknown ids fail fast with
// the full valid-id list so a typo never surfaces late or silently.
func FigureByID(id string) (Figure, error) {
	for _, f := range Registry() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("unknown figure id %q (valid: %s, all, docs)",
		id, strings.Join(FigureIDs(), ", "))
}

// capScale caps Table II's characterization scale at 1.0: the table
// calibrates read ratios, which converge well below full scale, so
// figure-quality runs need not pay for oversized traces.
func capScale(s float64) float64 {
	if s > 1 {
		return 1
	}
	return s
}

// --- shape checks -----------------------------------------------------
//
// Each check validates, on the rendered table, the same qualitative
// shape the package's tests assert — so docs/EXPERIMENTS.md can report
// PASS/FAIL per figure without re-stating test logic elsewhere.

// cellStr returns the formatted cell at (r, c), or "" when row r omitted
// its trailing cells — checks must degrade to a FAIL verdict on a
// short row, never panic mid docs generation.
func cellStr(t *stats.Table, r, c int) string {
	row := t.Row(r)
	if c >= len(row) {
		return ""
	}
	return row[c]
}

// cellFloat parses the formatted cell at (r, c).
func cellFloat(t *stats.Table, r, c int) (float64, error) {
	s := cellStr(t, r, c)
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("cell (%d,%d) %q is not numeric", r, c, s)
	}
	return v, nil
}

// colByName returns the index of the named header column.
func colByName(t *stats.Table, name string) (int, error) {
	for i, h := range t.Header() {
		if h == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("no column %q", name)
}

// rowByName returns the index of the data row whose first cell is name.
func rowByName(t *stats.Table, name string) (int, error) {
	for r := 0; r < t.Rows(); r++ {
		if cellStr(t, r, 0) == name {
			return r, nil
		}
	}
	return 0, fmt.Errorf("no row %q", name)
}

// col1ByRowName builds a name -> column-1 value map for two-column
// tables like Fig. 1b and Fig. 4c.
func col1ByRowName(t *stats.Table) (map[string]float64, error) {
	vals := make(map[string]float64, t.Rows())
	for r := 0; r < t.Rows(); r++ {
		v, err := cellFloat(t, r, 1)
		if err != nil {
			return nil, err
		}
		vals[cellStr(t, r, 0)] = v
	}
	return vals, nil
}

// rowVal looks up a named row's value, erroring on a missing name so
// a renamed driver row can never make a comparison vacuously pass.
func rowVal(vals map[string]float64, name string) (float64, error) {
	v, ok := vals[name]
	if !ok {
		return 0, fmt.Errorf("no row %q", name)
	}
	return v, nil
}

func requireOrder(vals map[string]float64, order ...string) error {
	for i := 1; i < len(order); i++ {
		hi, err := rowVal(vals, order[i-1])
		if err != nil {
			return err
		}
		lo, err := rowVal(vals, order[i])
		if err != nil {
			return err
		}
		if !(hi > lo) {
			return fmt.Errorf("%s (%v) must exceed %s (%v)", order[i-1], hi, order[i], lo)
		}
	}
	return nil
}

func checkTableI(t *stats.Table) error {
	if t.Rows() < 15 {
		return fmt.Errorf("only %d configuration rows", t.Rows())
	}
	for _, want := range []string{"Z-NAND", "mesh", "Optane DC PMM"} {
		found := false
		for r := 0; r < t.Rows(); r++ {
			if strings.Contains(cellStr(t, r, 0), want) || strings.Contains(cellStr(t, r, 2), want) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("missing %q", want)
		}
	}
	return nil
}

func checkTableII(t *stats.Table) error {
	if t.Rows() != 16 {
		return fmt.Errorf("rows = %d, want the 16 Table II apps", t.Rows())
	}
	paperCol, err := colByName(t, "read ratio (paper)")
	if err != nil {
		return err
	}
	measCol, err := colByName(t, "read ratio (measured)")
	if err != nil {
		return err
	}
	for r := 0; r < t.Rows(); r++ {
		paper, err := cellFloat(t, r, paperCol)
		if err != nil {
			return err
		}
		meas, err := cellFloat(t, r, measCol)
		if err != nil {
			return err
		}
		if d := meas - paper; d > 0.15 || d < -0.15 {
			return fmt.Errorf("%s: measured read ratio %.3f vs paper %.3f (|delta| > 0.15)",
				cellStr(t, r, 0), meas, paper)
		}
	}
	return nil
}

func checkFig1b(t *stats.Table) error {
	vals, err := col1ByRowName(t)
	if err != nil {
		return err
	}
	if err := requireOrder(vals, "flash read", "flash channel", "DRAM buffer", "SSD engine"); err != nil {
		return err
	}
	if err := requireOrder(vals, "flash read", "flash write"); err != nil {
		return fmt.Errorf("array reads must out-pace programs: %w", err)
	}
	gap, err := rowVal(vals, "GDDR5 (gap line)")
	if err != nil {
		return err
	}
	if !(gap > 10*vals["DRAM buffer"]) {
		return fmt.Errorf("GDDR5 gap (%v) must exceed 10x the DRAM buffer (%v)",
			gap, vals["DRAM buffer"])
	}
	return nil
}

func checkFig3(t *stats.Table) error {
	zn, err := rowByName(t, "Z-NAND")
	if err != nil {
		return err
	}
	znDens, err := cellFloat(t, zn, 1)
	if err != nil {
		return err
	}
	znPow, err := cellFloat(t, zn, 2)
	if err != nil {
		return err
	}
	for r := 0; r < t.Rows(); r++ {
		if r == zn {
			continue
		}
		dens, err := cellFloat(t, r, 1)
		if err != nil {
			return err
		}
		pow, err := cellFloat(t, r, 2)
		if err != nil {
			return err
		}
		if dens >= znDens {
			return fmt.Errorf("%s density %v >= Z-NAND %v", cellStr(t, r, 0), dens, znDens)
		}
		if pow <= znPow {
			return fmt.Errorf("%s power %v <= Z-NAND %v", cellStr(t, r, 0), pow, znPow)
		}
	}
	return nil
}

func checkFig4c(t *stats.Table) error {
	vals, err := col1ByRowName(t)
	if err != nil {
		return err
	}
	if err := requireOrder(vals, "GDDR5", "DDR4", "LPDDR4", "ZSSD"); err != nil {
		return err
	}
	if err := requireOrder(vals, "HybridGPU", "GPU-SSD"); err != nil {
		return fmt.Errorf("HybridGPU must beat host-mediated GPU-SSD: %w", err)
	}
	if r := vals["GDDR5"] / vals["GPU-SSD"]; r < 30 {
		return fmt.Errorf("GDDR5/GPU-SSD ratio %.0fx, want >= 30x (paper ~80x)", r)
	}
	return nil
}

func checkFig4d(t *stats.Table) error {
	total, err := rowByName(t, "TOTAL")
	if err != nil {
		return err
	}
	gpuTot, err := cellFloat(t, total, 1)
	if err != nil {
		return err
	}
	hybTot, err := cellFloat(t, total, 2)
	if err != nil {
		return err
	}
	if hybTot <= gpuTot {
		return fmt.Errorf("HybridGPU total %v must exceed GPU total %v", hybTot, gpuTot)
	}
	eng, err := rowByName(t, "SSD engine")
	if err != nil {
		return err
	}
	engLat, err := cellFloat(t, eng, 2)
	if err != nil {
		return err
	}
	if frac := engLat / hybTot; frac < 0.3 {
		return fmt.Errorf("SSD engine fraction %.2f, want dominant (paper 0.67)", frac)
	}
	return nil
}

func checkFig5a(t *stats.Table) error {
	col, err := colByName(t, "degradation (x)")
	if err != nil {
		return err
	}
	for r := 0; r < t.Rows(); r++ {
		d, err := cellFloat(t, r, col)
		if err != nil {
			return err
		}
		if d < 5 {
			return fmt.Errorf("%s: degradation %.1fx, want >= 5x (paper up to 28x)", cellStr(t, r, 0), d)
		}
	}
	return nil
}

func checkFig5bcd(t *stats.Table) error {
	avg, err := rowByName(t, "AVERAGE")
	if err != nil {
		return err
	}
	reuse, err := cellFloat(t, avg, 1)
	if err != nil {
		return err
	}
	redund, err := cellFloat(t, avg, 2)
	if err != nil {
		return err
	}
	if reuse <= 1 {
		return fmt.Errorf("average read re-access %.2f, want > 1", reuse)
	}
	if redund <= 1 {
		return fmt.Errorf("average write redundancy %.2f, want > 1", redund)
	}
	return nil
}

func checkFig8b(t *stats.Table) error {
	minCol, err := colByName(t, "min")
	if err != nil {
		return err
	}
	maxCol, err := colByName(t, "max")
	if err != nil {
		return err
	}
	totCol, err := colByName(t, "total")
	if err != nil {
		return err
	}
	anyWrites, asymmetric := false, false
	var firstTotal float64
	for r := 0; r < t.Rows(); r++ {
		lo, err := cellFloat(t, r, minCol)
		if err != nil {
			return err
		}
		hi, err := cellFloat(t, r, maxCol)
		if err != nil {
			return err
		}
		tot, err := cellFloat(t, r, totCol)
		if err != nil {
			return err
		}
		if r == 0 {
			firstTotal = tot
		}
		if hi > 0 {
			anyWrites = true
		}
		// Skew within a channel or across channels both count.
		if lo != hi || tot != firstTotal {
			asymmetric = true
		}
	}
	if !anyWrites {
		return fmt.Errorf("no programs recorded")
	}
	if !asymmetric {
		return fmt.Errorf("write distribution perfectly uniform; Fig. 8b asymmetry absent")
	}
	return nil
}

func checkFig10(t *stats.Table) error {
	avg, err := rowByName(t, "AVERAGE")
	if err != nil {
		return err
	}
	get := func(name string) (float64, error) {
		c, err := colByName(t, name)
		if err != nil {
			return 0, err
		}
		return cellFloat(t, avg, c)
	}
	zng, err := get("ZnG")
	if err != nil {
		return err
	}
	hyb, err := get("HybridGPU")
	if err != nil {
		return err
	}
	base, err := get("ZnG-base")
	if err != nil {
		return err
	}
	if zng != 1 {
		return fmt.Errorf("normalization broken: ZnG average %v != 1", zng)
	}
	if !(hyb < zng) {
		return fmt.Errorf("ZnG must beat HybridGPU (%v) on average", hyb)
	}
	if !(base < 1) {
		return fmt.Errorf("ZnG-base (%v) must trail ZnG on average", base)
	}
	return nil
}

func checkFig11(t *stats.Table) error {
	avg, err := rowByName(t, "AVERAGE")
	if err != nil {
		return err
	}
	hybCol, err := colByName(t, "HybridGPU")
	if err != nil {
		return err
	}
	zngCol, err := colByName(t, "ZnG")
	if err != nil {
		return err
	}
	hyb, err := cellFloat(t, avg, hybCol)
	if err != nil {
		return err
	}
	zng, err := cellFloat(t, avg, zngCol)
	if err != nil {
		return err
	}
	if zng <= hyb {
		return fmt.Errorf("ZnG average bandwidth %.2f must exceed HybridGPU's %.2f", zng, hyb)
	}
	return nil
}

func checkFig12(t *stats.Table) error {
	pfCol, err := colByName(t, "prefetch KB (rdopt)")
	if err != nil {
		return err
	}
	baseCol, err := colByName(t, "L2 hit (base)")
	if err != nil {
		return err
	}
	rdCol, err := colByName(t, "L2 hit (rdopt)")
	if err != nil {
		return err
	}
	var pfTotal, baseSum, rdSum float64
	for r := 0; r < t.Rows(); r++ {
		pf, err := cellFloat(t, r, pfCol)
		if err != nil {
			return err
		}
		pfTotal += pf
		b, err := cellFloat(t, r, baseCol)
		if err != nil {
			return err
		}
		baseSum += b
		rd, err := cellFloat(t, r, rdCol)
		if err != nil {
			return err
		}
		rdSum += rd
	}
	if pfTotal <= 0 {
		return fmt.Errorf("rdopt prefetched nothing")
	}
	if rdSum < baseSum {
		return fmt.Errorf("mean rdopt L2 hit rate %.3f below base %.3f",
			rdSum/float64(t.Rows()), baseSum/float64(t.Rows()))
	}
	return nil
}

func checkFig13(t *stats.Table) error {
	for r := 0; r < t.Rows(); r++ {
		for c := 1; c < t.Cols(); c++ {
			v, err := cellFloat(t, r, c)
			if err != nil {
				return err
			}
			if v <= 0 {
				return fmt.Errorf("threshold cell (high=%s, low#%d) collapsed to IPC %v",
					cellStr(t, r, 0), c, v)
			}
		}
	}
	return nil
}

func checkAblWriteNet(t *stats.Table) error {
	if t.Rows() < 2 {
		return fmt.Errorf("rows = %d, want the two write-heavy pairs", t.Rows())
	}
	for r := 0; r < t.Rows(); r++ {
		for _, net := range []string{"SWnet", "FCnet", "NiF"} {
			c, err := colByName(t, net)
			if err != nil {
				return err
			}
			v, err := cellFloat(t, r, c)
			if err != nil {
				return err
			}
			if v <= 0 {
				return fmt.Errorf("%s: %s IPC %v, want positive", cellStr(t, r, 0), net, v)
			}
		}
	}
	return nil
}

func checkAblConsolidation(t *stats.Table) error {
	if t.Rows() != workload.ConsolidationDegrees {
		return fmt.Errorf("rows = %d, want co-run degrees 1-%d", t.Rows(), workload.ConsolidationDegrees)
	}
	hybCol, err := colByName(t, "HybridGPU")
	if err != nil {
		return err
	}
	zngCol, err := colByName(t, "ZnG")
	if err != nil {
		return err
	}
	hybNormCol, err := colByName(t, "HybridGPU (vs solo)")
	if err != nil {
		return err
	}
	zngNormCol, err := colByName(t, "ZnG (vs solo)")
	if err != nil {
		return err
	}
	for r := 0; r < t.Rows(); r++ {
		for _, c := range []int{hybCol, zngCol} {
			v, err := cellFloat(t, r, c)
			if err != nil {
				return err
			}
			if v <= 0 {
				return fmt.Errorf("%s: IPC %v, want positive", cellStr(t, r, 0), v)
			}
		}
	}
	last := t.Rows() - 1
	hybNorm, err := cellFloat(t, last, hybNormCol)
	if err != nil {
		return err
	}
	zngNorm, err := cellFloat(t, last, zngNormCol)
	if err != nil {
		return err
	}
	if zngNorm < hybNorm {
		return fmt.Errorf("at degree %d ZnG retains %.3f of solo IPC vs HybridGPU's %.3f: ZnG must degrade at least as gracefully",
			t.Rows(), zngNorm, hybNorm)
	}
	return nil
}

func checkAblGC(t *stats.Table) error {
	get := func(name string) (float64, error) {
		r, err := rowByName(t, name)
		if err != nil {
			return 0, err
		}
		return cellFloat(t, r, 1)
	}
	merges, err := get("log merges")
	if err != nil {
		return err
	}
	if merges == 0 {
		return fmt.Errorf("no merges under rewrite pressure")
	}
	maxErase, err := get("max block erase count")
	if err != nil {
		return err
	}
	if maxErase > merges {
		return fmt.Errorf("max erase %v exceeds merges %v: wear levelling broken", maxErase, merges)
	}
	wa, err := get("write amplification")
	if err != nil {
		return err
	}
	if wa < 1 {
		return fmt.Errorf("write amplification %v < 1", wa)
	}
	return nil
}

func checkAblL2(t *stats.Table) error {
	sizeCol, err := colByName(t, "size (MB)")
	if err != nil {
		return err
	}
	ipcCol, err := colByName(t, "IPC")
	if err != nil {
		return err
	}
	hitCol, err := colByName(t, "L2 hit rate")
	if err != nil {
		return err
	}
	var sizes []float64
	for r := 0; r < t.Rows(); r++ {
		size, err := cellFloat(t, r, sizeCol)
		if err != nil {
			return err
		}
		sizes = append(sizes, size)
		ipc, err := cellFloat(t, r, ipcCol)
		if err != nil {
			return err
		}
		if ipc <= 0 {
			return fmt.Errorf("%s: IPC %v, want positive", cellStr(t, r, 0), ipc)
		}
		hit, err := cellFloat(t, r, hitCol)
		if err != nil {
			return err
		}
		if hit <= 0 {
			return fmt.Errorf("%s: L2 hit rate %v, want positive", cellStr(t, r, 0), hit)
		}
	}
	if !sort.Float64sAreSorted(sizes) {
		return fmt.Errorf("swept sizes %v not ascending", sizes)
	}
	return nil
}
