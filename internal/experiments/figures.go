package experiments

import (
	"fmt"

	"zng/internal/platform"
	"zng/internal/stats"
	"zng/internal/workload"
)

// Fig5a measures the performance degradation of serving GPU memory
// requests directly from Z-NAND (ZnG-base, no buffering optimization)
// relative to conventional GDDR5, per co-run workload (Fig. 5a).
func Fig5a(o Options) (*stats.Table, map[string]float64, error) {
	res, err := runMatrix(o, []platform.Kind{platform.GDDR5, platform.ZnGBase})
	if err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Fig. 5a: performance degradation of direct Z-NAND vs GDDR5",
		"workload", "GDDR5 IPC", "direct Z-NAND IPC", "degradation (x)")
	deg := map[string]float64{}
	for _, m := range o.Mixes {
		g := res[platform.GDDR5][m.Name]
		z := res[platform.ZnGBase][m.Name]
		d := 0.0
		if z.IPC > 0 {
			d = g.IPC / z.IPC
		}
		deg[m.Name] = d
		t.AddRow(m.Name, g.IPC, z.IPC, d)
	}
	return t, deg, nil
}

// Fig5bcd characterizes the traces: read re-accesses per page
// (Fig. 5b), write redundancy per page (Fig. 5c), and the read/write
// access mix (Fig. 5d).
func Fig5bcd(o Options) (*stats.Table, error) {
	t := stats.NewTable("Fig. 5b-d: workload locality characterization",
		"workload", "read re-accesses", "write redundancy", "read %", "write %")
	var reuse, redund float64
	for _, m := range o.Mixes {
		apps, err := m.Apps(o.Scale)
		if err != nil {
			return nil, err
		}
		st := workload.Characterize(apps...)
		t.AddRow(m.Name, st.ReadReuse(), st.WriteRedundancy(),
			100*st.ReadRatio(), 100*(1-st.ReadRatio()))
		reuse += st.ReadReuse()
		redund += st.WriteRedundancy()
	}
	n := float64(len(o.Mixes))
	t.AddRow("AVERAGE", reuse/n, redund/n, "", "")
	return t, nil
}

// Fig8b produces the asymmetric per-plane write heatmap of Fig. 8b:
// per-plane program counts for betw-back on the unoptimized register
// path, folded to a 16x16 (channel x plane-group) grid like the
// paper's plot.
func Fig8b(o Options) (*stats.Table, [][]uint64, error) {
	r, err := runOne(o, platform.ZnGBase, "betw-back")
	if err != nil {
		return nil, nil, err
	}
	const grid = 16
	channels := o.Cfg.Flash.Channels
	perCh := len(r.PlaneWrites) / channels
	group := (perCh + grid - 1) / grid
	if group < 1 {
		group = 1
	}
	heat := make([][]uint64, channels)
	for ch := 0; ch < channels; ch++ {
		heat[ch] = make([]uint64, (perCh+group-1)/group)
		for i := 0; i < perCh; i++ {
			heat[ch][i/group] += r.PlaneWrites[ch*perCh+i]
		}
	}
	t := stats.NewTable("Fig. 8b: asymmetric Z-NAND writes (betw-back), programs per plane group",
		"channel", "min", "max", "total")
	for ch := range heat {
		var min, max, tot uint64
		min = ^uint64(0)
		for _, v := range heat[ch] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			tot += v
		}
		t.AddRow(fmt.Sprintf("ch%02d", ch), min, max, tot)
	}
	return t, heat, nil
}

// Fig10 runs the headline experiment: normalized IPC of all seven
// platforms across the twelve co-run workloads (Fig. 10), normalized
// to ZnG like the paper.
func Fig10(o Options) (*stats.Table, map[platform.Kind]map[string]platform.Result, error) {
	res, err := runMatrix(o, platform.Kinds())
	if err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Fig. 10: normalized IPC (ZnG = 1.0)",
		"workload", "Hetero", "HybridGPU", "Optane", "ZnG-base", "ZnG-rdopt", "ZnG-wropt", "ZnG")
	sums := map[platform.Kind]float64{}
	for _, m := range o.Mixes {
		ref := res[platform.ZnG][m.Name].IPC
		row := []any{m.Name}
		for _, k := range platform.Kinds() {
			v := 0.0
			if ref > 0 {
				v = res[k][m.Name].IPC / ref
			}
			sums[k] += v
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	avg := []any{"AVERAGE"}
	for _, k := range platform.Kinds() {
		avg = append(avg, sums[k]/float64(len(o.Mixes)))
	}
	t.AddRow(avg...)
	return t, res, nil
}

// Fig11 reports the Z-NAND flash-array bandwidth each flash-backed
// platform achieves (Fig. 11).
func Fig11(o Options) (*stats.Table, map[platform.Kind]map[string]platform.Result, error) {
	kinds := []platform.Kind{platform.HybridGPU, platform.ZnGBase, platform.ZnGRdopt, platform.ZnGWropt, platform.ZnG}
	res, err := runMatrix(o, kinds)
	if err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Fig. 11: flash array bandwidth (GB/s)",
		"workload", "HybridGPU", "ZnG-base", "ZnG-rdopt", "ZnG-wropt", "ZnG")
	sums := map[platform.Kind]float64{}
	for _, m := range o.Mixes {
		row := []any{m.Name}
		for _, k := range kinds {
			bw := res[k][m.Name].FlashArrayGBps()
			sums[k] += bw
			row = append(row, bw)
		}
		t.AddRow(row...)
	}
	avg := []any{"AVERAGE"}
	for _, k := range kinds {
		avg = append(avg, sums[k]/float64(len(o.Mixes)))
	}
	t.AddRow(avg...)
	return t, res, nil
}

// Fig12 examines the ZnG read path: L2 hit rate, prefetch volume and
// register page hits for ZnG-base versus ZnG-rdopt (the read-
// optimization analysis of Section V-C).
func Fig12(o Options) (*stats.Table, error) {
	res, err := runMatrix(o, []platform.Kind{platform.ZnGBase, platform.ZnGRdopt})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 12: read-path effectiveness (base vs rdopt)",
		"workload", "L2 hit (base)", "L2 hit (rdopt)", "prefetch KB (rdopt)", "array fills (base)", "array fills (rdopt)")
	for _, m := range o.Mixes {
		b := res[platform.ZnGBase][m.Name]
		r := res[platform.ZnGRdopt][m.Name]
		t.AddRow(m.Name, b.L2HitRate, r.L2HitRate,
			r.Extra["prefetch_bytes"]/1024, b.Extra["demand_fills"], r.Extra["demand_fills"])
	}
	return t, nil
}
