package experiments

import (
	"sync"

	"zng/internal/config"
	"zng/internal/platform"
	"zng/internal/workload"
)

// The figure drivers overlap heavily: Fig. 10, Fig. 11 and Fig. 12 all
// re-simulate ZnG-base on the same workloads, the sweeps re-run
// unchanged baseline cells, and `zngfig -fig all` multiplies that
// again. A simulation is a pure function of (kind, mix, scale, cfg) —
// the engine is single-threaded and the traces are seed-deterministic
// — so results are memoized per Runner: one Options value (and every
// copy derived from it) shares a Runner, and a full figure suite run
// under it performs each unique simulation exactly once.
//
// Runner is the injection point: the drivers only ever ask "give me
// the result for this cell", so anything that answers that — the
// in-memory Memo below, or the persistent store-backed scheduler in
// internal/simsvc — can stand behind the whole experiments package,
// the CLIs and the zngd daemon alike.
type Runner interface {
	Run(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error)
}

// RunnerStats counts how a Runner satisfied its requests. Memo never
// touches disk, so its DiskHits stay zero; the simsvc service fills
// all four.
type RunnerStats struct {
	// Sims is the number of unique simulations actually performed.
	Sims uint64
	// MemoryHits counts requests served from an already-completed
	// in-memory result.
	MemoryHits uint64
	// DiskHits counts requests served from the persistent store.
	DiskHits uint64
	// Coalesced counts requests that attached to an identical
	// simulation already in flight instead of starting their own.
	Coalesced uint64
}

// StatsReporter is implemented by runners that keep RunnerStats;
// zngfig -v uses it to print the dedup ratio without caring which
// runner is injected.
type StatsReporter interface {
	Stats() RunnerStats
}

// The workload participates in the memo key through workload.Mix.ID(),
// its canonical content identity: a Mix carries a component slice and
// so cannot sit in a comparable map key itself, and keying on the ID
// (rather than the display name) lets scenarios that alias the same
// composition — consol-2 and bfs1-gaus, say — share one simulation.
//
// config.Config is a flat value type (no slices, maps or pointers), so
// the whole configuration participates in the key by value; any sweep
// that perturbs a threshold gets its own cell.
type runKey struct {
	kind  platform.Kind
	mix   string // workload.Mix.ID()
	scale float64
	cfg   config.Config
}

// runEntry is one memoized cell. done is closed once res/err are
// final, giving the memo single-flight semantics: concurrent requests
// for the same cell block on the first simulation instead of
// duplicating it.
type runEntry struct {
	done chan struct{}
	res  platform.Result
	err  error
}

// Memo is the in-memory single-flight Runner: process-lifetime
// results, no persistence. It is what DefaultOptions injects, so
// library users and tests get dedup within one Options lineage without
// any process-wide mutable state — two independently built Options
// values cannot observe each other's cells.
type Memo struct {
	mu        sync.Mutex
	m         map[runKey]*runEntry // guarded by mu
	sims      uint64               // guarded by mu
	memHits   uint64               // guarded by mu
	coalesced uint64               // guarded by mu
}

// NewMemo returns an empty in-memory runner.
func NewMemo() *Memo {
	return &Memo{m: map[runKey]*runEntry{}}
}

// Run returns the memoized platform.RunMix result for one cell,
// simulating it on first request. Errors are cached too: a failed cell
// (deadlock, event-cap overrun) is deterministic, so retrying it would
// only waste the same wall-clock again.
func (c *Memo) Run(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	key := runKey{kind: kind, mix: mix.ID(), scale: scale, cfg: cfg}
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		select {
		case <-e.done:
			c.memHits++
		default:
			c.coalesced++
		}
		c.mu.Unlock()
		<-e.done
		// Two scenario names may share one content ID; each caller gets
		// the result labeled with the name it asked under.
		res := e.res
		if e.err == nil {
			res.Workload = mix.Name
		}
		return res, e.err
	}
	e := &runEntry{done: make(chan struct{})}
	c.m[key] = e
	c.sims++
	c.mu.Unlock()

	e.res, e.err = platform.RunMix(kind, mix, scale, cfg)
	close(e.done)
	return e.res, e.err
}

// Stats reports how requests were satisfied — the dedup ratio zngfig
// prints after a figure suite.
func (c *Memo) Stats() RunnerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return RunnerStats{Sims: c.sims, MemoryHits: c.memHits, Coalesced: c.coalesced}
}

// Reset drops all memoized results (and the stats counters).
// Benchmarks that deliberately re-simulate use it; figure runs never
// need to.
func (c *Memo) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = map[runKey]*runEntry{}
	c.sims, c.memHits, c.coalesced = 0, 0, 0
}

// directRunner is the fallback when Options carries no Runner at all:
// every request simulates, nothing is shared. Zero value usable.
type directRunner struct{}

func (directRunner) Run(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	return platform.RunMix(kind, mix, scale, cfg)
}
