package experiments

import (
	"sync"

	"zng/internal/config"
	"zng/internal/platform"
	"zng/internal/workload"
)

// The figure drivers overlap heavily: Fig. 10, Fig. 11 and Fig. 12 all
// re-simulate ZnG-base on the same workloads, the sweeps re-run
// unchanged baseline cells, and `zngfig -fig all` multiplies that
// again. A simulation is a pure function of (kind, mix, scale, cfg) —
// the engine is single-threaded and the traces are seed-deterministic
// — so results are memoized process-wide: the full figure suite
// performs each unique simulation exactly once, and repeated cells
// cost a map lookup.
//
// The workload participates through workload.Mix.ID(), its canonical
// content identity: a Mix carries a component slice and so cannot sit
// in a comparable map key itself, and keying on the ID (rather than
// the display name) lets scenarios that alias the same composition —
// consol-2 and bfs1-gaus, say — share one simulation.
//
// config.Config is a flat value type (no slices, maps or pointers), so
// the whole configuration participates in the key by value; any sweep
// that perturbs a threshold gets its own cell.
type runKey struct {
	kind  platform.Kind
	mix   string // workload.Mix.ID()
	scale float64
	cfg   config.Config
}

// runEntry is one memoized cell. done is closed once res/err are
// final, giving the cache single-flight semantics: concurrent
// requests for the same cell block on the first simulation instead of
// duplicating it.
type runEntry struct {
	done chan struct{}
	res  platform.Result
	err  error
}

var runCache = struct {
	mu   sync.Mutex
	m    map[runKey]*runEntry
	sims uint64 // unique simulations performed
	hits uint64 // requests served from memory (or by waiting on a flight)
}{m: map[runKey]*runEntry{}}

// cachedRun returns the memoized platform.RunMix result for one cell,
// simulating it on first request. Errors are cached too: a failed cell
// (deadlock, event-cap overrun) is deterministic, so retrying it would
// only waste the same wall-clock again.
func cachedRun(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	key := runKey{kind: kind, mix: mix.ID(), scale: scale, cfg: cfg}
	runCache.mu.Lock()
	if e, ok := runCache.m[key]; ok {
		runCache.hits++
		runCache.mu.Unlock()
		<-e.done
		// Two scenario names may share one content ID; each caller gets
		// the result labeled with the name it asked under.
		res := e.res
		if e.err == nil {
			res.Workload = mix.Name
		}
		return res, e.err
	}
	e := &runEntry{done: make(chan struct{})}
	runCache.m[key] = e
	runCache.sims++
	runCache.mu.Unlock()

	e.res, e.err = platform.RunMix(kind, mix, scale, cfg)
	close(e.done)
	return e.res, e.err
}

// CacheStats reports unique simulations performed and requests served
// from the memo — the dedup ratio zngfig prints after a figure suite.
func CacheStats() (sims, hits uint64) {
	runCache.mu.Lock()
	defer runCache.mu.Unlock()
	return runCache.sims, runCache.hits
}

// ResetCache drops all memoized results (and the stats counters).
// Tests that deliberately re-simulate use it; figure runs never need
// to.
func ResetCache() {
	runCache.mu.Lock()
	defer runCache.mu.Unlock()
	runCache.m = map[runKey]*runEntry{}
	runCache.sims, runCache.hits = 0, 0
}
