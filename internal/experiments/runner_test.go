package experiments

import (
	"testing"

	"zng/internal/platform"
)

// TestMatrixMatchesSerialRuns confirms that the parallel harness does
// not perturb results: each cell of a matrix equals an independent
// serial simulation (simulations are single-goroutine; only the
// harness fans out).
func TestMatrixMatchesSerialRuns(t *testing.T) {
	o := TestOptions()
	o.Mixes = o.Mixes[:2]
	o.Workers = 4
	kinds := []platform.Kind{platform.Optane, platform.ZnG}
	res, err := runMatrix(o, kinds)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range kinds {
		for _, p := range o.Mixes {
			serial, err := runOne(o, k, p.Name)
			if err != nil {
				t.Fatal(err)
			}
			got := res[k][p.Name]
			if got.IPC != serial.IPC || got.Cycles != serial.Cycles || got.Insts != serial.Insts {
				t.Errorf("%v/%s: matrix %+v != serial %+v", k, p.Name, got.IPC, serial.IPC)
			}
		}
	}
}

func TestRunOneUnknownPair(t *testing.T) {
	o := TestOptions()
	if _, err := runOne(o, platform.ZnG, "nope"); err == nil {
		t.Error("want error for unknown pair")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Scale != DefaultScale || len(o.Mixes) != 12 {
		t.Errorf("defaults: %+v", o)
	}
	if o.workers() < 1 {
		t.Error("workers must be positive")
	}
}
