package experiments

import (
	"zng/internal/config"
	"zng/internal/dram"
	"zng/internal/flash"
	"zng/internal/ftl"
	"zng/internal/mem"
	"zng/internal/mmu"
	"zng/internal/sim"
	"zng/internal/ssd"
	"zng/internal/stats"
)

// Fig1b measures the accumulated bandwidth of each HybridGPU component
// in isolation (Fig. 1b): the single-package DRAM buffer, the legacy
// flash channels, the flash arrays (read and write), and the SSD
// engine — each saturated by a dedicated micro-driver. The GDDR5
// aggregate is the "performance gap" line at the top of the figure.
func Fig1b(cfg config.Config) *stats.Table {
	t := stats.NewTable("Fig. 1b: HybridGPU component bandwidths (GB/s)",
		"component", "GB/s")

	t.AddRow("GDDR5 (gap line)", saturateDRAM(cfg.GDDR5))

	// DRAM buffer: pure port bandwidth (single 32-bit package).
	t.AddRow("DRAM buffer", cfg.Engine.DRAMBufGBps)

	// Flash channels: 16 legacy buses moving whole pages.
	t.AddRow("flash channel", float64(cfg.Flash.Channels)*cfg.Flash.ChannelGBps)

	// Flash array read/write: every plane streaming pages.
	rd, wr := saturateArrays(cfg.Flash)
	t.AddRow("flash read", rd)
	t.AddRow("flash write", wr)

	// SSD engine: firmware-processing throughput on 128 B requests.
	t.AddRow("SSD engine", saturateEngine(cfg))
	return t
}

// Fig4c measures the maximum 128 B-request throughput of each memory
// medium / system path (Fig. 4c).
func Fig4c(cfg config.Config) *stats.Table {
	t := stats.NewTable("Fig. 4c: max data access throughput (GB/s)", "medium", "GB/s")
	t.AddRow("GDDR5", saturateDRAM(cfg.GDDR5))
	t.AddRow("DDR4", saturateDRAM(cfg.DDR4))
	t.AddRow("LPDDR4", saturateDRAM(cfg.LPDDR4))
	t.AddRow("ZSSD", float64(cfg.Flash.Channels)*cfg.Flash.ChannelGBps) // interface-bound raw drive
	t.AddRow("GPU-SSD", cfg.Host.PCIeGBps)                              // host-mediated path
	t.AddRow("HybridGPU", saturateHybrid(cfg))
	return t
}

// Fig4d reproduces the memory-access latency breakdown (Fig. 4d):
// per-component time of a loaded read on the conventional GPU memory
// subsystem versus HybridGPU. The paper's headline: the SSD engine
// alone accounts for ~67% of HybridGPU's total.
func Fig4d(cfg config.Config) (*stats.Table, *stats.Breakdown, *stats.Breakdown) {
	gpu := fig4dGPU(cfg)
	hyb := fig4dHybrid(cfg)

	t := stats.NewTable("Fig. 4d: latency breakdown (ns per request under load)",
		"component", "GPU(DRAM)", "HybridGPU")
	comps := append(gpu.Components(), hyb.Components()...)
	seen := map[string]bool{}
	for _, c := range comps {
		if seen[c] {
			continue
		}
		seen[c] = true
		t.AddRow(c, gpu.Get(c), hyb.Get(c))
	}
	t.AddRow("TOTAL", gpu.Total(), hyb.Total())
	return t, gpu, hyb
}

// fig4dGPU charges the conventional path: TLB walk share, L1, L2,
// interconnects, DRAM under a mild load.
func fig4dGPU(cfg config.Config) *stats.Breakdown {
	b := stats.NewBreakdown()
	// TLB: walks amortized over a typical hit rate.
	walk := config.TicksToNs(mmu.BaselineWalkLat(cfg.MMU))
	b.Add("TLB", 1+0.05*walk)
	b.Add("L1 cache", config.TicksToNs(cfg.L1.ReadLat))
	b.Add("L1-L2 net", config.TicksToNs(10))
	b.Add("L2 cache", config.TicksToNs(cfg.L2SRAM.ReadLat))
	b.Add("L2-MC net", config.TicksToNs(12))
	b.Add("DRAM", config.TicksToNs(cfg.GDDR5.ReadLat)+measuredQueue(cfg.GDDR5))
	return b
}

// fig4dHybrid drives the instrumented HybridGPU read path under load
// and attributes waiting time per stage.
func fig4dHybrid(cfg config.Config) *stats.Breakdown {
	eng := sim.NewEngine()
	fcfg := cfg.Flash
	bb := flash.New(eng, fcfg)
	pm := ftl.NewPageMapped(eng, bb, cfg.FTL)
	dispatch := sim.NewResource(eng)
	firmware := sim.NewPool(eng, cfg.Engine.Cores)
	bufPort := sim.NewPort(eng, config.GBpsToBytesPerTick(cfg.Engine.DRAMBufGBps), cfg.Engine.DRAMBufLat)

	b := stats.NewBreakdown()
	b.Add("TLB", 1+0.05*config.TicksToNs(mmu.BaselineWalkLat(cfg.MMU)))
	b.Add("L1 cache", config.TicksToNs(cfg.L1.ReadLat))
	b.Add("L1-L2 net", config.TicksToNs(10))
	b.Add("L2 cache", config.TicksToNs(cfg.L2SRAM.ReadLat))

	// Under GPU load, many L2 banks push requests concurrently: the
	// dispatcher is wide, so the backlog piles up at the engine cores —
	// the effect behind the paper's 67% engine share. Reads re-access
	// pages ~42x, so ~90% hit the DRAM buffer; the cold tail walks the
	// flash path.
	const n = 512
	dispatchLat := config.NsToTicks(10)
	channels := make([]*sim.Port, fcfg.Channels)
	for i := range channels {
		channels[i] = sim.NewPort(eng, config.GBpsToBytesPerTick(fcfg.ChannelGBps), 2)
	}

	done := 0
	for i := 0; i < n; i++ {
		i := i
		addr := uint64(i) * 4096
		t0 := eng.Now()
		dispatch.Acquire(dispatchLat, func() {
			t1 := eng.Now()
			b.Add("L2-engine net", config.TicksToNs(t1-t0))
			firmware.Acquire(cfg.Engine.FTLLatPerReq, func() {
				t2 := eng.Now()
				b.Add("SSD engine", config.TicksToNs(t2-t1))
				finish := func(t3 sim.Tick) {
					bufPort.Send(128, func() {
						b.Add("DRAM buffer", config.TicksToNs(eng.Now()-t3))
						done++
					})
				}
				if i%10 != 0 {
					// Buffer hit.
					finish(t2)
					return
				}
				loc := pm.Lookup(addr)
				bb.Plane(loc.Plane).Read(loc.Block, loc.Page, func() {
					t3 := eng.Now()
					b.Add("flash array", config.TicksToNs(t3-t2))
					channels[loc.Plane%len(channels)].Send(fcfg.PageBytes, func() {
						t4 := eng.Now()
						b.Add("engine-flash net", config.TicksToNs(t4-t3))
						finish(t4)
					})
				})
			})
		})
	}
	eng.Run()
	// Normalize the accumulated sums to per-request values.
	out := stats.NewBreakdown()
	for _, c := range b.Components() {
		switch c {
		case "TLB", "L1 cache", "L1-L2 net", "L2 cache":
			out.Add(c, b.Get(c))
		default:
			out.Add(c, b.Get(c)/float64(n))
		}
	}
	return out
}

// measuredQueue estimates steady-state queueing at a DRAM device at
// ~70% load using the port model.
func measuredQueue(dcfg config.DRAM) float64 {
	eng := sim.NewEngine()
	dev := dram.New(eng, dcfg)
	const n = 2048
	var total sim.Tick
	issued := 0
	var issue func()
	gap := sim.Tick(float64(n*dcfg.AccessGran) / (0.7 * config.GBpsToBytesPerTick(dcfg.TotalGBps)) / n)
	issue = func() {
		if issued >= n {
			return
		}
		issued++
		start := eng.Now()
		dev.Access(&mem.Request{Addr: uint64(issued) * uint64(dcfg.AccessGran), Size: dcfg.AccessGran,
			Done: func() { total += eng.Now() - start - dcfg.ReadLat }})
		eng.Schedule(gap, issue)
	}
	issue()
	eng.Run()
	q := config.TicksToNs(total) / float64(n)
	if q < 0 {
		q = 0
	}
	return q
}

// saturateDRAM floods a DRAM backend and reports delivered GB/s.
func saturateDRAM(dcfg config.DRAM) float64 {
	eng := sim.NewEngine()
	dev := dram.New(eng, dcfg)
	const n = 16000
	for i := 0; i < n; i++ {
		dev.Access(&mem.Request{Addr: uint64(i) * uint64(dcfg.AccessGran), Size: dcfg.AccessGran})
	}
	eng.Run()
	return dev.DeliveredGBps(eng.Now())
}

// saturateArrays floods every plane with page reads, then programs,
// and reports accumulated array bandwidth.
func saturateArrays(fcfg config.Flash) (readGBps, writeGBps float64) {
	nop := func() {}
	eng := sim.NewEngine()
	bb := flash.New(eng, fcfg)
	const per = 8
	for p := 0; p < bb.Planes(); p++ {
		for i := 0; i < per; i++ {
			bb.Plane(p).Read(0, i, nop)
		}
	}
	eng.Run()
	readGBps = config.BytesPerTickToGBps(float64(bb.TotalBytesRead()) / float64(eng.Now()))

	eng2 := sim.NewEngine()
	bb2 := flash.New(eng2, fcfg)
	for p := 0; p < bb2.Planes(); p++ {
		for i := 0; i < per; i++ {
			if err := bb2.Plane(p).Program(0, i, nop); err != nil {
				panic(err)
			}
		}
	}
	eng2.Run()
	writeGBps = config.BytesPerTickToGBps(float64(bb2.TotalBytesProgrammed()) / float64(eng2.Now()))
	return readGBps, writeGBps
}

// saturateEngine floods the SSD module with buffer-hitting requests so
// only dispatch+firmware throughput limits it.
func saturateEngine(cfg config.Config) float64 {
	eng := sim.NewEngine()
	fcfg := cfg.Flash
	mod := ssd.New(eng, cfg.Engine, fcfg, cfg.FTL)
	// Warm one page.
	mod.Access(&mem.Request{Addr: 0, Size: 128})
	eng.Run()
	start := eng.Now()
	const n = 8000
	var bytes uint64
	for i := 0; i < n; i++ {
		mod.Access(&mem.Request{Addr: uint64(i%32) * 128, Size: 128,
			Done: func() { bytes += 128 }})
	}
	eng.Run()
	return config.BytesPerTickToGBps(float64(bytes) / float64(eng.Now()-start))
}

// saturateHybrid floods the whole module with page-hitting traffic;
// the engine and buffer bus jointly bound it, the engine dominating.
func saturateHybrid(cfg config.Config) float64 {
	return saturateEngine(cfg)
}
