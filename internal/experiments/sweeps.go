package experiments

import (
	"fmt"

	"zng/internal/campaign"
	"zng/internal/config"
	"zng/internal/flash"
	"zng/internal/ftl"
	"zng/internal/platform"
	"zng/internal/sim"
	"zng/internal/stats"
	"zng/internal/workload"
)

// Fig13Sweep reproduces the Section V-D sensitivity study: sweep the
// access monitor's high and low waste thresholds and report ZnG IPC on
// betw-back. The paper lands on high=0.3, low=0.05.
func Fig13Sweep(o Options) (*stats.Table, map[[2]float64]float64, error) {
	highs := []float64{0.1, 0.3, 0.5, 0.8}
	lows := []float64{0.01, 0.05, 0.2}
	t := stats.NewTable("Fig. 13 (Sec V-D): prefetch threshold sweep, ZnG IPC on betw-back",
		"high \\ low", fmt.Sprint(lows[0]), fmt.Sprint(lows[1]), fmt.Sprint(lows[2]))
	out := map[[2]float64]float64{}
	for _, hi := range highs {
		row := []any{fmt.Sprint(hi)}
		for _, lo := range lows {
			oo := o
			oo.Cfg.Prefetch.HighWaste = hi
			oo.Cfg.Prefetch.LowWaste = lo
			r, err := runOne(oo, platform.ZnG, "betw-back")
			if err != nil {
				return nil, nil, err
			}
			out[[2]float64{hi, lo}] = r.IPC
			row = append(row, r.IPC)
		}
		t.AddRow(row...)
	}
	return t, out, nil
}

// AblationWriteNet compares the three flash-register interconnects of
// Section IV-C — SWnet, FCnet and NiF — on the write-heavy pairs.
func AblationWriteNet(o Options) (*stats.Table, map[config.RegCacheNet]float64, error) {
	nets := []config.RegCacheNet{config.SWnet, config.FCnet, config.NiF}
	pairs := []string{"betw-back", "bfs4-back"}
	t := stats.NewTable("Ablation A: register interconnect (ZnG IPC)",
		"workload", "SWnet", "FCnet", "NiF", "migrations (NiF)")
	avg := map[config.RegCacheNet]float64{}
	for _, pn := range pairs {
		row := []any{pn}
		var migr float64
		for _, net := range nets {
			oo := o
			oo.Cfg.RegCache.Net = net
			r, err := runOne(oo, platform.ZnG, pn)
			if err != nil {
				return nil, nil, err
			}
			row = append(row, r.IPC)
			avg[net] += r.IPC / float64(len(pairs))
			if net == config.NiF {
				migr = r.Extra["reg_migrations"]
			}
		}
		row = append(row, migr)
		t.AddRow(row...)
	}
	return t, avg, nil
}

// AblationConsolidation sweeps the co-run degree of the consolidation
// scenarios (consol-1 … consol-4): ZnG versus HybridGPU aggregate IPC
// as one, two, three and four applications share the GPU, each IPC
// also normalized to that platform's solo run. The paper evaluates
// only 2-app co-runs; this ablation extends the axis the scenario
// subsystem opens up and quantifies how much more gracefully ZnG's
// direct flash path absorbs consolidation than HybridGPU's
// engine-throttled one.
func AblationConsolidation(o Options) (*stats.Table, map[platform.Kind][]float64, error) {
	kinds := []platform.Kind{platform.HybridGPU, platform.ZnG}
	t := stats.NewTable("Ablation D: consolidation sweep (aggregate IPC vs co-run degree)",
		"mix", "degree", "HybridGPU", "ZnG", "HybridGPU (vs solo)", "ZnG (vs solo)")
	// This driver's matrix is declared as a campaign Spec and fanned
	// out through the campaign Executor over the Options' runner — the
	// proof that the declarative sweep layer composes under any figure
	// driver. The executor reports partial failure per cell; a figure
	// needs the whole grid, so any failure fails the driver.
	spec := campaign.Spec{
		Name:      "abl-consolidation",
		Platforms: []string{platform.HybridGPU.String(), platform.ZnG.String()},
		Scales:    []float64{o.Scale},
	}
	for d := 1; d <= workload.ConsolidationDegrees; d++ {
		m, err := workload.ConsolidationMix(d)
		if err != nil {
			return nil, nil, err
		}
		spec.Scenarios = append(spec.Scenarios, m.Name)
	}
	ex := campaign.Executor{Runner: o.runner(), Workers: o.workers()}
	out, err := ex.Execute(spec, o.Cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := out.Err(); err != nil {
		return nil, nil, err
	}
	res := map[platform.Kind]map[string]platform.Result{}
	for _, cr := range out.Cells {
		if res[cr.Cell.Kind] == nil {
			res[cr.Cell.Kind] = map[string]platform.Result{}
		}
		res[cr.Cell.Kind][cr.Cell.Mix.Name] = cr.Result
	}
	ipc := map[platform.Kind][]float64{}
	for _, name := range spec.Scenarios {
		for _, k := range kinds {
			ipc[k] = append(ipc[k], res[k][name].IPC)
		}
	}
	for d, name := range spec.Scenarios {
		hyb, zng := ipc[platform.HybridGPU][d], ipc[platform.ZnG][d]
		t.AddRow(name, d+1, hyb, zng,
			hyb/ipc[platform.HybridGPU][0], zng/ipc[platform.ZnG][0])
	}
	return t, ipc, nil
}

// GCStats summarizes the garbage-collection ablation.
type GCStats struct {
	Merges        uint64
	MergePrograms uint64
	StalledWrites uint64
	MaxErase      int
	FreeBlocks    int
}

// AblationGC hammers a deliberately tiny flash geometry with rewrites
// to exercise the split FTL's helper-thread merges, and reports GC
// cost and wear-levelling effectiveness.
func AblationGC() (*stats.Table, GCStats) {
	eng := sim.NewEngine()
	fcfg := config.Default().Flash
	fcfg.Channels = 4
	fcfg.DiesPerPkg = 2
	fcfg.PlanesPerDie = 2
	fcfg.BlocksPerPl = 64
	fcfg.PagesPerBlock = 16
	fcfg.ReadLat, fcfg.ProgramLat, fcfg.EraseLat = 30, 1000, 3000
	bb := flash.New(eng, fcfg)
	split := ftl.NewSplit(eng, bb, config.Default().FTL)

	const writes = 4000
	for i := 0; i < writes; i++ {
		va := uint64(i%64) * 4096
		split.WritePage(va, nil)
		eng.Run()
	}
	st := GCStats{
		Merges:        split.Merges.Value(),
		MergePrograms: split.MergePrograms.Value(),
		StalledWrites: split.StalledWrites.Value(),
		MaxErase:      split.MaxEraseCount(),
		FreeBlocks:    split.FreeBlocks(),
	}
	t := stats.NewTable("Ablation B: split-FTL garbage collection",
		"metric", "value")
	t.AddRow("page writes", writes)
	t.AddRow("log merges", st.Merges)
	t.AddRow("merge programs", st.MergePrograms)
	t.AddRow("stalled writes", st.StalledWrites)
	t.AddRow("max block erase count", st.MaxErase)
	t.AddRow("free blocks remaining", st.FreeBlocks)
	t.AddRow("write amplification", float64(st.MergePrograms+uint64(writes))/float64(writes))
	return t, st
}

// AblationL2 sweeps the ZnG L2 capacity: the 6 MB SRAM baseline, the
// Table I 24 MB STT-MRAM, and half/double variants, on a read-heavy
// pair.
func AblationL2(o Options) (*stats.Table, map[int]float64, error) {
	t := stats.NewTable("Ablation C: ZnG L2 capacity sweep (bfs1-gaus)",
		"L2 config", "size (MB)", "IPC", "L2 hit rate")
	out := map[int]float64{}
	for _, mult := range []int{1, 2, 4, 8} {
		oo := o
		oo.Cfg.L2STT.Sets = oo.Cfg.L2SRAM.Sets * mult
		r, err := runOne(oo, platform.ZnG, "bfs1-gaus")
		if err != nil {
			return nil, nil, err
		}
		sizeMB := oo.Cfg.L2STT.SizeBytes() >> 20
		out[sizeMB] = r.IPC
		t.AddRow(fmt.Sprintf("%dx SRAM sets", mult), sizeMB, r.IPC, r.L2HitRate)
	}
	return t, out, nil
}
