// Package experiments regenerates every table and figure of the ZnG
// paper's evaluation (Section V) plus the ablations docs/DESIGN.md
// calls out. Each driver returns a stats.Table holding the same rows
// or series the paper plots; the registry (registry.go) binds each
// figure id to its driver, paper claim and shape check, and the
// generated docs/EXPERIMENTS.md records paper-vs-measured for each.
//
// Absolute numbers are not expected to match the authors' testbed —
// the substrate here is a from-scratch simulator with synthetic traces
// — but the shapes (who wins, by roughly what factor, where the
// crossovers sit) are asserted by this package's tests.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"zng/internal/config"
	"zng/internal/platform"
	"zng/internal/workload"
)

// Options parameterize a run.
type Options struct {
	// Scale multiplies the Table II trace budgets. The figure defaults
	// use 2.0 so working sets clearly exceed the 24 MB STT-MRAM L2;
	// tests and benchmarks use small fractions.
	Scale float64
	Cfg   config.Config
	// Mixes lists the workload scenarios the per-workload figures
	// iterate; the figure defaults use the twelve paper pairs.
	Mixes []workload.Mix
	// Workers bounds simulation parallelism (0 = NumCPU). Individual
	// simulations stay single-threaded and deterministic.
	Workers int
	// Runner answers simulation requests. DefaultOptions injects a
	// fresh in-memory Memo, so every Options lineage (the value and
	// all copies derived from it) shares one memo and independent
	// lineages cannot observe each other; the CLIs and the zngd
	// daemon inject the persistent simsvc scheduler instead. A nil
	// Runner simulates every request directly, with no sharing.
	Runner Runner
}

// DefaultScale is the figure-quality trace scale.
const DefaultScale = 2.0

// DefaultOptions returns full-fidelity settings with a fresh
// in-memory simulation memo.
func DefaultOptions() Options {
	return Options{Scale: DefaultScale, Cfg: config.Default(), Mixes: workload.PaperPairs(), Runner: NewMemo()}
}

// TestOptions returns a fast, scaled-down variant for tests and
// benchmarks: traces shrink and the L2s shrink with them (preserving
// the 4x STT:SRAM capacity ratio of Table I) so cache pressure stays
// realistic.
func TestOptions() Options {
	o := DefaultOptions()
	o.Scale = 0.12
	o.Cfg.GPU.SMs = 8
	o.Cfg.L2SRAM.Sets /= 8
	o.Cfg.L2STT.Sets /= 8
	o.Mixes = workload.PaperPairs()[:3]
	return o
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

func (o Options) runner() Runner {
	if o.Runner != nil {
		return o.Runner
	}
	return directRunner{}
}

type cell struct {
	kind platform.Kind
	mix  workload.Mix
}

// runMatrix simulates every (kind, mix) combination in parallel and
// returns results keyed by kind and mix name. Cells go through the
// Options' runner (cache.go), so a cell another figure already
// simulated under the same runner is free and concurrent duplicates
// coalesce. On the first
// failing cell the matrix stops spawning new work: already-running
// simulations drain (they are not interruptible mid-run and their
// results stay valid in the memo), but no fresh cell starts once
// firstErr is set.
func runMatrix(o Options, kinds []platform.Kind) (map[platform.Kind]map[string]platform.Result, error) {
	var cells []cell
	for _, k := range kinds {
		for _, m := range o.Mixes {
			cells = append(cells, cell{k, m})
		}
	}
	out := make(map[platform.Kind]map[string]platform.Result)
	for _, k := range kinds {
		out[k] = make(map[string]platform.Result)
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	failed := make(chan struct{})
	sem := make(chan struct{}, o.workers())
spawn:
	for _, c := range cells {
		c := c
		select {
		case <-failed:
			break spawn
		case sem <- struct{}{}:
		}
		// A select with both cases ready picks randomly; re-check under
		// the lock so that once firstErr is set no further cell ever
		// starts.
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			<-sem
			break spawn
		}
		wg.Add(1)
		go func() {
			defer func() { <-sem; wg.Done() }()
			r, err := o.runner().Run(c.kind, c.mix, o.Scale, o.Cfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%v on %s: %w", c.kind, c.mix.Name, err)
					close(failed)
				}
				return
			}
			out[c.kind][c.mix.Name] = r
		}()
	}
	wg.Wait()
	return out, firstErr
}

// runOne simulates a single registered scenario (memoized like matrix
// cells).
func runOne(o Options, k platform.Kind, mixName string) (platform.Result, error) {
	m, err := workload.MixByName(mixName)
	if err != nil {
		return platform.Result{}, err
	}
	return o.runner().Run(k, m, o.Scale, o.Cfg)
}
