package experiments

import (
	"fmt"

	"zng/internal/config"
	"zng/internal/stats"
	"zng/internal/workload"
)

// TableI renders the system configuration (Table I).
func TableI(cfg config.Config) *stats.Table {
	t := stats.NewTable("Table I: system configuration", "component", "parameter", "value")
	t.AddRow("GPU", "SM / freq", "16 / 1.2 GHz")
	t.AddRow("GPU", "max warps per SM", cfg.GPU.MaxWarps)
	t.AddRow("L1 cache", "size", cfg.L1.SizeBytes())
	t.AddRow("L1 cache", "sets/ways/line", tripleInts(cfg.L1.Sets, cfg.L1.Ways, cfg.L1.LineBytes))
	t.AddRow("L2 (SRAM)", "size", cfg.L2SRAM.SizeBytes())
	t.AddRow("L2 (STT-MRAM)", "size", cfg.L2STT.SizeBytes())
	t.AddRow("L2 (STT-MRAM)", "read/write latency (cyc)", tripleInts(int(cfg.L2STT.ReadLat), int(cfg.L2STT.WriteLat), 0))
	t.AddRow("Z-NAND", "channel/package", tripleInts(cfg.Flash.Channels, cfg.Flash.PackagesPerCh, 0))
	t.AddRow("Z-NAND", "die/plane", tripleInts(cfg.Flash.DiesPerPkg, cfg.Flash.PlanesPerDie, 0))
	t.AddRow("Z-NAND", "block/page", tripleInts(cfg.Flash.BlocksPerPl, cfg.Flash.PagesPerBlock, 0))
	t.AddRow("Z-NAND", "tR (us)", config.TicksToNs(cfg.Flash.ReadLat)/1000)
	t.AddRow("Z-NAND", "tPROG (us)", config.TicksToNs(cfg.Flash.ProgramLat)/1000)
	t.AddRow("Z-NAND", "P/E cycles", cfg.Flash.PECycles)
	t.AddRow("Z-NAND", "registers per plane", cfg.Flash.RegsPerPlane)
	t.AddRow("Flash network", "type", "mesh")
	t.AddRow("Flash network", "link width (B)", 8)
	t.AddRow("Optane DC PMM", "tRCD/tCL (ns)", "190 / 8.9")
	t.AddRow("Optane DC PMM", "tRP (ns)", 763)
	return t
}

func tripleInts(a, b, c int) string {
	if c == 0 {
		return fmt.Sprintf("%d / %d", a, b)
	}
	return fmt.Sprintf("%d / %d / %d", a, b, c)
}

// TableII renders the benchmark suite (Table II) together with the
// read ratio measured from the generated traces — the transcription
// and the calibration side by side.
func TableII(scale float64) *stats.Table {
	t := stats.NewTable("Table II: GPU benchmarks",
		"workload", "suite", "read ratio (paper)", "read ratio (measured)", "kernels")
	for _, spec := range workload.Specs() {
		app := workload.NewApp(spec, scale, 0)
		st := workload.Characterize(app)
		t.AddRow(spec.Name, spec.Suite, spec.ReadRatio, st.ReadRatio(), spec.Kernels)
	}
	return t
}

// Fig3 renders the memory density and power comparison (Fig. 3a/3b).
func Fig3(cfg config.Config) *stats.Table {
	t := stats.NewTable("Fig. 3: density and power per package",
		"medium", "density (GB)", "power (W/GB)")
	t.AddRow("GDDR5", cfg.GDDR5.PkgCapacityGB, cfg.GDDR5.PowerWPerGB)
	t.AddRow("DDR4", cfg.DDR4.PkgCapacityGB, cfg.DDR4.PowerWPerGB)
	t.AddRow("LPDDR4", cfg.LPDDR4.PkgCapacityGB, cfg.LPDDR4.PowerWPerGB)
	t.AddRow("Z-NAND", config.ZNANDPackageDensityGB, config.ZNANDPowerWPerGB)
	return t
}
