package experiments

import (
	"sync"
	"testing"

	"zng/internal/platform"
)

// TestCacheDedupsRepeatedMatrices pins the tentpole property: running
// the same matrix twice performs each unique simulation exactly once.
func TestCacheDedupsRepeatedMatrices(t *testing.T) {
	o := TestOptions()
	o.Scale = 0.013 // unique key-space for this test
	o.Mixes = o.Mixes[:2]
	kinds := []platform.Kind{platform.GDDR5, platform.Optane}
	cells := uint64(len(kinds) * len(o.Mixes))

	sims0, hits0 := CacheStats()
	for run := 0; run < 2; run++ {
		if _, err := runMatrix(o, kinds); err != nil {
			t.Fatal(err)
		}
	}
	sims, hits := CacheStats()
	if got := sims - sims0; got != cells {
		t.Errorf("unique simulations = %d, want %d (each cell exactly once)", got, cells)
	}
	if got := hits - hits0; got != cells {
		t.Errorf("cache hits = %d, want %d (second run fully served from memo)", got, cells)
	}
}

// TestCacheSingleFlight: concurrent requests for one cell coalesce
// onto a single simulation.
func TestCacheSingleFlight(t *testing.T) {
	o := TestOptions()
	o.Scale = 0.017 // unique key-space for this test
	sims0, _ := CacheStats()

	const callers = 8
	var wg sync.WaitGroup
	results := make([]platform.Result, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := runOne(o, platform.GDDR5, "betw-back")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}()
	}
	wg.Wait()
	sims, _ := CacheStats()
	if got := sims - sims0; got != 1 {
		t.Errorf("concurrent identical runOne calls performed %d simulations, want 1", got)
	}
	for i := 1; i < callers; i++ {
		if results[i].IPC != results[0].IPC || results[i].Cycles != results[0].Cycles {
			t.Errorf("caller %d saw a different result: %+v vs %+v", i, results[i], results[0])
		}
	}
}

// TestMatrixStopsAfterFirstError: once a cell fails, the matrix must
// stop spawning work rather than grinding through every remaining
// simulation.
func TestMatrixStopsAfterFirstError(t *testing.T) {
	o := TestOptions()
	o.Scale = 0.019 // unique key-space for this test
	o.Workers = 1   // serialize so the failure lands before most spawns
	// Unknown kinds fail in build() before any simulation work.
	kinds := []platform.Kind{platform.Kind(97), platform.Kind(98), platform.Kind(99)}
	cells := uint64(len(kinds) * len(o.Mixes))

	sims0, _ := CacheStats()
	_, err := runMatrix(o, kinds)
	if err == nil {
		t.Fatal("matrix of unknown kinds must error")
	}
	sims, _ := CacheStats()
	if got := sims - sims0; got > cells/2 {
		t.Errorf("attempted %d of %d cells after first failure, want early stop", got, cells)
	}
}

func TestResetCache(t *testing.T) {
	o := TestOptions()
	o.Scale = 0.013 // same key-space as the dedup test: already memoized
	sims0, hits0 := CacheStats()
	if _, err := runOne(o, platform.GDDR5, o.Mixes[0].Name); err != nil {
		t.Fatal(err)
	}
	sims, hits := CacheStats()
	if sims != sims0 || hits != hits0+1 {
		t.Fatalf("expected a pure cache hit, got sims %d->%d hits %d->%d", sims0, sims, hits0, hits)
	}
	ResetCache()
	if s, h := CacheStats(); s != 0 || h != 0 {
		t.Errorf("stats after reset = (%d, %d), want (0, 0)", s, h)
	}
	if _, err := runOne(o, platform.GDDR5, o.Mixes[0].Name); err != nil {
		t.Fatal(err)
	}
	if s, _ := CacheStats(); s != 1 {
		t.Errorf("post-reset run simulated %d cells, want 1 (memo was dropped)", s)
	}
}
