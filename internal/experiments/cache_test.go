package experiments

import (
	"sync"
	"testing"

	"zng/internal/platform"
)

// memoStats extracts the RunnerStats of the Options' injected runner.
func memoStats(t *testing.T, o Options) RunnerStats {
	t.Helper()
	sr, ok := o.Runner.(StatsReporter)
	if !ok {
		t.Fatalf("options runner %T does not report stats", o.Runner)
	}
	return sr.Stats()
}

// TestMemoDedupsRepeatedMatrices pins the memo property: running the
// same matrix twice under one Options lineage performs each unique
// simulation exactly once. No scale tricks are needed any more — the
// memo is per-Options, not process-wide.
func TestMemoDedupsRepeatedMatrices(t *testing.T) {
	o := TestOptions()
	o.Scale = 0.013
	o.Mixes = o.Mixes[:2]
	kinds := []platform.Kind{platform.GDDR5, platform.Optane}
	cells := uint64(len(kinds) * len(o.Mixes))

	for run := 0; run < 2; run++ {
		if _, err := runMatrix(o, kinds); err != nil {
			t.Fatal(err)
		}
	}
	st := memoStats(t, o)
	if st.Sims != cells {
		t.Errorf("unique simulations = %d, want %d (each cell exactly once)", st.Sims, cells)
	}
	if st.MemoryHits != cells {
		t.Errorf("memory hits = %d, want %d (second run fully served from memo)", st.MemoryHits, cells)
	}
	if st.DiskHits != 0 {
		t.Errorf("memo reported %d disk hits; it has no disk", st.DiskHits)
	}
}

// TestMemoSingleFlight: concurrent requests for one cell coalesce
// onto a single simulation.
func TestMemoSingleFlight(t *testing.T) {
	o := TestOptions()
	o.Scale = 0.017

	const callers = 8
	var wg sync.WaitGroup
	results := make([]platform.Result, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := runOne(o, platform.GDDR5, "betw-back")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}()
	}
	wg.Wait()
	st := memoStats(t, o)
	if st.Sims != 1 {
		t.Errorf("concurrent identical runOne calls performed %d simulations, want 1", st.Sims)
	}
	if got := st.MemoryHits + st.Coalesced; got != callers-1 {
		t.Errorf("memory hits (%d) + coalesced (%d) = %d, want %d",
			st.MemoryHits, st.Coalesced, got, callers-1)
	}
	for i := 1; i < callers; i++ {
		if results[i].IPC != results[0].IPC || results[i].Cycles != results[0].Cycles {
			t.Errorf("caller %d saw a different result: %+v vs %+v", i, results[i], results[0])
		}
	}
}

// TestMemoIsolatedPerOptions: two independently built Options values
// must not observe each other's cells — the property that freed the
// tests of process-wide state.
func TestMemoIsolatedPerOptions(t *testing.T) {
	a, b := TestOptions(), TestOptions()
	a.Scale, b.Scale = 0.011, 0.011
	if _, err := runOne(a, platform.GDDR5, "betw-back"); err != nil {
		t.Fatal(err)
	}
	if _, err := runOne(b, platform.GDDR5, "betw-back"); err != nil {
		t.Fatal(err)
	}
	if st := memoStats(t, b); st.Sims != 1 || st.MemoryHits != 0 {
		t.Errorf("second lineage stats %+v, want its own single simulation", st)
	}
}

// TestMatrixStopsAfterFirstError: once a cell fails, the matrix must
// stop spawning work rather than grinding through every remaining
// simulation.
func TestMatrixStopsAfterFirstError(t *testing.T) {
	o := TestOptions()
	o.Scale = 0.019
	o.Workers = 1 // serialize so the failure lands before most spawns
	// Unknown kinds fail in build() before any simulation work.
	kinds := []platform.Kind{platform.Kind(97), platform.Kind(98), platform.Kind(99)}
	cells := uint64(len(kinds) * len(o.Mixes))

	_, err := runMatrix(o, kinds)
	if err == nil {
		t.Fatal("matrix of unknown kinds must error")
	}
	if st := memoStats(t, o); st.Sims > cells/2 {
		t.Errorf("attempted %d of %d cells after first failure, want early stop", st.Sims, cells)
	}
}

func TestMemoReset(t *testing.T) {
	o := TestOptions()
	o.Scale = 0.013
	memo := o.Runner.(*Memo)
	if _, err := runOne(o, platform.GDDR5, o.Mixes[0].Name); err != nil {
		t.Fatal(err)
	}
	if _, err := runOne(o, platform.GDDR5, o.Mixes[0].Name); err != nil {
		t.Fatal(err)
	}
	if st := memo.Stats(); st.Sims != 1 || st.MemoryHits != 1 {
		t.Fatalf("expected one simulation and one pure hit, got %+v", st)
	}
	memo.Reset()
	if st := memo.Stats(); st != (RunnerStats{}) {
		t.Errorf("stats after reset = %+v, want zeroes", st)
	}
	if _, err := runOne(o, platform.GDDR5, o.Mixes[0].Name); err != nil {
		t.Fatal(err)
	}
	if st := memo.Stats(); st.Sims != 1 {
		t.Errorf("post-reset run simulated %d cells, want 1 (memo was dropped)", st.Sims)
	}
}

// TestNilRunnerSimulatesDirectly: Options without a runner still work
// — every request simulates, nothing is shared.
func TestNilRunnerSimulatesDirectly(t *testing.T) {
	o := TestOptions()
	o.Scale = 0.011
	o.Runner = nil
	r, err := runOne(o, platform.GDDR5, "betw-back")
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 {
		t.Errorf("direct run IPC %v, want positive", r.IPC)
	}
}
