package experiments

import (
	"strings"
	"testing"

	"zng/internal/lint"
)

// TestRegistryComplete delegates the driver/registry bijection — and
// the scenario-constructor reachability check in internal/workload —
// to the znglint registry analyzer, which replaced the go/parser
// walk that used to live here. The analyzer is the authority (it is
// also the CI gate); this test keeps the property wired into plain
// `go test ./internal/experiments` and adds the one check static
// analysis cannot do: every registry entry is runtime-complete.
func TestRegistryComplete(t *testing.T) {
	pkgs, err := lint.Load(".", "zng/internal/experiments", "zng/internal/workload")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(pkgs, []*lint.Analyzer{lint.DefaultRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}

	for _, fig := range Registry() {
		if fig.ID == "" || fig.Ref == "" || fig.Title == "" || fig.Claim == "" ||
			fig.Shape == "" || fig.Run == nil || fig.Check == nil {
			t.Errorf("registry entry %q is incomplete: %+v", fig.ID, fig)
		}
	}
}

func TestFigureByID(t *testing.T) {
	f, err := FigureByID("fig10")
	if err != nil {
		t.Fatal(err)
	}
	if f.Driver != "Fig10" || f.ID != "fig10" {
		t.Errorf("resolved %+v", f)
	}

	_, err = FigureByID("fig99")
	if err == nil {
		t.Fatal("want error for unknown id")
	}
	// The error must teach the valid vocabulary (the zngfig fail-fast
	// contract): every id plus the meta-targets.
	for _, id := range append(FigureIDs(), "all", "docs") {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("error %q does not list %q", err, id)
		}
	}
}

func TestDocsOptions(t *testing.T) {
	o := DocsOptions()
	if len(o.Mixes) != 12 {
		t.Errorf("docs runs must cover all 12 pairs, got %d", len(o.Mixes))
	}
	te := TestOptions()
	if o.Scale != te.Scale || o.Cfg != te.Cfg {
		t.Error("docs regime must match the test regime (scale and config)")
	}
}
