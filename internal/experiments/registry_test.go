package experiments

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestRegistryComplete parses every non-test source file of this
// package and asserts a bijection between drivers (exported functions
// whose first result is *stats.Table) and registry entries: every
// driver is registered exactly once and every registered Driver name
// exists. Adding a figure — in any file — without a registry entry
// (or vice versa) fails here.
func TestRegistryComplete(t *testing.T) {
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	drivers := map[string]bool{}
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fd.Name.IsExported() {
				continue
			}
			if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
				continue
			}
			if isStatsTablePtr(fd.Type.Results.List[0].Type) {
				drivers[fd.Name.Name] = true
			}
		}
	}
	if len(drivers) == 0 {
		t.Fatal("found no drivers; parser broken?")
	}

	registered := map[string]int{}
	ids := map[string]int{}
	for _, fig := range Registry() {
		registered[fig.Driver]++
		ids[fig.ID]++
		if fig.ID == "" || fig.Ref == "" || fig.Title == "" || fig.Claim == "" ||
			fig.Shape == "" || fig.Run == nil || fig.Check == nil {
			t.Errorf("registry entry %q is incomplete: %+v", fig.ID, fig)
		}
	}
	for id, n := range ids {
		if n != 1 {
			t.Errorf("figure id %q registered %d times", id, n)
		}
	}
	for d := range drivers {
		if registered[d] == 0 {
			t.Errorf("driver %s has no registry entry", d)
		}
	}
	for d, n := range registered {
		if !drivers[d] {
			t.Errorf("registry names driver %s, which no driver file defines", d)
		}
		if n != 1 {
			t.Errorf("driver %s registered %d times", d, n)
		}
	}
}

// isStatsTablePtr reports whether an AST type expression is
// *stats.Table.
func isStatsTablePtr(e ast.Expr) bool {
	star, ok := e.(*ast.StarExpr)
	if !ok {
		return false
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Table" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "stats"
}

func TestFigureByID(t *testing.T) {
	f, err := FigureByID("fig10")
	if err != nil {
		t.Fatal(err)
	}
	if f.Driver != "Fig10" || f.ID != "fig10" {
		t.Errorf("resolved %+v", f)
	}

	_, err = FigureByID("fig99")
	if err == nil {
		t.Fatal("want error for unknown id")
	}
	// The error must teach the valid vocabulary (the zngfig fail-fast
	// contract): every id plus the meta-targets.
	for _, id := range append(FigureIDs(), "all", "docs") {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("error %q does not list %q", err, id)
		}
	}
}

func TestDocsOptions(t *testing.T) {
	o := DocsOptions()
	if len(o.Mixes) != 12 {
		t.Errorf("docs runs must cover all 12 pairs, got %d", len(o.Mixes))
	}
	te := TestOptions()
	if o.Scale != te.Scale || o.Cfg != te.Cfg {
		t.Error("docs regime must match the test regime (scale and config)")
	}
}
