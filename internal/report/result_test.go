package report

import (
	"bytes"
	"reflect"
	"testing"

	"zng/internal/platform"
)

func TestResultCodecRoundTrip(t *testing.T) {
	want := platform.Result{
		Kind:           platform.ZnGRdopt,
		Workload:       "bfs1-gaus",
		IPC:            1.234567,
		Cycles:         42_000_000,
		Insts:          51_800_000,
		FlashReadGBps:  33.3,
		FlashWriteGBps: 4.75,
		PlaneWrites:    []uint64{1, 0, 9},
		L2HitRate:      0.5,
		TLBHitRate:     0.96875,
		Extra:          map[string]float64{"prefetch_kb": 2048, "reg_migrations": 3},
	}
	got, err := DecodeResult(EncodeResult(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

// TestResultCodecDeterministic: identical results must encode to
// identical bytes — the property the store's disk-equals-fresh
// guarantee and the determinism test in simsvc stand on. The Extra
// map is the risky part (map iteration is random); encoding/json
// sorts its keys.
func TestResultCodecDeterministic(t *testing.T) {
	mk := func() platform.Result {
		return platform.Result{
			Kind:     platform.ZnG,
			Workload: "betw-back",
			IPC:      2.5,
			Extra: map[string]float64{
				"e": 5, "d": 4, "c": 3, "b": 2, "a": 1,
			},
		}
	}
	a := EncodeResult(mk())
	for i := 0; i < 16; i++ {
		if b := EncodeResult(mk()); !bytes.Equal(a, b) {
			t.Fatalf("encoding not deterministic:\n%s\nvs\n%s", a, b)
		}
	}
}

func TestResultCodecRejectsMalformed(t *testing.T) {
	for name, in := range map[string][]byte{
		"truncated":    []byte(`{"kind":"ZnG","ipc":`),
		"unknown kind": []byte(`{"kind":"PDP-11","ipc":1}`),
		"non-object":   []byte(`"hi"`),
		"empty":        {},
	} {
		if _, err := DecodeResult(in); err == nil {
			t.Errorf("%s input decoded without error", name)
		}
	}
}

// TestResultCodecEmptyFieldsStable: a fresh DRAM-platform result (nil
// PlaneWrites, empty Extra) and its decoded round-trip must encode to
// the same bytes even though nil-vs-empty differ in memory — the
// omitempty contract the byte-for-byte disk comparison relies on.
func TestResultCodecEmptyFieldsStable(t *testing.T) {
	fresh := platform.Result{Kind: platform.GDDR5, Workload: "solo-pr", IPC: 3, Extra: map[string]float64{}}
	a := EncodeResult(fresh)
	rt, err := DecodeResult(a)
	if err != nil {
		t.Fatal(err)
	}
	if b := EncodeResult(rt); !bytes.Equal(a, b) {
		t.Errorf("re-encoding a round-tripped result changed bytes:\n%s\nvs\n%s", a, b)
	}
}
