package report

import (
	"encoding/json"
	"fmt"

	"zng/internal/platform"
	"zng/internal/sim"
)

// resultJSON mirrors platform.Result with a declaration-fixed key
// order and the Kind spelled as its String form, so the document is
// both human-inspectable in a cache directory and byte-deterministic:
// struct fields marshal in order, the Extra map marshals with sorted
// keys, and Go's float formatting is canonical. The persistent result
// store (internal/store) relies on that determinism for its
// disk-equals-fresh guarantee.
type resultJSON struct {
	Kind           string             `json:"kind"`
	Workload       string             `json:"workload"`
	IPC            float64            `json:"ipc"`
	Cycles         int64              `json:"cycles"`
	Insts          uint64             `json:"insts"`
	FlashReadGBps  float64            `json:"flash_read_gbps"`
	FlashWriteGBps float64            `json:"flash_write_gbps"`
	PlaneWrites    []uint64           `json:"plane_writes,omitempty"`
	L2HitRate      float64            `json:"l2_hit_rate"`
	TLBHitRate     float64            `json:"tlb_hit_rate"`
	Extra          map[string]float64 `json:"extra,omitempty"`
}

// EncodeResult renders one simulation result as an indented JSON
// document with a trailing newline. Encoding the same Result always
// yields the same bytes.
func EncodeResult(r platform.Result) []byte {
	out, err := json.MarshalIndent(resultJSON{
		Kind:           r.Kind.String(),
		Workload:       r.Workload,
		IPC:            r.IPC,
		Cycles:         int64(r.Cycles),
		Insts:          r.Insts,
		FlashReadGBps:  r.FlashReadGBps,
		FlashWriteGBps: r.FlashWriteGBps,
		PlaneWrites:    r.PlaneWrites,
		L2HitRate:      r.L2HitRate,
		TLBHitRate:     r.TLBHitRate,
		Extra:          r.Extra,
	}, "", "  ")
	if err != nil {
		// Numbers, strings and slices of them cannot fail to marshal.
		panic(err)
	}
	return append(out, '\n')
}

// DecodeResult parses an EncodeResult document back into a
// platform.Result. Any malformation — truncated file, invalid JSON,
// unknown platform name — is an error; callers holding cached bytes
// treat it as a miss and re-simulate.
func DecodeResult(b []byte) (platform.Result, error) {
	var doc resultJSON
	if err := json.Unmarshal(b, &doc); err != nil {
		return platform.Result{}, fmt.Errorf("report: decoding result: %w", err)
	}
	kind, err := platform.KindByName(doc.Kind)
	if err != nil {
		return platform.Result{}, fmt.Errorf("report: decoding result: %w", err)
	}
	return platform.Result{
		Kind:           kind,
		Workload:       doc.Workload,
		IPC:            doc.IPC,
		Cycles:         sim.Tick(doc.Cycles),
		Insts:          doc.Insts,
		FlashReadGBps:  doc.FlashReadGBps,
		FlashWriteGBps: doc.FlashWriteGBps,
		PlaneWrites:    doc.PlaneWrites,
		L2HitRate:      doc.L2HitRate,
		TLBHitRate:     doc.TLBHitRate,
		Extra:          doc.Extra,
	}, nil
}
