package report

import (
	"bytes"
	"strings"
	"testing"

	"zng/internal/experiments"
)

// docTestOptions shrinks the docs run to one pair so the composer
// tests stay cheap; the full 12-pair run is exercised by the CI
// docs-freshness job.
func docTestOptions() experiments.Options {
	o := experiments.TestOptions()
	o.Mixes = o.Mixes[:1]
	return o
}

// TestExperimentsDocDeterministic renders EXPERIMENTS.md twice at a
// fixed seed/scale and demands identical bytes — the property that
// lets CI `git diff` the generated docs.
func TestExperimentsDocDeterministic(t *testing.T) {
	o := docTestOptions()
	a, dsA, err := Experiments(o)
	if err != nil {
		t.Fatal(err)
	}
	// Swap in a fresh simulation memo so the second render re-simulates
	// from scratch; without this the byte-equality would only test the
	// composer, not the simulator's determinism.
	o.Runner = experiments.NewMemo()
	b, dsB, err := Experiments(o)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("EXPERIMENTS.md not byte-stable across runs")
	}
	if dsA != dsB {
		t.Errorf("verdict stats not stable: %+v vs %+v", dsA, dsB)
	}
	if dsA.Checked != len(experiments.Registry()) {
		t.Errorf("checked %d figures, registry has %d", dsA.Checked, len(experiments.Registry()))
	}
	if dsA.Passed+dsA.Failed != dsA.Checked {
		t.Errorf("verdicts don't add up: %+v", dsA)
	}
}

// TestExperimentsDocContent checks the composer's contract: every
// registered figure appears with its paper claim, a verdict, and its
// measured table.
func TestExperimentsDocContent(t *testing.T) {
	doc, _, err := Experiments(docTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := string(doc)
	for _, f := range experiments.Registry() {
		if !strings.Contains(s, "(`"+f.ID+"`)") {
			t.Errorf("missing section for %s", f.ID)
		}
		if !strings.Contains(s, f.Claim) {
			t.Errorf("missing claim for %s", f.ID)
		}
	}
	if !strings.Contains(s, "**Verdict: ") {
		t.Error("no verdicts rendered")
	}
	if !strings.Contains(s, "GENERATED FILE") {
		t.Error("missing generated-file banner")
	}
	// The claim column appears alongside measured values: spot-check
	// that Fig. 10's table header made it in next to its claim.
	if !strings.Contains(s, "| workload | Hetero |") {
		t.Error("Fig. 10 measured table missing")
	}
}

func TestDesignDocContent(t *testing.T) {
	s := string(Design())
	for _, want := range []string{
		"## Simulation engine",
		"## Workload model",
		"## Flash, FTL and the SSD module",
		"## MMU, caches and the ZnG optimizations",
		"## Platforms",
		"## Experiments and reporting",
		"## Serving: result store and simulation service",
		"## Figure and ablation inventory (generated)",
		"GENERATED FILE",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("DESIGN.md missing %q", want)
		}
	}
	for _, f := range experiments.Registry() {
		if !strings.Contains(s, "`"+f.ID+"`") {
			t.Errorf("inventory missing %s", f.ID)
		}
		if !strings.Contains(s, "`experiments."+f.Driver+"`") {
			t.Errorf("inventory missing driver %s", f.Driver)
		}
	}
}
