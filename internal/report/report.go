// Package report renders the experiment drivers' stats.Table values
// to Markdown, CSV and JSON, and composes the repository's generated
// documents: docs/EXPERIMENTS.md (paper-vs-measured for every
// registered figure, with the shape check's PASS/FAIL verdict) and
// docs/DESIGN.md (authored architecture prose plus the generated
// figure/ablation inventory).
//
// All three emitters are deterministic: cells are the already-
// formatted strings stats.Table holds (fixed float trimming), JSON
// key order is fixed by struct declaration, and nothing here consults
// the clock or iterates a map — so `zngfig -fig docs` is byte-stable
// across runs and CI can diff the generated docs against the
// committed ones.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strings"

	"zng/internal/stats"
)

// Markdown renders the table as a GitHub-flavored Markdown document
// fragment: a level-3 heading carrying the title, then the table.
func Markdown(t *stats.Table) string {
	var b strings.Builder
	if t.Title() != "" {
		b.WriteString("### ")
		b.WriteString(t.Title())
		b.WriteString("\n\n")
	}
	b.WriteString(markdownTable(t))
	return b.String()
}

// markdownTable renders just the GFM table, for composers that manage
// their own headings.
func markdownTable(t *stats.Table) string {
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for _, c := range cells {
			b.WriteByte(' ')
			b.WriteString(mdEscape(c))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	header := t.Header()
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for r := 0; r < t.Rows(); r++ {
		writeRow(padRow(t.Row(r), len(header)))
	}
	return b.String()
}

// mdEscape protects cell text that would break a GFM table row.
func mdEscape(s string) string {
	s = strings.ReplaceAll(s, "|", `\|`)
	s = strings.ReplaceAll(s, "\n", " ")
	if s == "" {
		return " "
	}
	return s
}

// CSV renders the table as RFC 4180 CSV prefixed with a `# title`
// comment line, so concatenated tables (zngfig -fig all -format csv)
// stay separable.
func CSV(t *stats.Table) string {
	var b strings.Builder
	if t.Title() != "" {
		b.WriteString("# ")
		b.WriteString(t.Title())
		b.WriteByte('\n')
	}
	w := csv.NewWriter(&b)
	header := t.Header()
	w.Write(header)
	for r := 0; r < t.Rows(); r++ {
		w.Write(padRow(t.Row(r), len(header)))
	}
	w.Flush()
	return b.String()
}

// tableJSON fixes the JSON document's key order by declaration.
// Cells stay strings: stats.Table already applied the deterministic
// float formatting, so re-parsing would only reintroduce formatting
// ambiguity.
type tableJSON struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// toDoc converts a table to its JSON document form, shared by the
// single-table and array emitters so their shapes cannot diverge.
func toDoc(t *stats.Table) tableJSON {
	doc := tableJSON{Title: t.Title(), Header: t.Header(), Rows: make([][]string, t.Rows())}
	for r := 0; r < t.Rows(); r++ {
		doc.Rows[r] = padRow(t.Row(r), len(doc.Header))
	}
	return doc
}

// JSON renders the table as an indented JSON document with a trailing
// newline.
func JSON(t *stats.Table) []byte {
	out, err := json.MarshalIndent(toDoc(t), "", "  ")
	if err != nil {
		// Strings and slices of strings cannot fail to marshal.
		panic(err)
	}
	return append(out, '\n')
}

// DecodeTable parses a document JSON produced back into a table — the
// client half of the campaign API, so zngsweep renders a
// coordinator-folded matrix through the same emitters a local run
// uses. Cells are already-formatted strings (AddRow passes strings
// through verbatim), so JSON(DecodeTable(JSON(t))) is byte-identical.
func DecodeTable(b []byte) (*stats.Table, error) {
	var doc tableJSON
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("report: decoding table: %w", err)
	}
	t := stats.NewTable(doc.Title, doc.Header...)
	for _, row := range doc.Rows {
		cells := make([]any, len(row))
		for i, c := range row {
			cells[i] = c
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// JSONAll renders several tables as one JSON array, so multi-figure
// output (zngfig -fig all -format json) stays a single parseable
// document instead of concatenated values.
func JSONAll(ts []*stats.Table) []byte {
	docs := make([]tableJSON, len(ts))
	for i, t := range ts {
		docs[i] = toDoc(t)
	}
	out, err := json.MarshalIndent(docs, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}

// padRow right-pads a short row with empty cells to the header width,
// so every emitted record is rectangular.
func padRow(row []string, n int) []string {
	for len(row) < n {
		row = append(row, "")
	}
	return row
}
