package report

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"zng/internal/experiments"
	"zng/internal/stats"
)

// Formats lists the supported rendering formats — the single source
// of truth for Render and for CLI flag validation.
func Formats() []string { return []string{"md", "csv", "json"} }

// Render formats a table in the named format: "md", "csv" or "json".
func Render(t *stats.Table, format string) ([]byte, error) {
	switch format {
	case "md":
		return []byte(Markdown(t)), nil
	case "csv":
		return []byte(CSV(t)), nil
	case "json":
		return JSON(t), nil
	}
	return nil, fmt.Errorf("unknown format %q (valid: %s)", format, strings.Join(Formats(), ", "))
}

// generatedBanner marks both docs as build artifacts. CI regenerates
// them and fails on any diff, so hand edits cannot survive.
const generatedBanner = "<!-- GENERATED FILE — do not edit by hand.\n" +
	"     Regenerate with `go run ./cmd/zngfig -fig docs -out docs`;\n" +
	"     the CI docs-freshness job fails if this file drifts from the\n" +
	"     simulator's output. -->"

// DocStats summarizes the shape-check verdicts of one Experiments
// composition, so callers (zngfig, CI) can fail loudly on a shape
// regression instead of silently committing a FAIL into the docs.
type DocStats struct {
	Passed  int
	Failed  int
	Checked int
}

// Experiments runs every registered figure through the memoized
// simulation cache and composes docs/EXPERIMENTS.md: for each figure,
// the paper's claim, the qualitative shape this reproduction asserts,
// the shape check's verdict, and the measured table itself.
func Experiments(o experiments.Options) ([]byte, DocStats, error) {
	reg := experiments.Registry()
	type rendered struct {
		fig     experiments.Figure
		table   *stats.Table
		verdict string
	}
	all := make([]rendered, 0, len(reg))
	var ds DocStats
	for _, f := range reg {
		t, err := f.Run(o)
		if err != nil {
			return nil, ds, fmt.Errorf("%s: %w", f.ID, err)
		}
		// A nil Check renders as n/a and stays out of the tally, so
		// the headline count and the per-figure verdicts can never
		// disagree.
		verdict := "n/a (no shape check)"
		if f.Check != nil {
			ds.Checked++
			if err := f.Check(t); err != nil {
				verdict = "FAIL — " + err.Error()
				ds.Failed++
			} else {
				verdict = "PASS"
				ds.Passed++
			}
		}
		all = append(all, rendered{f, t, verdict})
	}

	var b strings.Builder
	b.WriteString("# EXPERIMENTS — paper vs. measured\n\n")
	b.WriteString(generatedBanner)
	b.WriteString("\n\n")
	fmt.Fprintf(&b, `Every registered table, figure and ablation of the ZnG reproduction,
regenerated from the simulator: the paper's claim, the qualitative
shape this codebase asserts about its own measurement, the shape
check's verdict, and the measured series. Simulated figures ran at
trace scale %s under the docs regime (%d SMs, L2s scaled down with the
traces so cache pressure stays realistic — see
`+"`experiments.DocsOptions`"+`) over %d co-run workloads; scale-free
figures derive from the Table I configuration alone. Absolute numbers
are not comparable to the authors' MacSim testbed — the substrate is a
from-scratch simulator with synthetic traces — the shapes are the
reproduction target.

Shape checks passing: **%d of %d**.

`, stats.FormatFloat(o.Scale), o.Cfg.GPU.SMs, len(o.Mixes), ds.Passed, ds.Checked)

	b.WriteString("## Summary\n\n")
	sum := stats.NewTable("", "id", "paper ref", "shape check", "claim")
	for _, r := range all {
		v := r.verdict
		if i := strings.Index(v, " — "); i > 0 {
			v = v[:i] // the full reason appears in the figure's section
		}
		sum.AddRow("`"+r.fig.ID+"`", r.fig.Ref, v, r.fig.Claim)
	}
	b.WriteString(markdownTable(sum))
	b.WriteByte('\n')

	for _, r := range all {
		fmt.Fprintf(&b, "## %s — %s (`%s`)\n\n", r.fig.Ref, r.fig.Title, r.fig.ID)
		fmt.Fprintf(&b, "**Paper claim.** %s\n\n", r.fig.Claim)
		fmt.Fprintf(&b, "**Asserted shape.** %s\n\n", r.fig.Shape)
		fmt.Fprintf(&b, "**Verdict: %s**", r.verdict)
		if r.fig.ScaleFree {
			b.WriteString(" _(scale-free)_")
		}
		b.WriteString("\n\n")
		b.WriteString(markdownTable(r.table))
		b.WriteByte('\n')
	}
	return []byte(b.String()), ds, nil
}

// Design composes docs/DESIGN.md: the authored architecture prose of
// design.go plus the figure/ablation inventory generated from the
// registry.
func Design() []byte {
	var b strings.Builder
	b.WriteString("# DESIGN — simulator architecture\n\n")
	b.WriteString(generatedBanner)
	b.WriteString("\n\n")
	b.WriteString(designProse)
	b.WriteString("\n## Figure and ablation inventory (generated)\n\n")
	b.WriteString("One registry entry per evaluated table/figure (`experiments.Registry`);\n")
	b.WriteString("`zngfig -fig <id>` regenerates any of them, and\n")
	b.WriteString("[EXPERIMENTS.md](EXPERIMENTS.md) records paper-vs-measured for each.\n\n")
	inv := stats.NewTable("", "id", "driver", "paper ref", "title", "inputs")
	for _, f := range experiments.Registry() {
		inputs := "traces at -scale"
		if f.ScaleFree {
			inputs = "Table I config only"
		}
		inv.AddRow("`"+f.ID+"`", "`experiments."+f.Driver+"`", f.Ref, f.Title, inputs)
	}
	b.WriteString(markdownTable(inv))
	return []byte(b.String())
}

// WriteDocs regenerates both generated documents under dir (creating
// it if needed): EXPERIMENTS.md from a full registry run under o, and
// DESIGN.md. The returned DocStats lets the caller turn FAIL verdicts
// into a non-zero exit — the files are still written first, so a
// failing reproduction is recorded honestly while CI goes red.
func WriteDocs(dir string, o experiments.Options) (DocStats, error) {
	exp, ds, err := Experiments(o)
	if err != nil {
		return ds, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ds, err
	}
	if err := os.WriteFile(filepath.Join(dir, "EXPERIMENTS.md"), exp, 0o644); err != nil {
		return ds, err
	}
	return ds, os.WriteFile(filepath.Join(dir, "DESIGN.md"), Design(), 0o644)
}
