package report

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zng/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleTable exercises the emitters' edge cases: float trimming,
// a cell containing a pipe, an empty trailing cell, and a short row.
func sampleTable() *stats.Table {
	t := stats.NewTable("Golden: sample table", "name", "value", "note")
	t.AddRow("alpha", 1.0, "first")
	t.AddRow("beta", 0.125, "pipe|cell")
	t.AddRow("gamma", 12345.678, "")
	t.AddRow("short", 42)
	return t
}

func TestGoldenEmitters(t *testing.T) {
	for _, tc := range []struct {
		format string
		got    []byte
	}{
		{"md", []byte(Markdown(sampleTable()))},
		{"csv", []byte(CSV(sampleTable()))},
		{"json", JSON(sampleTable())},
	} {
		path := filepath.Join("testdata", "sample."+tc.format+".golden")
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run `go test ./internal/report -update` to create)", tc.format, err)
		}
		if !bytes.Equal(tc.got, want) {
			t.Errorf("%s output drifted from golden:\n--- got ---\n%s\n--- want ---\n%s",
				tc.format, tc.got, want)
		}
	}
}

// TestEmittersByteStable re-renders the same table and demands
// identical bytes — the determinism the docs-freshness CI job relies
// on at the emitter level.
func TestEmittersByteStable(t *testing.T) {
	for _, format := range []string{"md", "csv", "json"} {
		a, err := Render(sampleTable(), format)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Render(sampleTable(), format)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s rendering not byte-stable", format)
		}
	}
}

func TestRenderUnknownFormat(t *testing.T) {
	if _, err := Render(sampleTable(), "xml"); err == nil {
		t.Error("want error for unknown format")
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	md := Markdown(sampleTable())
	if !strings.Contains(md, `pipe\|cell`) {
		t.Errorf("pipe not escaped:\n%s", md)
	}
	// Every table line must have the same number of columns.
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(line, "|") {
			if n := strings.Count(strings.ReplaceAll(line, `\|`, ""), "|"); n != 4 {
				t.Errorf("ragged row (%d pipes): %q", n, line)
			}
		}
	}
}

func TestCSVRoundTrips(t *testing.T) {
	out := CSV(sampleTable())
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	// Comment title + header + 4 data rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "# Golden") {
		t.Errorf("missing title comment: %q", lines[0])
	}
	if lines[1] != "name,value,note" {
		t.Errorf("header = %q", lines[1])
	}
	// The short row is padded to the header width.
	if lines[5] != "short,42," {
		t.Errorf("short row = %q, want padded", lines[5])
	}
}

func TestJSONAllIsOneDocument(t *testing.T) {
	out := JSONAll([]*stats.Table{sampleTable(), sampleTable()})
	var docs []struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal(out, &docs); err != nil {
		t.Fatalf("multi-table JSON is not one parseable document: %v", err)
	}
	if len(docs) != 2 || docs[0].Title != "Golden: sample table" || len(docs[1].Rows) != 4 {
		t.Errorf("unexpected array content: %+v", docs)
	}
}

func TestDecodeTableRoundTrip(t *testing.T) {
	first := JSON(sampleTable())
	decoded, err := DecodeTable(first)
	if err != nil {
		t.Fatal(err)
	}
	if got := JSON(decoded); !bytes.Equal(first, got) {
		t.Fatalf("JSON(DecodeTable(JSON(t))) not byte-identical:\n%s\nvs\n%s", first, got)
	}
	if _, err := DecodeTable([]byte("not json")); err == nil {
		t.Fatal("DecodeTable accepted garbage")
	}
}

func TestJSONShape(t *testing.T) {
	out := string(JSON(sampleTable()))
	for _, want := range []string{`"title"`, `"header"`, `"rows"`, `"pipe|cell"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s:\n%s", want, out)
		}
	}
	// Stable key order: title before header before rows.
	if !(strings.Index(out, `"title"`) < strings.Index(out, `"header"`) &&
		strings.Index(out, `"header"`) < strings.Index(out, `"rows"`)) {
		t.Error("JSON key order unstable")
	}
}
