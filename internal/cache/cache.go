// Package cache implements the set-associative caches of the
// simulated GPU: the per-SM L1D, the shared L2 (6 MB SRAM in the
// baselines, 24 MB STT-MRAM configured read-only in ZnG), and the
// page-granularity DRAM data buffer of the HybridGPU SSD module.
//
// The L2 tag array carries the ZnG extension bits of Section IV-B: a
// prefetch bit marking lines filled by the read-prefetch unit and an
// accessed bit recording demand hits, which together let the access
// monitor measure prefetch waste. Lines can also be pinned, the
// mechanism the flash-register thrashing checker uses to spill excess
// dirty data into L2.
package cache

import (
	"zng/internal/config"
	"zng/internal/mem"
	"zng/internal/sim"
	"zng/internal/stats"
)

type line struct {
	tag      uint64
	valid    bool
	dirty    bool
	prefetch bool // filled by the prefetcher, ZnG tag extension
	accessed bool // demand-hit since fill, ZnG tag extension
	pinned   bool
	stamp    uint64 // LRU timestamp
}

type mshrEntry struct {
	waiters []*mem.Request
}

// EvictInfo describes an evicted line for the access monitor.
type EvictInfo struct {
	Addr     uint64
	Prefetch bool
	Accessed bool
	Dirty    bool
}

// Cache is one cache level. It implements mem.Memory.
type Cache struct {
	Name string

	eng  *sim.Engine
	cfg  config.Cache
	next mem.Memory

	banks []*sim.Resource
	sets  [][]line // [bank*cfg.Sets + set][way]
	clock uint64

	mshr     map[uint64]*mshrEntry
	overflow []*mem.Request // misses waiting for a free MSHR

	// OnEvict, if set, observes every eviction (the ZnG access monitor).
	OnEvict func(EvictInfo)
	// OnDemandMiss, if set, observes demand read misses (the ZnG
	// predictor's cutoff test hooks here).
	OnDemandMiss func(*mem.Request)

	// Statistics.
	Hits, Misses, MergedMisses stats.Counter
	WriteHits, WriteMisses     stats.Counter
	Evictions, Writebacks      stats.Counter
	PrefEvicted, PrefUnused    stats.Counter
	PinnedNow                  int
}

// New creates a cache in front of next. next must not be nil.
func New(eng *sim.Engine, cfg config.Cache, next mem.Memory, name string) *Cache {
	if next == nil {
		panic("cache: next level must not be nil")
	}
	nb := cfg.Banks
	if nb < 1 {
		nb = 1
	}
	c := &Cache{
		Name: name,
		eng:  eng,
		cfg:  cfg,
		next: next,
		sets: make([][]line, nb*cfg.Sets),
		mshr: make(map[uint64]*mshrEntry),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	c.banks = make([]*sim.Resource, nb)
	for i := range c.banks {
		c.banks[i] = sim.NewResource(eng)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() config.Cache { return c.cfg }

func (c *Cache) lineAddr(addr uint64) uint64 { return mem.LineAddr(addr, c.cfg.LineBytes) }

func (c *Cache) locate(lineAddr uint64) (bankIdx int, setIdx int) {
	g := lineAddr / uint64(c.cfg.LineBytes)
	nb := uint64(len(c.banks))
	bankIdx = int(g % nb)
	setIdx = int((g / nb) % uint64(c.cfg.Sets))
	return bankIdx, setIdx
}

func (c *Cache) set(lineAddr uint64) []line {
	b, s := c.locate(lineAddr)
	return c.sets[b*c.cfg.Sets+s]
}

// Access services r: hit, MSHR merge, or miss to the next level.
func (c *Cache) Access(r *mem.Request) {
	la := c.lineAddr(r.Addr)
	bankIdx, _ := c.locate(la)
	bank := c.banks[bankIdx]

	// One cycle of bank occupancy models the pipelined tag lookup; the
	// outcome is resolved when the bank slot is granted.
	bank.Acquire(1, func() { c.resolve(r, la) })
}

func (c *Cache) resolve(r *mem.Request, la uint64) {
	c.clock++
	set := c.set(la)
	way := findLine(set, la)

	if r.Write {
		c.resolveWrite(r, la, set, way)
		return
	}

	if way >= 0 {
		ln := &set[way]
		ln.accessed = true
		ln.stamp = c.clock
		c.Hits.Inc()
		c.eng.Schedule(c.cfg.ReadLat, r.Complete)
		return
	}

	// Read miss.
	c.Misses.Inc()
	if !r.Prefetch && c.OnDemandMiss != nil {
		c.OnDemandMiss(r)
	}
	if e, ok := c.mshr[la]; ok {
		c.MergedMisses.Inc()
		e.waiters = append(e.waiters, r)
		return
	}
	if len(c.mshr) >= c.cfg.MSHRs {
		c.overflow = append(c.overflow, r)
		return
	}
	c.issueMiss(r, la)
}

func (c *Cache) resolveWrite(r *mem.Request, la uint64, set []line, way int) {
	if c.cfg.ReadOnly {
		// ZnG read-only L2: writes bypass the cache (they are absorbed
		// by the flash registers); a matching line is invalidated unless
		// pinned there by the thrashing checker, in which case the write
		// is absorbed by the pinned line (Section III-C).
		if way >= 0 && set[way].pinned {
			set[way].dirty = true
			set[way].stamp = c.clock
			c.WriteHits.Inc()
			c.eng.Schedule(c.cfg.WriteLat, r.Complete)
			return
		}
		if way >= 0 {
			set[way].valid = false
		}
		c.WriteMisses.Inc()
		c.next.Access(r)
		return
	}

	if way >= 0 {
		ln := &set[way]
		ln.stamp = c.clock
		ln.accessed = true
		c.WriteHits.Inc()
		if c.cfg.WriteBack {
			ln.dirty = true
			c.eng.Schedule(c.cfg.WriteLat, r.Complete)
		} else {
			// Write-through: update the line, forward the store.
			c.next.Access(r)
		}
		return
	}

	c.WriteMisses.Inc()
	if !c.cfg.WriteBack {
		// Write-through, no-allocate (GPU L1 policy).
		c.next.Access(r)
		return
	}
	// Write-allocate: fetch the line, then dirty it.
	fill := &mem.Request{
		Addr: la, Size: c.cfg.LineBytes, PC: r.PC, Warp: r.Warp, SM: r.SM,
		Done: func() {
			c.install(la, false)
			if w := findLine(c.set(la), la); w >= 0 {
				c.set(la)[w].dirty = true
			}
			c.eng.Schedule(c.cfg.WriteLat, r.Complete)
		},
	}
	c.next.Access(fill)
}

func (c *Cache) issueMiss(r *mem.Request, la uint64) {
	c.mshr[la] = &mshrEntry{waiters: []*mem.Request{r}}
	fill := &mem.Request{
		Addr: la, Size: c.cfg.LineBytes, PC: r.PC, Warp: r.Warp, SM: r.SM,
		Prefetch: r.Prefetch,
		Done:     func() { c.fill(la) },
	}
	c.next.Access(fill)
}

// fill completes an outstanding miss: installs the line, wakes the
// waiters, and admits overflow misses into the freed MSHR.
func (c *Cache) fill(la uint64) {
	e := c.mshr[la]
	delete(c.mshr, la)
	c.install(la, false)
	if e != nil {
		for _, w := range e.waiters {
			c.eng.Schedule(c.cfg.ReadLat, w.Complete)
		}
	}
	c.drainOverflow()
}

func (c *Cache) drainOverflow() {
	for len(c.overflow) > 0 && len(c.mshr) < c.cfg.MSHRs {
		r := c.overflow[0]
		c.overflow = c.overflow[1:]
		la := c.lineAddr(r.Addr)
		if w := findLine(c.set(la), la); w >= 0 {
			// Filled while queued: now a hit.
			c.Hits.Inc()
			c.eng.Schedule(c.cfg.ReadLat, r.Complete)
			continue
		}
		if e, ok := c.mshr[la]; ok {
			e.waiters = append(e.waiters, r)
			continue
		}
		c.issueMiss(r, la)
	}
}

// install places lineAddr into its set, evicting if necessary.
// Returns false if every way is pinned and the line was bypassed.
func (c *Cache) install(la uint64, asPrefetch bool) bool {
	c.clock++
	set := c.set(la)
	if w := findLine(set, la); w >= 0 {
		// Already present (e.g. prefetch raced a demand fill): merge bits.
		if !asPrefetch {
			set[w].accessed = true
		}
		set[w].stamp = c.clock
		return true
	}
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		var oldest uint64 = ^uint64(0)
		for i := range set {
			if set[i].pinned {
				continue
			}
			if set[i].stamp < oldest {
				oldest = set[i].stamp
				victim = i
			}
		}
	}
	if victim < 0 {
		return false // every way pinned: bypass
	}
	if set[victim].valid {
		c.evict(&set[victim])
	}
	set[victim] = line{
		tag: la, valid: true,
		prefetch: asPrefetch, accessed: !asPrefetch,
		stamp: c.clock,
	}
	return true
}

func (c *Cache) evict(ln *line) {
	c.Evictions.Inc()
	if ln.prefetch {
		c.PrefEvicted.Inc()
		if !ln.accessed {
			c.PrefUnused.Inc()
		}
	}
	if ln.dirty && c.cfg.WriteBack {
		c.Writebacks.Inc()
		wb := &mem.Request{Addr: ln.tag, Size: c.cfg.LineBytes, Write: true}
		c.next.Access(wb)
	}
	if ln.pinned {
		c.PinnedNow--
	}
	if c.OnEvict != nil {
		c.OnEvict(EvictInfo{Addr: ln.tag, Prefetch: ln.prefetch, Accessed: ln.accessed, Dirty: ln.dirty})
	}
}

// InstallPrefetch installs a prefetched line (prefetch bit set,
// accessed bit clear). It reports whether the line was installed.
func (c *Cache) InstallPrefetch(addr uint64) bool {
	return c.install(c.lineAddr(addr), true)
}

// Contains reports whether addr's line is resident (for tests and the
// prefetch cutoff).
func (c *Cache) Contains(addr uint64) bool {
	la := c.lineAddr(addr)
	return findLine(c.set(la), la) >= 0
}

// PinDirty installs addr's line as pinned dirty data — the thrashing
// checker's L2 spill (Section III-C). It reports whether a way was
// available.
func (c *Cache) PinDirty(addr uint64) bool {
	la := c.lineAddr(addr)
	if !c.install(la, false) {
		return false
	}
	set := c.set(la)
	w := findLine(set, la)
	if !set[w].pinned {
		set[w].pinned = true
		c.PinnedNow++
	}
	set[w].dirty = true
	return true
}

// Unpin releases a pinned line so normal replacement applies again.
func (c *Cache) Unpin(addr uint64) {
	la := c.lineAddr(addr)
	set := c.set(la)
	if w := findLine(set, la); w >= 0 && set[w].pinned {
		set[w].pinned = false
		c.PinnedNow--
	}
}

// HitRate reports demand read hit rate.
func (c *Cache) HitRate() float64 {
	t := c.Hits.Value() + c.Misses.Value()
	if t == 0 {
		return 0
	}
	return float64(c.Hits.Value()) / float64(t)
}

func findLine(set []line, la uint64) int {
	for i := range set {
		if set[i].valid && set[i].tag == la {
			return i
		}
	}
	return -1
}
