package cache

import (
	"testing"
	"testing/quick"

	"zng/internal/config"
	"zng/internal/mem"
	"zng/internal/sim"
)

// backend is a fixed-latency memory recording the requests it saw.
type backend struct {
	eng      *sim.Engine
	lat      sim.Tick
	reqs     []mem.Request
	inFlight int
}

func (b *backend) Access(r *mem.Request) {
	b.reqs = append(b.reqs, *r)
	b.inFlight++
	b.eng.Schedule(b.lat, func() { b.inFlight--; r.Complete() })
}

func (b *backend) reads() int {
	n := 0
	for _, r := range b.reqs {
		if !r.Write {
			n++
		}
	}
	return n
}

func smallCfg() config.Cache {
	return config.Cache{Sets: 4, Ways: 2, LineBytes: 128, Banks: 1,
		ReadLat: 1, WriteLat: 1, MSHRs: 4, WriteBack: true}
}

func newTB(cfg config.Cache) (*sim.Engine, *Cache, *backend) {
	eng := sim.NewEngine()
	be := &backend{eng: eng, lat: 100}
	return eng, New(eng, cfg, be, "test"), be
}

func read(c *Cache, addr uint64, done *int) {
	c.Access(&mem.Request{Addr: addr, Size: 128, Done: func() { *done++ }})
}

func write(c *Cache, addr uint64, done *int) {
	c.Access(&mem.Request{Addr: addr, Size: 128, Write: true, Done: func() { *done++ }})
}

func TestMissThenHit(t *testing.T) {
	eng, c, be := newTB(smallCfg())
	done := 0
	read(c, 0x1000, &done)
	eng.Run()
	if done != 1 || be.reads() != 1 {
		t.Fatalf("after miss: done=%d backendReads=%d", done, be.reads())
	}
	if eng.Now() < 100 {
		t.Errorf("miss completed at %d, want >= backend latency", eng.Now())
	}
	start := eng.Now()
	read(c, 0x1000, &done)
	eng.Run()
	if done != 2 || be.reads() != 1 {
		t.Fatalf("after hit: done=%d backendReads=%d", done, be.reads())
	}
	if eng.Now()-start > 10 {
		t.Errorf("hit took %d ticks, want fast", eng.Now()-start)
	}
	if c.Hits.Value() != 1 || c.Misses.Value() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits.Value(), c.Misses.Value())
	}
}

func TestSameLineDifferentOffsetsHit(t *testing.T) {
	eng, c, be := newTB(smallCfg())
	done := 0
	read(c, 0x1000, &done)
	eng.Run()
	read(c, 0x1040, &done) // same 128 B line
	eng.Run()
	if be.reads() != 1 {
		t.Errorf("backend reads = %d, want 1", be.reads())
	}
	if done != 2 {
		t.Errorf("done = %d", done)
	}
}

func TestMSHRMerging(t *testing.T) {
	eng, c, be := newTB(smallCfg())
	done := 0
	read(c, 0x2000, &done)
	read(c, 0x2010, &done) // same line while miss outstanding
	read(c, 0x2020, &done)
	eng.Run()
	if be.reads() != 1 {
		t.Errorf("backend reads = %d, want 1 (merged)", be.reads())
	}
	if done != 3 {
		t.Errorf("done = %d, want 3", done)
	}
	if c.MergedMisses.Value() != 2 {
		t.Errorf("merged = %d, want 2", c.MergedMisses.Value())
	}
}

func TestMSHROverflowDrains(t *testing.T) {
	cfg := smallCfg()
	cfg.MSHRs = 2
	eng, c, be := newTB(cfg)
	done := 0
	// 6 distinct lines: 2 in MSHRs, 4 overflow.
	for i := 0; i < 6; i++ {
		read(c, uint64(i)*0x1000, &done)
	}
	eng.Run()
	if done != 6 {
		t.Fatalf("done = %d, want 6 (overflow must drain)", done)
	}
	if be.reads() != 6 {
		t.Errorf("backend reads = %d, want 6", be.reads())
	}
}

func TestLRUEviction(t *testing.T) {
	eng, c, be := newTB(smallCfg()) // 4 sets x 2 ways, 1 bank
	done := 0
	// Three lines mapping to the same set (stride = sets*lineBytes = 512).
	a, b2, d := uint64(0), uint64(512), uint64(1024)
	read(c, a, &done)
	eng.Run()
	read(c, b2, &done)
	eng.Run()
	read(c, a, &done) // touch a so b2 is LRU
	eng.Run()
	read(c, d, &done) // evicts b2
	eng.Run()
	if !c.Contains(a) || c.Contains(b2) || !c.Contains(d) {
		t.Errorf("LRU eviction wrong: a=%v b=%v d=%v", c.Contains(a), c.Contains(b2), c.Contains(d))
	}
	_ = be
}

func TestWriteThroughNoAllocate(t *testing.T) {
	cfg := smallCfg()
	cfg.WriteBack = false
	eng, c, be := newTB(cfg)
	done := 0
	write(c, 0x3000, &done)
	eng.Run()
	if done != 1 {
		t.Fatalf("done = %d", done)
	}
	if c.Contains(0x3000) {
		t.Error("write-through cache must not allocate on write miss")
	}
	if len(be.reqs) != 1 || !be.reqs[0].Write {
		t.Errorf("backend should see the store: %+v", be.reqs)
	}
}

func TestWriteBackAllocateAndWriteback(t *testing.T) {
	eng, c, be := newTB(smallCfg())
	done := 0
	write(c, 0, &done) // allocate + dirty
	eng.Run()
	if !c.Contains(0) {
		t.Fatal("write-allocate failed")
	}
	// Evict line 0 by filling the set with two more lines.
	read(c, 512, &done)
	eng.Run()
	read(c, 1024, &done)
	eng.Run()
	if c.Contains(0) {
		t.Fatal("line 0 should be evicted")
	}
	foundWB := false
	for _, r := range be.reqs {
		if r.Write && r.Addr == 0 && r.Size == 128 {
			foundWB = true
		}
	}
	if !foundWB {
		t.Error("dirty eviction must write back to the next level")
	}
	if c.Writebacks.Value() != 1 {
		t.Errorf("writebacks = %d", c.Writebacks.Value())
	}
}

func TestReadOnlyCacheWriteBypassAndInvalidate(t *testing.T) {
	cfg := smallCfg()
	cfg.ReadOnly = true
	cfg.WriteBack = false
	eng, c, be := newTB(cfg)
	done := 0
	read(c, 0x4000, &done)
	eng.Run()
	if !c.Contains(0x4000) {
		t.Fatal("read fill failed")
	}
	write(c, 0x4000, &done)
	eng.Run()
	if c.Contains(0x4000) {
		t.Error("write must invalidate the line in a read-only cache")
	}
	sawStore := false
	for _, r := range be.reqs {
		if r.Write {
			sawStore = true
		}
	}
	if !sawStore {
		t.Error("store must be forwarded to the backend")
	}
}

func TestPinnedLineAbsorbsWrites(t *testing.T) {
	cfg := smallCfg()
	cfg.ReadOnly = true
	eng, c, be := newTB(cfg)
	if !c.PinDirty(0x5000) {
		t.Fatal("PinDirty failed")
	}
	before := len(be.reqs)
	done := 0
	write(c, 0x5000, &done)
	eng.Run()
	if done != 1 {
		t.Fatal("pinned write did not complete")
	}
	if len(be.reqs) != before {
		t.Error("pinned line must absorb the store locally")
	}
	if c.PinnedNow != 1 {
		t.Errorf("PinnedNow = %d", c.PinnedNow)
	}
	c.Unpin(0x5000)
	if c.PinnedNow != 0 {
		t.Errorf("PinnedNow after Unpin = %d", c.PinnedNow)
	}
}

func TestAllWaysPinnedBypasses(t *testing.T) {
	eng, c, _ := newTB(smallCfg()) // 2 ways
	c.PinDirty(0)
	c.PinDirty(512)
	// Set is fully pinned: a new install must bypass.
	if c.install(1024, false) {
		t.Error("install into fully pinned set should bypass")
	}
	done := 0
	read(c, 1024, &done)
	eng.Run()
	if done != 1 {
		t.Error("bypassed read must still complete")
	}
	if c.Contains(1024) {
		t.Error("bypassed line must not displace pinned lines")
	}
}

func TestPrefetchBits(t *testing.T) {
	eng, c, _ := newTB(smallCfg())
	c.InstallPrefetch(0)
	// Evict it unused: fill the set.
	done := 0
	read(c, 512, &done)
	eng.Run()
	read(c, 1024, &done)
	eng.Run()
	if c.PrefEvicted.Value() != 1 || c.PrefUnused.Value() != 1 {
		t.Errorf("pref evicted/unused = %d/%d, want 1/1",
			c.PrefEvicted.Value(), c.PrefUnused.Value())
	}

	// Now a prefetched line that is demand-hit before eviction.
	c.InstallPrefetch(0x10000)
	read(c, 0x10000, &done)
	eng.Run()
	read(c, 0x10000+512, &done)
	eng.Run()
	read(c, 0x10000+1024, &done)
	eng.Run()
	if c.PrefUnused.Value() != 1 {
		t.Errorf("accessed prefetch counted as unused: %d", c.PrefUnused.Value())
	}
}

func TestOnEvictCallback(t *testing.T) {
	eng, c, _ := newTB(smallCfg())
	var infos []EvictInfo
	c.OnEvict = func(e EvictInfo) { infos = append(infos, e) }
	c.InstallPrefetch(0)
	done := 0
	read(c, 512, &done)
	eng.Run()
	read(c, 1024, &done)
	eng.Run()
	if len(infos) != 1 || !infos[0].Prefetch || infos[0].Accessed {
		t.Errorf("evict infos = %+v", infos)
	}
}

func TestOnDemandMissHook(t *testing.T) {
	eng, c, _ := newTB(smallCfg())
	misses := 0
	c.OnDemandMiss = func(*mem.Request) { misses++ }
	done := 0
	read(c, 0, &done)
	c.Access(&mem.Request{Addr: 4096, Size: 128, Prefetch: true, Done: func() { done++ }})
	eng.Run()
	if misses != 1 {
		t.Errorf("demand-miss hook fired %d times, want 1 (prefetches excluded)", misses)
	}
}

func TestBankedCacheDistributes(t *testing.T) {
	cfg := smallCfg()
	cfg.Banks = 4
	eng, c, _ := newTB(cfg)
	done := 0
	for i := 0; i < 8; i++ {
		read(c, uint64(i)*128, &done)
	}
	eng.Run()
	if done != 8 {
		t.Fatalf("done = %d", done)
	}
	// Consecutive lines must land in different banks.
	b0, _ := c.locate(0)
	b1, _ := c.locate(128)
	if b0 == b1 {
		t.Error("consecutive lines mapped to the same bank")
	}
}

// Property: after any sequence of reads, every address read is either
// resident or was evicted — and no set holds duplicate tags.
func TestNoDuplicateTagsProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		eng, c, _ := newTB(smallCfg())
		done := 0
		for _, a := range addrs {
			read(c, uint64(a)*128, &done)
		}
		eng.Run()
		if done != len(addrs) {
			return false
		}
		for _, set := range c.sets {
			seen := map[uint64]bool{}
			for _, ln := range set {
				if !ln.valid {
					continue
				}
				if seen[ln.tag] {
					return false
				}
				seen[ln.tag] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHitRate(t *testing.T) {
	eng, c, _ := newTB(smallCfg())
	done := 0
	read(c, 0, &done)
	eng.Run()
	for i := 0; i < 3; i++ {
		read(c, 0, &done)
		eng.Run()
	}
	if hr := c.HitRate(); hr != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", hr)
	}
}

func TestSTTMRAMWriteLatency(t *testing.T) {
	// STT-MRAM write-back config: write hits take WriteLat (5), read hits ReadLat (1).
	cfg := smallCfg()
	cfg.WriteLat = 5
	eng, c, _ := newTB(cfg)
	done := 0
	write(c, 0, &done) // allocate
	eng.Run()
	t0 := eng.Now()
	write(c, 0, &done) // hit
	eng.Run()
	writeTime := eng.Now() - t0
	t0 = eng.Now()
	read(c, 0, &done)
	eng.Run()
	readTime := eng.Now() - t0
	if writeTime <= readTime {
		t.Errorf("write hit (%d) must be slower than read hit (%d)", writeTime, readTime)
	}
}
