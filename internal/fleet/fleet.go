// Package fleet is the elastic coordination layer over the
// distributed serving stack: a Coordinator that workers register with
// and heartbeat to (the zngd -coordinator worker mode), a dynamic
// dispatch surface over internal/remote that reassigns a dead peer's
// cells and folds newly registered workers into campaigns already
// running, and durable campaigns — the campaign Spec plus a per-cell
// progress journal checkpointed into the store directory under the
// campaign's content-addressed id, so a restarted coordinator (or a
// brand-new one pointed at the same directory) resumes a half-finished
// sweep by re-expanding the spec, serving journaled-done cells from
// the store and dispatching only the remainder.
//
// Determinism is preserved end to end: simulations are pure functions
// of their content-addressed cells, so a campaign that rode out worker
// churn, coordinator restarts and store-served resumption folds the
// byte-identical matrix a single uninterrupted local run produces.
package fleet

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"zng/internal/campaign"
	"zng/internal/config"
	"zng/internal/obs"
	"zng/internal/platform"
	"zng/internal/remote"
	"zng/internal/store"
	"zng/internal/workload"
)

// DefaultTTL is how long a registered worker may go without a
// heartbeat before the coordinator declares it dead, removes it from
// dispatch, and lets its in-flight cells reassign to surviving peers.
const DefaultTTL = 15 * time.Second

// ErrUnknownPeer is returned by Heartbeat for an id the coordinator
// does not know — expired, never registered, or registered with an
// earlier coordinator process. The worker's move is to re-register
// (the Agent does this automatically), which re-joins it to any
// campaign still running.
var ErrUnknownPeer = errors.New("fleet: unknown peer")

// Config parameterizes a Coordinator.
type Config struct {
	// Local runs cells when no worker is live (and when every live
	// worker faults on a cell) — typically the zngd process's own
	// simsvc service, so a coordinator with zero workers degrades to
	// exactly the single-process behavior. Required.
	Local campaign.Runner
	// Store backs campaign checkpoints (under <dir>/campaigns/) and
	// serves journaled-done cells on resume. nil disables durability:
	// campaigns still run under content-addressed ids, they just do not
	// survive the process.
	Store *store.Store
	// TTL is the heartbeat expiry window (0 = DefaultTTL).
	TTL time.Duration
	// Cooldown is how long a faulted peer sits out of dispatch
	// (0 = remote.DefaultCooldown).
	Cooldown time.Duration
	// Timeout overrides the per-request timeout of every peer client
	// (0 = remote.DefaultTimeout).
	Timeout time.Duration
	// Workers bounds a campaign's concurrently in-flight cells
	// (0 = NumCPU).
	Workers int
	// Base is the configuration campaign overrides perturb.
	Base config.Config
	// Tracer, when set, threads span contexts through dispatch: durable
	// campaigns root one trace each, every cell records a dispatch span
	// here, and worker-side spans come back piggybacked on peer
	// replies. nil runs untraced.
	Tracer *obs.Tracer
	// Log receives structured membership events (worker registration,
	// heartbeat expiry with the reassignment fallout). nil discards.
	Log *slog.Logger
}

// Peer is one registered worker's externally visible state.
type Peer struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Load is the backlog the worker last heartbeat (queued + running
	// jobs on its service).
	Load int `json:"load"`
	// AgeMS is how long ago the last heartbeat (or registration)
	// arrived, in milliseconds.
	AgeMS int64 `json:"age_ms"`
}

// Gauges is the fleet block of /metrics.
type Gauges struct {
	// PeersLive is the currently registered, un-expired worker count.
	PeersLive int `json:"peers_live"`
	// PeersDead counts heartbeat expiries since the coordinator
	// started (cumulative; a worker that expires and re-registers
	// counts once per expiry).
	PeersDead uint64 `json:"peers_dead"`
	// CellsReassigned counts cells that faulted on one peer and went
	// back to dispatch for another.
	CellsReassigned uint64 `json:"cells_reassigned"`
	// CampaignsResumed counts campaigns started over a non-empty
	// journal — sweeps that skipped already-done cells.
	CampaignsResumed uint64 `json:"campaigns_resumed"`
}

// peerState is one registered worker.
type peerState struct {
	id       string
	addr     string // normalized base URL (remote.Client.Addr form)
	load     int
	lastBeat time.Time
}

// Coordinator owns the fleet: worker registration and heartbeats on
// one side, campaign dispatch over the live membership on the other.
// It implements campaign.Runner — one cell at a time, dispatched to
// the least-loaded live peer, falling back to the Local runner when
// the fleet is empty or every peer faults — so the durable campaign
// layer (campaigns.go) and any other matrix driver fan out over the
// fleet without knowing it. Safe for concurrent use.
type Coordinator struct {
	local campaign.Runner
	disp  *remote.Dispatcher
	st    *store.Store
	ttl   time.Duration
	camps *Campaigns
	tr    *obs.Tracer  // nil = untraced
	log   *slog.Logger // never nil (NopLogger when unset)

	mu     sync.Mutex
	peers  map[string]*peerState // guarded by mu; peer id -> state
	byAddr map[string]string     // guarded by mu; normalized addr -> peer id
	nextID uint64                // guarded by mu
	dead   uint64                // guarded by mu; cumulative heartbeat expiries
}

// New builds a coordinator. See Config for the knobs; only Local is
// required.
func New(cfg Config) *Coordinator {
	if cfg.Local == nil {
		panic("fleet: coordinator needs a local runner")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	disp := remote.NewDynamic(cfg.Cooldown)
	if cfg.Timeout > 0 {
		disp.SetTimeout(cfg.Timeout)
	}
	if cfg.Tracer != nil {
		disp.SetTracer(cfg.Tracer)
	}
	if cfg.Log == nil {
		cfg.Log = obs.NopLogger()
	}
	c := &Coordinator{
		local:  cfg.Local,
		disp:   disp,
		st:     cfg.Store,
		ttl:    cfg.TTL,
		tr:     cfg.Tracer,
		log:    obs.Sub(cfg.Log, "fleet"),
		peers:  map[string]*peerState{},
		byAddr: map[string]string{},
	}
	c.camps = newCampaigns(c, cfg)
	return c
}

// TTL reports the heartbeat expiry window (the interval hint the
// register reply carries is derived from it).
func (c *Coordinator) TTL() time.Duration { return c.ttl }

// Tracer reports the coordinator's tracer (nil when untraced).
func (c *Coordinator) Tracer() *obs.Tracer { return c.tr }

// Campaigns is the coordinator's durable campaign manager — the
// drop-in replacement for campaign.Manager behind the zngd API.
func (c *Coordinator) Campaigns() *Campaigns { return c.camps }

// Register joins a worker to the fleet under a fresh id and returns
// its peer record. Re-registering an address that is already live
// replaces the old registration (the old id expires immediately) —
// the restarted-worker case — and either way the worker starts
// receiving cells of campaigns already running on the next dispatch.
func (c *Coordinator) Register(addr string) (Peer, error) {
	if addr == "" {
		return Peer{}, errors.New("fleet: register needs an address")
	}
	norm := remote.NewClient(addr).Addr()
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	if old, ok := c.byAddr[norm]; ok {
		// Same address, new registration: the worker restarted (or its
		// agent re-registered after a missed heartbeat). Retire the old
		// identity without counting it dead — the worker is right here.
		delete(c.peers, old)
	}
	c.nextID++
	p := &peerState{
		id:       fmt.Sprintf("p-%d", c.nextID),
		addr:     norm,
		lastBeat: now,
	}
	c.peers[p.id] = p
	c.byAddr[norm] = p.id
	c.disp.AddPeer(norm)
	c.log.Info("worker registered", "peer", p.id, "addr", norm, "peers_live", len(c.peers))
	return peerInfo(p, now), nil
}

// Heartbeat refreshes a worker's liveness and load. An unknown id
// (expired or from a previous coordinator process) fails with
// ErrUnknownPeer; the worker re-registers.
func (c *Coordinator) Heartbeat(id string, load int) error {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	p, ok := c.peers[id]
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownPeer, id)
	}
	p.lastBeat = now
	p.load = load
	return nil
}

// expireLocked retires every peer whose last heartbeat is older than
// the TTL: it leaves the fleet's dispatch rotation, its in-flight
// cells fault on their next round trip and reassign, and the
// cumulative dead counter grows. Expiry is lazy — evaluated on every
// registration, heartbeat, dispatch and snapshot — so the coordinator
// needs no timer goroutine. Caller holds mu.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, p := range c.peers {
		if now.Sub(p.lastBeat) <= c.ttl {
			continue
		}
		delete(c.peers, id)
		if c.byAddr[p.addr] == id {
			delete(c.byAddr, p.addr)
			c.disp.RemovePeer(p.addr)
		}
		c.dead++
		c.log.Warn("worker expired", "peer", id, "addr", p.addr,
			"silent", now.Sub(p.lastBeat).Round(time.Millisecond).String(),
			"peers_live", len(c.peers), "cells_reassigned", c.disp.Reassigned())
	}
}

// Peers snapshots the live fleet, registration order not guaranteed
// (callers sort for display).
func (c *Coordinator) Peers() []Peer {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	out := make([]Peer, 0, len(c.peers))
	for _, p := range c.peers {
		out = append(out, peerInfo(p, now))
	}
	return out
}

func peerInfo(p *peerState, now time.Time) Peer {
	return Peer{ID: p.id, Addr: p.addr, Load: p.load, AgeMS: now.Sub(p.lastBeat).Milliseconds()}
}

// Gauges snapshots the fleet metrics block.
func (c *Coordinator) Gauges() Gauges {
	now := time.Now()
	c.mu.Lock()
	c.expireLocked(now)
	live := len(c.peers)
	dead := c.dead
	c.mu.Unlock()
	return Gauges{
		PeersLive:        live,
		PeersDead:        dead,
		CellsReassigned:  c.disp.Reassigned(),
		CampaignsResumed: c.camps.Resumed(),
	}
}

// Run implements campaign.Runner over the fleet: dispatch the cell to
// the live membership, fall back to the Local runner when the fleet
// is empty or every peer faulted on the cell. A deterministic
// simulation error from a peer is returned as-is — every worker (and
// the local runner) would compute the identical failure.
func (c *Coordinator) Run(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	return c.run(obs.SpanContext{}, kind, mix, scale, cfg)
}

// RunTraced is Run under the caller's span context: each cell records
// a "dispatch" span here (detail: "local", "fleet", or the
// local-fallback reason), the dispatcher's per-attempt peer spans and
// the workers' piggybacked spans nest under it, and a local fallback
// threads the same context into the local runner when it implements
// campaign.TracedRunner. It implements campaign.TracedRunner itself,
// so durable campaigns executed through the coordinator trace end to
// end.
func (c *Coordinator) RunTraced(sc obs.SpanContext, kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	return c.run(sc, kind, mix, scale, cfg)
}

func (c *Coordinator) run(sc obs.SpanContext, kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	now := time.Now()
	c.mu.Lock()
	c.expireLocked(now)
	live := len(c.peers)
	c.mu.Unlock()
	if live == 0 {
		return c.runLocal(sc, "local", kind, mix, scale, cfg)
	}
	span := c.span(sc, "dispatch", "fleet")
	var res platform.Result
	var err error
	if dc := span.Context(); dc.Valid() {
		res, err = c.disp.RunTraced(dc, kind, mix, scale, cfg)
	} else {
		res, err = c.disp.Run(kind, mix, scale, cfg)
	}
	if err == nil {
		span.End()
		return res, nil
	}
	var pe *remote.PeerError
	if errors.Is(err, remote.ErrNoPeers) || errors.As(err, &pe) {
		// Every peer faulted (or the fleet emptied under us): the cell
		// is nobody's deterministic failure, so run it locally rather
		// than failing the campaign over transport weather.
		span.SetDetail("fleet: fell back local")
		span.End()
		return c.runLocal(sc, "local fallback", kind, mix, scale, cfg)
	}
	span.EndErr(err)
	return res, err
}

// runLocal answers a cell on the Local runner under a "dispatch" span
// (detail says why execution stayed local), threading the context
// through when the runner is traceable.
func (c *Coordinator) runLocal(sc obs.SpanContext, why string, kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	span := c.span(sc, "dispatch", why)
	var res platform.Result
	var err error
	tl, ok := c.local.(campaign.TracedRunner)
	if dc := span.Context(); dc.Valid() && ok {
		res, err = tl.RunTraced(dc, kind, mix, scale, cfg)
	} else {
		res, err = c.local.Run(kind, mix, scale, cfg)
	}
	span.EndErr(err)
	return res, err
}

// span starts a child span when both a tracer and a valid parent are
// present; otherwise it returns the nil span, whose methods no-op.
func (c *Coordinator) span(sc obs.SpanContext, name, detail string) *obs.Span {
	if c.tr == nil {
		return nil
	}
	return c.tr.StartSpan(sc, name, detail)
}
