// Cross-process tracing integration: a campaign dispatched over two
// real zngd worker handlers must reconstruct as ONE span tree — the
// coordinator's campaign/cell/dispatch/peer spans and each worker's
// http/queue/tier/sim spans, all under the same trace id, stitched
// together by the X-Zng-Trace header and the piggybacked span records.
package fleet_test

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"zng/internal/campaign"
	"zng/internal/config"
	"zng/internal/fleet"
	"zng/internal/obs"
	"zng/internal/report"
	"zng/internal/simsvc"
)

// newTracedWorker boots a zngd worker with its own flight recorder,
// labeled so spans ingested by the coordinator carry the worker's
// process identity.
func newTracedWorker(t *testing.T, proc string) *httptest.Server {
	t.Helper()
	svc := simsvc.New(simsvc.Config{
		Workers:  2,
		Simulate: detSim,
		Tracer:   obs.New(proc, 1024, 1),
	})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(simsvc.NewHandler(svc, config.Default()))
	t.Cleanup(srv.Close)
	return srv
}

func TestDistributedCampaignSingleTrace(t *testing.T) {
	spec := integrationSpec()
	want := referenceTable(t, spec)

	coTracer := obs.New("coordinator", 4096, 1)
	w1 := newTracedWorker(t, "worker-1")
	w2 := newTracedWorker(t, "worker-2")

	fc := fleet.New(fleet.Config{
		Local:   runnerFunc(detSim),
		Workers: 4,
		Base:    config.Default(),
		Tracer:  coTracer,
	})
	if _, err := fc.Register(w1.URL); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Register(w2.URL); err != nil {
		t.Fatal(err)
	}

	exec := campaign.Executor{Runner: fc, Workers: 4, Tracer: coTracer}
	run, err := exec.Start(spec, config.Default())
	if err != nil {
		t.Fatal(err)
	}
	out := run.Wait()
	if out.Err() != nil {
		t.Fatal(out.Err())
	}
	if got := report.JSON(out.Table()); !bytes.Equal(got, want) {
		t.Errorf("traced fleet campaign matrix differs from local reference:\nfleet: %s\nlocal: %s", got, want)
	}

	id := run.Trace()
	if id == 0 {
		t.Fatal("traced campaign minted no trace id")
	}
	recs := coTracer.Trace(id)
	if len(recs) == 0 {
		t.Fatal("coordinator recorder holds no spans for the campaign trace")
	}

	kinds := map[string]bool{}
	procs := map[string]bool{}
	var badTrace int
	for _, r := range recs {
		if r.Trace != id {
			badTrace++
		}
		kinds[r.Name] = true
		procs[r.Proc] = true
	}
	if badTrace != 0 {
		t.Errorf("%d spans carry a foreign trace id", badTrace)
	}

	// The coordinator's own lifecycle spans.
	for _, want := range []string{"campaign", "cell", "dispatch", "peer"} {
		if !kinds[want] {
			t.Errorf("trace missing coordinator span kind %q (got %v)", want, kinds)
		}
	}
	// Worker-side spans piggybacked across the process boundary: the
	// request ingress and the worker loop's tier/sim stages.
	for _, want := range []string{"http", "sim"} {
		if !kinds[want] {
			t.Errorf("trace missing worker span kind %q (got %v)", want, kinds)
		}
	}
	if len(kinds) < 4 {
		t.Errorf("trace spans %d kinds, want at least 4: %v", len(kinds), kinds)
	}

	// One trace, three processes: the coordinator plus both workers.
	// Eight cells over two least-loaded peers lands work on both.
	for _, want := range []string{"coordinator", "worker-1", "worker-2"} {
		if !procs[want] {
			t.Errorf("trace has no spans from %q (procs %v)", want, procs)
		}
	}
}
