package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// registerRequest is the POST /v1/fleet/register body: the address
// the worker serves /v1/run on, as reachable from the coordinator.
type registerRequest struct {
	Addr string `json:"addr"`
}

// registerReply is the coordinator's answer: the peer record plus the
// heartbeat cadence the worker should hold (derived from the
// coordinator's TTL with headroom for lost beats).
type registerReply struct {
	Peer Peer `json:"peer"`
	// HeartbeatMS is the interval the worker should heartbeat at.
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// heartbeatRequest is the POST /v1/fleet/heartbeat body.
type heartbeatRequest struct {
	ID   string `json:"id"`
	Load int    `json:"load"`
}

// Agent is the worker side of the fleet protocol: it registers the
// worker's serving address with a coordinator and heartbeats its load
// until stopped, transparently re-registering whenever the
// coordinator forgets it — a heartbeat lost past the TTL, or a
// coordinator restart (fresh process, empty registry). There is no
// explicit deregister: a SIGKILLed worker just stops beating and
// expires, which is the only path a kill -9 leaves anyway.
type Agent struct {
	coordinator string // coordinator base URL
	addr        string // this worker's advertised serving address
	load        func() int
	hc          *http.Client

	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// agentRetry is how long the agent waits to retry after a failed
// registration (coordinator not up yet, transient network fault).
const agentRetry = time.Second

// StartAgent registers addr with the coordinator at coordinatorURL
// ("host:port" or http:// URL) and keeps it registered until Stop.
// load reports the worker's current backlog for each heartbeat (nil
// beats 0). Registration failures retry forever — the worker may
// outlive many coordinators.
func StartAgent(coordinatorURL, addr string, load func() int) *Agent {
	if load == nil {
		load = func() int { return 0 }
	}
	if !strings.Contains(coordinatorURL, "://") {
		coordinatorURL = "http://" + coordinatorURL
	}
	a := &Agent{
		coordinator: strings.TrimRight(coordinatorURL, "/"),
		addr:        addr,
		load:        load,
		hc:          &http.Client{Timeout: 5 * time.Second},
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	a.wg.Add(1)
	go a.loop()
	return a
}

// Stop halts the heartbeat loop and waits for it to exit. The
// registration expires on the coordinator after its TTL.
func (a *Agent) Stop() {
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	a.wg.Wait()
}

func (a *Agent) loop() {
	defer a.wg.Done()
	defer close(a.done)
	for {
		id, interval, err := a.register()
		if err != nil {
			if !a.sleep(agentRetry) {
				return
			}
			continue
		}
		for {
			if !a.sleep(interval) {
				return
			}
			if err := a.heartbeat(id); err != nil {
				// Expired, or a fresh coordinator that has never heard of
				// us: fall out to re-register.
				break
			}
		}
	}
}

// sleep waits d or until Stop; false means stop.
func (a *Agent) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-a.stop:
		return false
	case <-t.C:
		return true
	}
}

func (a *Agent) register() (id string, interval time.Duration, err error) {
	var reply registerReply
	if err := a.post("/v1/fleet/register", registerRequest{Addr: a.addr}, &reply); err != nil {
		return "", 0, err
	}
	interval = time.Duration(reply.HeartbeatMS) * time.Millisecond
	if interval <= 0 {
		interval = DefaultTTL / 3
	}
	return reply.Peer.ID, interval, nil
}

func (a *Agent) heartbeat(id string) error {
	return a.post("/v1/fleet/heartbeat", heartbeatRequest{ID: id, Load: a.load()}, nil)
}

func (a *Agent) post(path string, body, reply any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := a.hc.Post(a.coordinator+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: %s: status %d", path, resp.StatusCode)
	}
	if reply == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(reply)
}

// HeartbeatInterval is the cadence the register reply advertises for
// a given TTL: a third of the expiry window, so a worker survives two
// lost beats before it is declared dead.
func HeartbeatInterval(ttl time.Duration) time.Duration { return ttl / 3 }
