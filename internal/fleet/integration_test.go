// Fault-path integration tests: real zngd handlers as fleet workers
// (the same simsvc.NewHandler the daemon serves), a coordinator
// dispatching campaigns over them, and the failure modes the fleet
// exists to ride out — a worker killed mid-cell, a coordinator
// restarting mid-campaign, heartbeat expiry and rejoin. External test
// package because simsvc imports fleet.
package fleet_test

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"zng/internal/campaign"
	"zng/internal/config"
	"zng/internal/fleet"
	"zng/internal/platform"
	"zng/internal/report"
	"zng/internal/simsvc"
	"zng/internal/store"
	"zng/internal/workload"
)

// runnerFunc adapts a function to campaign.Runner.
type runnerFunc func(platform.Kind, workload.Mix, float64, config.Config) (platform.Result, error)

func (f runnerFunc) Run(k platform.Kind, m workload.Mix, s float64, c config.Config) (platform.Result, error) {
	return f(k, m, s, c)
}

// detSim is the deterministic cell function every runner in these
// tests shares, so any mix of peers, local fallback and store replay
// must fold the byte-identical matrix.
func detSim(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	return platform.Result{
		Kind:     kind,
		Workload: mix.Name,
		IPC:      float64(kind)*10 + scale*float64(len(mix.ID())),
		Cycles:   1000,
		Insts:    500,
	}, nil
}

// newWorker boots a zngd worker: a real simsvc handler over sim.
func newWorker(t testing.TB, sim simsvc.SimFunc) (*httptest.Server, *simsvc.Service) {
	t.Helper()
	svc := simsvc.New(simsvc.Config{Workers: 2, Simulate: sim})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(simsvc.NewHandler(svc, config.Default()))
	t.Cleanup(srv.Close)
	return srv, svc
}

func integrationSpec() campaign.Spec {
	return campaign.Spec{
		Name:      "fleet-faults",
		Platforms: []string{"ZnG", "HybridGPU"},
		Scenarios: []string{"betw-back", "solo-bfs1"},
		Scales:    []float64{0.5, 1},
	}
}

// referenceTable folds spec on a plain local executor — the matrix
// every fleet execution must reproduce byte-for-byte.
func referenceTable(t *testing.T, spec campaign.Spec) []byte {
	t.Helper()
	exec := campaign.Executor{Runner: runnerFunc(detSim), Workers: 2}
	run, err := exec.Start(spec, config.Default())
	if err != nil {
		t.Fatal(err)
	}
	out := run.Wait()
	if out.Err() != nil {
		t.Fatal(out.Err())
	}
	return report.JSON(out.Table())
}

// waitFor polls cond to true within a deadline.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// A worker that wedges and has its connections torn down mid-cell (the
// kill -9 shape: in-flight requests die, nothing deregisters) must not
// fail the campaign: the dispatcher faults the peer, the cell
// reassigns, and the folded matrix is byte-identical to an
// uninterrupted local run.
func TestWorkerKilledMidCell(t *testing.T) {
	gate := make(chan struct{})
	hit := make(chan struct{}, 16)
	// victim accepts cells and never answers them — a wedged process.
	victim, _ := newWorker(t, func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		select {
		case hit <- struct{}{}:
		default:
		}
		<-gate
		return detSim(kind, mix, scale, cfg)
	})
	t.Cleanup(func() { close(gate) }) // unwedge so Close can drain
	healthy, _ := newWorker(t, detSim)

	fc := fleet.New(fleet.Config{
		Local:    runnerFunc(detSim),
		Workers:  2,
		Base:     config.Default(),
		Timeout:  500 * time.Millisecond,
		Cooldown: time.Minute, // once faulted, the victim stays benched
	})
	if _, err := fc.Register(victim.URL); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Register(healthy.URL); err != nil {
		t.Fatal(err)
	}

	c, err := fc.Campaigns().Start(integrationSpec())
	if err != nil {
		t.Fatal(err)
	}
	// The moment the victim has a cell in flight, kill it: tear down
	// its connections and its listener, the way kill -9 leaves a
	// worker (its job never finishes, its port stops answering — the
	// dispatcher's next poll faults and the cell reassigns). The
	// wedged simulation goroutine drains at cleanup via gate.
	waitFor(t, "victim to receive a cell", func() bool {
		select {
		case <-hit:
			return true
		default:
			return false
		}
	})
	victim.CloseClientConnections()
	victim.Close()

	out := c.Wait()
	if out.Err() != nil {
		t.Fatal(out.Err())
	}
	if got, want := report.JSON(out.Table()), referenceTable(t, integrationSpec()); !bytes.Equal(got, want) {
		t.Fatalf("matrix after worker kill differs from reference:\n%s\nvs\n%s", got, want)
	}
	if g := fc.Gauges(); g.CellsReassigned == 0 {
		t.Fatalf("cells_reassigned = 0, want > 0 after killing a worker mid-cell (%+v)", g)
	}
}

// A coordinator that dies mid-campaign leaves a spec plus a partial
// journal in the store. A fresh coordinator over the same directory
// resumes by id: journaled cells replay from the store with zero
// re-simulation, only the remainder runs, and the matrix is
// byte-identical to an uninterrupted run.
func TestCoordinatorRestartMidCampaign(t *testing.T) {
	dir := t.TempDir()
	spec := campaign.Spec{
		Name:      "restart",
		Platforms: []string{"ZnG"},
		Scenarios: []string{"betw-back", "solo-gaus"},
		Scales:    []float64{0.5, 1},
	}

	// Coordinator 1: solo-gaus cells wedge forever — the campaign can
	// never finish in this process, only its betw-back half journals.
	gate := make(chan struct{})
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := simsvc.New(simsvc.Config{Workers: 2, Store: st1,
		Simulate: func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
			if mix.Name == "solo-gaus" {
				<-gate
			}
			return detSim(kind, mix, scale, cfg)
		}})
	t.Cleanup(svc1.Close)
	fc1 := fleet.New(fleet.Config{Local: svc1, Store: st1, Workers: 2, Base: config.Default()})
	c1, err := fc1.Campaigns().Start(spec)
	if err != nil {
		close(gate)
		t.Fatal(err)
	}
	// Unblock the wedged cells and let campaign 1 finish journaling
	// before TempDir removal, or its late writes race the cleanup.
	t.Cleanup(func() { close(gate); c1.Wait() })
	id := c1.ID
	cellsDir := filepath.Join(dir, "campaigns", id, "cells")
	waitFor(t, "half the campaign to journal", func() bool {
		ents, err := os.ReadDir(cellsDir)
		return err == nil && len(ents) >= 2
	})
	// Coordinator 1 is now "dead": we simply stop looking at it. Its
	// two wedged cells stay in flight and never journal until cleanup.

	// Coordinator 2: fresh process, same store directory, healthy sim.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := simsvc.New(simsvc.Config{Workers: 2, Store: st2, Simulate: detSim})
	t.Cleanup(svc2.Close)
	fc2 := fleet.New(fleet.Config{Local: svc2, Store: st2, Workers: 2, Base: config.Default()})
	c2, err := fc2.Campaigns().Resume(id)
	if err != nil {
		t.Fatal(err)
	}
	out := c2.Wait()
	if out.Err() != nil {
		t.Fatal(out.Err())
	}
	if got := svc2.Stats().Sims; got != 2 {
		t.Fatalf("resume ran %d simulations, want exactly the 2 un-journaled cells", got)
	}
	if got := fc2.Campaigns().Replayed(id); got != 2 {
		t.Fatalf("replayed = %d, want 2 journaled cells served from the store", got)
	}
	if g := fc2.Gauges(); g.CampaignsResumed != 1 {
		t.Fatalf("campaigns_resumed = %d, want 1", g.CampaignsResumed)
	}

	// Byte-identical to a never-interrupted run of the same spec.
	exec := campaign.Executor{Runner: runnerFunc(detSim), Workers: 2}
	ref, err := exec.Start(spec, config.Default())
	if err != nil {
		t.Fatal(err)
	}
	refOut := ref.Wait()
	if refOut.Err() != nil {
		t.Fatal(refOut.Err())
	}
	if got, want := report.JSON(out.Table()), report.JSON(refOut.Table()); !bytes.Equal(got, want) {
		t.Fatalf("resumed matrix differs from uninterrupted reference:\n%s\nvs\n%s", got, want)
	}
}

// The agent end to end against the real API: register, heartbeat with
// live load, expire when stopped, rejoin under a fresh id when a new
// agent starts — churn the roster and the coordinator tracks it.
func TestAgentExpiryAndRejoin(t *testing.T) {
	svc := simsvc.New(simsvc.Config{Workers: 1, Simulate: detSim})
	t.Cleanup(svc.Close)
	fc := fleet.New(fleet.Config{Local: svc, Workers: 1, Base: config.Default(), TTL: 150 * time.Millisecond})
	srv := httptest.NewServer(simsvc.NewHandler(svc, config.Default(), simsvc.WithFleet(fc)))
	t.Cleanup(srv.Close)

	a1 := fleet.StartAgent(srv.URL, "127.0.0.1:7001", func() int { return 5 })
	var firstID string
	waitFor(t, "agent to register and heartbeat its load", func() bool {
		for _, p := range fc.Peers() {
			if p.Load == 5 {
				firstID = p.ID
				return true
			}
		}
		return false
	})
	a1.Stop()
	waitFor(t, "stopped agent to expire", func() bool { return len(fc.Peers()) == 0 })
	if g := fc.Gauges(); g.PeersDead == 0 {
		t.Fatalf("peers_dead = 0, want > 0 after expiry (%+v)", g)
	}

	a2 := fleet.StartAgent(srv.URL, "127.0.0.1:7001", nil)
	defer a2.Stop()
	waitFor(t, "replacement agent to rejoin", func() bool { return len(fc.Peers()) == 1 })
	if got := fc.Peers()[0].ID; got == firstID {
		t.Fatalf("rejoined peer kept expired id %q, want a fresh identity", got)
	}
}
