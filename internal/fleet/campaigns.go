package fleet

import (
	"fmt"
	"sync"

	"zng/internal/campaign"
	"zng/internal/config"
	"zng/internal/store"
)

// Campaigns is the coordinator's durable campaign manager: the same
// Start/Get/List lifecycle campaign.Manager gives the zngd API, plus
// content-addressed ids, store-backed checkpoints and Resume. Every
// campaign runs through the coordinator's fleet dispatch (falling
// back to local execution), with each resolved cell journaled so a
// restarted coordinator — or a fresh one pointed at the same store
// directory — picks the sweep up where it died. Safe for concurrent
// use.
type Campaigns struct {
	co      *Coordinator
	ck      *Checkpointer
	st      *store.Store
	workers int
	base    config.Config
	max     int // guarded by mu (constructor-set, then only mutated via SetMaxCampaigns)

	mu      sync.Mutex
	order   []*campaign.Campaign          // guarded by mu; start order
	byID    map[string]*campaign.Campaign // guarded by mu
	runners map[string]*durableRunner     // guarded by mu; campaign id -> its journal-aware runner
	resumed uint64                        // guarded by mu; campaigns started over a non-empty journal
}

func newCampaigns(co *Coordinator, cfg Config) *Campaigns {
	return &Campaigns{
		co:      co,
		ck:      NewCheckpointer(cfg.Store),
		st:      cfg.Store,
		workers: cfg.Workers,
		base:    cfg.Base,
		max:     campaign.DefaultMaxCampaigns,
		byID:    map[string]*campaign.Campaign{},
		runners: map[string]*durableRunner{},
	}
}

// SetMaxCampaigns overrides the retention bound (0 = unbounded).
// Evicted campaigns' checkpoints stay on disk — an evicted id still
// resumes through Resume, it just re-loads from the store.
func (m *Campaigns) SetMaxCampaigns(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.max = n
	m.evictLocked()
}

// Start launches a campaign under its content-addressed id. Starting
// a spec whose id is already live (running or retained-done) returns
// the existing campaign — the idempotent-POST contract a client
// retrying over a flaky link wants. When the store already holds a
// journal for the id (a half-finished sweep from a previous process),
// the campaign resumes: journaled cells serve from the store, only
// the remainder dispatches.
func (m *Campaigns) Start(spec campaign.Spec) (*campaign.Campaign, error) {
	id := CampaignID(spec)
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.byID[id]; ok {
		return c, nil
	}
	journal, err := m.ck.LoadJournal(id)
	if err != nil {
		return nil, err
	}
	if err := m.ck.WriteSpec(id, spec); err != nil {
		return nil, err
	}
	resuming := len(journal) > 0
	dr := &durableRunner{inner: m.co, st: m.st, ck: m.ck, id: id, tr: m.co.tr, journal: journal}
	exec := campaign.Executor{Runner: dr, Workers: m.workers, Retries: 1, Tracer: m.co.tr}
	run, err := exec.Start(spec, m.base)
	if err != nil {
		return nil, err
	}
	if resuming {
		m.resumed++
	}
	c := campaign.NewCampaign(id, spec, run)
	m.order = append(m.order, c)
	m.byID[id] = c
	m.runners[id] = dr
	m.evictLocked()
	// Re-evict when this campaign finishes: campaigns that were running
	// (unevictable) during later Starts must not linger past the bound
	// just because no further Start ever happens.
	go func() {
		run.Wait()
		m.mu.Lock()
		m.evictLocked()
		m.mu.Unlock()
	}()
	return c, nil
}

// Resume restarts a checkpointed campaign by id: a live id returns
// the in-memory campaign, otherwise the spec reloads from the store
// and Starts — which by construction derives the same id and skips
// every journaled cell. Unknown ids (no checkpoint on disk) fail.
func (m *Campaigns) Resume(id string) (*campaign.Campaign, error) {
	m.mu.Lock()
	c, ok := m.byID[id]
	m.mu.Unlock()
	if ok {
		return c, nil
	}
	spec, err := m.ck.LoadSpec(id)
	if err != nil {
		return nil, err
	}
	if got := CampaignID(spec); got != id {
		return nil, fmt.Errorf("fleet: checkpoint %q reloads as campaign %q; refusing to resume a tampered spec", id, got)
	}
	return m.Start(spec)
}

// Replayed reports how many of a campaign's cells were served from
// its journal without running (0 for unknown ids).
func (m *Campaigns) Replayed(id string) uint64 {
	m.mu.Lock()
	dr, ok := m.runners[id]
	m.mu.Unlock()
	if !ok {
		return 0
	}
	return dr.Replayed()
}

// Resumed reports how many campaigns started over a non-empty
// journal — the campaigns_resumed gauge.
func (m *Campaigns) Resumed() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resumed
}

// Get resolves a campaign by id.
func (m *Campaigns) Get(id string) (*campaign.Campaign, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.byID[id]
	return c, ok
}

// List snapshots every retained campaign in start order.
func (m *Campaigns) List() []*campaign.Campaign {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*campaign.Campaign, len(m.order))
	copy(out, m.order)
	return out
}

// evictLocked drops the oldest finished campaigns past the bound,
// mirroring campaign.Manager: running campaigns are never evicted.
// An evicted campaign's checkpoint survives on disk, so its id still
// answers through Resume. Caller holds mu.
func (m *Campaigns) evictLocked() {
	if m.max <= 0 || len(m.order) <= m.max {
		return
	}
	excess := len(m.order) - m.max
	keep := m.order[:0]
	for _, c := range m.order {
		if excess > 0 && c.Done() {
			delete(m.byID, c.ID)
			delete(m.runners, c.ID)
			excess--
			continue
		}
		keep = append(keep, c)
	}
	for i := len(keep); i < len(m.order); i++ {
		m.order[i] = nil
	}
	m.order = keep
}
