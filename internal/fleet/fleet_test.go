package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"zng/internal/campaign"
	"zng/internal/config"
	"zng/internal/platform"
	"zng/internal/remote"
	"zng/internal/report"
	"zng/internal/store"
	"zng/internal/workload"
)

// stubRunner is a deterministic local runner: the result is a pure
// function of the cell, so matrices fold byte-identically across
// processes — the property every resume test leans on. failWith makes
// chosen scenarios fail (deterministically, or with a transport-shaped
// PeerError that must never be journaled).
type stubRunner struct {
	mu       sync.Mutex
	calls    int              // guarded by mu
	byMix    map[string]int   // guarded by mu; mix ID -> calls
	failWith map[string]error // mix ID -> error to return
}

func (r *stubRunner) Run(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	r.mu.Lock()
	r.calls++
	if r.byMix == nil {
		r.byMix = map[string]int{}
	}
	r.byMix[mix.ID()]++
	err := r.failWith[mix.ID()]
	r.mu.Unlock()
	if err != nil {
		return platform.Result{}, err
	}
	return platform.Result{
		Kind:     kind,
		Workload: mix.Name,
		IPC:      float64(kind) + scale*float64(len(mix.ID())),
		Cycles:   1000,
		Insts:    500,
	}, nil
}

func (r *stubRunner) Calls() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

func testSpec() campaign.Spec {
	return campaign.Spec{
		Name:      "fleet-test",
		Platforms: []string{"ZnG", "HybridGPU"},
		Scenarios: []string{"solo-bfs1", "solo-gaus"},
		Scales:    []float64{0.25, 0.5},
	}
}

func newTestCoordinator(t *testing.T, dir string, local campaign.Runner) *Coordinator {
	t.Helper()
	var st *store.Store
	if dir != "" {
		s, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		st = s
	}
	return New(Config{Local: local, Store: st, Workers: 2, Base: config.Default()})
}

func tableBytes(t *testing.T, c *campaign.Campaign) []byte {
	t.Helper()
	out := c.Outcome()
	if out == nil {
		t.Fatal("campaign has no outcome")
	}
	return report.JSON(out.Table())
}

func TestCampaignIDContentAddressed(t *testing.T) {
	spec := testSpec()
	id := CampaignID(spec)
	if len(id) != 64 {
		t.Fatalf("id %q is not a hex sha256", id)
	}
	if CampaignID(testSpec()) != id {
		t.Error("identical specs derive different ids")
	}
	other := testSpec()
	other.Scales = []float64{1}
	if CampaignID(other) == id {
		t.Error("different specs collide")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ck := NewCheckpointer(st)
	spec := testSpec()
	id := CampaignID(spec)

	if err := ck.WriteSpec(id, spec); err != nil {
		t.Fatal(err)
	}
	got, err := ck.LoadSpec(id)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(spec)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Errorf("spec round-trip mutated:\nwrote %s\nread  %s", a, b)
	}
	if CampaignID(got) != id {
		t.Error("reloaded spec derives a different id")
	}

	// Journal entries round-trip and index by key.
	keys := []string{"aaaa1111", "bbbb2222"}
	if err := ck.JournalCell(id, JournalEntry{Key: keys[0]}); err != nil {
		t.Fatal(err)
	}
	if err := ck.JournalCell(id, JournalEntry{Key: keys[1], Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	j, err := ck.LoadJournal(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(j) != 2 || j[keys[0]].Error != "" || j[keys[1]].Error != "boom" {
		t.Errorf("journal round-trip = %+v", j)
	}

	// Malformed keys are refused (they would escape the cells dir).
	for _, bad := range []string{"", "../../etc/passwd", "x.json"} {
		if err := ck.JournalCell(id, JournalEntry{Key: bad}); err == nil {
			t.Errorf("JournalCell accepted malformed key %q", bad)
		}
	}

	// An undecodable journal file (a torn copy, say) reads as absent.
	cells := filepath.Join(st.Dir(), "campaigns", id, "cells")
	if err := os.WriteFile(filepath.Join(cells, "cccc3333.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A renamed entry (key/filename mismatch) also reads as absent.
	if err := os.WriteFile(filepath.Join(cells, "dddd4444.json"),
		encodeJournalEntry(JournalEntry{Key: keys[0]}), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err = ck.LoadJournal(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(j) != 2 {
		t.Errorf("journal with corrupt entries = %+v, want the 2 good ones", j)
	}

	// Unknown ids load an empty journal and a not-exist spec.
	if j, err := ck.LoadJournal("ffff"); err != nil || len(j) != 0 {
		t.Errorf("unknown journal = %v, %v", j, err)
	}
	if _, err := ck.LoadSpec("ffff"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("unknown spec err = %v, want ErrNotExist", err)
	}

	// The nil checkpointer (no store) is inert.
	var nilCk *Checkpointer
	if err := nilCk.WriteSpec(id, spec); err != nil {
		t.Errorf("nil WriteSpec = %v", err)
	}
	if err := nilCk.JournalCell(id, JournalEntry{Key: keys[0]}); err != nil {
		t.Errorf("nil JournalCell = %v", err)
	}
	if j, err := nilCk.LoadJournal(id); err != nil || len(j) != 0 {
		t.Errorf("nil LoadJournal = %v, %v", j, err)
	}
	if _, err := nilCk.LoadSpec(id); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("nil LoadSpec err = %v, want ErrNotExist", err)
	}
}

// TestResumeServesJournaledCells is the durability core: a finished
// campaign restarted on a fresh coordinator over the same store runs
// zero cells and folds the byte-identical matrix.
func TestResumeServesJournaledCells(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()

	local1 := &stubRunner{}
	co1 := newTestCoordinator(t, dir, local1)
	c1, err := co1.Campaigns().Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	if out1 := c1.Wait(); out1.Err() != nil {
		t.Fatal(out1.Err())
	}
	want := tableBytes(t, c1)
	ranFirst := local1.Calls()
	if ranFirst != len(c1.Cells()) {
		t.Fatalf("first pass ran %d cells, want %d", ranFirst, len(c1.Cells()))
	}
	if got := CampaignID(spec); c1.ID != got {
		t.Errorf("campaign id = %s, want content address %s", c1.ID, got)
	}
	if co1.Gauges().CampaignsResumed != 0 {
		t.Error("fresh campaign counted as resumed")
	}

	// Starting the same spec again on the SAME coordinator is
	// idempotent: the retained campaign comes back, nothing re-runs.
	again, err := co1.Campaigns().Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again != c1 {
		t.Error("re-Start of a live id built a new campaign")
	}

	// A fresh coordinator (new process, same directory) resumes: every
	// cell replays from the journal + store, the local runner never runs.
	local2 := &stubRunner{}
	co2 := newTestCoordinator(t, dir, local2)
	c2, err := co2.Campaigns().Resume(c1.ID)
	if err != nil {
		t.Fatal(err)
	}
	c2.Wait()
	if got := local2.Calls(); got != 0 {
		t.Errorf("resume ran %d cells, want 0 (all journaled)", got)
	}
	if got := co2.Campaigns().Replayed(c2.ID); got != uint64(len(c2.Cells())) {
		t.Errorf("replayed = %d, want %d", got, len(c2.Cells()))
	}
	if g := co2.Gauges(); g.CampaignsResumed != 1 {
		t.Errorf("campaigns_resumed = %d, want 1", g.CampaignsResumed)
	}
	if got := tableBytes(t, c2); !bytes.Equal(got, want) {
		t.Errorf("resumed matrix differs:\nfirst:  %s\nresume: %s", want, got)
	}
}

// TestResumeRunsOnlyTheRemainder: a half-finished campaign — some
// cells journaled, one scenario's cells lost to a transport fault
// that must never be journaled — resumes running exactly the
// remainder, and the healed matrix is byte-identical to an
// uninterrupted run.
func TestResumeRunsOnlyTheRemainder(t *testing.T) {
	spec := testSpec()

	// The reference: an uninterrupted local run in its own directory.
	ref := newTestCoordinator(t, t.TempDir(), &stubRunner{})
	cRef, err := ref.Campaigns().Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	cRef.Wait()
	want := tableBytes(t, cRef)

	// Pass 1: solo-gaus cells die with a transport-shaped fault.
	dir := t.TempDir()
	gausID := mixID(t, "solo-gaus")
	local1 := &stubRunner{failWith: map[string]error{
		gausID: &remote.PeerError{Peer: "http://127.0.0.1:1", Err: errors.New("connection refused")},
	}}
	co1 := newTestCoordinator(t, dir, local1)
	c1, err := co1.Campaigns().Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	c1.Wait()
	if f := c1.Outcome().Failed(); f == 0 {
		t.Fatal("transport fault produced no failed cells; the test exercises nothing")
	}
	done := c1.Progress().Done

	// The journal holds exactly the successful cells: transport faults
	// checkpointed nothing.
	ck := NewCheckpointer(mustStore(t, dir))
	j, err := ck.LoadJournal(c1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(j) != done {
		t.Fatalf("journal has %d entries, want %d (only successes)", len(j), done)
	}

	// Pass 2: fresh coordinator, healthy runner. Only the faulted
	// cells run; the matrix matches the uninterrupted reference.
	local2 := &stubRunner{}
	co2 := newTestCoordinator(t, dir, local2)
	c2, err := co2.Campaigns().Resume(c1.ID)
	if err != nil {
		t.Fatal(err)
	}
	c2.Wait()
	remainder := len(c2.Cells()) - done
	if got := local2.Calls(); got != remainder {
		t.Errorf("resume ran %d cells, want only the %d-cell remainder", got, remainder)
	}
	if got := tableBytes(t, c2); !bytes.Equal(got, want) {
		t.Errorf("healed matrix differs from uninterrupted run:\nwant %s\ngot  %s", want, got)
	}
	if co2.Gauges().CampaignsResumed != 1 {
		t.Error("partial resume not counted")
	}
}

// TestDeterministicFailuresReplayOnResume: a cell that failed
// deterministically is journaled with its error text and replays on
// resume without re-running.
func TestDeterministicFailuresReplayOnResume(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	gausID := mixID(t, "solo-gaus")
	simErr := errors.New("zng: apps exceed SMs")

	local1 := &stubRunner{failWith: map[string]error{gausID: simErr}}
	co1 := newTestCoordinator(t, dir, local1)
	c1, err := co1.Campaigns().Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	c1.Wait()
	failed := c1.Progress().Failed
	if failed == 0 {
		t.Fatal("no deterministic failures")
	}
	want := tableBytes(t, c1)

	local2 := &stubRunner{}
	co2 := newTestCoordinator(t, dir, local2)
	c2, err := co2.Campaigns().Resume(c1.ID)
	if err != nil {
		t.Fatal(err)
	}
	c2.Wait()
	if got := local2.Calls(); got != 0 {
		t.Errorf("resume re-ran %d cells, want 0 (failures journal too)", got)
	}
	if c2.Progress().Failed != failed {
		t.Errorf("resumed failures = %d, want %d", c2.Progress().Failed, failed)
	}
	for _, cr := range c2.Outcome().Cells {
		if cr.Cell.Mix.ID() == gausID && (cr.Err == nil || cr.Err.Error() != simErr.Error()) {
			t.Errorf("replayed error = %v, want %v", cr.Err, simErr)
		}
	}
	if got := tableBytes(t, c2); !bytes.Equal(got, want) {
		t.Errorf("replayed matrix differs:\nwant %s\ngot  %s", want, got)
	}
}

// TestHeartbeatExpiryAndRejoin drives the peer lifecycle: register,
// expire by silence, re-register.
func TestHeartbeatExpiryAndRejoin(t *testing.T) {
	co := New(Config{Local: &stubRunner{}, TTL: 40 * time.Millisecond, Base: config.Default()})

	p, err := co.Register("127.0.0.1:19999")
	if err != nil {
		t.Fatal(err)
	}
	if p.ID == "" || p.Addr != "http://127.0.0.1:19999" {
		t.Fatalf("peer = %+v", p)
	}
	if err := co.Heartbeat(p.ID, 3); err != nil {
		t.Fatal(err)
	}
	peers := co.Peers()
	if len(peers) != 1 || peers[0].Load != 3 {
		t.Fatalf("peers = %+v", peers)
	}
	if g := co.Gauges(); g.PeersLive != 1 || g.PeersDead != 0 {
		t.Fatalf("gauges = %+v", g)
	}

	// Silence past the TTL: the peer expires.
	time.Sleep(90 * time.Millisecond)
	if g := co.Gauges(); g.PeersLive != 0 || g.PeersDead != 1 {
		t.Fatalf("after expiry gauges = %+v", g)
	}
	if err := co.Heartbeat(p.ID, 0); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("heartbeat after expiry = %v, want ErrUnknownPeer", err)
	}

	// Rejoin under a fresh id; the same address re-registering replaces
	// rather than duplicates.
	p2, err := co.Register("127.0.0.1:19999")
	if err != nil {
		t.Fatal(err)
	}
	if p2.ID == p.ID {
		t.Error("re-registration reused the dead id")
	}
	if _, err := co.Register("http://127.0.0.1:19999"); err != nil {
		t.Fatal(err)
	}
	if g := co.Gauges(); g.PeersLive != 1 {
		t.Fatalf("same-address double registration: gauges = %+v", g)
	}
	if _, err := co.Register(""); err == nil {
		t.Error("empty address accepted")
	}
}

// TestRegistrationChurnRace hammers register/heartbeat/expiry/snapshot
// from many goroutines with a tiny TTL — the rejoin-churn fault path
// under -race.
func TestRegistrationChurnRace(t *testing.T) {
	co := New(Config{Local: &stubRunner{}, TTL: 5 * time.Millisecond, Base: config.Default()})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			addr := fmt.Sprintf("127.0.0.1:2%04d", g)
			id := ""
			for i := 0; i < 50; i++ {
				if id == "" {
					p, err := co.Register(addr)
					if err != nil {
						t.Error(err)
						return
					}
					id = p.ID
				}
				if err := co.Heartbeat(id, i); err != nil {
					id = "" // expired under us: rejoin
				}
				co.Peers()
				co.Gauges()
				if i%10 == 9 {
					time.Sleep(7 * time.Millisecond) // force an expiry
				}
			}
		}()
	}
	wg.Wait()
	// Every goroutine slept past the TTL at least once, so churn
	// actually happened.
	if g := co.Gauges(); g.PeersDead == 0 {
		t.Errorf("churn produced no expiries: %+v", g)
	}
}

// TestRunFallsBackToLocal: an empty fleet — and a fleet whose only
// peer is unreachable — both serve cells through the local runner
// instead of failing the campaign.
func TestRunFallsBackToLocal(t *testing.T) {
	local := &stubRunner{}
	co := New(Config{
		Local:   local,
		TTL:     time.Second,
		Timeout: 200 * time.Millisecond,
		Base:    config.Default(),
	})
	mix := testMix(t, "solo-bfs1")

	// Empty fleet: straight to local.
	if _, err := co.Run(platform.ZnG, mix, 0.5, config.Default()); err != nil {
		t.Fatal(err)
	}
	if local.Calls() != 1 {
		t.Fatalf("local calls = %d, want 1", local.Calls())
	}

	// One unreachable peer: dispatch faults, the cell falls back.
	if _, err := co.Register("127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Run(platform.ZnG, mix, 0.5, config.Default()); err != nil {
		t.Fatal(err)
	}
	if local.Calls() != 2 {
		t.Fatalf("local calls = %d, want 2 (fallback after peer fault)", local.Calls())
	}
	if g := co.Gauges(); g.CellsReassigned == 0 {
		t.Errorf("peer fault not counted as a reassignment: %+v", g)
	}
}

func testMix(t *testing.T, name string) workload.Mix {
	t.Helper()
	m, err := workload.MixByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mixID(t *testing.T, name string) string {
	t.Helper()
	return testMix(t, name).ID()
}

func mustStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}
