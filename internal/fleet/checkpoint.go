package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"zng/internal/campaign"
	"zng/internal/config"
	"zng/internal/obs"
	"zng/internal/platform"
	"zng/internal/remote"
	"zng/internal/store"
	"zng/internal/workload"
)

// checkpointSchemaVersion stamps the campaign id derivation and the
// checkpoint documents; bump it whenever the spec document or the
// journal entry shape changes meaning, so old checkpoints read as
// different campaigns instead of resuming wrongly.
const checkpointSchemaVersion = 1

// specDoc is the canonical spec document CampaignID hashes and
// WriteSpec persists — the campaign Spec plus the schema stamp, all
// canonical types (strings, numbers, bools, slices, *float64).
type specDoc struct {
	Version int           `json:"v"`
	Spec    campaign.Spec `json:"spec"`
}

// CampaignID derives the content address of a campaign: the hex
// SHA-256 of the canonical spec document. Identical sweeps get
// identical ids across processes and machines, which is what lets a
// fresh coordinator pointed at the same store directory resume a
// campaign it has never seen — and makes starting the same spec twice
// idempotent instead of a duplicate sweep.
func CampaignID(spec campaign.Spec) string {
	b, err := json.Marshal(specDoc{Version: checkpointSchemaVersion, Spec: spec})
	if err != nil {
		// Spec is a closed struct of canonical types; Marshal cannot
		// fail on it. Panic loudly rather than return a colliding id.
		panic(fmt.Sprintf("fleet: encoding campaign spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// JournalEntry records one resolved cell of a checkpointed campaign:
// the cell's content address plus, for deterministic failures, the
// error text to replay on resume. Successful cells carry no result
// here — the result lives in the store under the same key, written
// before the journal entry, so a journal hit is always a store hit
// (or heals by re-running).
type JournalEntry struct {
	Key string `json:"key"`
	// Error is the deterministic simulation failure's text; empty for
	// successful cells.
	Error string `json:"error,omitempty"`
}

// encodeJournalEntry renders the canonical journal document — the
// checkpoint analogue of report.EncodeResult, and a canonicalkey lint
// sink: only canonical types may flow into checkpoint files.
func encodeJournalEntry(e JournalEntry) []byte {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("fleet: encoding journal entry: %v", err))
	}
	return append(b, '\n')
}

// Checkpointer persists campaign state under the store directory:
//
//	<store>/campaigns/<campaign-id>/spec.json
//	<store>/campaigns/<campaign-id>/cells/<cell-key>.json
//
// one file per document, written with the store's own atomic
// temp-file+rename discipline, so a crashed coordinator never
// publishes a torn checkpoint and concurrent processes sharing the
// directory only ever observe complete entries. Undecodable files
// read as absent — resumption degrades to re-running cells, never to
// wrong results.
type Checkpointer struct {
	root string // <store dir>/campaigns
}

// NewCheckpointer roots a checkpointer in st's directory; a nil store
// returns nil (the no-durability mode — every method on a nil
// Checkpointer is safe and does nothing).
func NewCheckpointer(st *store.Store) *Checkpointer {
	if st == nil {
		return nil
	}
	return &Checkpointer{root: filepath.Join(st.Dir(), "campaigns")}
}

// dir is one campaign's checkpoint directory.
func (c *Checkpointer) dir(id string) string { return filepath.Join(c.root, id) }

// WriteSpec persists a campaign's spec document (idempotent: the
// content-addressed id pins the contents, so rewriting is harmless).
// A nil checkpointer ignores the write.
func (c *Checkpointer) WriteSpec(id string, spec campaign.Spec) error {
	if c == nil {
		return nil
	}
	b, err := json.MarshalIndent(specDoc{Version: checkpointSchemaVersion, Spec: spec}, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: encoding spec: %w", err)
	}
	return writeAtomic(c.dir(id), "spec.json", append(b, '\n'))
}

// LoadSpec reads a checkpointed campaign's spec back. Unknown ids —
// including a nil checkpointer — fail with os.ErrNotExist wrapped in
// the message.
func (c *Checkpointer) LoadSpec(id string) (campaign.Spec, error) {
	if c == nil {
		return campaign.Spec{}, fmt.Errorf("fleet: no checkpoint store: campaign %q: %w", id, os.ErrNotExist)
	}
	b, err := os.ReadFile(filepath.Join(c.dir(id), "spec.json"))
	if err != nil {
		return campaign.Spec{}, fmt.Errorf("fleet: loading campaign %q: %w", id, err)
	}
	var doc specDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return campaign.Spec{}, fmt.Errorf("fleet: decoding campaign %q spec: %w", id, err)
	}
	if doc.Version != checkpointSchemaVersion {
		return campaign.Spec{}, fmt.Errorf("fleet: campaign %q spec has schema v%d, want v%d",
			id, doc.Version, checkpointSchemaVersion)
	}
	return doc.Spec, nil
}

// JournalCell appends one resolved cell to a campaign's journal (one
// file per cell, so concurrent cell completions never contend on a
// shared file). A nil checkpointer ignores the write.
func (c *Checkpointer) JournalCell(id string, e JournalEntry) error {
	if c == nil {
		return nil
	}
	if e.Key == "" || strings.ContainsAny(e.Key, "/.") {
		return fmt.Errorf("fleet: refusing journal entry with malformed key %q", e.Key)
	}
	return writeAtomic(filepath.Join(c.dir(id), "cells"), e.Key+".json", encodeJournalEntry(e))
}

// LoadJournal reads a campaign's journal back as a key-indexed map.
// A campaign with no checkpoint (or a nil checkpointer) loads empty;
// undecodable entries are skipped — their cells simply re-run.
func (c *Checkpointer) LoadJournal(id string) (map[string]JournalEntry, error) {
	out := map[string]JournalEntry{}
	if c == nil {
		return out, nil
	}
	dir := filepath.Join(c.dir(id), "cells")
	names, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return out, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: reading journal for %q: %w", id, err)
	}
	for _, f := range names {
		if f.IsDir() || !strings.HasSuffix(f.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal(b, &e); err != nil || e.Key == "" {
			continue
		}
		if e.Key != strings.TrimSuffix(f.Name(), ".json") {
			// A journal file renamed (or cross-copied) out from under its
			// key would resume the wrong cell; treat it as absent.
			continue
		}
		out[e.Key] = e
	}
	return out, nil
}

// writeAtomic lands doc in dir/name via the store's temp-file+rename
// discipline, creating dir as needed.
func writeAtomic(dir, name string, doc []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	_, werr := tmp.Write(doc)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("fleet: writing %s: %w", name, werr)
		}
		return fmt.Errorf("fleet: writing %s: %w", name, cerr)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: publishing %s: %w", name, err)
	}
	return nil
}

// durableRunner wraps the coordinator's Runner with the campaign's
// journal: journaled-done cells serve from the store (or replay their
// deterministic failure) without dispatching, fresh cells run through
// the fleet and are checkpointed — store write first, then journal,
// so a journal hit is always backed by a stored result and a crash
// between the two only costs a re-run on resume.
type durableRunner struct {
	inner campaign.Runner
	st    *store.Store
	ck    *Checkpointer
	id    string
	// tr records journal replays and checkpoint writes as spans of
	// traced cells; nil runs untraced.
	tr *obs.Tracer

	mu sync.Mutex
	// journal mirrors the on-disk journal for this campaign (seeded
	// from LoadJournal on start, grown as cells resolve). guarded by mu.
	journal map[string]JournalEntry
	// replayed counts cells served from the journal without running —
	// the resume-efficiency figure the tests assert on. guarded by mu.
	replayed uint64
}

func (d *durableRunner) Run(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	return d.run(obs.SpanContext{}, kind, mix, scale, cfg)
}

// RunTraced is Run under the caller's span context: journal replays
// record a zero-cost "journal.replay" span, fresh cells thread the
// context through the fleet (the coordinator implements
// campaign.TracedRunner), and the checkpoint write lands as a
// "journal.write" span. It implements campaign.TracedRunner.
func (d *durableRunner) RunTraced(sc obs.SpanContext, kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	return d.run(sc, kind, mix, scale, cfg)
}

func (d *durableRunner) run(sc obs.SpanContext, kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	key := store.CellKey(kind, mix.ID(), scale, cfg)
	d.mu.Lock()
	e, done := d.journal[key]
	d.mu.Unlock()
	if done {
		if e.Error != "" {
			d.noteReplay(sc, key)
			return platform.Result{}, errors.New(e.Error)
		}
		if d.st != nil {
			if r, ok := d.st.Get(key); ok {
				// The stored document may carry the label of whoever first
				// computed the cell (an aliasing scenario); relabel per
				// request, same as the serving layer does.
				if mix.Name != "" {
					r.Workload = mix.Name
				}
				d.noteReplay(sc, key)
				return r, nil
			}
		}
		// Journaled but not in the store (a pruned store, or a crash in
		// the narrow window the discipline is designed around never
		// leaves us in): heal by re-running the cell.
	}
	var res platform.Result
	var err error
	ti, ok := d.inner.(campaign.TracedRunner)
	if sc.Valid() && ok {
		res, err = ti.RunTraced(sc, kind, mix, scale, cfg)
	} else {
		res, err = d.inner.Run(kind, mix, scale, cfg)
	}
	if err != nil {
		var pe *remote.PeerError
		if errors.Is(err, remote.ErrNoPeers) || errors.As(err, &pe) {
			// A transport-level fault is nobody's deterministic result;
			// never journal it (the executor's retry — or a resume — gets
			// to run the cell for real).
			return res, err
		}
	}
	d.checkpoint(sc, key, res, err)
	return res, err
}

// checkpoint records one resolved cell: successful results land in
// the store first, then the journal; deterministic failures journal
// their text. A failed store write skips the journal entirely so a
// resume re-simulates rather than trusting an unbacked entry. Traced
// cells record the store+journal write as one "journal.write" span.
func (d *durableRunner) checkpoint(sc obs.SpanContext, key string, res platform.Result, err error) {
	span := d.tr.StartSpan(sc, "journal.write", key)
	e := JournalEntry{Key: key}
	if err != nil {
		e.Error = err.Error()
	} else if d.st != nil {
		if perr := d.st.Put(key, res); perr != nil {
			span.EndErr(perr)
			return
		}
	}
	if jerr := d.ck.JournalCell(d.id, e); jerr != nil {
		// The run still has the result in memory; losing the journal
		// entry only costs a re-run on resume.
		span.EndErr(jerr)
		return
	}
	span.End()
	d.mu.Lock()
	d.journal[key] = e
	d.mu.Unlock()
}

func (d *durableRunner) noteReplay(sc obs.SpanContext, key string) {
	d.tr.Observe(sc, "journal.replay", key, time.Now(), 0, nil)
	d.mu.Lock()
	d.replayed++
	d.mu.Unlock()
}

// Replayed reports how many cells this campaign served from its
// journal without running them.
func (d *durableRunner) Replayed() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.replayed
}
