package campaign

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"zng/internal/cellkey"
	"zng/internal/config"
	"zng/internal/platform"
)

// fp makes a pointer-valued threshold for override literals.
func fp(v float64) *float64 { return &v }

func TestExpandGridOrderAndKeys(t *testing.T) {
	spec := Spec{
		Name:      "grid",
		Platforms: []string{"ZnG", "HybridGPU"},
		Scenarios: []string{"betw-back", "pr-gaus"},
		Scales:    []float64{0.1, 0.2},
		Overrides: []Override{{}, {L2Mult: 8}},
	}
	base := config.Default()
	cells, err := spec.Expand(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*2*2 {
		t.Fatalf("expanded %d cells, want 16", len(cells))
	}
	// Platform innermost, then scenario, then scale, then override.
	if cells[0].Kind != platform.ZnG || cells[1].Kind != platform.HybridGPU {
		t.Errorf("platform axis not innermost: %v, %v", cells[0].Kind, cells[1].Kind)
	}
	if cells[0].Mix.Name != "betw-back" || cells[2].Mix.Name != "pr-gaus" {
		t.Errorf("scenario axis order wrong: %q, %q", cells[0].Mix.Name, cells[2].Mix.Name)
	}
	if cells[0].Scale != 0.1 || cells[4].Scale != 0.2 {
		t.Errorf("scale axis order wrong: %v, %v", cells[0].Scale, cells[4].Scale)
	}
	if !cells[0].Override.IsZero() || cells[8].Override.L2Mult != 8 {
		t.Errorf("override axis order wrong: %+v, %+v", cells[0].Override, cells[8].Override)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d carries index %d", i, c.Index)
		}
		if want := cellkey.Key(c.Kind, c.Mix.ID(), c.Scale, c.Cfg); c.Key != want {
			t.Errorf("cell %d key is not the store's content address", i)
		}
	}
	// The grid is all-distinct here, so every key is unique.
	if got := UniqueCells(cells); got != len(cells) {
		t.Errorf("UniqueCells = %d, want %d", got, len(cells))
	}
	// Determinism: a second expansion is identical.
	again, err := spec.Expand(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, again) {
		t.Error("expansion is not deterministic")
	}
}

func TestExpandAliasingScenariosShareKeys(t *testing.T) {
	// consol-2 and bfs1-gaus alias the same composition: two grid
	// points, one content address.
	spec := Spec{Platforms: []string{"ZnG"}, Scenarios: []string{"consol-2", "bfs1-gaus"}, Scales: []float64{0.5}}
	cells, err := spec.Expand(config.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	if cells[0].Key != cells[1].Key {
		t.Error("aliasing scenarios did not share a content address")
	}
	if cells[0].Mix.Name == cells[1].Mix.Name {
		t.Error("aliasing scenarios lost their own labels")
	}
	if got := UniqueCells(cells); got != 1 {
		t.Errorf("UniqueCells = %d, want 1", got)
	}
}

func TestExpandAdhocScenario(t *testing.T) {
	// Both ad-hoc spellings — zngsim's comma syntax (spec files) and
	// the '+' mix-ID form (safe inside comma-separated flag lists) —
	// resolve to the same composed cell.
	for _, entry := range []string{"bfs1,gaus*1.5", "bfs1+gaus*1.5"} {
		spec := Spec{Platforms: []string{"GDDR5"}, Scenarios: []string{entry}, Scales: []float64{0.5}}
		cells, err := spec.Expand(config.Default())
		if err != nil {
			t.Fatal(err)
		}
		if len(cells) != 1 || cells[0].Mix.ID() != "bfs1+gaus*1.5" {
			t.Errorf("ad-hoc scenario %q resolved to %d cells, mix %q", entry, len(cells), cells[0].Mix.ID())
		}
	}
}

func TestExpandValidation(t *testing.T) {
	base := config.Default()
	for name, spec := range map[string]Spec{
		"no platforms":     {Scenarios: []string{"betw-back"}},
		"no scenarios":     {Platforms: []string{"ZnG"}},
		"unknown platform": {Platforms: []string{"GTX9000"}, Scenarios: []string{"betw-back"}},
		"unknown scenario": {Platforms: []string{"ZnG"}, Scenarios: []string{"no-such"}},
		"negative scale":   {Platforms: []string{"ZnG"}, Scenarios: []string{"betw-back"}, Scales: []float64{-1}},
		"zero scale":       {Platforms: []string{"ZnG"}, Scenarios: []string{"betw-back"}, Scales: []float64{0}},
		"bad override":     {Platforms: []string{"ZnG"}, Scenarios: []string{"betw-back"}, Overrides: []Override{{RegNet: "nope"}}},
		"bad waste":        {Platforms: []string{"ZnG"}, Scenarios: []string{"betw-back"}, Overrides: []Override{{HighWaste: fp(2)}}},
	} {
		if _, err := spec.Expand(base); err == nil {
			t.Errorf("%s: expansion succeeded, want error", name)
		}
	}
}

func TestOverrideApply(t *testing.T) {
	base := config.Default()
	ov := Override{L2Mult: 8, Channels: 8, PrefetchOff: true, HighWaste: fp(0.5), LowWaste: fp(0.1), RegNet: "SWnet"}
	cfg, err := ov.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.L2STT.Sets != base.L2SRAM.Sets*8 {
		t.Errorf("L2 sets = %d, want 8x SRAM", cfg.L2STT.Sets)
	}
	if cfg.Flash.Channels != 8 {
		t.Errorf("channels = %d", cfg.Flash.Channels)
	}
	if cfg.Prefetch.CutoffThresh <= 1<<base.Prefetch.CounterBits {
		t.Errorf("prefetch_off cutoff %d does not exceed counter saturation", cfg.Prefetch.CutoffThresh)
	}
	if cfg.Prefetch.HighWaste != 0.5 || cfg.Prefetch.LowWaste != 0.1 {
		t.Errorf("waste thresholds = %v/%v", cfg.Prefetch.HighWaste, cfg.Prefetch.LowWaste)
	}
	if cfg.RegCache.Net != config.SWnet {
		t.Errorf("reg net = %v", cfg.RegCache.Net)
	}
	// The base config is untouched and a zero override is a no-op.
	if !reflect.DeepEqual(base, config.Default()) {
		t.Error("Apply mutated the base configuration")
	}
	same, err := Override{}.Apply(base)
	if err != nil || !reflect.DeepEqual(same, base) {
		t.Errorf("zero override perturbed the configuration: %v", err)
	}
	// An explicit zero threshold is a real override, not "inherit".
	zeroed, err := Override{LowWaste: fp(0)}.Apply(base)
	if err != nil || zeroed.Prefetch.LowWaste != 0 {
		t.Errorf("explicit zero threshold not applied: %v, %v", zeroed.Prefetch.LowWaste, err)
	}
}

func TestOverrideLabels(t *testing.T) {
	for _, tc := range []struct {
		ov   Override
		want string
	}{
		{Override{}, "base"},
		{Override{Name: "tuned"}, "tuned"},
		{Override{L2Mult: 8, Channels: 8, PrefetchOff: true}, "l2x8+ch8+nopf"},
		{Override{HighWaste: fp(0.5), RegNet: "NiF"}, "hi0.5+NiF"},
		{Override{LowWaste: fp(0)}, "lo0"},
	} {
		if got := tc.ov.Label(); got != tc.want {
			t.Errorf("Label(%+v) = %q, want %q", tc.ov, got, tc.want)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := Spec{
		Name:      "l2-sweep",
		Platforms: []string{"ZnG"},
		Scenarios: []string{"betw-back"},
		Scales:    []float64{0.12},
		Overrides: []Override{{}, {L2Mult: 8}, {PrefetchOff: true}, {LowWaste: fp(0)}},
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Errorf("round trip lost data:\n%+v\n%+v", spec, back)
	}
}
