package campaign_test

import (
	"testing"

	"zng/internal/campaign"
	"zng/internal/experiments"
	"zng/internal/simsvc"
	"zng/internal/store"
)

// BenchmarkCampaignExecutor measures the campaign layer's overhead
// per cell against a warmed store at TestOptions scale: after the
// first execution lands every cell in the service's memory and on
// disk, each iteration re-executes the whole campaign and pays only
// expansion (content hashing per cell), scheduling and table folding
// — the sweep-layer cost on top of the serving path that
// BenchmarkServiceThroughput baselines per request.
func BenchmarkCampaignExecutor(b *testing.B) {
	o := experiments.TestOptions()
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	svc := simsvc.New(simsvc.Config{Store: st})
	defer svc.Close()

	spec := campaign.Spec{
		Name:      "bench",
		Platforms: []string{"GDDR5"},
		Scenarios: []string{"solo-bfs1", "solo-gaus", "solo-pr"},
		Scales:    []float64{o.Scale},
	}
	ex := campaign.Executor{Runner: svc}
	// Warm: one execution simulates the cells once.
	out, err := ex.Execute(spec, o.Cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := out.Err(); err != nil {
		b.Fatal(err)
	}
	cells := len(out.Cells)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := ex.Execute(spec, o.Cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := out.Err(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := svc.Stats(); st.Sims != uint64(cells) {
		b.Fatalf("benchmark simulated %d cells, want only the %d warmup cells", st.Sims, cells)
	}
	b.ReportMetric(float64(b.N*cells)/b.Elapsed().Seconds(), "cells/s")
}
