package campaign

import (
	"fmt"
	"sync"

	"zng/internal/config"
	"zng/internal/obs"
)

// Campaign is one managed campaign: the spec it was started from,
// its id, and the underlying Run handle.
type Campaign struct {
	ID   string
	Spec Spec
	run  *Run
}

// NewCampaign binds an externally managed id to a started Run — the
// constructor durable coordinators (internal/fleet) use to run
// campaigns under content-addressed ids while reusing the Executor's
// machinery. Manager-started campaigns get sequential ids instead.
func NewCampaign(id string, spec Spec, run *Run) *Campaign {
	return &Campaign{ID: id, Spec: spec, run: run}
}

// Progress snapshots the campaign's live counters.
func (c *Campaign) Progress() Progress { return c.run.Progress() }

// Done reports completion without blocking.
func (c *Campaign) Done() bool { return c.run.Done() }

// Outcome returns the completed outcome, or nil while running.
func (c *Campaign) Outcome() *Outcome { return c.run.Outcome() }

// Wait blocks until every cell resolves and returns the outcome.
func (c *Campaign) Wait() *Outcome { return c.run.Wait() }

// Cells returns the campaign's expanded grid.
func (c *Campaign) Cells() []Cell { return c.run.Cells() }

// Trace reports the campaign's root trace id (0 when untraced).
func (c *Campaign) Trace() obs.ID { return c.run.Trace() }

// DefaultMaxCampaigns bounds the finished campaigns a Manager
// retains. A finished campaign's Outcome carries every cell's result
// plus a full config per cell, so unbounded retention would grow a
// long-lived daemon's heap the same way unbounded job history did
// before MaxJobs eviction; evicted campaign ids read as unknown, and
// their per-cell results remain wherever the runner put them (for
// zngd, the store).
const DefaultMaxCampaigns = 64

// Manager owns the asynchronous campaign lifecycle behind the zngd
// HTTP API: Start expands and launches a spec, returning an id the
// client can poll for progress and — once finished — the result
// matrix. Retention is bounded: past MaxCampaigns, the oldest
// finished campaigns are evicted (running ones always stay); their
// per-cell results live in whatever runner executed them (for zngd,
// the store-backed service, so a restarted daemon re-serves the
// cells from disk even though the campaign ids themselves are not
// persistent).
type Manager struct {
	exec Executor
	base config.Config
	max  int // guarded by mu (constructor-set, then only mutated via SetMaxCampaigns)

	mu     sync.Mutex
	nextID int                  // guarded by mu
	order  []*Campaign          // guarded by mu
	byID   map[string]*Campaign // guarded by mu
}

// NewManager builds a manager that executes every campaign through
// the given runner against the base configuration (overrides perturb
// copies of it per cell). Retention defaults to DefaultMaxCampaigns.
func NewManager(r Runner, base config.Config, workers int) *Manager {
	return &Manager{
		exec: Executor{Runner: r, Workers: workers},
		base: base,
		max:  DefaultMaxCampaigns,
		byID: map[string]*Campaign{},
	}
}

// SetTracer wires a tracer into the manager's executor: every
// campaign started afterwards roots a trace. Call before serving
// traffic (the zngd handler does, right after construction).
func (m *Manager) SetTracer(t *obs.Tracer) { m.exec.Tracer = t }

// SetMaxCampaigns overrides the retention bound (0 = unbounded).
func (m *Manager) SetMaxCampaigns(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.max = n
	m.evictLocked()
}

// Start expands and launches a campaign, returning its handle. A spec
// that fails to expand starts nothing.
func (m *Manager) Start(spec Spec) (*Campaign, error) {
	run, err := m.exec.Start(spec, m.base)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.nextID++
	c := &Campaign{ID: fmt.Sprintf("c-%d", m.nextID), Spec: spec, run: run}
	m.order = append(m.order, c)
	m.byID[c.ID] = c
	m.evictLocked()
	m.mu.Unlock()
	// Re-evict when this campaign finishes: campaigns that were
	// running (unevictable) during later Starts must not linger past
	// the bound just because no further Start ever happens.
	go func() {
		run.Wait()
		m.mu.Lock()
		m.evictLocked()
		m.mu.Unlock()
	}()
	return c, nil
}

// evictLocked drops the oldest finished campaigns past the bound.
// Running campaigns are never evicted, so the retained count can
// transiently exceed the bound while more than max campaigns are
// still in flight.
func (m *Manager) evictLocked() {
	if m.max <= 0 || len(m.order) <= m.max {
		return
	}
	excess := len(m.order) - m.max
	keep := m.order[:0]
	for _, c := range m.order {
		if excess > 0 && c.Done() {
			delete(m.byID, c.ID)
			excess--
			continue
		}
		keep = append(keep, c)
	}
	for i := len(keep); i < len(m.order); i++ {
		m.order[i] = nil
	}
	m.order = keep
}

// Get resolves a campaign by id.
func (m *Manager) Get(id string) (*Campaign, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.byID[id]
	return c, ok
}

// List snapshots every campaign in start order.
func (m *Manager) List() []*Campaign {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Campaign, len(m.order))
	copy(out, m.order)
	return out
}
