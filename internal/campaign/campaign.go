// Package campaign turns the evaluation matrix into a first-class
// object: a declarative Spec names a grid — platforms × workload
// scenarios × trace scales × configuration overrides — and expands
// deterministically into content-addressed simulation cells, the same
// (kind, mix ID, scale, config) identity the persistent store
// (internal/store) hashes, so identical cells across campaigns dedupe
// through whatever runner executes them. The paper's evaluation is
// exactly such a matrix (six platforms × twelve co-run pairs plus
// ablation sweeps, Section V); before this package every sweep was
// hand-rolled inside an internal/experiments figure driver.
//
// An Executor drives the cells through any runner — the in-memory
// experiments memo, the store-backed simsvc scheduler, or an
// internal/remote dispatcher fanning out over zngd peers — with
// bounded concurrency, per-cell retry, live progress counters and
// partial-failure reporting, and folds the results into a
// stats.Table matrix that internal/report renders like any figure.
// The Manager adds an asynchronous lifecycle (start, poll progress by
// campaign id, collect the outcome) for the zngd HTTP API.
package campaign

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"zng/internal/cellkey"
	"zng/internal/config"
	"zng/internal/platform"
	"zng/internal/workload"
)

// Runner answers one simulation cell. It is structurally identical to
// experiments.Runner — re-declared here (rather than imported) so the
// experiments figure drivers can themselves build their matrices
// through a campaign without an import cycle. Any experiments.Runner
// (the memo, the simsvc service, a remote dispatcher) satisfies it.
type Runner interface {
	Run(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error)
}

// Override is one declarative configuration perturbation of a
// campaign axis. Every field's zero value means "inherit the base
// configuration", so overrides compose a sparse diff rather than a
// full config — the JSON form is what a zngsweep spec file or a
// POST /v1/campaigns body carries. The knobs are the ones the
// paper's own sensitivity studies turn: L2 capacity (Sec. IV-B),
// flash channel count (Table I), the prefetcher and its waste
// thresholds (Sec. V-D), and the register-cache interconnect
// (Sec. IV-C).
type Override struct {
	// Name labels the override in tables and progress output; derived
	// from the set fields when empty.
	Name string `json:"name,omitempty"`
	// L2Mult sets the STT-MRAM L2 to L2Mult× the SRAM L2's sets, the
	// axis the abl-l2 sweep walks (Table I ships 4×).
	L2Mult int `json:"l2_mult,omitempty"`
	// Channels overrides the flash channel count (Table I: 16).
	Channels int `json:"channels,omitempty"`
	// PrefetchOff disables the dynamic read prefetcher by lifting the
	// cutoff threshold above the predictor counter's saturation point.
	PrefetchOff bool `json:"prefetch_off,omitempty"`
	// HighWaste / LowWaste override the access monitor's waste
	// thresholds (the Fig. 13 sweep axes; the paper lands on
	// 0.3/0.05). Pointers, because 0 is a meaningful threshold — nil
	// means "inherit the base", *0 means zero.
	HighWaste *float64 `json:"high_waste,omitempty"`
	LowWaste  *float64 `json:"low_waste,omitempty"`
	// RegNet selects the flash-register interconnect: SWnet, FCnet or
	// NiF (the abl-writenet axis).
	RegNet string `json:"reg_net,omitempty"`
}

// IsZero reports whether the override perturbs nothing (the base
// configuration cell).
func (ov Override) IsZero() bool {
	return ov.L2Mult == 0 && ov.Channels == 0 && !ov.PrefetchOff &&
		ov.HighWaste == nil && ov.LowWaste == nil && ov.RegNet == ""
}

// Label names the override for table rows and progress lines: the
// explicit Name when set, "base" for the zero override, and a
// deterministic field summary like "l2x8+ch8+nopf" otherwise.
func (ov Override) Label() string {
	if ov.Name != "" {
		return ov.Name
	}
	var parts []string
	if ov.L2Mult != 0 {
		parts = append(parts, fmt.Sprintf("l2x%d", ov.L2Mult))
	}
	if ov.Channels != 0 {
		parts = append(parts, fmt.Sprintf("ch%d", ov.Channels))
	}
	if ov.PrefetchOff {
		parts = append(parts, "nopf")
	}
	if ov.HighWaste != nil {
		parts = append(parts, "hi"+strconv.FormatFloat(*ov.HighWaste, 'g', -1, 64))
	}
	if ov.LowWaste != nil {
		parts = append(parts, "lo"+strconv.FormatFloat(*ov.LowWaste, 'g', -1, 64))
	}
	if ov.RegNet != "" {
		parts = append(parts, ov.RegNet)
	}
	if len(parts) == 0 {
		return "base"
	}
	return strings.Join(parts, "+")
}

// regNetByName resolves the RegNet vocabulary through the config
// package's Stringer, so a new interconnect shows up here for free.
func regNetByName(name string) (config.RegCacheNet, error) {
	for _, n := range []config.RegCacheNet{config.SWnet, config.FCnet, config.NiF} {
		if n.String() == name {
			return n, nil
		}
	}
	return 0, fmt.Errorf("campaign: unknown reg_net %q (valid: SWnet, FCnet, NiF)", name)
}

// Apply validates the override and returns the base configuration
// with the set fields perturbed.
func (ov Override) Apply(base config.Config) (config.Config, error) {
	cfg := base
	if ov.L2Mult < 0 {
		return cfg, fmt.Errorf("campaign: override %s: l2_mult %d must be positive", ov.Label(), ov.L2Mult)
	}
	if ov.L2Mult > 0 {
		cfg.L2STT.Sets = cfg.L2SRAM.Sets * ov.L2Mult
	}
	if ov.Channels < 0 {
		return cfg, fmt.Errorf("campaign: override %s: channels %d must be positive", ov.Label(), ov.Channels)
	}
	if ov.Channels > 0 {
		cfg.Flash.Channels = ov.Channels
	}
	if ov.PrefetchOff {
		// The predictor counter saturates at 2^CounterBits-1; a cutoff
		// above that can never be exceeded, so no prefetch ever issues.
		cfg.Prefetch.CutoffThresh = 1 << 30
	}
	for _, w := range []struct {
		name string
		v    *float64
		dst  *float64
	}{{"high_waste", ov.HighWaste, &cfg.Prefetch.HighWaste}, {"low_waste", ov.LowWaste, &cfg.Prefetch.LowWaste}} {
		if w.v == nil {
			continue
		}
		if *w.v < 0 || *w.v > 1 || math.IsNaN(*w.v) {
			return cfg, fmt.Errorf("campaign: override %s: %s %v outside [0, 1]", ov.Label(), w.name, *w.v)
		}
		*w.dst = *w.v
	}
	if ov.RegNet != "" {
		net, err := regNetByName(ov.RegNet)
		if err != nil {
			return cfg, err
		}
		cfg.RegCache.Net = net
	}
	return cfg, nil
}

// Spec declares one campaign: the full cross product of its four
// axes. Platforms and Scenarios are required; Scales defaults to
// {1.0} (the Table II trace budgets) and Overrides to the single base
// configuration. Scenario entries name registered scenarios
// (workload.Scenarios) or ad-hoc compositions — zngsim's -apps
// syntax ("bfs1,gaus*1.5") or the comma-free mix-ID form
// ("bfs1+gaus*1.5", safe inside comma-separated flag lists).
type Spec struct {
	Name      string     `json:"name,omitempty"`
	Platforms []string   `json:"platforms"`
	Scenarios []string   `json:"scenarios"`
	Scales    []float64  `json:"scales,omitempty"`
	Overrides []Override `json:"overrides,omitempty"`
}

// Cell is one expanded grid point, content-addressed by Key — the
// exact store.CellKey the persistent store and the simsvc scheduler
// hash, so a cell this campaign shares with any past campaign (or any
// figure driver) is the same entry everywhere.
type Cell struct {
	// Index is the cell's position in expansion order.
	Index    int
	Kind     platform.Kind
	Mix      workload.Mix
	Scale    float64
	Override Override
	// Cfg is the base configuration with Override applied.
	Cfg config.Config
	// Key is the cell's content address (store.CellKey).
	Key string
}

// resolveScenario accepts a registered scenario name or an ad-hoc
// composition in either zngsim's -apps syntax ("bfs1,gaus*1.5") or
// the mix-ID form with '+' separators ("bfs1+gaus*1.5"). The '+'
// form exists so comma-separated scenario lists (zngsweep
// -scenarios) can carry multi-app compositions unambiguously.
func resolveScenario(name string) (workload.Mix, error) {
	m, err := workload.MixByName(name)
	if err == nil {
		return m, nil
	}
	am, aerr := workload.ParseApps(strings.ReplaceAll(name, "+", ","))
	if aerr == nil {
		return am, nil
	}
	// A separator marks the entry as clearly ad-hoc: report the
	// composition parser's diagnostic (a weight typo, an unknown app)
	// rather than a misleading "unknown scenario".
	if strings.ContainsAny(name, "+,") {
		return workload.Mix{}, aerr
	}
	return workload.Mix{}, err
}

// Expand validates the spec against the base configuration and
// returns the grid in deterministic order: overrides outermost, then
// scales, then scenarios, then platforms — so a result matrix groups
// naturally into one (override, scale) block of scenario rows ×
// platform columns. Cells that alias the same content (two scenario
// names with one composition) keep separate grid points with their
// own labels; any Runner dedupes them by Key.
func (s Spec) Expand(base config.Config) ([]Cell, error) {
	if len(s.Platforms) == 0 {
		return nil, fmt.Errorf("campaign: spec %q lists no platforms", s.Name)
	}
	if len(s.Scenarios) == 0 {
		return nil, fmt.Errorf("campaign: spec %q lists no scenarios", s.Name)
	}
	kinds := make([]platform.Kind, len(s.Platforms))
	for i, name := range s.Platforms {
		k, err := platform.KindByName(name)
		if err != nil {
			return nil, err
		}
		kinds[i] = k
	}
	mixes := make([]workload.Mix, len(s.Scenarios))
	for i, name := range s.Scenarios {
		m, err := resolveScenario(name)
		if err != nil {
			return nil, err
		}
		mixes[i] = m
	}
	scales := s.Scales
	if len(scales) == 0 {
		scales = []float64{1}
	}
	for _, sc := range scales {
		if !(sc > 0) || math.IsInf(sc, 0) {
			return nil, fmt.Errorf("campaign: scale must be positive and finite, got %v", sc)
		}
	}
	overrides := s.Overrides
	if len(overrides) == 0 {
		overrides = []Override{{}}
	}

	cells := make([]Cell, 0, len(overrides)*len(scales)*len(mixes)*len(kinds))
	for _, ov := range overrides {
		cfg, err := ov.Apply(base)
		if err != nil {
			return nil, err
		}
		for _, sc := range scales {
			for _, m := range mixes {
				for _, k := range kinds {
					cells = append(cells, Cell{
						Index:    len(cells),
						Kind:     k,
						Mix:      m,
						Scale:    sc,
						Override: ov,
						Cfg:      cfg,
						Key:      cellkey.Key(k, m.ID(), sc, cfg),
					})
				}
			}
		}
	}
	return cells, nil
}

// UniqueCells counts the distinct content addresses in a cell list —
// the number of simulations a deduplicating runner actually pays for.
func UniqueCells(cells []Cell) int {
	seen := make(map[string]struct{}, len(cells))
	for _, c := range cells {
		seen[c.Key] = struct{}{}
	}
	return len(seen)
}
