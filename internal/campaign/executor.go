package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"zng/internal/config"
	"zng/internal/obs"
	"zng/internal/platform"
	"zng/internal/stats"
	"zng/internal/workload"
)

// TracedRunner is the optional traced execution surface a Runner may
// additionally implement (simsvc.Service, remote.Dispatcher,
// fleet.Coordinator do): Run with the caller's span context attached,
// so the cell's downstream lifecycle — dispatch pick, peer round
// trip, queue wait, tier lookups, simulation — records under the
// campaign's trace. The executor type-asserts for it per cell; plain
// Runners (the experiments memo) still work untraced.
type TracedRunner interface {
	RunTraced(sc obs.SpanContext, kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error)
}

// Executor drives expanded cells through a Runner with bounded
// concurrency and per-cell retry. The zero value is not usable: a
// Runner is required. Individual simulations stay single-threaded and
// deterministic; Workers only bounds how many cells are in flight,
// and a deduplicating runner (memo, simsvc, dispatcher) still
// coalesces identical cells submitted concurrently.
type Executor struct {
	// Runner answers cells; required.
	Runner Runner
	// Workers bounds concurrent in-flight cells (0 = NumCPU).
	Workers int
	// Retries is the number of extra attempts a failed cell gets.
	// Against a deterministic local runner a retry replays the cached
	// error cheaply; against a remote dispatcher it rides out peer
	// churn between attempts.
	Retries int
	// Tracer, when set, roots one trace per campaign (unsampled — the
	// caller asked for this sweep) with a child span per cell, and
	// passes each cell's context to the Runner when it implements
	// TracedRunner. nil runs untraced.
	Tracer *obs.Tracer
}

func (e Executor) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.NumCPU()
}

// Progress is a live snapshot of one executing campaign.
type Progress struct {
	// Total is the cell count of the expanded grid.
	Total int `json:"total"`
	// Done counts cells that finished successfully.
	Done int `json:"done"`
	// Failed counts cells whose final attempt errored.
	Failed int `json:"failed"`
	// Retried counts extra attempts spent on failing cells.
	Retried int `json:"retried"`
}

// Finished reports whether every cell has resolved.
func (p Progress) Finished() bool { return p.Done+p.Failed == p.Total }

// CellResult is one cell's outcome.
type CellResult struct {
	Cell     Cell
	Result   platform.Result
	Err      error
	Attempts int
}

// Outcome is a completed campaign: every cell in expansion order,
// with partial failure recorded per cell instead of aborting the
// grid — a 1000-cell sweep with one deadlocked configuration still
// reports the other 999.
type Outcome struct {
	Spec  Spec
	Cells []CellResult
}

// Failed counts the cells whose final attempt errored.
func (o *Outcome) Failed() int {
	n := 0
	for _, c := range o.Cells {
		if c.Err != nil {
			n++
		}
	}
	return n
}

// Err summarizes partial failure: nil when every cell succeeded,
// otherwise an error naming the failure count and the first failing
// cell.
func (o *Outcome) Err() error {
	for _, c := range o.Cells {
		if c.Err != nil {
			return fmt.Errorf("campaign: %d of %d cells failed (first: %s on %s: %v)",
				o.Failed(), len(o.Cells), c.Cell.Kind, c.Cell.Mix.Name, c.Err)
		}
	}
	return nil
}

// Table folds the outcome into the report-compatible matrix: one row
// per (override, scale, scenario), one IPC column per platform, in
// expansion order. The override and scale columns appear only when
// that axis has more than one value, so a plain platform × scenario
// campaign reads like a Fig. 10 row block. Failed cells render as
// ERROR — the partial matrix is still a document.
func (o *Outcome) Table() *stats.Table {
	title := o.Spec.Name
	if title == "" {
		title = "campaign"
	}
	multiOv := len(o.Spec.Overrides) > 1
	multiSc := len(o.Spec.Scales) > 1
	header := []string{"scenario"}
	if multiSc {
		header = append(header, "scale")
	}
	if multiOv {
		header = append(header, "config")
	}
	header = append(header, o.Spec.Platforms...)
	t := stats.NewTable(title, header...)

	// Cells arrive platform-innermost, so each run of len(Platforms)
	// results is one table row.
	for at := 0; at+len(o.Spec.Platforms) <= len(o.Cells); at += len(o.Spec.Platforms) {
		first := o.Cells[at]
		row := []any{first.Cell.Mix.Name}
		if multiSc {
			row = append(row, stats.FormatFloat(first.Cell.Scale))
		}
		if multiOv {
			row = append(row, first.Cell.Override.Label())
		}
		for i := 0; i < len(o.Spec.Platforms); i++ {
			cr := o.Cells[at+i]
			if cr.Err != nil {
				row = append(row, "ERROR")
			} else {
				row = append(row, cr.Result.IPC)
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Run is one executing campaign: a handle to poll while the grid
// drains and to wait on for the outcome.
type Run struct {
	spec  Spec
	cells []Cell
	// trace is the campaign's root trace id (0 when untraced) — the
	// handle /v1/trace/{id} reconstructs the span tree under.
	trace obs.ID

	total   int
	done    atomic.Int64
	failed  atomic.Int64
	retried atomic.Int64

	finished chan struct{}
	outcome  *Outcome
}

// Trace reports the campaign's root trace id (0 when the executor ran
// untraced).
func (r *Run) Trace() obs.ID { return r.trace }

// Start expands the spec against the base configuration and launches
// every cell through the executor's runner. It returns immediately;
// poll Progress or block on Wait. Expansion errors (unknown platform
// or scenario, bad scale, invalid override) fail fast before any
// simulation starts.
func (e Executor) Start(spec Spec, base config.Config) (*Run, error) {
	if e.Runner == nil {
		return nil, fmt.Errorf("campaign: executor has no runner")
	}
	cells, err := spec.Expand(base)
	if err != nil {
		return nil, err
	}
	// The Table fold reads the axis lengths off the spec, so pin the
	// defaults Expand applied.
	if len(spec.Scales) == 0 {
		spec.Scales = []float64{1}
	}
	if len(spec.Overrides) == 0 {
		spec.Overrides = []Override{{}}
	}
	r := &Run{
		spec:     spec,
		cells:    cells,
		total:    len(cells),
		finished: make(chan struct{}),
	}
	// The campaign root span begins before Start returns, so the API
	// layer can hand the trace id back in the 202 reply while cells
	// are still in flight.
	var root *obs.Span
	if e.Tracer != nil {
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("%d cells", len(cells))
		}
		root = e.Tracer.StartRoot("campaign", name)
		r.trace = root.Context().Trace
	}
	go r.execute(e, root)
	return r, nil
}

// Execute is the synchronous convenience: Start then Wait.
func (e Executor) Execute(spec Spec, base config.Config) (*Outcome, error) {
	run, err := e.Start(spec, base)
	if err != nil {
		return nil, err
	}
	return run.Wait(), nil
}

func (r *Run) execute(e Executor, root *obs.Span) {
	results := make([]CellResult, len(r.cells))
	sem := make(chan struct{}, e.workers())
	rootCtx := root.Context()
	traced, _ := e.Runner.(TracedRunner)
	var wg sync.WaitGroup
	for i, c := range r.cells {
		i, c := i, c
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer func() { <-sem; wg.Done() }()
			// One span per cell covering every attempt; the runner's
			// own spans (dispatch, peer, queue, sim) nest under it.
			cell := e.Tracer.StartSpan(rootCtx,
				"cell", fmt.Sprintf("%s/%s@%s", c.Kind, c.Mix.Name, stats.FormatFloat(c.Scale)))
			cr := CellResult{Cell: c}
			for attempt := 0; attempt <= e.Retries; attempt++ {
				cr.Attempts = attempt + 1
				if sc := cell.Context(); sc.Valid() && traced != nil {
					cr.Result, cr.Err = traced.RunTraced(sc, c.Kind, c.Mix, c.Scale, c.Cfg)
				} else {
					cr.Result, cr.Err = e.Runner.Run(c.Kind, c.Mix, c.Scale, c.Cfg)
				}
				if cr.Err == nil {
					break
				}
				if attempt < e.Retries {
					r.retried.Add(1)
				}
			}
			cell.EndErr(cr.Err)
			results[i] = cr
			if cr.Err != nil {
				r.failed.Add(1)
			} else {
				r.done.Add(1)
			}
		}()
	}
	wg.Wait()
	r.outcome = &Outcome{Spec: r.spec, Cells: results}
	root.EndErr(r.outcome.Err())
	close(r.finished)
}

// Progress snapshots the live counters.
func (r *Run) Progress() Progress {
	return Progress{
		Total:   r.total,
		Done:    int(r.done.Load()),
		Failed:  int(r.failed.Load()),
		Retried: int(r.retried.Load()),
	}
}

// Cells returns the expanded grid (expansion order).
func (r *Run) Cells() []Cell { return r.cells }

// Done reports whether the campaign has finished without blocking.
func (r *Run) Done() bool {
	select {
	case <-r.finished:
		return true
	default:
		return false
	}
}

// Wait blocks until every cell resolves and returns the outcome.
func (r *Run) Wait() *Outcome {
	<-r.finished
	return r.outcome
}

// Outcome returns the completed outcome, or nil while cells are still
// in flight.
func (r *Run) Outcome() *Outcome {
	if !r.Done() {
		return nil
	}
	return r.outcome
}
