package campaign

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"zng/internal/config"
	"zng/internal/platform"
	"zng/internal/workload"
)

// stubRunner answers cells from a function while counting calls and
// tracking peak concurrency.
type stubRunner struct {
	mu      sync.Mutex
	calls   int
	active  int
	peak    int
	fn      func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error)
	stall   time.Duration
	failFor map[string]int // mix name -> remaining failures
}

func (s *stubRunner) Run(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	s.mu.Lock()
	s.calls++
	s.active++
	if s.active > s.peak {
		s.peak = s.active
	}
	fail := false
	if s.failFor[mix.Name] > 0 {
		s.failFor[mix.Name]--
		fail = true
	}
	s.mu.Unlock()
	if s.stall > 0 {
		time.Sleep(s.stall)
	}
	defer func() {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}()
	if fail {
		return platform.Result{}, errors.New("transient failure")
	}
	if s.fn != nil {
		return s.fn(kind, mix, scale, cfg)
	}
	return platform.Result{Kind: kind, Workload: mix.Name, IPC: scale * 10}, nil
}

func soloSpec(n int) Spec {
	apps := []string{"solo-bfs1", "solo-gaus", "solo-pr", "solo-back", "solo-betw", "solo-deg"}
	return Spec{Name: "test", Platforms: []string{"ZnG"}, Scenarios: apps[:n], Scales: []float64{0.5}}
}

func TestExecutorRunsEveryCellOnce(t *testing.T) {
	r := &stubRunner{}
	ex := Executor{Runner: r, Workers: 3}
	out, err := ex.Execute(Spec{
		Name:      "full",
		Platforms: []string{"ZnG", "HybridGPU"},
		Scenarios: []string{"betw-back", "pr-gaus", "bfs1-gaus"},
		Scales:    []float64{0.5},
	}, config.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Err(); err != nil {
		t.Fatal(err)
	}
	if r.calls != 6 {
		t.Errorf("runner saw %d calls, want 6 (one per cell)", r.calls)
	}
	if out.Failed() != 0 || len(out.Cells) != 6 {
		t.Errorf("outcome: %d cells, %d failed", len(out.Cells), out.Failed())
	}
	for i, cr := range out.Cells {
		if cr.Err != nil || cr.Result.IPC != 5 || cr.Attempts != 1 {
			t.Errorf("cell %d: %+v", i, cr)
		}
		if cr.Cell.Index != i {
			t.Errorf("cell %d out of expansion order (index %d)", i, cr.Cell.Index)
		}
	}
}

func TestExecutorBoundsConcurrency(t *testing.T) {
	r := &stubRunner{stall: 20 * time.Millisecond}
	ex := Executor{Runner: r, Workers: 2}
	out, err := ex.Execute(soloSpec(6), config.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Err(); err != nil {
		t.Fatal(err)
	}
	if r.peak > 2 {
		t.Errorf("peak concurrency %d exceeds Workers=2", r.peak)
	}
}

func TestExecutorRetriesAndPartialFailure(t *testing.T) {
	// solo-gaus fails once then succeeds (a peer blip); solo-pr fails
	// forever (a broken cell). With one retry the campaign completes
	// all but solo-pr and reports the partial failure per cell.
	r := &stubRunner{failFor: map[string]int{"solo-gaus": 1, "solo-pr": 1 << 30}}
	ex := Executor{Runner: r, Workers: 1, Retries: 1}
	run, err := ex.Start(soloSpec(3), config.Default())
	if err != nil {
		t.Fatal(err)
	}
	out := run.Wait()
	if p := run.Progress(); p.Retried != 2 || p.Failed != 1 || p.Done != 2 {
		t.Errorf("progress = %+v, want 2 retried, 1 failed, 2 done", p)
	}
	if out.Failed() != 1 {
		t.Fatalf("failed = %d, want 1", out.Failed())
	}
	byName := map[string]CellResult{}
	for _, cr := range out.Cells {
		byName[cr.Cell.Mix.Name] = cr
	}
	if cr := byName["solo-bfs1"]; cr.Err != nil || cr.Attempts != 1 {
		t.Errorf("clean cell: %+v", cr)
	}
	if cr := byName["solo-gaus"]; cr.Err != nil || cr.Attempts != 2 {
		t.Errorf("retried cell: err=%v attempts=%d, want recovery on attempt 2", cr.Err, cr.Attempts)
	}
	if cr := byName["solo-pr"]; cr.Err == nil || cr.Attempts != 2 {
		t.Errorf("broken cell: err=%v attempts=%d, want exhausted retries", cr.Err, cr.Attempts)
	}
	if err := out.Err(); err == nil || !strings.Contains(err.Error(), "1 of 3") {
		t.Errorf("outcome error = %v, want partial-failure summary", err)
	}
}

func TestExecutorProgressCounters(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	r := &stubRunner{fn: func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		started <- struct{}{}
		<-gate
		return platform.Result{IPC: 1}, nil
	}}
	ex := Executor{Runner: r, Workers: 2}
	run, err := ex.Start(soloSpec(4), config.Default())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	<-started
	if p := run.Progress(); p.Total != 4 || p.Done != 0 || p.Finished() {
		t.Errorf("mid-flight progress = %+v", p)
	}
	if run.Done() {
		t.Error("Done() true while cells in flight")
	}
	if run.Outcome() != nil {
		t.Error("Outcome() non-nil while running")
	}
	close(gate)
	out := run.Wait()
	if p := run.Progress(); p.Done != 4 || !p.Finished() {
		t.Errorf("final progress = %+v", p)
	}
	if out.Err() != nil || !run.Done() {
		t.Errorf("outcome err = %v", out.Err())
	}
}

func TestOutcomeTableFold(t *testing.T) {
	r := &stubRunner{fn: func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		if mix.Name == "solo-pr" && kind == platform.HybridGPU {
			return platform.Result{}, errors.New("deadlock")
		}
		// A recognizable IPC per cell axis point.
		ipc := float64(len(mix.Name)) * scale
		if cfg.L2STT.Sets > config.Default().L2STT.Sets {
			ipc *= 2
		}
		return platform.Result{Kind: kind, Workload: mix.Name, IPC: ipc}, nil
	}}
	spec := Spec{
		Name:      "fold",
		Platforms: []string{"ZnG", "HybridGPU"},
		Scenarios: []string{"solo-bfs1", "solo-pr"},
		Scales:    []float64{0.5, 1},
		Overrides: []Override{{}, {L2Mult: 16}},
	}
	out, err := Executor{Runner: r, Workers: 4}.Execute(spec, config.Default())
	if err != nil {
		t.Fatal(err)
	}
	tab := out.Table()
	wantHeader := []string{"scenario", "scale", "config", "ZnG", "HybridGPU"}
	if got := tab.Header(); fmt.Sprint(got) != fmt.Sprint(wantHeader) {
		t.Fatalf("header = %v, want %v", got, wantHeader)
	}
	if tab.Rows() != 2*2*2 {
		t.Fatalf("rows = %d, want 8 (scenario x scale x override)", tab.Rows())
	}
	// Row 0: base override, scale 0.5, solo-bfs1.
	row := tab.Row(0)
	if row[0] != "solo-bfs1" || row[1] != "0.5" || row[2] != "base" {
		t.Errorf("row 0 axes = %v", row[:3])
	}
	if row[3] != "4.5" { // len("solo-bfs1") = 9, * 0.5
		t.Errorf("row 0 ZnG IPC = %q, want 4.5", row[3])
	}
	// The failing cell renders ERROR without suppressing the matrix.
	foundErr := false
	for i := 0; i < tab.Rows(); i++ {
		if tab.Row(i)[0] == "solo-pr" && tab.Row(i)[4] == "ERROR" {
			foundErr = true
		}
	}
	if !foundErr {
		t.Error("failed cell did not render as ERROR")
	}
	// The l2x16 block doubles ZnG IPC, proving the override reached
	// the runner's cfg.
	last := tab.Row(tab.Rows() - 2) // l2x16, scale 1, solo-bfs1
	if last[2] != "l2x16" || last[3] != "18" {
		t.Errorf("override row = %v, want l2x16 with doubled IPC 18", last)
	}
}

func TestExecutorStartValidation(t *testing.T) {
	if _, err := (Executor{}).Start(soloSpec(1), config.Default()); err == nil {
		t.Error("runnerless executor started")
	}
	if _, err := (Executor{Runner: &stubRunner{}}).Start(Spec{}, config.Default()); err == nil {
		t.Error("empty spec expanded")
	}
}

func TestManagerLifecycle(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 4)
	r := &stubRunner{fn: func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		started <- struct{}{}
		<-gate
		return platform.Result{IPC: 2}, nil
	}}
	m := NewManager(r, config.Default(), 2)
	c, err := m.Start(soloSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != "c-1" {
		t.Errorf("id = %q", c.ID)
	}
	if _, ok := m.Get("c-1"); !ok {
		t.Error("Get(c-1) missed")
	}
	if _, ok := m.Get("c-99"); ok {
		t.Error("Get(c-99) hit")
	}
	<-started
	if c.Done() || c.Outcome() != nil {
		t.Error("campaign done before cells resolved")
	}
	close(gate)
	for !c.Done() {
		time.Sleep(time.Millisecond)
	}
	if out := c.Outcome(); out == nil || out.Err() != nil {
		t.Errorf("outcome = %+v", out)
	}
	if c2, err := m.Start(soloSpec(1)); err != nil || c2.ID != "c-2" {
		t.Errorf("second campaign = %v, %v", c2, err)
	}
	if got := m.List(); len(got) != 2 || got[0].ID != "c-1" || got[1].ID != "c-2" {
		t.Errorf("List = %v", got)
	}
	if _, err := m.Start(Spec{}); err == nil {
		t.Error("manager started an unexpandable spec")
	}
}

// TestManagerEvictsFinishedCampaigns: past the retention bound the
// oldest finished campaigns disappear (their ids read as unknown)
// while running campaigns always survive.
func TestManagerEvictsFinishedCampaigns(t *testing.T) {
	r := &stubRunner{}
	m := NewManager(r, config.Default(), 1)
	m.SetMaxCampaigns(2)
	for i := 0; i < 3; i++ {
		c, err := m.Start(soloSpec(1))
		if err != nil {
			t.Fatal(err)
		}
		c.run.Wait()
	}
	if _, ok := m.Get("c-1"); ok {
		t.Error("oldest finished campaign survived eviction")
	}
	if _, ok := m.Get("c-3"); !ok {
		t.Error("newest campaign was evicted")
	}
	if got := len(m.List()); got != 2 {
		t.Errorf("retained campaigns = %d, want 2", got)
	}

	// A running campaign is never evicted, even at the bound.
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	rg := &stubRunner{fn: func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		started <- struct{}{}
		<-gate
		return platform.Result{IPC: 1}, nil
	}}
	m2 := NewManager(rg, config.Default(), 1)
	m2.SetMaxCampaigns(1)
	running, err := m2.Start(soloSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// Finished campaigns beyond the bound evict around the running one.
	if _, err := m2.Start(soloSpec(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.Get(running.ID); !ok {
		t.Error("running campaign was evicted")
	}
	close(gate)
}
