package simsvc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"zng/internal/config"
	"zng/internal/fleet"
	"zng/internal/store"
)

// newFleetServer boots the API as a fleet coordinator over a stub
// simulator and a store rooted at dir.
func newFleetServer(t *testing.T, dir string, sim SimFunc) (*httptest.Server, *Service, *fleet.Coordinator) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Workers: 2, Simulate: sim, Store: st})
	t.Cleanup(svc.Close)
	fc := fleet.New(fleet.Config{Local: svc, Store: st, Workers: 2, Base: config.Default()})
	srv := httptest.NewServer(NewHandler(svc, config.Default(), WithFleet(fc)))
	t.Cleanup(srv.Close)
	return srv, svc, fc
}

// postJSON posts a body and decodes the reply envelope.
func postJSON(t *testing.T, url, body string) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("undecodable reply: %v", err)
	}
	return resp, doc
}

// Without WithFleet the fleet surfaces must answer 501, not 404: the
// endpoints exist, this daemon just isn't a coordinator.
func TestAPIFleetDisabled(t *testing.T) {
	srv, _ := newTestServer(t, fixedSim(1))
	resp, err := http.Get(srv.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("GET /v1/fleet = %d, want 501", resp.StatusCode)
	}
	resp2, doc := postJSON(t, srv.URL+"/v1/campaigns/deadbeef/resume", `{}`)
	if resp2.StatusCode != http.StatusNotImplemented {
		t.Fatalf("resume without fleet = %d, want 501 (%s)", resp2.StatusCode, doc["error"])
	}
	// Wrong method still gets the structured 405 with Allow.
	resp3, err := http.Get(srv.URL + "/v1/fleet/register")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed || resp3.Header.Get("Allow") != "POST" {
		t.Fatalf("GET register = %d Allow=%q, want 405 Allow=POST", resp3.StatusCode, resp3.Header.Get("Allow"))
	}
}

func TestAPIFleetRegisterHeartbeat(t *testing.T) {
	srv, _, _ := newFleetServer(t, t.TempDir(), fixedSim(1))

	resp, doc := postJSON(t, srv.URL+"/v1/fleet/register", `{"addr":"127.0.0.1:9001"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register = %d (%s)", resp.StatusCode, doc["error"])
	}
	var reply struct {
		Peer struct {
			ID   string `json:"id"`
			Addr string `json:"addr"`
		} `json:"peer"`
		HeartbeatMS int64 `json:"heartbeat_ms"`
	}
	raw, _ := json.Marshal(doc)
	if err := json.Unmarshal(raw, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Peer.ID == "" || reply.HeartbeatMS <= 0 {
		t.Fatalf("register reply missing id or cadence: %+v", reply)
	}

	hb, hbDoc := postJSON(t, srv.URL+"/v1/fleet/heartbeat", `{"id":"`+reply.Peer.ID+`","load":3}`)
	if hb.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat = %d (%s)", hb.StatusCode, hbDoc["error"])
	}
	// An unknown (expired, or pre-restart) id is 404 — the agent's
	// signal to re-register.
	gone, _ := postJSON(t, srv.URL+"/v1/fleet/heartbeat", `{"id":"p-404","load":0}`)
	if gone.StatusCode != http.StatusNotFound {
		t.Fatalf("heartbeat unknown id = %d, want 404", gone.StatusCode)
	}

	fr, err := http.Get(srv.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Body.Close()
	var status struct {
		Peers []struct {
			ID   string `json:"id"`
			Addr string `json:"addr"`
			Load int    `json:"load"`
		} `json:"peers"`
		Gauges struct {
			PeersLive int `json:"peers_live"`
		} `json:"gauges"`
	}
	if err := json.NewDecoder(fr.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if len(status.Peers) != 1 || status.Peers[0].ID != reply.Peer.ID || status.Peers[0].Load != 3 {
		t.Fatalf("fleet status peers = %+v", status.Peers)
	}
	if status.Gauges.PeersLive != 1 {
		t.Fatalf("peers_live = %d, want 1", status.Gauges.PeersLive)
	}

	// /metrics grows the fleet gauge block on coordinators.
	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var m struct {
		Fleet *struct {
			PeersLive int `json:"peers_live"`
		} `json:"fleet"`
	}
	if err := json.NewDecoder(mr.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Fleet == nil || m.Fleet.PeersLive != 1 {
		t.Fatalf("metrics fleet block = %+v, want peers_live 1", m.Fleet)
	}
}

// A campaign started through a coordinator API runs under its
// content-addressed id, checkpoints into the store, and a fresh
// coordinator over the same store resumes it by id with zero
// re-simulation.
func TestAPIFleetCampaignResume(t *testing.T) {
	dir := t.TempDir()
	spec := `{"name":"api-resume","platforms":["ZnG"],"scenarios":["betw-back","solo-bfs1"],"scales":[0.5,1]}`

	srv1, _, fc1 := newFleetServer(t, dir, fixedSim(2))
	resp, doc := postJSON(t, srv1.URL+"/v1/campaigns", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("start = %d (%s)", resp.StatusCode, doc["error"])
	}
	var started struct {
		Campaign struct {
			ID string `json:"id"`
		} `json:"campaign"`
	}
	raw, _ := json.Marshal(doc)
	if err := json.Unmarshal(raw, &started); err != nil {
		t.Fatal(err)
	}
	id := started.Campaign.ID
	c1, ok := fc1.Campaigns().Get(id)
	if !ok {
		t.Fatalf("campaign %q not in coordinator manager", id)
	}
	if out := c1.Wait(); out.Err() != nil {
		t.Fatal(out.Err())
	}
	var table1 json.RawMessage
	func() {
		r, err := http.Get(srv1.URL + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var detail struct {
			Table json.RawMessage `json:"table"`
		}
		if err := json.NewDecoder(r.Body).Decode(&detail); err != nil {
			t.Fatal(err)
		}
		table1 = detail.Table
	}()
	srv1.Close()

	// Fresh process, same store directory: resume by id.
	srv2, svc2, fc2 := newFleetServer(t, dir, fixedSim(2))
	miss, _ := postJSON(t, srv2.URL+"/v1/campaigns/0000/resume", `{}`)
	if miss.StatusCode != http.StatusNotFound {
		t.Fatalf("resume unknown id = %d, want 404", miss.StatusCode)
	}
	rr, rdoc := postJSON(t, srv2.URL+"/v1/campaigns/"+id+"/resume", `{}`)
	if rr.StatusCode != http.StatusAccepted {
		t.Fatalf("resume = %d (%s)", rr.StatusCode, rdoc["error"])
	}
	c2, ok := fc2.Campaigns().Get(id)
	if !ok {
		t.Fatalf("resumed campaign %q not in manager", id)
	}
	if out := c2.Wait(); out.Err() != nil {
		t.Fatal(out.Err())
	}
	if got := svc2.Stats().Sims; got != 0 {
		t.Fatalf("resume re-simulated %d cells, want 0", got)
	}
	if want := uint64(4); fc2.Campaigns().Replayed(id) != want {
		t.Fatalf("replayed = %d, want %d", fc2.Campaigns().Replayed(id), want)
	}
	r2, err := http.Get(srv2.URL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var detail2 struct {
		Table json.RawMessage `json:"table"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&detail2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(table1, detail2.Table) {
		t.Fatalf("resumed table differs from original:\n%s\nvs\n%s", table1, detail2.Table)
	}
}
