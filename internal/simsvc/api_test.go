package simsvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"zng/internal/config"
	"zng/internal/experiments"
	"zng/internal/platform"
	"zng/internal/workload"
)

// newTestServer boots the API over a stub simulator.
func newTestServer(t *testing.T, sim SimFunc) (*httptest.Server, *Service) {
	t.Helper()
	svc := New(Config{Workers: 2, Simulate: sim})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(NewHandler(svc, config.Default()))
	t.Cleanup(srv.Close)
	return srv, svc
}

func fixedSim(ipc float64) SimFunc {
	return func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		return platform.Result{Kind: kind, Workload: mix.Name, IPC: ipc, Cycles: 1000, Insts: 500}, nil
	}
}

// postRun issues a POST /v1/run and decodes the reply envelope.
func postRun(t *testing.T, url string, body string) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("undecodable reply: %v", err)
	}
	return resp, doc
}

func TestAPIRunSync(t *testing.T) {
	srv, svc := newTestServer(t, fixedSim(3.25))
	resp, doc := postRun(t, srv.URL, `{"platform":"ZnG","mix":"betw-back","scale":0.5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%s)", resp.StatusCode, doc["error"])
	}
	var result struct {
		Workload string  `json:"workload"`
		IPC      float64 `json:"ipc"`
		Kind     string  `json:"kind"`
	}
	if err := json.Unmarshal(doc["result"], &result); err != nil {
		t.Fatal(err)
	}
	if result.IPC != 3.25 || result.Workload != "betw-back" || result.Kind != "ZnG" {
		t.Errorf("result = %+v", result)
	}
	var job JobInfo
	if err := json.Unmarshal(doc["job"], &job); err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone || job.Source != "sim" {
		t.Errorf("job = %+v, want done from sim", job)
	}
	if st := svc.Stats(); st.Sims != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAPIRunValidation(t *testing.T) {
	srv, _ := newTestServer(t, fixedSim(1))
	for name, body := range map[string]string{
		"unknown platform": `{"platform":"GTX9000","mix":"betw-back"}`,
		"unknown mix":      `{"platform":"ZnG","mix":"no-such-mix"}`,
		"unknown app":      `{"platform":"ZnG","apps":"nope,gaus"}`,
		"both selectors":   `{"platform":"ZnG","mix":"betw-back","apps":"bfs1"}`,
		"no selector":      `{"platform":"ZnG"}`,
		"negative scale":   `{"platform":"ZnG","mix":"betw-back","scale":-1}`,
		"unknown field":    `{"platform":"ZnG","mix":"betw-back","scalee":2}`,
		"malformed json":   `{"platform":`,
	} {
		resp, doc := postRun(t, srv.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		if len(doc["error"]) == 0 {
			t.Errorf("%s: reply carries no error", name)
		}
	}
}

func TestAPIRunAdhocApps(t *testing.T) {
	srv, _ := newTestServer(t, fixedSim(2))
	resp, doc := postRun(t, srv.URL, `{"platform":"HybridGPU","apps":"bfs1,gaus*1.5","scale":0.5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, doc["error"])
	}
	var result struct {
		Workload string `json:"workload"`
	}
	if err := json.Unmarshal(doc["result"], &result); err != nil {
		t.Fatal(err)
	}
	if result.Workload != "bfs1+gaus*1.5" {
		t.Errorf("ad-hoc workload label = %q", result.Workload)
	}
}

func TestAPIAsyncAndJobStatus(t *testing.T) {
	gate := make(chan struct{})
	srv, _ := newTestServer(t, func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		<-gate
		return platform.Result{Kind: kind, Workload: mix.Name, IPC: 9}, nil
	})
	resp, doc := postRun(t, srv.URL, `{"platform":"ZnG","mix":"pr-gaus","scale":0.5,"async":true,"priority":3}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async status = %d, want 202", resp.StatusCode)
	}
	if len(doc["result"]) != 0 {
		t.Error("async reply must not carry a result")
	}
	var job JobInfo
	if err := json.Unmarshal(doc["job"], &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Priority != 3 {
		t.Errorf("async job = %+v", job)
	}
	close(gate)

	// Poll to done, then collect the result document from the same
	// endpoint — the whole point of an async submission.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		var envelope struct {
			Job    JobInfo         `json:"job"`
			Result json.RawMessage `json:"result"`
		}
		err = json.NewDecoder(r.Body).Decode(&envelope)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if envelope.Job.State == StateDone {
			var result struct {
				IPC float64 `json:"ipc"`
			}
			if err := json.Unmarshal(envelope.Result, &result); err != nil {
				t.Fatalf("done job carries no decodable result: %v", err)
			}
			if result.IPC != 9 {
				t.Errorf("polled result IPC = %v, want 9", result.IPC)
			}
			break
		}
		if len(envelope.Result) != 0 {
			t.Errorf("unfinished job (state %q) must not carry a result", envelope.Job.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", envelope.Job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if r, err := http.Get(srv.URL + "/v1/jobs/job-999"); err != nil {
		t.Fatal(err)
	} else {
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job status = %d, want 404", r.StatusCode)
		}
	}
}

// getJSON decodes one GET endpoint.
func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
	return r.StatusCode
}

func TestAPIListEndpoints(t *testing.T) {
	srv, _ := newTestServer(t, fixedSim(1))

	var scen struct {
		Scenarios []scenarioInfo `json:"scenarios"`
	}
	if code := getJSON(t, srv.URL+"/v1/scenarios", &scen); code != http.StatusOK {
		t.Fatalf("scenarios status %d", code)
	}
	if len(scen.Scenarios) != len(workload.Scenarios()) {
		t.Errorf("scenarios = %d, registry has %d", len(scen.Scenarios), len(workload.Scenarios()))
	}
	found := false
	for _, s := range scen.Scenarios {
		if s.Name == "betw-back" && s.Degree == 2 {
			found = true
		}
	}
	if !found {
		t.Error("scenario list missing betw-back")
	}

	var plats struct {
		Platforms []string `json:"platforms"`
	}
	if code := getJSON(t, srv.URL+"/v1/platforms", &plats); code != http.StatusOK {
		t.Fatalf("platforms status %d", code)
	}
	if fmt.Sprint(plats.Platforms) != fmt.Sprint(platform.KindNames()) {
		t.Errorf("platforms = %v, want %v", plats.Platforms, platform.KindNames())
	}

	var health struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz = %d %q", code, health.Status)
	}
}

func TestAPIJobsListAndMetrics(t *testing.T) {
	srv, _ := newTestServer(t, fixedSim(1))
	if resp, doc := postRun(t, srv.URL, `{"platform":"ZnG","mix":"betw-back","scale":0.5}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("run failed: %s", doc["error"])
	}
	// An identical re-run is a memory hit on the same job.
	if resp, doc := postRun(t, srv.URL, `{"platform":"ZnG","mix":"betw-back","scale":0.5}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("rerun failed: %s", doc["error"])
	}

	var jobs struct {
		Jobs []JobInfo `json:"jobs"`
	}
	if code := getJSON(t, srv.URL+"/v1/jobs", &jobs); code != http.StatusOK {
		t.Fatalf("jobs status %d", code)
	}
	if len(jobs.Jobs) != 1 {
		t.Fatalf("jobs = %+v, want the coalesced single job", jobs.Jobs)
	}

	var m metricsDoc
	if code := getJSON(t, srv.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if m.Sims != 1 || m.MemoryHits != 1 || m.JobsDone != 1 || m.JobsTotal != 1 {
		t.Errorf("metrics = %+v, want 1 sim, 1 memory hit, 1 done job", m)
	}
}

// TestAPIRunRealSimulation exercises the full stack once — HTTP in,
// real simulator, encoded result out — at test scale, pinning the CI
// smoke contract (200 with a non-empty IPC) in-process.
func TestAPIRunRealSimulation(t *testing.T) {
	svc := New(Config{Workers: 1})
	t.Cleanup(svc.Close)
	o := experiments.TestOptions()
	srv := httptest.NewServer(NewHandler(svc, o.Cfg))
	t.Cleanup(srv.Close)

	resp, doc := postRun(t, srv.URL, fmt.Sprintf(`{"platform":"GDDR5","mix":"solo-bfs1","scale":%g}`, o.Scale))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, doc["error"])
	}
	var result struct {
		IPC float64 `json:"ipc"`
	}
	if err := json.Unmarshal(doc["result"], &result); err != nil {
		t.Fatal(err)
	}
	if result.IPC <= 0 {
		t.Errorf("real simulation IPC = %v, want positive", result.IPC)
	}
}
