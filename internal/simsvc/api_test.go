package simsvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"zng/internal/config"
	"zng/internal/experiments"
	"zng/internal/platform"
	"zng/internal/workload"
)

// newTestServer boots the API over a stub simulator.
func newTestServer(t *testing.T, sim SimFunc) (*httptest.Server, *Service) {
	t.Helper()
	svc := New(Config{Workers: 2, Simulate: sim})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(NewHandler(svc, config.Default()))
	t.Cleanup(srv.Close)
	return srv, svc
}

func fixedSim(ipc float64) SimFunc {
	return func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		return platform.Result{Kind: kind, Workload: mix.Name, IPC: ipc, Cycles: 1000, Insts: 500}, nil
	}
}

// postRun issues a POST /v1/run and decodes the reply envelope.
func postRun(t *testing.T, url string, body string) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("undecodable reply: %v", err)
	}
	return resp, doc
}

func TestAPIRunSync(t *testing.T) {
	srv, svc := newTestServer(t, fixedSim(3.25))
	resp, doc := postRun(t, srv.URL, `{"platform":"ZnG","mix":"betw-back","scale":0.5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%s)", resp.StatusCode, doc["error"])
	}
	var result struct {
		Workload string  `json:"workload"`
		IPC      float64 `json:"ipc"`
		Kind     string  `json:"kind"`
	}
	if err := json.Unmarshal(doc["result"], &result); err != nil {
		t.Fatal(err)
	}
	if result.IPC != 3.25 || result.Workload != "betw-back" || result.Kind != "ZnG" {
		t.Errorf("result = %+v", result)
	}
	var job JobInfo
	if err := json.Unmarshal(doc["job"], &job); err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone || job.Source != "sim" {
		t.Errorf("job = %+v, want done from sim", job)
	}
	if st := svc.Stats(); st.Sims != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAPIRunValidation(t *testing.T) {
	srv, _ := newTestServer(t, fixedSim(1))
	for name, body := range map[string]string{
		"unknown platform": `{"platform":"GTX9000","mix":"betw-back"}`,
		"unknown mix":      `{"platform":"ZnG","mix":"no-such-mix"}`,
		"unknown app":      `{"platform":"ZnG","apps":"nope,gaus"}`,
		"both selectors":   `{"platform":"ZnG","mix":"betw-back","apps":"bfs1"}`,
		"no selector":      `{"platform":"ZnG"}`,
		"negative scale":   `{"platform":"ZnG","mix":"betw-back","scale":-1}`,
		"unknown field":    `{"platform":"ZnG","mix":"betw-back","scalee":2}`,
		"malformed json":   `{"platform":`,
	} {
		resp, doc := postRun(t, srv.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		if len(doc["error"]) == 0 {
			t.Errorf("%s: reply carries no error", name)
		}
	}
}

func TestAPIRunAdhocApps(t *testing.T) {
	srv, _ := newTestServer(t, fixedSim(2))
	resp, doc := postRun(t, srv.URL, `{"platform":"HybridGPU","apps":"bfs1,gaus*1.5","scale":0.5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, doc["error"])
	}
	var result struct {
		Workload string `json:"workload"`
	}
	if err := json.Unmarshal(doc["result"], &result); err != nil {
		t.Fatal(err)
	}
	if result.Workload != "bfs1+gaus*1.5" {
		t.Errorf("ad-hoc workload label = %q", result.Workload)
	}
}

func TestAPIAsyncAndJobStatus(t *testing.T) {
	gate := make(chan struct{})
	srv, _ := newTestServer(t, func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		<-gate
		return platform.Result{Kind: kind, Workload: mix.Name, IPC: 9}, nil
	})
	resp, doc := postRun(t, srv.URL, `{"platform":"ZnG","mix":"pr-gaus","scale":0.5,"async":true,"priority":3}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async status = %d, want 202", resp.StatusCode)
	}
	if len(doc["result"]) != 0 {
		t.Error("async reply must not carry a result")
	}
	var job JobInfo
	if err := json.Unmarshal(doc["job"], &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Priority != 3 {
		t.Errorf("async job = %+v", job)
	}
	close(gate)

	// Poll to done, then collect the result document from the same
	// endpoint — the whole point of an async submission.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		var envelope struct {
			Job    JobInfo         `json:"job"`
			Result json.RawMessage `json:"result"`
		}
		err = json.NewDecoder(r.Body).Decode(&envelope)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if envelope.Job.State == StateDone {
			var result struct {
				IPC float64 `json:"ipc"`
			}
			if err := json.Unmarshal(envelope.Result, &result); err != nil {
				t.Fatalf("done job carries no decodable result: %v", err)
			}
			if result.IPC != 9 {
				t.Errorf("polled result IPC = %v, want 9", result.IPC)
			}
			break
		}
		if len(envelope.Result) != 0 {
			t.Errorf("unfinished job (state %q) must not carry a result", envelope.Job.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", envelope.Job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if r, err := http.Get(srv.URL + "/v1/jobs/job-999"); err != nil {
		t.Fatal(err)
	} else {
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job status = %d, want 404", r.StatusCode)
		}
	}
}

// getJSON decodes one GET endpoint.
func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
	return r.StatusCode
}

func TestAPIListEndpoints(t *testing.T) {
	srv, _ := newTestServer(t, fixedSim(1))

	var scen struct {
		Scenarios []scenarioInfo `json:"scenarios"`
	}
	if code := getJSON(t, srv.URL+"/v1/scenarios", &scen); code != http.StatusOK {
		t.Fatalf("scenarios status %d", code)
	}
	if len(scen.Scenarios) != len(workload.Scenarios()) {
		t.Errorf("scenarios = %d, registry has %d", len(scen.Scenarios), len(workload.Scenarios()))
	}
	found := false
	for _, s := range scen.Scenarios {
		if s.Name == "betw-back" && s.Degree == 2 {
			found = true
		}
	}
	if !found {
		t.Error("scenario list missing betw-back")
	}

	var plats struct {
		Platforms []string `json:"platforms"`
	}
	if code := getJSON(t, srv.URL+"/v1/platforms", &plats); code != http.StatusOK {
		t.Fatalf("platforms status %d", code)
	}
	if fmt.Sprint(plats.Platforms) != fmt.Sprint(platform.KindNames()) {
		t.Errorf("platforms = %v, want %v", plats.Platforms, platform.KindNames())
	}

	var health struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz = %d %q", code, health.Status)
	}
}

func TestAPIJobsListAndMetrics(t *testing.T) {
	srv, _ := newTestServer(t, fixedSim(1))
	if resp, doc := postRun(t, srv.URL, `{"platform":"ZnG","mix":"betw-back","scale":0.5}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("run failed: %s", doc["error"])
	}
	// An identical re-run is a memory hit on the same job.
	if resp, doc := postRun(t, srv.URL, `{"platform":"ZnG","mix":"betw-back","scale":0.5}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("rerun failed: %s", doc["error"])
	}

	var jobs struct {
		Jobs []JobInfo `json:"jobs"`
	}
	if code := getJSON(t, srv.URL+"/v1/jobs", &jobs); code != http.StatusOK {
		t.Fatalf("jobs status %d", code)
	}
	if len(jobs.Jobs) != 1 {
		t.Fatalf("jobs = %+v, want the coalesced single job", jobs.Jobs)
	}

	var m metricsDoc
	if code := getJSON(t, srv.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if m.Sims != 1 || m.MemoryHits != 1 || m.JobsDone != 1 || m.JobsTotal != 1 {
		t.Errorf("metrics = %+v, want 1 sim, 1 memory hit, 1 done job", m)
	}
}

// TestAPIRunRealSimulation exercises the full stack once — HTTP in,
// real simulator, encoded result out — at test scale, pinning the CI
// smoke contract (200 with a non-empty IPC) in-process.
func TestAPIRunRealSimulation(t *testing.T) {
	svc := New(Config{Workers: 1})
	t.Cleanup(svc.Close)
	o := experiments.TestOptions()
	srv := httptest.NewServer(NewHandler(svc, o.Cfg))
	t.Cleanup(srv.Close)

	resp, doc := postRun(t, srv.URL, fmt.Sprintf(`{"platform":"GDDR5","mix":"solo-bfs1","scale":%g}`, o.Scale))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, doc["error"])
	}
	var result struct {
		IPC float64 `json:"ipc"`
	}
	if err := json.Unmarshal(doc["result"], &result); err != nil {
		t.Fatal(err)
	}
	if result.IPC <= 0 {
		t.Errorf("real simulation IPC = %v, want positive", result.IPC)
	}
}

// TestAPIStructuredErrors audits the error contract: every failure
// path — unknown job, unknown campaign, unknown path, wrong method —
// returns a JSON {"error": ...} body with the right status code,
// never the ServeMux's text/plain fallback.
func TestAPIStructuredErrors(t *testing.T) {
	srv, _ := newTestServer(t, fixedSim(1))
	for name, tc := range map[string]struct {
		method, path string
		status       int
	}{
		"unknown job":          {"GET", "/v1/jobs/job-999", http.StatusNotFound},
		"unknown campaign":     {"GET", "/v1/campaigns/c-999", http.StatusNotFound},
		"unknown path":         {"GET", "/v1/nope", http.StatusNotFound},
		"root path":            {"GET", "/", http.StatusNotFound},
		"run wrong method":     {"GET", "/v1/run", http.StatusMethodNotAllowed},
		"jobs wrong method":    {"DELETE", "/v1/jobs", http.StatusMethodNotAllowed},
		"job id wrong method":  {"POST", "/v1/jobs/job-1", http.StatusMethodNotAllowed},
		"metrics wrong method": {"POST", "/metrics", http.StatusMethodNotAllowed},
		"campaign bad method":  {"DELETE", "/v1/campaigns", http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Error string `json:"error"`
		}
		ct := resp.Header.Get("Content-Type")
		decErr := json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", name, resp.StatusCode, tc.status)
		}
		if ct != "application/json" {
			t.Errorf("%s: content type %q, want application/json", name, ct)
		}
		if decErr != nil || doc.Error == "" {
			t.Errorf("%s: body is not a structured error (%v)", name, decErr)
		}
		if tc.status == http.StatusMethodNotAllowed && resp.Header.Get("Allow") == "" {
			t.Errorf("%s: 405 without an Allow header", name)
		}
	}
}

// TestAPIRunWithConfig: a request carrying a full config simulates
// under exactly that config — the remote client's contract.
func TestAPIRunWithConfig(t *testing.T) {
	var (
		mu     sync.Mutex
		gotCfg config.Config
	)
	srv, _ := newTestServer(t, func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		mu.Lock()
		gotCfg = cfg
		mu.Unlock()
		return platform.Result{Kind: kind, Workload: mix.Name, IPC: 1}, nil
	})
	cfg := config.Default()
	cfg.Flash.Channels = 4
	body, err := json.Marshal(struct {
		Platform string        `json:"platform"`
		Mix      string        `json:"mix"`
		Scale    float64       `json:"scale"`
		Config   config.Config `json:"config"`
	}{"ZnG", "betw-back", 0.5, cfg})
	if err != nil {
		t.Fatal(err)
	}
	resp, doc := postRun(t, srv.URL, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, doc["error"])
	}
	mu.Lock()
	if gotCfg != cfg {
		t.Errorf("simulated config diverged from the request's (channels = %d, want 4)", gotCfg.Flash.Channels)
	}
	mu.Unlock()

	// A partial config merges over the daemon's base: unspecified
	// fields inherit instead of zeroing (which would simulate a
	// degenerate machine and cache the garbage result).
	resp, doc = postRun(t, srv.URL, `{"platform":"ZnG","mix":"pr-gaus","scale":0.5,"config":{"Flash":{"Channels":8}}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial config status = %d (%s)", resp.StatusCode, doc["error"])
	}
	mu.Lock()
	defer mu.Unlock()
	want := config.Default()
	want.Flash.Channels = 8
	if gotCfg != want {
		t.Errorf("partial config did not merge over the base: GPU.SMs = %d, Channels = %d (want %d, 8)",
			gotCfg.GPU.SMs, gotCfg.Flash.Channels, want.GPU.SMs)
	}
}

// TestAPICampaignLifecycle drives a campaign end-to-end over HTTP:
// POST the spec, poll the id to done, and collect the folded matrix.
func TestAPICampaignLifecycle(t *testing.T) {
	srv, svc := newTestServer(t, fixedSim(2.5))

	spec := `{"name":"api","platforms":["ZnG","HybridGPU"],"scenarios":["solo-bfs1","solo-gaus"],"scales":[0.5]}`
	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", bytes.NewBufferString(spec))
	if err != nil {
		t.Fatal(err)
	}
	var started struct {
		Campaign struct {
			ID       string `json:"id"`
			State    string `json:"state"`
			Progress struct {
				Total int `json:"total"`
			} `json:"progress"`
		} `json:"campaign"`
	}
	err = json.NewDecoder(resp.Body).Decode(&started)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	if started.Campaign.ID == "" || started.Campaign.Progress.Total != 4 {
		t.Fatalf("campaign = %+v", started.Campaign)
	}

	// Poll to done and collect the matrix.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var detail struct {
			State    string `json:"state"`
			Progress struct {
				Done   int `json:"done"`
				Failed int `json:"failed"`
			} `json:"progress"`
			Table json.RawMessage `json:"table"`
		}
		if code := getJSON(t, srv.URL+"/v1/campaigns/"+started.Campaign.ID, &detail); code != http.StatusOK {
			t.Fatalf("campaign status %d", code)
		}
		if detail.State == "done" {
			if detail.Progress.Done != 4 || detail.Progress.Failed != 0 {
				t.Errorf("final progress = %+v", detail.Progress)
			}
			var table struct {
				Title  string     `json:"title"`
				Header []string   `json:"header"`
				Rows   [][]string `json:"rows"`
			}
			if err := json.Unmarshal(detail.Table, &table); err != nil {
				t.Fatalf("done campaign carries no decodable table: %v", err)
			}
			if table.Title != "api" || len(table.Rows) != 2 || len(table.Header) != 3 {
				t.Errorf("table = %+v, want 2 scenario rows x 2 platform columns", table)
			}
			if table.Rows[0][1] != "2.5" {
				t.Errorf("matrix cell = %q, want the stub IPC 2.5", table.Rows[0][1])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The campaign ran through the shared service: its cells are jobs.
	if st := svc.Stats(); st.Sims != 4 {
		t.Errorf("service stats = %+v, want the campaign's 4 unique sims", st)
	}

	// The list endpoint sees it.
	var list struct {
		Campaigns []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"campaigns"`
	}
	if code := getJSON(t, srv.URL+"/v1/campaigns", &list); code != http.StatusOK {
		t.Fatalf("campaign list status %d", code)
	}
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != started.Campaign.ID || list.Campaigns[0].State != "done" {
		t.Errorf("campaign list = %+v", list.Campaigns)
	}

	// Bad specs are structured 400s.
	for name, body := range map[string]string{
		"empty spec":       `{}`,
		"unknown platform": `{"platforms":["GTX9000"],"scenarios":["solo-bfs1"]}`,
		"unknown field":    `{"platformz":["ZnG"]}`,
		"malformed":        `{"platforms":`,
	} {
		resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Error string `json:"error"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || decErr != nil || doc.Error == "" {
			t.Errorf("%s: status %d, err %v, body %+v; want structured 400", name, resp.StatusCode, decErr, doc)
		}
	}
}

// TestAPIServeAttribution is the request-level attribution satellite:
// the second identical request is answered by the memory layer and its
// job must say so — before the fix it reported "sim", the source that
// originally computed the cell for someone else's request.
func TestAPIServeAttribution(t *testing.T) {
	srv, svc := newTestServer(t, fixedSim(1.5))
	body := `{"platform":"ZnG","mix":"betw-back","scale":0.5}`

	_, doc := postRun(t, srv.URL, body)
	var first JobInfo
	if err := json.Unmarshal(doc["job"], &first); err != nil {
		t.Fatal(err)
	}
	if first.Source != "sim" {
		t.Fatalf("first request source = %q, want sim", first.Source)
	}

	resp, doc := postRun(t, srv.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, doc["error"])
	}
	var second JobInfo
	if err := json.Unmarshal(doc["job"], &second); err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Errorf("repeat request job = %s, want the coalesced original %s", second.ID, first.ID)
	}
	if second.Source != "memory" {
		t.Errorf("repeat request source = %q, want memory (the tier that served it)", second.Source)
	}
	// The async path reports the same attribution for an already-done cell.
	resp, doc = postRun(t, srv.URL, `{"platform":"ZnG","mix":"betw-back","scale":0.5,"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async status = %d (%s)", resp.StatusCode, doc["error"])
	}
	var async JobInfo
	if err := json.Unmarshal(doc["job"], &async); err != nil {
		t.Fatal(err)
	}
	if async.Source != "memory" {
		t.Errorf("async repeat source = %q, want memory", async.Source)
	}
	if st := svc.Stats(); st.Sims != 1 || st.MemoryHits != 2 {
		t.Errorf("stats = %+v, want 1 sim, 2 memory hits", st)
	}
}
