package simsvc

import (
	"bytes"
	"errors"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"zng/internal/config"
	"zng/internal/experiments"
	"zng/internal/platform"
	"zng/internal/report"
	"zng/internal/store"
	"zng/internal/workload"
)

// testMix resolves a registered scenario or fails the test.
func testMix(t testing.TB, name string) workload.Mix {
	t.Helper()
	m, err := workload.MixByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// stubSim returns a canned result and counts invocations; the gate
// (when non-nil) blocks every invocation until released, letting
// tests pile requests onto an in-flight cell deterministically, and
// started (when non-nil) receives before the gate so tests can wait
// for a simulation to be in flight without spinning.
type stubSim struct {
	mu      sync.Mutex
	calls   int
	gate    chan struct{}
	started chan struct{}
	res     platform.Result
	err     error
}

func (s *stubSim) fn(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	s.mu.Lock()
	s.calls++
	gate, started := s.gate, s.started
	s.mu.Unlock()
	if started != nil {
		started <- struct{}{}
	}
	if gate != nil {
		<-gate
	}
	r := s.res
	r.Kind = kind
	r.Workload = mix.Name
	return r, s.err
}

func (s *stubSim) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// TestCoalescing is the tentpole property: K concurrent identical
// requests perform exactly one simulation, asserted via the service
// counters — the same counters the zngd /metrics endpoint serves.
func TestCoalescing(t *testing.T) {
	sim := &stubSim{gate: make(chan struct{}), started: make(chan struct{}, 1), res: platform.Result{IPC: 2.5}}
	svc := New(Config{Workers: 2, Simulate: sim.fn})
	defer svc.Close()

	req := Request{Kind: platform.ZnG, Mix: testMix(t, "betw-back"), Scale: 0.5, Cfg: config.Default()}
	const callers = 16
	ids := make([]string, callers)
	results := make([]platform.Result, callers)
	errs := make([]error, callers)

	// Admit the first request and wait until its simulation is in
	// flight, so every later submit must attach to it.
	id0, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-sim.started

	var wg sync.WaitGroup
	for i := 1; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids[i], errs[i] = svc.Submit(req)
			if errs[i] == nil {
				results[i], errs[i] = svc.Await(ids[i])
			}
		}()
	}
	// Release the simulation once every request has attached.
	for svc.Stats().Coalesced != callers-1 {
		runtime.Gosched()
	}
	close(sim.gate)
	results[0], errs[0] = svc.Await(id0)
	ids[0] = id0
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if ids[i] != id0 {
			t.Errorf("caller %d got job %s, want coalesced onto %s", i, ids[i], id0)
		}
		if results[i].IPC != 2.5 {
			t.Errorf("caller %d IPC = %v", i, results[i].IPC)
		}
	}
	if got := sim.count(); got != 1 {
		t.Errorf("%d concurrent identical requests performed %d simulations, want exactly 1", callers, got)
	}
	st := svc.Stats()
	if st.Sims != 1 || st.Coalesced != callers-1 || st.DiskHits != 0 {
		t.Errorf("stats = %+v, want 1 sim, %d coalesced", st, callers-1)
	}
	job, ok := svc.Job(id0)
	if !ok || job.State != StateDone || job.Waiters != callers-1 || job.Source != "sim" {
		t.Errorf("job = %+v, want done with %d waiters from sim", job, callers-1)
	}

	// A late identical request is a pure memory hit on the completed
	// cell — still no new simulation.
	if _, err := svc.Run(req.Kind, req.Mix, req.Scale, req.Cfg); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.MemoryHits != 1 || st.Sims != 1 {
		t.Errorf("post-completion stats = %+v, want 1 memory hit, 1 sim", st)
	}
}

// TestDiskRoundTripAcrossRestart pins the acceptance criterion:
// restarting the service over the same store directory serves a
// previously computed cell from disk with zero new simulations.
func TestDiskRoundTripAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sim1 := &stubSim{res: platform.Result{IPC: 1.5, Extra: map[string]float64{"k": 9}}}
	svc1 := New(Config{Store: st1, Workers: 1, Simulate: sim1.fn})
	req := Request{Kind: platform.HybridGPU, Mix: testMix(t, "bfs1-gaus"), Scale: 0.25, Cfg: config.Default()}
	r1, err := svc1.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	svc1.Close()
	if sim1.count() != 1 {
		t.Fatalf("first service simulated %d times, want 1", sim1.count())
	}

	// "Restart": a fresh service over the same directory, with a
	// simulator that must never fire.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sim2 := &stubSim{err: errors.New("must not simulate")}
	svc2 := New(Config{Store: st2, Workers: 1, Simulate: sim2.fn})
	defer svc2.Close()
	r2, err := svc2.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if sim2.count() != 0 {
		t.Errorf("restarted service simulated %d times, want 0 (disk serve)", sim2.count())
	}
	stats := svc2.Stats()
	if stats.DiskHits != 1 || stats.Sims != 0 {
		t.Errorf("restarted stats = %+v, want exactly one disk hit", stats)
	}
	if r2.IPC != r1.IPC || r2.Extra["k"] != 9 {
		t.Errorf("disk-served result %+v differs from original %+v", r2, r1)
	}

	// The aliasing contract survives the disk path too: consol-2 has
	// the same content ID and must hit the same entry under its own
	// label.
	alias := req
	alias.Mix = testMix(t, "consol-2")
	r3, err := svc2.Do(alias)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Workload != "consol-2" {
		t.Errorf("alias label = %q, want consol-2", r3.Workload)
	}
	if sim2.count() != 0 {
		t.Error("alias request simulated; want shared cell")
	}
}

// TestCorruptEntryFallsBackToSimulation: a torn store entry must not
// poison the service — it re-simulates and heals the entry.
func TestCorruptEntryFallsBackToSimulation(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Kind: platform.ZnGBase, Mix: testMix(t, "pr-gaus"), Scale: 0.5, Cfg: config.Default()}
	key := store.CellKey(req.Kind, req.Mix.ID(), req.Scale, req.Cfg)
	if err := os.WriteFile(st.Path(key), []byte("{\"kind\":\"ZnG-base\",\"ipc\":"), 0o644); err != nil {
		t.Fatal(err)
	}

	sim := &stubSim{res: platform.Result{IPC: 4.5}}
	svc := New(Config{Store: st, Workers: 1, Simulate: sim.fn})
	r, err := svc.Do(req)
	svc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sim.count() != 1 {
		t.Errorf("corrupt entry should force one simulation, got %d", sim.count())
	}
	if r.IPC != 4.5 {
		t.Errorf("IPC = %v, want the re-simulated 4.5", r.IPC)
	}
	if got, ok := st.Get(key); !ok || got.IPC != 4.5 {
		t.Errorf("entry not healed: ok=%v, %+v", ok, got)
	}
}

// TestPriorityOrdersQueue: with one busy worker, a higher-priority
// job submitted later must run before an earlier lower-priority one.
func TestPriorityOrdersQueue(t *testing.T) {
	var (
		mu    sync.Mutex
		order []string
	)
	gate := make(chan struct{})
	sim := func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		if scale == 1 { // the gating job
			<-gate
		}
		mu.Lock()
		order = append(order, mix.Name)
		mu.Unlock()
		return platform.Result{IPC: 1}, nil
	}
	svc := New(Config{Workers: 1, Simulate: sim})
	defer svc.Close()

	cfg := config.Default()
	gateID, err := svc.Submit(Request{Kind: platform.ZnG, Mix: testMix(t, "solo-bfs1"), Scale: 1, Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the gating job occupies the only worker, so the next
	// two jobs are truly queued.
	for {
		if j, _ := svc.Job(gateID); j.State == StateRunning {
			break
		}
		runtime.Gosched()
	}
	lowID, err := svc.Submit(Request{Kind: platform.ZnG, Mix: testMix(t, "solo-gaus"), Scale: 2, Cfg: cfg, Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	highID, err := svc.Submit(Request{Kind: platform.ZnG, Mix: testMix(t, "solo-pr"), Scale: 2, Cfg: cfg, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	for _, id := range []string{gateID, lowID, highID} {
		if _, err := svc.Await(id); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"solo-bfs1", "solo-pr", "solo-gaus"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v (priority must preempt FIFO)", order, want)
		}
	}
}

// TestCoalescedAttachPromotesPriority: attaching a high-priority
// request to a queued low-priority job must promote the job, not let
// the request silently inherit the old queue position.
func TestCoalescedAttachPromotesPriority(t *testing.T) {
	var (
		mu    sync.Mutex
		order []string
	)
	gate := make(chan struct{})
	sim := func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		if scale == 1 { // the gating job
			<-gate
		}
		mu.Lock()
		order = append(order, mix.Name)
		mu.Unlock()
		return platform.Result{IPC: 1}, nil
	}
	svc := New(Config{Workers: 1, Simulate: sim})
	defer svc.Close()

	cfg := config.Default()
	gateID, err := svc.Submit(Request{Kind: platform.ZnG, Mix: testMix(t, "solo-bfs1"), Scale: 1, Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if j, _ := svc.Job(gateID); j.State == StateRunning {
			break
		}
		runtime.Gosched()
	}
	// Queue cell X at priority 0, then cell Y at priority 5; a
	// priority-9 attach to X must now run X before Y.
	lowReq := Request{Kind: platform.ZnG, Mix: testMix(t, "solo-gaus"), Scale: 2, Cfg: cfg, Priority: 0}
	lowID, err := svc.Submit(lowReq)
	if err != nil {
		t.Fatal(err)
	}
	midID, err := svc.Submit(Request{Kind: platform.ZnG, Mix: testMix(t, "solo-pr"), Scale: 2, Cfg: cfg, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	attach := lowReq
	attach.Priority = 9
	attachID, err := svc.Submit(attach)
	if err != nil {
		t.Fatal(err)
	}
	if attachID != lowID {
		t.Fatalf("identical cell got its own job %s (want coalesced onto %s)", attachID, lowID)
	}
	if j, _ := svc.Job(lowID); j.Priority != 9 || j.Waiters != 1 {
		t.Errorf("attached job = %+v, want promoted to priority 9 with 1 waiter", j)
	}
	close(gate)
	for _, id := range []string{gateID, lowID, midID} {
		if _, err := svc.Await(id); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"solo-bfs1", "solo-gaus", "solo-pr"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v (attach must promote)", order, want)
		}
	}
}

// TestCloseDrainsInFlightAndFailsQueued: graceful shutdown lets the
// running simulation finish (its result is preserved) while queued
// jobs and new submissions fail with ErrClosed.
func TestCloseDrainsInFlightAndFailsQueued(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	sim := func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		once.Do(func() { close(started) })
		<-gate
		return platform.Result{IPC: 7}, nil
	}
	svc := New(Config{Workers: 1, Simulate: sim})
	cfg := config.Default()
	runningID, err := svc.Submit(Request{Kind: platform.ZnG, Mix: testMix(t, "solo-bfs1"), Scale: 1, Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queuedID, err := svc.Submit(Request{Kind: platform.ZnG, Mix: testMix(t, "solo-gaus"), Scale: 1, Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan struct{})
	go func() {
		svc.Close()
		close(closed)
	}()
	// The queued job fails promptly, even while the running one drains.
	if _, err := svc.Await(queuedID); !errors.Is(err, ErrClosed) {
		t.Errorf("queued job error = %v, want ErrClosed", err)
	}
	select {
	case <-closed:
		t.Fatal("Close returned before the in-flight simulation drained")
	default:
	}
	close(gate)
	<-closed
	r, err := svc.Await(runningID)
	if err != nil || r.IPC != 7 {
		t.Errorf("drained job = %+v, %v; want IPC 7", r, err)
	}
	if _, err := svc.Submit(Request{Kind: platform.ZnG, Mix: testMix(t, "solo-pr"), Scale: 1, Cfg: cfg}); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close submit error = %v, want ErrClosed", err)
	}
	svc.Close() // idempotent
}

// TestDiskServedEqualsFreshSimulation is the determinism satellite: a
// result served from the persistent store must equal a freshly
// simulated one byte-for-byte under the canonical result encoding.
// This runs the real simulator at a small scale.
func TestDiskServedEqualsFreshSimulation(t *testing.T) {
	o := experiments.TestOptions()
	mix := testMix(t, "solo-bfs1")
	kind := platform.GDDR5

	fresh, err := platform.RunMix(kind, mix, o.Scale, o.Cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := New(Config{Store: st1, Workers: 1})
	if _, err := svc1.Run(kind, mix, o.Scale, o.Cfg); err != nil {
		t.Fatal(err)
	}
	svc1.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := New(Config{Store: st2, Workers: 1, Simulate: func(platform.Kind, workload.Mix, float64, config.Config) (platform.Result, error) {
		return platform.Result{}, errors.New("must serve from disk")
	}})
	defer svc2.Close()
	served, err := svc2.Run(kind, mix, o.Scale, o.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if svc2.Stats().DiskHits != 1 {
		t.Fatalf("second service stats = %+v, want one disk hit", svc2.Stats())
	}
	if a, b := report.EncodeResult(fresh), report.EncodeResult(served); !bytes.Equal(a, b) {
		t.Errorf("disk-served result differs from fresh simulation:\nfresh: %s\ndisk:  %s", a, b)
	}
}

// TestServiceImplementsRunner pins the structural contract the whole
// refactor hangs on: the service is a drop-in experiments runner.
var _ experiments.Runner = (*Service)(nil)
var _ experiments.StatsReporter = (*Service)(nil)

// TestErrorsAreCachedInMemory: a deterministic failure is remembered
// like a result — retrying the cell does not re-simulate.
func TestErrorsAreCachedInMemory(t *testing.T) {
	sim := &stubSim{err: errors.New("deadlock at tick 42")}
	svc := New(Config{Workers: 1, Simulate: sim.fn})
	defer svc.Close()
	req := Request{Kind: platform.Hetero, Mix: testMix(t, "solo-bfs1"), Scale: 0.5, Cfg: config.Default()}
	if _, err := svc.Do(req); err == nil {
		t.Fatal("want simulation error")
	}
	if _, err := svc.Do(req); err == nil {
		t.Fatal("want cached error")
	}
	if sim.count() != 1 {
		t.Errorf("failing cell simulated %d times, want 1 (errors cache)", sim.count())
	}
	if st := svc.Stats(); st.MemoryHits != 1 {
		t.Errorf("stats = %+v, want the retry counted as a memory hit", st)
	}
}

// TestRetentionEvictsPersistedJobs: past MaxJobs, the oldest
// done-and-persisted jobs leave memory; their cells re-serve from the
// store as disk hits, not re-simulations.
func TestRetentionEvictsPersistedJobs(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sim := &stubSim{res: platform.Result{IPC: 2}}
	svc := New(Config{Store: st, Workers: 1, Simulate: sim.fn, MaxJobs: 2})
	defer svc.Close()

	cfg := config.Default()
	mixes := []string{"solo-bfs1", "solo-gaus", "solo-pr", "solo-back"}
	for _, name := range mixes {
		if _, err := svc.Do(Request{Kind: platform.ZnG, Mix: testMix(t, name), Scale: 0.5, Cfg: cfg}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(svc.Jobs()); got != 2 {
		t.Errorf("retained jobs = %d, want the MaxJobs bound of 2", got)
	}
	if got := svc.EvictedJobs(); got != 2 {
		t.Errorf("evicted = %d, want 2", got)
	}
	// The oldest jobs went first: their ids are gone, the newest stay.
	if _, ok := svc.Job("job-1"); ok {
		t.Error("oldest job survived eviction")
	}
	if _, ok := svc.Job("job-4"); !ok {
		t.Error("newest job was evicted")
	}

	// An evicted cell re-serves from disk: no new simulation.
	before := sim.count()
	r, err := svc.Do(Request{Kind: platform.ZnG, Mix: testMix(t, mixes[0]), Scale: 0.5, Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if sim.count() != before {
		t.Errorf("evicted cell re-simulated (%d -> %d calls), want disk serve", before, sim.count())
	}
	if stats := svc.Stats(); stats.DiskHits != 1 {
		t.Errorf("stats = %+v, want one disk hit for the evicted cell", stats)
	}
	if r.IPC != 2 {
		t.Errorf("disk-served IPC = %v", r.IPC)
	}
}

// TestRetentionKeepsUnpersistedJobs: a memory-only service has no
// disk to fall back on, so done jobs are never evicted regardless of
// the bound — the memo contract only degrades where the store backs
// it up. Failed jobs are evictable everywhere (a deterministic
// failure recomputes identically).
func TestRetentionKeepsUnpersistedJobs(t *testing.T) {
	sim := &stubSim{res: platform.Result{IPC: 1}}
	svc := New(Config{Workers: 1, Simulate: sim.fn, MaxJobs: 1})
	defer svc.Close()
	cfg := config.Default()
	for _, name := range []string{"solo-bfs1", "solo-gaus", "solo-pr"} {
		if _, err := svc.Do(Request{Kind: platform.ZnG, Mix: testMix(t, name), Scale: 0.5, Cfg: cfg}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(svc.Jobs()); got != 3 {
		t.Errorf("memory-only service retained %d jobs, want all 3 (nothing persisted)", got)
	}
	if svc.EvictedJobs() != 0 {
		t.Errorf("memory-only service evicted %d jobs", svc.EvictedJobs())
	}

	// Error jobs evict even without a store.
	failing := &stubSim{err: errors.New("deadlock")}
	svc2 := New(Config{Workers: 1, Simulate: failing.fn, MaxJobs: 1})
	defer svc2.Close()
	for _, name := range []string{"solo-bfs1", "solo-gaus"} {
		if _, err := svc2.Do(Request{Kind: platform.ZnG, Mix: testMix(t, name), Scale: 0.5, Cfg: cfg}); err == nil {
			t.Fatal("want simulation error")
		}
	}
	if got := len(svc2.Jobs()); got != 1 {
		t.Errorf("failing service retained %d jobs, want 1", got)
	}
	if svc2.EvictedJobs() != 1 {
		t.Errorf("failing service evicted %d, want 1", svc2.EvictedJobs())
	}
}

// TestDoSurvivesEvictionChurn: Do holds the job it submitted, so
// aggressive retention (MaxJobs=1) can never evict a result out from
// under a waiting caller — the race a plain Submit+Await(id) pair
// would have (the id lookup can miss after eviction).
func TestDoSurvivesEvictionChurn(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sim := &stubSim{res: platform.Result{IPC: 1}}
	svc := New(Config{Store: st, Workers: 2, Simulate: sim.fn, MaxJobs: 1})
	defer svc.Close()
	cfg := config.Default()
	mixes := []workload.Mix{testMix(t, "solo-bfs1"), testMix(t, "solo-gaus"), testMix(t, "solo-pr")}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				m := mixes[(g+i)%len(mixes)]
				if r, err := svc.Do(Request{Kind: platform.ZnG, Mix: m, Scale: 0.5, Cfg: cfg}); err != nil {
					errs <- err
					return
				} else if r.IPC != 1 {
					errs <- errors.New("lost result under eviction churn")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("Do under eviction churn: %v", err)
	}
	if svc.EvictedJobs() == 0 {
		t.Error("churn produced no evictions; the test exercised nothing")
	}
}

// TestJobResultSingleLookup: JobResult reports status and result in
// one snapshot — done jobs carry their result, unfinished and
// unknown ids do not.
func TestJobResultSingleLookup(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	sim := &stubSim{gate: gate, started: started, res: platform.Result{IPC: 6}}
	svc := New(Config{Workers: 1, Simulate: sim.fn})
	defer svc.Close()
	id, err := svc.Submit(Request{Kind: platform.ZnG, Mix: testMix(t, "solo-bfs1"), Scale: 0.5, Cfg: config.Default()})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if info, _, ok := svc.JobResult(id); !ok || info.State == StateDone {
		t.Errorf("in-flight JobResult = %+v, %v", info, ok)
	}
	close(gate)
	if _, err := svc.Await(id); err != nil {
		t.Fatal(err)
	}
	info, res, ok := svc.JobResult(id)
	if !ok || info.State != StateDone || res.IPC != 6 {
		t.Errorf("done JobResult = %+v, %+v, %v; want done with IPC 6", info, res, ok)
	}
	if _, _, ok := svc.JobResult("job-999"); ok {
		t.Error("unknown id resolved")
	}
}

// TestPanickingSimulationBecomesJobError: a panic inside a simulation
// — reachable from outside via zngd's arbitrary "config" request
// field — must fail that job deterministically, not kill the worker
// (and with it the daemon).
func TestPanickingSimulationBecomesJobError(t *testing.T) {
	boom := func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		if cfg.GPU.SMs == 0 {
			panic("integer divide by zero")
		}
		return platform.Result{IPC: 1}, nil
	}
	svc := New(Config{Workers: 1, Simulate: boom})
	defer svc.Close()
	bad := config.Config{}
	if _, err := svc.Do(Request{Kind: platform.ZnG, Mix: testMix(t, "solo-bfs1"), Scale: 0.5, Cfg: bad}); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking cell error = %v, want a simulation-panicked job error", err)
	}
	// The worker survived: a sane request on the same service works.
	if r, err := svc.Do(Request{Kind: platform.ZnG, Mix: testMix(t, "solo-bfs1"), Scale: 0.5, Cfg: config.Default()}); err != nil || r.IPC != 1 {
		t.Fatalf("service dead after panic: %v, %+v", err, r)
	}
}
