package simsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"zng/internal/config"
	"zng/internal/experiments"
	"zng/internal/platform"
	"zng/internal/report"
	"zng/internal/workload"
)

// runRequest is the POST /v1/run body. Exactly one of Mix (a
// registered scenario name) or Apps (zngsim's ad-hoc composition
// syntax, e.g. "bfs1,gaus*1.5") selects the workload.
type runRequest struct {
	Platform string  `json:"platform"`
	Mix      string  `json:"mix,omitempty"`
	Apps     string  `json:"apps,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	Priority int     `json:"priority,omitempty"`
	// Async returns 202 with the job immediately instead of waiting
	// for the result; poll GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
}

// runResponse is the POST /v1/run reply. Result is the
// report.EncodeResult document and is absent on async submissions
// and failures.
type runResponse struct {
	Job    JobInfo         `json:"job"`
	Result json.RawMessage `json:"result,omitempty"`
}

// scenarioInfo is one GET /v1/scenarios row.
type scenarioInfo struct {
	Name   string `json:"name"`
	MixID  string `json:"mix"`
	Degree int    `json:"degree"`
}

// NewHandler builds the zngd HTTP JSON API over one service. cfg is
// the simulation configuration every request runs under (the daemon
// passes Table I defaults); requests choose platform, workload, scale
// and priority.
//
//	POST /v1/run        run (or enqueue) one simulation cell
//	GET  /v1/jobs       list jobs in submission order
//	GET  /v1/jobs/{id}  one job's status
//	GET  /v1/scenarios  the workload scenario registry
//	GET  /v1/platforms  the platform vocabulary
//	GET  /healthz       liveness
//	GET  /metrics       expvar-style counters
func NewHandler(svc *Service, cfg config.Config) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		var req runRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		kind, err := platform.KindByName(req.Platform)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		var mix workload.Mix
		switch {
		case req.Apps != "" && req.Mix != "":
			writeErr(w, http.StatusBadRequest, errors.New(`"mix" and "apps" are mutually exclusive`))
			return
		case req.Apps != "":
			mix, err = workload.ParseApps(req.Apps)
		case req.Mix != "":
			mix, err = workload.MixByName(req.Mix)
		default:
			err = errors.New(`one of "mix" or "apps" is required`)
		}
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		scale := req.Scale
		if scale == 0 {
			scale = experiments.DefaultScale
		}
		if scale < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("scale must be positive, got %v", scale))
			return
		}
		id, err := svc.Submit(Request{Kind: kind, Mix: mix, Scale: scale, Cfg: cfg, Priority: req.Priority})
		if err != nil {
			// Only shutdown rejects a well-formed submission.
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
		if req.Async {
			job, _ := svc.Job(id)
			writeJSON(w, http.StatusAccepted, runResponse{Job: job})
			return
		}
		res, err := svc.Await(id)
		job, _ := svc.Job(id)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			writeJSON(w, status, struct {
				Error string  `json:"error"`
				Job   JobInfo `json:"job"`
			}{err.Error(), job})
			return
		}
		res.Workload = mix.Name
		writeJSON(w, http.StatusOK, runResponse{Job: job, Result: report.EncodeResult(res)})
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Jobs []JobInfo `json:"jobs"`
		}{svc.Jobs()})
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		job, ok := svc.Job(id)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
			return
		}
		// A completed job carries its result, so an async submitter can
		// poll this endpoint to done and collect the document in one
		// round trip (Await on a done job returns immediately). The
		// result is relabeled to the job's workload, matching the sync
		// run path — a disk-served cell may carry the label of whoever
		// first computed it, possibly an aliasing scenario.
		resp := runResponse{Job: job}
		if job.State == StateDone {
			if res, err := svc.Await(id); err == nil {
				if job.Workload != "" {
					res.Workload = job.Workload
				}
				resp.Result = report.EncodeResult(res)
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		scenarios := workload.Scenarios()
		out := make([]scenarioInfo, len(scenarios))
		for i, m := range scenarios {
			out[i] = scenarioInfo{Name: m.Name, MixID: m.ID(), Degree: m.Degree()}
		}
		writeJSON(w, http.StatusOK, struct {
			Scenarios []scenarioInfo `json:"scenarios"`
		}{out})
	})

	mux.HandleFunc("GET /v1/platforms", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Platforms []string `json:"platforms"`
		}{platform.KindNames()})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
		}{"ok"})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, metrics(svc))
	})

	return mux
}

// metricsDoc is the /metrics document: the runner counters plus job
// and store gauges, flat like an expvar page so scrapers stay simple.
type metricsDoc struct {
	Sims         uint64 `json:"sims"`
	MemoryHits   uint64 `json:"memory_hits"`
	DiskHits     uint64 `json:"disk_hits"`
	Coalesced    uint64 `json:"coalesced"`
	JobsTotal    int    `json:"jobs_total"`
	JobsQueued   int    `json:"jobs_queued"`
	JobsRunning  int    `json:"jobs_running"`
	JobsDone     int    `json:"jobs_done"`
	JobsError    int    `json:"jobs_error"`
	StoreEntries int    `json:"store_entries"`
}

func metrics(svc *Service) metricsDoc {
	st := svc.Stats()
	doc := metricsDoc{
		Sims:       st.Sims,
		MemoryHits: st.MemoryHits,
		DiskHits:   st.DiskHits,
		Coalesced:  st.Coalesced,
	}
	for _, j := range svc.Jobs() {
		doc.JobsTotal++
		switch j.State {
		case StateQueued:
			doc.JobsQueued++
		case StateRunning:
			doc.JobsRunning++
		case StateDone:
			doc.JobsDone++
		case StateError:
			doc.JobsError++
		}
	}
	if s := svc.Store(); s != nil {
		if n, err := s.Entries(); err == nil {
			doc.StoreEntries = n
		}
	}
	return doc
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is gone; an encoding failure can only be a dead
	// client, which has already stopped caring.
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
