package simsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"strings"

	"zng/internal/campaign"
	"zng/internal/config"
	"zng/internal/experiments"
	"zng/internal/fleet"
	"zng/internal/latency"
	"zng/internal/obs"
	"zng/internal/platform"
	"zng/internal/report"
	"zng/internal/workload"
)

// runRequest is the POST /v1/run body. Exactly one of Mix (a
// registered scenario name) or Apps (zngsim's ad-hoc composition
// syntax, e.g. "bfs1,gaus*1.5") selects the workload.
type runRequest struct {
	Platform string  `json:"platform"`
	Mix      string  `json:"mix,omitempty"`
	Apps     string  `json:"apps,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	Priority int     `json:"priority,omitempty"`
	// Async returns 202 with the job immediately instead of waiting
	// for the result; poll GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
	// Config, when present, is decoded over a copy of the daemon's
	// base configuration, so absent fields inherit the base instead of
	// silently zeroing (a partial {"flash":{"channels":8}} means
	// base-plus-8-channels, matching the campaign Override semantics).
	// internal/remote sends every field, so a full config — the exact
	// cell a campaign addressed — passes through unchanged and both
	// sides hash the same cell key, keeping distributed results
	// byte-identical to local ones.
	Config *config.Config `json:"config,omitempty"`
}

// runResponse is the POST /v1/run reply. Result is the
// report.EncodeResult document and is absent on async submissions
// and failures.
type runResponse struct {
	Job    JobInfo         `json:"job"`
	Result json.RawMessage `json:"result,omitempty"`
	// Spans piggybacks this process's span subtree for a traced request
	// (X-Zng-Trace present) once the job completes, so the caller's
	// flight recorder reconstructs the cross-process tree.
	Spans []obs.Record `json:"spans,omitempty"`
}

// scenarioInfo is one GET /v1/scenarios row.
type scenarioInfo struct {
	Name   string `json:"name"`
	MixID  string `json:"mix"`
	Degree int    `json:"degree"`
}

// CampaignManager is the campaign lifecycle the API drives — the
// plain in-process campaign.Manager, or the fleet coordinator's
// durable, content-addressed manager (fleet.Campaigns). Managers that
// additionally implement Resume(id) unlock POST
// /v1/campaigns/{id}/resume.
type CampaignManager interface {
	Start(campaign.Spec) (*campaign.Campaign, error)
	Get(string) (*campaign.Campaign, bool)
	List() []*campaign.Campaign
}

// campaignResumer is the optional resume surface (fleet.Campaigns).
type campaignResumer interface {
	Resume(string) (*campaign.Campaign, error)
}

// HandlerOption customizes NewHandler.
type HandlerOption func(*handlerOpts)

type handlerOpts struct {
	fleet *fleet.Coordinator
}

// WithFleet attaches a fleet coordinator: campaigns run through its
// durable, fleet-dispatched manager instead of the in-process one,
// the /v1/fleet endpoints (register, heartbeat, status) go live, and
// /metrics gains the fleet gauge block.
func WithFleet(fc *fleet.Coordinator) HandlerOption {
	return func(o *handlerOpts) { o.fleet = fc }
}

// fleetRegisterRequest is the POST /v1/fleet/register body.
type fleetRegisterRequest struct {
	Addr string `json:"addr"`
}

// fleetRegisterReply mirrors the shape fleet.Agent expects.
type fleetRegisterReply struct {
	Peer        fleet.Peer `json:"peer"`
	HeartbeatMS int64      `json:"heartbeat_ms"`
}

// fleetHeartbeatRequest is the POST /v1/fleet/heartbeat body.
type fleetHeartbeatRequest struct {
	ID   string `json:"id"`
	Load int    `json:"load"`
}

// NewHandler builds the zngd HTTP JSON API over one service. cfg is
// the base simulation configuration requests run under (the daemon
// passes Table I defaults); requests choose platform, workload, scale
// and priority, and may carry a full config of their own.
//
//	POST /v1/run             run (or enqueue) one simulation cell
//	GET  /v1/jobs            list jobs in submission order
//	GET  /v1/jobs/{id}       one job's status
//	POST /v1/campaigns       start a declarative sweep (202 + campaign id)
//	GET  /v1/campaigns       list campaigns with live progress
//	GET  /v1/campaigns/{id}  one campaign's progress (+ matrix once done)
//	GET  /v1/scenarios       the workload scenario registry
//	GET  /v1/platforms       the platform vocabulary
//	GET  /v1/trace           flight-recorder trace summaries (filterable)
//	GET  /v1/trace/stats     per-stage latency breakdown over recorded spans
//	GET  /v1/trace/{id}      one trace's full span tree
//	GET  /healthz            liveness
//	GET  /metrics            counters (JSON, or Prometheus text with ?format=prom)
//
// Every reply — success, validation failure, unknown path, wrong
// method — is a JSON document; errors are {"error": ...} with the
// matching status code, so clients never have to parse a text/plain
// fallback.
//
// When the service's admission bound rejects a run (ErrOverloaded),
// the reply is 429 Too Many Requests with a Retry-After header (whole
// seconds) estimated from recent per-simulation latency and the
// current queue depth — a well-behaved client backs off that long and
// retries. Every endpoint's wall-clock latency feeds a fixed-bucket
// histogram surfaced as p50/p95/p99 under "latency" in /metrics.
//
// With WithFleet, the daemon is a fleet coordinator: campaigns run
// through the coordinator's durable manager (content-addressed ids,
// store checkpoints, POST /v1/campaigns/{id}/resume), workers join via
// POST /v1/fleet/register + /v1/fleet/heartbeat, and GET /v1/fleet
// reports the live roster. Without it, the fleet endpoints answer 501.
func NewHandler(svc *Service, cfg config.Config, opts ...HandlerOption) http.Handler {
	var ho handlerOpts
	for _, o := range opts {
		o(&ho)
	}
	fc := ho.fleet
	mux := http.NewServeMux()
	// The service's tracer (nil when the daemon runs untraced): run
	// requests join the caller's trace via X-Zng-Trace or root a
	// sampled one, and locally managed campaigns root their own. With a
	// fleet coordinator the campaign side uses the coordinator's tracer
	// (the daemon wires the same instance into both).
	tr := svc.Tracer()
	var mgr CampaignManager
	if fc != nil {
		mgr = fc.Campaigns()
	} else {
		pm := campaign.NewManager(svc, cfg, 0)
		pm.SetTracer(tr)
		mgr = pm
	}

	// Per-endpoint latency histograms. The map is fully populated
	// before NewHandler returns and read-only afterwards, so the
	// metrics handler may range it without a lock (the histograms
	// themselves are internally atomic).
	hists := map[string]*latency.Histogram{}
	timed := func(pattern string, h http.HandlerFunc) {
		hist := &latency.Histogram{}
		hists[pattern] = hist
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			h(w, r)
			hist.Observe(time.Since(start))
		})
	}

	timed("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		var req runRequest
		// Pre-seed the config target with the base configuration: a
		// request's "config" object decodes over it, so unspecified
		// fields inherit the base rather than zeroing, and an absent
		// "config" leaves the seed (= the base) in place. Either way
		// req.Config is the effective cell configuration afterwards.
		seeded := cfg
		req.Config = &seeded
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		if req.Config == nil { // an explicit "config": null
			req.Config = &seeded
		}
		kind, err := platform.KindByName(req.Platform)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		var mix workload.Mix
		switch {
		case req.Apps != "" && req.Mix != "":
			writeErr(w, http.StatusBadRequest, errors.New(`"mix" and "apps" are mutually exclusive`))
			return
		case req.Apps != "":
			mix, err = workload.ParseApps(req.Apps)
		case req.Mix != "":
			mix, err = workload.MixByName(req.Mix)
		default:
			err = errors.New(`one of "mix" or "apps" is required`)
		}
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		scale := req.Scale
		if scale == 0 {
			scale = experiments.DefaultScale
		}
		if scale < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("scale must be positive, got %v", scale))
			return
		}
		// One ingress span per accepted run: join the propagated trace
		// when X-Zng-Trace carries one (a coordinator's peer span),
		// otherwise root a sampled local trace. The span ends before any
		// reply is written, so a traced submitter's very first poll
		// already finds it in the flight recorder.
		headerCtx, hasHeader := obs.DecodeContext(r.Header.Get(obs.Header))
		var span *obs.Span
		if hasHeader {
			span = tr.StartSpan(headerCtx, "http", "POST /v1/run")
		} else {
			span = tr.SampledRoot("http", "POST /v1/run")
		}
		request := Request{Kind: kind, Mix: mix, Scale: scale, Cfg: *req.Config, Priority: req.Priority, Trace: span.Context()}
		if req.Async {
			job, err := svc.SubmitJob(request)
			if errors.Is(err, ErrOverloaded) {
				span.SetCode(http.StatusTooManyRequests)
				span.EndErr(err)
				writeOverloaded(w, svc, err)
				return
			}
			if err != nil {
				// Beyond overload, only shutdown rejects a well-formed
				// submission.
				span.SetCode(http.StatusServiceUnavailable)
				span.EndErr(err)
				writeErr(w, http.StatusServiceUnavailable, err)
				return
			}
			span.SetCode(http.StatusAccepted)
			span.End()
			writeJSON(w, http.StatusAccepted, runResponse{Job: job})
			return
		}
		// DoJob holds the job across the wait, so a retention eviction
		// between completion and reply cannot lose the result.
		res, job, err := svc.DoJob(request)
		if errors.Is(err, ErrOverloaded) {
			span.SetCode(http.StatusTooManyRequests)
			span.EndErr(err)
			writeOverloaded(w, svc, err)
			return
		}
		if errors.Is(err, ErrClosed) && job.ID == "" {
			span.SetCode(http.StatusServiceUnavailable)
			span.EndErr(err)
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			span.SetCode(status)
			span.EndErr(err)
			writeJSON(w, status, struct {
				Error string  `json:"error"`
				Job   JobInfo `json:"job"`
			}{err.Error(), job})
			return
		}
		span.SetCode(http.StatusOK)
		span.End()
		resp := runResponse{Job: job, Result: report.EncodeResult(res)}
		if hasHeader {
			resp.Spans = tr.Subtree(headerCtx)
		}
		writeJSON(w, http.StatusOK, resp)
	})

	timed("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Jobs []JobInfo `json:"jobs"`
		}{svc.Jobs()})
	})

	timed("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		// A completed job carries its result, so an async submitter can
		// poll this endpoint to done and collect the document in one
		// round trip. JobResult snapshots status and result in a single
		// lookup, so retention eviction between the two cannot reply
		// "done" without the document. The result is relabeled to the
		// job's workload, matching the sync run path — a disk-served
		// cell may carry the label of whoever first computed it,
		// possibly an aliasing scenario.
		job, res, ok := svc.JobResult(id)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
			return
		}
		resp := runResponse{Job: job}
		if job.State == StateDone {
			if job.Workload != "" {
				res.Workload = job.Workload
			}
			resp.Result = report.EncodeResult(res)
		}
		// A traced poller (X-Zng-Trace) observing the job complete gets
		// this process's span subtree piggybacked — the worker half of a
		// cross-process trace. Polls themselves are not spanned; the
		// header only scopes the subtree to the caller's peer span.
		if job.State == StateDone || job.State == StateError {
			if sc, ok := obs.DecodeContext(r.Header.Get(obs.Header)); ok {
				resp.Spans = tr.Subtree(sc)
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})

	timed("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec campaign.Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding campaign spec: %w", err))
			return
		}
		c, err := mgr.Start(spec)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, struct {
			Campaign campaignInfo `json:"campaign"`
		}{campaignStatus(c)})
	})

	timed("GET /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		list := mgr.List()
		out := make([]campaignInfo, len(list))
		for i, c := range list {
			out[i] = campaignStatus(c)
		}
		writeJSON(w, http.StatusOK, struct {
			Campaigns []campaignInfo `json:"campaigns"`
		}{out})
	})

	timed("GET /v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		c, ok := mgr.Get(id)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", id))
			return
		}
		detail := campaignDetail{campaignInfo: campaignStatus(c)}
		// A finished campaign carries the folded result matrix (the
		// same table zngsweep prints) and any per-cell failures, so
		// one poll-to-done loop collects everything.
		if out := c.Outcome(); out != nil {
			detail.Table = report.JSON(out.Table())
			for _, cr := range out.Cells {
				if cr.Err != nil {
					detail.Errors = append(detail.Errors, campaignCellError{
						Platform: cr.Cell.Kind.String(),
						Scenario: cr.Cell.Mix.Name,
						Scale:    cr.Cell.Scale,
						Config:   cr.Cell.Override.Label(),
						Error:    cr.Err.Error(),
					})
				}
			}
		}
		writeJSON(w, http.StatusOK, detail)
	})

	timed("POST /v1/campaigns/{id}/resume", func(w http.ResponseWriter, r *http.Request) {
		resumer, ok := mgr.(campaignResumer)
		if !ok {
			writeErr(w, http.StatusNotImplemented,
				errors.New("campaign resume requires a fleet coordinator (start zngd with -store and fleet enabled)"))
			return
		}
		id := r.PathValue("id")
		c, err := resumer.Resume(id)
		if errors.Is(err, os.ErrNotExist) {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no checkpoint for campaign %q", id))
			return
		}
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, struct {
			Campaign campaignInfo `json:"campaign"`
		}{campaignStatus(c)})
	})

	timed("POST /v1/fleet/register", func(w http.ResponseWriter, r *http.Request) {
		if fc == nil {
			writeErr(w, http.StatusNotImplemented, errors.New("this zngd is not a fleet coordinator"))
			return
		}
		var req fleetRegisterRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding register request: %w", err))
			return
		}
		peer, err := fc.Register(req.Addr)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, fleetRegisterReply{
			Peer:        peer,
			HeartbeatMS: fleet.HeartbeatInterval(fc.TTL()).Milliseconds(),
		})
	})

	timed("POST /v1/fleet/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		if fc == nil {
			writeErr(w, http.StatusNotImplemented, errors.New("this zngd is not a fleet coordinator"))
			return
		}
		var req fleetHeartbeatRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding heartbeat: %w", err))
			return
		}
		if err := fc.Heartbeat(req.ID, req.Load); err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, fleet.ErrUnknownPeer) {
				// Expired or never registered: 404 tells the agent to
				// re-register rather than keep beating a dead id.
				status = http.StatusNotFound
			}
			writeErr(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
		}{"ok"})
	})

	timed("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		if fc == nil {
			writeErr(w, http.StatusNotImplemented, errors.New("this zngd is not a fleet coordinator"))
			return
		}
		peers := fc.Peers()
		sort.Slice(peers, func(i, j int) bool { return peers[i].Addr < peers[j].Addr })
		writeJSON(w, http.StatusOK, struct {
			Peers  []fleet.Peer `json:"peers"`
			Gauges fleet.Gauges `json:"gauges"`
		}{peers, fc.Gauges()})
	})

	timed("GET /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		scenarios := workload.Scenarios()
		out := make([]scenarioInfo, len(scenarios))
		for i, m := range scenarios {
			out[i] = scenarioInfo{Name: m.Name, MixID: m.ID(), Degree: m.Degree()}
		}
		writeJSON(w, http.StatusOK, struct {
			Scenarios []scenarioInfo `json:"scenarios"`
		}{out})
	})

	timed("GET /v1/platforms", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Platforms []string `json:"platforms"`
		}{platform.KindNames()})
	})

	timed("GET /v1/trace", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var minUS int64
		if s := q.Get("min_ms"); s != "" {
			ms, err := strconv.ParseFloat(s, 64)
			if err != nil || ms < 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad min_ms %q", s))
				return
			}
			minUS = int64(ms * 1000)
		}
		status := 0
		if s := q.Get("status"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad status %q", s))
				return
			}
			status = n
		}
		endpoint := q.Get("endpoint")
		out := []obs.Summary{}
		for _, sum := range tr.Summaries() {
			if endpoint != "" && !strings.Contains(sum.Detail, endpoint) {
				continue
			}
			if status != 0 && sum.Code != status {
				continue
			}
			if sum.DurUS < minUS {
				continue
			}
			out = append(out, sum)
		}
		total, dropped := tr.RingStats()
		writeJSON(w, http.StatusOK, struct {
			Traces       []obs.Summary `json:"traces"`
			SpansTotal   uint64        `json:"spans_total"`
			SpansDropped uint64        `json:"spans_dropped"`
		}{out, total, dropped})
	})

	timed("GET /v1/trace/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Stages []obs.StageStat `json:"stages"`
		}{tr.Stages()})
	})

	timed("GET /v1/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		raw := r.PathValue("id")
		id, ok := obs.ParseID(raw)
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad trace id %q (want 16 hex digits)", raw))
			return
		}
		// The full tree, worker spans included (they were ingested when
		// the dispatcher's polls piggybacked them), sorted by start.
		recs := tr.Trace(id)
		if len(recs) == 0 {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no spans recorded for trace %s", id))
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Trace obs.ID       `json:"trace"`
			Spans []obs.Record `json:"spans"`
		}{id, recs})
	})

	timed("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
		}{"ok"})
	})

	timed("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantProm(r) {
			writeProm(w, svc, fc, hists)
			return
		}
		writeJSON(w, http.StatusOK, metrics(svc, fc, hists))
	})

	// Unmatched paths fall through to "/": a structured 404 instead of
	// the ServeMux's text/plain page. Method mismatches on known paths
	// land on the method-less patterns below (the method-bearing ones
	// above are more specific and win their verb), yielding a
	// structured 405 with the Allow header intact.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such endpoint %s", r.URL.Path))
	})
	for pattern, allow := range map[string]string{
		"/v1/run":                   "POST",
		"/v1/jobs":                  "GET",
		"/v1/jobs/{id}":             "GET",
		"/v1/campaigns":             "GET, POST",
		"/v1/campaigns/{id}":        "GET",
		"/v1/campaigns/{id}/resume": "POST",
		"/v1/fleet":                 "GET",
		"/v1/fleet/register":        "POST",
		"/v1/fleet/heartbeat":       "POST",
		"/v1/scenarios":             "GET",
		"/v1/platforms":             "GET",
		"/v1/trace":                 "GET",
		// No method-less "/v1/trace/stats": it would out-specialize
		// "GET /v1/trace/{id}" across methods and ServeMux rejects the
		// pair; wrong-method stats requests land on the {id} fallback.
		"/v1/trace/{id}": "GET",
		"/healthz":       "GET",
		"/metrics":       "GET",
	} {
		allow := allow
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", allow)
			writeErr(w, http.StatusMethodNotAllowed,
				fmt.Errorf("method %s not allowed on %s (allow: %s)", r.Method, r.URL.Path, allow))
		})
	}

	return mux
}

// campaignInfo is the campaign status envelope shared by the list,
// detail and start replies.
type campaignInfo struct {
	ID       string            `json:"id"`
	Name     string            `json:"name,omitempty"`
	State    string            `json:"state"` // "running" or "done"
	Progress campaign.Progress `json:"progress"`
	// Trace is the campaign's root trace id, resolvable at
	// GET /v1/trace/{id} while the flight recorder retains it. Absent
	// on untraced daemons.
	Trace string `json:"trace,omitempty"`
}

// campaignDetail extends the status with the finished campaign's
// result matrix and per-cell failures.
type campaignDetail struct {
	campaignInfo
	Errors []campaignCellError `json:"errors,omitempty"`
	Table  json.RawMessage     `json:"table,omitempty"`
}

// campaignCellError locates one failed cell in the grid.
type campaignCellError struct {
	Platform string  `json:"platform"`
	Scenario string  `json:"scenario"`
	Scale    float64 `json:"scale"`
	Config   string  `json:"config"`
	Error    string  `json:"error"`
}

func campaignStatus(c *campaign.Campaign) campaignInfo {
	state := "running"
	if c.Done() {
		state = "done"
	}
	info := campaignInfo{ID: c.ID, Name: c.Spec.Name, State: state, Progress: c.Progress()}
	if t := c.Trace(); t != 0 {
		info.Trace = t.String()
	}
	return info
}

// metricsDoc is the /metrics document: the runner counters plus job,
// store and result-tier gauges, flat like an expvar page so scrapers
// stay simple — except "latency", a map of p50/p95/p99 summaries per
// endpoint (plus "sim", the per-simulation latency feeding the
// Retry-After estimator).
type metricsDoc struct {
	Sims          uint64 `json:"sims"`
	MemoryHits    uint64 `json:"memory_hits"`
	DiskHits      uint64 `json:"disk_hits"`
	Coalesced     uint64 `json:"coalesced"`
	JobsTotal     int    `json:"jobs_total"`
	JobsQueued    int    `json:"jobs_queued"`
	JobsRunning   int    `json:"jobs_running"`
	JobsDone      int    `json:"jobs_done"`
	JobsError     int    `json:"jobs_error"`
	JobsEvicted   uint64 `json:"jobs_evicted"`
	JobsRejected  uint64 `json:"jobs_rejected"`
	StoreEntries  int    `json:"store_entries"`
	TierEntries   int    `json:"tier_entries"`
	TierCapacity  int    `json:"tier_capacity"`
	TierHits      uint64 `json:"tier_hits"`
	TierMisses    uint64 `json:"tier_misses"`
	TierEvictions uint64 `json:"tier_evictions"`
	TierNegatives int    `json:"tier_negatives"`

	// Fleet is present only on coordinators (WithFleet).
	Fleet *fleet.Gauges `json:"fleet,omitempty"`

	Latency map[string]latency.Snapshot `json:"latency,omitempty"`
}

func metrics(svc *Service, fc *fleet.Coordinator, hists map[string]*latency.Histogram) metricsDoc {
	st := svc.Stats()
	tier := svc.TierStats()
	doc := metricsDoc{
		Sims:          st.Sims,
		MemoryHits:    st.MemoryHits,
		DiskHits:      st.DiskHits,
		Coalesced:     st.Coalesced,
		JobsEvicted:   svc.EvictedJobs(),
		JobsRejected:  svc.Rejected(),
		TierEntries:   tier.Entries,
		TierCapacity:  tier.Capacity,
		TierHits:      tier.Hits,
		TierMisses:    tier.Misses,
		TierEvictions: tier.Evictions,
		TierNegatives: tier.Negatives,
		Latency:       map[string]latency.Snapshot{"sim": svc.SimLatency()},
	}
	if fc != nil {
		g := fc.Gauges()
		doc.Fleet = &g
	}
	for pattern, h := range hists {
		if s := h.Snapshot(); s.Count > 0 {
			doc.Latency[pattern] = s
		}
	}
	for _, j := range svc.Jobs() {
		doc.JobsTotal++
		switch j.State {
		case StateQueued:
			doc.JobsQueued++
		case StateRunning:
			doc.JobsRunning++
		case StateDone:
			doc.JobsDone++
		case StateError:
			doc.JobsError++
		}
	}
	if s := svc.Store(); s != nil {
		if n, err := s.Entries(); err == nil {
			doc.StoreEntries = n
		}
	}
	return doc
}

// wantProm reports whether the scraper asked for Prometheus text
// exposition: ?format=prom, or an Accept header naming text/plain or
// openmetrics (Prometheus sends both). Plain curl and the JSON
// clients send Accept: */* and keep the JSON document.
func wantProm(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prom" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// writeProm renders the metrics document in Prometheus text
// exposition format 0.0.4: every counter and gauge as a zng_* series,
// plus full histograms (_bucket/_sum/_count, in seconds) for the
// per-simulation latency and every HTTP endpoint.
func writeProm(w http.ResponseWriter, svc *Service, fc *fleet.Coordinator, hists map[string]*latency.Histogram) {
	doc := metrics(svc, fc, hists)
	var p obs.Prom
	p.Counter("zng_sims_total", "Simulations executed.", float64(doc.Sims))
	p.Counter("zng_memory_hits_total", "Requests served from the memory result tier.", float64(doc.MemoryHits))
	p.Counter("zng_disk_hits_total", "Requests served from the disk store.", float64(doc.DiskHits))
	p.Counter("zng_coalesced_total", "Requests coalesced onto an identical in-flight cell.", float64(doc.Coalesced))
	for _, s := range []struct {
		state string
		n     int
	}{
		{"queued", doc.JobsQueued},
		{"running", doc.JobsRunning},
		{"done", doc.JobsDone},
		{"error", doc.JobsError},
	} {
		p.Gauge("zng_jobs", "Jobs in the retention window by state.",
			float64(s.n), obs.Label{Name: "state", Value: s.state})
	}
	p.Counter("zng_jobs_evicted_total", "Finished jobs evicted by retention.", float64(doc.JobsEvicted))
	p.Counter("zng_jobs_rejected_total", "Submissions rejected by admission control.", float64(doc.JobsRejected))
	p.Gauge("zng_store_entries", "Results in the disk store.", float64(doc.StoreEntries))
	p.Gauge("zng_tier_entries", "Results in the memory tier.", float64(doc.TierEntries))
	p.Gauge("zng_tier_capacity", "Memory tier capacity.", float64(doc.TierCapacity))
	p.Counter("zng_tier_hits_total", "Memory tier hits.", float64(doc.TierHits))
	p.Counter("zng_tier_misses_total", "Memory tier misses.", float64(doc.TierMisses))
	p.Counter("zng_tier_evictions_total", "Memory tier LRU evictions.", float64(doc.TierEvictions))
	p.Gauge("zng_tier_negatives", "Negative (deterministic-failure) entries in the memory tier.", float64(doc.TierNegatives))
	if doc.Fleet != nil {
		p.Gauge("zng_fleet_peers_live", "Registered, un-expired workers.", float64(doc.Fleet.PeersLive))
		p.Counter("zng_fleet_peers_dead_total", "Heartbeat expiries since start.", float64(doc.Fleet.PeersDead))
		p.Counter("zng_fleet_cells_reassigned_total", "Cells rerouted after a peer fault.", float64(doc.Fleet.CellsReassigned))
		p.Counter("zng_fleet_campaigns_resumed_total", "Campaigns started over a non-empty journal.", float64(doc.Fleet.CampaignsResumed))
	}
	if tr := svc.Tracer(); tr != nil {
		total, dropped := tr.RingStats()
		p.Counter("zng_trace_spans_total", "Spans recorded by the flight recorder.", float64(total))
		p.Counter("zng_trace_spans_dropped_total", "Spans overwritten before being read.", float64(dropped))
	}
	p.Histogram("zng_sim_duration_seconds", "Wall-clock per executed simulation.", svc.SimHistogram())
	endpoints := make([]string, 0, len(hists))
	for pattern := range hists {
		endpoints = append(endpoints, pattern)
	}
	sort.Strings(endpoints)
	for _, pattern := range endpoints {
		p.Histogram("zng_http_request_duration_seconds", "Wall-clock per HTTP request.",
			hists[pattern], obs.Label{Name: "endpoint", Value: pattern})
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(p.Bytes())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is gone; an encoding failure can only be a dead
	// client, which has already stopped caring.
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}

// writeOverloaded maps ErrOverloaded to 429 Too Many Requests with a
// Retry-After header (whole seconds, minimum 1 — the header's
// granularity) from the service's backlog-drain estimate.
func writeOverloaded(w http.ResponseWriter, svc *Service, err error) {
	secs := int(math.Ceil(svc.RetryAfter().Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeErr(w, http.StatusTooManyRequests, err)
}
