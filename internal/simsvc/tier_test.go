package simsvc

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"zng/internal/config"
	"zng/internal/experiments"
	"zng/internal/platform"
	"zng/internal/report"
	"zng/internal/restier"
	"zng/internal/store"
	"zng/internal/workload"
)

// TestTierServedEqualsFreshSimulation is the tier determinism
// satellite: the same cell served from the memory tier, from the
// disk tier, and by a fresh simulation must encode byte-identically
// under report.EncodeResult. This runs the real simulator at a small
// scale.
func TestTierServedEqualsFreshSimulation(t *testing.T) {
	o := experiments.TestOptions()
	mixA := testMix(t, "solo-bfs1")
	mixB := testMix(t, "solo-gaus")
	kind := platform.GDDR5

	fresh, err := platform.RunMix(kind, mixA, o.Scale, o.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := report.EncodeResult(fresh)

	// Service 1: real simulator, tier on, retention of one job. Cell A
	// simulates and writes through; cell B evicts A's job memo; the
	// re-request for A must then come from the memory tier.
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := New(Config{Store: st1, Workers: 1, MaxJobs: 1, CacheEntries: 4})
	if _, err := svc1.Run(kind, mixA, o.Scale, o.Cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := svc1.Run(kind, mixB, o.Scale, o.Cfg); err != nil {
		t.Fatal(err)
	}
	memServed, job, err := svc1.DoJob(Request{Kind: kind, Mix: mixA, Scale: o.Scale, Cfg: o.Cfg})
	if err != nil {
		t.Fatal(err)
	}
	if job.Source != "memory" {
		t.Fatalf("re-request after job eviction served from %q, want the memory tier (stats %+v, tier %+v)",
			job.Source, svc1.Stats(), svc1.TierStats())
	}
	if got := report.EncodeResult(memServed); !bytes.Equal(got, want) {
		t.Errorf("memory-tier result differs from fresh simulation:\nfresh:  %s\nmemory: %s", want, got)
	}
	if st := svc1.Stats(); st.Sims != 2 {
		t.Errorf("service simulated %d times, want 2 (the memory serve must not simulate)", st.Sims)
	}
	svc1.Close()

	// Service 2: fresh process over the same store, simulator rigged to
	// fail — cell A must disk-serve (promoting into the tier), and once
	// its job memo is evicted, memory-serve, both byte-identical.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := New(Config{Store: st2, Workers: 1, MaxJobs: 1, CacheEntries: 4,
		Simulate: func(platform.Kind, workload.Mix, float64, config.Config) (platform.Result, error) {
			return platform.Result{}, errors.New("must serve from a tier")
		}})
	defer svc2.Close()
	diskServed, job, err := svc2.DoJob(Request{Kind: kind, Mix: mixA, Scale: o.Scale, Cfg: o.Cfg})
	if err != nil {
		t.Fatal(err)
	}
	if job.Source != "disk" {
		t.Fatalf("fresh process served from %q, want disk", job.Source)
	}
	if got := report.EncodeResult(diskServed); !bytes.Equal(got, want) {
		t.Errorf("disk-tier result differs from fresh simulation:\nfresh: %s\ndisk:  %s", want, got)
	}
	// An unrelated failed job evicts A's memo (error jobs are
	// evictable); A then re-serves from the memory tier it was promoted
	// into by the disk read. The cell must be one no service has
	// simulated, so the rigged simulator actually runs and fails.
	if _, err := svc2.Run(kind, mixB, o.Scale/2, o.Cfg); err == nil {
		t.Fatal("rigged simulator did not fail")
	}
	memServed2, job, err := svc2.DoJob(Request{Kind: kind, Mix: mixA, Scale: o.Scale, Cfg: o.Cfg})
	if err != nil {
		t.Fatal(err)
	}
	if job.Source != "memory" {
		t.Fatalf("post-eviction re-request served from %q, want memory (tier %+v)", job.Source, svc2.TierStats())
	}
	if got := report.EncodeResult(memServed2); !bytes.Equal(got, want) {
		t.Errorf("memory-tier result (promoted from disk) differs from fresh simulation:\nfresh:  %s\nmemory: %s", want, got)
	}
}

// TestTierDisabledByDefault pins the opt-in: a zero CacheEntries
// config has no memory tier, so an evicted cell re-serves from disk
// exactly as before the tier existed.
func TestTierDisabledByDefault(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sim := &stubSim{res: platform.Result{IPC: 1}}
	svc := New(Config{Store: st, Workers: 1, MaxJobs: 1, Simulate: sim.fn})
	defer svc.Close()
	req := Request{Kind: platform.ZnG, Mix: testMix(t, "betw-back"), Scale: 0.5, Cfg: config.Default()}
	if _, err := svc.Do(req); err != nil {
		t.Fatal(err)
	}
	other := req
	other.Scale = 0.25
	if _, err := svc.Do(other); err != nil {
		t.Fatal(err)
	}
	if _, job, err := svc.DoJob(req); err != nil || job.Source != "disk" {
		t.Fatalf("tier-less re-request: source %q err %v, want disk", job.Source, err)
	}
	if ts := svc.TierStats(); ts.Capacity != 0 || ts.Hits != 0 {
		t.Errorf("disabled tier reports %+v", ts)
	}
}

// TestAdmissionBound: past MaxQueue pending simulations, new cells
// are refused with ErrOverloaded — but coalesced attaches and
// completed-cell hits are always admitted, and draining the queue
// restores admission.
func TestAdmissionBound(t *testing.T) {
	sim := &stubSim{gate: make(chan struct{}), started: make(chan struct{}, 1), res: platform.Result{IPC: 1}}
	svc := New(Config{Workers: 1, MaxQueue: 2, Simulate: sim.fn})
	defer svc.Close()

	cell := func(scale float64) Request {
		return Request{Kind: platform.ZnG, Mix: testMix(t, "betw-back"), Scale: scale, Cfg: config.Default()}
	}
	// Cell 1 occupies the worker; cells 2 and 3 fill the queue.
	id1, err := svc.Submit(cell(1))
	if err != nil {
		t.Fatal(err)
	}
	<-sim.started
	for i, sc := range []float64{2, 3} {
		if _, err := svc.Submit(cell(sc)); err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
	}

	// A fourth distinct cell would grow the queue past the bound.
	if _, err := svc.Submit(cell(4)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit past the bound: err = %v, want ErrOverloaded", err)
	}
	if n := svc.Rejected(); n != 1 {
		t.Errorf("Rejected() = %d, want 1", n)
	}
	// Coalescing onto queued or running work does not grow the queue
	// and must be admitted at full load.
	for _, sc := range []float64{1, 2, 3} {
		if _, err := svc.Submit(cell(sc)); err != nil {
			t.Errorf("coalesced attach at scale %v rejected: %v", sc, err)
		}
	}

	// Drain: each gate release lets the single worker finish one job.
	go func() {
		for i := 0; i < 3; i++ {
			<-sim.started
		}
	}()
	close(sim.gate)
	if _, err := svc.Await(id1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Sims < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never drained: stats %+v", svc.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	// The backlog is gone; a new cell and a completed-cell hit are both
	// admitted again.
	if _, err := svc.Do(cell(4)); err != nil {
		t.Errorf("post-drain submit: %v", err)
	}
	if _, err := svc.Do(cell(1)); err != nil {
		t.Errorf("post-drain memo hit: %v", err)
	}
}

// TestRetryAfterBounds pins the estimator's clamp: a cold service
// (no simulation has finished) answers the 1s floor, and the
// estimate never exceeds the 5-minute ceiling.
func TestRetryAfterBounds(t *testing.T) {
	sim := &stubSim{res: platform.Result{IPC: 1}}
	svc := New(Config{Workers: 1, MaxQueue: 1, Simulate: sim.fn})
	defer svc.Close()
	if got := svc.RetryAfter(); got != time.Second {
		t.Errorf("cold RetryAfter = %v, want the 1s floor", got)
	}
	if _, err := svc.Do(Request{Kind: platform.ZnG, Mix: testMix(t, "betw-back"), Scale: 0.5, Cfg: config.Default()}); err != nil {
		t.Fatal(err)
	}
	if got := svc.RetryAfter(); got < time.Second || got > 5*time.Minute {
		t.Errorf("RetryAfter = %v, want within [1s, 5m]", got)
	}
}

// TestAPIAdmissionControl is the HTTP satellite: an overloaded
// service answers 429 with a positive integral Retry-After header on
// both the sync and async run paths, and recovers to 200 once the
// backlog drains.
func TestAPIAdmissionControl(t *testing.T) {
	sim := &stubSim{gate: make(chan struct{}), started: make(chan struct{}, 1), res: platform.Result{IPC: 2}}
	svc := New(Config{Workers: 1, MaxQueue: 1, Simulate: sim.fn})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(NewHandler(svc, config.Default()))
	t.Cleanup(srv.Close)

	// Occupy the worker (async, so the test never blocks) and fill the
	// one queue slot.
	resp, doc := postRun(t, srv.URL, `{"platform":"ZnG","mix":"betw-back","scale":0.5,"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first async run: %d (%s)", resp.StatusCode, doc["error"])
	}
	<-sim.started
	resp, doc = postRun(t, srv.URL, `{"platform":"ZnG","mix":"betw-back","scale":0.25,"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue-filling async run: %d (%s)", resp.StatusCode, doc["error"])
	}

	// Overloaded: both paths answer 429 with a Retry-After the client
	// can sleep on.
	for _, body := range []string{
		`{"platform":"ZnG","mix":"betw-back","scale":0.125,"async":true}`,
		`{"platform":"ZnG","mix":"betw-back","scale":0.0625}`,
	} {
		resp, doc = postRun(t, srv.URL, body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overloaded run %s: status %d (%s), want 429", body, resp.StatusCode, doc["error"])
		}
		ra := resp.Header.Get("Retry-After")
		if ra == "" {
			t.Fatal("429 without a Retry-After header")
		}
		var secs int
		if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 {
			t.Fatalf("Retry-After = %q, want a positive integral second count", ra)
		}
		if len(doc["error"]) == 0 {
			t.Error("429 body carries no error document")
		}
	}

	// Drain and recover: releasing the gate lets the worker finish
	// both jobs; the service must then admit (and answer) again.
	go func() { <-sim.started }()
	close(sim.gate)
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Sims < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("backlog never drained: %+v", svc.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	resp, doc = postRun(t, srv.URL, `{"platform":"ZnG","mix":"betw-back","scale":0.125}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain run: %d (%s), want 200", resp.StatusCode, doc["error"])
	}
	// The rejections surface in /metrics.
	var m metricsDoc
	getJSON(t, srv.URL+"/metrics", &m)
	if m.JobsRejected != 2 {
		t.Errorf("jobs_rejected = %d, want 2", m.JobsRejected)
	}
	if m.Latency == nil || m.Latency["POST /v1/run"].Count == 0 {
		t.Errorf("latency map missing the run endpoint: %+v", m.Latency)
	}
}

// TestAPIMetricsTierGauges: the tier gauges and latency summaries
// surface in /metrics with the tier enabled.
func TestAPIMetricsTierGauges(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Store: st, Workers: 1, MaxJobs: 1, CacheEntries: 8, Simulate: fixedSim(1.5)})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(NewHandler(svc, config.Default()))
	t.Cleanup(srv.Close)

	// Two cells evict each other's job memos (MaxJobs 1), so the third
	// request is a memory-tier hit.
	for _, body := range []string{
		`{"platform":"ZnG","mix":"betw-back","scale":0.5}`,
		`{"platform":"ZnG","mix":"betw-back","scale":0.25}`,
	} {
		if resp, doc := postRun(t, srv.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("run %s: %d (%s)", body, resp.StatusCode, doc["error"])
		}
	}
	resp, doc := postRun(t, srv.URL, `{"platform":"ZnG","mix":"betw-back","scale":0.5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tier-hit run: %d (%s)", resp.StatusCode, doc["error"])
	}
	var job JobInfo
	if err := json.Unmarshal(doc["job"], &job); err != nil {
		t.Fatal(err)
	}
	if job.Source != "memory" {
		t.Fatalf("job source = %q, want memory", job.Source)
	}

	var m metricsDoc
	getJSON(t, srv.URL+"/metrics", &m)
	if m.TierCapacity != 8 || m.TierHits != 1 || m.TierEntries == 0 {
		t.Errorf("tier gauges = capacity %d hits %d entries %d, want 8/1/>0", m.TierCapacity, m.TierHits, m.TierEntries)
	}
	if m.MemoryHits != 1 {
		t.Errorf("memory_hits = %d, want the tier serve counted", m.MemoryHits)
	}
	if m.Latency["sim"].Count != 2 {
		t.Errorf("latency.sim count = %d, want 2", m.Latency["sim"].Count)
	}
}

// TestNegativeCacheServesRepeatFailures: a deterministic simulation
// failure whose job retention evicted is re-served from the tier's
// negative entry — same error text, zero re-simulation.
func TestNegativeCacheServesRepeatFailures(t *testing.T) {
	mixA := testMix(t, "solo-bfs1")
	mixB := testMix(t, "solo-gaus")
	cfg := config.Default()
	sims := 0
	svc := New(Config{Workers: 1, MaxJobs: 1, CacheEntries: 4,
		Simulate: func(kind platform.Kind, mix workload.Mix, scale float64, c config.Config) (platform.Result, error) {
			sims++
			if mix.ID() == mixA.ID() {
				return platform.Result{}, errors.New("zng: apps exceed SMs")
			}
			return platform.Result{Kind: kind, Workload: mix.Name, IPC: 1}, nil
		}})
	defer svc.Close()

	if _, err := svc.Run(platform.ZnG, mixA, 0.5, cfg); err == nil || err.Error() != "zng: apps exceed SMs" {
		t.Fatalf("first run err = %v, want the simulation failure", err)
	}
	// Cell B pushes retention past the bound: A's failed job (evictable
	// unconditionally) is dropped, leaving only the tier's negative entry.
	if _, err := svc.Run(platform.ZnG, mixB, 0.5, cfg); err != nil {
		t.Fatal(err)
	}
	if ts := svc.TierStats(); ts.Negatives != 1 {
		t.Fatalf("tier negatives = %d, want 1 (stats %+v)", ts.Negatives, ts)
	}

	_, job, err := svc.DoJob(Request{Kind: platform.ZnG, Mix: mixA, Scale: 0.5, Cfg: cfg})
	if err == nil || err.Error() != "zng: apps exceed SMs" {
		t.Fatalf("replayed err = %v, want the original failure text", err)
	}
	var neg *restier.Negative
	if !errors.As(err, &neg) {
		t.Errorf("replayed error is %T, want a typed *restier.Negative", err)
	}
	if job.State != StateError || job.Source != "memory" {
		t.Errorf("replayed job = %+v, want an error job served from memory", job)
	}
	if sims != 2 {
		t.Errorf("simulator ran %d times, want 2 (the repeat failure must not re-simulate)", sims)
	}
	if st := svc.Stats(); st.MemoryHits != 1 {
		t.Errorf("stats = %+v, want 1 memory hit for the negative serve", st)
	}
}
