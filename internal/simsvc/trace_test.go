package simsvc

import (
	"errors"
	"testing"

	"zng/internal/config"
	"zng/internal/obs"
	"zng/internal/platform"
	"zng/internal/store"
	"zng/internal/workload"
)

// TestTierOutcomeSpans drives one cell through every serve outcome —
// fresh simulation, memory-tier hit, disk-tier hit, negative replay —
// and asserts each traced request's span tree names the tier that
// served it.
func TestTierOutcomeSpans(t *testing.T) {
	mixA := testMix(t, "solo-bfs1")
	mixB := testMix(t, "solo-gaus")
	mixF := testMix(t, "solo-pr")
	cfg := config.Default()

	do := func(svc *Service, tr *obs.Tracer, mix workload.Mix, scale float64) (obs.ID, JobInfo, error) {
		root := tr.StartRoot("test.request", mix.Name)
		_, job, err := svc.DoJob(Request{Kind: platform.ZnG, Mix: mix, Scale: scale, Cfg: cfg, Trace: root.Context()})
		root.End()
		return root.Context().Trace, job, err
	}
	names := func(tr *obs.Tracer, id obs.ID) map[string]bool {
		out := map[string]bool{}
		for _, r := range tr.Trace(id) {
			out[r.Name] = true
		}
		return out
	}

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New("svc-1", 256, 1)
	svc := New(Config{Store: st, Workers: 1, MaxJobs: 1, CacheEntries: 8, Tracer: tr,
		Simulate: func(kind platform.Kind, mix workload.Mix, scale float64, c config.Config) (platform.Result, error) {
			if mix.ID() == mixF.ID() {
				return platform.Result{}, errors.New("rigged failure")
			}
			return platform.Result{Kind: kind, Workload: mix.Name, IPC: 1}, nil
		}})

	// Fresh simulation: the worker loop records the queue wait, the
	// tier miss, the simulation itself and the store write-through.
	simTrace, job, err := do(svc, tr, mixA, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if job.Source != "sim" {
		t.Fatalf("first serve source = %q, want sim", job.Source)
	}
	got := names(tr, simTrace)
	for _, want := range []string{"queue", "tier.miss", "sim", "store.put"} {
		if !got[want] {
			t.Errorf("sim-outcome trace missing %q span (got %v)", want, got)
		}
	}

	// Cell B evicts A's job memo (MaxJobs: 1); the re-request for A
	// must serve from the memory tier and say so in its span.
	if _, err := svc.Run(platform.ZnG, mixB, 0.5, cfg); err != nil {
		t.Fatal(err)
	}
	memTrace, job, err := do(svc, tr, mixA, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if job.Source != "memory" {
		t.Fatalf("re-request source = %q, want memory (stats %+v)", job.Source, svc.TierStats())
	}
	if got := names(tr, memTrace); !got["tier.memory"] {
		t.Errorf("memory-outcome trace missing tier.memory span (got %v)", got)
	}

	// A failing cell records its sim span with the error attached...
	failTrace, _, err := do(svc, tr, mixF, 0.5)
	if err == nil {
		t.Fatal("rigged failure did not surface")
	}
	var simErr string
	for _, r := range tr.Trace(failTrace) {
		if r.Name == "sim" {
			simErr = r.Err
		}
	}
	if simErr != "rigged failure" {
		t.Errorf("failed sim span err = %q, want the rigged failure", simErr)
	}
	// ...and once retention drops the failed job (a fresh cell pushes
	// it out), the repeat serves from the negative cache.
	if _, err := svc.Run(platform.ZnG, mixB, 0.25, cfg); err != nil {
		t.Fatal(err)
	}
	negTrace, job, err := do(svc, tr, mixF, 0.5)
	if err == nil || err.Error() != "rigged failure" {
		t.Fatalf("negative replay err = %v", err)
	}
	if job.Source != "memory" {
		t.Fatalf("negative replay source = %q, want memory", job.Source)
	}
	if got := names(tr, negTrace); !got["tier.negative"] {
		t.Errorf("negative-outcome trace missing tier.negative span (got %v)", got)
	}
	svc.Close()

	// A fresh process over the same store has an empty memory tier:
	// cell A must disk-serve, and its span tree must show the worker
	// loop found it on disk (the simulator is rigged to prove no
	// recomputation happened).
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := obs.New("svc-2", 256, 1)
	svc2 := New(Config{Store: st2, Workers: 1, CacheEntries: 8, Tracer: tr2,
		Simulate: func(platform.Kind, workload.Mix, float64, config.Config) (platform.Result, error) {
			return platform.Result{}, errors.New("must serve from disk")
		}})
	defer svc2.Close()
	diskTrace, job, err := do(svc2, tr2, mixA, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if job.Source != "disk" {
		t.Fatalf("restart serve source = %q, want disk", job.Source)
	}
	got = names(tr2, diskTrace)
	if !got["queue"] || !got["tier.disk"] {
		t.Errorf("disk-outcome trace missing queue/tier.disk spans (got %v)", got)
	}
}
