package simsvc

import (
	"sync/atomic"
	"testing"

	"zng/internal/config"
	"zng/internal/experiments"
	"zng/internal/platform"
	"zng/internal/store"
	"zng/internal/workload"
)

// BenchmarkServiceThroughput measures end-to-end request throughput
// against a warmed store at TestOptions scale: every request pays the
// full serving path — content-address hashing, submit, job lookup,
// result relabel — and is satisfied without simulating. This is the
// baseline trajectory for future scaling work (sharding, batching,
// multi-node): the serving overhead a hit costs, as requests/sec.
func BenchmarkServiceThroughput(b *testing.B) {
	o := experiments.TestOptions()
	mix := o.Mixes[0]
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	svc := New(Config{Store: st})
	defer svc.Close()
	// Warm: one real simulation lands the cell in memory and on disk.
	if _, err := svc.Run(platform.GDDR5, mix, o.Scale, o.Cfg); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r, err := svc.Run(platform.GDDR5, mix, o.Scale, o.Cfg)
			if err != nil {
				b.Fatal(err)
			}
			if r.IPC <= 0 {
				b.Fatal("served result lost its IPC")
			}
		}
	})
	b.StopTimer()
	if st := svc.Stats(); st.Sims != 1 {
		b.Fatalf("benchmark simulated %d times, want the single warmup", st.Sims)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServiceTiered compares the serving hot path per tier under
// retention pressure: MaxJobs 1 evicts nearly every job memo, so each
// request over a 64-cell working set re-resolves its cell — from the
// warmed memory tier ("memory"), or with the tier disabled from the
// store through a full queue + worker round trip ("disk"). The gap is
// the tier's reason to exist: memory must be well over 5x cheaper.
func BenchmarkServiceTiered(b *testing.B) {
	b.Run("memory", func(b *testing.B) { benchTieredServing(b, 4096) })
	b.Run("disk", func(b *testing.B) { benchTieredServing(b, 0) })
}

func benchTieredServing(b *testing.B, cacheEntries int) {
	const cells = 64
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	stub := func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
		return platform.Result{Kind: kind, Workload: mix.Name, IPC: 1.5, Cycles: 1000, Insts: 1500}, nil
	}
	svc := New(Config{Store: st, MaxJobs: 1, CacheEntries: cacheEntries, Simulate: stub})
	defer svc.Close()

	o := experiments.TestOptions()
	mix := o.Mixes[0]
	reqs := make([]Request, cells)
	for i := range reqs {
		reqs[i] = Request{Kind: platform.GDDR5, Mix: mix, Scale: o.Scale * (1 + float64(i)/cells), Cfg: o.Cfg}
		// Warm: every cell simulated once, written through to the store
		// (and the tier when present).
		if _, err := svc.Do(reqs[i]); err != nil {
			b.Fatal(err)
		}
	}

	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r, err := svc.Do(reqs[next.Add(1)%cells])
			if err != nil {
				b.Fatal(err)
			}
			if r.IPC <= 0 {
				b.Fatal("served result lost its IPC")
			}
		}
	})
	b.StopTimer()
	if sims := svc.Stats().Sims; sims != cells {
		b.Fatalf("benchmark re-simulated: %d sims, want the %d warmups", sims, cells)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
