package simsvc

import (
	"testing"

	"zng/internal/experiments"
	"zng/internal/platform"
	"zng/internal/store"
)

// BenchmarkServiceThroughput measures end-to-end request throughput
// against a warmed store at TestOptions scale: every request pays the
// full serving path — content-address hashing, submit, job lookup,
// result relabel — and is satisfied without simulating. This is the
// baseline trajectory for future scaling work (sharding, batching,
// multi-node): the serving overhead a hit costs, as requests/sec.
func BenchmarkServiceThroughput(b *testing.B) {
	o := experiments.TestOptions()
	mix := o.Mixes[0]
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	svc := New(Config{Store: st})
	defer svc.Close()
	// Warm: one real simulation lands the cell in memory and on disk.
	if _, err := svc.Run(platform.GDDR5, mix, o.Scale, o.Cfg); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r, err := svc.Run(platform.GDDR5, mix, o.Scale, o.Cfg)
			if err != nil {
				b.Fatal(err)
			}
			if r.IPC <= 0 {
				b.Fatal("served result lost its IPC")
			}
		}
	})
	b.StopTimer()
	if st := svc.Stats(); st.Sims != 1 {
		b.Fatalf("benchmark simulated %d times, want the single warmup", st.Sims)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
