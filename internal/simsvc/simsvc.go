// Package simsvc turns the simulator into a service: a job scheduler
// that fronts the persistent result store (internal/store) with a
// bounded worker pool, a FIFO-with-priority queue and cross-request
// coalescing, so that N concurrent requests for the same simulation
// cell cost exactly one simulation and a cell computed by any past
// process is served from disk without simulating at all.
//
// The service implements the experiments.Runner interface, so the
// figure drivers, the CLIs (-cache) and the zngd daemon all share
// this one code path; what used to be a process-wide memo global in
// internal/experiments is now an injectable runner. Request flow:
//
//	memory (completed cell)      -> MemoryHits
//	identical cell in flight     -> Coalesced (attach, no new job)
//	persistent store             -> DiskHits  (worker reads, no sim)
//	otherwise                    -> Sims      (worker simulates, then
//	                                           writes through to disk)
//
// Every admitted cell is one Job with an observable lifecycle
// (queued, running, done, error) — the unit the zngd HTTP API
// (api.go) exposes.
//
// Known scaling limit: jobs (and their in-memory results) are
// retained for the service's lifetime — that is what makes the
// memory layer a memo and job status durable — so a very long-lived
// daemon over an unbounded request vocabulary grows without bound.
// Bounded retention/eviction (safe here: the store can re-serve
// evicted cells from disk) is deliberately left to the next scaling
// PR; see ROADMAP.md.
package simsvc

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"zng/internal/config"
	"zng/internal/experiments"
	"zng/internal/platform"
	"zng/internal/store"
	"zng/internal/workload"
)

// ErrClosed is returned by Submit after Close, and by Await for jobs
// that were still queued when the service shut down.
var ErrClosed = errors.New("simsvc: service closed")

// SimFunc computes one cell. The default is platform.RunMix; tests
// inject stubs to pin scheduling behavior without paying for
// simulations.
type SimFunc func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error)

// Config parameterizes a Service.
type Config struct {
	// Store is the persistent read-through/write-through layer; nil
	// runs memory-only (still coalescing, still counting).
	Store *store.Store
	// Workers bounds concurrent simulations (0 = NumCPU).
	Workers int
	// Simulate overrides the simulation function (nil = platform.RunMix).
	Simulate SimFunc
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateError   State = "error"
)

// Request identifies one simulation cell plus its scheduling
// priority. Higher priorities run first; equal priorities run in
// submission order.
type Request struct {
	Kind     platform.Kind
	Mix      workload.Mix
	Scale    float64
	Cfg      config.Config
	Priority int
}

// JobInfo is the externally visible snapshot of one job, shaped for
// the zngd JSON API.
type JobInfo struct {
	ID       string  `json:"id"`
	State    State   `json:"state"`
	Platform string  `json:"platform"`
	Workload string  `json:"workload"`
	MixID    string  `json:"mix"`
	Scale    float64 `json:"scale"`
	Priority int     `json:"priority"`
	// Waiters counts the extra requests that coalesced onto this job.
	Waiters int `json:"waiters"`
	// Source records how the job was satisfied: "sim" or "disk"
	// (empty until it finishes).
	Source string `json:"source,omitempty"`
	Error  string `json:"error,omitempty"`
}

// job is one admitted cell. res and err are written exactly once,
// before done is closed, so readers that have observed the close may
// read them without the service lock.
type job struct {
	id      string
	seq     uint64
	idx     int // position in the pending heap; -1 once popped
	req     Request
	key     string
	state   State
	source  string
	waiters int
	done    chan struct{}
	res     platform.Result
	err     error
}

func (j *job) info() JobInfo {
	info := JobInfo{
		ID:       j.id,
		State:    j.state,
		Platform: j.req.Kind.String(),
		Workload: j.req.Mix.Name,
		MixID:    j.req.Mix.ID(),
		Scale:    j.req.Scale,
		Priority: j.req.Priority,
		Waiters:  j.waiters,
		Source:   j.source,
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

// Service is the coalescing scheduler. Safe for concurrent use.
type Service struct {
	st  *store.Store
	sim SimFunc

	mu     sync.Mutex
	cond   *sync.Cond // queue became non-empty, or the service closed
	queue  jobQueue
	cells  map[string]*job // cell key -> owning job (completed cells stay: the memory layer)
	jobs   map[string]*job // job id -> job
	order  []*job          // submission order, for listing
	nextID uint64
	stats  experiments.RunnerStats
	closed bool
	wg     sync.WaitGroup
}

// New starts a service with cfg.Workers worker goroutines. Close it
// to drain.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Simulate == nil {
		cfg.Simulate = platform.RunMix
	}
	s := &Service{
		st:    cfg.Store,
		sim:   cfg.Simulate,
		cells: map[string]*job{},
		jobs:  map[string]*job{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit admits a request and returns the id of the job that will
// satisfy it — an existing one when the cell is already completed in
// memory (a memory hit) or in flight (a coalesced attach), a fresh
// queued one otherwise. Submit never blocks on simulation work.
func (s *Service) Submit(req Request) (string, error) {
	key := store.CellKey(req.Kind, req.Mix.ID(), req.Scale, req.Cfg)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrClosed
	}
	if j, ok := s.cells[key]; ok {
		select {
		case <-j.done:
			s.stats.MemoryHits++
		default:
			s.stats.Coalesced++
			j.waiters++
			// A higher-priority attach promotes a still-queued job,
			// otherwise the new request would silently inherit the old
			// queue position — priority inversion.
			if j.state == StateQueued && req.Priority > j.req.Priority {
				j.req.Priority = req.Priority
				heap.Fix(&s.queue, j.idx)
			}
		}
		return j.id, nil
	}
	s.nextID++
	j := &job{
		id:    fmt.Sprintf("job-%d", s.nextID),
		seq:   s.nextID,
		req:   req,
		key:   key,
		state: StateQueued,
		done:  make(chan struct{}),
	}
	s.cells[key] = j
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	heap.Push(&s.queue, j)
	s.cond.Signal()
	return j.id, nil
}

// Await blocks until the job finishes and returns its result. The
// result's Workload label is whatever the job's first submitter asked
// for; Do relabels per caller.
func (s *Service) Await(id string) (platform.Result, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return platform.Result{}, fmt.Errorf("simsvc: unknown job %q", id)
	}
	<-j.done
	return j.res, j.err
}

// Do is the synchronous request path: submit, wait, and relabel the
// result with the name the caller asked under (aliasing scenarios
// share cells but keep their own labels, matching the experiments
// memo's contract).
func (s *Service) Do(req Request) (platform.Result, error) {
	id, err := s.Submit(req)
	if err != nil {
		return platform.Result{}, err
	}
	res, err := s.Await(id)
	if err == nil && req.Mix.Name != "" {
		res.Workload = req.Mix.Name
	}
	return res, err
}

// Run implements experiments.Runner at default priority — the single
// code path the figure drivers, CLIs and daemon share.
func (s *Service) Run(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	return s.Do(Request{Kind: kind, Mix: mix, Scale: scale, Cfg: cfg})
}

// Job snapshots one job by id.
func (s *Service) Job(id string) (JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return j.info(), true
}

// Jobs snapshots every job in submission order.
func (s *Service) Jobs() []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobInfo, len(s.order))
	for i, j := range s.order {
		out[i] = j.info()
	}
	return out
}

// Stats implements experiments.StatsReporter.
func (s *Service) Stats() experiments.RunnerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Store exposes the persistent layer (nil when memory-only).
func (s *Service) Store() *store.Store { return s.st }

// Close shuts the service down gracefully: new submissions are
// rejected, running simulations drain to completion (their results
// still land in the store), and jobs still queued fail with ErrClosed
// so their waiters unblock. Close returns once every worker has
// exited; it is idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, j := range s.queue {
			j.err = ErrClosed
			j.state = StateError
			close(j.done)
		}
		s.queue = nil
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// worker pops jobs in priority-then-FIFO order, satisfying each from
// the persistent store when possible and simulating otherwise.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*job)
		j.state = StateRunning
		s.mu.Unlock()

		if s.st != nil {
			if r, ok := s.st.Get(j.key); ok {
				s.finish(j, r, nil, "disk")
				continue
			}
		}
		r, err := s.sim(j.req.Kind, j.req.Mix, j.req.Scale, j.req.Cfg)
		if err == nil && s.st != nil {
			// A failed write-through only costs a future re-simulation;
			// the in-memory result this job now carries stays valid.
			_ = s.st.Put(j.key, r)
		}
		s.finish(j, r, err, "sim")
	}
}

// finish publishes a job's outcome and wakes its waiters.
func (s *Service) finish(j *job, r platform.Result, err error, source string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.res, j.err = r, err
	j.source = source
	if err != nil {
		j.state = StateError
	} else {
		j.state = StateDone
	}
	switch source {
	case "disk":
		s.stats.DiskHits++
	case "sim":
		s.stats.Sims++
	}
	close(j.done)
}

// jobQueue is the pending-job heap: highest priority first, FIFO
// (submission sequence) within a priority.
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(a, b int) bool {
	if q[a].req.Priority != q[b].req.Priority {
		return q[a].req.Priority > q[b].req.Priority
	}
	return q[a].seq < q[b].seq
}
func (q jobQueue) Swap(a, b int) {
	q[a], q[b] = q[b], q[a]
	q[a].idx, q[b].idx = a, b
}
func (q *jobQueue) Push(x any) {
	j := x.(*job)
	j.idx = len(*q)
	*q = append(*q, j)
}
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	j.idx = -1
	old[n-1] = nil
	*q = old[:n-1]
	return j
}
