// Package simsvc turns the simulator into a service: a job scheduler
// that fronts the persistent result store (internal/store) with a
// bounded worker pool, a FIFO-with-priority queue and cross-request
// coalescing, so that N concurrent requests for the same simulation
// cell cost exactly one simulation and a cell computed by any past
// process is served from disk without simulating at all.
//
// The service implements the experiments.Runner interface, so the
// figure drivers, the CLIs (-cache) and the zngd daemon all share
// this one code path; what used to be a process-wide memo global in
// internal/experiments is now an injectable runner. Request flow:
//
//	memory (completed cell)      -> MemoryHits
//	memory (LRU result tier)     -> MemoryHits (internal/restier; the
//	                                cell's job was evicted but its
//	                                document is still resident)
//	identical cell in flight     -> Coalesced (attach, no new job)
//	persistent store             -> DiskHits  (worker reads, then
//	                                           promotes into the tier)
//	otherwise                    -> Sims      (worker simulates, then
//	                                           writes through to disk
//	                                           and the tier)
//
// Admission is bounded: with Config.MaxQueue set, a request that
// would grow the pending queue past the bound fails fast with
// ErrOverloaded instead of queueing without limit — the HTTP layer
// maps it to 429 with a Retry-After estimate derived from recent
// per-simulation latency (RetryAfter). Requests that do not grow the
// queue — memory hits, tier hits, coalesced attaches — are always
// admitted.
//
// Every admitted cell is one Job with an observable lifecycle
// (queued, running, done, error) — the unit the zngd HTTP API
// (api.go) exposes.
//
// Retention is bounded: with Config.MaxJobs set, completed jobs past
// the bound are evicted oldest-first — done jobs only once their
// result is persisted in the store (an evicted cell re-serves from
// disk as a DiskHit), failed jobs unconditionally (a deterministic
// failure recomputes identically). Queued and running jobs are never
// evicted, and a memory-only service (no store) never evicts done
// results, so the memo contract degrades only where disk can back it
// up. Eviction counts surface as jobs_evicted in /metrics.
package simsvc

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"zng/internal/config"
	"zng/internal/experiments"
	"zng/internal/latency"
	"zng/internal/obs"
	"zng/internal/platform"
	"zng/internal/restier"
	"zng/internal/store"
	"zng/internal/workload"
)

// ErrClosed is returned by Submit after Close, and by Await for jobs
// that were still queued when the service shut down.
var ErrClosed = errors.New("simsvc: service closed")

// ErrOverloaded is returned by Submit/Do when admitting the request
// would grow the pending queue past Config.MaxQueue. The work was not
// admitted; the caller should retry after the backlog drains (the
// HTTP layer translates this to 429 with a Retry-After header).
var ErrOverloaded = errors.New("simsvc: service overloaded: pending queue is full")

// SimFunc computes one cell. The default is platform.RunMix; tests
// inject stubs to pin scheduling behavior without paying for
// simulations.
type SimFunc func(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error)

// Config parameterizes a Service.
type Config struct {
	// Store is the persistent read-through/write-through layer; nil
	// runs memory-only (still coalescing, still counting).
	Store *store.Store
	// Workers bounds concurrent simulations (0 = NumCPU).
	Workers int
	// Simulate overrides the simulation function (nil = platform.RunMix).
	Simulate SimFunc
	// MaxJobs bounds retained completed jobs (0 = unbounded). Past the
	// bound, the oldest evictable jobs — done-and-persisted, or failed
	// — are dropped from memory; their cells re-serve from the store.
	MaxJobs int
	// CacheEntries sizes the in-memory LRU result tier
	// (internal/restier) fronting the store: cells whose jobs retention
	// evicted — and disk hits on re-serve — stay resident as decoded
	// documents, so the hot working set never pays the store's
	// read+decode cost. 0 disables the tier (the pre-tier behavior).
	CacheEntries int
	// MaxQueue bounds the pending-job queue (0 = unbounded): a request
	// that would queue a new simulation past the bound fails with
	// ErrOverloaded instead of growing the backlog without limit.
	// Memory hits, tier hits and coalesced attaches are always
	// admitted.
	MaxQueue int
	// Tracer, when set, records per-request spans (queue wait,
	// coalesce attach, tier lookups, simulation, store write-through)
	// for requests that carry a valid trace context. nil — or an
	// untraced request — costs the hot path nothing beyond a struct
	// comparison.
	Tracer *obs.Tracer
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateError   State = "error"
)

// Request identifies one simulation cell plus its scheduling
// priority. Higher priorities run first; equal priorities run in
// submission order.
type Request struct {
	Kind     platform.Kind
	Mix      workload.Mix
	Scale    float64
	Cfg      config.Config
	Priority int
	// Trace, when valid, parents the spans this request's lifecycle
	// records (the zero value means untraced — the sampled-out case —
	// and no clock is read on the request's behalf).
	Trace obs.SpanContext
}

// JobInfo is the externally visible snapshot of one job, shaped for
// the zngd JSON API.
type JobInfo struct {
	ID       string  `json:"id"`
	State    State   `json:"state"`
	Platform string  `json:"platform"`
	Workload string  `json:"workload"`
	MixID    string  `json:"mix"`
	Scale    float64 `json:"scale"`
	Priority int     `json:"priority"`
	// Waiters counts the extra requests that coalesced onto this job.
	Waiters int `json:"waiters"`
	// Source records how the job was satisfied: "sim", "disk" or
	// "memory" — the result tier — (empty until it finishes).
	Source string `json:"source,omitempty"`
	Error  string `json:"error,omitempty"`
}

// keyMemoBound caps the derived-key memo; past it the whole memo is
// flushed (keys simply rederive), which keeps it bounded without LRU
// bookkeeping.
const keyMemoBound = 4096

// keyID is the comparable tuple a cell key derives from. config.Config
// is a flat value type (no slices, maps or pointers) and mixes
// participate through their ID string, so the tuple is a valid map
// key and names exactly what cellkey.Key hashes.
type keyID struct {
	kind  platform.Kind
	mixID string
	scale float64
	cfg   config.Config
}

// job is one admitted cell. res and err are written exactly once,
// before done is closed, so readers that have observed the close may
// read them without the service lock.
type job struct {
	id      string
	seq     uint64
	idx     int // position in the pending heap; -1 once popped
	req     Request
	key     string
	state   State
	source  string
	waiters int
	done    chan struct{}
	res     platform.Result
	err     error
	// persisted records that the result is safely in the store (read
	// from it, or written through successfully), making the job
	// evictable: a future request re-serves the cell from disk.
	persisted bool
	// trace is the first traced submitter's span context — the parent
	// the job's worker-side spans (queue, tier, sim, store.put) record
	// under. Written at admission before the job is published, read
	// only by the worker that popped it.
	trace obs.SpanContext
	// enq is the admission instant feeding the queue-wait span; set
	// only when the job is traced.
	enq time.Time
}

func (j *job) info() JobInfo {
	info := JobInfo{
		ID:       j.id,
		State:    j.state,
		Platform: j.req.Kind.String(),
		Workload: j.req.Mix.Name,
		MixID:    j.req.Mix.ID(),
		Scale:    j.req.Scale,
		Priority: j.req.Priority,
		Waiters:  j.waiters,
		Source:   j.source,
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

// Service is the coalescing scheduler. Safe for concurrent use.
type Service struct {
	st       *store.Store
	tier     *restier.Tiered
	sim      SimFunc
	maxJobs  int
	maxQueue int
	workers  int
	// tr records request-lifecycle spans; nil disables tracing (every
	// obs call site is nil-safe and short-circuits).
	tr *obs.Tracer
	// simHist records wall-clock per-simulation latency (serving-layer
	// observability only — simulation results never depend on it). It
	// is internally atomic, so workers record without the service lock.
	simHist latency.Histogram

	mu     sync.Mutex
	cond   *sync.Cond              // queue became non-empty, or the service closed
	queue  jobQueue                // guarded by mu
	keys   map[keyID]string        // guarded by mu; memoized cell-key derivations (the hot path's SHA-256)
	cells  map[string]*job         // guarded by mu; cell key -> owning job (completed cells stay: the memory layer)
	jobs   map[string]*job         // guarded by mu; job id -> job
	order  []*job                  // guarded by mu; submission order, for listing
	nextID uint64                  // guarded by mu
	stats  experiments.RunnerStats // guarded by mu
	// rejected counts submissions refused with ErrOverloaded. guarded by mu.
	rejected uint64
	// simEWMA tracks recent per-simulation latency in nanoseconds
	// (exponentially weighted, α=0.2) — the Retry-After estimator.
	// guarded by mu.
	simEWMA float64
	// evictable counts retained jobs eligible for eviction, so a
	// memory-only service (where done jobs are never evictable) skips
	// the retention scan entirely instead of walking an ever-growing
	// order slice on every completion. guarded by mu.
	evictable int
	evicted   uint64 // guarded by mu
	// running counts jobs a worker has popped and not yet finished —
	// with the queue depth, the load figure a fleet worker heartbeats
	// to its coordinator. guarded by mu.
	running int
	closed  bool // guarded by mu
	wg      sync.WaitGroup
}

// New starts a service with cfg.Workers worker goroutines. Close it
// to drain.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Simulate == nil {
		cfg.Simulate = platform.RunMix
	}
	s := &Service{
		st:       cfg.Store,
		tier:     restier.NewTiered(cfg.CacheEntries, cfg.Store),
		sim:      cfg.Simulate,
		maxJobs:  cfg.MaxJobs,
		maxQueue: cfg.MaxQueue,
		workers:  cfg.Workers,
		tr:       cfg.Tracer,
		keys:     map[keyID]string{},
		cells:    map[string]*job{},
		jobs:     map[string]*job{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit admits a request and returns the id of the job that will
// satisfy it — an existing one when the cell is already completed in
// memory (a memory hit) or in flight (a coalesced attach), a fresh
// queued one otherwise. Submit never blocks on simulation work.
//
// With MaxJobs retention the returned id may be evicted at any time
// after the job completes; Await on an evicted id fails. In-process
// callers that must not race retention use Do/DoJob, which hold the
// job itself rather than re-resolving the id.
func (s *Service) Submit(req Request) (string, error) {
	j, _, err := s.submit(req)
	if err != nil {
		return "", err
	}
	return j.id, nil
}

// submit is the admission core: it returns the owning job itself, so
// internal callers keep a live reference that eviction cannot
// invalidate. served names the tier that satisfied THIS request when
// it was answered at admission time ("memory" for memo and tier hits)
// and is empty for coalesced attaches and fresh jobs — the job's own
// source says how the cell was originally computed, which is not the
// same thing (request-level serve attribution).
func (s *Service) submit(req Request) (*job, string, error) {
	id := keyID{kind: req.Kind, mixID: req.Mix.ID(), scale: req.Scale, cfg: req.Cfg}
	s.mu.Lock()
	defer s.mu.Unlock()
	key, ok := s.keys[id]
	if !ok {
		// The SHA-256 over the canonical config encoding costs more
		// than the rest of a hot-path hit put together, so derive it
		// outside the lock and memoize. A concurrent submitter may
		// rederive the same key; both write the identical value.
		s.mu.Unlock()
		derived := store.CellKey(req.Kind, req.Mix.ID(), req.Scale, req.Cfg)
		s.mu.Lock()
		if len(s.keys) >= keyMemoBound {
			s.keys = make(map[keyID]string, keyMemoBound)
		}
		s.keys[id] = derived
		key = derived
	}
	if s.closed {
		return nil, "", ErrClosed
	}
	if j, ok := s.cells[key]; ok {
		select {
		case <-j.done:
			// The completed cell answered from memory, whatever tier
			// originally computed it.
			s.stats.MemoryHits++
			s.note(req, memTierName(j.err), j.err)
			return j, "memory", nil
		default:
			s.stats.Coalesced++
			j.waiters++
			s.note(req, "coalesce", nil)
			// A higher-priority attach promotes a still-queued job,
			// otherwise the new request would silently inherit the old
			// queue position — priority inversion.
			if j.state == StateQueued && req.Priority > j.req.Priority {
				j.req.Priority = req.Priority
				heap.Fix(&s.queue, j.idx)
			}
		}
		return j, "", nil
	}
	// The result tier can satisfy cells whose jobs retention evicted:
	// the job memo is gone but the decoded document (or its cached
	// deterministic failure) is still resident. Serve it as an
	// already-done job — no queue slot, no worker round-trip. GetMem
	// never touches the disk, so the lookup is safe under the service
	// lock.
	if r, negErr, ok := s.tier.GetMem(key); ok {
		s.stats.MemoryHits++
		s.note(req, memTierName(negErr), negErr)
		s.nextID++
		j := &job{
			id:     fmt.Sprintf("job-%d", s.nextID),
			seq:    s.nextID,
			idx:    -1,
			req:    req,
			key:    key,
			state:  StateDone,
			source: "memory",
			// With a store present the tier's residents came off disk or
			// were written through; even after a rare failed write-through
			// an eviction only costs a deterministic re-simulation.
			persisted: s.tier.Store() != nil,
			done:      make(chan struct{}),
			res:       r,
		}
		if negErr != nil {
			// A cached deterministic failure replays without burning a
			// worker on a simulation that fails identically every time.
			j.state = StateError
			j.err = negErr
			j.res = platform.Result{}
		}
		close(j.done)
		s.cells[key] = j
		s.jobs[j.id] = j
		s.order = append(s.order, j)
		if s.jobEvictable(j) {
			s.evictable++
		}
		s.evictLocked()
		return j, "memory", nil
	}
	if s.maxQueue > 0 && len(s.queue) >= s.maxQueue {
		s.rejected++
		return nil, "", ErrOverloaded
	}
	s.nextID++
	j := &job{
		id:    fmt.Sprintf("job-%d", s.nextID),
		seq:   s.nextID,
		req:   req,
		key:   key,
		state: StateQueued,
		done:  make(chan struct{}),
	}
	if s.tr != nil && req.Trace.Valid() {
		j.trace = req.Trace
		j.enq = time.Now()
	}
	s.cells[key] = j
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	heap.Push(&s.queue, j)
	s.cond.Signal()
	return j, "", nil
}

// Await blocks until the job finishes and returns its result. The
// result's Workload label is whatever the job's first submitter asked
// for; Do relabels per caller.
func (s *Service) Await(id string) (platform.Result, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return platform.Result{}, fmt.Errorf("simsvc: unknown job %q", id)
	}
	<-j.done
	return j.res, j.err
}

// Do is the synchronous request path: submit, wait, and relabel the
// result with the name the caller asked under (aliasing scenarios
// share cells but keep their own labels, matching the experiments
// memo's contract). Do holds the job directly, so MaxJobs retention
// can never evict a result out from under a waiting caller.
func (s *Service) Do(req Request) (platform.Result, error) {
	res, _, err := s.DoJob(req)
	return res, err
}

// DoJob is Do plus the satisfied job's final snapshot, for callers
// (the HTTP sync path) that report job metadata alongside the result.
func (s *Service) DoJob(req Request) (platform.Result, JobInfo, error) {
	j, served, err := s.submit(req)
	if err != nil {
		return platform.Result{}, JobInfo{}, err
	}
	<-j.done
	s.mu.Lock()
	info := j.info()
	s.mu.Unlock()
	// Request-level attribution: a request answered at admission from
	// the memory layer reports the tier that served it, not the source
	// that originally computed the cell for some earlier request.
	if served != "" {
		info.Source = served
	}
	res := j.res
	if j.err == nil && req.Mix.Name != "" {
		res.Workload = req.Mix.Name
	}
	return res, info, j.err
}

// SubmitJob is Submit plus the admitted job's snapshot taken at
// admission time, so async callers get consistent metadata even if
// retention evicts the job before they poll.
func (s *Service) SubmitJob(req Request) (JobInfo, error) {
	j, served, err := s.submit(req)
	if err != nil {
		return JobInfo{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	info := j.info()
	if served != "" {
		info.Source = served
	}
	return info, nil
}

// Run implements experiments.Runner at default priority — the single
// code path the figure drivers, CLIs and daemon share.
func (s *Service) Run(kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	return s.Do(Request{Kind: kind, Mix: mix, Scale: scale, Cfg: cfg})
}

// RunTraced is Run with the caller's span context attached: the
// request's lifecycle (queue wait, coalesce, tier lookups,
// simulation, store write-through) records as spans parented under
// sc. It implements campaign.TracedRunner.
func (s *Service) RunTraced(sc obs.SpanContext, kind platform.Kind, mix workload.Mix, scale float64, cfg config.Config) (platform.Result, error) {
	return s.Do(Request{Kind: kind, Mix: mix, Scale: scale, Cfg: cfg, Trace: sc})
}

// Tracer exposes the service's tracer (nil when tracing is off) so
// the HTTP layer shares one flight recorder with the scheduler.
func (s *Service) Tracer() *obs.Tracer { return s.tr }

// note records a zero-duration marker span — admission-time outcomes
// (memo hit, coalesce attach, memory-tier hit) that have no
// meaningful extent — for traced requests only. Untraced requests pay
// two comparisons. Called with mu held; the ring has its own brief
// lock and never calls back into the service.
func (s *Service) note(req Request, name string, err error) {
	if s.tr == nil || !req.Trace.Valid() {
		return
	}
	s.tr.Observe(req.Trace, name, "", time.Now(), 0, err)
}

// memTierName names a memory-layer answer's span: a cached
// deterministic failure reads as the negative tier.
func memTierName(err error) string {
	if err != nil {
		return "tier.negative"
	}
	return "tier.memory"
}

// Job snapshots one job by id.
func (s *Service) Job(id string) (JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return j.info(), true
}

// JobResult snapshots one job by id and — when it is done — its
// result, in a single lookup, so a retention eviction between
// "observe done" and "read result" cannot lose the result the way a
// Job-then-Await pair would (the HTTP poll endpoint's contract).
func (s *Service) JobResult(id string) (JobInfo, platform.Result, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobInfo{}, platform.Result{}, false
	}
	info := j.info()
	s.mu.Unlock()
	if info.State != StateDone {
		return info, platform.Result{}, true
	}
	// res was published before state flipped to done (finish holds the
	// lock for both), so having observed done we may read it lock-free.
	return info, j.res, true
}

// Jobs snapshots every job in submission order.
func (s *Service) Jobs() []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobInfo, len(s.order))
	for i, j := range s.order {
		out[i] = j.info()
	}
	return out
}

// Stats implements experiments.StatsReporter.
func (s *Service) Stats() experiments.RunnerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Store exposes the persistent layer (nil when memory-only).
func (s *Service) Store() *store.Store { return s.st }

// Close shuts the service down gracefully: new submissions are
// rejected, running simulations drain to completion (their results
// still land in the store), and jobs still queued fail with ErrClosed
// so their waiters unblock. Close returns once every worker has
// exited; it is idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, j := range s.queue {
			j.err = ErrClosed
			j.state = StateError
			s.evictable++
			close(j.done)
		}
		s.queue = nil
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// worker pops jobs in priority-then-FIFO order, satisfying each from
// the persistent store when possible and simulating otherwise.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*job)
		j.state = StateRunning
		s.running++
		s.mu.Unlock()

		// Traced jobs record their lifecycle; untraced ones never read
		// the clock on tracing's behalf.
		traced := s.tr != nil && j.trace.Valid()
		var tierStart time.Time
		if traced {
			now := time.Now()
			s.tr.Observe(j.trace, "queue", "", j.enq, now.Sub(j.enq), nil)
			tierStart = now
		}
		if r, negErr, tier := s.tier.Get(j.key); tier != restier.TierNone {
			// A disk hit was promoted into the memory tier on the way
			// through; either way the result is already persisted. A
			// negative hit (a concurrent request cached the failure after
			// this job was admitted) replays the deterministic error —
			// failed jobs are evictable regardless of persistence.
			if traced {
				name := "tier." + tier.String()
				if negErr != nil {
					name = "tier.negative"
				}
				s.tr.Observe(j.trace, name, "", tierStart, time.Since(tierStart), negErr)
			}
			s.finish(j, r, negErr, tier.String(), negErr == nil, 0)
			continue
		}
		var simSpan *obs.Span
		if traced {
			s.tr.Observe(j.trace, "tier.miss", "", tierStart, time.Since(tierStart), nil)
			simSpan = s.tr.StartSpan(j.trace, "sim", j.req.Kind.String()+"/"+j.req.Mix.ID())
		}
		start := time.Now()
		r, err := s.runCell(j)
		simDur := time.Since(start)
		simSpan.EndErr(err)
		persisted := false
		if err == nil {
			// tier.Put writes the store first, then the memory tier. A
			// failed write-through only costs a future re-simulation; the
			// in-memory result this job now carries stays valid (but the
			// job is not evictable — disk could not back it up).
			var putStart time.Time
			if traced {
				putStart = time.Now()
			}
			persisted = s.tier.Put(j.key, r)
			if traced {
				s.tr.Observe(j.trace, "store.put", "", putStart, time.Since(putStart), nil)
			}
		} else {
			// Every error that reaches a worker is deterministic — the
			// simulator is a pure function of the cell, and runCell folds
			// panics into errors — so cache it: repeat requests for the
			// cell replay the failure from the tier without a worker.
			s.tier.PutNegative(j.key, err.Error())
		}
		s.finish(j, r, err, "sim", persisted, simDur)
	}
}

// runCell invokes the simulator for one job, converting a panic —
// e.g. a degenerate client-supplied configuration dividing by zero
// deep inside a model (the zngd /v1/run "config" field is arbitrary
// caller input) — into a deterministic job error instead of killing
// the worker goroutine and with it the whole daemon.
func (s *Service) runCell(j *job) (r platform.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("simsvc: simulation panicked: %v", p)
		}
	}()
	return s.sim(j.req.Kind, j.req.Mix, j.req.Scale, j.req.Cfg)
}

// finish publishes a job's outcome, wakes its waiters, and evicts
// past the retention bound. simDur is the wall-clock simulation time
// (0 when the job was served from a tier) feeding the latency
// histogram and the Retry-After estimator.
func (s *Service) finish(j *job, r platform.Result, err error, source string, persisted bool, simDur time.Duration) {
	if simDur > 0 {
		s.simHist.Observe(simDur)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	j.res, j.err = r, err
	j.source = source
	j.persisted = persisted
	if err != nil {
		j.state = StateError
	} else {
		j.state = StateDone
	}
	if s.jobEvictable(j) {
		s.evictable++
	}
	switch source {
	case "memory":
		s.stats.MemoryHits++
	case "disk":
		s.stats.DiskHits++
	case "sim":
		s.stats.Sims++
		if simDur > 0 {
			if s.simEWMA == 0 {
				s.simEWMA = float64(simDur)
			} else {
				s.simEWMA = 0.8*s.simEWMA + 0.2*float64(simDur)
			}
		}
	}
	close(j.done)
	s.evictLocked()
}

// jobEvictable reports whether a job's in-memory copy is redundant: a
// done job whose result the store holds (the cell re-serves from
// disk), or a failed job (the deterministic failure recomputes).
func (s *Service) jobEvictable(j *job) bool {
	return (j.state == StateDone && j.persisted) || j.state == StateError
}

// evictLocked drops the oldest evictable jobs until at most maxJobs
// remain. Evictable means the job's in-memory copy is redundant: a
// done job whose result the store holds (the cell re-serves from
// disk), or a failed job (the deterministic failure recomputes).
// Queued, running, and done-but-unpersisted jobs always stay.
func (s *Service) evictLocked() {
	if s.maxJobs <= 0 || len(s.order) <= s.maxJobs || s.evictable == 0 {
		return
	}
	excess := len(s.order) - s.maxJobs
	keep := s.order[:0]
	for _, j := range s.order {
		if excess > 0 && s.jobEvictable(j) {
			delete(s.jobs, j.id)
			if s.cells[j.key] == j {
				delete(s.cells, j.key)
			}
			s.evictable--
			s.evicted++
			excess--
			continue
		}
		keep = append(keep, j)
	}
	// Zero the freed tail so evicted jobs do not linger reachable
	// through the backing array.
	for i := len(keep); i < len(s.order); i++ {
		s.order[i] = nil
	}
	s.order = keep
}

// EvictedJobs reports how many completed jobs retention has dropped
// from memory — the jobs_evicted gauge in /metrics.
func (s *Service) EvictedJobs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Load reports the service's current backlog — queued plus running
// jobs — the figure a fleet worker heartbeats to its coordinator so
// dispatch can prefer idle peers.
func (s *Service) Load() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue) + s.running
}

// Rejected reports how many submissions admission control refused
// with ErrOverloaded — the jobs_rejected gauge in /metrics.
func (s *Service) Rejected() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejected
}

// TierStats snapshots the memory result tier's counters (zero-valued
// when the tier is disabled) — the tier_* gauges in /metrics.
func (s *Service) TierStats() restier.CacheStats { return s.tier.CacheStats() }

// SimLatency summarizes recent per-simulation wall-clock latency —
// the latency.sim block in /metrics.
func (s *Service) SimLatency() latency.Snapshot { return s.simHist.Snapshot() }

// SimHistogram exposes the per-simulation latency histogram itself,
// so the Prometheus emitter renders real _bucket series instead of
// re-deriving them from a quantile snapshot.
func (s *Service) SimHistogram() *latency.Histogram { return &s.simHist }

// RetryAfter estimates how long an ErrOverloaded caller should back
// off before retrying: the recent per-simulation latency (EWMA) times
// the queue drain rounds ahead of a new arrival, clamped to [1s, 5m].
// Before any simulation has finished there is no estimate and the
// floor applies.
func (s *Service) RetryAfter() time.Duration {
	s.mu.Lock()
	est := time.Duration(s.simEWMA)
	depth := len(s.queue)
	s.mu.Unlock()
	const floor, ceiling = time.Second, 5 * time.Minute
	if est <= 0 {
		return floor
	}
	// ceil((depth+1)/workers) queue drain rounds before a retry can run.
	wait := est * time.Duration((depth+s.workers)/s.workers)
	if wait < floor {
		return floor
	}
	if wait > ceiling {
		return ceiling
	}
	return wait
}

// jobQueue is the pending-job heap: highest priority first, FIFO
// (submission sequence) within a priority.
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(a, b int) bool {
	if q[a].req.Priority != q[b].req.Priority {
		return q[a].req.Priority > q[b].req.Priority
	}
	return q[a].seq < q[b].seq
}
func (q jobQueue) Swap(a, b int) {
	q[a], q[b] = q[b], q[a]
	q[a].idx, q[b].idx = a, b
}
func (q *jobQueue) Push(x any) {
	j := x.(*job)
	j.idx = len(*q)
	*q = append(*q, j)
}
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	j.idx = -1
	old[n-1] = nil
	*q = old[:n-1]
	return j
}
