// Package dram models the conventional memory backends the ZnG paper
// compares against: GDDR5 (six GPU memory controllers), desktop DDR4,
// mobile LPDDR4, and Intel Optane DC PMM with the Table I timing
// (tRCD 190 ns, tCL 8.9 ns, tRP 763 ns) and its 256 B internal access
// granularity — the reason a 128 B GPU sector wastes half of Optane's
// device bandwidth.
package dram

import (
	"zng/internal/config"
	"zng/internal/mem"
	"zng/internal/sim"
	"zng/internal/stats"
)

// Device is a multi-controller memory backend. It implements
// mem.Memory.
type Device struct {
	cfg   config.DRAM
	eng   *sim.Engine
	ports []*sim.Port

	Reads, Writes stats.Counter
	Bytes         stats.Counter
}

// New builds a backend from a config.DRAM description.
func New(eng *sim.Engine, cfg config.DRAM) *Device {
	d := &Device{cfg: cfg, eng: eng}
	per := cfg.TotalGBps / float64(cfg.Controllers)
	for i := 0; i < cfg.Controllers; i++ {
		d.ports = append(d.ports, sim.NewPort(eng, config.GBpsToBytesPerTick(per), 0))
	}
	return d
}

// Kind reports the memory technology.
func (d *Device) Kind() config.DRAMKind { return d.cfg.Kind }

// Access services one request: channel selection by address, device
// access-granularity rounding, bandwidth serialization, then the
// device read or write latency.
func (d *Device) Access(r *mem.Request) {
	gran := d.cfg.AccessGran
	if gran <= 0 {
		gran = 128
	}
	// Interleave at access granularity across controllers.
	ctrl := int(r.Addr/uint64(gran)) % len(d.ports)

	// A request smaller than the device granularity still moves a full
	// device burst; larger requests round up to whole bursts.
	bursts := (r.Size + gran - 1) / gran
	if bursts < 1 {
		bursts = 1
	}
	moved := bursts * gran

	lat := d.cfg.ReadLat
	if r.Write {
		d.Writes.Inc()
		lat = d.cfg.WriteLat
	} else {
		d.Reads.Inc()
	}
	d.Bytes.Add(uint64(moved))
	d.ports[ctrl].Send(moved, func() {
		d.eng.Schedule(lat, r.Complete)
	})
}

// DeliveredGBps reports achieved bandwidth over the elapsed ticks.
func (d *Device) DeliveredGBps(elapsed sim.Tick) float64 {
	if elapsed <= 0 {
		return 0
	}
	return config.BytesPerTickToGBps(float64(d.Bytes.Value()) / float64(elapsed))
}
