package dram

import (
	"testing"

	"zng/internal/config"
	"zng/internal/mem"
	"zng/internal/sim"
)

func TestSingleAccessLatency(t *testing.T) {
	eng := sim.NewEngine()
	cfg := config.Default().GDDR5
	d := New(eng, cfg)
	var at sim.Tick
	d.Access(&mem.Request{Addr: 0, Size: 128, Done: func() { at = eng.Now() }})
	eng.Run()
	if at < cfg.ReadLat {
		t.Errorf("completed at %d, want >= device latency %d", at, cfg.ReadLat)
	}
	if d.Reads.Value() != 1 {
		t.Errorf("reads = %d", d.Reads.Value())
	}
}

func TestSaturationBandwidthNearConfigured(t *testing.T) {
	for _, kind := range []config.DRAM{
		config.Default().GDDR5, config.Default().DDR4,
		config.Default().LPDDR4, config.Default().Optane,
	} {
		eng := sim.NewEngine()
		d := New(eng, kind)
		const n = 16000
		done := 0
		for i := 0; i < n; i++ {
			d.Access(&mem.Request{Addr: uint64(i) * uint64(kind.AccessGran), Size: kind.AccessGran,
				Done: func() { done++ }})
		}
		eng.Run()
		if done != n {
			t.Fatalf("%v: done = %d", kind.Kind, done)
		}
		// Tick quantization of the port widths costs a few percent; the
		// saturation point must still sit near the configured aggregate.
		got := d.DeliveredGBps(eng.Now())
		if got < kind.TotalGBps*0.8 || got > kind.TotalGBps*1.05 {
			t.Errorf("%v: delivered %.1f GB/s, configured %.1f", kind.Kind, got, kind.TotalGBps)
		}
	}
}

func TestOptaneGranularityPenalty(t *testing.T) {
	// 128 B requests on 256 B-granularity Optane waste half the device
	// bandwidth: delivered *useful* data rate is about half of a 256 B
	// access pattern.
	run := func(reqSize int) float64 {
		eng := sim.NewEngine()
		d := New(eng, config.Default().Optane)
		const n = 2000
		for i := 0; i < n; i++ {
			d.Access(&mem.Request{Addr: uint64(i) * 256, Size: reqSize})
		}
		eng.Run()
		useful := float64(n*reqSize) / float64(eng.Now())
		return config.BytesPerTickToGBps(useful)
	}
	small, full := run(128), run(256)
	if ratio := small / full; ratio < 0.4 || ratio > 0.6 {
		t.Errorf("128B/256B useful-bandwidth ratio = %.2f, want ~0.5", ratio)
	}
}

func TestOptaneWriteSlowerThanRead(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, config.Default().Optane)
	var rAt, wAt sim.Tick
	d.Access(&mem.Request{Addr: 0, Size: 256, Done: func() { rAt = eng.Now() }})
	eng.Run()
	e2 := sim.NewEngine()
	d2 := New(e2, config.Default().Optane)
	d2.Access(&mem.Request{Addr: 0, Size: 256, Write: true, Done: func() { wAt = e2.Now() }})
	e2.Run()
	if wAt <= rAt {
		t.Errorf("Optane write (%d) must be slower than read (%d): tRP dominates", wAt, rAt)
	}
}

func TestControllerInterleaving(t *testing.T) {
	eng := sim.NewEngine()
	cfg := config.Default().GDDR5
	d := New(eng, cfg)
	// Two accesses to different controllers finish together; to the
	// same controller they serialize on bandwidth.
	var a, b sim.Tick
	d.Access(&mem.Request{Addr: 0, Size: 128, Done: func() { a = eng.Now() }})
	d.Access(&mem.Request{Addr: 128, Size: 128, Done: func() { b = eng.Now() }})
	eng.Run()
	if a != b {
		t.Errorf("different controllers should overlap: %d vs %d", a, b)
	}
}
