package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zng/internal/config"
	"zng/internal/platform"
	"zng/internal/workload"
)

// sample builds a representative result covering every field class the
// codec carries: scalars, the plane-write slice and the Extra map.
func sample() platform.Result {
	return platform.Result{
		Kind:           platform.ZnG,
		Workload:       "betw-back",
		IPC:            3.14159,
		Cycles:         123456789,
		Insts:          987654321,
		FlashReadGBps:  42.5,
		FlashWriteGBps: 7.25,
		PlaneWrites:    []uint64{0, 3, 0, 17, 2},
		L2HitRate:      0.625,
		TLBHitRate:     0.875,
		Extra:          map[string]float64{"reg_migrations": 12, "prefetch_kb": 512},
	}
}

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := open(t)
	key := CellKey(platform.ZnG, "betw+back", 2.0, config.Default())
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	want := sample()
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("stored entry not found")
	}
	if got.Kind != want.Kind || got.Workload != want.Workload || got.IPC != want.IPC ||
		got.Cycles != want.Cycles || got.Insts != want.Insts ||
		got.L2HitRate != want.L2HitRate || got.TLBHitRate != want.TLBHitRate {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if len(got.PlaneWrites) != len(want.PlaneWrites) || got.PlaneWrites[3] != 17 {
		t.Errorf("plane writes lost: %v", got.PlaneWrites)
	}
	if got.Extra["reg_migrations"] != 12 || got.Extra["prefetch_kb"] != 512 {
		t.Errorf("extra map lost: %v", got.Extra)
	}
}

// TestCorruptEntryRecovery pins the degraded mode: truncated or
// garbage entries read as misses, and a re-Put heals them.
func TestCorruptEntryRecovery(t *testing.T) {
	s := open(t)
	key := CellKey(platform.GDDR5, "bfs1", 1.0, config.Default())
	if err := s.Put(key, sample()); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(s.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	for name, bytes := range map[string][]byte{
		"truncated":     full[:len(full)/2],
		"garbage":       []byte("not json at all"),
		"empty":         {},
		"wrong shape":   []byte(`{"kind":"NoSuchPlatform","ipc":1}`),
		"non-object":    []byte(`[1,2,3]`),
		"numeric kind?": []byte(`{"kind":42}`),
	} {
		if err := os.WriteFile(s.Path(key), bytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("%s entry decoded as a hit; want miss", name)
		}
	}
	// Falling back to re-simulation means a fresh Put, which must heal
	// the entry in place.
	if err := s.Put(key, sample()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); !ok {
		t.Error("healed entry still missing")
	}
}

// TestPutLeavesNoTempFiles: the atomic write protocol must not litter
// the directory (leftover temp files would distort Entries and grow
// without bound).
func TestPutLeavesNoTempFiles(t *testing.T) {
	s := open(t)
	for i := 0; i < 4; i++ {
		if err := s.Put(CellKey(platform.ZnG, "bfs1", float64(i+1), config.Default()), sample()); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			t.Errorf("unexpected file %q after Put", e.Name())
		}
	}
	if n, err := s.Entries(); err != nil || n != 4 {
		t.Errorf("Entries() = %d, %v; want 4, nil", n, err)
	}
}

// TestCellKeyDiscriminates: every keyed input must perturb the key,
// and the same inputs must always produce the same key — the property
// that lets separate processes share a cache directory.
func TestCellKeyDiscriminates(t *testing.T) {
	cfg := config.Default()
	base := CellKey(platform.ZnG, "betw+back", 2.0, cfg)
	if again := CellKey(platform.ZnG, "betw+back", 2.0, cfg); again != base {
		t.Errorf("key not stable: %s vs %s", base, again)
	}
	cfg2 := cfg
	cfg2.Prefetch.HighWaste = 0.9
	variants := map[string]string{
		"kind":  CellKey(platform.HybridGPU, "betw+back", 2.0, cfg),
		"mix":   CellKey(platform.ZnG, "bfs1+gaus", 2.0, cfg),
		"scale": CellKey(platform.ZnG, "betw+back", 2.5, cfg),
		"cfg":   CellKey(platform.ZnG, "betw+back", 2.0, cfg2),
	}
	seen := map[string]string{base: "base"}
	for what, key := range variants {
		if prev, dup := seen[key]; dup {
			t.Errorf("varying %s collided with %s", what, prev)
		}
		seen[key] = what
	}
	if len(base) != 64 {
		t.Errorf("key %q is not a hex SHA-256", base)
	}
}

// TestAliasedMixesShareKeys: keys address content (Mix.ID), not
// display names, so consol-2 and bfs1-gaus land on one entry.
func TestAliasedMixesShareKeys(t *testing.T) {
	a, err := workload.MixByName("consol-2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.MixByName("bfs1-gaus")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	if CellKey(platform.ZnG, a.ID(), 1.0, cfg) != CellKey(platform.ZnG, b.ID(), 1.0, cfg) {
		t.Errorf("aliasing scenarios (%s vs %s) produced different keys", a.ID(), b.ID())
	}
}

func TestOpenCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(CellKey(platform.GDDR5, "pr", 1.0, config.Default()), sample()); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Entries(); n != 1 {
		t.Errorf("entries = %d, want 1", n)
	}
}
