// Package store is the persistent, content-addressed simulation
// result store behind the simsvc scheduler and the CLIs' -cache flag.
//
// A simulation is a pure function of (platform kind, workload mix,
// trace scale, configuration) — the property the in-memory memo in
// internal/experiments already exploits — so its result can be
// addressed by a stable hash of exactly those inputs and survive the
// process: a figure suite, a CI run and a zngd daemon restart can all
// serve each other's cells. Entries are one JSON document per cell
// (the internal/report result emitter), written atomically via a
// temp-file rename so a crashed writer can never publish a torn
// entry; readers treat any undecodable entry as a miss and fall back
// to re-simulation, so corruption degrades to wasted work, never to a
// wrong answer.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"zng/internal/cellkey"
	"zng/internal/config"
	"zng/internal/platform"
	"zng/internal/report"
)

// SchemaVersion stamps the key derivation; see cellkey.SchemaVersion
// (the derivation lives in that leaf package so key-addressed layers
// like internal/campaign can compute cell identities without this
// package's result-codec dependencies).
const SchemaVersion = cellkey.SchemaVersion

// CellKey returns the content address of one simulation cell: the
// hex SHA-256 of the canonical encoding of (schema version, kind,
// mix ID, scale, full configuration). Mixes participate through
// their ID rather than their display name, so aliasing scenarios
// (consol-2 and bfs1-gaus, say) share one entry. The derivation is
// cellkey.Key, shared with every other key-addressed layer.
func CellKey(kind platform.Kind, mixID string, scale float64, cfg config.Config) string {
	return cellkey.Key(kind, mixID, scale, cfg)
}

// Store is one result cache directory. Methods are safe for
// concurrent use by multiple goroutines and — thanks to the atomic
// rename on write — by multiple processes sharing the directory.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if
// needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path reports where the entry for key lives: <dir>/<key>.json.
func (s *Store) Path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// Get loads the entry for key. The boolean is false on any miss —
// absent, unreadable, truncated or otherwise undecodable entry — so
// the caller's only move is to re-simulate (and Put the fresh result,
// healing the entry).
func (s *Store) Get(key string) (platform.Result, bool) {
	b, err := os.ReadFile(s.Path(key))
	if err != nil {
		return platform.Result{}, false
	}
	r, err := report.DecodeResult(b)
	if err != nil {
		return platform.Result{}, false
	}
	return r, true
}

// Put writes the entry for key atomically: the document lands in a
// temp file in the same directory and is renamed over the final path,
// so concurrent readers (and other processes) only ever observe a
// complete entry. Re-putting a key overwrites it.
func (s *Store) Put(key string, r platform.Result) error {
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(report.EncodeResult(r))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("store: writing %s: %w", key, werr)
		}
		return fmt.Errorf("store: writing %s: %w", key, cerr)
	}
	if err := os.Rename(tmp.Name(), s.Path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: publishing %s: %w", key, err)
	}
	return nil
}

// Entries counts the complete entries currently on disk (in-flight
// temp files are excluded) — surfaced by zngd's /metrics.
func (s *Store) Entries() (int, error) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	n := 0
	for _, e := range names {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n, nil
}
