// Top-level benchmark harness: one testing.B benchmark per table and
// figure of the ZnG paper's evaluation, each reporting the headline
// metric of that experiment via b.ReportMetric. Run with
//
//	go test -bench=. -benchmem
//
// Benchmarks use reduced trace scales so the whole suite completes in
// minutes; cmd/zngfig regenerates the figures at full fidelity.
package zng_test

import (
	"runtime"
	"strconv"
	"testing"

	"zng/internal/config"
	"zng/internal/experiments"
	"zng/internal/platform"
	"zng/internal/stats"
	"zng/internal/workload"
)

func benchOptions() experiments.Options {
	o := experiments.TestOptions()
	o.Mixes = workload.PaperPairs()[:2]
	return o
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.TableII(0.1)
		if t.Rows() != 16 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig1b(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig1b(config.Default())
		// The figure's headline: GDDR5's aggregate bandwidth (the "gap
		// line") over the SSD engine, HybridGPU's binding bottleneck.
		gddr5 := tableValue(b, t, "GDDR5 (gap line)")
		engine := tableValue(b, t, "SSD engine")
		if engine <= 0 {
			b.Fatal("SSD engine bandwidth not positive")
		}
		gap = gddr5 / engine
	}
	b.ReportMetric(gap, "dram_ssd_gap_x")
}

// tableValue extracts the numeric column of the named row.
func tableValue(b *testing.B, t *stats.Table, row string) float64 {
	b.Helper()
	for r := 0; r < t.Rows(); r++ {
		if t.Cell(r, 0) != row {
			continue
		}
		v, err := strconv.ParseFloat(t.Cell(r, 1), 64)
		if err != nil {
			b.Fatalf("row %q: bad cell %q: %v", row, t.Cell(r, 1), err)
		}
		return v
	}
	b.Fatalf("row %q not in table", row)
	return 0
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig3(config.Default())
	}
}

func BenchmarkFig4c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4c(config.Default())
	}
}

func BenchmarkFig4d(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		_, _, hyb := experiments.Fig4d(config.Default())
		frac = hyb.Get("SSD engine") / hyb.Total()
	}
	b.ReportMetric(frac, "engine_frac")
}

func BenchmarkFig5a(b *testing.B) {
	o := benchOptions()
	o.Mixes = o.Mixes[:1]
	var worst float64
	for i := 0; i < b.N; i++ {
		o.Runner = experiments.NewMemo()
		_, deg, err := experiments.Fig5a(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range deg {
			if d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(worst, "degradation_x")
}

func BenchmarkFig5bcd(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5bcd(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8b(b *testing.B) {
	o := benchOptions()
	var max uint64
	for i := 0; i < b.N; i++ {
		o.Runner = experiments.NewMemo()
		_, heat, err := experiments.Fig8b(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range heat {
			for _, v := range row {
				if v > max {
					max = v
				}
			}
		}
	}
	b.ReportMetric(float64(max), "hottest_plane_writes")
}

func BenchmarkFig10(b *testing.B) {
	o := benchOptions()
	o.Mixes = o.Mixes[:1]
	var speedup float64
	for i := 0; i < b.N; i++ {
		o.Runner = experiments.NewMemo()
		_, res, err := experiments.Fig10(o)
		if err != nil {
			b.Fatal(err)
		}
		pair := o.Mixes[0].Name
		speedup = res[platform.ZnG][pair].IPC / res[platform.HybridGPU][pair].IPC
	}
	b.ReportMetric(speedup, "zng_vs_hybrid_x")
}

func BenchmarkFig11(b *testing.B) {
	o := benchOptions()
	o.Mixes = o.Mixes[:1]
	var bw float64
	for i := 0; i < b.N; i++ {
		o.Runner = experiments.NewMemo()
		_, res, err := experiments.Fig11(o)
		if err != nil {
			b.Fatal(err)
		}
		bw = res[platform.ZnG][o.Mixes[0].Name].FlashArrayGBps()
	}
	b.ReportMetric(bw, "zng_flash_gbps")
}

func BenchmarkFig12(b *testing.B) {
	o := benchOptions()
	o.Mixes = o.Mixes[:1]
	for i := 0; i < b.N; i++ {
		o.Runner = experiments.NewMemo()
		if _, err := experiments.Fig12(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Sweep(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		o.Runner = experiments.NewMemo()
		if _, _, err := experiments.Fig13Sweep(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWriteNet(b *testing.B) {
	o := benchOptions()
	var nif float64
	for i := 0; i < b.N; i++ {
		o.Runner = experiments.NewMemo()
		_, avg, err := experiments.AblationWriteNet(o)
		if err != nil {
			b.Fatal(err)
		}
		nif = avg[config.NiF]
	}
	b.ReportMetric(nif, "nif_ipc")
}

func BenchmarkAblationConsolidation(b *testing.B) {
	o := benchOptions()
	var retained float64
	for i := 0; i < b.N; i++ {
		o.Runner = experiments.NewMemo()
		_, ipc, err := experiments.AblationConsolidation(o)
		if err != nil {
			b.Fatal(err)
		}
		retained = ipc[platform.ZnG][3] / ipc[platform.ZnG][0]
	}
	b.ReportMetric(retained, "zng_deg4_vs_solo")
}

func BenchmarkAblationGC(b *testing.B) {
	var merges uint64
	for i := 0; i < b.N; i++ {
		_, st := experiments.AblationGC()
		merges = st.Merges
	}
	b.ReportMetric(float64(merges), "merges")
}

func BenchmarkAblationL2(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		o.Runner = experiments.NewMemo()
		if _, _, err := experiments.AblationL2(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleSweep runs the top of the scale-sweep ladder (the 64x
// point, see experiments.ScaleSweep) on the ZnG/HybridGPU pair and
// reports the two machine-dependent numbers the deterministic docs
// figure deliberately omits: host-side simulated insts/sec and the
// process heap high-water after the run. Run it alone in a fresh
// process (`go test -bench=ScaleSweep -benchtime=1x`) when comparing
// peak heap across changes — heap-sys never shrinks, so earlier
// benchmarks inflate it.
func BenchmarkScaleSweep(b *testing.B) {
	o := benchOptions()
	mix := o.Mixes[0]
	factors := experiments.ScaleSweepFactors
	scale := experiments.ScaleSweepBase * float64(factors[len(factors)-1])
	var insts uint64
	for i := 0; i < b.N; i++ {
		insts = 0
		for _, k := range []platform.Kind{platform.HybridGPU, platform.ZnG} {
			r, err := platform.RunMix(k, mix, scale, o.Cfg)
			if err != nil {
				b.Fatal(err)
			}
			insts += r.Insts
		}
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	b.ReportMetric(float64(m.HeapSys), "peak-heap-bytes")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(insts)*float64(b.N)/secs, "host-insts/sec")
	}
}

// BenchmarkPlatforms gives per-platform simulation cost on one pair —
// useful when profiling the simulator itself.
func BenchmarkPlatforms(b *testing.B) {
	o := benchOptions()
	mix := o.Mixes[0]
	for _, k := range platform.Kinds() {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				r, err := platform.RunMix(k, mix, o.Scale, o.Cfg)
				if err != nil {
					b.Fatal(err)
				}
				ipc = r.IPC
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}
